// Package repro is a from-scratch Go reproduction of "Equi-Joins over
// Encrypted Data for Series of Queries" (Shafieinejad, Gupta, Liu,
// Karabina, Kerschbaum — ICDE 2022). The implementation lives under
// internal/: the bn256 pairing substrate, function-hiding inner-product
// encryption, the Secure Join scheme, baseline join-encryption schemes,
// a leakage analyzer, a TPC-H workload generator and a client/server
// encrypted-DBMS engine. See README.md for a tour and DESIGN.md for the
// system inventory; bench_test.go regenerates the paper's figures.
package repro
