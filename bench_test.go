package repro

// One benchmark per table/figure of the paper's evaluation (Section 6),
// plus the ablation benches called out in DESIGN.md. Workload sizes are
// kept small so `go test -bench=.` terminates on a laptop; cmd/sjbench
// runs the same series at configurable scale and prints the figures'
// rows. See EXPERIMENTS.md for paper-vs-measured comparisons.

import (
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"testing"

	"repro/internal/baseline"
	"repro/internal/bench"
	"repro/internal/engine"
	"repro/internal/securejoin"
	"repro/internal/tpch"
	"repro/internal/zq"
)

// benchScale returns the TPC-H scale factor used by the join benches.
// Default is 1/100 of the paper's smallest point; override with
// SJ_BENCH_SCALE.
func benchScale(b *testing.B) float64 {
	if s := os.Getenv("SJ_BENCH_SCALE"); s != "" {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			b.Fatalf("invalid SJ_BENCH_SCALE: %v", err)
		}
		return v
	}
	return 0.0001
}

// --- Figure 2: crypto micro-benchmarks vs IN-clause size -------------

func fig2Scheme(b *testing.B, t int) (*securejoin.Scheme, securejoin.Row, securejoin.Selection) {
	b.Helper()
	scheme, err := securejoin.Setup(securejoin.Params{M: 1, T: t}, nil)
	if err != nil {
		b.Fatal(err)
	}
	row := securejoin.Row{JoinValue: []byte("42"), Attrs: [][]byte{[]byte(tpch.Sel100)}}
	values := make([][]byte, t)
	for i := range values {
		values[i] = []byte(fmt.Sprintf("v-%d", i))
	}
	return scheme, row, securejoin.Selection{0: values}
}

func BenchmarkFig2TokenGen(b *testing.B) {
	for _, t := range []int{1, 5, 10} {
		b.Run(fmt.Sprintf("t=%d", t), func(b *testing.B) {
			scheme, _, sel := fig2Scheme(b, t)
			k := mustKey(b)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := scheme.TokenGen(k, sel); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFig2Encrypt(b *testing.B) {
	for _, t := range []int{1, 5, 10} {
		b.Run(fmt.Sprintf("t=%d", t), func(b *testing.B) {
			scheme, row, _ := fig2Scheme(b, t)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := scheme.Encrypt(row); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFig2Decrypt(b *testing.B) {
	for _, t := range []int{1, 5, 10} {
		b.Run(fmt.Sprintf("t=%d", t), func(b *testing.B) {
			scheme, row, sel := fig2Scheme(b, t)
			q, err := scheme.NewQuery(sel, sel)
			if err != nil {
				b.Fatal(err)
			}
			ct, err := scheme.Encrypt(row)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := securejoin.Decrypt(q.TokenA, ct); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Figure 3: server join runtime vs table size ---------------------

func BenchmarkFig3JoinScale(b *testing.B) {
	base := benchScale(b)
	for _, mult := range []int{1, 2, 4} {
		scale := base * float64(mult)
		w, err := bench.BuildWorkload(scale, 1, 42)
		if err != nil {
			b.Fatal(err)
		}
		// The two densest selectivity classes stay non-empty even at the
		// small default bench scale (1/100 of a table of 60 rows is 0).
		for _, sel := range []string{tpch.Sel25, tpch.Sel12_5} {
			name := fmt.Sprintf("rows=%d/sel=%s", len(w.Dataset.Customers)+len(w.Dataset.Orders), sel)
			b.Run(name, func(b *testing.B) {
				s := bench.Selection(sel, 1)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := w.RunServerJoin(s); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// --- Figure 4: server join runtime vs IN-clause size -----------------

func BenchmarkFig4JoinINClause(b *testing.B) {
	scale := benchScale(b)
	for _, t := range []int{1, 5, 10} {
		w, err := bench.BuildWorkload(scale, t, 42)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("t=%d", t), func(b *testing.B) {
			s := bench.Selection(tpch.Sel100, t)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := w.RunServerJoin(s); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Section 6.5: comparison against Hahn et al. ---------------------

func BenchmarkComparisonHahnNestedLoop(b *testing.B) {
	scale := benchScale(b)
	b.Run("hahn", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			w, err := bench.BuildHahnWorkload(scale, 42)
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			w.RunServerJoin(tpch.Sel100)
		}
	})
	b.Run("securejoin", func(b *testing.B) {
		w, err := bench.BuildWorkload(scale, 1, 42)
		if err != nil {
			b.Fatal(err)
		}
		s := bench.Selection(tpch.Sel100, 1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := w.RunServerJoin(s); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Tables 1-4: the worked example -----------------------------------

func BenchmarkExampleQueries(b *testing.B) {
	scheme, err := securejoin.Setup(securejoin.Params{M: 1, T: 2}, nil)
	if err != nil {
		b.Fatal(err)
	}
	teams := []securejoin.Row{
		{JoinValue: []byte("1"), Attrs: [][]byte{[]byte("Web Application")}},
		{JoinValue: []byte("2"), Attrs: [][]byte{[]byte("Database")}},
	}
	employees := []securejoin.Row{
		{JoinValue: []byte("1"), Attrs: [][]byte{[]byte("Programmer")}},
		{JoinValue: []byte("1"), Attrs: [][]byte{[]byte("Tester")}},
		{JoinValue: []byte("2"), Attrs: [][]byte{[]byte("Programmer")}},
		{JoinValue: []byte("2"), Attrs: [][]byte{[]byte("Tester")}},
	}
	ctA, err := scheme.EncryptTable(teams)
	if err != nil {
		b.Fatal(err)
	}
	ctB, err := scheme.EncryptTable(employees)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q, err := scheme.NewQuery(
			securejoin.Selection{0: [][]byte{[]byte("Web Application")}},
			securejoin.Selection{0: [][]byte{[]byte("Tester")}},
		)
		if err != nil {
			b.Fatal(err)
		}
		das, err := securejoin.DecryptTable(q.TokenA, ctA)
		if err != nil {
			b.Fatal(err)
		}
		dbs, err := securejoin.DecryptTable(q.TokenB, ctB)
		if err != nil {
			b.Fatal(err)
		}
		if pairs := securejoin.HashJoin(das, dbs); len(pairs) != 1 {
			b.Fatalf("expected 1 match, got %d", len(pairs))
		}
	}
}

// --- Ablation: hash join vs nested loop on precomputed D values ------

func BenchmarkHashVsNestedLoop(b *testing.B) {
	// The match phase operates on opaque 384-byte D values, so the join
	// algorithms can be benchmarked at realistic sizes with synthetic
	// values (matching distribution: ~10% of rows share a join key).
	synth := func(n, universe int) []securejoin.DValue {
		out := make([]securejoin.DValue, n)
		for i := range out {
			v := make([]byte, 384)
			v[0] = byte(i % universe)
			v[1] = byte((i % universe) >> 8)
			out[i] = v
		}
		return out
	}
	for _, n := range []int{100, 400, 1600} {
		da := synth(n, n/10+1)
		db := synth(n, n/10+1)
		b.Run(fmt.Sprintf("hash/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				securejoin.HashJoin(da, db)
			}
		})
		b.Run(fmt.Sprintf("nestedloop/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				securejoin.NestedLoopJoin(da, db)
			}
		})
	}
}

// --- Ablation: pre-filter and parallel decryption ---------------------

func BenchmarkPrefilterVsFullScan(b *testing.B) {
	w, err := bench.BuildWorkload(benchScale(b)*4, 1, 42)
	if err != nil {
		b.Fatal(err)
	}
	sel := bench.Selection(tpch.Sel12_5, 1)
	b.Run("fullscan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := w.RunServerJoinFullScan(sel); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("prefiltered", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := w.RunServerJoin(sel); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("prefiltered-parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := w.RunServerJoinParallel(sel, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Ablation: baseline scheme costs ----------------------------------

func BenchmarkBaselineDetJoin(b *testing.B) {
	det, err := baseline.NewDetScheme(nil)
	if err != nil {
		b.Fatal(err)
	}
	ds := tpch.Generate(benchScale(b), 42)
	joinC := make([][]byte, len(ds.Customers))
	for i, c := range ds.Customers {
		joinC[i] = tpch.CustomerJoinValue(c)
	}
	joinO := make([][]byte, len(ds.Orders))
	for i, o := range ds.Orders {
		joinO[i] = tpch.OrderJoinValue(o)
	}
	tagsC := det.EncryptColumn(joinC)
	tagsO := det.EncryptColumn(joinO)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		baseline.Join(tagsC, tagsO)
	}
}

// --- Concurrent joins: engine.Server under parallel query load -------

// concurrentJoinFixture uploads two joinable tables to a fresh engine
// server and pre-issues a query so the benchmark times only the
// server-side ExecuteJoin.
func concurrentJoinFixture(b *testing.B, rows int) (*engine.Server, *securejoin.Query) {
	b.Helper()
	cli, err := engine.NewClient(securejoin.Params{M: 1, T: 1}, nil)
	if err != nil {
		b.Fatal(err)
	}
	srv := engine.NewServer()
	mk := func(prefix string) []engine.PlainRow {
		out := make([]engine.PlainRow, rows)
		for i := range out {
			out[i] = engine.PlainRow{
				JoinValue: []byte(fmt.Sprintf("k-%d", i)),
				Attrs:     [][]byte{[]byte("x")},
				Payload:   []byte(fmt.Sprintf("%s-%d", prefix, i)),
			}
		}
		return out
	}
	for _, name := range []string{"L", "R"} {
		t, err := cli.EncryptTable(name, mk(name))
		if err != nil {
			b.Fatal(err)
		}
		srv.Upload(t)
	}
	q, err := cli.NewQuery(securejoin.Selection{}, securejoin.Selection{})
	if err != nil {
		b.Fatal(err)
	}
	return srv, q
}

// BenchmarkConcurrentJoins measures ExecuteJoin throughput over shared
// read-only tables as parallelism grows. The table store takes only a
// read lock per query, so ns/op should drop roughly linearly with
// GOMAXPROCS until the cores saturate — the joins are genuinely
// parallel, not serialized behind a global engine lock.
func BenchmarkConcurrentJoins(b *testing.B) {
	srv, q := concurrentJoinFixture(b, 8)
	for _, procs := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("gomaxprocs=%d", procs), func(b *testing.B) {
			defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if _, _, err := srv.ExecuteJoin("L", "R", q); err != nil {
						b.Error(err) // Fatal must not run on a RunParallel worker
						return
					}
				}
			})
		})
	}
}

// BenchmarkJoinStreamVsMaterialize contrasts draining a bounded-batch
// JoinStream against the materializing ExecuteJoin. With -benchmem the
// streamed variant's allocations stay flat in the batch size while the
// one-shot path scales with the full result cardinality.
func BenchmarkJoinStreamVsMaterialize(b *testing.B) {
	srv, q := concurrentJoinFixture(b, 16)
	b.Run("materialize", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := srv.ExecuteJoin("L", "R", q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("stream", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			st, err := srv.OpenJoin("L", "R", engine.JoinSpec{Query: q, Batch: 4})
			if err != nil {
				b.Fatal(err)
			}
			for {
				if _, err := st.Next(); err != nil {
					if err == io.EOF {
						break
					}
					b.Fatal(err)
				}
			}
		}
	})
}

func mustKey(b *testing.B) zq.Scalar {
	b.Helper()
	k, err := zq.RandomNonZero(nil)
	if err != nil {
		b.Fatal(err)
	}
	return k
}
