// Quickstart: encrypt two tables, run one filtered equi-join query, and
// decrypt the result — the minimal end-to-end use of the public API.
package main

import (
	"fmt"
	"log"

	"repro/internal/engine"
	"repro/internal/securejoin"
)

func main() {
	// 1. The client provisions keys. M is the number of filterable
	//    attributes per row, T the maximum IN-clause size.
	client, err := engine.NewClient(securejoin.Params{M: 1, T: 3}, nil)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Encrypt and upload two tables. Each row carries a join value,
	//    filterable attributes and an opaque payload returned on match.
	albums := []engine.PlainRow{
		{JoinValue: []byte("artist-1"), Attrs: [][]byte{[]byte("rock")}, Payload: []byte("Album: Night Drive")},
		{JoinValue: []byte("artist-2"), Attrs: [][]byte{[]byte("jazz")}, Payload: []byte("Album: Blue Hours")},
		{JoinValue: []byte("artist-1"), Attrs: [][]byte{[]byte("rock")}, Payload: []byte("Album: Daybreak")},
	}
	artists := []engine.PlainRow{
		{JoinValue: []byte("artist-1"), Attrs: [][]byte{[]byte("on-tour")}, Payload: []byte("Artist: The Parallels")},
		{JoinValue: []byte("artist-2"), Attrs: [][]byte{[]byte("retired")}, Payload: []byte("Artist: M. Col")},
	}

	server := engine.NewServer()
	encAlbums, err := client.EncryptTable("Albums", albums)
	if err != nil {
		log.Fatal(err)
	}
	encArtists, err := client.EncryptTable("Artists", artists)
	if err != nil {
		log.Fatal(err)
	}
	server.Upload(encAlbums)
	server.Upload(encArtists)

	// 3. Issue a query:
	//    SELECT * FROM Albums JOIN Artists ON artist
	//    WHERE Albums.genre IN ('rock') AND Artists.status IN ('on-tour')
	q, err := client.NewQuery(
		securejoin.Selection{0: [][]byte{[]byte("rock")}},
		securejoin.Selection{0: [][]byte{[]byte("on-tour")}},
	)
	if err != nil {
		log.Fatal(err)
	}

	// 4. The server joins over ciphertexts only.
	rows, trace, err := server.ExecuteJoin("Albums", "Artists", q)
	if err != nil {
		log.Fatal(err)
	}

	// 5. The client decrypts the matched payloads.
	fmt.Printf("%d joined rows (server observed %d equality pairs):\n", len(rows), trace.Pairs.Len())
	for _, r := range rows {
		pa, err := client.OpenPayload(r.PayloadA)
		if err != nil {
			log.Fatal(err)
		}
		pb, err := client.OpenPayload(r.PayloadB)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s  <->  %s\n", pa, pb)
	}
}
