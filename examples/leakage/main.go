// Leakage comparison: replays the Section 2.1 timeline (Example 2.1,
// queries at t1 and t2) through the leakage simulators of all four
// schemes and through the real Secure Join engine, showing that
//
//   - deterministic encryption leaks all 6 equal pairs at t0,
//   - CryptDB leaks all 6 at t1,
//   - Hahn et al. leak 2 at t1 but all 6 by t2 (super-additive), and
//   - Secure Join leaks exactly 2 pairs total — the transitive closure
//     of the per-query leakages.
package main

import (
	"fmt"
	"log"

	"repro/internal/engine"
	"repro/internal/leakage"
	"repro/internal/securejoin"
)

func main() {
	teams := &leakage.Table{
		Name:  "Teams",
		Joins: []string{"1", "2"},
		Attrs: [][]string{{"Web Application"}, {"Database"}},
	}
	employees := &leakage.Table{
		Name:  "Employees",
		Joins: []string{"1", "1", "2", "2"},
		Attrs: [][]string{{"Programmer"}, {"Tester"}, {"Programmer"}, {"Tester"}},
	}
	queries := []leakage.Query{
		{
			SelA: map[int][]string{0: {"Web Application"}},
			SelB: map[int][]string{0: {"Tester"}},
		},
		{
			SelA: map[int][]string{0: {"Database"}},
			SelB: map[int][]string{0: {"Programmer"}},
		},
	}

	fmt.Println("Example 2.1: Teams x Employees, queries at t1 and t2")
	fmt.Println()
	fmt.Println("Revealed equality pairs over time (t0 = after upload):")
	fmt.Printf("%-22s %4s %4s %4s\n", "scheme", "t0", "t1", "t2")
	printTimeline("deterministic (DET)", leakage.DeterministicLeakage(teams, employees, queries))
	printTimeline("CryptDB (onion)", leakage.CryptDBLeakage(teams, employees, queries))
	printTimeline("Hahn et al. (KP-ABE)", leakage.HahnLeakage(teams, employees, queries))
	printTimeline("Secure Join (ours)", leakage.SecureJoinLeakage(teams, employees, queries))
	fmt.Println()

	// Super-additivity check for Hahn: at t2 the observed pairs exceed
	// the transitive closure of the per-query leakages.
	perQuery := []leakage.PairSet{
		leakage.PerQueryLeakage(teams, employees, queries[0]),
		leakage.PerQueryLeakage(teams, employees, queries[1]),
	}
	hahn := leakage.HahnLeakage(teams, employees, queries)
	fmt.Printf("Hahn et al. leak super-additively: %v\n",
		leakage.IsSuperAdditive(hahn[len(hahn)-1], perQuery))
	sj := leakage.SecureJoinLeakage(teams, employees, queries)
	fmt.Printf("Secure Join leaks super-additively: %v\n",
		leakage.IsSuperAdditive(sj[len(sj)-1], perQuery))
	fmt.Println()

	// Cross-check the simulator against the real encrypted engine.
	fmt.Println("Cross-check with the real encrypted engine:")
	observed, err := runRealEngine()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  engine observed closure: %d pairs\n", observed.Len())
	for _, p := range observed.Sorted() {
		fmt.Printf("    %v == %v\n", p.A, p.B)
	}
	expected := sj[len(sj)-1]
	fmt.Printf("  simulator prediction matches engine: %v\n", observed.Equal(expected))
}

func printTimeline(name string, sets []leakage.PairSet) {
	fmt.Printf("%-22s", name)
	for _, s := range sets {
		fmt.Printf(" %4d", s.Len())
	}
	fmt.Println()
}

func runRealEngine() (leakage.PairSet, error) {
	client, err := engine.NewClient(securejoin.Params{M: 1, T: 2}, nil)
	if err != nil {
		return nil, err
	}
	server := engine.NewServer()

	teams := []engine.PlainRow{
		{JoinValue: []byte("1"), Attrs: [][]byte{[]byte("Web Application")}},
		{JoinValue: []byte("2"), Attrs: [][]byte{[]byte("Database")}},
	}
	employees := []engine.PlainRow{
		{JoinValue: []byte("1"), Attrs: [][]byte{[]byte("Programmer")}},
		{JoinValue: []byte("1"), Attrs: [][]byte{[]byte("Tester")}},
		{JoinValue: []byte("2"), Attrs: [][]byte{[]byte("Programmer")}},
		{JoinValue: []byte("2"), Attrs: [][]byte{[]byte("Tester")}},
	}
	encT, err := client.EncryptTable("Teams", teams)
	if err != nil {
		return nil, err
	}
	encE, err := client.EncryptTable("Employees", employees)
	if err != nil {
		return nil, err
	}
	server.Upload(encT)
	server.Upload(encE)

	q1, err := client.NewQuery(
		securejoin.Selection{0: [][]byte{[]byte("Web Application")}},
		securejoin.Selection{0: [][]byte{[]byte("Tester")}},
	)
	if err != nil {
		return nil, err
	}
	if _, _, err := server.ExecuteJoin("Teams", "Employees", q1); err != nil {
		return nil, err
	}
	q2, err := client.NewQuery(
		securejoin.Selection{0: [][]byte{[]byte("Database")}},
		securejoin.Selection{0: [][]byte{[]byte("Programmer")}},
	)
	if err != nil {
		return nil, err
	}
	if _, _, err := server.ExecuteJoin("Teams", "Employees", q2); err != nil {
		return nil, err
	}

	_, closure := server.ObservedLeakage()
	return closure, nil
}
