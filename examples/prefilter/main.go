// Pre-filter and parallelization example: quantifies the two optional
// server-side optimizations on one workload.
//
//  1. The SSE pre-filter of Section 4.3: resolving the selection
//     predicates through a searchable index first means SJ.Dec runs over
//     selectivity*n candidate rows instead of n — at the cost of also
//     revealing which rows match each individual attribute predicate.
//  2. Parallel decryption (Section 6.5): per-row SJ.Dec calls are
//     independent and spread across cores.
package main

import (
	"fmt"
	"log"
	"runtime"

	"repro/internal/bench"
	"repro/internal/tpch"
)

func main() {
	fmt.Println("building encrypted TPC-H workload (scale 0.001: 150 customers, 1500 orders)...")
	w, err := bench.BuildWorkload(0.001, 1, 11)
	if err != nil {
		log.Fatal(err)
	}
	sel := bench.Selection(tpch.Sel25, 1)

	full, err := w.RunServerJoinFullScan(sel)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("full scan        : %8.2fs  (%d matches) — leakage-optimal, SJ.Dec on every row\n",
		full.ServerTime.Seconds(), full.Matches)

	pre, err := w.RunServerJoin(sel)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SSE pre-filter   : %8.2fs  (%d matches) — SJ.Dec only on selection-matching rows\n",
		pre.ServerTime.Seconds(), pre.Matches)

	par, err := w.RunServerJoinParallel(sel, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pre-filter + %2d cores: %5.2fs (%d matches)\n",
		runtime.GOMAXPROCS(0), par.ServerTime.Seconds(), par.Matches)

	if pre.Matches != full.Matches || par.Matches != full.Matches {
		log.Fatalf("optimized paths changed the result: %d/%d/%d",
			full.Matches, pre.Matches, par.Matches)
	}
	fmt.Println("\nall three paths returned identical join results")
	fmt.Println("(the pre-filter trades SSE access-pattern leakage for the speedup;")
	fmt.Println(" see internal/engine/prefilter.go for the exact statement)")
}
