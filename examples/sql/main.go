// SQL example: drives the encrypted join engine through the SQL front
// end — the paper's Example 2.1 queries written as actual SQL strings,
// compiled against a catalog and executed over ciphertexts through the
// operator-tree executor, including a 3-way join stitched client-side.
package main

import (
	"fmt"
	"log"

	"repro/internal/engine"
	"repro/internal/securejoin"
	"repro/internal/sql"
)

func main() {
	client, err := engine.NewClient(securejoin.Params{M: 1, T: 2}, nil)
	if err != nil {
		log.Fatal(err)
	}
	server := engine.NewServer()

	// Catalog: which columns are join keys and which are filterable.
	catalog, err := sql.NewCatalog(
		sql.TableSchema{Name: "Teams", JoinColumn: "Key", Attrs: map[string]int{"Name": 0}},
		sql.TableSchema{Name: "Employees", JoinColumn: "Team", Attrs: map[string]int{"Role": 0}},
		sql.TableSchema{Name: "Offices", JoinColumn: "TeamKey", Attrs: map[string]int{"Site": 0}},
	)
	if err != nil {
		log.Fatal(err)
	}

	teams := []engine.PlainRow{
		{JoinValue: []byte("1"), Attrs: [][]byte{[]byte("Web Application")}, Payload: []byte("Team 1: Web Application")},
		{JoinValue: []byte("2"), Attrs: [][]byte{[]byte("Database")}, Payload: []byte("Team 2: Database")},
	}
	employees := []engine.PlainRow{
		{JoinValue: []byte("1"), Attrs: [][]byte{[]byte("Programmer")}, Payload: []byte("Hans (Programmer)")},
		{JoinValue: []byte("1"), Attrs: [][]byte{[]byte("Tester")}, Payload: []byte("Kaily (Tester)")},
		{JoinValue: []byte("2"), Attrs: [][]byte{[]byte("Programmer")}, Payload: []byte("John (Programmer)")},
		{JoinValue: []byte("2"), Attrs: [][]byte{[]byte("Tester")}, Payload: []byte("Sally (Tester)")},
	}
	offices := []engine.PlainRow{
		{JoinValue: []byte("1"), Attrs: [][]byte{[]byte("Berlin")}, Payload: []byte("Office: Berlin")},
		{JoinValue: []byte("2"), Attrs: [][]byte{[]byte("Kitchener")}, Payload: []byte("Office: Kitchener")},
	}
	for name, rows := range map[string][]engine.PlainRow{"Teams": teams, "Employees": employees, "Offices": offices} {
		enc, err := client.EncryptTable(name, rows)
		if err != nil {
			log.Fatal(err)
		}
		server.Upload(enc)
	}
	// Sync row counts so the planner orders multi-join chains from
	// statistics (none of the tables is SSE-indexed here, so every
	// side full-scans — the paper's exact leakage profile).
	for _, st := range server.TableStats() {
		if err := catalog.SetStats(st.Name, st.Rows, st.Indexed); err != nil {
			log.Fatal(err)
		}
	}

	queries := []string{
		`SELECT * FROM Teams JOIN Employees ON Teams.Key = Employees.Team
		 WHERE Teams.Name = 'Web Application' AND Employees.Role = 'Tester'`,
		`SELECT * FROM Teams JOIN Employees ON Teams.Key = Employees.Team
		 WHERE Employees.Role IN ('Programmer', 'Tester') AND Teams.Name = 'Database'`,
		`SELECT * FROM Teams JOIN Employees ON Teams.Key = Employees.Team`,
		// The 3-way form: Offices stitches onto the Teams hub
		// client-side after a second pairwise encrypted join.
		`SELECT * FROM Teams, Employees, Offices
		 WHERE Teams.Key = Employees.Team AND Offices.TeamKey = Teams.Key
		 AND Employees.Role = 'Programmer'`,
	}
	runner := sql.EngineRunner{Eng: server, Keys: client}
	for _, qs := range queries {
		fmt.Println(qs)
		plan, err := catalog.Compile(qs)
		if err != nil {
			log.Fatal(err)
		}
		var rows []sql.ResultRow
		revealed, err := sql.Execute(runner, plan, func(r sql.ResultRow) error {
			rows = append(rows, r)
			return nil
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("-> %d rows via %d pairwise join step(s) (%d equality pairs observed by server)\n",
			len(rows), len(plan.Steps), revealed)
		for _, r := range rows {
			for i, p := range r.Payloads {
				if i > 0 {
					fmt.Print(" | ")
				}
				fmt.Printf("%s", p)
			}
			fmt.Println()
		}
		fmt.Println()
	}
}
