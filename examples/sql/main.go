// SQL example: drives the encrypted join engine through the SQL front
// end — the paper's Example 2.1 queries written as actual SQL strings,
// compiled against a catalog and executed over ciphertexts.
package main

import (
	"fmt"
	"log"

	"repro/internal/engine"
	"repro/internal/securejoin"
	"repro/internal/sql"
)

func main() {
	client, err := engine.NewClient(securejoin.Params{M: 1, T: 2}, nil)
	if err != nil {
		log.Fatal(err)
	}
	server := engine.NewServer()

	// Catalog: which columns are join keys and which are filterable.
	catalog, err := sql.NewCatalog(
		sql.TableSchema{Name: "Teams", JoinColumn: "Key", Attrs: map[string]int{"Name": 0}},
		sql.TableSchema{Name: "Employees", JoinColumn: "Team", Attrs: map[string]int{"Role": 0}},
	)
	if err != nil {
		log.Fatal(err)
	}

	teams := []engine.PlainRow{
		{JoinValue: []byte("1"), Attrs: [][]byte{[]byte("Web Application")}, Payload: []byte("Team 1: Web Application")},
		{JoinValue: []byte("2"), Attrs: [][]byte{[]byte("Database")}, Payload: []byte("Team 2: Database")},
	}
	employees := []engine.PlainRow{
		{JoinValue: []byte("1"), Attrs: [][]byte{[]byte("Programmer")}, Payload: []byte("Hans (Programmer)")},
		{JoinValue: []byte("1"), Attrs: [][]byte{[]byte("Tester")}, Payload: []byte("Kaily (Tester)")},
		{JoinValue: []byte("2"), Attrs: [][]byte{[]byte("Programmer")}, Payload: []byte("John (Programmer)")},
		{JoinValue: []byte("2"), Attrs: [][]byte{[]byte("Tester")}, Payload: []byte("Sally (Tester)")},
	}
	for name, rows := range map[string][]engine.PlainRow{"Teams": teams, "Employees": employees} {
		enc, err := client.EncryptTable(name, rows)
		if err != nil {
			log.Fatal(err)
		}
		server.Upload(enc)
	}

	queries := []string{
		`SELECT * FROM Teams JOIN Employees ON Teams.Key = Employees.Team
		 WHERE Teams.Name = 'Web Application' AND Employees.Role = 'Tester'`,
		`SELECT * FROM Teams JOIN Employees ON Teams.Key = Employees.Team
		 WHERE Employees.Role IN ('Programmer', 'Tester') AND Teams.Name = 'Database'`,
		`SELECT * FROM Teams JOIN Employees ON Teams.Key = Employees.Team`,
	}
	for _, qs := range queries {
		fmt.Println(qs)
		plan, err := catalog.Compile(qs)
		if err != nil {
			log.Fatal(err)
		}
		q, err := client.NewQuery(plan.SelA, plan.SelB)
		if err != nil {
			log.Fatal(err)
		}
		rows, trace, err := server.ExecuteJoin(plan.TableA, plan.TableB, q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("-> %d rows (%d equality pairs observed by server)\n", len(rows), trace.Pairs.Len())
		for _, r := range rows {
			pa, err := client.OpenPayload(r.PayloadA)
			if err != nil {
				log.Fatal(err)
			}
			pb, err := client.OpenPayload(r.PayloadB)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("   %s | %s\n", pa, pb)
		}
		fmt.Println()
	}
}
