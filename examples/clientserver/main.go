// Client/server example: runs the DBMS server on a loopback TCP port and
// drives it with the v2 protocol client — the full database-as-a-service
// deployment of Section 2 in one process. The server sees only
// ciphertexts and tokens; all keys stay on the client side of the
// socket. Results stream back in bounded batches, and one connection
// pipelines concurrent queries issued from separate goroutines.
package main

import (
	"fmt"
	"io"
	"log"
	"os"
	"sync"

	"repro/internal/client"
	"repro/internal/engine"
	"repro/internal/securejoin"
	"repro/internal/server"
)

func main() {
	srv := server.New(log.New(os.Stderr, "[server] ", 0))
	srv.SetBatchSize(2) // tiny batches so the streaming is visible
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("server listening on %s (protocol v2)\n", addr)

	cli, err := client.Dial(addr, securejoin.Params{M: 1, T: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer cli.Close()
	if err := cli.Ping(); err != nil {
		log.Fatal(err)
	}

	patients := []engine.PlainRow{
		{JoinValue: []byte("insurer-A"), Attrs: [][]byte{[]byte("cardiology")}, Payload: []byte("Patient P-17, cardiology")},
		{JoinValue: []byte("insurer-B"), Attrs: [][]byte{[]byte("oncology")}, Payload: []byte("Patient P-22, oncology")},
		{JoinValue: []byte("insurer-A"), Attrs: [][]byte{[]byte("oncology")}, Payload: []byte("Patient P-31, oncology")},
	}
	insurers := []engine.PlainRow{
		{JoinValue: []byte("insurer-A"), Attrs: [][]byte{[]byte("gold")}, Payload: []byte("Insurer A (gold plan)")},
		{JoinValue: []byte("insurer-B"), Attrs: [][]byte{[]byte("basic")}, Payload: []byte("Insurer B (basic plan)")},
	}

	// Indexed uploads: alongside the Secure Join ciphertexts each table
	// carries its SSE pre-filter index, so prefiltered joins below can
	// skip SJ.Dec for rows outside the selection.
	if err := cli.UploadIndexed("Patients", patients); err != nil {
		log.Fatal(err)
	}
	if err := cli.UploadIndexed("Insurers", insurers); err != nil {
		log.Fatal(err)
	}
	fmt.Println("uploaded encrypted tables Patients and Insurers (with SSE indexes)")

	// SELECT * FROM Patients JOIN Insurers ON insurer
	// WHERE Patients.dept IN ('oncology') AND Insurers.plan IN ('gold') —
	// drained batch by batch as the server streams SJ.Match output.
	stream, err := cli.JoinQuery("Patients", "Insurers",
		securejoin.Selection{0: [][]byte{[]byte("oncology")}},
		securejoin.Selection{0: [][]byte{[]byte("gold")}},
	)
	if err != nil {
		log.Fatal(err)
	}
	rows := 0
	for {
		batch, err := stream.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			log.Fatal(err)
		}
		for _, r := range batch {
			fmt.Printf("  %s  <->  %s\n", r.PayloadA, r.PayloadB)
		}
		rows += len(batch)
	}
	fmt.Printf("streamed join returned %d rows; server observed %d equality pairs\n",
		rows, stream.RevealedPairs())

	// The same query through the Section 4.3 fast path: the request
	// additionally carries SSE search tokens, so the server resolves
	// the WHERE predicates through the uploaded indexes and pays
	// SJ.Dec pairings only for the candidate rows — results and
	// revealed-pair counts are identical, but the server additionally
	// learns which rows match each individual attribute predicate.
	preResults, preRevealed, err := cli.JoinWith("Patients", "Insurers",
		securejoin.Selection{0: [][]byte{[]byte("oncology")}},
		securejoin.Selection{0: [][]byte{[]byte("gold")}},
		client.JoinOpts{Prefilter: true},
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("prefiltered join returned %d rows (%d pairs revealed) touching only SSE candidates\n",
		len(preResults), preRevealed)

	// The client is safe for concurrent use: these two queries pipeline
	// over the same connection, and the server executes them in
	// parallel, interleaving their response frames.
	var wg sync.WaitGroup
	for _, dept := range []string{"cardiology", "oncology"} {
		wg.Add(1)
		go func(dept string) {
			defer wg.Done()
			results, revealed, err := cli.Join("Patients", "Insurers",
				securejoin.Selection{0: [][]byte{[]byte(dept)}},
				securejoin.Selection{},
			)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("concurrent query dept=%s: %d rows (%d pairs revealed)\n",
				dept, len(results), revealed)
		}(dept)
	}
	wg.Wait()
}
