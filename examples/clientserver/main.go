// Client/server example: runs the DBMS server on a loopback TCP port and
// drives it with the protocol client — the full database-as-a-service
// deployment of Section 2 in one process. The server sees only
// ciphertexts and tokens; all keys stay on the client side of the
// socket.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/client"
	"repro/internal/engine"
	"repro/internal/securejoin"
	"repro/internal/server"
)

func main() {
	srv := server.New(log.New(os.Stderr, "[server] ", 0))
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("server listening on %s\n", addr)

	cli, err := client.Dial(addr, securejoin.Params{M: 1, T: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer cli.Close()
	if err := cli.Ping(); err != nil {
		log.Fatal(err)
	}

	patients := []engine.PlainRow{
		{JoinValue: []byte("insurer-A"), Attrs: [][]byte{[]byte("cardiology")}, Payload: []byte("Patient P-17, cardiology")},
		{JoinValue: []byte("insurer-B"), Attrs: [][]byte{[]byte("oncology")}, Payload: []byte("Patient P-22, oncology")},
		{JoinValue: []byte("insurer-A"), Attrs: [][]byte{[]byte("oncology")}, Payload: []byte("Patient P-31, oncology")},
	}
	insurers := []engine.PlainRow{
		{JoinValue: []byte("insurer-A"), Attrs: [][]byte{[]byte("gold")}, Payload: []byte("Insurer A (gold plan)")},
		{JoinValue: []byte("insurer-B"), Attrs: [][]byte{[]byte("basic")}, Payload: []byte("Insurer B (basic plan)")},
	}

	if err := cli.Upload("Patients", patients); err != nil {
		log.Fatal(err)
	}
	if err := cli.Upload("Insurers", insurers); err != nil {
		log.Fatal(err)
	}
	fmt.Println("uploaded encrypted tables Patients and Insurers")

	// SELECT * FROM Patients JOIN Insurers ON insurer
	// WHERE Patients.dept IN ('oncology') AND Insurers.plan IN ('gold')
	results, revealed, err := cli.Join("Patients", "Insurers",
		securejoin.Selection{0: [][]byte{[]byte("oncology")}},
		securejoin.Selection{0: [][]byte{[]byte("gold")}},
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("join returned %d rows; server observed %d equality pairs\n", len(results), revealed)
	for _, r := range results {
		fmt.Printf("  %s  <->  %s\n", r.PayloadA, r.PayloadB)
	}
}
