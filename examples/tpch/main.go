// TPC-H workload example: generates a small Orders x Customers instance
// with the paper's selectivity column, encrypts it, runs one join query
// per selectivity class and reports server-side timings — a miniature of
// the Figure 3 experiment through the public API.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/bench"
	"repro/internal/tpch"
)

func main() {
	scale := flag.Float64("scale", 0.0002, "TPC-H scale factor (0.0002 = 30 customers, 300 orders)")
	flag.Parse()

	fmt.Printf("building encrypted TPC-H workload at scale %g...\n", *scale)
	w, err := bench.BuildWorkload(*scale, 1, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("encrypted %d customers and %d orders\n\n",
		len(w.Dataset.Customers), len(w.Dataset.Orders))

	fmt.Println("SELECT * FROM Orders JOIN Customers ON custkey WHERE selectivity IN (s):")
	for _, sel := range tpch.Selectivities {
		res, err := w.RunServerJoin(bench.Selection(sel.Label, 1))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  s = %-7s  server time %8.3fs  %5d matches\n",
			sel.Label, res.ServerTime.Seconds(), res.Matches)
	}
}
