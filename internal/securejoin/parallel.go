package securejoin

import (
	"fmt"
	"runtime"
	"sync"
)

// DecryptTableParallel runs SJ.Dec over a table using up to workers
// goroutines (0 means GOMAXPROCS). Section 6.5 of the paper notes that,
// unlike schemes that must reuse decrypted state across queries, Secure
// Join's per-row decryptions are independent and parallelize trivially;
// this is that observation made concrete. The output order matches the
// input order.
func DecryptTableParallel(tk *Token, cts []*RowCiphertext, workers int) ([]DValue, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cts) {
		workers = len(cts)
	}
	if workers <= 1 {
		return DecryptTable(tk, cts)
	}

	out := make([]DValue, len(cts))
	errs := make([]error, workers)
	var wg sync.WaitGroup
	next := make(chan int)

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := range next {
				if errs[w] != nil {
					continue // drain the channel so the feeder never blocks
				}
				d, err := Decrypt(tk, cts[i])
				if err != nil {
					errs[w] = fmt.Errorf("securejoin: decrypting row %d: %w", i, err)
					continue
				}
				out[i] = d
			}
		}(w)
	}
	for i := range cts {
		next <- i
	}
	close(next)
	wg.Wait()

	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
