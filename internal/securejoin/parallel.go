package securejoin

import (
	"runtime"
	"sync"
)

// DecryptTableParallel runs SJ.Dec over a table using up to workers
// goroutines (0 means GOMAXPROCS). Section 6.5 of the paper notes that,
// unlike schemes that must reuse decrypted state across queries, Secure
// Join's per-row decryptions are independent and parallelize trivially;
// this is that observation made concrete. The token's Miller program is
// recorded once and shared read-only by all workers, so the precompute
// cost is paid once per table regardless of the worker count. The
// output order matches the input order.
func DecryptTableParallel(tk *Token, cts []*RowCiphertext, workers int) ([]DValue, error) {
	return DecryptTableParallelWith(tk.Precompute(), cts, workers)
}

// DecryptTableParallelWith is DecryptTableParallel for callers that
// already hold the token's precompute handle — a join stream decrypting
// many probe batches under one token records the Miller program once
// and reuses it here per batch instead of re-deriving it each time.
func DecryptTableParallelWith(pc *TokenPrecomp, cts []*RowCiphertext, workers int) ([]DValue, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// Clamp after precomputing: tiny tables skip the pool entirely but
	// still amortize the token side across their rows.
	if workers > len(cts) {
		workers = len(cts)
	}
	if workers <= 1 {
		return DecryptTableWith(pc, cts)
	}

	out := make([]DValue, len(cts))
	errs := make([]error, workers)
	errRows := make([]int, workers)
	var wg sync.WaitGroup
	next := make(chan int)

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := range next {
				if errs[w] != nil {
					continue // drain the channel so the feeder never blocks
				}
				d, err := pc.Decrypt(cts[i])
				if err != nil {
					errs[w] = err
					errRows[w] = i
					continue
				}
				out[i] = d
			}
		}(w)
	}
	for i := range cts {
		next <- i
	}
	close(next)
	wg.Wait()

	for w, err := range errs {
		if err != nil {
			return nil, decryptRowError(errRows[w], err)
		}
	}
	return out, nil
}
