// Package securejoin implements the paper's primary contribution: the
// Secure Join scheme SJ = (SJ.Setup, SJ.Enc, SJ.TokenGen, SJ.Dec,
// SJ.Match) of Section 4.3.
//
// A client encrypts each row of its tables into an IPE ciphertext whose
// plaintext vector packs the hashed join value and the first t powers of
// every non-join attribute value (blinded by per-row randomness). At
// query time the client issues, per table, a token packing a fresh
// symmetric join key k and the coefficients of degree-t polynomials that
// vanish exactly on the IN-clause values. The server pairs tokens with
// ciphertexts; two rows join iff their decrypted values match, which by
// Theorem 5.2 happens (up to negligible probability) iff they were
// decrypted by the same query, carry equal join values and satisfy the
// selection criteria. Because k is fresh per query, results of different
// queries cannot be linked: a series of queries leaks only the
// transitive closure of the union of per-query leakages.
package securejoin

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/ipe"
	"repro/internal/poly"
	"repro/internal/zq"
)

// Params fixes the shape of encrypted rows: M non-join attributes per
// row and IN clauses of at most T values per attribute. Both tables of a
// join must be encrypted under the same Params (the paper assumes a
// common schema width m for notational simplicity; narrower rows are
// padded).
type Params struct {
	// M is the number of non-join attributes packed per row.
	M int
	// T is the maximum IN-clause size (the degree of the selection
	// polynomials).
	T int
}

// Dim returns the IPE vector dimension d = m(t+1) + 3: one slot for the
// hashed join value, t+1 power slots per attribute, one gamma randomness
// slot and one delta randomness slot.
func (p Params) Dim() int { return p.M*(p.T+1) + 3 }

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.M < 0 {
		return errors.New("securejoin: negative attribute count")
	}
	if p.T < 1 {
		return errors.New("securejoin: IN-clause bound must be at least 1")
	}
	return nil
}

// Scheme holds the client-side master secret key. It implements
// SJ.Setup (construction), SJ.Enc and SJ.TokenGen. The server-side
// operations SJ.Dec and SJ.Match are package functions operating only on
// public values.
type Scheme struct {
	params Params
	msk    *ipe.MasterKey
	rng    io.Reader
}

// Setup runs SJ.Setup: it samples the bilinear-group master secret
// (B, B*) for vectors of dimension m(t+1)+3. If rng is nil, crypto/rand
// is used for all subsequent randomness.
func Setup(params Params, rng io.Reader) (*Scheme, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	msk, err := ipe.Setup(params.Dim(), rng)
	if err != nil {
		return nil, err
	}
	return &Scheme{params: params, msk: msk, rng: rng}, nil
}

// Params returns the scheme parameters.
func (s *Scheme) Params() Params { return s.params }

// Row is a plaintext row presented for encryption: the join-column value
// and the values of up to M non-join attributes. Values are arbitrary
// byte strings; they are embedded into Z_q with the scheme's hash.
type Row struct {
	JoinValue []byte
	Attrs     [][]byte
}

// RowCiphertext is the SJ.Enc output for one row: C = g2^(w B*).
type RowCiphertext struct {
	C *ipe.CiphertextM
}

// Encrypt runs SJ.Enc on one row. The plaintext vector is
//
//	w = ( H(a0), gamma2*a1^0..a1^t, ..., gamma2*am^0..am^t, gamma1, 0 )
//
// with fresh per-row gamma1, gamma2. Missing attributes (len(Attrs) < M)
// are padded with the hash of an out-of-band padding tag so they can
// never satisfy a selection polynomial by accident.
func (s *Scheme) Encrypt(row Row) (*RowCiphertext, error) {
	if len(row.Attrs) > s.params.M {
		return nil, fmt.Errorf("securejoin: row has %d attributes, scheme supports %d",
			len(row.Attrs), s.params.M)
	}
	gamma1, err := zq.Random(s.rng)
	if err != nil {
		return nil, err
	}
	gamma2, err := zq.RandomNonZero(s.rng)
	if err != nil {
		return nil, err
	}

	d := s.params.Dim()
	w := zq.NewVector(d)
	w[0] = zq.Hash(row.JoinValue)
	for i := 0; i < s.params.M; i++ {
		var embedded zq.Scalar
		if i < len(row.Attrs) {
			embedded = zq.Hash(row.Attrs[i])
		} else {
			embedded = zq.Hash([]byte(fmt.Sprintf("securejoin/pad/%d", i)))
		}
		powers := poly.PowersOf(embedded, s.params.T)
		base := 1 + i*(s.params.T+1)
		for j, pw := range powers {
			w[base+j] = gamma2.Mul(pw)
		}
	}
	w[d-2] = gamma1
	// w[d-1] stays 0.

	ct, err := s.msk.EncryptModified(w)
	if err != nil {
		return nil, err
	}
	return &RowCiphertext{C: ct}, nil
}

// EncryptTable encrypts a slice of rows.
func (s *Scheme) EncryptTable(rows []Row) ([]*RowCiphertext, error) {
	out := make([]*RowCiphertext, len(rows))
	for i, r := range rows {
		ct, err := s.Encrypt(r)
		if err != nil {
			return nil, fmt.Errorf("securejoin: encrypting row %d: %w", i, err)
		}
		out[i] = ct
	}
	return out, nil
}

// Selection is the per-table filtering predicate of a join query: for
// each attribute index, the admissible IN-clause values. Attributes
// without an entry are unrestricted (encoded as the zero polynomial).
type Selection map[int][][]byte

// Validate checks the selection against the scheme parameters.
func (sel Selection) validate(p Params) error {
	for attr, values := range sel {
		if attr < 0 || attr >= p.M {
			return fmt.Errorf("securejoin: selection on attribute %d, scheme has %d attributes", attr, p.M)
		}
		if len(values) == 0 {
			return fmt.Errorf("securejoin: empty IN clause for attribute %d", attr)
		}
		if len(values) > p.T {
			return fmt.Errorf("securejoin: IN clause of size %d exceeds bound t=%d", len(values), p.T)
		}
	}
	return nil
}

// Token is the SJ.TokenGen output for one table: Tk = g1^(v B).
type Token struct {
	Tk *ipe.Token
}

// Query is the client-side description of one equi-join query: a fresh
// join key k and one token per table, both built with the same k so that
// matching rows of the two tables decrypt to the same D value.
type Query struct {
	TokenA *Token
	TokenB *Token
}

// NewQuery runs SJ.TokenGen for both tables of a join with a fresh
// symmetric query key k drawn from Z_q \ {0}. selA filters table A,
// selB filters table B.
func (s *Scheme) NewQuery(selA, selB Selection) (*Query, error) {
	k, err := zq.RandomNonZero(s.rng)
	if err != nil {
		return nil, err
	}
	ta, err := s.TokenGen(k, selA)
	if err != nil {
		return nil, err
	}
	tb, err := s.TokenGen(k, selB)
	if err != nil {
		return nil, err
	}
	return &Query{TokenA: ta, TokenB: tb}, nil
}

// TokenGen runs SJ.TokenGen for one table. The token vector is
//
//	v = ( k, P1 coeffs, ..., Pm coeffs, 0, delta )
//
// where P_i vanishes on the IN-clause values of attribute i (hashed into
// Z_q with the same embedding used at encryption time) and is the zero
// polynomial for unrestricted attributes. Exposed for callers that need
// token-level control (e.g. issuing the two table tokens of one query
// with an explicit shared k); most callers should use NewQuery.
func (s *Scheme) TokenGen(k zq.Scalar, sel Selection) (*Token, error) {
	if k.IsZero() {
		return nil, errors.New("securejoin: query key k must be non-zero")
	}
	if err := sel.validate(s.params); err != nil {
		return nil, err
	}

	d := s.params.Dim()
	v := zq.NewVector(d)
	v[0] = k
	for i := 0; i < s.params.M; i++ {
		var pi poly.Polynomial
		if values, ok := sel[i]; ok {
			roots := make([]zq.Scalar, len(values))
			for j, val := range values {
				roots[j] = zq.Hash(val)
			}
			var err error
			pi, err = poly.FromRoots(roots, s.params.T, s.rng)
			if err != nil {
				return nil, err
			}
		} else {
			pi = poly.Zero(s.params.T)
		}
		coeffs := pi.Coeffs(s.params.T + 1)
		base := 1 + i*(s.params.T+1)
		copy(v[base:base+s.params.T+1], coeffs)
	}
	// v[d-2] stays 0.
	delta, err := zq.Random(s.rng)
	if err != nil {
		return nil, err
	}
	v[d-1] = delta

	tk, err := s.msk.KeyGenModified(v)
	if err != nil {
		return nil, err
	}
	return &Token{Tk: tk}, nil
}

// DValue is the opaque decryption result of SJ.Dec for one row: a
// canonical encoding of the GT element
// e(g1,g2)^(det(B)(k H(a0) + sum_i P_i(a_i))). Equal DValues (as byte
// strings) correspond to equal GT elements, so they can key a hash join.
type DValue []byte

// Decrypt runs SJ.Dec on one row: D = e(Tk, C), computed with a single
// batched multi-pairing over the d vector slots.
func Decrypt(tk *Token, ct *RowCiphertext) (DValue, error) {
	gt, err := ipe.DecryptModified(tk.Tk, ct.C)
	if err != nil {
		return nil, err
	}
	return DValue(gt.Marshal()), nil
}

// TokenPrecomp is a token whose G1-side Miller program has been
// recorded once. A query token is paired against every row of a
// table, so the per-step inversions and point-chain updates of the
// Miller loop — which depend only on the token — are paid once here
// instead of once per row. The handle is immutable and safe for
// concurrent use.
type TokenPrecomp struct {
	tp *ipe.TokenPrecomp
}

// Precompute records the token's fixed-argument pairing program. The
// cost is comparable to decrypting a single row.
func (t *Token) Precompute() *TokenPrecomp {
	return &TokenPrecomp{tp: ipe.PrecomputeToken(t.Tk)}
}

// Decrypt runs SJ.Dec on one row through the precomputed token,
// producing byte-identical DValues to the naive Decrypt.
func (pc *TokenPrecomp) Decrypt(ct *RowCiphertext) (DValue, error) {
	gt, err := pc.tp.Decrypt(ct.C)
	if err != nil {
		return nil, err
	}
	return DValue(gt.Marshal()), nil
}

// decryptRowError wraps a per-row decryption failure with its row
// index.
func decryptRowError(row int, err error) error {
	return fmt.Errorf("securejoin: decrypting row %d: %w", row, err)
}

// DecryptTable runs SJ.Dec over every row of a table with a full
// Miller loop per row. It is kept as the naive baseline; table-scale
// callers should use DecryptTableWith or DecryptTableParallel, which
// precompute the token side once.
func DecryptTable(tk *Token, cts []*RowCiphertext) ([]DValue, error) {
	out := make([]DValue, len(cts))
	for i, ct := range cts {
		d, err := Decrypt(tk, ct)
		if err != nil {
			return nil, decryptRowError(i, err)
		}
		out[i] = d
	}
	return out, nil
}

// DecryptTableWith runs SJ.Dec over every row of a table through a
// precomputed token, sharing one recorded Miller program across all
// rows.
func DecryptTableWith(pc *TokenPrecomp, cts []*RowCiphertext) ([]DValue, error) {
	out := make([]DValue, len(cts))
	for i, ct := range cts {
		d, err := pc.Decrypt(ct)
		if err != nil {
			return nil, decryptRowError(i, err)
		}
		out[i] = d
	}
	return out, nil
}

// Match implements SJ.Match for a single pair of decrypted values.
func Match(da, db DValue) bool {
	if len(da) != len(db) {
		return false
	}
	for i := range da {
		if da[i] != db[i] {
			return false
		}
	}
	return true
}

// MatchPair is one joined row pair: indexes into the two decrypted
// tables.
type MatchPair struct {
	RowA, RowB int
}

// HashJoin performs the O(nA + nB + |result|) hash join over decrypted
// values that the scheme's design enables (Section 6.5 contrasts this
// with the O(n^2) nested-loop join that Hahn et al. require): table A's
// D values are bucketed by value, then table B's rows probe the buckets.
func HashJoin(das, dbs []DValue) []MatchPair {
	buckets := make(map[string][]int, len(das))
	for i, d := range das {
		buckets[string(d)] = append(buckets[string(d)], i)
	}
	var out []MatchPair
	for j, d := range dbs {
		for _, i := range buckets[string(d)] {
			out = append(out, MatchPair{RowA: i, RowB: j})
		}
	}
	return out
}

// NestedLoopJoin performs the quadratic-time join used as an ablation
// baseline for benchmarks: every (rowA, rowB) pair is compared with
// SJ.Match directly.
func NestedLoopJoin(das, dbs []DValue) []MatchPair {
	var out []MatchPair
	for i, da := range das {
		for j, db := range dbs {
			if Match(da, db) {
				out = append(out, MatchPair{RowA: i, RowB: j})
			}
		}
	}
	return out
}

// SelfPairs returns the equality pairs within a single decrypted table
// (rows of the same table that decrypt to equal values under the current
// query). The paper's leakage definition (Section 5.2) counts these
// pairs too — e.g. the (b0^1, b0^2) pair of Example 2.1.
func SelfPairs(ds []DValue) [][2]int {
	buckets := make(map[string][]int, len(ds))
	for i, d := range ds {
		buckets[string(d)] = append(buckets[string(d)], i)
	}
	var out [][2]int
	for _, rows := range buckets {
		for x := 0; x < len(rows); x++ {
			for y := x + 1; y < len(rows); y++ {
				out = append(out, [2]int{rows[x], rows[y]})
			}
		}
	}
	return out
}
