package securejoin

import "testing"

// TestThreeWayJoin: three tables encrypted under one master key join on
// a shared key with per-table selections — the multi-table setting that
// CryptDB-era schemes need re-encryption for.
func TestThreeWayJoin(t *testing.T) {
	s := newTestScheme(t, 1, 2)

	patients := []Row{
		{JoinValue: []byte("ins-A"), Attrs: [][]byte{[]byte("oncology")}},
		{JoinValue: []byte("ins-B"), Attrs: [][]byte{[]byte("oncology")}},
		{JoinValue: []byte("ins-A"), Attrs: [][]byte{[]byte("cardiology")}},
	}
	insurers := []Row{
		{JoinValue: []byte("ins-A"), Attrs: [][]byte{[]byte("gold")}},
		{JoinValue: []byte("ins-B"), Attrs: [][]byte{[]byte("basic")}},
	}
	claims := []Row{
		{JoinValue: []byte("ins-A"), Attrs: [][]byte{[]byte("open")}},
		{JoinValue: []byte("ins-A"), Attrs: [][]byte{[]byte("closed")}},
		{JoinValue: []byte("ins-B"), Attrs: [][]byte{[]byte("open")}},
	}

	ctP, err := s.EncryptTable(patients)
	if err != nil {
		t.Fatal(err)
	}
	ctI, err := s.EncryptTable(insurers)
	if err != nil {
		t.Fatal(err)
	}
	ctC, err := s.EncryptTable(claims)
	if err != nil {
		t.Fatal(err)
	}

	// WHERE patients.dept = 'oncology' AND insurers.plan = 'gold'
	// AND claims.status = 'open'
	mq, err := s.NewMultiQuery(
		Selection{0: [][]byte{[]byte("oncology")}},
		Selection{0: [][]byte{[]byte("gold")}},
		Selection{0: [][]byte{[]byte("open")}},
	)
	if err != nil {
		t.Fatal(err)
	}
	dP, err := DecryptTable(mq.Tokens[0], ctP)
	if err != nil {
		t.Fatal(err)
	}
	dI, err := DecryptTable(mq.Tokens[1], ctI)
	if err != nil {
		t.Fatal(err)
	}
	dC, err := DecryptTable(mq.Tokens[2], ctC)
	if err != nil {
		t.Fatal(err)
	}

	matches := MultiHashJoin(dP, dI, dC)
	// Only ins-A satisfies all three selections: patient 0, insurer 0,
	// claim 0. (Claim 1 is closed; patient 1 is ins-B whose insurer is
	// basic.)
	if len(matches) != 1 {
		t.Fatalf("expected 1 three-way match, got %v", matches)
	}
	want := []int{0, 0, 0}
	for i, r := range matches[0].Rows {
		if r != want[i] {
			t.Fatalf("match rows = %v, want %v", matches[0].Rows, want)
		}
	}
}

// TestThreeWayJoinCrossProduct: equality groups expand into the full
// cross product across the tables.
func TestThreeWayJoinCrossProduct(t *testing.T) {
	s := newTestScheme(t, 1, 1)
	mk := func(n int) []Row {
		rows := make([]Row, n)
		for i := range rows {
			rows[i] = Row{JoinValue: []byte("k"), Attrs: [][]byte{[]byte("a")}}
		}
		return rows
	}
	ct1, _ := s.EncryptTable(mk(2))
	ct2, _ := s.EncryptTable(mk(3))
	ct3, _ := s.EncryptTable(mk(1))

	mq, err := s.NewMultiQuery(Selection{}, Selection{}, Selection{})
	if err != nil {
		t.Fatal(err)
	}
	d1, _ := DecryptTable(mq.Tokens[0], ct1)
	d2, _ := DecryptTable(mq.Tokens[1], ct2)
	d3, _ := DecryptTable(mq.Tokens[2], ct3)
	matches := MultiHashJoin(d1, d2, d3)
	if len(matches) != 2*3*1 {
		t.Fatalf("expected 6 combinations, got %d", len(matches))
	}
	seen := map[[3]int]bool{}
	for _, m := range matches {
		key := [3]int{m.Rows[0], m.Rows[1], m.Rows[2]}
		if seen[key] {
			t.Fatalf("duplicate combination %v", key)
		}
		seen[key] = true
	}
}

// TestMultiJoinMissingTableYieldsNothing: inner-join semantics — a join
// value absent from one table produces no output.
func TestMultiJoinMissingTableYieldsNothing(t *testing.T) {
	s := newTestScheme(t, 1, 1)
	a := []Row{{JoinValue: []byte("x"), Attrs: [][]byte{[]byte("a")}}}
	b := []Row{{JoinValue: []byte("x"), Attrs: [][]byte{[]byte("a")}}}
	c := []Row{{JoinValue: []byte("y"), Attrs: [][]byte{[]byte("a")}}}
	ctA, _ := s.EncryptTable(a)
	ctB, _ := s.EncryptTable(b)
	ctC, _ := s.EncryptTable(c)
	mq, err := s.NewMultiQuery(Selection{}, Selection{}, Selection{})
	if err != nil {
		t.Fatal(err)
	}
	dA, _ := DecryptTable(mq.Tokens[0], ctA)
	dB, _ := DecryptTable(mq.Tokens[1], ctB)
	dC, _ := DecryptTable(mq.Tokens[2], ctC)
	if got := MultiHashJoin(dA, dB, dC); len(got) != 0 {
		t.Fatalf("expected no matches, got %v", got)
	}
	// Pairwise, A and B still match.
	if got := MultiHashJoin(dA, dB); len(got) != 1 {
		t.Fatalf("two-way multi join = %v", got)
	}
}

func TestNewMultiQueryValidation(t *testing.T) {
	s := newTestScheme(t, 1, 1)
	if _, err := s.NewMultiQuery(Selection{}); err == nil {
		t.Fatal("single-table multi-query accepted")
	}
	if _, err := s.NewMultiQuery(Selection{}, Selection{9: [][]byte{[]byte("v")}}); err == nil {
		t.Fatal("invalid selection accepted")
	}
	if MultiHashJoin() != nil {
		t.Fatal("empty multi join should be nil")
	}
}

// TestMultiQueryIsolatedFromPairQueries: tokens of a multi-query must
// not link with tokens of an ordinary query over the same data (fresh
// keys per query).
func TestMultiQueryIsolatedFromPairQueries(t *testing.T) {
	s := newTestScheme(t, 1, 1)
	rows := []Row{{JoinValue: []byte("x"), Attrs: [][]byte{[]byte("a")}}}
	ct, _ := s.EncryptTable(rows)

	mq, err := s.NewMultiQuery(Selection{}, Selection{})
	if err != nil {
		t.Fatal(err)
	}
	q, err := s.NewQuery(Selection{}, Selection{})
	if err != nil {
		t.Fatal(err)
	}
	d1, _ := DecryptTable(mq.Tokens[0], ct)
	d2, _ := DecryptTable(q.TokenA, ct)
	if Match(d1[0], d2[0]) {
		t.Fatal("multi-query and pair-query results are linkable")
	}
}
