package securejoin

import (
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/ipe"
)

// Scheme (master key) serialization, so a client can persist its key
// material and keep querying tables uploaded in earlier sessions.

// MarshalBinary encodes the scheme parameters and master secret key.
// The output is secret: anyone holding it can decrypt-match every row.
func (s *Scheme) MarshalBinary() ([]byte, error) {
	mskBytes, err := s.msk.MarshalBinary()
	if err != nil {
		return nil, err
	}
	out := make([]byte, 8, 8+len(mskBytes))
	binary.BigEndian.PutUint32(out[0:4], uint32(s.params.M))
	binary.BigEndian.PutUint32(out[4:8], uint32(s.params.T))
	return append(out, mskBytes...), nil
}

// LoadScheme reconstructs a scheme from MarshalBinary output. rng
// supplies randomness for subsequent operations (nil = crypto/rand).
func LoadScheme(data []byte, rng io.Reader) (*Scheme, error) {
	if len(data) < 8 {
		return nil, fmt.Errorf("securejoin: scheme encoding too short")
	}
	params := Params{
		M: int(binary.BigEndian.Uint32(data[0:4])),
		T: int(binary.BigEndian.Uint32(data[4:8])),
	}
	if err := params.Validate(); err != nil {
		return nil, err
	}
	msk := &ipe.MasterKey{}
	if err := msk.UnmarshalBinary(data[8:]); err != nil {
		return nil, err
	}
	if msk.N != params.Dim() {
		return nil, fmt.Errorf("securejoin: master key dimension %d does not match params dimension %d",
			msk.N, params.Dim())
	}
	return &Scheme{params: params, msk: msk, rng: rng}, nil
}
