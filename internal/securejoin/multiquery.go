package securejoin

import (
	"errors"
	"fmt"

	"repro/internal/zq"
)

// Multi-table queries. The paper's related work (Section 7) recounts
// how CryptDB-era schemes need re-encryption machinery to join more
// than two tables under per-table keys; Secure Join needs none of it:
// every table is encrypted under the same master secret and a query is
// bound to a fresh symmetric key k, so issuing one token per table with
// a shared k makes ALL of the query's tables mutually joinable — rows
// of any two tables match iff they carry equal join values and satisfy
// their selections, and the per-query k still isolates the query series
// (no super-additive leakage across queries).

// MultiQuery is one equi-join query over N tables: the i-th token
// filters the i-th table, all bound to the same fresh k.
type MultiQuery struct {
	Tokens []*Token
}

// NewMultiQuery issues one token per selection, all sharing a fresh
// query key. At least two selections are required.
func (s *Scheme) NewMultiQuery(sels ...Selection) (*MultiQuery, error) {
	if len(sels) < 2 {
		return nil, errors.New("securejoin: a multi-query needs at least two tables")
	}
	k, err := zq.RandomNonZero(s.rng)
	if err != nil {
		return nil, err
	}
	mq := &MultiQuery{Tokens: make([]*Token, len(sels))}
	for i, sel := range sels {
		tk, err := s.TokenGen(k, sel)
		if err != nil {
			return nil, fmt.Errorf("securejoin: token %d: %w", i, err)
		}
		mq.Tokens[i] = tk
	}
	return mq, nil
}

// MultiMatch is one result of a multi-way join: Rows[i] indexes the
// matching row of table i. All rows share one join value and satisfy
// their tables' selections.
type MultiMatch struct {
	Rows []int
}

// MultiHashJoin joins N decrypted tables on equal D values: it returns
// the cross product, within each equality group, of the group's rows of
// each table — the N-way generalization of HashJoin. Groups missing a
// representative in any table produce no output (inner-join semantics).
func MultiHashJoin(tables ...[]DValue) []MultiMatch {
	if len(tables) == 0 {
		return nil
	}
	// Group rows of every table by D value.
	groups := make(map[string][][]int) // D -> per-table row lists
	for ti, ds := range tables {
		for ri, d := range ds {
			key := string(d)
			g, ok := groups[key]
			if !ok {
				g = make([][]int, len(tables))
				groups[key] = g
			}
			g[ti] = append(g[ti], ri)
		}
	}

	var out []MultiMatch
	for _, g := range groups {
		complete := true
		for _, rows := range g {
			if len(rows) == 0 {
				complete = false
				break
			}
		}
		if !complete {
			continue
		}
		out = append(out, crossProduct(g)...)
	}
	return out
}

// crossProduct expands one equality group into all row combinations.
func crossProduct(group [][]int) []MultiMatch {
	total := 1
	for _, rows := range group {
		total *= len(rows)
	}
	out := make([]MultiMatch, 0, total)
	idx := make([]int, len(group))
	for {
		m := MultiMatch{Rows: make([]int, len(group))}
		for i, rows := range group {
			m.Rows[i] = rows[idx[i]]
		}
		out = append(out, m)
		// Odometer increment.
		i := len(idx) - 1
		for ; i >= 0; i-- {
			idx[i]++
			if idx[i] < len(group[i]) {
				break
			}
			idx[i] = 0
		}
		if i < 0 {
			return out
		}
	}
}
