package securejoin

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestRandomizedMatchProperty is a randomized end-to-end property test
// of the scheme's match semantics: for random tables over a small value
// universe and random IN-clause selections, the encrypted hash join
// must return exactly the pairs a plaintext join would. This covers the
// full statement of Theorem 5.2 on arbitrary (not hand-picked) inputs.
func TestRandomizedMatchProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized property test is slow")
	}
	const (
		trials    = 4
		rowsA     = 6
		rowsB     = 8
		joinSpace = 3 // few join values => plenty of collisions
		attrSpace = 4
		maxT      = 2
	)
	rng := rand.New(rand.NewSource(7))
	s := newTestScheme(t, 1, maxT)

	for trial := 0; trial < trials; trial++ {
		makeRows := func(n int) ([]Row, []string, []string) {
			rows := make([]Row, n)
			joins := make([]string, n)
			attrs := make([]string, n)
			for i := range rows {
				joins[i] = fmt.Sprintf("j%d", rng.Intn(joinSpace))
				attrs[i] = fmt.Sprintf("a%d", rng.Intn(attrSpace))
				rows[i] = Row{JoinValue: []byte(joins[i]), Attrs: [][]byte{[]byte(attrs[i])}}
			}
			return rows, joins, attrs
		}
		tableA, joinsA, attrsA := makeRows(rowsA)
		tableB, joinsB, attrsB := makeRows(rowsB)

		ctA, err := s.EncryptTable(tableA)
		if err != nil {
			t.Fatal(err)
		}
		ctB, err := s.EncryptTable(tableB)
		if err != nil {
			t.Fatal(err)
		}

		// Random IN clauses of size 1..maxT per table.
		pick := func() ([][]byte, map[string]bool) {
			k := 1 + rng.Intn(maxT)
			vals := make([][]byte, 0, k)
			set := map[string]bool{}
			for len(vals) < k {
				v := fmt.Sprintf("a%d", rng.Intn(attrSpace))
				if set[v] {
					continue
				}
				set[v] = true
				vals = append(vals, []byte(v))
			}
			return vals, set
		}
		valsA, setA := pick()
		valsB, setB := pick()

		q, err := s.NewQuery(Selection{0: valsA}, Selection{0: valsB})
		if err != nil {
			t.Fatal(err)
		}
		das, err := DecryptTable(q.TokenA, ctA)
		if err != nil {
			t.Fatal(err)
		}
		dbs, err := DecryptTable(q.TokenB, ctB)
		if err != nil {
			t.Fatal(err)
		}
		got := map[[2]int]bool{}
		for _, p := range HashJoin(das, dbs) {
			got[[2]int{p.RowA, p.RowB}] = true
		}

		// Plaintext reference join.
		want := map[[2]int]bool{}
		for i := 0; i < rowsA; i++ {
			if !setA[attrsA[i]] {
				continue
			}
			for j := 0; j < rowsB; j++ {
				if !setB[attrsB[j]] {
					continue
				}
				if joinsA[i] == joinsB[j] {
					want[[2]int{i, j}] = true
				}
			}
		}

		if len(got) != len(want) {
			t.Fatalf("trial %d: %d matches, want %d (sel A=%q B=%q)",
				trial, len(got), len(want), valsA, valsB)
		}
		for p := range want {
			if !got[p] {
				t.Fatalf("trial %d: missing pair %v", trial, p)
			}
		}
	}
}
