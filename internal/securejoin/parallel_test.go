package securejoin

import (
	"fmt"
	"sync"
	"testing"
)

func TestDecryptTableParallelMatchesSequential(t *testing.T) {
	s := newTestScheme(t, 1, 1)
	rows := make([]Row, 16)
	for i := range rows {
		rows[i] = Row{
			JoinValue: []byte(fmt.Sprintf("j-%d", i%4)),
			Attrs:     [][]byte{[]byte("a")},
		}
	}
	cts, err := s.EncryptTable(rows)
	if err != nil {
		t.Fatal(err)
	}
	q, err := s.NewQuery(Selection{}, Selection{})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := DecryptTable(q.TokenA, cts)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 1, 2, 4, 32} {
		par, err := DecryptTableParallel(q.TokenA, cts, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(par) != len(seq) {
			t.Fatalf("workers=%d: length mismatch", workers)
		}
		for i := range seq {
			if !Match(seq[i], par[i]) {
				t.Fatalf("workers=%d: row %d differs from sequential result", workers, i)
			}
		}
	}
}

func TestDecryptTableParallelEmpty(t *testing.T) {
	s := newTestScheme(t, 1, 1)
	q, err := s.NewQuery(Selection{}, Selection{})
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecryptTableParallel(q.TokenA, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Fatal("empty input should give empty output")
	}
}

func TestDecryptTableParallelPropagatesErrors(t *testing.T) {
	s := newTestScheme(t, 1, 1)
	ct, err := s.Encrypt(Row{JoinValue: []byte("x"), Attrs: [][]byte{[]byte("a")}})
	if err != nil {
		t.Fatal(err)
	}
	q, err := s.NewQuery(Selection{}, Selection{})
	if err != nil {
		t.Fatal(err)
	}
	// Build a ciphertext with mismatched dimension to force a decrypt
	// error in one slot.
	bad := &RowCiphertext{C: ct.C}
	short := *bad.C
	short.Elems = short.Elems[:len(short.Elems)-1]
	cts := []*RowCiphertext{ct, {C: &short}, ct, ct}
	if _, err := DecryptTableParallel(q.TokenA, cts, 3); err == nil {
		t.Fatal("error in one row was swallowed")
	}
}

// TestDecryptTableParallelConcurrentCallers runs several parallel
// decryptions of the same table at once — the engine does exactly this
// when concurrent queries each spin up a worker pool — and checks every
// caller still matches the sequential result. Meaningful under -race.
func TestDecryptTableParallelConcurrentCallers(t *testing.T) {
	s := newTestScheme(t, 1, 1)
	rows := make([]Row, 12)
	for i := range rows {
		rows[i] = Row{
			JoinValue: []byte(fmt.Sprintf("j-%d", i%3)),
			Attrs:     [][]byte{[]byte("a")},
		}
	}
	cts, err := s.EncryptTable(rows)
	if err != nil {
		t.Fatal(err)
	}
	q, err := s.NewQuery(Selection{}, Selection{})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := DecryptTable(q.TokenA, cts)
	if err != nil {
		t.Fatal(err)
	}

	const callers = 4
	var wg sync.WaitGroup
	errs := make(chan error, callers)
	for g := 0; g < callers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			par, err := DecryptTableParallel(q.TokenA, cts, 3)
			if err != nil {
				errs <- err
				return
			}
			for i := range seq {
				if !Match(seq[i], par[i]) {
					errs <- fmt.Errorf("caller %d: row %d differs from sequential", g, i)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// BenchmarkDecryptParallel measures SJ.Dec over one table as the worker
// count grows; per-row pairings are independent, so speedup should
// track cores until memory bandwidth saturates.
func BenchmarkDecryptParallel(b *testing.B) {
	s, err := Setup(Params{M: 1, T: 1}, nil)
	if err != nil {
		b.Fatal(err)
	}
	rows := make([]Row, 32)
	for i := range rows {
		rows[i] = Row{
			JoinValue: []byte(fmt.Sprintf("j-%d", i%8)),
			Attrs:     [][]byte{[]byte("a")},
		}
	}
	cts, err := s.EncryptTable(rows)
	if err != nil {
		b.Fatal(err)
	}
	q, err := s.NewQuery(Selection{}, Selection{})
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := DecryptTableParallel(q.TokenA, cts, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
