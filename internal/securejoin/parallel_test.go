package securejoin

import (
	"fmt"
	"testing"
)

func TestDecryptTableParallelMatchesSequential(t *testing.T) {
	s := newTestScheme(t, 1, 1)
	rows := make([]Row, 16)
	for i := range rows {
		rows[i] = Row{
			JoinValue: []byte(fmt.Sprintf("j-%d", i%4)),
			Attrs:     [][]byte{[]byte("a")},
		}
	}
	cts, err := s.EncryptTable(rows)
	if err != nil {
		t.Fatal(err)
	}
	q, err := s.NewQuery(Selection{}, Selection{})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := DecryptTable(q.TokenA, cts)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 1, 2, 4, 32} {
		par, err := DecryptTableParallel(q.TokenA, cts, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(par) != len(seq) {
			t.Fatalf("workers=%d: length mismatch", workers)
		}
		for i := range seq {
			if !Match(seq[i], par[i]) {
				t.Fatalf("workers=%d: row %d differs from sequential result", workers, i)
			}
		}
	}
}

func TestDecryptTableParallelEmpty(t *testing.T) {
	s := newTestScheme(t, 1, 1)
	q, err := s.NewQuery(Selection{}, Selection{})
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecryptTableParallel(q.TokenA, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Fatal("empty input should give empty output")
	}
}

func TestDecryptTableParallelPropagatesErrors(t *testing.T) {
	s := newTestScheme(t, 1, 1)
	ct, err := s.Encrypt(Row{JoinValue: []byte("x"), Attrs: [][]byte{[]byte("a")}})
	if err != nil {
		t.Fatal(err)
	}
	q, err := s.NewQuery(Selection{}, Selection{})
	if err != nil {
		t.Fatal(err)
	}
	// Build a ciphertext with mismatched dimension to force a decrypt
	// error in one slot.
	bad := &RowCiphertext{C: ct.C}
	short := *bad.C
	short.Elems = short.Elems[:len(short.Elems)-1]
	cts := []*RowCiphertext{ct, {C: &short}, ct, ct}
	if _, err := DecryptTableParallel(q.TokenA, cts, 3); err == nil {
		t.Fatal("error in one row was swallowed")
	}
}
