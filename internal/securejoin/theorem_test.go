package securejoin

import "testing"

// TestTheorem52AllCases exercises the eight cases of Theorem 5.2's
// match analysis. D = D' must hold if and only if the two decryptions
// (i) belong to the same query, (ii) have equal join values and (iii)
// both satisfy their selection criteria. Every other combination must
// mismatch (the theorem bounds the failure probability by O(t/q), i.e.
// never in practice).
func TestTheorem52AllCases(t *testing.T) {
	s := newTestScheme(t, 1, 2)

	const (
		joinX = "join-x"
		joinY = "join-y"
		attrP = "pass" // will be in the WHERE clause
		attrF = "fail" // will not
	)
	encrypt := func(join, attr string) *RowCiphertext {
		ct, err := s.Encrypt(Row{JoinValue: []byte(join), Attrs: [][]byte{[]byte(attr)}})
		if err != nil {
			t.Fatal(err)
		}
		return ct
	}
	sel := Selection{0: [][]byte{[]byte(attrP)}}
	newQ := func() *Query {
		q, err := s.NewQuery(sel, sel)
		if err != nil {
			t.Fatal(err)
		}
		return q
	}
	dec := func(tk *Token, ct *RowCiphertext) DValue {
		d, err := Decrypt(tk, ct)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}

	q1 := newQ()
	q2 := newQ()

	cases := []struct {
		name      string
		tkA, tkB  *Token
		rowA      *RowCiphertext
		rowB      *RowCiphertext
		wantMatch bool
	}{
		// Case 1: same query, same join value, both selections hold.
		{"same-q/same-join/sel-holds", q1.TokenA, q1.TokenB,
			encrypt(joinX, attrP), encrypt(joinX, attrP), true},
		// Case 2: same query, same join value, a selection fails.
		{"same-q/same-join/sel-fails", q1.TokenA, q1.TokenB,
			encrypt(joinX, attrP), encrypt(joinX, attrF), false},
		// Case 3: same query, different join values, selections hold.
		{"same-q/diff-join/sel-holds", q1.TokenA, q1.TokenB,
			encrypt(joinX, attrP), encrypt(joinY, attrP), false},
		// Case 4: same query, different join values, a selection fails.
		{"same-q/diff-join/sel-fails", q1.TokenA, q1.TokenB,
			encrypt(joinX, attrF), encrypt(joinY, attrP), false},
		// Case 5: different queries, same join value, selections hold.
		{"diff-q/same-join/sel-holds", q1.TokenA, q2.TokenB,
			encrypt(joinX, attrP), encrypt(joinX, attrP), false},
		// Case 6: different queries, same join value, a selection fails.
		{"diff-q/same-join/sel-fails", q1.TokenA, q2.TokenB,
			encrypt(joinX, attrP), encrypt(joinX, attrF), false},
		// Case 7: different queries, different join values, selections hold.
		{"diff-q/diff-join/sel-holds", q1.TokenA, q2.TokenB,
			encrypt(joinX, attrP), encrypt(joinY, attrP), false},
		// Case 8: different queries, different join values, selection fails.
		{"diff-q/diff-join/sel-fails", q1.TokenA, q2.TokenB,
			encrypt(joinX, attrF), encrypt(joinY, attrF), false},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			da := dec(tc.tkA, tc.rowA)
			db := dec(tc.tkB, tc.rowB)
			if got := Match(da, db); got != tc.wantMatch {
				t.Fatalf("Match = %v, want %v", got, tc.wantMatch)
			}
		})
	}
}

// TestSelfJoinWithinOneTable: the scheme supports arbitrary equi-joins,
// including joining a table with itself via two tokens of the same
// query, which matches rows with equal join values in both copies.
func TestSelfJoinWithinOneTable(t *testing.T) {
	s := newTestScheme(t, 1, 2)
	rows := []Row{
		{JoinValue: []byte("g1"), Attrs: [][]byte{[]byte("a")}},
		{JoinValue: []byte("g2"), Attrs: [][]byte{[]byte("a")}},
		{JoinValue: []byte("g1"), Attrs: [][]byte{[]byte("a")}},
	}
	ct, err := s.EncryptTable(rows)
	if err != nil {
		t.Fatal(err)
	}
	q, err := s.NewQuery(Selection{}, Selection{})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := DecryptTable(q.TokenA, ct)
	if err != nil {
		t.Fatal(err)
	}
	pairs := SelfPairs(ds)
	if len(pairs) != 1 || pairs[0] != [2]int{0, 2} {
		t.Fatalf("self join should find rows 0 and 2 equal, got %v", pairs)
	}
}

// TestNonPKFKJoin: join values may repeat in BOTH tables (many-to-many),
// which Hahn et al. cannot handle but Secure Join must.
func TestNonPKFKJoin(t *testing.T) {
	s := newTestScheme(t, 1, 1)
	left := []Row{
		{JoinValue: []byte("k"), Attrs: [][]byte{[]byte("a")}},
		{JoinValue: []byte("k"), Attrs: [][]byte{[]byte("a")}},
	}
	right := []Row{
		{JoinValue: []byte("k"), Attrs: [][]byte{[]byte("b")}},
		{JoinValue: []byte("k"), Attrs: [][]byte{[]byte("b")}},
		{JoinValue: []byte("other"), Attrs: [][]byte{[]byte("b")}},
	}
	ctL, _ := s.EncryptTable(left)
	ctR, _ := s.EncryptTable(right)
	q, err := s.NewQuery(Selection{}, Selection{})
	if err != nil {
		t.Fatal(err)
	}
	dl, _ := DecryptTable(q.TokenA, ctL)
	dr, _ := DecryptTable(q.TokenB, ctR)
	pairs := HashJoin(dl, dr)
	if len(pairs) != 4 {
		t.Fatalf("many-to-many join should yield 2x2 = 4 pairs, got %d", len(pairs))
	}
}

// TestMultipleAttributes: selections over two different attributes of
// the same table must both be enforced (conjunction).
func TestMultipleAttributes(t *testing.T) {
	s := newTestScheme(t, 2, 2)
	rows := []Row{
		{JoinValue: []byte("j"), Attrs: [][]byte{[]byte("red"), []byte("large")}},
		{JoinValue: []byte("j"), Attrs: [][]byte{[]byte("red"), []byte("small")}},
		{JoinValue: []byte("j"), Attrs: [][]byte{[]byte("blue"), []byte("large")}},
	}
	ct, _ := s.EncryptTable(rows)
	probe := []Row{{JoinValue: []byte("j"), Attrs: [][]byte{[]byte("x"), []byte("y")}}}
	ctP, _ := s.EncryptTable(probe)

	q, err := s.NewQuery(
		Selection{0: [][]byte{[]byte("red")}, 1: [][]byte{[]byte("large")}},
		Selection{},
	)
	if err != nil {
		t.Fatal(err)
	}
	ds, _ := DecryptTable(q.TokenA, ct)
	dp, _ := DecryptTable(q.TokenB, ctP)
	pairs := HashJoin(ds, dp)
	if len(pairs) != 1 || pairs[0].RowA != 0 {
		t.Fatalf("conjunction should match only row 0, got %v", pairs)
	}
}

// TestShortRowPadding: rows with fewer attributes than M are padded and
// must never satisfy a selection on the missing attribute.
func TestShortRowPadding(t *testing.T) {
	s := newTestScheme(t, 2, 2)
	rows := []Row{
		{JoinValue: []byte("j"), Attrs: [][]byte{[]byte("red")}}, // attr 1 missing
	}
	ct, err := s.EncryptTable(rows)
	if err != nil {
		t.Fatal(err)
	}
	probe := []Row{{JoinValue: []byte("j"), Attrs: [][]byte{[]byte("x"), []byte("y")}}}
	ctP, _ := s.EncryptTable(probe)

	q, err := s.NewQuery(
		Selection{1: [][]byte{[]byte("anything")}},
		Selection{},
	)
	if err != nil {
		t.Fatal(err)
	}
	ds, _ := DecryptTable(q.TokenA, ct)
	dp, _ := DecryptTable(q.TokenB, ctP)
	if pairs := HashJoin(ds, dp); len(pairs) != 0 {
		t.Fatalf("padded attribute should never match, got %v", pairs)
	}

	// Over-long rows are rejected.
	if _, err := s.Encrypt(Row{JoinValue: []byte("j"), Attrs: [][]byte{[]byte("a"), []byte("b"), []byte("c")}}); err == nil {
		t.Fatal("row with too many attributes should be rejected")
	}
}
