package securejoin

import (
	"fmt"
	"sync"
	"testing"
)

// encryptTestTable builds a small table with repeated join values so
// decryptions produce both matching and non-matching D values.
func encryptTestTable(t *testing.T, s *Scheme, n int) []*RowCiphertext {
	t.Helper()
	rows := make([]Row, n)
	for i := range rows {
		rows[i] = Row{
			JoinValue: []byte(fmt.Sprintf("j-%d", i%4)),
			Attrs:     [][]byte{[]byte(fmt.Sprintf("a-%d", i%2))},
		}
	}
	cts, err := s.EncryptTable(rows)
	if err != nil {
		t.Fatal(err)
	}
	return cts
}

// TestPrecomputedDecryptMatchesNaive pins the precomputed SJ.Dec path
// against the naive one: DValues must be byte-identical, both per row
// and over a whole table, so caching and join layers built on DValue
// bytes see no difference.
func TestPrecomputedDecryptMatchesNaive(t *testing.T) {
	s := newTestScheme(t, 1, 1)
	cts := encryptTestTable(t, s, 8)
	q, err := s.NewQuery(Selection{}, Selection{})
	if err != nil {
		t.Fatal(err)
	}

	naive, err := DecryptTable(q.TokenA, cts)
	if err != nil {
		t.Fatal(err)
	}
	pc := q.TokenA.Precompute()
	fast, err := DecryptTableWith(pc, cts)
	if err != nil {
		t.Fatal(err)
	}
	if len(fast) != len(naive) {
		t.Fatal("length mismatch")
	}
	for i := range naive {
		if string(naive[i]) != string(fast[i]) {
			t.Fatalf("row %d: precomputed DValue differs from naive", i)
		}
		single, err := pc.Decrypt(cts[i])
		if err != nil {
			t.Fatal(err)
		}
		if string(single) != string(naive[i]) {
			t.Fatalf("row %d: single-row precomputed DValue differs from naive", i)
		}
	}
}

// TestPrecomputedDecryptDimensionMismatch checks the precomputed path
// rejects mismatched ciphertext dimensions like the naive one does.
func TestPrecomputedDecryptDimensionMismatch(t *testing.T) {
	s := newTestScheme(t, 1, 1)
	cts := encryptTestTable(t, s, 1)
	q, err := s.NewQuery(Selection{}, Selection{})
	if err != nil {
		t.Fatal(err)
	}
	short := *cts[0].C
	short.Elems = short.Elems[:len(short.Elems)-1]
	pc := q.TokenA.Precompute()
	if _, err := pc.Decrypt(&RowCiphertext{C: &short}); err == nil {
		t.Fatal("dimension mismatch not detected")
	}
}

// TestPrecomputedDecryptSharedHandleConcurrent shares one precompute
// handle across goroutines that each decrypt a disjoint stripe of the
// table, as DecryptTableParallel's workers do. Under -race this is the
// data-race check for the shared read-only Miller program.
func TestPrecomputedDecryptSharedHandleConcurrent(t *testing.T) {
	s := newTestScheme(t, 1, 1)
	cts := encryptTestTable(t, s, 12)
	q, err := s.NewQuery(Selection{}, Selection{})
	if err != nil {
		t.Fatal(err)
	}
	naive, err := DecryptTable(q.TokenA, cts)
	if err != nil {
		t.Fatal(err)
	}

	pc := q.TokenA.Precompute()
	const workers = 4
	var wg sync.WaitGroup
	bad := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(cts); i += workers {
				d, err := pc.Decrypt(cts[i])
				if err != nil {
					bad[w] = err
					return
				}
				if string(d) != string(naive[i]) {
					bad[w] = fmt.Errorf("row %d: concurrent precomputed DValue differs", i)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range bad {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// BenchmarkDecryptPrecomputed is the headline ablation for the
// fixed-token optimization: SJ.Dec over a 32-row table with a full
// Miller loop per row (naive) against one recorded token program
// shared by all rows (precomputed, including the one-time recording
// cost). Divide ns/op by 32 for the per-row figure.
func BenchmarkDecryptPrecomputed(b *testing.B) {
	s, err := Setup(Params{M: 1, T: 1}, nil)
	if err != nil {
		b.Fatal(err)
	}
	rows := make([]Row, 32)
	for i := range rows {
		rows[i] = Row{
			JoinValue: []byte(fmt.Sprintf("j-%d", i%8)),
			Attrs:     [][]byte{[]byte("a")},
		}
	}
	cts, err := s.EncryptTable(rows)
	if err != nil {
		b.Fatal(err)
	}
	q, err := s.NewQuery(Selection{}, Selection{})
	if err != nil {
		b.Fatal(err)
	}

	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := DecryptTable(q.TokenA, cts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("precomputed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pc := q.TokenA.Precompute()
			if _, err := DecryptTableWith(pc, cts); err != nil {
				b.Fatal(err)
			}
		}
	})
}
