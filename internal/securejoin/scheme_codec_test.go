package securejoin

import "testing"

func TestSchemeCodecRoundTrip(t *testing.T) {
	s := newTestScheme(t, 1, 2)
	rows := []Row{
		{JoinValue: []byte("1"), Attrs: [][]byte{[]byte("a")}},
		{JoinValue: []byte("1"), Attrs: [][]byte{[]byte("b")}},
	}
	cts, err := s.EncryptTable(rows)
	if err != nil {
		t.Fatal(err)
	}

	data, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := LoadScheme(data, nil)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Params() != s.Params() {
		t.Fatalf("params %+v, want %+v", restored.Params(), s.Params())
	}

	// Tokens from the restored scheme must unlock ciphertexts produced
	// by the original scheme.
	q, err := restored.NewQuery(
		Selection{0: [][]byte{[]byte("a")}},
		Selection{},
	)
	if err != nil {
		t.Fatal(err)
	}
	probe, err := restored.Encrypt(Row{JoinValue: []byte("1"), Attrs: [][]byte{[]byte("x")}})
	if err != nil {
		t.Fatal(err)
	}
	da, err := Decrypt(q.TokenA, cts[0])
	if err != nil {
		t.Fatal(err)
	}
	db, err := Decrypt(q.TokenB, probe)
	if err != nil {
		t.Fatal(err)
	}
	if !Match(da, db) {
		t.Fatal("restored scheme cannot match original ciphertexts")
	}
	// Row with non-matching attribute must not match.
	dOther, err := Decrypt(q.TokenA, cts[1])
	if err != nil {
		t.Fatal(err)
	}
	if Match(dOther, db) {
		t.Fatal("selection semantics lost after key reload")
	}
}

func TestLoadSchemeRejectsMalformed(t *testing.T) {
	if _, err := LoadScheme(nil, nil); err == nil {
		t.Fatal("nil encoding accepted")
	}
	if _, err := LoadScheme([]byte{0, 0, 0, 1, 0, 0, 0, 0}, nil); err == nil {
		t.Fatal("T=0 accepted")
	}
	s := newTestScheme(t, 1, 2)
	data, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	// Declare different params than the embedded key dimension.
	data[7] = 9 // T = 9 -> dim mismatch
	if _, err := LoadScheme(data, nil); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
}
