package securejoin

import (
	"testing"
)

// buildExampleTables returns the Teams and Employees tables of
// Example 2.1 with one filterable attribute each.
func buildExampleTables() (teams, employees []Row) {
	teams = []Row{
		{JoinValue: []byte("1"), Attrs: [][]byte{[]byte("Web Application")}},
		{JoinValue: []byte("2"), Attrs: [][]byte{[]byte("Database")}},
	}
	employees = []Row{
		{JoinValue: []byte("1"), Attrs: [][]byte{[]byte("Programmer")}},
		{JoinValue: []byte("1"), Attrs: [][]byte{[]byte("Tester")}},
		{JoinValue: []byte("2"), Attrs: [][]byte{[]byte("Programmer")}},
		{JoinValue: []byte("2"), Attrs: [][]byte{[]byte("Tester")}},
	}
	return teams, employees
}

func newTestScheme(t *testing.T, m, tt int) *Scheme {
	t.Helper()
	s, err := Setup(Params{M: m, T: tt}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestExampleQueryT1(t *testing.T) {
	// SELECT * FROM Employees JOIN Teams ON Team = Key
	// WHERE Name = "Web Application" AND Role = "Tester"
	// must return exactly (team 1, employee 2).
	s := newTestScheme(t, 1, 2)
	teams, employees := buildExampleTables()

	ctA, err := s.EncryptTable(teams)
	if err != nil {
		t.Fatal(err)
	}
	ctB, err := s.EncryptTable(employees)
	if err != nil {
		t.Fatal(err)
	}

	q, err := s.NewQuery(
		Selection{0: [][]byte{[]byte("Web Application")}},
		Selection{0: [][]byte{[]byte("Tester")}},
	)
	if err != nil {
		t.Fatal(err)
	}

	das, err := DecryptTable(q.TokenA, ctA)
	if err != nil {
		t.Fatal(err)
	}
	dbs, err := DecryptTable(q.TokenB, ctB)
	if err != nil {
		t.Fatal(err)
	}

	pairs := HashJoin(das, dbs)
	if len(pairs) != 1 || pairs[0].RowA != 0 || pairs[0].RowB != 1 {
		t.Fatalf("expected single match (0,1), got %v", pairs)
	}

	// Nested loop must agree with the hash join.
	nl := NestedLoopJoin(das, dbs)
	if len(nl) != 1 || nl[0] != pairs[0] {
		t.Fatalf("nested loop join disagrees: %v vs %v", nl, pairs)
	}
}

func TestUnselectiveQueryJoinsEverything(t *testing.T) {
	s := newTestScheme(t, 1, 2)
	teams, employees := buildExampleTables()
	ctA, _ := s.EncryptTable(teams)
	ctB, _ := s.EncryptTable(employees)

	q, err := s.NewQuery(Selection{}, Selection{})
	if err != nil {
		t.Fatal(err)
	}
	das, _ := DecryptTable(q.TokenA, ctA)
	dbs, _ := DecryptTable(q.TokenB, ctB)
	pairs := HashJoin(das, dbs)
	if len(pairs) != 4 {
		t.Fatalf("unfiltered join should yield 4 pairs, got %d: %v", len(pairs), pairs)
	}
}

func TestDifferentQueriesDoNotLink(t *testing.T) {
	// The same row decrypted by two different queries must produce
	// different D values even when both queries' selections match:
	// this is the core of the no-super-additive-leakage property.
	s := newTestScheme(t, 1, 2)
	teams, _ := buildExampleTables()
	ctA, _ := s.EncryptTable(teams)

	sel := Selection{0: [][]byte{[]byte("Web Application")}}
	q1, err := s.NewQuery(sel, sel)
	if err != nil {
		t.Fatal(err)
	}
	q2, err := s.NewQuery(sel, sel)
	if err != nil {
		t.Fatal(err)
	}
	d1, err := Decrypt(q1.TokenA, ctA[0])
	if err != nil {
		t.Fatal(err)
	}
	d2, err := Decrypt(q2.TokenA, ctA[0])
	if err != nil {
		t.Fatal(err)
	}
	if Match(d1, d2) {
		t.Fatal("different queries produced linkable D values")
	}
}

func TestSelfPairsWithinTable(t *testing.T) {
	// Two Employees rows with Team = 1 that both satisfy the selection
	// must yield an intra-table equality pair (the transitive-closure
	// pairs of Example 2.1).
	s := newTestScheme(t, 1, 2)
	employees := []Row{
		{JoinValue: []byte("1"), Attrs: [][]byte{[]byte("Tester")}},
		{JoinValue: []byte("1"), Attrs: [][]byte{[]byte("Tester")}},
		{JoinValue: []byte("2"), Attrs: [][]byte{[]byte("Tester")}},
	}
	ct, _ := s.EncryptTable(employees)
	q, err := s.NewQuery(Selection{0: [][]byte{[]byte("Tester")}}, Selection{})
	if err != nil {
		t.Fatal(err)
	}
	ds, _ := DecryptTable(q.TokenA, ct)
	pairs := SelfPairs(ds)
	if len(pairs) != 1 || pairs[0] != [2]int{0, 1} {
		t.Fatalf("expected self pair (0,1), got %v", pairs)
	}
}

func TestINClauseMultipleValues(t *testing.T) {
	s := newTestScheme(t, 1, 3)
	rows := []Row{
		{JoinValue: []byte("x"), Attrs: [][]byte{[]byte("red")}},
		{JoinValue: []byte("x"), Attrs: [][]byte{[]byte("green")}},
		{JoinValue: []byte("x"), Attrs: [][]byte{[]byte("blue")}},
	}
	ct, _ := s.EncryptTable(rows)
	other := []Row{{JoinValue: []byte("x"), Attrs: [][]byte{[]byte("any")}}}
	ctO, _ := s.EncryptTable(other)

	q, err := s.NewQuery(
		Selection{0: [][]byte{[]byte("red"), []byte("blue")}},
		Selection{},
	)
	if err != nil {
		t.Fatal(err)
	}
	ds, _ := DecryptTable(q.TokenA, ct)
	dOther, _ := DecryptTable(q.TokenB, ctO)
	pairs := HashJoin(ds, dOther)
	if len(pairs) != 2 {
		t.Fatalf("IN clause (red, blue) should match rows 0 and 2, got %v", pairs)
	}
	seen := map[int]bool{}
	for _, p := range pairs {
		seen[p.RowA] = true
	}
	if !seen[0] || !seen[2] || seen[1] {
		t.Fatalf("wrong rows matched: %v", pairs)
	}
}

func TestParamsValidation(t *testing.T) {
	if _, err := Setup(Params{M: 1, T: 0}, nil); err == nil {
		t.Fatal("T=0 should be rejected")
	}
	s := newTestScheme(t, 1, 2)
	if _, err := s.TokenGen(s.mustKey(t), Selection{5: [][]byte{[]byte("v")}}); err == nil {
		t.Fatal("out-of-range attribute should be rejected")
	}
	if _, err := s.TokenGen(s.mustKey(t), Selection{0: [][]byte{[]byte("a"), []byte("b"), []byte("c")}}); err == nil {
		t.Fatal("oversized IN clause should be rejected")
	}
}
