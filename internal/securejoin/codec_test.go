package securejoin

import (
	"bytes"
	"testing"

	"repro/internal/bn256"
	"repro/internal/ipe"
)

func TestTokenCodecRoundTrip(t *testing.T) {
	s := newTestScheme(t, 1, 2)
	q, err := s.NewQuery(Selection{0: [][]byte{[]byte("v")}}, Selection{})
	if err != nil {
		t.Fatal(err)
	}
	data, err := q.TokenA.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var tk Token
	if err := tk.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	data2, err := tk.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Fatal("token round trip not stable")
	}

	// The decoded token must behave identically.
	ct, err := s.Encrypt(Row{JoinValue: []byte("x"), Attrs: [][]byte{[]byte("v")}})
	if err != nil {
		t.Fatal(err)
	}
	d1, err := Decrypt(q.TokenA, ct)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := Decrypt(&tk, ct)
	if err != nil {
		t.Fatal(err)
	}
	if !Match(d1, d2) {
		t.Fatal("decoded token produces different D values")
	}
}

func TestCiphertextCodecRoundTrip(t *testing.T) {
	s := newTestScheme(t, 1, 2)
	ct, err := s.Encrypt(Row{JoinValue: []byte("x"), Attrs: [][]byte{[]byte("v")}})
	if err != nil {
		t.Fatal(err)
	}
	data, err := ct.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var ct2 RowCiphertext
	if err := ct2.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	q, err := s.NewQuery(Selection{0: [][]byte{[]byte("v")}}, Selection{})
	if err != nil {
		t.Fatal(err)
	}
	d1, err := Decrypt(q.TokenA, ct)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := Decrypt(q.TokenA, &ct2)
	if err != nil {
		t.Fatal(err)
	}
	if !Match(d1, d2) {
		t.Fatal("decoded ciphertext produces different D values")
	}
}

func TestCodecRejectsGarbage(t *testing.T) {
	var tk Token
	if err := tk.UnmarshalBinary(nil); err == nil {
		t.Fatal("nil token encoding accepted")
	}
	if err := tk.UnmarshalBinary([]byte{0, 0, 0, 2, 1, 2, 3}); err == nil {
		t.Fatal("truncated token encoding accepted")
	}
	var ct RowCiphertext
	if err := ct.UnmarshalBinary([]byte{0, 0}); err == nil {
		t.Fatal("short ciphertext encoding accepted")
	}
	// Correct length but invalid group elements.
	junk := make([]byte, 4+128)
	junk[3] = 1
	for i := 4; i < len(junk); i++ {
		junk[i] = 0xff
	}
	if err := ct.UnmarshalBinary(junk); err == nil {
		t.Fatal("non-curve ciphertext element accepted")
	}
}

// TestTamperedCiphertextDoesNotMatch injects a fault: flipping any
// group element of a row ciphertext must break the match (failure
// injection for the integrity of the match semantics).
func TestTamperedCiphertextDoesNotMatch(t *testing.T) {
	s := newTestScheme(t, 1, 1)
	row := Row{JoinValue: []byte("x"), Attrs: [][]byte{[]byte("v")}}
	ct, err := s.Encrypt(row)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := s.Encrypt(row)
	if err != nil {
		t.Fatal(err)
	}
	q, err := s.NewQuery(Selection{0: [][]byte{[]byte("v")}}, Selection{0: [][]byte{[]byte("v")}})
	if err != nil {
		t.Fatal(err)
	}
	dRef, err := Decrypt(q.TokenB, ref)
	if err != nil {
		t.Fatal(err)
	}
	dOrig, err := Decrypt(q.TokenA, ct)
	if err != nil {
		t.Fatal(err)
	}
	if !Match(dOrig, dRef) {
		t.Fatal("sanity: untampered rows should match")
	}

	// Tamper: swap two ciphertext elements — each remains a valid group
	// element, but the encoded vector changes.
	swapped := append([]*bn256.G2{}, ct.C.Elems...)
	swapped[0], swapped[1] = swapped[1], swapped[0]
	tampered := &RowCiphertext{C: &ipe.CiphertextM{Elems: swapped}}

	dTampered, err := Decrypt(q.TokenA, tampered)
	if err != nil {
		t.Fatal(err)
	}
	if Match(dTampered, dRef) {
		t.Fatal("tampered ciphertext still matches")
	}
}
