package securejoin

import (
	"encoding/binary"
	"fmt"

	"repro/internal/bn256"
	"repro/internal/ipe"
)

// Wire encodings for tokens and row ciphertexts, used by the TCP
// client/server protocol and by anything that persists encrypted tables.
// Both are a 4-byte big-endian element count followed by fixed-size
// group-element encodings (64 bytes per G1 element, 128 per G2).

const (
	g1Size = 64
	g2Size = 128
)

// MarshalBinary encodes the token.
func (t *Token) MarshalBinary() ([]byte, error) {
	n := len(t.Tk.Elems)
	out := make([]byte, 4, 4+n*g1Size)
	binary.BigEndian.PutUint32(out, uint32(n))
	for _, e := range t.Tk.Elems {
		out = append(out, e.Marshal()...)
	}
	return out, nil
}

// UnmarshalBinary decodes a token produced by MarshalBinary, validating
// every group element.
func (t *Token) UnmarshalBinary(data []byte) error {
	if len(data) < 4 {
		return fmt.Errorf("securejoin: token encoding too short")
	}
	n := int(binary.BigEndian.Uint32(data))
	data = data[4:]
	if len(data) != n*g1Size {
		return fmt.Errorf("securejoin: token encoding has %d trailing bytes, want %d", len(data), n*g1Size)
	}
	elems := make([]*bn256.G1, n)
	for i := 0; i < n; i++ {
		elems[i] = new(bn256.G1)
		if err := elems[i].Unmarshal(data[i*g1Size : (i+1)*g1Size]); err != nil {
			return fmt.Errorf("securejoin: token element %d: %w", i, err)
		}
	}
	t.Tk = &ipe.Token{Elems: elems}
	return nil
}

// MarshalBinary encodes the row ciphertext.
func (ct *RowCiphertext) MarshalBinary() ([]byte, error) {
	n := len(ct.C.Elems)
	out := make([]byte, 4, 4+n*g2Size)
	binary.BigEndian.PutUint32(out, uint32(n))
	for _, e := range ct.C.Elems {
		out = append(out, e.Marshal()...)
	}
	return out, nil
}

// UnmarshalBinary decodes a row ciphertext produced by MarshalBinary,
// validating every group element (curve membership and G2 subgroup
// checks included, so a malicious encoder cannot smuggle small-order
// points).
func (ct *RowCiphertext) UnmarshalBinary(data []byte) error {
	if len(data) < 4 {
		return fmt.Errorf("securejoin: ciphertext encoding too short")
	}
	n := int(binary.BigEndian.Uint32(data))
	data = data[4:]
	if len(data) != n*g2Size {
		return fmt.Errorf("securejoin: ciphertext encoding has %d trailing bytes, want %d", len(data), n*g2Size)
	}
	elems := make([]*bn256.G2, n)
	for i := 0; i < n; i++ {
		elems[i] = new(bn256.G2)
		if err := elems[i].Unmarshal(data[i*g2Size : (i+1)*g2Size]); err != nil {
			return fmt.Errorf("securejoin: ciphertext element %d: %w", i, err)
		}
	}
	ct.C = &ipe.CiphertextM{Elems: elems}
	return nil
}
