package securejoin

import (
	"testing"

	"repro/internal/zq"
)

// mustKey returns a fresh non-zero query key or fails the test.
func (s *Scheme) mustKey(t *testing.T) zq.Scalar {
	t.Helper()
	k, err := zq.RandomNonZero(s.rng)
	if err != nil {
		t.Fatal(err)
	}
	return k
}
