// Package client implements the data-owner side of the
// database-as-a-service model: it holds the Secure Join master key and
// the payload AEAD key, encrypts tables before upload, issues per-query
// tokens and decrypts result payloads. The server never receives any key
// material.
//
// A Client speaks the wire v2 protocol and is safe for concurrent use:
// requests carry unique IDs, responses are demultiplexed by a reader
// goroutine, and concurrent Join/Upload/Ping calls from multiple
// goroutines pipeline over the single connection. Join results can be
// consumed incrementally through JoinStream as the server streams
// batches, or all at once with Join.
package client

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"repro/internal/engine"
	"repro/internal/securejoin"
	"repro/internal/sql"
	"repro/internal/sse"
	"repro/internal/wire"
)

// ErrClosed is returned by calls on a client whose connection has been
// closed.
var ErrClosed = errors.New("client: connection closed")

// ErrOverloaded is wrapped by errors of requests the server shed under
// admission control (wire.CodeOverloaded): no work ran, and retrying
// after a backoff is safe — see WithRetry. Test with errors.Is.
var ErrOverloaded = errors.New("client: server overloaded")

// ErrIdleClosed is wrapped by errors of calls that failed because the
// server closed the connection for idling past its idle timeout
// (wire.CodeIdleTimeout). The client must re-dial to continue.
var ErrIdleClosed = errors.New("client: connection closed by server idle timeout")

// frameErr maps a terminal error frame to a client error, threading
// the wire code into a typed, errors.Is-testable error.
func frameErr(op string, f *wire.Frame) error {
	switch f.Code {
	case wire.CodeOverloaded:
		return fmt.Errorf("%w: %s rejected: %s", ErrOverloaded, op, f.Err)
	case wire.CodeUnknownJob:
		return fmt.Errorf("%w: %s rejected: %s", ErrUnknownJob, op, f.Err)
	default:
		return fmt.Errorf("client: %s rejected: %s", op, f.Err)
	}
}

// pending is one in-flight request's response queue. The reader
// goroutine pushes every frame carrying the request's ID and closes
// the queue after the terminal frame, or when the connection dies.
// The queue is unbounded so a stream consumed later than its neighbors
// never blocks the demultiplexer (and so can never deadlock a caller
// that drains two concurrent streams sequentially); its memory is
// bounded by the results the caller asked for but has not yet read.
type pending struct {
	id uint64

	mu     sync.Mutex
	cond   *sync.Cond
	queue  []*wire.Frame
	closed bool
}

func newPending() *pending {
	p := &pending{}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// push enqueues one frame for the consumer.
func (p *pending) push(f *wire.Frame) {
	p.mu.Lock()
	p.queue = append(p.queue, f)
	p.mu.Unlock()
	p.cond.Signal()
}

// closeQ marks the queue complete; pop drains what is buffered, then
// returns nil.
func (p *pending) closeQ() {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.cond.Broadcast()
}

// pop blocks for the next frame; nil means the queue is closed (after
// the terminal frame, or because the connection died before it).
func (p *pending) pop() *wire.Frame {
	p.mu.Lock()
	defer p.mu.Unlock()
	for len(p.queue) == 0 && !p.closed {
		p.cond.Wait()
	}
	if len(p.queue) == 0 {
		return nil
	}
	f := p.queue[0]
	p.queue = p.queue[1:]
	return f
}

// Client is a connected protocol client.
type Client struct {
	conn net.Conn
	wc   *wire.Conn
	keys *engine.Client

	writeMu sync.Mutex // serializes frames of concurrent senders

	mu      sync.Mutex // guards the demux state below
	nextID  uint64
	calls   map[uint64]*pending
	readErr error // terminal receive error; set once
}

// Dial connects to a server and provisions fresh key material for the
// given scheme parameters.
func Dial(addr string, params securejoin.Params) (*Client, error) {
	keys, err := engine.NewClient(params, nil)
	if err != nil {
		return nil, err
	}
	return DialWithKeys(addr, keys)
}

// DialWithKeys connects to a server reusing existing key material —
// e.g. keys restored with engine.LoadClientKeys from an earlier
// session, so previously uploaded tables stay queryable.
func DialWithKeys(addr string, keys *engine.Client) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("client: dial %s: %w", addr, err)
	}
	wc := wire.NewConn(conn)
	if err := wire.ClientHandshake(wc); err != nil {
		conn.Close()
		return nil, err
	}
	c := &Client{
		conn:  conn,
		wc:    wc,
		keys:  keys,
		calls: make(map[uint64]*pending),
	}
	go c.readLoop()
	return c, nil
}

// Keys returns the client's key material, e.g. for ExportKeys.
func (c *Client) Keys() *engine.Client { return c.keys }

// Close terminates the connection. In-flight calls fail with ErrClosed.
func (c *Client) Close() error { return c.conn.Close() }

// readLoop demultiplexes response frames to in-flight requests by ID.
// Every pending queue is unbounded, so the loop never blocks on a slow
// consumer and frames of interleaved streams cannot head-of-line block
// each other.
func (c *Client) readLoop() {
	for {
		f := new(wire.Frame)
		if err := c.wc.Recv(f); err != nil {
			c.fail(err)
			return
		}
		// ID 0 is a connection-level notice (never a response: request
		// IDs start at 1): the server announces why it is about to close
		// the connection, so in-flight and future calls fail typed
		// instead of with a bare EOF.
		if f.ID == 0 {
			if f.Code == wire.CodeIdleTimeout {
				c.fail(ErrIdleClosed)
			} else {
				c.fail(fmt.Errorf("connection closed by server: %s (%s)", f.Err, f.Code))
			}
			return
		}
		c.mu.Lock()
		p := c.calls[f.ID]
		if f.Terminal() {
			delete(c.calls, f.ID)
		}
		c.mu.Unlock()
		if p == nil {
			continue // response to an abandoned request
		}
		p.push(f)
		if f.Terminal() {
			p.closeQ()
		}
	}
}

// fail delivers a terminal receive error to every in-flight call by
// closing its queue.
func (c *Client) fail(err error) {
	c.mu.Lock()
	if c.readErr == nil {
		c.readErr = err
	}
	calls := c.calls
	c.calls = make(map[uint64]*pending)
	c.mu.Unlock()
	for _, p := range calls {
		p.closeQ()
	}
}

// connErr renders the terminal connection error of a dead client.
func (c *Client) connErr() error {
	c.mu.Lock()
	err := c.readErr
	c.mu.Unlock()
	if err == nil || err == io.EOF || errors.Is(err, net.ErrClosed) {
		return ErrClosed
	}
	if errors.Is(err, ErrIdleClosed) {
		return err
	}
	return fmt.Errorf("client: receive: %w", err)
}

// send registers a pending call, stamps the request with a fresh ID and
// writes it.
func (c *Client) send(req *wire.Request) (*pending, error) {
	p := newPending()
	c.mu.Lock()
	if c.readErr != nil {
		c.mu.Unlock()
		return nil, c.connErr()
	}
	c.nextID++
	id := c.nextID
	req.ID = id
	p.id = id
	c.calls[id] = p
	c.mu.Unlock()

	c.writeMu.Lock()
	err := c.wc.Send(req)
	c.writeMu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.calls, id)
		c.mu.Unlock()
		return nil, fmt.Errorf("client: send: %w", err)
	}
	return p, nil
}

// ack waits for a request's single terminal frame (Ok or Err).
func (c *Client) ack(p *pending, op string) error {
	_, err := c.ackFrame(p, op)
	return err
}

// ackFrame waits for a request's terminal frame and validates it is an
// Ok ack, returning the frame so callers can read additive payloads
// (e.g. Health on a Ping ack).
func (c *Client) ackFrame(p *pending, op string) (*wire.Frame, error) {
	f := p.pop()
	if f == nil {
		return nil, c.connErr()
	}
	if f.Err != "" {
		return nil, frameErr(op, f)
	}
	if !f.Ok {
		return nil, fmt.Errorf("client: unexpected %s response frame", op)
	}
	return f, nil
}

// Ping round-trips an empty request.
func (c *Client) Ping() error {
	p, err := c.send(&wire.Request{Ping: true})
	if err != nil {
		return err
	}
	return c.ack(p, "ping")
}

// Health round-trips a Ping and returns the server's health report:
// readiness plus key gauges (connections, in-flight joins, shed count,
// leakage total, uptime). Servers predating the health field ack pings
// without one; Health then returns nil with no error.
func (c *Client) Health() (*wire.HealthInfo, error) {
	p, err := c.send(&wire.Request{Ping: true})
	if err != nil {
		return nil, err
	}
	f, err := c.ackFrame(p, "ping")
	if err != nil {
		return nil, err
	}
	return f.Health, nil
}

// TableInfo summarizes one server-side table: its name, row count and
// whether it was uploaded with an SSE pre-filter index. Shard and
// ShardCount echo the annotations of a sharded upload (zero for whole
// tables): this server holds hash-partition Shard of ShardCount — see
// Cluster.
type TableInfo struct {
	Name       string
	Rows       int
	Indexed    bool
	Shard      int
	ShardCount int
	// NDV is the table's distinct-join-value count, counted client-side
	// at encrypt time and echoed back by the server (0 = unknown, e.g.
	// a table uploaded by an older client).
	NDV int
}

// DescribeTables lists the tables the server currently stores, sorted
// by name. SQL front ends use it to sync a catalog's index metadata
// (sql.Catalog.SetIndexed) so the planner picks prefiltered plans
// against indexed tables automatically.
func (c *Client) DescribeTables() ([]TableInfo, error) {
	p, err := c.send(&wire.Request{Describe: true})
	if err != nil {
		return nil, err
	}
	f := p.pop()
	if f == nil {
		return nil, c.connErr()
	}
	if f.Err != "" {
		return nil, fmt.Errorf("client: describe rejected: %s", f.Err)
	}
	if f.Tables == nil {
		return nil, errors.New("client: unexpected describe response frame")
	}
	out := make([]TableInfo, len(f.Tables.Tables))
	for i, t := range f.Tables.Tables {
		out[i] = TableInfo{
			Name: t.Name, Rows: t.Rows, Indexed: t.Indexed,
			Shard: t.Shard, ShardCount: t.ShardCount, NDV: t.NDV,
		}
	}
	return out, nil
}

// SyncCatalog refreshes a catalog's execution statistics — row counts
// and SSE-index state — from the live server and returns the
// descriptions. The planner consults both: row counts drive join
// ordering and the prefilter selectivity threshold, the index bit the
// prefilter fast path. Tables the catalog does not know are ignored;
// catalog tables the server does not hold are marked unindexed with an
// unknown row count, so a stale catalog cannot make the planner emit a
// prefiltered plan the server would full-scan anyway.
func (c *Client) SyncCatalog(cat *sql.Catalog) ([]TableInfo, error) {
	tables, err := c.DescribeTables()
	if err != nil {
		return nil, err
	}
	stats := make(map[string]TableInfo, len(tables))
	for _, t := range tables {
		stats[t.Name] = t
	}
	for _, name := range cat.TableNames() {
		t := stats[name] // zero value: unknown rows, no index
		_ = cat.SetStats(name, t.Rows, t.Indexed)
		_ = cat.SetNDV(name, t.NDV)
	}
	return tables, nil
}

// Upload encrypts a plaintext table and stores it on the server under
// the given name. Tables whose encoding exceeds the protocol's frame
// budget are sent as a staged chunk sequence the server installs
// atomically on the final (Commit) chunk, so upload size is unbounded
// and joins never see a partial table; do not upload the same table
// name concurrently.
func (c *Client) Upload(name string, rows []engine.PlainRow) error {
	table, err := c.keys.EncryptTable(name, rows)
	if err != nil {
		return err
	}
	return c.uploadTable(table)
}

// UploadIndexed encrypts a table like Upload and additionally builds
// and uploads its SSE pre-filter index, so the server can execute
// prefiltered joins (JoinOpts.Prefilter) against it. The index reveals
// nothing at rest; searching it discloses which rows match each
// individual attribute predicate — see the Section 4.3 trade-off in
// internal/engine/prefilter.go.
func (c *Client) UploadIndexed(name string, rows []engine.PlainRow) error {
	table, err := c.keys.EncryptTableIndexed(name, rows)
	if err != nil {
		return err
	}
	return c.uploadTable(table)
}

// uploadTable ships an encrypted table as a staged chunk sequence; the
// index (if any) rides on the Commit chunk.
func (c *Client) uploadTable(table *engine.EncryptedTable) error {
	var chunks [][]wire.UploadRow
	var chunk []wire.UploadRow
	bytes := 0
	for _, r := range table.Rows {
		jc, err := r.Join.MarshalBinary()
		if err != nil {
			return err
		}
		rowBytes := len(jc) + len(r.Payload) + 64
		if len(chunk) > 0 && bytes+rowBytes > wire.FrameByteBudget {
			chunks = append(chunks, chunk)
			chunk, bytes = nil, 0
		}
		chunk = append(chunk, wire.UploadRow{JoinCiphertext: jc, Payload: r.Payload})
		bytes += rowBytes
	}
	chunks = append(chunks, chunk) // final chunk; sole (empty) one for an empty table
	var index []byte
	if table.Index != nil {
		var err error
		if index, err = table.Index.MarshalBinary(); err != nil {
			return err
		}
		// The index must respect the same frame budget as the rows it
		// rides with: if it would not fit alongside the final row chunk,
		// ship it on its own empty Commit chunk instead of overflowing
		// the frame (an index larger than a whole frame still fails,
		// loudly, at Send).
		if len(index) > 0 && bytes+len(index) > wire.FrameByteBudget {
			chunks = append(chunks, nil)
		}
	}
	for i, rows := range chunks {
		commit := i == len(chunks)-1
		req := &wire.UploadRequest{
			Table:  table.Name,
			Rows:   rows,
			Append: i > 0,
			Commit: commit,
		}
		if commit {
			// The index, the shard annotations and the distinct-value
			// count ride the Commit chunk only — that is the request
			// that installs the table.
			req.Index = index
			req.Shard = table.Shard
			req.ShardCount = table.ShardCount
			req.NDV = table.NDV
		}
		p, err := c.send(&wire.Request{Upload: req})
		if err != nil {
			return err
		}
		if err := c.ack(p, "upload"); err != nil {
			return err
		}
	}
	return nil
}

// JoinResult is one decrypted joined row pair.
type JoinResult struct {
	RowA, RowB         int
	PayloadA, PayloadB []byte
}

// JoinStream consumes one join query's results batch by batch as the
// server streams them. Drain it until Next returns io.EOF, or release
// it with Close so the server stops producing; an unreleased stream
// merely buffers its remaining frames client-side.
type JoinStream struct {
	c        *Client
	p        *pending
	revealed int
	done     bool
	err      error
}

// Next returns the next batch of decrypted results. It returns io.EOF
// after the final batch, at which point RevealedPairs is valid.
func (s *JoinStream) Next() ([]JoinResult, error) {
	if s.done {
		if s.err != nil {
			return nil, s.err
		}
		return nil, io.EOF
	}
	f := s.p.pop()
	if f == nil {
		s.done = true
		s.err = s.c.connErr()
		return nil, s.err
	}
	switch {
	case f.Err != "":
		s.done = true
		s.err = frameErr("join", f)
		return nil, s.err
	case f.Summary != nil:
		s.done = true
		s.revealed = f.Summary.RevealedPairs
		return nil, io.EOF
	case f.Batch != nil:
		out := make([]JoinResult, len(f.Batch.Rows))
		for i, r := range f.Batch.Rows {
			// A key-only side ships no payload (SkipPayloadA/B): sealed
			// payloads are never legitimately empty (nonce+tag minimum),
			// so an empty one means the server skipped it — leave nil.
			var pa, pb []byte
			var err error
			if len(r.PayloadA) > 0 {
				if pa, err = s.c.keys.OpenPayload(r.PayloadA); err != nil {
					s.err = fmt.Errorf("client: opening payload A of result %d: %w", i, err)
					s.abort()
					return nil, s.err
				}
			}
			if len(r.PayloadB) > 0 {
				if pb, err = s.c.keys.OpenPayload(r.PayloadB); err != nil {
					s.err = fmt.Errorf("client: opening payload B of result %d: %w", i, err)
					s.abort()
					return nil, s.err
				}
			}
			out[i] = JoinResult{RowA: r.RowA, RowB: r.RowB, PayloadA: pa, PayloadB: pb}
		}
		return out, nil
	default:
		s.err = errors.New("client: malformed join frame")
		s.abort()
		return nil, s.err
	}
}

// RevealedPairs is the size of the query's leakage trace sigma(q),
// valid once Next has returned io.EOF.
func (s *JoinStream) RevealedPairs() int { return s.revealed }

// Close releases a stream that will not be drained: the server is told
// to cancel the query's remaining work, and the frames already in
// flight are discarded in the background so pipelined requests keep
// flowing.
func (s *JoinStream) Close() error {
	if !s.done {
		s.abort()
	}
	return nil
}

// abort marks the stream terminal (preserving any error already set),
// asks the server to stop, and drains the remaining frames.
func (s *JoinStream) abort() {
	s.done = true
	if s.err == nil {
		s.err = errors.New("client: join stream closed")
	}
	// Fire-and-forget cancel: its ack is cleaned up by the demux, and
	// a cancel racing the stream's natural end is ignored server-side.
	// Remaining frames just sit in the (unbounded) queue until the
	// terminal frame closes it and the queue is dropped.
	go s.c.send(&wire.Request{Cancel: s.p.id})
}

// JoinOpts tunes how the server executes one join query.
type JoinOpts struct {
	// Prefilter asks the server to resolve the selection predicates
	// through the tables' SSE indexes first, paying SJ.Dec pairings
	// only for candidate rows (the Section 4.3 fast path). Both tables
	// must have been uploaded with UploadIndexed; a table without an
	// index falls back to a full scan. The speedup costs extra SSE
	// access-pattern leakage: the server additionally learns which
	// rows match each individual attribute predicate.
	Prefilter bool
	// Workers hints how many SJ.Dec workers the server should spread
	// this query's pairings over; 0 keeps the server default, and the
	// server clamps the hint to its core count.
	Workers int
}

// JoinPlan starts the join a compiled single-step SQL plan describes,
// honoring the planner's strategy: a prefiltered plan ships SSE token
// maps for exactly the sides the planner chose to pre-filter (a side
// left on full scan never reveals its query keywords), a full-scan
// plan ships join tokens only. The strategy and per-side token rule
// live solely in sql.Plan.Spec — this is its wire-mode twin, marshaling
// the compiled spec into a JoinRequest instead of handing it to
// engine.Server.OpenJoin. Multi-join plans run through ExecutePlan,
// which stitches the pairwise steps client-side.
func (c *Client) JoinPlan(p *sql.Plan) (*JoinStream, error) {
	spec, err := p.Spec(c.keys)
	if err != nil {
		return nil, err
	}
	return c.joinSpec(p.TableA, p.TableB, spec)
}

// joinReqFromSpec marshals one compiled engine.JoinSpec into the wire
// request it describes — the shared builder behind synchronous joins
// and async job submission.
func joinReqFromSpec(tableA, tableB string, spec engine.JoinSpec) (*wire.JoinRequest, error) {
	req := &wire.JoinRequest{
		TableA: tableA, TableB: tableB, Workers: spec.Workers,
		// Semi-join candidate lists and key-only projection flags ship
		// verbatim; all four are gob-additive (zero values reproduce
		// the legacy full behavior on older servers).
		CandidatesA: spec.CandidatesA, CandidatesB: spec.CandidatesB,
		SkipPayloadA: spec.SkipPayloadA, SkipPayloadB: spec.SkipPayloadB,
	}
	q := spec.Query
	var err error
	if spec.Prefilter != nil {
		q = spec.Prefilter.Join
		if len(spec.Prefilter.TokensA) > 0 {
			if req.PrefilterA, err = sse.MarshalTokenMap(spec.Prefilter.TokensA); err != nil {
				return nil, err
			}
		}
		if len(spec.Prefilter.TokensB) > 0 {
			if req.PrefilterB, err = sse.MarshalTokenMap(spec.Prefilter.TokensB); err != nil {
				return nil, err
			}
		}
	}
	if req.TokenA, err = q.TokenA.MarshalBinary(); err != nil {
		return nil, err
	}
	if req.TokenB, err = q.TokenB.MarshalBinary(); err != nil {
		return nil, err
	}
	return req, nil
}

// joinSpec ships one compiled engine.JoinSpec as a JoinRequest and
// opens the response stream.
func (c *Client) joinSpec(tableA, tableB string, spec engine.JoinSpec) (*JoinStream, error) {
	req, err := joinReqFromSpec(tableA, tableB, spec)
	if err != nil {
		return nil, err
	}
	pd, err := c.send(&wire.Request{Join: req})
	if err != nil {
		return nil, err
	}
	return &JoinStream{c: c, p: pd}, nil
}

// planRunner adapts the wire client to sql.StepRunner: each plan step
// becomes one JoinRequest, and the response stream's sealed payloads
// are opened with the client's keys as batches arrive.
type planRunner struct{ c *Client }

func (r planRunner) RunStep(p *sql.Plan, step int, in sql.StepInput) (sql.StepStream, error) {
	spec, err := p.SpecFor(step, r.c.keys)
	if err != nil {
		return nil, err
	}
	spec.CandidatesA = in.CandidatesL
	st := &p.Steps[step]
	js, err := r.c.joinSpec(st.Left.Table, st.Right.Table, spec)
	if err != nil {
		return nil, err
	}
	return wireStepStream{js}, nil
}

// wireStepStream adapts JoinStream (which already decrypts payloads) to
// sql.StepStream.
type wireStepStream struct{ js *JoinStream }

func (s wireStepStream) Next() ([]sql.StepRow, error) {
	rows, err := s.js.Next()
	if err != nil {
		return nil, err
	}
	out := make([]sql.StepRow, len(rows))
	for i, r := range rows {
		out[i] = sql.StepRow{RowL: r.RowA, RowR: r.RowB, PayloadL: r.PayloadA, PayloadR: r.PayloadB}
	}
	return out, nil
}

func (s wireStepStream) Close()             { s.js.Close() }
func (s wireStepStream) RevealedPairs() int { return s.js.RevealedPairs() }

// ExecutePlan runs a compiled SQL plan of any arity against the live
// server: each pairwise encrypted join step ships as its own
// JoinRequest, and the decrypted intermediates are stitched client-side
// on the shared table's row identity (sql.Execute). emit receives every
// stitched result row; the returned count sums the revealed pairs over
// all executed steps.
func (c *Client) ExecutePlan(p *sql.Plan, emit func(sql.ResultRow) error) (int, error) {
	return sql.Execute(planRunner{c}, p, emit)
}

// JoinQuery starts SELECT * FROM tableA JOIN tableB ON joinA = joinB
// WHERE selA AND selB and returns a stream of result batches. A fresh
// query key is drawn, so repeated identical calls are unlinkable at the
// server.
func (c *Client) JoinQuery(tableA, tableB string, selA, selB securejoin.Selection) (*JoinStream, error) {
	return c.JoinQueryOpts(tableA, tableB, selA, selB, JoinOpts{})
}

// JoinQueryOpts starts a join query with explicit execution options.
func (c *Client) JoinQueryOpts(tableA, tableB string, selA, selB securejoin.Selection, opts JoinOpts) (*JoinStream, error) {
	req, err := c.buildJoinReq(tableA, tableB, selA, selB, opts)
	if err != nil {
		return nil, err
	}
	p, err := c.send(&wire.Request{Join: req})
	if err != nil {
		return nil, err
	}
	return &JoinStream{c: c, p: p}, nil
}

// buildJoinReq draws a fresh query key and marshals one ad-hoc join
// query into its wire request — the shared builder behind JoinQueryOpts
// and SubmitJoinQuery.
func (c *Client) buildJoinReq(tableA, tableB string, selA, selB securejoin.Selection, opts JoinOpts) (*wire.JoinRequest, error) {
	req := &wire.JoinRequest{TableA: tableA, TableB: tableB, Workers: opts.Workers}
	var q *securejoin.Query
	if opts.Prefilter {
		pq, err := c.keys.NewPrefilterQuery(selA, selB)
		if err != nil {
			return nil, err
		}
		if req.PrefilterA, err = sse.MarshalTokenMap(pq.TokensA); err != nil {
			return nil, err
		}
		if req.PrefilterB, err = sse.MarshalTokenMap(pq.TokensB); err != nil {
			return nil, err
		}
		q = pq.Join
	} else {
		var err error
		if q, err = c.keys.NewQuery(selA, selB); err != nil {
			return nil, err
		}
	}
	var err error
	if req.TokenA, err = q.TokenA.MarshalBinary(); err != nil {
		return nil, err
	}
	if req.TokenB, err = q.TokenB.MarshalBinary(); err != nil {
		return nil, err
	}
	return req, nil
}

// Join executes a join query and drains its stream, returning all
// decrypted results and the revealed-pair count.
func (c *Client) Join(tableA, tableB string, selA, selB securejoin.Selection) ([]JoinResult, int, error) {
	return c.JoinWith(tableA, tableB, selA, selB, JoinOpts{})
}

// JoinWith executes a join query with explicit execution options and
// drains its stream.
func (c *Client) JoinWith(tableA, tableB string, selA, selB securejoin.Selection, opts JoinOpts) ([]JoinResult, int, error) {
	stream, err := c.JoinQueryOpts(tableA, tableB, selA, selB, opts)
	if err != nil {
		return nil, 0, err
	}
	var out []JoinResult
	for {
		batch, err := stream.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, 0, err
		}
		out = append(out, batch...)
	}
	return out, stream.RevealedPairs(), nil
}
