// Package client implements the data-owner side of the
// database-as-a-service model: it holds the Secure Join master key and
// the payload AEAD key, encrypts tables before upload, issues per-query
// tokens and decrypts result payloads. The server never receives any key
// material.
package client

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"

	"repro/internal/engine"
	"repro/internal/securejoin"
	"repro/internal/wire"
)

// Client is a connected protocol client.
type Client struct {
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder

	keys *engine.Client
}

// Dial connects to a server and provisions fresh key material for the
// given scheme parameters.
func Dial(addr string, params securejoin.Params) (*Client, error) {
	keys, err := engine.NewClient(params, nil)
	if err != nil {
		return nil, err
	}
	return DialWithKeys(addr, keys)
}

// DialWithKeys connects to a server reusing existing key material —
// e.g. keys restored with engine.LoadClientKeys from an earlier
// session, so previously uploaded tables stay queryable.
func DialWithKeys(addr string, keys *engine.Client) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("client: dial %s: %w", addr, err)
	}
	return &Client{
		conn: conn,
		enc:  gob.NewEncoder(conn),
		dec:  gob.NewDecoder(conn),
		keys: keys,
	}, nil
}

// Keys returns the client's key material, e.g. for ExportKeys.
func (c *Client) Keys() *engine.Client { return c.keys }

// Close terminates the connection.
func (c *Client) Close() error { return c.conn.Close() }

// Ping round-trips an empty request.
func (c *Client) Ping() error {
	resp, err := c.roundTrip(&wire.Request{Ping: true})
	if err != nil {
		return err
	}
	if resp.Err != "" {
		return errors.New(resp.Err)
	}
	return nil
}

// Upload encrypts a plaintext table and stores it on the server under
// the given name.
func (c *Client) Upload(name string, rows []engine.PlainRow) error {
	table, err := c.keys.EncryptTable(name, rows)
	if err != nil {
		return err
	}
	req := &wire.UploadRequest{Table: name, Rows: make([]wire.UploadRow, len(table.Rows))}
	for i, r := range table.Rows {
		jc, err := r.Join.MarshalBinary()
		if err != nil {
			return err
		}
		req.Rows[i] = wire.UploadRow{JoinCiphertext: jc, Payload: r.Payload}
	}
	resp, err := c.roundTrip(&wire.Request{Upload: req})
	if err != nil {
		return err
	}
	if resp.Err != "" {
		return fmt.Errorf("client: upload rejected: %s", resp.Err)
	}
	return nil
}

// JoinResult is one decrypted joined row pair.
type JoinResult struct {
	RowA, RowB         int
	PayloadA, PayloadB []byte
}

// Join executes SELECT * FROM tableA JOIN tableB ON joinA = joinB WHERE
// selA AND selB. A fresh query key is drawn, so repeated identical calls
// are unlinkable at the server.
func (c *Client) Join(tableA, tableB string, selA, selB securejoin.Selection) ([]JoinResult, int, error) {
	q, err := c.keys.NewQuery(selA, selB)
	if err != nil {
		return nil, 0, err
	}
	tka, err := q.TokenA.MarshalBinary()
	if err != nil {
		return nil, 0, err
	}
	tkb, err := q.TokenB.MarshalBinary()
	if err != nil {
		return nil, 0, err
	}
	resp, err := c.roundTrip(&wire.Request{Join: &wire.JoinRequest{
		TableA: tableA, TableB: tableB, TokenA: tka, TokenB: tkb,
	}})
	if err != nil {
		return nil, 0, err
	}
	if resp.Err != "" {
		return nil, 0, fmt.Errorf("client: join rejected: %s", resp.Err)
	}
	if resp.Join == nil {
		return nil, 0, errors.New("client: server returned no join payload")
	}
	out := make([]JoinResult, len(resp.Join.Rows))
	for i, r := range resp.Join.Rows {
		pa, err := c.keys.OpenPayload(r.PayloadA)
		if err != nil {
			return nil, 0, fmt.Errorf("client: opening payload A of result %d: %w", i, err)
		}
		pb, err := c.keys.OpenPayload(r.PayloadB)
		if err != nil {
			return nil, 0, fmt.Errorf("client: opening payload B of result %d: %w", i, err)
		}
		out[i] = JoinResult{RowA: r.RowA, RowB: r.RowB, PayloadA: pa, PayloadB: pb}
	}
	return out, resp.Join.RevealedPairs, nil
}

func (c *Client) roundTrip(req *wire.Request) (*wire.Response, error) {
	if err := c.enc.Encode(req); err != nil {
		return nil, fmt.Errorf("client: send: %w", err)
	}
	var resp wire.Response
	if err := c.dec.Decode(&resp); err != nil {
		return nil, fmt.Errorf("client: receive: %w", err)
	}
	return &resp, nil
}
