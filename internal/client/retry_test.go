package client

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

// TestWithRetryRetriesOverloadedOnly: overload errors retry with
// backoff until success; anything else returns immediately.
func TestWithRetryRetriesOverloadedOnly(t *testing.T) {
	var slept []time.Duration
	cfg := RetryConfig{Sleep: func(d time.Duration) { slept = append(slept, d) }}

	calls := 0
	err := WithRetry(cfg, func() error {
		calls++
		if calls < 3 {
			return fmt.Errorf("join rejected: %w", ErrOverloaded)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("WithRetry = %v, want success on third attempt", err)
	}
	if calls != 3 {
		t.Fatalf("op called %d times, want 3", calls)
	}
	if len(slept) != 2 {
		t.Fatalf("slept %d times, want 2", len(slept))
	}
	// Jittered delay of attempt n lands in [base<<n / 2, base<<n * 1.5).
	for n, d := range slept {
		lo, hi := (50*time.Millisecond<<n)/2, 50*time.Millisecond<<n*3/2
		if d < lo || d >= hi {
			t.Errorf("delay %d = %v, want in [%v, %v)", n, d, lo, hi)
		}
	}

	// A non-overload error is not retried.
	calls = 0
	permanent := errors.New("no such table")
	err = WithRetry(cfg, func() error { calls++; return permanent })
	if !errors.Is(err, permanent) || calls != 1 {
		t.Fatalf("permanent error: err=%v after %d calls, want immediate return", err, calls)
	}
}

// TestWithRetryExhaustsAttempts: a persistently overloaded server
// yields the typed error after the configured attempts.
func TestWithRetryExhaustsAttempts(t *testing.T) {
	slept := 0
	cfg := RetryConfig{Attempts: 3, Sleep: func(time.Duration) { slept++ }}
	calls := 0
	err := WithRetry(cfg, func() error {
		calls++
		return fmt.Errorf("shed: %w", ErrOverloaded)
	})
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("WithRetry = %v, want ErrOverloaded after exhaustion", err)
	}
	if calls != 3 {
		t.Fatalf("op called %d times, want 3", calls)
	}
	if slept != 2 {
		t.Fatalf("slept %d times, want 2 (no sleep after the final attempt)", slept)
	}
}

// TestWithRetryDelayCap: the pre-jitter delay saturates at Max.
func TestWithRetryDelayCap(t *testing.T) {
	var slept []time.Duration
	cfg := RetryConfig{
		Attempts: 6,
		Base:     40 * time.Millisecond,
		Max:      100 * time.Millisecond,
		Sleep:    func(d time.Duration) { slept = append(slept, d) },
	}
	WithRetry(cfg, func() error { return ErrOverloaded })
	for n, d := range slept {
		if max := 100 * time.Millisecond * 3 / 2; d >= max {
			t.Errorf("delay %d = %v, want < %v (cap plus jitter)", n, d, max)
		}
	}
}

// TestWithRetryManyAttemptsNoOverflow is the regression test for the
// backoff overflow: Base<<attempt wraps int64 negative around attempt
// 34, and rand.Int63n panics on a non-positive argument. Sixty-four
// attempts must complete without panicking, and every delay must stay
// within the jittered cap.
func TestWithRetryManyAttemptsNoOverflow(t *testing.T) {
	var slept []time.Duration
	cfg := RetryConfig{
		Attempts: 64,
		Base:     50 * time.Millisecond,
		Max:      2 * time.Second,
		Sleep:    func(d time.Duration) { slept = append(slept, d) },
	}
	err := WithRetry(cfg, func() error { return ErrOverloaded })
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("WithRetry = %v, want ErrOverloaded after exhaustion", err)
	}
	if len(slept) != 63 {
		t.Fatalf("slept %d times, want 63", len(slept))
	}
	for n, d := range slept {
		if d <= 0 {
			t.Fatalf("delay %d = %v; backoff went non-positive (overflow)", n, d)
		}
		if max := cfg.Max * 3 / 2; d >= max {
			t.Errorf("delay %d = %v, want < %v (cap plus jitter)", n, d, max)
		}
	}
}
