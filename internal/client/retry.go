package client

import (
	"errors"
	"math/rand"
	"time"
)

// RetryConfig tunes WithRetry. The zero value selects the defaults.
type RetryConfig struct {
	// Attempts is the total number of tries (first call included);
	// <= 0 selects 4.
	Attempts int
	// Base is the delay before the first retry; it doubles per attempt.
	// <= 0 selects 50ms.
	Base time.Duration
	// Max caps the (pre-jitter) delay; <= 0 selects 2s.
	Max time.Duration
	// Sleep replaces time.Sleep, for tests; nil selects time.Sleep.
	Sleep func(time.Duration)
}

func (cfg *RetryConfig) defaults() {
	if cfg.Attempts <= 0 {
		cfg.Attempts = 4
	}
	if cfg.Base <= 0 {
		cfg.Base = 50 * time.Millisecond
	}
	if cfg.Max <= 0 {
		cfg.Max = 2 * time.Second
	}
	if cfg.Sleep == nil {
		cfg.Sleep = time.Sleep
	}
}

// WithRetry runs op, retrying it with jittered exponential backoff as
// long as the error wraps ErrOverloaded — the one failure the server
// promises is safe to retry, since admission control sheds before any
// pairing work runs. Any other error (including success) returns
// immediately; an overloaded final attempt returns its ErrOverloaded
// so callers can still classify it.
//
// The delay before retry n is Base<<n capped at Max, with ±50% uniform
// jitter so a fleet of shed clients does not reconverge on the server
// in lockstep.
func WithRetry(cfg RetryConfig, op func() error) error {
	cfg.defaults()
	var err error
	for attempt := 0; attempt < cfg.Attempts; attempt++ {
		if err = op(); !errors.Is(err, ErrOverloaded) {
			return err
		}
		if attempt == cfg.Attempts-1 {
			break
		}
		// Double up to the cap instead of computing Base<<attempt: a bare
		// shift overflows int64 around attempt 34 (Base 50ms), going
		// negative and panicking rand.Int63n below.
		delay := cfg.Base
		for i := 0; i < attempt && delay < cfg.Max; i++ {
			delay <<= 1
		}
		if delay <= 0 || delay > cfg.Max {
			delay = cfg.Max
		}
		// ±50% jitter: delay/2 + rand[0, delay).
		delay = delay/2 + time.Duration(rand.Int63n(int64(delay)))
		cfg.Sleep(delay)
	}
	return err
}
