package client

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"time"

	"repro/internal/securejoin"
	"repro/internal/sql"
	"repro/internal/wire"
)

// This file is the client side of the async job subsystem: a join can
// be submitted as a job (SubmitJoinQuery / SubmitPlan), acknowledged
// immediately with a job ID, and then polled (JobStatus) or streamed
// (AttachJob) from this or any later connection — the server spools a
// completed job's result durably, so the submitting client may
// disconnect, or the server restart, between submit and attach.

// ErrUnknownJob is wrapped by errors of job calls naming an ID the
// server does not know (wire.CodeUnknownJob). Completed jobs expire
// after the server's job TTL, and jobs still queued or running when
// the server restarts are lost — either way the join must be
// resubmitted. Test with errors.Is.
var ErrUnknownJob = errors.New("client: unknown job")

// JobInfo describes one async job as last reported by the server.
type JobInfo = wire.JobInfo

// SubmitJoinQuery submits SELECT * FROM tableA JOIN tableB ON joinA =
// joinB WHERE selA AND selB as an async job: the server validates and
// enqueues the join on its worker pool and answers immediately with
// the job's ID and queued-state snapshot, without waiting for any
// pairing work. Track it with JobStatus and collect results with
// AttachJob or WaitJob. A full worker queue sheds the submission with
// ErrOverloaded; submit ran no work and is safe to retry (WithRetry).
func (c *Client) SubmitJoinQuery(tableA, tableB string, selA, selB securejoin.Selection, opts JoinOpts) (*JobInfo, error) {
	req, err := c.buildJoinReq(tableA, tableB, selA, selB, opts)
	if err != nil {
		return nil, err
	}
	return c.submitJoinReq(req)
}

// SubmitPlan submits every pairwise join step of a compiled SQL plan
// as its own async job and returns the job IDs in step order. Resume
// the plan — after a disconnect or even a server restart — by handing
// the same plan and IDs to ExecuteSubmitted.
//
// Eager whole-plan submission cannot carry semi-join candidate lists
// (a step's candidates are the previous step's matches, unknown at
// submit time), so every step executes in full. ExecutePlanAsync
// submits lazily step by step and keeps the reduction.
func (c *Client) SubmitPlan(p *sql.Plan) ([]string, error) {
	ids := make([]string, len(p.Steps))
	for step := range p.Steps {
		spec, err := p.SpecFor(step, c.keys)
		if err != nil {
			return nil, err
		}
		st := &p.Steps[step]
		req, err := joinReqFromSpec(st.Left.Table, st.Right.Table, spec)
		if err != nil {
			return nil, err
		}
		info, err := c.submitJoinReq(req)
		if err != nil {
			return nil, fmt.Errorf("submitting plan step %d: %w", step, err)
		}
		ids[step] = info.ID
	}
	return ids, nil
}

// submitJoinReq ships one join request as a Submit and decodes the
// job-info ack.
func (c *Client) submitJoinReq(req *wire.JoinRequest) (*JobInfo, error) {
	p, err := c.send(&wire.Request{Submit: &wire.SubmitRequest{Join: req}})
	if err != nil {
		return nil, err
	}
	f := p.pop()
	if f == nil {
		return nil, c.connErr()
	}
	if f.Err != "" {
		return nil, frameErr("submit", f)
	}
	if f.Job == nil {
		return nil, errors.New("client: submit ack carried no job info")
	}
	return f.Job, nil
}

// JobStatus polls one job's current state and progress counters
// (rows decrypted, pipeline steps completed, revealed pairs so far).
// An expired or never-known ID fails with ErrUnknownJob.
func (c *Client) JobStatus(id string) (*JobInfo, error) {
	p, err := c.send(&wire.Request{JobStatus: id})
	if err != nil {
		return nil, err
	}
	f := p.pop()
	if f == nil {
		return nil, c.connErr()
	}
	if f.Err != "" {
		return nil, frameErr("job status", f)
	}
	if f.Job == nil {
		return nil, errors.New("client: job status ack carried no job info")
	}
	return f.Job, nil
}

// AttachJob opens the result stream of a job: the server holds the
// request until the job reaches a terminal state, then streams the
// (possibly spooled) result batches exactly like a synchronous join.
// Any connection may attach — including one dialed after the
// submitter disconnected or the server restarted — and a job may be
// attached any number of times before its TTL reaps it. A failed
// job's stream yields the job's error on the first Next.
func (c *Client) AttachJob(id string) (*JoinStream, error) {
	p, err := c.send(&wire.Request{Attach: id})
	if err != nil {
		return nil, err
	}
	return &JoinStream{c: c, p: p}, nil
}

// WaitJob attaches to a job and drains it: the decrypted result rows
// and the job's revealed-pair count, blocking until the job finishes.
func (c *Client) WaitJob(id string) ([]JoinResult, int, error) {
	stream, err := c.AttachJob(id)
	if err != nil {
		return nil, 0, err
	}
	var out []JoinResult
	for {
		batch, err := stream.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, 0, err
		}
		out = append(out, batch...)
	}
	return out, stream.RevealedPairs(), nil
}

// PollJob polls a job's status until it reaches a terminal state
// (done or failed) and returns the final snapshot. It is the polling
// twin of AttachJob for callers that want progress visibility rather
// than results; interval <= 0 selects 500ms. Uncancellable — prefer
// PollJobCtx, which this delegates to with context.Background().
func (c *Client) PollJob(id string, interval time.Duration) (*JobInfo, error) {
	return c.PollJobCtx(context.Background(), id, interval)
}

// PollJobCtx is PollJob bounded by a context: a caller that
// disconnects (or times out) cancels the poll between status requests
// instead of hammering JobStatus forever on a job nobody is waiting
// for. Each wait is the interval with ±50% uniform jitter, so N
// clients polling the same server do not converge into lockstep
// status bursts.
func (c *Client) PollJobCtx(ctx context.Context, id string, interval time.Duration) (*JobInfo, error) {
	if interval <= 0 {
		interval = 500 * time.Millisecond
	}
	for {
		info, err := c.JobStatus(id)
		if err != nil {
			return nil, err
		}
		if info.State == wire.JobDone || info.State == wire.JobFailed {
			return info, nil
		}
		// ±50% jitter: interval/2 + rand[0, interval).
		delay := interval/2 + time.Duration(rand.Int63n(int64(interval)))
		timer := time.NewTimer(delay)
		select {
		case <-ctx.Done():
			timer.Stop()
			return nil, ctx.Err()
		case <-timer.C:
		}
	}
}

// jobRunner adapts submitted jobs to sql.StepRunner: step i's stream
// is an attach to ids[i] instead of a fresh JoinRequest. The jobs were
// submitted before execution began, so in.CandidatesL is deliberately
// ignored — the steps ran (or run) in full, and the stitch discards
// non-candidate rows client-side, yielding identical results without
// the semi-join savings.
type jobRunner struct {
	c   *Client
	ids []string
}

func (r jobRunner) RunStep(p *sql.Plan, step int, in sql.StepInput) (sql.StepStream, error) {
	js, err := r.c.AttachJob(r.ids[step])
	if err != nil {
		return nil, err
	}
	return wireStepStream{js}, nil
}

// asyncStepRunner submits each step as a job at the moment Execute
// reaches it and attaches immediately — the lazy twin of SubmitPlan +
// jobRunner. Per-step submission is what lets the semi-join reduction
// work through the job queue: by the time step k+1 is submitted, the
// previous step's matches are known and ride the request as its
// candidate list.
type asyncStepRunner struct{ c *Client }

func (r asyncStepRunner) RunStep(p *sql.Plan, step int, in sql.StepInput) (sql.StepStream, error) {
	spec, err := p.SpecFor(step, r.c.keys)
	if err != nil {
		return nil, err
	}
	spec.CandidatesA = in.CandidatesL
	st := &p.Steps[step]
	req, err := joinReqFromSpec(st.Left.Table, st.Right.Table, spec)
	if err != nil {
		return nil, err
	}
	info, err := r.c.submitJoinReq(req)
	if err != nil {
		return nil, fmt.Errorf("submitting plan step %d: %w", step, err)
	}
	js, err := r.c.AttachJob(info.ID)
	if err != nil {
		return nil, err
	}
	return wireStepStream{js}, nil
}

// ExecuteSubmitted stitches the results of a plan previously submitted
// with SubmitPlan: step i attaches to ids[i], and the decrypted
// intermediates are joined client-side exactly as in ExecutePlan. The
// ids must come from a SubmitPlan of an equivalent plan.
func (c *Client) ExecuteSubmitted(p *sql.Plan, ids []string, emit func(sql.ResultRow) error) (int, error) {
	if len(ids) != len(p.Steps) {
		return 0, fmt.Errorf("client: plan has %d steps but %d job IDs were given", len(p.Steps), len(ids))
	}
	return sql.Execute(jobRunner{c: c, ids: ids}, p, emit)
}

// ExecutePlanAsync runs a plan through the server's job queue: each
// step is submitted as a job when execution reaches it, then attached
// and stitched — ExecutePlan with the steps executing on the server's
// worker pool (and their completed results spooling durably) rather
// than being tied to this connection's request lifetimes. Submission
// is per step, so semi-join candidate lists propagate exactly as in
// the synchronous path; to pre-submit a whole plan up front (at the
// cost of full per-step execution), use SubmitPlan + ExecuteSubmitted.
func (c *Client) ExecutePlanAsync(p *sql.Plan, emit func(sql.ResultRow) error) (int, error) {
	return sql.Execute(asyncStepRunner{c}, p, emit)
}
