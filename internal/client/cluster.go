// Sharded multi-server execution: a Cluster partitions every uploaded
// table across N independent sjservers and runs each pairwise join
// scatter-gather — one JoinRequest (or submitted job) per shard, the
// per-shard streams merged client-side.
//
// Sharding happens at encrypt/upload time, on the join-key attribute,
// by the party that already holds all key material — so the partition
// function reveals nothing the ciphertexts do not: each server stores
// shard i of every table, annotated on the wire (UploadRequest.Shard /
// ShardCount, echoed by Describe) but otherwise indistinguishable from
// a whole table.
//
// Correctness and leakage both rest on one alignment property: every
// row has exactly one join value, and all tables are partitioned by
// the same hash over that value, so the rows of ANY equi-join pair
// always land on the same shard. No cross-shard match can exist, which
// makes the shard-local joins exhaustive; and every equality pair the
// scheme reveals — intra-table or cross-table — is between rows with
// equal join image, hence co-located, so the per-shard sigma(q) traces
// partition the single-server trace exactly: summed across shards they
// equal the unsharded count, pair for pair. Scatter-gather adds no
// leakage and loses none from the audit.
package client

import (
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"strconv"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/securejoin"
	"repro/internal/sql"
	"repro/internal/wire"
)

// clusterMetrics is the per-backend instrumentation of a Cluster,
// labeled by shard index: join wall time per shard (the scatter-gather
// straggler profile), and the degraded-mode counters — how often each
// shard shed work and how often the cluster retried it while the other
// shards streamed on.
type clusterMetrics struct {
	ShardSeconds *metrics.HistogramVec
	ShardShed    *metrics.CounterVec
	ShardRetries *metrics.CounterVec
}

func newClusterMetrics(reg *metrics.Registry) clusterMetrics {
	return clusterMetrics{
		ShardSeconds: metrics.NewHistogramVec(reg, "sj_cluster_shard_seconds", "per-shard join stream wall time", "shard", nil),
		ShardShed:    metrics.NewCounterVec(reg, "sj_cluster_shard_shed_total", "per-shard requests shed by that backend's admission control", "shard"),
		ShardRetries: metrics.NewCounterVec(reg, "sj_cluster_shard_retries_total", "per-shard backoff retries after a shed", "shard"),
	}
}

// Cluster owns one Client per backend server and executes uploads and
// joins sharded across all of them. All backends share the caller's
// key material; the Cluster is safe for concurrent use to the same
// extent a single Client is.
type Cluster struct {
	keys    *engine.Client
	clients []*Client
	addrs   []string

	reg *metrics.Registry
	met clusterMetrics

	// retry tunes the per-shard degraded-mode backoff (see scatter);
	// the zero value selects WithRetry's defaults.
	retry RetryConfig

	// mu guards shardMaps: per table, per shard, the global row index
	// of each shard-local row — recorded at upload so merged results
	// report the same row identities a single server would.
	mu        sync.Mutex
	shardMaps map[string][][]int
}

// DialCluster connects to every addr and provisions fresh key material
// for the given scheme parameters. A single address is the degenerate
// one-shard cluster — same code path, no partitioning benefit.
func DialCluster(addrs []string, params securejoin.Params) (*Cluster, error) {
	keys, err := engine.NewClient(params, nil)
	if err != nil {
		return nil, err
	}
	return DialClusterWithKeys(addrs, keys)
}

// DialClusterWithKeys connects to every addr reusing existing key
// material, e.g. keys restored from an earlier session.
func DialClusterWithKeys(addrs []string, keys *engine.Client) (*Cluster, error) {
	if len(addrs) == 0 {
		return nil, errors.New("client: cluster needs at least one server address")
	}
	reg := metrics.NewRegistry()
	cl := &Cluster{
		keys:      keys,
		addrs:     append([]string(nil), addrs...),
		reg:       reg,
		met:       newClusterMetrics(reg),
		shardMaps: make(map[string][][]int),
	}
	for _, addr := range addrs {
		c, err := DialWithKeys(addr, keys)
		if err != nil {
			cl.Close()
			return nil, fmt.Errorf("client: cluster dial %s: %w", addr, err)
		}
		cl.clients = append(cl.clients, c)
	}
	return cl, nil
}

// Close terminates every backend connection, returning the first error.
func (cl *Cluster) Close() error {
	var first error
	for _, c := range cl.clients {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Keys returns the cluster's shared key material.
func (cl *Cluster) Keys() *engine.Client { return cl.keys }

// Shards returns the number of backend servers (= hash partitions).
func (cl *Cluster) Shards() int { return len(cl.clients) }

// Registry exposes the cluster's metric registry (per-shard latency
// and degraded-mode counters) for scraping, e.g. by sjbench.
func (cl *Cluster) Registry() *metrics.Registry { return cl.reg }

// SetRetry tunes the per-shard degraded-mode backoff; the zero config
// restores WithRetry's defaults.
func (cl *Cluster) SetRetry(cfg RetryConfig) { cl.retry = cfg }

// shardOf routes one join value to its shard: FNV-1a over the value,
// mod the shard count. Every table uses the same function, which is
// what aligns all equi-joins shard-locally.
func shardOf(joinValue []byte, shards int) int {
	h := fnv.New64a()
	h.Write(joinValue)
	return int(h.Sum64() % uint64(shards))
}

// Upload hash-partitions a plaintext table on the join-key attribute,
// encrypts each partition and stores partition i on server i under the
// table's name (annotated shard i of N). The per-shard global row
// indices are recorded so join results report single-server row
// identities. Like Client.Upload, do not upload the same table name
// concurrently.
func (cl *Cluster) Upload(name string, rows []engine.PlainRow) error {
	return cl.upload(name, rows, false)
}

// UploadIndexed uploads like Upload and additionally builds each
// partition its own SSE pre-filter index, so every shard can execute
// prefiltered joins locally.
func (cl *Cluster) UploadIndexed(name string, rows []engine.PlainRow) error {
	return cl.upload(name, rows, true)
}

func (cl *Cluster) upload(name string, rows []engine.PlainRow, indexed bool) error {
	n := len(cl.clients)
	parts := make([][]engine.PlainRow, n)
	shardMap := make([][]int, n)
	for i, r := range rows {
		s := shardOf(r.JoinValue, n)
		parts[s] = append(parts[s], r)
		shardMap[s] = append(shardMap[s], i)
	}
	// Encrypt sequentially (the scheme's encryptor shares state through
	// the rng), upload concurrently (uploads are per-connection).
	tables := make([]*engine.EncryptedTable, n)
	for s, part := range parts {
		var t *engine.EncryptedTable
		var err error
		if indexed {
			t, err = cl.keys.EncryptTableIndexed(name, part)
		} else {
			t, err = cl.keys.EncryptTable(name, part)
		}
		if err != nil {
			return err
		}
		t.Shard, t.ShardCount = s, n
		tables[s] = t
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	for s := range cl.clients {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			errs[s] = cl.clients[s].uploadTable(tables[s])
		}(s)
	}
	wg.Wait()
	for s, err := range errs {
		if err != nil {
			return fmt.Errorf("client: uploading %q shard %d/%d: %w", name, s, n, err)
		}
	}
	cl.mu.Lock()
	cl.shardMaps[name] = shardMap
	cl.mu.Unlock()
	return nil
}

// globalRow translates a shard-local row number of a table to the row
// identity reported to callers. With the upload-time shard map (the
// common case: the uploading process is the joining process) this is
// the exact row index of the original plaintext table, so results are
// bit-identical to a single server's. Without one — joining from a
// process that did not do the upload — a deterministic injection
// local*shards+shard is used instead: unique per physical row and
// consistent across the plan's steps, which is all the stitcher needs.
func (cl *Cluster) globalRow(table string, shard, local int) int {
	cl.mu.Lock()
	m := cl.shardMaps[table]
	cl.mu.Unlock()
	if shard < len(m) && local < len(m[shard]) {
		return m[shard][local]
	}
	return local*len(cl.clients) + shard
}

// DescribeTables aggregates the backends' catalogs: per table name,
// the summed row count and whether every shard is SSE-indexed (a
// prefiltered plan needs the index on each backend it scatters to).
// ShardCount reports the cluster width.
func (cl *Cluster) DescribeTables() ([]TableInfo, error) {
	agg := make(map[string]*TableInfo)
	var order []string
	for s, c := range cl.clients {
		tables, err := c.DescribeTables()
		if err != nil {
			return nil, fmt.Errorf("client: describe shard %d: %w", s, err)
		}
		for _, t := range tables {
			a, ok := agg[t.Name]
			if !ok {
				a = &TableInfo{Name: t.Name, Indexed: true, ShardCount: len(cl.clients)}
				agg[t.Name] = a
				order = append(order, t.Name)
			}
			a.Rows += t.Rows
			a.Indexed = a.Indexed && t.Indexed
			// Tables are hash-partitioned on the join value, so each
			// distinct value lives on exactly one shard: the global
			// distinct count is the exact sum of the shard counts.
			a.NDV += t.NDV
		}
	}
	out := make([]TableInfo, 0, len(order))
	for _, name := range order {
		out = append(out, *agg[name])
	}
	return out, nil
}

// SyncCatalog refreshes a catalog's statistics from the aggregated
// cluster state, exactly like Client.SyncCatalog does from one server:
// summed row counts drive join ordering, the all-shards-indexed bit
// the prefilter fast path.
func (cl *Cluster) SyncCatalog(cat *sql.Catalog) ([]TableInfo, error) {
	tables, err := cl.DescribeTables()
	if err != nil {
		return nil, err
	}
	stats := make(map[string]TableInfo, len(tables))
	for _, t := range tables {
		stats[t.Name] = t
	}
	for _, name := range cat.TableNames() {
		t := stats[name]
		_ = cat.SetStats(name, t.Rows, t.Indexed)
		_ = cat.SetNDV(name, t.NDV)
	}
	return tables, nil
}

// clusterStepStream merges the per-shard join streams of one scattered
// step. Producer goroutines (one per shard) push remapped, decrypted
// batches; Next delivers them in arrival order. RevealedPairs sums the
// shards' sigma(q) counts and is valid once Next returned io.EOF.
type clusterStepStream struct {
	batches chan []sql.StepRow
	quit    chan struct{}
	once    sync.Once

	mu       sync.Mutex
	err      error
	revealed int
}

func (s *clusterStepStream) Next() ([]sql.StepRow, error) {
	rows, ok := <-s.batches
	if ok {
		return rows, nil
	}
	s.mu.Lock()
	err := s.err
	s.mu.Unlock()
	if err != nil {
		return nil, err
	}
	return nil, io.EOF
}

// Close releases the merged stream early: producers still pushing are
// told to stop and their servers' streams are closed by their drain
// loops unwinding.
func (s *clusterStepStream) Close() { s.once.Do(func() { close(s.quit) }) }

func (s *clusterStepStream) RevealedPairs() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.revealed
}

// fail records the first terminal error and stops the other producers:
// shard overload is handled (retried) below this level, so an error
// reaching here is a hard failure of the whole step.
func (s *clusterStepStream) fail(err error) {
	s.mu.Lock()
	if s.err == nil {
		s.err = err
	}
	s.mu.Unlock()
	s.Close()
}

// push hands one batch to the consumer; false when the stream was
// closed and the producer should unwind.
func (s *clusterStepStream) push(rows []sql.StepRow) bool {
	select {
	case s.batches <- rows:
		return true
	case <-s.quit:
		return false
	}
}

// shardJoinReqs specializes one step's join request per shard. With no
// candidate list every shard receives the shared request unchanged
// (same tokens everywhere — see ClusterRunner.RunStep). With one, the
// global hub-row ids are remapped to each shard's local row numbers;
// a shard left with no candidates gets a nil slot and is skipped
// entirely — correct because no cross-shard match exists, and
// necessary because the wire encoding cannot distinguish an empty
// restriction from no restriction.
func (cl *Cluster) shardJoinReqs(base *wire.JoinRequest, tableL string, candidates []int) []*wire.JoinRequest {
	reqs := make([]*wire.JoinRequest, len(cl.clients))
	if len(candidates) == 0 {
		for s := range reqs {
			reqs[s] = base
		}
		return reqs
	}
	locals := cl.localCandidates(tableL, candidates)
	for s := range reqs {
		if len(locals[s]) == 0 {
			continue
		}
		r := *base
		r.CandidatesA = locals[s]
		reqs[s] = &r
	}
	return reqs
}

// localCandidates inverts the upload-time shard maps: per shard, the
// ascending local row numbers of the global candidate ids that live on
// it. Without a shard map (this process did not upload the table) the
// ids came from globalRow's deterministic injection local*N+shard, so
// the inverse is arithmetic. candidates must be sorted ascending —
// sql.Execute ships them that way.
func (cl *Cluster) localCandidates(table string, candidates []int) [][]int {
	n := len(cl.clients)
	cl.mu.Lock()
	m := cl.shardMaps[table]
	cl.mu.Unlock()
	out := make([][]int, n)
	if len(m) != n {
		for _, g := range candidates {
			if g >= 0 {
				out[g%n] = append(out[g%n], g/n)
			}
		}
		return out
	}
	for s := 0; s < n; s++ {
		sm := m[s] // ascending global ids of shard s's rows
		i := 0
		for _, g := range candidates {
			for i < len(sm) && sm[i] < g {
				i++
			}
			if i < len(sm) && sm[i] == g {
				out[s] = append(out[s], i)
			}
		}
	}
	return out
}

// scatter runs one join step on every shard concurrently and returns
// the merged stream: reqs carries one request per shard (see
// shardJoinReqs; a nil slot skips that shard). tableL/tableR name the
// step's sides for row-identity remapping. In async mode each shard's
// work is submitted as a server-side job first and the results are
// attached, so the shards' worker pools (and job spools) own the
// execution.
//
// Degraded mode: a shard that sheds (ErrOverloaded) is retried with
// jittered exponential backoff on that shard alone — its siblings
// keep streaming. Admission control rejects before any batch is
// produced, so the retry re-sends a request that has emitted nothing.
func (cl *Cluster) scatter(tableL, tableR string, reqs []*wire.JoinRequest, async bool) *clusterStepStream {
	ms := &clusterStepStream{
		batches: make(chan []sql.StepRow, len(cl.clients)),
		quit:    make(chan struct{}),
	}
	var wg sync.WaitGroup
	for s := range cl.clients {
		if reqs[s] == nil {
			continue
		}
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			label := strconv.Itoa(shard)
			started := time.Now()
			revealed, err := cl.runShard(shard, tableL, tableR, reqs[shard], async, ms)
			cl.met.ShardSeconds.With(label).Observe(time.Since(started).Seconds())
			if err != nil {
				ms.fail(fmt.Errorf("shard %d (%s): %w", shard, cl.addrs[shard], err))
				return
			}
			ms.mu.Lock()
			ms.revealed += revealed
			ms.mu.Unlock()
		}(s)
	}
	go func() {
		wg.Wait()
		close(ms.batches)
	}()
	return ms
}

// runShard executes one shard's portion of a scattered join, retrying
// on shed, and pushes remapped batches into the merged stream. It
// returns the shard's revealed-pair count.
func (cl *Cluster) runShard(shard int, tableL, tableR string, req *wire.JoinRequest, async bool, ms *clusterStepStream) (int, error) {
	c := cl.clients[shard]
	label := strconv.Itoa(shard)
	revealed := 0
	cfg := cl.retry
	cfg.Sleep = func(d time.Duration) {
		cl.met.ShardRetries.With(label).Inc()
		time.Sleep(d)
	}
	err := WithRetry(cfg, func() error {
		var js *JoinStream
		if async {
			info, err := c.submitJoinReq(req)
			if err != nil {
				if errors.Is(err, ErrOverloaded) {
					cl.met.ShardShed.With(label).Inc()
				}
				return err
			}
			if js, err = c.AttachJob(info.ID); err != nil {
				return err
			}
		} else {
			pd, err := c.send(&wire.Request{Join: req})
			if err != nil {
				return err
			}
			js = &JoinStream{c: c, p: pd}
		}
		for {
			batch, err := js.Next()
			if err == io.EOF {
				revealed = js.RevealedPairs()
				return nil
			}
			if err != nil {
				// A shed surfaces on the first Next (the terminal Err frame
				// precedes any batch), so retrying the whole open+drain
				// re-sends a request that delivered nothing.
				if errors.Is(err, ErrOverloaded) {
					cl.met.ShardShed.With(label).Inc()
				}
				return err
			}
			if len(batch) == 0 {
				continue
			}
			rows := make([]sql.StepRow, len(batch))
			for i, r := range batch {
				rows[i] = sql.StepRow{
					RowL:     cl.globalRow(tableL, shard, r.RowA),
					RowR:     cl.globalRow(tableR, shard, r.RowB),
					PayloadL: r.PayloadA,
					PayloadR: r.PayloadB,
				}
			}
			if !ms.push(rows) {
				js.Close()
				return errors.New("cluster stream closed")
			}
		}
	})
	return revealed, err
}

// ClusterRunner adapts a Cluster to sql.StepRunner, the third backend
// beside sql.EngineRunner (in-process) and the single-server wire
// runner: each plan step compiles to ONE join request that is
// scattered to every shard, and the merged stream feeds sql.Execute's
// stitcher unchanged. Async routes each shard's step through that
// backend's job queue instead of a synchronous join.
type ClusterRunner struct {
	Cluster *Cluster
	Async   bool
}

func (r ClusterRunner) RunStep(p *sql.Plan, step int, in sql.StepInput) (sql.StepStream, error) {
	spec, err := p.SpecFor(step, r.Cluster.keys)
	if err != nil {
		return nil, err
	}
	st := &p.Steps[step]
	// One token set per step, shared by every shard: the shards jointly
	// execute one logical query, and a semi-honest coalition of
	// backends then sees exactly the single-server request, not N
	// fresher-keyed variants of it. Only the semi-join candidate lists
	// differ per shard — each backend receives the (remapped) subset of
	// hub rows it actually stores.
	req, err := joinReqFromSpec(st.Left.Table, st.Right.Table, spec)
	if err != nil {
		return nil, err
	}
	reqs := r.Cluster.shardJoinReqs(req, st.Left.Table, in.CandidatesL)
	return r.Cluster.scatter(st.Left.Table, st.Right.Table, reqs, r.Async), nil
}

// ExecutePlan runs a compiled SQL plan scatter-gather: every pairwise
// step fans out to all shards, the merged decrypted intermediates are
// stitched client-side (sql.Execute), and the returned count sums the
// revealed pairs over all steps and shards — by the alignment argument
// above, equal to what one server executing the same plan would report.
func (cl *Cluster) ExecutePlan(p *sql.Plan, emit func(sql.ResultRow) error) (int, error) {
	return sql.Execute(ClusterRunner{Cluster: cl}, p, emit)
}

// ExecutePlanAsync is ExecutePlan with every shard's step submitted to
// that backend's job queue (surviving disconnects and restarts per
// shard, like Client.ExecutePlanAsync does for one server).
func (cl *Cluster) ExecutePlanAsync(p *sql.Plan, emit func(sql.ResultRow) error) (int, error) {
	return sql.Execute(ClusterRunner{Cluster: cl, Async: true}, p, emit)
}

// Join executes one ad-hoc equi-join scatter-gather and drains it:
// the merged decrypted results (single-server row identities when this
// cluster did the upload) and the summed revealed-pair count.
func (cl *Cluster) Join(tableA, tableB string, selA, selB securejoin.Selection, opts JoinOpts) ([]JoinResult, int, error) {
	req, err := cl.clients[0].buildJoinReq(tableA, tableB, selA, selB, opts)
	if err != nil {
		return nil, 0, err
	}
	ms := cl.scatter(tableA, tableB, cl.shardJoinReqs(req, tableA, nil), false)
	defer ms.Close()
	var out []JoinResult
	for {
		batch, err := ms.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, 0, err
		}
		for _, r := range batch {
			out = append(out, JoinResult{RowA: r.RowL, RowB: r.RowR, PayloadA: r.PayloadL, PayloadB: r.PayloadR})
		}
	}
	return out, ms.RevealedPairs(), nil
}
