// Package zq implements arithmetic in Z_q, the prime field of scalars of
// the bn256 pairing groups. It provides the scalar type used by the
// matrices, polynomials and vectors of the Secure Join scheme, along
// with the cryptographic hash-to-Z_q embedding H(.) that the paper uses
// to map join-attribute values into the field (Section 4.1: "We use a
// cryptographic hash function to provide such a mapping").
package zq

import (
	"crypto/rand"
	"crypto/sha256"
	"fmt"
	"io"
	"math/big"

	"repro/internal/bn256"
)

// Q is the prime order of the scalar field (the order of G1, G2 and GT).
var Q = new(big.Int).Set(bn256.Order)

// Scalar is an element of Z_q. Scalars are immutable: all operations
// return new values. The zero value of Scalar is the field element 0.
type Scalar struct {
	v big.Int // always in [0, Q)
}

// Zero returns the scalar 0.
func Zero() Scalar { return Scalar{} }

// One returns the scalar 1.
func One() Scalar { return FromInt64(1) }

// FromInt64 returns the scalar representing x mod q.
func FromInt64(x int64) Scalar {
	var s Scalar
	s.v.SetInt64(x)
	s.v.Mod(&s.v, Q)
	return s
}

// FromBig returns the scalar representing x mod q.
func FromBig(x *big.Int) Scalar {
	var s Scalar
	s.v.Mod(x, Q)
	return s
}

// FromBytes interprets b as a big-endian integer and reduces it mod q.
func FromBytes(b []byte) Scalar {
	var s Scalar
	s.v.SetBytes(b)
	s.v.Mod(&s.v, Q)
	return s
}

// Random returns a uniformly random scalar. If r is nil, crypto/rand is
// used.
func Random(r io.Reader) (Scalar, error) {
	if r == nil {
		r = rand.Reader
	}
	v, err := rand.Int(r, Q)
	if err != nil {
		return Scalar{}, fmt.Errorf("zq: sampling scalar: %w", err)
	}
	var s Scalar
	s.v.Set(v)
	return s, nil
}

// RandomNonZero returns a uniformly random scalar in Z_q \ {0}, the
// distribution the paper requires for per-query join keys k.
func RandomNonZero(r io.Reader) (Scalar, error) {
	for {
		s, err := Random(r)
		if err != nil {
			return Scalar{}, err
		}
		if !s.IsZero() {
			return s, nil
		}
	}
}

// MustRandom returns a random scalar, panicking on entropy failure. It
// is intended for tests and examples.
func MustRandom() Scalar {
	s, err := Random(nil)
	if err != nil {
		panic(err)
	}
	return s
}

// Hash maps an arbitrary byte string into Z_q using SHA-256. This is the
// paper's H(.): an injective-in-practice embedding whose outputs are
// computationally indistinguishable from uniform, as required by the
// Schwartz-Zippel argument in Section 4.1.
func Hash(data []byte) Scalar {
	h := sha256.Sum256(data)
	return FromBytes(h[:])
}

// HashString maps a string value into Z_q.
func HashString(s string) Scalar {
	return Hash([]byte(s))
}

// Big returns a copy of the canonical representative of s in [0, q).
func (s Scalar) Big() *big.Int {
	return new(big.Int).Set(&s.v)
}

// Bytes returns the 32-byte big-endian encoding of s.
func (s Scalar) Bytes() []byte {
	out := make([]byte, 32)
	s.v.FillBytes(out)
	return out
}

// IsZero reports whether s == 0.
func (s Scalar) IsZero() bool { return s.v.Sign() == 0 }

// Equal reports whether s == t.
func (s Scalar) Equal(t Scalar) bool { return s.v.Cmp(&t.v) == 0 }

// Add returns s + t mod q.
func (s Scalar) Add(t Scalar) Scalar {
	var r Scalar
	r.v.Add(&s.v, &t.v)
	r.v.Mod(&r.v, Q)
	return r
}

// Sub returns s - t mod q.
func (s Scalar) Sub(t Scalar) Scalar {
	var r Scalar
	r.v.Sub(&s.v, &t.v)
	r.v.Mod(&r.v, Q)
	return r
}

// Mul returns s * t mod q.
func (s Scalar) Mul(t Scalar) Scalar {
	var r Scalar
	r.v.Mul(&s.v, &t.v)
	r.v.Mod(&r.v, Q)
	return r
}

// Neg returns -s mod q.
func (s Scalar) Neg() Scalar {
	if s.IsZero() {
		return s
	}
	var r Scalar
	r.v.Sub(Q, &s.v)
	return r
}

// Inv returns s^-1 mod q. Inverting zero panics, matching the
// mathematical domain error.
func (s Scalar) Inv() Scalar {
	if s.IsZero() {
		panic("zq: inverse of zero")
	}
	var r Scalar
	r.v.ModInverse(&s.v, Q)
	return r
}

// Exp returns s^k mod q for k >= 0.
func (s Scalar) Exp(k int) Scalar {
	if k < 0 {
		panic("zq: negative exponent")
	}
	var r Scalar
	r.v.Exp(&s.v, big.NewInt(int64(k)), Q)
	return r
}

// String returns the decimal representation of s.
func (s Scalar) String() string { return s.v.String() }

// Vector is a slice of scalars.
type Vector []Scalar

// NewVector returns a zero vector of length n.
func NewVector(n int) Vector { return make(Vector, n) }

// InnerProduct returns <v, w> mod q. The vectors must have equal length.
func InnerProduct(v, w Vector) Scalar {
	if len(v) != len(w) {
		panic(fmt.Sprintf("zq: inner product of mismatched lengths %d and %d", len(v), len(w)))
	}
	acc := new(big.Int)
	t := new(big.Int)
	for i := range v {
		t.Mul(&v[i].v, &w[i].v)
		acc.Add(acc, t)
	}
	return FromBig(acc)
}

// Clone returns a deep copy of v.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

// Equal reports whether v and w are identical vectors.
func (v Vector) Equal(w Vector) bool {
	if len(v) != len(w) {
		return false
	}
	for i := range v {
		if !v[i].Equal(w[i]) {
			return false
		}
	}
	return true
}
