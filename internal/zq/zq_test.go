package zq

import (
	"math/big"
	"testing"
	"testing/quick"
)

func TestBasicArithmetic(t *testing.T) {
	a := FromInt64(7)
	b := FromInt64(5)
	if got := a.Add(b); !got.Equal(FromInt64(12)) {
		t.Fatalf("7+5 = %v", got)
	}
	if got := a.Sub(b); !got.Equal(FromInt64(2)) {
		t.Fatalf("7-5 = %v", got)
	}
	if got := b.Sub(a); !got.Equal(FromInt64(-2)) {
		t.Fatalf("5-7 = %v", got)
	}
	if got := a.Mul(b); !got.Equal(FromInt64(35)) {
		t.Fatalf("7*5 = %v", got)
	}
	if got := a.Neg().Add(a); !got.IsZero() {
		t.Fatalf("-7+7 = %v", got)
	}
}

func TestFromInt64Negative(t *testing.T) {
	s := FromInt64(-1)
	want := new(big.Int).Sub(Q, big.NewInt(1))
	if s.Big().Cmp(want) != 0 {
		t.Fatalf("-1 should map to q-1, got %v", s)
	}
}

func TestInverse(t *testing.T) {
	for i := int64(1); i < 50; i++ {
		s := FromInt64(i)
		if got := s.Mul(s.Inv()); !got.Equal(One()) {
			t.Fatalf("%d * %d^-1 = %v", i, i, got)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("inverting zero should panic")
		}
	}()
	Zero().Inv()
}

func TestExp(t *testing.T) {
	s := FromInt64(3)
	if got := s.Exp(0); !got.Equal(One()) {
		t.Fatalf("3^0 = %v", got)
	}
	if got := s.Exp(4); !got.Equal(FromInt64(81)) {
		t.Fatalf("3^4 = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative exponent should panic")
		}
	}()
	s.Exp(-1)
}

func TestFieldAxiomsQuick(t *testing.T) {
	cfg := &quick.Config{MaxCount: 100}
	distributes := func(a, b, c int64) bool {
		x, y, z := FromInt64(a), FromInt64(b), FromInt64(c)
		return x.Mul(y.Add(z)).Equal(x.Mul(y).Add(x.Mul(z)))
	}
	if err := quick.Check(distributes, cfg); err != nil {
		t.Error(err)
	}
	addCommutes := func(a, b int64) bool {
		x, y := FromInt64(a), FromInt64(b)
		return x.Add(y).Equal(y.Add(x))
	}
	if err := quick.Check(addCommutes, cfg); err != nil {
		t.Error(err)
	}
	subInverse := func(a, b int64) bool {
		x, y := FromInt64(a), FromInt64(b)
		return x.Sub(y).Add(y).Equal(x)
	}
	if err := quick.Check(subInverse, cfg); err != nil {
		t.Error(err)
	}
}

func TestHashDeterministicAndSpread(t *testing.T) {
	a := HashString("alice")
	b := HashString("alice")
	if !a.Equal(b) {
		t.Fatal("hash is not deterministic")
	}
	c := HashString("bob")
	if a.Equal(c) {
		t.Fatal("hash collision between distinct inputs (astronomically unlikely)")
	}
	seen := make(map[string]bool)
	for i := 0; i < 1000; i++ {
		h := Hash([]byte{byte(i), byte(i >> 8)})
		key := h.String()
		if seen[key] {
			t.Fatal("hash collision in small sample")
		}
		seen[key] = true
	}
}

func TestRandomNonZero(t *testing.T) {
	for i := 0; i < 20; i++ {
		s, err := RandomNonZero(nil)
		if err != nil {
			t.Fatal(err)
		}
		if s.IsZero() {
			t.Fatal("RandomNonZero returned zero")
		}
	}
}

func TestBytesRoundTrip(t *testing.T) {
	s := MustRandom()
	if got := FromBytes(s.Bytes()); !got.Equal(s) {
		t.Fatal("bytes round trip failed")
	}
	if len(s.Bytes()) != 32 {
		t.Fatalf("encoding should be 32 bytes, got %d", len(s.Bytes()))
	}
}

func TestInnerProduct(t *testing.T) {
	v := Vector{FromInt64(1), FromInt64(2), FromInt64(3)}
	w := Vector{FromInt64(4), FromInt64(5), FromInt64(6)}
	if got := InnerProduct(v, w); !got.Equal(FromInt64(32)) {
		t.Fatalf("<v,w> = %v, want 32", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched lengths should panic")
		}
	}()
	InnerProduct(v, w[:2])
}

func TestVectorCloneIsDeep(t *testing.T) {
	v := Vector{FromInt64(1), FromInt64(2)}
	c := v.Clone()
	c[0] = FromInt64(99)
	if !v[0].Equal(FromInt64(1)) {
		t.Fatal("clone aliases the original")
	}
	if v.Equal(c) {
		t.Fatal("Equal should detect the difference")
	}
	if !v.Equal(v.Clone()) {
		t.Fatal("identical vectors should be equal")
	}
}
