package baseline

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"errors"
	"fmt"
	"io"
)

// OnionScheme is the CryptDB-style onion baseline: a deterministic join
// tag (inner layer) wrapped in probabilistic AES-GCM (outer layer). The
// server stores only the outer ciphertexts, which reveal nothing. To
// execute the first join over a column pair the client hands the server
// the outer-layer key; the server strips the onion from the whole column
// and from then on holds bare deterministic tags — all equal pairs of
// both columns become visible at t1 and stay visible (the Section 2.1
// timeline).
type OnionScheme struct {
	det      *DetScheme
	outerKey []byte
}

// NewOnionScheme samples fresh inner and outer keys.
func NewOnionScheme(rng io.Reader) (*OnionScheme, error) {
	if rng == nil {
		rng = rand.Reader
	}
	det, err := NewDetScheme(rng)
	if err != nil {
		return nil, err
	}
	outer := make([]byte, 32)
	if _, err := io.ReadFull(rng, outer); err != nil {
		return nil, fmt.Errorf("baseline: sampling onion key: %w", err)
	}
	return &OnionScheme{det: det, outerKey: outer}, nil
}

// OnionCiphertext is one wrapped join value as stored on the server.
type OnionCiphertext []byte

// Encrypt wraps the deterministic tag of joinValue in the probabilistic
// outer layer.
func (s *OnionScheme) Encrypt(joinValue []byte) (OnionCiphertext, error) {
	tag := s.det.Encrypt(joinValue)
	return sealGCM(s.outerKey, tag)
}

// EncryptColumn wraps a whole join column.
func (s *OnionScheme) EncryptColumn(values [][]byte) ([]OnionCiphertext, error) {
	out := make([]OnionCiphertext, len(values))
	for i, v := range values {
		ct, err := s.Encrypt(v)
		if err != nil {
			return nil, err
		}
		out[i] = ct
	}
	return out, nil
}

// OuterKey returns the outer-layer key the client surrenders to enable
// joins. Handing this to the server is the onion "peel" step.
func (s *OnionScheme) OuterKey() []byte { return s.outerKey }

// Strip removes the outer layer of a whole column server-side using the
// surrendered key, yielding bare deterministic tags.
func Strip(outerKey []byte, column []OnionCiphertext) ([]DetTag, error) {
	out := make([]DetTag, len(column))
	for i, ct := range column {
		pt, err := openGCM(outerKey, ct)
		if err != nil {
			return nil, fmt.Errorf("baseline: stripping onion row %d: %w", i, err)
		}
		out[i] = pt
	}
	return out, nil
}

// sealGCM encrypts pt under key with a random nonce; the nonce is
// prepended to the ciphertext.
func sealGCM(key, pt []byte) ([]byte, error) {
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return nil, err
	}
	nonce := make([]byte, gcm.NonceSize())
	if _, err := io.ReadFull(rand.Reader, nonce); err != nil {
		return nil, err
	}
	return gcm.Seal(nonce, nonce, pt, nil), nil
}

// openGCM reverses sealGCM.
func openGCM(key, ct []byte) ([]byte, error) {
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return nil, err
	}
	if len(ct) < gcm.NonceSize() {
		return nil, errors.New("baseline: ciphertext shorter than nonce")
	}
	nonce, body := ct[:gcm.NonceSize()], ct[gcm.NonceSize():]
	return gcm.Open(nil, nonce, body, nil)
}
