// Package baseline implements the three comparison join-encryption
// schemes the paper analyses in Sections 2.1 and 6.5:
//
//   - DET: the deterministic-encryption join of Hacigumus et al.
//     (SIGMOD'02), where equal join values encrypt to equal tags and the
//     server can join by tag equality at any time.
//   - Onion: CryptDB's onion encryption (SOSP'11), wrapping the
//     deterministic tag in a probabilistic layer that the server strips
//     from the entire column on the first join touching it.
//   - Hahn: a functional simulation of Hahn et al. (ICDE'19), where the
//     probabilistic wrapping is per-row and removable only for rows that
//     match a query's selection criterion, joined with a nested loop.
//
// These are leakage and performance baselines; they are deliberately
// faithful to each scheme's *observable behaviour* (what becomes
// comparable when) rather than to the exact primitives of each paper.
package baseline

import (
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"fmt"
	"io"
)

// DetScheme is the deterministic-encryption join baseline. A keyed HMAC
// plays the role of the deterministic cipher: equal plaintext join
// values yield equal tags under the same key.
type DetScheme struct {
	key []byte
}

// NewDetScheme samples a fresh deterministic-encryption key.
func NewDetScheme(rng io.Reader) (*DetScheme, error) {
	if rng == nil {
		rng = rand.Reader
	}
	key := make([]byte, 32)
	if _, err := io.ReadFull(rng, key); err != nil {
		return nil, fmt.Errorf("baseline: sampling DET key: %w", err)
	}
	return &DetScheme{key: key}, nil
}

// DetTag is a deterministic join tag.
type DetTag []byte

// Encrypt produces the deterministic tag of a join value.
func (s *DetScheme) Encrypt(joinValue []byte) DetTag {
	mac := hmac.New(sha256.New, s.key)
	mac.Write(joinValue)
	return mac.Sum(nil)
}

// EncryptColumn tags a whole join column.
func (s *DetScheme) EncryptColumn(values [][]byte) []DetTag {
	out := make([]DetTag, len(values))
	for i, v := range values {
		out[i] = s.Encrypt(v)
	}
	return out
}

// JoinPair is one (rowA, rowB) match.
type JoinPair struct {
	RowA, RowB int
}

// Join performs the server-side equi-join over deterministic tags with a
// hash join. The server needs no token: tags are comparable from upload
// time, which is exactly the scheme's weakness.
func Join(tagsA, tagsB []DetTag) []JoinPair {
	buckets := make(map[string][]int, len(tagsA))
	for i, t := range tagsA {
		buckets[string(t)] = append(buckets[string(t)], i)
	}
	var out []JoinPair
	for j, t := range tagsB {
		for _, i := range buckets[string(t)] {
			out = append(out, JoinPair{RowA: i, RowB: j})
		}
	}
	return out
}

// EqualPairsWithin returns the intra-column equality pairs visible to
// the server.
func EqualPairsWithin(tags []DetTag) [][2]int {
	buckets := make(map[string][]int, len(tags))
	for i, t := range tags {
		buckets[string(t)] = append(buckets[string(t)], i)
	}
	var out [][2]int
	for _, rows := range buckets {
		for x := 0; x < len(rows); x++ {
			for y := x + 1; y < len(rows); y++ {
				out = append(out, [2]int{rows[x], rows[y]})
			}
		}
	}
	return out
}
