package baseline

import (
	"bytes"
	"testing"
)

func TestDetTagsDeterministic(t *testing.T) {
	s, err := NewDetScheme(nil)
	if err != nil {
		t.Fatal(err)
	}
	a := s.Encrypt([]byte("v"))
	b := s.Encrypt([]byte("v"))
	if !bytes.Equal(a, b) {
		t.Fatal("equal values should yield equal tags")
	}
	c := s.Encrypt([]byte("w"))
	if bytes.Equal(a, c) {
		t.Fatal("distinct values collided")
	}

	// Different keys must give different tags for the same value.
	s2, err := NewDetScheme(nil)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a, s2.Encrypt([]byte("v"))) {
		t.Fatal("independent schemes produced identical tags")
	}
}

func TestDetJoin(t *testing.T) {
	s, err := NewDetScheme(nil)
	if err != nil {
		t.Fatal(err)
	}
	tagsA := s.EncryptColumn([][]byte{[]byte("1"), []byte("2")})
	tagsB := s.EncryptColumn([][]byte{[]byte("1"), []byte("1"), []byte("2"), []byte("3")})
	pairs := Join(tagsA, tagsB)
	if len(pairs) != 3 {
		t.Fatalf("expected 3 join pairs, got %v", pairs)
	}
	within := EqualPairsWithin(tagsB)
	if len(within) != 1 || within[0] != [2]int{0, 1} {
		t.Fatalf("within pairs = %v", within)
	}
}

func TestOnionHidesUntilStripped(t *testing.T) {
	s, err := NewOnionScheme(nil)
	if err != nil {
		t.Fatal(err)
	}
	col, err := s.EncryptColumn([][]byte{[]byte("x"), []byte("x"), []byte("y")})
	if err != nil {
		t.Fatal(err)
	}
	// Before stripping, equal plaintexts have different ciphertexts
	// (probabilistic outer layer).
	if bytes.Equal(col[0], col[1]) {
		t.Fatal("onion ciphertexts for equal values are identical")
	}
	// After stripping, tags compare deterministically.
	tags, err := Strip(s.OuterKey(), col)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(tags[0], tags[1]) {
		t.Fatal("stripped tags for equal values differ")
	}
	if bytes.Equal(tags[0], tags[2]) {
		t.Fatal("stripped tags for distinct values collide")
	}
	// A wrong key must fail to strip.
	bad := make([]byte, 32)
	if _, err := Strip(bad, col); err == nil {
		t.Fatal("stripping with a wrong key succeeded")
	}
}

func TestHahnUnwrapRespectsSelection(t *testing.T) {
	s, err := NewHahnScheme(nil)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := s.EncryptTable(
		[][]byte{[]byte("j1"), []byte("j1"), []byte("j2")},
		[][]byte{[]byte("red"), []byte("blue"), []byte("red")},
	)
	if err != nil {
		t.Fatal(err)
	}
	st := NewServerState(rows)
	newly := st.Unwrap(s.Token([][]byte{[]byte("red")}))
	if len(newly) != 2 {
		t.Fatalf("token for red should unwrap rows 0 and 2, got %v", newly)
	}
	if _, ok := st.Unwrapped[1]; ok {
		t.Fatal("row with attribute blue was unwrapped by a red token")
	}
	// A second query with the same token unwraps nothing new.
	if again := st.Unwrap(s.Token([][]byte{[]byte("red")})); len(again) != 0 {
		t.Fatalf("re-unwrap yielded %v", again)
	}
}

// TestHahnSuperAdditiveLeakage reproduces the core weakness: two
// queries with disjoint selections leave the server able to link rows
// that no single query related.
func TestHahnSuperAdditiveLeakage(t *testing.T) {
	s, err := NewHahnScheme(nil)
	if err != nil {
		t.Fatal(err)
	}
	// Example 2.1's Employees table: join = team, attr = role.
	rowsB, err := s.EncryptTable(
		[][]byte{[]byte("1"), []byte("1"), []byte("2"), []byte("2")},
		[][]byte{[]byte("Programmer"), []byte("Tester"), []byte("Programmer"), []byte("Tester")},
	)
	if err != nil {
		t.Fatal(err)
	}
	rowsA, err := s.EncryptTable(
		[][]byte{[]byte("1"), []byte("2")},
		[][]byte{[]byte("Web Application"), []byte("Database")},
	)
	if err != nil {
		t.Fatal(err)
	}
	stA := NewServerState(rowsA)
	stB := NewServerState(rowsB)

	// Query 1: Name=Web Application AND Role=Tester.
	stA.Unwrap(s.Token([][]byte{[]byte("Web Application")}))
	stB.Unwrap(s.Token([][]byte{[]byte("Tester")}))
	cross1, _, withinB1 := VisiblePairs(stA, stB)
	if len(cross1) != 1 || len(withinB1) != 0 {
		t.Fatalf("after q1: cross=%v within=%v", cross1, withinB1)
	}

	// Query 2: Name=Database AND Role=Programmer.
	stA.Unwrap(s.Token([][]byte{[]byte("Database")}))
	stB.Unwrap(s.Token([][]byte{[]byte("Programmer")}))
	cross2, _, withinB2 := VisiblePairs(stA, stB)

	// Super-additive: all four employees are now unwrapped, so the
	// server sees 4 cross pairs and 2 within-Employees pairs = 6 total,
	// even though the two queries individually revealed 1 pair each.
	if len(cross2) != 4 {
		t.Fatalf("after q2 expected 4 cross pairs, got %v", cross2)
	}
	if len(withinB2) != 2 {
		t.Fatalf("after q2 expected 2 within pairs, got %v", withinB2)
	}
}

func TestHahnNestedLoopJoinCorrect(t *testing.T) {
	s, err := NewHahnScheme(nil)
	if err != nil {
		t.Fatal(err)
	}
	rowsA, _ := s.EncryptTable([][]byte{[]byte("k")}, [][]byte{[]byte("a")})
	rowsB, _ := s.EncryptTable([][]byte{[]byte("k"), []byte("other")}, [][]byte{[]byte("a"), []byte("a")})
	stA, stB := NewServerState(rowsA), NewServerState(rowsB)
	stA.Unwrap(s.Token([][]byte{[]byte("a")}))
	stB.Unwrap(s.Token([][]byte{[]byte("a")}))
	pairs := NestedLoopJoin(stA, stB)
	if len(pairs) != 1 || pairs[0] != (JoinPair{RowA: 0, RowB: 0}) {
		t.Fatalf("pairs = %v", pairs)
	}
}

func TestHahnEncryptTableValidation(t *testing.T) {
	s, err := NewHahnScheme(nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.EncryptTable([][]byte{[]byte("a")}, nil); err == nil {
		t.Fatal("mismatched lengths should be rejected")
	}
}
