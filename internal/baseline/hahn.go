package baseline

import (
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"fmt"
	"io"
)

// HahnScheme is a functional simulation of the join scheme of Hahn, Loza
// and Kerschbaum (ICDE'19). In the original, each row's deterministic
// join tag is wrapped in key-policy attribute-based encryption so that
// only rows whose attributes satisfy a query's selection policy can be
// unwrapped, and joins run as nested loops over unwrapped tags
// (primary-key/foreign-key joins only).
//
// We simulate the KP-ABE wrapping with per-attribute-value AES-GCM keys:
// a row's tag is wrapped under a key derived from each of its attribute
// values, and a query token carries the derived keys for the values in
// its selection predicate. This reproduces the two properties the paper
// evaluates against — (i) only selection-matching rows unwrap, and
// (ii) unwrapped tags persist, so a series of queries reveals equality
// pairs across queries (super-additive leakage) — without implementing
// GPSW attribute-based encryption itself. It also reproduces the O(n^2)
// nested-loop join cost, since unwrap attempts are per row-token pair.
type HahnScheme struct {
	det    *DetScheme
	master []byte
}

// NewHahnScheme samples the scheme keys.
func NewHahnScheme(rng io.Reader) (*HahnScheme, error) {
	if rng == nil {
		rng = rand.Reader
	}
	det, err := NewDetScheme(rng)
	if err != nil {
		return nil, err
	}
	master := make([]byte, 32)
	if _, err := io.ReadFull(rng, master); err != nil {
		return nil, fmt.Errorf("baseline: sampling Hahn master key: %w", err)
	}
	return &HahnScheme{det: det, master: master}, nil
}

// HahnRow is one encrypted row as stored on the server: the join tag
// wrapped under the key derived from the row's selection attribute.
type HahnRow struct {
	Wrapped []byte
}

// HahnToken authorizes unwrapping rows whose selection attribute takes
// one of the token's values.
type HahnToken struct {
	Keys [][]byte
}

// attrKey derives the wrap key for one attribute value.
func (s *HahnScheme) attrKey(attrValue []byte) []byte {
	mac := hmac.New(sha256.New, s.master)
	mac.Write(attrValue)
	return mac.Sum(nil)
}

// EncryptRow wraps the row's deterministic join tag under its selection
// attribute value.
func (s *HahnScheme) EncryptRow(joinValue, attrValue []byte) (HahnRow, error) {
	tag := s.det.Encrypt(joinValue)
	ct, err := sealGCM(s.attrKey(attrValue), tag)
	if err != nil {
		return HahnRow{}, err
	}
	return HahnRow{Wrapped: ct}, nil
}

// EncryptTable encrypts parallel slices of join and attribute values.
func (s *HahnScheme) EncryptTable(joinValues, attrValues [][]byte) ([]HahnRow, error) {
	if len(joinValues) != len(attrValues) {
		return nil, fmt.Errorf("baseline: %d join values but %d attribute values", len(joinValues), len(attrValues))
	}
	out := make([]HahnRow, len(joinValues))
	for i := range joinValues {
		r, err := s.EncryptRow(joinValues[i], attrValues[i])
		if err != nil {
			return nil, err
		}
		out[i] = r
	}
	return out, nil
}

// Token issues the unwrap keys for a selection predicate (a set of
// admissible attribute values).
func (s *HahnScheme) Token(attrValues [][]byte) HahnToken {
	keys := make([][]byte, len(attrValues))
	for i, v := range attrValues {
		keys[i] = s.attrKey(v)
	}
	return HahnToken{Keys: keys}
}

// ServerState is the Hahn server's persistent view: wrapped rows plus
// the tags unwrapped by queries so far. Unwrap state persisting across
// queries is precisely what produces super-additive leakage.
type ServerState struct {
	Rows      []HahnRow
	Unwrapped map[int]DetTag
}

// NewServerState initializes server state for an uploaded table.
func NewServerState(rows []HahnRow) *ServerState {
	return &ServerState{Rows: rows, Unwrapped: make(map[int]DetTag)}
}

// Unwrap tries every token key against every still-wrapped row, caching
// successes. It returns the indexes newly unwrapped by this query.
func (st *ServerState) Unwrap(tok HahnToken) []int {
	var newly []int
	for i, row := range st.Rows {
		if _, done := st.Unwrapped[i]; done {
			continue
		}
		for _, key := range tok.Keys {
			pt, err := openGCM(key, row.Wrapped)
			if err != nil {
				continue
			}
			st.Unwrapped[i] = DetTag(pt)
			newly = append(newly, i)
			break
		}
	}
	return newly
}

// NestedLoopJoin joins two server states over all currently unwrapped
// rows with the O(n^2) pairwise comparison the original scheme requires.
func NestedLoopJoin(a, b *ServerState) []JoinPair {
	var out []JoinPair
	for i, ta := range a.Unwrapped {
		for j, tb := range b.Unwrapped {
			if hmac.Equal(ta, tb) {
				out = append(out, JoinPair{RowA: i, RowB: j})
			}
		}
	}
	return out
}

// VisiblePairs returns every equality pair currently observable by the
// server, both across the two tables and within each table. Over a
// series of queries this grows beyond the per-query union — the
// super-additive leakage the paper eliminates.
func VisiblePairs(a, b *ServerState) (cross []JoinPair, withinA, withinB [][2]int) {
	cross = NestedLoopJoin(a, b)
	withinA = equalPairsOfState(a)
	withinB = equalPairsOfState(b)
	return cross, withinA, withinB
}

func equalPairsOfState(st *ServerState) [][2]int {
	idx := make([]int, 0, len(st.Unwrapped))
	for i := range st.Unwrapped {
		idx = append(idx, i)
	}
	var out [][2]int
	for x := 0; x < len(idx); x++ {
		for y := x + 1; y < len(idx); y++ {
			if hmac.Equal(st.Unwrapped[idx[x]], st.Unwrapped[idx[y]]) {
				a, b := idx[x], idx[y]
				if a > b {
					a, b = b, a
				}
				out = append(out, [2]int{a, b})
			}
		}
	}
	return out
}
