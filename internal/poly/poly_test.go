package poly

import (
	"testing"
	"testing/quick"

	"repro/internal/zq"
)

func TestZeroPolynomial(t *testing.T) {
	p := Zero(5)
	if !p.IsZero() {
		t.Fatal("Zero(5) is not zero")
	}
	if p.Degree() != -1 {
		t.Fatalf("degree of zero polynomial = %d", p.Degree())
	}
	if got := p.Eval(zq.FromInt64(17)); !got.IsZero() {
		t.Fatal("zero polynomial evaluated non-zero")
	}
	if len(p.Coeffs(6)) != 6 {
		t.Fatal("Coeffs padding wrong")
	}
}

func TestFromRootsVanishesOnRoots(t *testing.T) {
	roots := []zq.Scalar{zq.FromInt64(3), zq.FromInt64(8), zq.HashString("x")}
	p, err := FromRoots(roots, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range roots {
		if !p.HasRoot(r) {
			t.Fatalf("polynomial does not vanish at root %v", r)
		}
	}
	if p.Degree() != 5 {
		t.Fatalf("degree = %d, want exactly 5", p.Degree())
	}
	// A non-root must (overwhelmingly) not vanish.
	if p.HasRoot(zq.FromInt64(123456)) {
		t.Fatal("polynomial vanishes at a non-root")
	}
}

func TestFromRootsExactDegreeBound(t *testing.T) {
	roots := []zq.Scalar{zq.FromInt64(1), zq.FromInt64(2)}
	p, err := FromRoots(roots, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.Degree() != 2 {
		t.Fatalf("degree = %d, want 2", p.Degree())
	}
	if _, err := FromRoots(roots, 1, nil); err == nil {
		t.Fatal("too many roots should be rejected")
	}
}

func TestFromRootsIsRandomized(t *testing.T) {
	// Section 4.1: each predicate has at least q admissible encodings,
	// so two independently generated polynomials for the same roots
	// should differ.
	roots := []zq.Scalar{zq.FromInt64(7)}
	p1, err := FromRoots(roots, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := FromRoots(roots, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p1.Coeffs(4).Equal(p2.Coeffs(4)) {
		t.Fatal("two fresh encodings are identical (randomization missing)")
	}
	if !p1.HasRoot(roots[0]) || !p2.HasRoot(roots[0]) {
		t.Fatal("randomized encodings lost the root")
	}
}

func TestEvalMatchesCoefficientForm(t *testing.T) {
	// p(x) = 2 + 3x + x^2 evaluated at small points.
	p := FromCoeffs(zq.Vector{zq.FromInt64(2), zq.FromInt64(3), zq.FromInt64(1)})
	cases := map[int64]int64{0: 2, 1: 6, 2: 12, 5: 42}
	for x, want := range cases {
		if got := p.Eval(zq.FromInt64(x)); !got.Equal(zq.FromInt64(want)) {
			t.Fatalf("p(%d) = %v, want %d", x, got, want)
		}
	}
	if p.Degree() != 2 {
		t.Fatalf("degree = %d", p.Degree())
	}
}

func TestEvalViaInnerProductOfPowers(t *testing.T) {
	// The scheme evaluates P at a via <coeffs, PowersOf(a)>; both paths
	// must agree for random polynomials and points.
	check := func(c0, c1, c2, c3, x int64) bool {
		coeffs := zq.Vector{zq.FromInt64(c0), zq.FromInt64(c1), zq.FromInt64(c2), zq.FromInt64(c3)}
		p := FromCoeffs(coeffs)
		a := zq.FromInt64(x)
		direct := p.Eval(a)
		viaIP := zq.InnerProduct(coeffs, PowersOf(a, 3))
		return direct.Equal(viaIP)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPowersOf(t *testing.T) {
	powers := PowersOf(zq.FromInt64(3), 4)
	want := []int64{1, 3, 9, 27, 81}
	if len(powers) != 5 {
		t.Fatalf("len = %d", len(powers))
	}
	for i, w := range want {
		if !powers[i].Equal(zq.FromInt64(w)) {
			t.Fatalf("powers[%d] = %v, want %d", i, powers[i], w)
		}
	}
	zero := PowersOf(zq.Zero(), 2)
	if !zero[0].Equal(zq.One()) || !zero[1].IsZero() || !zero[2].IsZero() {
		t.Fatal("powers of zero should be (1, 0, 0)")
	}
}

func TestSchwartzZippelBound(t *testing.T) {
	b := SchwartzZippelBound(10)
	if b.Sign() <= 0 {
		t.Fatal("bound should be positive")
	}
	// t/q with q ~ 2^254 must be well below 2^-240.
	if b.Cmp(SchwartzZippelBound(11)) >= 0 {
		t.Fatal("bound should grow with t")
	}
	f, _ := b.Float64()
	if f > 1e-60 {
		t.Fatalf("bound suspiciously large: %v", f)
	}
}

func TestFromRootsEmpty(t *testing.T) {
	// No roots: still a degree-t polynomial (all random factors), so it
	// should not vanish anywhere we look.
	p, err := FromRoots(nil, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.Degree() != 3 {
		t.Fatalf("degree = %d, want 3", p.Degree())
	}
	vanish := 0
	for i := int64(0); i < 100; i++ {
		if p.HasRoot(zq.FromInt64(i)) {
			vanish++
		}
	}
	if vanish > 3 {
		t.Fatalf("degree-3 polynomial vanished at %d of 100 points", vanish)
	}
}

func TestString(t *testing.T) {
	if s := Zero(2).String(); s != "0" {
		t.Fatalf("zero renders as %q", s)
	}
	p := FromCoeffs(zq.Vector{zq.FromInt64(1), zq.Zero(), zq.FromInt64(2)})
	if s := p.String(); s == "" || s == "0" {
		t.Fatalf("unexpected rendering %q", s)
	}
}
