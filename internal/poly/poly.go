// Package poly implements polynomial functions over Z_q in the sense of
// Section 3.2 of the paper. The Secure Join scheme encodes each IN-clause
// selection predicate as a polynomial whose roots are the selected
// attribute values (Section 4.1): the inner product of the polynomial's
// coefficient vector with the vector of attribute-value powers evaluates
// the polynomial, and vanishes exactly when the row's attribute value is
// one of the selected values (up to Schwartz-Zippel error t/q).
package poly

import (
	"fmt"
	"io"
	"math/big"

	"repro/internal/zq"
)

// Polynomial is a polynomial over Z_q stored as a coefficient vector
// coeffs[i] being the coefficient of x^i. The zero polynomial is the
// empty or all-zero coefficient slice; the paper uses it to encode
// attributes without a selection predicate.
type Polynomial struct {
	coeffs zq.Vector
}

// Zero returns the identically-zero polynomial padded to degree bound t,
// i.e. t+1 zero coefficients.
func Zero(t int) Polynomial {
	return Polynomial{coeffs: zq.NewVector(t + 1)}
}

// FromCoeffs returns the polynomial with the given coefficients
// (coeffs[i] multiplying x^i).
func FromCoeffs(coeffs zq.Vector) Polynomial {
	return Polynomial{coeffs: coeffs.Clone()}
}

// FromRoots returns a polynomial of degree exactly t whose root set
// includes each element of roots. The paper requires degree-t
// polynomials encoding at most t roots; when len(roots) < t, the
// polynomial is multiplied by a uniformly random monic linear factor
// repeatedly (adding random roots), and finally scaled by a uniformly
// random non-zero leading multiplier so that, as Section 4.1 notes, the
// encoding is one of at least q admissible polynomials.
func FromRoots(roots []zq.Scalar, t int, rng io.Reader) (Polynomial, error) {
	if len(roots) > t {
		return Polynomial{}, fmt.Errorf("poly: %d roots exceed degree bound %d", len(roots), t)
	}
	// Start from the monic product of (x - root).
	coeffs := zq.NewVector(t + 1)
	coeffs[0] = zq.One()
	deg := 0
	mulLinear := func(root zq.Scalar) {
		// coeffs *= (x - root)
		neg := root.Neg()
		for i := deg + 1; i >= 1; i-- {
			coeffs[i] = coeffs[i-1].Add(coeffs[i].Mul(neg))
		}
		coeffs[0] = coeffs[0].Mul(neg)
		deg++
	}
	for _, r := range roots {
		mulLinear(r)
	}
	for deg < t {
		r, err := zq.Random(rng)
		if err != nil {
			return Polynomial{}, err
		}
		mulLinear(r)
	}
	// Random non-zero global scale.
	scale, err := zq.RandomNonZero(rng)
	if err != nil {
		return Polynomial{}, err
	}
	for i := range coeffs {
		coeffs[i] = coeffs[i].Mul(scale)
	}
	return Polynomial{coeffs: coeffs}, nil
}

// Degree returns the degree of p, with -1 for the zero polynomial.
func (p Polynomial) Degree() int {
	for i := len(p.coeffs) - 1; i >= 0; i-- {
		if !p.coeffs[i].IsZero() {
			return i
		}
	}
	return -1
}

// IsZero reports whether p is identically zero.
func (p Polynomial) IsZero() bool { return p.Degree() < 0 }

// Coeffs returns a copy of the coefficient vector of p, padded or
// truncated to exactly n entries.
func (p Polynomial) Coeffs(n int) zq.Vector {
	out := zq.NewVector(n)
	copy(out, p.coeffs)
	return out
}

// Eval returns p(x) by Horner's rule.
func (p Polynomial) Eval(x zq.Scalar) zq.Scalar {
	acc := zq.Zero()
	for i := len(p.coeffs) - 1; i >= 0; i-- {
		acc = acc.Mul(x).Add(p.coeffs[i])
	}
	return acc
}

// HasRoot reports whether p(x) == 0.
func (p Polynomial) HasRoot(x zq.Scalar) bool {
	return p.Eval(x).IsZero()
}

// String renders p for debugging.
func (p Polynomial) String() string {
	if p.IsZero() {
		return "0"
	}
	s := ""
	for i := len(p.coeffs) - 1; i >= 0; i-- {
		if p.coeffs[i].IsZero() {
			continue
		}
		if s != "" {
			s += " + "
		}
		if i == 0 {
			s += p.coeffs[i].String()
		} else {
			s += fmt.Sprintf("%v x^%d", p.coeffs[i], i)
		}
	}
	return s
}

// SchwartzZippelBound returns the Lemma 3.1 upper bound t/q (as a
// rational) on the probability that a non-zero polynomial of total
// degree at most t evaluates to zero at a uniformly random point.
func SchwartzZippelBound(t int) *big.Rat {
	return new(big.Rat).SetFrac(big.NewInt(int64(t)), zq.Q)
}

// PowersOf returns (x^0, x^1, ..., x^t), the per-attribute block the
// Secure Join scheme stores encrypted so that a token's coefficient
// block can evaluate any degree-t selection polynomial via an inner
// product.
func PowersOf(x zq.Scalar, t int) zq.Vector {
	out := zq.NewVector(t + 1)
	acc := zq.One()
	for i := 0; i <= t; i++ {
		out[i] = acc
		acc = acc.Mul(x)
	}
	return out
}
