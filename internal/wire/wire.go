// Package wire defines the v2 client/server protocol: a versioned
// handshake followed by length-prefixed gob frames. Requests carry a
// client-chosen ID and may be pipelined; the server answers each ID
// with zero or more JoinBatch frames followed by exactly one terminal
// frame (Ok, Err or Summary), interleaving frames of concurrent
// requests on one connection. All cryptographic objects travel as
// validated binary encodings (see securejoin's
// MarshalBinary/UnmarshalBinary); payloads are opaque AEAD blobs.
package wire

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
)

// Version is the protocol version spoken by this package. Version 1 was
// the unversioned blocking request/response protocol; it is no longer
// accepted.
const Version = 2

// MaxFrameSize bounds a single frame's payload so a malformed or
// hostile peer cannot force an unbounded allocation.
const MaxFrameSize = 64 << 20

// FrameByteBudget is the soft cap senders use when splitting bulk data
// (upload chunks, join batches) across frames: enough headroom under
// MaxFrameSize that encoding overhead can never push a frame over the
// hard limit.
const FrameByteBudget = 16 << 20

// Typed protocol errors.
var (
	// ErrVersionMismatch is returned by the handshake when the peer
	// speaks a different protocol version.
	ErrVersionMismatch = errors.New("wire: protocol version mismatch")
	// ErrFrameTooLarge is returned when a frame header announces a
	// payload larger than MaxFrameSize (or an empty one).
	ErrFrameTooLarge = errors.New("wire: frame exceeds maximum size")
	// ErrTruncatedFrame is returned when the underlying stream ends in
	// the middle of a frame header or payload.
	ErrTruncatedFrame = errors.New("wire: truncated frame")
)

// Hello is the first message on a connection, sent by the client.
type Hello struct {
	Version uint32
}

// HelloAck answers a Hello. Err is non-empty when the server rejects
// the connection (e.g. on a version mismatch).
type HelloAck struct {
	Version uint32
	Err     string
}

// Request is the union of client messages; exactly one operation field
// is set. ID is chosen by the client and must be unique among the
// requests in flight on the connection; the server echoes it on every
// frame belonging to this request, so responses of pipelined requests
// can interleave. Cancel names the ID of an earlier in-flight request
// whose remaining work and response frames the client no longer wants;
// the cancel request itself is acked under its own ID.
//
// Describe asks the server to list its stored tables (name, row count,
// SSE-index presence) in a TableList frame — the catalog sync a SQL
// planner needs to choose prefiltered plans in client mode. Like the
// PR-2 prefilter fields it is gob-zero when absent, so old clients and
// servers interoperate without a version bump.
// Submit, JobStatus and Attach are the async job operations (all
// gob-additive, like Describe): Submit enqueues a join on the server's
// job queue and answers immediately with a JobInfo frame; JobStatus
// polls a job by ID; Attach blocks until the job terminates and then
// streams its result exactly like a synchronous join (Batch frames
// followed by a Summary). Jobs are server-side state, so any later
// connection may poll or attach.
type Request struct {
	ID        uint64
	Upload    *UploadRequest
	Join      *JoinRequest
	Ping      bool
	Cancel    uint64
	Describe  bool
	Submit    *SubmitRequest
	JobStatus string
	Attach    string
}

// SubmitRequest enqueues a join for asynchronous execution. The
// embedded JoinRequest is exactly what a synchronous Join would carry;
// the server validates it at submit time, runs it on the job worker
// pool, and spools the completed result durably when it has a store.
type SubmitRequest struct {
	Join *JoinRequest
}

// UploadRequest stores an encrypted table under a name. A table larger
// than one frame is uploaded as a sequence of requests: the first with
// Append false, the following chunks with Append true, and the last
// one (possibly the first) with Commit true. The server stages the
// chunks per connection and installs the table atomically on Commit,
// so a failed or abandoned sequence never leaves a truncated table
// visible and concurrent joins never snapshot a partial upload. Each
// request in the sequence is acked separately.
//
// Index optionally carries the table's serialized SSE pre-filter index
// (sse.Index encoding) on the Commit chunk, enabling prefiltered joins
// against the table; it is ignored on non-Commit chunks. An absent
// Index (the gob zero value, as sent by older clients) uploads the
// table without a pre-filter, exactly as before the field existed.
//
// Shard/ShardCount annotate a sharded upload: this server stores shard
// Shard (0-based) of ShardCount hash-partitions of the named table,
// partitioned client-side on the join-key attribute (see
// client.Cluster). The fields are metadata only — the server stores
// and joins the shard exactly like a whole table — and gob-additive:
// their zero values (0, 0) are what unsharded clients always sent, so
// no version bump.
//
// NDV, on the Commit chunk, carries the table's distinct-join-value
// count, computed client-side at encrypt time (only the key owner sees
// plaintext join values). It is planner metadata echoed back by
// Describe; gob-additive — 0 (unknown) is what older clients always
// sent.
type UploadRequest struct {
	Table      string
	Rows       []UploadRow
	Append     bool
	Commit     bool
	Index      []byte
	Shard      int
	ShardCount int
	NDV        int
}

// UploadRow is one encrypted row: the Secure Join ciphertext and the
// sealed payload returned with join results.
type UploadRow struct {
	JoinCiphertext []byte
	Payload        []byte
}

// JoinRequest executes SELECT * FROM TableA JOIN TableB with the two
// query tokens generated by the client for this query.
//
// PrefilterA/PrefilterB optionally carry each table's serialized
// per-attribute SSE search-token lists (sse.MarshalTokenMap encoding):
// when either is non-empty the server resolves the selection predicates
// through the tables' SSE indexes first and pays SJ.Dec pairings only
// for candidate rows. Workers hints how many SJ.Dec workers the server
// should use for this query (0 picks the server default; the server
// clamps the hint to its core count). All three fields are gob
// zero-valued when absent, so requests from clients that predate them
// execute exactly the v2 full-scan, server-paced join — no handshake
// or version change.
//
// CandidatesA/B optionally restrict a side to an explicit row-id list
// — the semi-join reduction: a multi-join executor ships the hub rows
// matched by the previous plan step so SJ.Dec runs only over them,
// intersected with any SSE prefilter on the same side. A non-empty
// list is a restriction; empty means none (executors never ship an
// empty list — an empty intermediate short-circuits the plan client-
// side instead). SkipPayloadA/B ask the server to omit that side's
// sealed payloads from the result rows (key-only projection). All four
// are gob-additive exactly like PrefilterA/B: their zero values are
// what older clients always sent, so no version bump.
type JoinRequest struct {
	TableA, TableB         string
	TokenA, TokenB         []byte
	PrefilterA, PrefilterB []byte
	Workers                int
	CandidatesA            []int
	CandidatesB            []int
	SkipPayloadA           bool
	SkipPayloadB           bool
}

// Frame is one server→client message. ID echoes the request it belongs
// to. Exactly one of the remaining operation fields is set:
//
//   - Batch:   a chunk of join results; more frames follow.
//   - Summary: terminal frame of a join stream.
//   - Tables:  terminal answer to a Describe request.
//   - Ok:      terminal ack of an Upload or Ping.
//   - Err:     terminal failure of the request.
//
// Code optionally machine-types an Err frame (see the Code* constants)
// so clients can react to specific failures — retry an overloaded
// server, report an idle disconnect — without parsing error strings.
// Health optionally rides on a Ping ack, reporting server readiness
// and key gauges. Both fields are gob-additive: a zero Code/nil Health
// is what servers sent before the fields existed, so no version bump.
//
// A Frame with ID 0 is a connection-level notice, not the response to
// any request (clients allocate request IDs from 1): the server sends
// one, with a Code naming the reason, immediately before it closes the
// connection on its own initiative (e.g. CodeIdleTimeout).
// Job is the terminal answer to a Submit or JobStatus request
// (gob-additive like Health).
type Frame struct {
	ID      uint64
	Err     string
	Ok      bool
	Batch   *JoinBatch
	Summary *JoinSummary
	Tables  *TableList
	Code    string
	Health  *HealthInfo
	Job     *JobInfo
}

// Frame codes. An empty Code carries no classification.
const (
	// CodeOverloaded marks a request shed by admission control: the
	// server's join-worker semaphore or the connection's in-flight join
	// cap was exhausted. The request was rejected before any pairing
	// work ran; retrying after a backoff is safe and expected.
	CodeOverloaded = "overloaded"
	// CodeIdleTimeout marks a connection-level close notice (ID 0):
	// the connection sat idle — no in-flight requests, nothing arriving
	// — longer than the server's idle timeout.
	CodeIdleTimeout = "idle-timeout"
	// CodeUnknownJob marks a JobStatus or Attach request naming a job ID
	// the server does not hold: never submitted, already reaped by TTL,
	// or lost to a restart before it completed (only completed jobs are
	// spooled durably). Retrying will not help; resubmit instead.
	CodeUnknownJob = "unknown-job"
)

// Job states reported in JobInfo.State. A job moves
// queued → running → done|failed; completed states are terminal.
const (
	JobQueued  = "queued"
	JobRunning = "running"
	JobDone    = "done"
	JobFailed  = "failed"
)

// JobInfo is a point-in-time snapshot of one async join job. Progress
// fields (RowsDecrypted, StepsDone, RevealedPairs) tick while the job
// runs; ResultRows and Err are set on termination. Timestamps are Unix
// seconds, zero when the phase has not been reached.
type JobInfo struct {
	ID             string
	State          string
	TableA, TableB string
	// RowsDecrypted counts rows run through SJ.Dec so far (build and
	// probe sides); StepsDone counts completed pipeline steps (the build
	// phase, then one per probe batch); RevealedPairs is sigma(q) so far.
	RowsDecrypted int
	StepsDone     int
	RevealedPairs int
	// ResultRows is the number of joined rows in the completed result.
	ResultRows int
	// Err is the failure message of a failed job.
	Err          string
	CreatedUnix  int64
	StartedUnix  int64
	FinishedUnix int64
}

// HealthInfo reports server readiness and key gauges on a Ping ack —
// the liveness/readiness probe of the protocol. Servers predating the
// field send plain Ok acks (Health nil), which clients must tolerate.
type HealthInfo struct {
	// Ready is true while the server accepts new work. It is the
	// readiness bit a load balancer should route on.
	Ready bool
	// Tables is the number of stored tables.
	Tables int
	// ActiveConns is the number of live client connections.
	ActiveConns int
	// InflightJoins is the number of joins currently executing.
	InflightJoins int
	// ShedTotal counts requests rejected by admission control since
	// start.
	ShedTotal uint64
	// RevealedPairs sums the per-table leakage counters (an intra-table
	// pair counts once per table it touches).
	RevealedPairs uint64
	// UptimeSeconds is the time since the server started serving.
	UptimeSeconds float64
	// JobsQueued is the number of join tasks waiting in the job queue;
	// JobsRunning the number executing on the worker pool; JobsStored
	// the number of jobs held in the job table (any state, including
	// spooled completed results awaiting TTL reaping).
	JobsQueued  int
	JobsRunning int
	JobsStored  int
}

// Terminal reports whether this frame ends its request's response
// stream.
func (f *Frame) Terminal() bool { return f.Batch == nil }

// JoinBatch carries a bounded chunk of join results.
type JoinBatch struct {
	Rows []JoinedRow
}

// JoinSummary terminates a join stream. RevealedPairs is the size of
// the query's leakage trace sigma(q), reported for auditing.
type JoinSummary struct {
	RevealedPairs int
}

// JoinedRow is one matched pair with the sealed payloads of both sides.
type JoinedRow struct {
	RowA, RowB         int
	PayloadA, PayloadB []byte
}

// TableList answers a Describe request: the server's stored tables,
// sorted by name.
type TableList struct {
	Tables []TableInfo
}

// TableInfo summarizes one stored table. Indexed reports whether the
// table was uploaded with an SSE pre-filter index, which is what lets a
// client-side planner choose prefiltered joins against it.
// Shard/ShardCount echo the annotations of a sharded upload (zero for
// whole tables — gob-additive, like the Shard fields on UploadRequest),
// so a cluster client can verify which hash-partition a backend holds.
// NDV echoes the distinct-join-value count of the upload (0 = unknown;
// gob-additive), feeding the planner's per-value selectivity estimate.
type TableInfo struct {
	Name       string
	Rows       int
	Indexed    bool
	Shard      int
	ShardCount int
	NDV        int
}

// Conn frames gob messages over a byte stream: each message is a
// 4-byte big-endian payload length followed by a self-contained gob
// encoding. Send and Recv are not individually goroutine-safe; callers
// serialize writers and readers separately (one writer lock, one
// reader goroutine is the intended pattern).
type Conn struct {
	r *bufio.Reader
	w io.Writer
}

// NewConn wraps rw in protocol framing.
func NewConn(rw io.ReadWriter) *Conn {
	return &Conn{r: bufio.NewReader(rw), w: rw}
}

// Send writes one framed message.
func (c *Conn) Send(v any) error {
	var buf bytes.Buffer
	buf.Write([]byte{0, 0, 0, 0}) // length placeholder
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return fmt.Errorf("wire: encode: %w", err)
	}
	b := buf.Bytes()
	n := len(b) - 4
	if n > MaxFrameSize {
		return ErrFrameTooLarge
	}
	binary.BigEndian.PutUint32(b[:4], uint32(n))
	if _, err := c.w.Write(b); err != nil {
		return fmt.Errorf("wire: send: %w", err)
	}
	return nil
}

// Recv reads one framed message into v. It returns io.EOF or
// net.ErrClosed unwrapped on a clean boundary (connection ended
// between frames); a stream that ends mid-frame yields an error
// wrapping ErrTruncatedFrame AND the underlying cause, so callers can
// still classify closed-connection errors with errors.Is.
func (c *Conn) Recv(v any) error {
	var hdr [4]byte
	if n, err := io.ReadFull(c.r, hdr[:]); err != nil {
		if n == 0 && (err == io.EOF || errors.Is(err, net.ErrClosed)) {
			return err // clean boundary, not truncation
		}
		return fmt.Errorf("%w: header: %w", ErrTruncatedFrame, err)
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 || n > MaxFrameSize {
		return fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(c.r, payload); err != nil {
		return fmt.Errorf("%w: payload: %w", ErrTruncatedFrame, err)
	}
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(v); err != nil {
		return fmt.Errorf("wire: decode: %w", err)
	}
	return nil
}

// ClientHandshake performs the client side of the version handshake:
// it sends a Hello and validates the HelloAck.
func ClientHandshake(c *Conn) error {
	if err := c.Send(&Hello{Version: Version}); err != nil {
		return err
	}
	var ack HelloAck
	if err := c.Recv(&ack); err != nil {
		return fmt.Errorf("wire: handshake: %w", err)
	}
	if ack.Err != "" {
		return fmt.Errorf("wire: handshake rejected: %s", ack.Err)
	}
	if ack.Version != Version {
		return fmt.Errorf("%w: server speaks v%d, client v%d", ErrVersionMismatch, ack.Version, Version)
	}
	return nil
}

// ServerHandshake performs the server side of the version handshake.
// On a version mismatch it sends a descriptive HelloAck before
// returning ErrVersionMismatch so old clients fail loudly rather than
// hanging.
func ServerHandshake(c *Conn) error {
	var hello Hello
	if err := c.Recv(&hello); err != nil {
		return fmt.Errorf("wire: handshake: %w", err)
	}
	if hello.Version != Version {
		_ = c.Send(&HelloAck{
			Version: Version,
			Err:     fmt.Sprintf("unsupported protocol version %d (server speaks %d)", hello.Version, Version),
		})
		return fmt.Errorf("%w: client speaks v%d, server v%d", ErrVersionMismatch, hello.Version, Version)
	}
	return c.Send(&HelloAck{Version: Version})
}
