package wire

import (
	"bytes"
	"encoding/gob"
	"testing"
)

func roundTrip[T any](t *testing.T, in T, out *T) {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(in); err != nil {
		t.Fatal(err)
	}
	if err := gob.NewDecoder(&buf).Decode(out); err != nil {
		t.Fatal(err)
	}
}

func TestRequestRoundTrip(t *testing.T) {
	in := Request{
		Upload: &UploadRequest{
			Table: "T",
			Rows: []UploadRow{
				{JoinCiphertext: []byte{1, 2, 3}, Payload: []byte{4, 5}},
			},
		},
	}
	var out Request
	roundTrip(t, in, &out)
	if out.Upload == nil || out.Upload.Table != "T" || len(out.Upload.Rows) != 1 {
		t.Fatalf("round trip lost data: %+v", out)
	}
	if !bytes.Equal(out.Upload.Rows[0].JoinCiphertext, []byte{1, 2, 3}) {
		t.Fatal("ciphertext bytes differ")
	}
}

func TestJoinRequestRoundTrip(t *testing.T) {
	in := Request{Join: &JoinRequest{
		TableA: "A", TableB: "B",
		TokenA: []byte{9}, TokenB: []byte{8},
	}}
	var out Request
	roundTrip(t, in, &out)
	if out.Join == nil || out.Join.TableA != "A" || out.Join.TokenB[0] != 8 {
		t.Fatalf("round trip lost data: %+v", out)
	}
}

func TestResponseRoundTrip(t *testing.T) {
	in := Response{
		Join: &JoinResponse{
			Rows: []JoinedRow{
				{RowA: 1, RowB: 2, PayloadA: []byte("a"), PayloadB: []byte("b")},
			},
			RevealedPairs: 3,
		},
	}
	var out Response
	roundTrip(t, in, &out)
	if out.Join == nil || out.Join.RevealedPairs != 3 || out.Join.Rows[0].RowB != 2 {
		t.Fatalf("round trip lost data: %+v", out)
	}
}

func TestErrorResponse(t *testing.T) {
	in := Response{Err: "boom"}
	var out Response
	roundTrip(t, in, &out)
	if out.Err != "boom" || out.Join != nil {
		t.Fatalf("round trip lost data: %+v", out)
	}
}
