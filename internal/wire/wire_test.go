package wire

import (
	"bytes"
	"errors"
	"io"
	"net"
	"testing"
)

// pipeConn is an in-memory ReadWriter: writes go to out, reads come
// from in.
type pipeConn struct {
	in  *bytes.Buffer
	out *bytes.Buffer
}

func (p *pipeConn) Read(b []byte) (int, error)  { return p.in.Read(b) }
func (p *pipeConn) Write(b []byte) (int, error) { return p.out.Write(b) }

// loopback returns a Conn whose sends can be read back by a second
// Conn.
func loopback() (send, recv *Conn, transit *bytes.Buffer) {
	transit = &bytes.Buffer{}
	send = NewConn(&pipeConn{in: &bytes.Buffer{}, out: transit})
	recv = NewConn(&pipeConn{in: transit, out: &bytes.Buffer{}})
	return
}

func frameTrip[T any](t *testing.T, in T, out *T) {
	t.Helper()
	send, recv, _ := loopback()
	if err := send.Send(in); err != nil {
		t.Fatal(err)
	}
	if err := recv.Recv(out); err != nil {
		t.Fatal(err)
	}
}

func TestRequestRoundTrip(t *testing.T) {
	in := Request{
		ID: 7,
		Upload: &UploadRequest{
			Table: "T",
			Rows: []UploadRow{
				{JoinCiphertext: []byte{1, 2, 3}, Payload: []byte{4, 5}},
			},
		},
	}
	var out Request
	frameTrip(t, in, &out)
	if out.ID != 7 || out.Upload == nil || out.Upload.Table != "T" || len(out.Upload.Rows) != 1 {
		t.Fatalf("round trip lost data: %+v", out)
	}
	if !bytes.Equal(out.Upload.Rows[0].JoinCiphertext, []byte{1, 2, 3}) {
		t.Fatal("ciphertext bytes differ")
	}
}

func TestJoinRequestRoundTrip(t *testing.T) {
	in := Request{ID: 1, Join: &JoinRequest{
		TableA: "A", TableB: "B",
		TokenA: []byte{9}, TokenB: []byte{8},
	}}
	var out Request
	frameTrip(t, in, &out)
	if out.Join == nil || out.Join.TableA != "A" || out.Join.TokenB[0] != 8 {
		t.Fatalf("round trip lost data: %+v", out)
	}
}

func TestDescribeRoundTrip(t *testing.T) {
	in := Request{ID: 4, Describe: true}
	var out Request
	frameTrip(t, in, &out)
	if out.ID != 4 || !out.Describe {
		t.Fatalf("round trip lost data: %+v", out)
	}
	fin := Frame{ID: 4, Tables: &TableList{Tables: []TableInfo{
		{Name: "A", Rows: 3, Indexed: true},
		{Name: "B", Rows: 0, Indexed: false},
	}}}
	var fout Frame
	frameTrip(t, fin, &fout)
	if fout.Tables == nil || !fout.Terminal() {
		t.Fatalf("tables frame: %+v", fout)
	}
	got := fout.Tables.Tables
	if len(got) != 2 || got[0] != (TableInfo{Name: "A", Rows: 3, Indexed: true}) || got[1].Indexed {
		t.Fatalf("table list lost data: %+v", got)
	}
}

func TestBatchAndSummaryFrames(t *testing.T) {
	send, recv, _ := loopback()
	frames := []Frame{
		{ID: 3, Batch: &JoinBatch{Rows: []JoinedRow{
			{RowA: 1, RowB: 2, PayloadA: []byte("a"), PayloadB: []byte("b")},
		}}},
		{ID: 3, Summary: &JoinSummary{RevealedPairs: 5}},
	}
	for i := range frames {
		if err := send.Send(&frames[i]); err != nil {
			t.Fatal(err)
		}
	}
	var batch Frame
	if err := recv.Recv(&batch); err != nil {
		t.Fatal(err)
	}
	if batch.ID != 3 || batch.Batch == nil || batch.Terminal() {
		t.Fatalf("batch frame: %+v", batch)
	}
	if batch.Batch.Rows[0].RowB != 2 || !bytes.Equal(batch.Batch.Rows[0].PayloadA, []byte("a")) {
		t.Fatalf("batch rows lost data: %+v", batch.Batch.Rows)
	}
	var sum Frame
	if err := recv.Recv(&sum); err != nil {
		t.Fatal(err)
	}
	if sum.Summary == nil || sum.Summary.RevealedPairs != 5 || !sum.Terminal() {
		t.Fatalf("summary frame: %+v", sum)
	}
}

func TestErrorFrame(t *testing.T) {
	in := Frame{ID: 9, Err: "boom"}
	var out Frame
	frameTrip(t, in, &out)
	if out.ID != 9 || out.Err != "boom" || !out.Terminal() {
		t.Fatalf("round trip lost data: %+v", out)
	}
}

func TestTruncatedFrame(t *testing.T) {
	send, _, transit := loopback()
	if err := send.Send(&Frame{ID: 1, Ok: true}); err != nil {
		t.Fatal(err)
	}
	full := transit.Bytes()
	// Cut mid-payload and mid-header.
	for _, cut := range []int{len(full) - 3, 2} {
		trunc := NewConn(&pipeConn{in: bytes.NewBuffer(append([]byte{}, full[:cut]...)), out: &bytes.Buffer{}})
		var f Frame
		err := trunc.Recv(&f)
		if !errors.Is(err, ErrTruncatedFrame) {
			t.Fatalf("cut at %d: got %v, want ErrTruncatedFrame", cut, err)
		}
	}
}

func TestRecvCleanEOF(t *testing.T) {
	empty := NewConn(&pipeConn{in: &bytes.Buffer{}, out: &bytes.Buffer{}})
	var f Frame
	if err := empty.Recv(&f); err != io.EOF {
		t.Fatalf("empty stream: got %v, want io.EOF", err)
	}
}

func TestOversizedFrameRejected(t *testing.T) {
	raw := &bytes.Buffer{}
	raw.Write([]byte{0xff, 0xff, 0xff, 0xff}) // 4 GiB announced
	c := NewConn(&pipeConn{in: raw, out: &bytes.Buffer{}})
	var f Frame
	if err := c.Recv(&f); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("got %v, want ErrFrameTooLarge", err)
	}
}

func TestHandshake(t *testing.T) {
	cliSide, srvSide := net.Pipe()
	defer cliSide.Close()
	defer srvSide.Close()
	srvErr := make(chan error, 1)
	go func() { srvErr <- ServerHandshake(NewConn(srvSide)) }()
	if err := ClientHandshake(NewConn(cliSide)); err != nil {
		t.Fatal(err)
	}
	if err := <-srvErr; err != nil {
		t.Fatal(err)
	}
}

func TestHandshakeVersionMismatch(t *testing.T) {
	cliSide, srvSide := net.Pipe()
	defer cliSide.Close()
	defer srvSide.Close()

	srvErr := make(chan error, 1)
	go func() { srvErr <- ServerHandshake(NewConn(srvSide)) }()

	// A v1 (or future) client announcing the wrong version is rejected
	// with a descriptive ack, and the server reports the mismatch.
	cli := NewConn(cliSide)
	if err := cli.Send(&Hello{Version: 1}); err != nil {
		t.Fatal(err)
	}
	var ack HelloAck
	if err := cli.Recv(&ack); err != nil {
		t.Fatal(err)
	}
	if ack.Err == "" || ack.Version != Version {
		t.Fatalf("ack = %+v, want rejection naming v%d", ack, Version)
	}
	if err := <-srvErr; !errors.Is(err, ErrVersionMismatch) {
		t.Fatalf("server handshake: got %v, want ErrVersionMismatch", err)
	}
}
