package sse

import "testing"

func buildTestIndex(t *testing.T) (*Client, *Index) {
	t.Helper()
	c, err := NewClient(nil)
	if err != nil {
		t.Fatal(err)
	}
	// 5 rows, attribute 0 = color, attribute 1 = size.
	rows := [][][]byte{
		{[]byte("red"), []byte("L")},
		{[]byte("blue"), []byte("L")},
		{[]byte("red"), []byte("S")},
		{[]byte("green"), []byte("M")},
		{[]byte("red"), []byte("L")},
	}
	idx, err := c.BuildIndex(rows)
	if err != nil {
		t.Fatal(err)
	}
	return c, idx
}

func TestSearch(t *testing.T) {
	c, idx := buildTestIndex(t)
	rows, err := idx.Search(c.Tokenize(0, []byte("red")))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("red matches %v", rows)
	}
	rows, err = idx.Search(c.Tokenize(0, []byte("purple")))
	if err != nil {
		t.Fatal(err)
	}
	if rows != nil {
		t.Fatalf("absent value matched %v", rows)
	}
	// Attribute position matters: "red" as attribute 1 is absent.
	rows, err = idx.Search(c.Tokenize(1, []byte("red")))
	if err != nil {
		t.Fatal(err)
	}
	if rows != nil {
		t.Fatalf("cross-attribute match %v", rows)
	}
}

func TestSearchUnion(t *testing.T) {
	c, idx := buildTestIndex(t)
	rows, err := idx.SearchUnion([]SearchToken{
		c.Tokenize(0, []byte("red")),
		c.Tokenize(0, []byte("green")),
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 2, 3, 4}
	if len(rows) != len(want) {
		t.Fatalf("union = %v", rows)
	}
	for i := range want {
		if rows[i] != want[i] {
			t.Fatalf("union = %v, want %v", rows, want)
		}
	}
}

func TestIntersectSorted(t *testing.T) {
	got := IntersectSorted([]int{0, 2, 3, 4}, []int{1, 2, 4, 9})
	if len(got) != 2 || got[0] != 2 || got[1] != 4 {
		t.Fatalf("intersection = %v", got)
	}
	if IntersectSorted(nil, []int{1}) != nil {
		t.Fatal("empty intersection should be nil")
	}
}

// TestConjunctiveFilter mirrors engine usage: rows matching color=red
// AND size=L.
func TestConjunctiveFilter(t *testing.T) {
	c, idx := buildTestIndex(t)
	reds, err := idx.SearchUnion([]SearchToken{c.Tokenize(0, []byte("red"))})
	if err != nil {
		t.Fatal(err)
	}
	larges, err := idx.SearchUnion([]SearchToken{c.Tokenize(1, []byte("L"))})
	if err != nil {
		t.Fatal(err)
	}
	both := IntersectSorted(reds, larges)
	if len(both) != 2 || both[0] != 0 || both[1] != 4 {
		t.Fatalf("red AND L = %v", both)
	}
}

func TestForeignTokenUseless(t *testing.T) {
	_, idx := buildTestIndex(t)
	other, err := NewClient(nil)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := idx.Search(other.Tokenize(0, []byte("red")))
	if err != nil {
		t.Fatal(err)
	}
	if rows != nil {
		t.Fatal("token from a different client matched")
	}
}

func TestWrongPostingKeyDetected(t *testing.T) {
	c, idx := buildTestIndex(t)
	st := c.Tokenize(0, []byte("red"))
	st.Key = make([]byte, 32) // zero key
	if _, err := idx.Search(st); err == nil {
		t.Fatal("posting list opened with a wrong key")
	}
}

func TestIndexHidesContents(t *testing.T) {
	c, err := NewClient(nil)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := c.BuildIndex([][][]byte{{[]byte("secret-value")}})
	if err != nil {
		t.Fatal(err)
	}
	for tok, sealed := range idx.postings {
		if string(sealed) == "secret-value" || tok == "secret-value" {
			t.Fatal("plaintext visible in index")
		}
	}
}

// TestSearchUnionSortedDeduped pins the SearchUnion contract the
// engine's pre-filter depends on: IntersectSorted silently drops rows
// when its inputs are unsorted or carry duplicates, so SearchUnion must
// return every posting list union strictly ascending with no repeats —
// including when several tokens of one IN clause hit overlapping rows.
func TestSearchUnionSortedDeduped(t *testing.T) {
	c, idx := buildTestIndex(t)
	// "red" matches rows {0,2,4}, "L" (attr 1) is a different attribute;
	// use overlapping color tokens: red {0,2,4} and blue {1} and red
	// again (duplicate token) to force potential repeats.
	rows, err := idx.SearchUnion([]SearchToken{
		c.Tokenize(0, []byte("red")),
		c.Tokenize(0, []byte("blue")),
		c.Tokenize(0, []byte("red")), // duplicate token: same posting list twice
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 2, 4}
	if len(rows) != len(want) {
		t.Fatalf("union = %v, want %v", rows, want)
	}
	for i := range want {
		if rows[i] != want[i] {
			t.Fatalf("union = %v, want %v (sorted, deduped)", rows, want)
		}
	}
	for i := 1; i < len(rows); i++ {
		if rows[i] <= rows[i-1] {
			t.Fatalf("union %v is not strictly ascending", rows)
		}
	}
}
