// Package sse implements a simple searchable symmetric encryption index
// in the style of Curtmola et al. (CCS'06) — the paper's reference [10].
// Section 4.3 notes that such schemes "can be used for pre-filtering the
// rows with the attributes matching the selection criteria reducing the
// size of the tables, but they are orthogonal to our join encryption
// scheme"; this package makes that optimization available to the engine.
//
// The index maps a keyed PRF token of (attribute, value) to an
// AES-GCM-encrypted posting list of row indexes, sealed under a key
// derived from the same (attribute, value) pair. The server learns
// nothing from the index at rest; revealing a search token discloses
// exactly the set of rows whose attribute carries the searched value —
// the standard SSE access-pattern leakage, which for Secure Join is a
// strict subset of what the query's SJ.Dec results reveal anyway
// (matching rows become visible through D-value equality).
//
// Trade-off: pre-filtering reveals the selection-matching row sets
// *per attribute value* rather than per conjunctive query, so clients
// seeking the paper's exact leakage profile should skip the pre-filter;
// clients prioritizing latency use it to cut SJ.Dec work from n rows to
// the selectivity fraction. The ablation bench quantifies the saving.
package sse

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
)

// Index is the server-side searchable index of one table.
type Index struct {
	// postings maps PRF token (hex-free binary string) to the sealed
	// posting list.
	postings map[string][]byte
}

// Client holds the index key material (client side only).
type Client struct {
	tokenKey   []byte
	postingKey []byte
}

// NewClient samples fresh index keys.
func NewClient(rng io.Reader) (*Client, error) {
	if rng == nil {
		rng = rand.Reader
	}
	tk := make([]byte, 32)
	pk := make([]byte, 32)
	if _, err := io.ReadFull(rng, tk); err != nil {
		return nil, fmt.Errorf("sse: sampling token key: %w", err)
	}
	if _, err := io.ReadFull(rng, pk); err != nil {
		return nil, fmt.Errorf("sse: sampling posting key: %w", err)
	}
	return &Client{tokenKey: tk, postingKey: pk}, nil
}

// token derives the PRF token identifying (attr, value) in the index.
func (c *Client) token(attr int, value []byte) []byte {
	mac := hmac.New(sha256.New, c.tokenKey)
	var idx [4]byte
	binary.BigEndian.PutUint32(idx[:], uint32(attr))
	mac.Write(idx[:])
	mac.Write(value)
	return mac.Sum(nil)
}

// sealKey derives the AES key protecting the posting list of a token.
func (c *Client) sealKey(token []byte) []byte {
	mac := hmac.New(sha256.New, c.postingKey)
	mac.Write(token)
	return mac.Sum(nil)
}

// BuildIndex indexes a table: rows[i] lists the attribute values of row
// i (attribute index -> value).
func (c *Client) BuildIndex(rows [][][]byte) (*Index, error) {
	groups := make(map[string][]uint32)
	tokens := make(map[string][]byte)
	for rowID, attrs := range rows {
		for attr, value := range attrs {
			tok := c.token(attr, value)
			groups[string(tok)] = append(groups[string(tok)], uint32(rowID))
			tokens[string(tok)] = tok
		}
	}
	idx := &Index{postings: make(map[string][]byte, len(groups))}
	for key, rowIDs := range groups {
		pt := make([]byte, 4*len(rowIDs))
		for i, id := range rowIDs {
			binary.BigEndian.PutUint32(pt[i*4:], id)
		}
		sealed, err := sealGCM(c.sealKey(tokens[key]), pt)
		if err != nil {
			return nil, err
		}
		idx.postings[key] = sealed
	}
	return idx, nil
}

// SearchToken authorizes the server to locate the rows whose attribute
// attr equals value.
type SearchToken struct {
	Token []byte
	Key   []byte
}

// Tokenize issues a search token for one (attribute, value) pair.
func (c *Client) Tokenize(attr int, value []byte) SearchToken {
	tok := c.token(attr, value)
	return SearchToken{Token: tok, Key: c.sealKey(tok)}
}

// Search resolves a token against the index, returning the matching row
// indexes (empty when the value is absent).
func (idx *Index) Search(st SearchToken) ([]int, error) {
	sealed, ok := idx.postings[string(st.Token)]
	if !ok {
		return nil, nil
	}
	pt, err := openGCM(st.Key, sealed)
	if err != nil {
		return nil, fmt.Errorf("sse: opening posting list: %w", err)
	}
	if len(pt)%4 != 0 {
		return nil, fmt.Errorf("sse: corrupt posting list")
	}
	out := make([]int, len(pt)/4)
	for i := range out {
		out[i] = int(binary.BigEndian.Uint32(pt[i*4:]))
	}
	return out, nil
}

// SearchUnion resolves several tokens (an IN clause) and returns the
// union of the matching rows, sorted ascending.
func (idx *Index) SearchUnion(sts []SearchToken) ([]int, error) {
	seen := make(map[int]bool)
	for _, st := range sts {
		rows, err := idx.Search(st)
		if err != nil {
			return nil, err
		}
		for _, r := range rows {
			seen[r] = true
		}
	}
	out := make([]int, 0, len(seen))
	for r := range seen {
		out = append(out, r)
	}
	sortInts(out)
	return out, nil
}

// IntersectSorted intersects two ascending row-id lists — used to
// combine pre-filters on different attributes (conjunction).
func IntersectSorted(a, b []int) []int {
	var out []int
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

func sortInts(xs []int) {
	// Insertion sort: posting lists are selectivity-sized; avoid pulling
	// in the sort package's interface machinery on the hot path.
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

func sealGCM(key, pt []byte) ([]byte, error) {
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return nil, err
	}
	nonce := make([]byte, gcm.NonceSize())
	if _, err := io.ReadFull(rand.Reader, nonce); err != nil {
		return nil, err
	}
	return gcm.Seal(nonce, nonce, pt, nil), nil
}

func openGCM(key, ct []byte) ([]byte, error) {
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return nil, err
	}
	if len(ct) < gcm.NonceSize() {
		return nil, fmt.Errorf("sse: ciphertext shorter than nonce")
	}
	nonce, body := ct[:gcm.NonceSize()], ct[gcm.NonceSize():]
	return gcm.Open(nil, nonce, body, nil)
}
