package sse

import "fmt"

// Key persistence for the index client.

// MarshalKeys serializes the client's key material (64 bytes: token key
// followed by posting key). The output is secret.
func (c *Client) MarshalKeys() ([]byte, error) {
	out := make([]byte, 0, 64)
	out = append(out, c.tokenKey...)
	out = append(out, c.postingKey...)
	return out, nil
}

// LoadClientKeys reconstructs a client from MarshalKeys output.
func LoadClientKeys(data []byte) (*Client, error) {
	if len(data) != 64 {
		return nil, fmt.Errorf("sse: key encoding has %d bytes, want 64", len(data))
	}
	return &Client{
		tokenKey:   append([]byte(nil), data[:32]...),
		postingKey: append([]byte(nil), data[32:]...),
	}, nil
}
