package sse

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// Wire encodings for the SSE pre-filter: the Index (uploaded alongside
// a table) and per-attribute search-token lists (carried by prefiltered
// join requests). Both are counted sequences of length-prefixed byte
// strings, sorted so the encodings are deterministic.

// MarshalBinary encodes the index.
func (idx *Index) MarshalBinary() ([]byte, error) {
	keys := make([]string, 0, len(idx.postings))
	for k := range idx.postings {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	var out []byte
	var n [4]byte
	binary.BigEndian.PutUint32(n[:], uint32(len(keys)))
	out = append(out, n[:]...)
	for _, k := range keys {
		v := idx.postings[k]
		binary.BigEndian.PutUint32(n[:], uint32(len(k)))
		out = append(out, n[:]...)
		out = append(out, k...)
		binary.BigEndian.PutUint32(n[:], uint32(len(v)))
		out = append(out, n[:]...)
		out = append(out, v...)
	}
	return out, nil
}

// UnmarshalBinary decodes an index produced by MarshalBinary.
func (idx *Index) UnmarshalBinary(data []byte) error {
	readUint := func() (uint32, error) {
		if len(data) < 4 {
			return 0, fmt.Errorf("sse: truncated index encoding")
		}
		v := binary.BigEndian.Uint32(data)
		data = data[4:]
		return v, nil
	}
	readBytes := func(n uint32) ([]byte, error) {
		if uint32(len(data)) < n {
			return nil, fmt.Errorf("sse: truncated index encoding")
		}
		b := data[:n]
		data = data[n:]
		return b, nil
	}

	count, err := readUint()
	if err != nil {
		return err
	}
	postings := make(map[string][]byte, count)
	for i := uint32(0); i < count; i++ {
		klen, err := readUint()
		if err != nil {
			return err
		}
		k, err := readBytes(klen)
		if err != nil {
			return err
		}
		vlen, err := readUint()
		if err != nil {
			return err
		}
		v, err := readBytes(vlen)
		if err != nil {
			return err
		}
		postings[string(k)] = append([]byte(nil), v...)
	}
	if len(data) != 0 {
		return fmt.Errorf("sse: %d trailing bytes in index encoding", len(data))
	}
	idx.postings = postings
	return nil
}

// MarshalTokenMap encodes one table's prefilter tokens — for each
// restricted attribute, the search tokens of its IN-clause values —
// for transport inside a join request. Attributes are sorted so the
// encoding is deterministic.
func MarshalTokenMap(tokens map[int][]SearchToken) ([]byte, error) {
	attrs := make([]int, 0, len(tokens))
	for a := range tokens {
		if a < 0 {
			return nil, fmt.Errorf("sse: negative attribute %d in token map", a)
		}
		attrs = append(attrs, a)
	}
	sort.Ints(attrs)

	var out []byte
	var n [4]byte
	putUint := func(v uint32) {
		binary.BigEndian.PutUint32(n[:], v)
		out = append(out, n[:]...)
	}
	putBytes := func(b []byte) {
		putUint(uint32(len(b)))
		out = append(out, b...)
	}
	putUint(uint32(len(attrs)))
	for _, a := range attrs {
		putUint(uint32(a))
		putUint(uint32(len(tokens[a])))
		for _, st := range tokens[a] {
			putBytes(st.Token)
			putBytes(st.Key)
		}
	}
	return out, nil
}

// UnmarshalTokenMap decodes MarshalTokenMap output.
func UnmarshalTokenMap(data []byte) (map[int][]SearchToken, error) {
	readUint := func() (uint32, error) {
		if len(data) < 4 {
			return 0, fmt.Errorf("sse: truncated token map encoding")
		}
		v := binary.BigEndian.Uint32(data)
		data = data[4:]
		return v, nil
	}
	readBytes := func() ([]byte, error) {
		n, err := readUint()
		if err != nil {
			return nil, err
		}
		if uint32(len(data)) < n {
			return nil, fmt.Errorf("sse: truncated token map encoding")
		}
		b := append([]byte(nil), data[:n]...)
		data = data[n:]
		return b, nil
	}

	nattrs, err := readUint()
	if err != nil {
		return nil, err
	}
	out := make(map[int][]SearchToken, nattrs)
	for i := uint32(0); i < nattrs; i++ {
		attr, err := readUint()
		if err != nil {
			return nil, err
		}
		ntoks, err := readUint()
		if err != nil {
			return nil, err
		}
		if _, dup := out[int(attr)]; dup {
			return nil, fmt.Errorf("sse: duplicate attribute %d in token map", attr)
		}
		// Each token costs at least 8 encoded bytes, so the remaining
		// input bounds the preallocation against a hostile count.
		capHint := ntoks
		if max := uint32(len(data) / 8); capHint > max {
			capHint = max
		}
		toks := make([]SearchToken, 0, capHint)
		for j := uint32(0); j < ntoks; j++ {
			tok, err := readBytes()
			if err != nil {
				return nil, err
			}
			key, err := readBytes()
			if err != nil {
				return nil, err
			}
			toks = append(toks, SearchToken{Token: tok, Key: key})
		}
		out[int(attr)] = toks
	}
	if len(data) != 0 {
		return nil, fmt.Errorf("sse: %d trailing bytes in token map encoding", len(data))
	}
	return out, nil
}
