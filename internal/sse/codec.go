package sse

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// Wire encoding of an Index: a count followed by length-prefixed
// (token, sealed posting list) pairs, sorted by token so the encoding
// is deterministic.

// MarshalBinary encodes the index.
func (idx *Index) MarshalBinary() ([]byte, error) {
	keys := make([]string, 0, len(idx.postings))
	for k := range idx.postings {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	var out []byte
	var n [4]byte
	binary.BigEndian.PutUint32(n[:], uint32(len(keys)))
	out = append(out, n[:]...)
	for _, k := range keys {
		v := idx.postings[k]
		binary.BigEndian.PutUint32(n[:], uint32(len(k)))
		out = append(out, n[:]...)
		out = append(out, k...)
		binary.BigEndian.PutUint32(n[:], uint32(len(v)))
		out = append(out, n[:]...)
		out = append(out, v...)
	}
	return out, nil
}

// UnmarshalBinary decodes an index produced by MarshalBinary.
func (idx *Index) UnmarshalBinary(data []byte) error {
	readUint := func() (uint32, error) {
		if len(data) < 4 {
			return 0, fmt.Errorf("sse: truncated index encoding")
		}
		v := binary.BigEndian.Uint32(data)
		data = data[4:]
		return v, nil
	}
	readBytes := func(n uint32) ([]byte, error) {
		if uint32(len(data)) < n {
			return nil, fmt.Errorf("sse: truncated index encoding")
		}
		b := data[:n]
		data = data[n:]
		return b, nil
	}

	count, err := readUint()
	if err != nil {
		return err
	}
	postings := make(map[string][]byte, count)
	for i := uint32(0); i < count; i++ {
		klen, err := readUint()
		if err != nil {
			return err
		}
		k, err := readBytes(klen)
		if err != nil {
			return err
		}
		vlen, err := readUint()
		if err != nil {
			return err
		}
		v, err := readBytes(vlen)
		if err != nil {
			return err
		}
		postings[string(k)] = append([]byte(nil), v...)
	}
	if len(data) != 0 {
		return fmt.Errorf("sse: %d trailing bytes in index encoding", len(data))
	}
	idx.postings = postings
	return nil
}
