package sse

import (
	"bytes"
	"testing"
)

func TestIndexCodecRoundTrip(t *testing.T) {
	c, idx := buildTestIndex(t)
	data, err := idx.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var idx2 Index
	if err := idx2.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	// The reloaded index must answer searches identically.
	for _, value := range []string{"red", "blue", "green", "absent"} {
		st := c.Tokenize(0, []byte(value))
		a, err := idx.Search(st)
		if err != nil {
			t.Fatal(err)
		}
		b, err := idx2.Search(st)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("value %q: %v vs %v", value, a, b)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("value %q: %v vs %v", value, a, b)
			}
		}
	}

	// Deterministic encoding.
	data2, err := idx.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Fatal("encoding not deterministic")
	}
}

func TestIndexCodecRejectsMalformed(t *testing.T) {
	var idx Index
	if err := idx.UnmarshalBinary([]byte{0, 0}); err == nil {
		t.Fatal("truncated header accepted")
	}
	if err := idx.UnmarshalBinary([]byte{0, 0, 0, 1, 0, 0, 0, 5, 'a'}); err == nil {
		t.Fatal("truncated key accepted")
	}
	// Trailing garbage.
	good, _ := (&Index{postings: map[string][]byte{"k": {1}}}).MarshalBinary()
	if err := idx.UnmarshalBinary(append(good, 0xff)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func TestTokenMapCodecRoundTrip(t *testing.T) {
	c, _ := buildTestIndex(t)
	m := map[int][]SearchToken{
		0: {c.Tokenize(0, []byte("red")), c.Tokenize(0, []byte("blue"))},
		1: {c.Tokenize(1, []byte("L"))},
		7: {},
	}
	data, err := MarshalTokenMap(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalTokenMap(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(m) {
		t.Fatalf("decoded %d attributes, want %d", len(got), len(m))
	}
	for attr, toks := range m {
		g := got[attr]
		if len(g) != len(toks) {
			t.Fatalf("attr %d: %d tokens, want %d", attr, len(g), len(toks))
		}
		for i := range toks {
			if !bytes.Equal(g[i].Token, toks[i].Token) || !bytes.Equal(g[i].Key, toks[i].Key) {
				t.Fatalf("attr %d token %d differs after round trip", attr, i)
			}
		}
	}
	// Deterministic encoding.
	data2, err := MarshalTokenMap(m)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Fatal("token map encoding is not deterministic")
	}
	// Empty map round-trips to empty map.
	none, err := MarshalTokenMap(nil)
	if err != nil {
		t.Fatal(err)
	}
	if m2, err := UnmarshalTokenMap(none); err != nil || len(m2) != 0 {
		t.Fatalf("empty map round trip: %v, %v", m2, err)
	}
}

func TestTokenMapCodecRejectsCorrupt(t *testing.T) {
	c, _ := buildTestIndex(t)
	data, err := MarshalTokenMap(map[int][]SearchToken{0: {c.Tokenize(0, []byte("x"))}})
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range [][]byte{
		data[:3],                              // truncated header
		data[:len(data)-2],                    // truncated token
		append(data[:len(data):len(data)], 0), // trailing byte
	} {
		if _, err := UnmarshalTokenMap(bad); err == nil {
			t.Fatalf("corrupt encoding of %d bytes accepted", len(bad))
		}
	}
	if _, err := MarshalTokenMap(map[int][]SearchToken{-1: nil}); err == nil {
		t.Fatal("negative attribute accepted")
	}
}
