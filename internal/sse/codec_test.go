package sse

import (
	"bytes"
	"testing"
)

func TestIndexCodecRoundTrip(t *testing.T) {
	c, idx := buildTestIndex(t)
	data, err := idx.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var idx2 Index
	if err := idx2.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	// The reloaded index must answer searches identically.
	for _, value := range []string{"red", "blue", "green", "absent"} {
		st := c.Tokenize(0, []byte(value))
		a, err := idx.Search(st)
		if err != nil {
			t.Fatal(err)
		}
		b, err := idx2.Search(st)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("value %q: %v vs %v", value, a, b)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("value %q: %v vs %v", value, a, b)
			}
		}
	}

	// Deterministic encoding.
	data2, err := idx.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Fatal("encoding not deterministic")
	}
}

func TestIndexCodecRejectsMalformed(t *testing.T) {
	var idx Index
	if err := idx.UnmarshalBinary([]byte{0, 0}); err == nil {
		t.Fatal("truncated header accepted")
	}
	if err := idx.UnmarshalBinary([]byte{0, 0, 0, 1, 0, 0, 0, 5, 'a'}); err == nil {
		t.Fatal("truncated key accepted")
	}
	// Trailing garbage.
	good, _ := (&Index{postings: map[string][]byte{"k": {1}}}).MarshalBinary()
	if err := idx.UnmarshalBinary(append(good, 0xff)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}
