package bench

import (
	"testing"

	"repro/internal/tpch"
)

func TestMeasureCryptoOps(t *testing.T) {
	r, err := MeasureCryptoOps(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.INClauseSize != 2 {
		t.Fatalf("IN clause size = %d", r.INClauseSize)
	}
	if r.TokenGen <= 0 || r.Encrypt <= 0 || r.Decrypt <= 0 {
		t.Fatalf("non-positive timings: %+v", r)
	}
	// The paper's Figure 2 ordering: decryption dominates encryption.
	if r.Decrypt < r.Encrypt {
		t.Errorf("expected Decrypt >= Encrypt, got %v < %v", r.Decrypt, r.Encrypt)
	}
}

func TestWorkloadJoinCounts(t *testing.T) {
	w, err := BuildWorkload(0.0001, 1, 9)
	if err != nil {
		t.Fatal(err)
	}
	// Secure Join and the Hahn baseline must agree on the number of
	// matches for the same selection (both compute the same plaintext
	// join).
	res, err := w.RunServerJoin(Selection(tpch.Sel12_5, 1))
	if err != nil {
		t.Fatal(err)
	}
	hw, err := BuildHahnWorkload(0.0001, 9)
	if err != nil {
		t.Fatal(err)
	}
	hres := hw.RunServerJoin(tpch.Sel12_5)
	if res.Matches != hres.Matches {
		t.Fatalf("secure join found %d matches, Hahn %d", res.Matches, hres.Matches)
	}

	// Nested-loop ablation agrees with the hash join.
	nl, err := w.RunServerJoinNestedLoop(Selection(tpch.Sel12_5, 1))
	if err != nil {
		t.Fatal(err)
	}
	if nl.Matches != res.Matches {
		t.Fatalf("nested loop found %d matches, hash join %d", nl.Matches, res.Matches)
	}
}

func TestSelectionPadding(t *testing.T) {
	sel := Selection(tpch.Sel100, 5)
	values := sel[0]
	if len(values) != 5 {
		t.Fatalf("IN clause size = %d, want 5", len(values))
	}
	if string(values[0]) != tpch.Sel100 {
		t.Fatalf("first value = %q", values[0])
	}
	// Padding values must be distinct from each other and the label.
	seen := map[string]bool{}
	for _, v := range values {
		if seen[string(v)] {
			t.Fatalf("duplicate IN value %q", v)
		}
		seen[string(v)] = true
	}
}
