// Package bench is the shared harness behind cmd/sjbench and the
// repository's testing.B benchmarks. It builds the paper's workloads
// (TPC-H Orders x Customers with the selectivity column), runs the
// client- and server-side phases of Secure Join separately, and returns
// the series that Figures 2, 3 and 4 and the Section 6.5 comparison
// plot/report.
//
// Absolute numbers differ from the paper (pure-Go big-integer pairing vs
// the authors' optimized C library), so EXPERIMENTS.md compares shapes:
// which operation dominates, linearity in table size and IN-clause size,
// slope ordering across selectivities, and hash-join vs nested-loop
// scaling.
package bench

import (
	"fmt"
	"time"

	"repro/internal/baseline"
	"repro/internal/securejoin"
	"repro/internal/sse"
	"repro/internal/tpch"
)

// CryptoBenchResult is one row of Figure 2: per-row token generation,
// encryption and decryption latency for a given IN-clause size.
type CryptoBenchResult struct {
	INClauseSize int
	TokenGen     time.Duration
	Encrypt      time.Duration
	Decrypt      time.Duration
}

// MeasureCryptoOps reproduces Figure 2 for one IN-clause size t: the
// average latencies of SJ.TokenGen, SJ.Enc and SJ.Dec for a single
// Customers row, averaged over reps repetitions.
func MeasureCryptoOps(t, reps int) (CryptoBenchResult, error) {
	scheme, err := securejoin.Setup(securejoin.Params{M: 1, T: t}, nil)
	if err != nil {
		return CryptoBenchResult{}, err
	}
	ds := tpch.Generate(0.0001, 1)
	c := ds.Customers[0]
	row := securejoin.Row{
		JoinValue: tpch.CustomerJoinValue(c),
		Attrs:     [][]byte{[]byte(c.Selectivity)},
	}
	inValues := make([][]byte, t)
	for i := range inValues {
		inValues[i] = []byte(fmt.Sprintf("sel-value-%d", i))
	}
	sel := securejoin.Selection{0: inValues}

	res := CryptoBenchResult{INClauseSize: t}

	for i := 0; i < reps; i++ {
		start := time.Now()
		q, err := scheme.NewQuery(sel, sel)
		if err != nil {
			return res, err
		}
		// NewQuery issues two tokens; charge one.
		res.TokenGen += time.Since(start) / 2

		start = time.Now()
		ct, err := scheme.Encrypt(row)
		if err != nil {
			return res, err
		}
		res.Encrypt += time.Since(start)

		start = time.Now()
		if _, err := securejoin.Decrypt(q.TokenA, ct); err != nil {
			return res, err
		}
		res.Decrypt += time.Since(start)
	}
	res.TokenGen /= time.Duration(reps)
	res.Encrypt /= time.Duration(reps)
	res.Decrypt /= time.Duration(reps)
	return res, nil
}

// Workload is an encrypted TPC-H Orders x Customers instance ready for
// server-side measurements. Alongside the Secure Join ciphertexts it
// carries the SSE pre-filter indexes of Section 4.3: the paper's
// Figures 3 and 4 report runtimes proportional to selectivity * n,
// which implies SJ.Dec runs only over the selection-matching rows —
// exactly what the pre-filter provides. RunServerJoin reproduces that
// setup; RunServerJoinFullScan is the leakage-optimal full-table scan.
type Workload struct {
	Scheme    *securejoin.Scheme
	Dataset   *tpch.Dataset
	Customers []*securejoin.RowCiphertext
	Orders    []*securejoin.RowCiphertext

	sseClient *sse.Client
	idxC      *sse.Index
	idxO      *sse.Index
}

// BuildWorkload generates and encrypts a TPC-H instance at the given
// scale factor with IN-clause bound t. The single filterable attribute
// is the selectivity column, as in Section 6.1.
func BuildWorkload(scaleFactor float64, t int, seed int64) (*Workload, error) {
	scheme, err := securejoin.Setup(securejoin.Params{M: 1, T: t}, nil)
	if err != nil {
		return nil, err
	}
	ds := tpch.Generate(scaleFactor, seed)

	customers := make([]securejoin.Row, len(ds.Customers))
	attrsC := make([][][]byte, len(ds.Customers))
	for i, c := range ds.Customers {
		customers[i] = securejoin.Row{
			JoinValue: tpch.CustomerJoinValue(c),
			Attrs:     [][]byte{[]byte(c.Selectivity)},
		}
		attrsC[i] = customers[i].Attrs
	}
	orders := make([]securejoin.Row, len(ds.Orders))
	attrsO := make([][][]byte, len(ds.Orders))
	for i, o := range ds.Orders {
		orders[i] = securejoin.Row{
			JoinValue: tpch.OrderJoinValue(o),
			Attrs:     [][]byte{[]byte(o.Selectivity)},
		}
		attrsO[i] = orders[i].Attrs
	}

	ctC, err := scheme.EncryptTable(customers)
	if err != nil {
		return nil, err
	}
	ctO, err := scheme.EncryptTable(orders)
	if err != nil {
		return nil, err
	}

	sseClient, err := sse.NewClient(nil)
	if err != nil {
		return nil, err
	}
	idxC, err := sseClient.BuildIndex(attrsC)
	if err != nil {
		return nil, err
	}
	idxO, err := sseClient.BuildIndex(attrsO)
	if err != nil {
		return nil, err
	}
	return &Workload{
		Scheme: scheme, Dataset: ds,
		Customers: ctC, Orders: ctO,
		sseClient: sseClient, idxC: idxC, idxO: idxO,
	}, nil
}

// prefilter resolves the candidate rows of one table for a selection.
func (w *Workload) prefilter(idx *sse.Index, sel securejoin.Selection) ([]int, error) {
	toks := make([]sse.SearchToken, 0, len(sel[0]))
	for _, v := range sel[0] {
		toks = append(toks, w.sseClient.Tokenize(0, v))
	}
	return idx.SearchUnion(toks)
}

func subset(cts []*securejoin.RowCiphertext, rows []int) []*securejoin.RowCiphertext {
	out := make([]*securejoin.RowCiphertext, len(rows))
	for i, r := range rows {
		out[i] = cts[r]
	}
	return out
}

// Selection returns the benchmark selection predicate for one
// selectivity label, padded with synthetic values to IN-clause size
// inSize (Figure 4 grows the IN clause while keeping the matching row
// set fixed to one selectivity class).
func Selection(label string, inSize int) securejoin.Selection {
	values := make([][]byte, 0, inSize)
	values = append(values, []byte(label))
	for len(values) < inSize {
		values = append(values, []byte(fmt.Sprintf("filler-%d", len(values))))
	}
	return securejoin.Selection{0: values}
}

// JoinResult is one server-side join measurement.
type JoinResult struct {
	ServerTime time.Duration
	Matches    int
}

// RunServerJoin measures the server-side cost of one query in the
// paper's evaluation setup: pre-filter both tables to the
// selection-matching rows, run SJ.Dec over the candidates and SJ.Match
// as a hash join. Token generation (client side) is excluded. This is
// the configuration whose runtime grows as selectivity * n, matching
// the slope ordering of Figures 3 and 4.
func (w *Workload) RunServerJoin(sel securejoin.Selection) (JoinResult, error) {
	q, err := w.Scheme.NewQuery(sel, sel)
	if err != nil {
		return JoinResult{}, err
	}
	start := time.Now()
	candC, err := w.prefilter(w.idxC, sel)
	if err != nil {
		return JoinResult{}, err
	}
	candO, err := w.prefilter(w.idxO, sel)
	if err != nil {
		return JoinResult{}, err
	}
	dc, err := securejoin.DecryptTable(q.TokenA, subset(w.Customers, candC))
	if err != nil {
		return JoinResult{}, err
	}
	do, err := securejoin.DecryptTable(q.TokenB, subset(w.Orders, candO))
	if err != nil {
		return JoinResult{}, err
	}
	pairs := securejoin.HashJoin(dc, do)
	return JoinResult{ServerTime: time.Since(start), Matches: len(pairs)}, nil
}

// RunServerJoinParallel is RunServerJoin with SJ.Dec spread over the
// given number of workers — the multi-core deployment Section 6.5 notes
// the scheme supports trivially (0 = GOMAXPROCS).
func (w *Workload) RunServerJoinParallel(sel securejoin.Selection, workers int) (JoinResult, error) {
	q, err := w.Scheme.NewQuery(sel, sel)
	if err != nil {
		return JoinResult{}, err
	}
	start := time.Now()
	candC, err := w.prefilter(w.idxC, sel)
	if err != nil {
		return JoinResult{}, err
	}
	candO, err := w.prefilter(w.idxO, sel)
	if err != nil {
		return JoinResult{}, err
	}
	dc, err := securejoin.DecryptTableParallel(q.TokenA, subset(w.Customers, candC), workers)
	if err != nil {
		return JoinResult{}, err
	}
	do, err := securejoin.DecryptTableParallel(q.TokenB, subset(w.Orders, candO), workers)
	if err != nil {
		return JoinResult{}, err
	}
	pairs := securejoin.HashJoin(dc, do)
	return JoinResult{ServerTime: time.Since(start), Matches: len(pairs)}, nil
}

// RunServerJoinFullScan measures the leakage-optimal configuration
// without the SSE pre-filter: SJ.Dec over every row of both tables.
// Its runtime is independent of selectivity — the ablation that shows
// what the pre-filter buys.
func (w *Workload) RunServerJoinFullScan(sel securejoin.Selection) (JoinResult, error) {
	q, err := w.Scheme.NewQuery(sel, sel)
	if err != nil {
		return JoinResult{}, err
	}
	start := time.Now()
	dc, err := securejoin.DecryptTable(q.TokenA, w.Customers)
	if err != nil {
		return JoinResult{}, err
	}
	do, err := securejoin.DecryptTable(q.TokenB, w.Orders)
	if err != nil {
		return JoinResult{}, err
	}
	pairs := securejoin.HashJoin(dc, do)
	return JoinResult{ServerTime: time.Since(start), Matches: len(pairs)}, nil
}

// RunServerJoinNestedLoop is the ablation variant using the O(n^2)
// nested-loop SJ.Match over the same pre-filtered candidates.
func (w *Workload) RunServerJoinNestedLoop(sel securejoin.Selection) (JoinResult, error) {
	q, err := w.Scheme.NewQuery(sel, sel)
	if err != nil {
		return JoinResult{}, err
	}
	start := time.Now()
	candC, err := w.prefilter(w.idxC, sel)
	if err != nil {
		return JoinResult{}, err
	}
	candO, err := w.prefilter(w.idxO, sel)
	if err != nil {
		return JoinResult{}, err
	}
	dc, err := securejoin.DecryptTable(q.TokenA, subset(w.Customers, candC))
	if err != nil {
		return JoinResult{}, err
	}
	do, err := securejoin.DecryptTable(q.TokenB, subset(w.Orders, candO))
	if err != nil {
		return JoinResult{}, err
	}
	pairs := securejoin.NestedLoopJoin(dc, do)
	return JoinResult{ServerTime: time.Since(start), Matches: len(pairs)}, nil
}

// HahnWorkload is the comparison workload for the Hahn et al. baseline.
type HahnWorkload struct {
	Scheme    *baseline.HahnScheme
	Dataset   *tpch.Dataset
	Customers *baseline.ServerState
	Orders    *baseline.ServerState
}

// BuildHahnWorkload encrypts the same TPC-H instance under the Hahn
// et al. baseline.
func BuildHahnWorkload(scaleFactor float64, seed int64) (*HahnWorkload, error) {
	scheme, err := baseline.NewHahnScheme(nil)
	if err != nil {
		return nil, err
	}
	ds := tpch.Generate(scaleFactor, seed)

	joinC := make([][]byte, len(ds.Customers))
	attrC := make([][]byte, len(ds.Customers))
	for i, c := range ds.Customers {
		joinC[i] = tpch.CustomerJoinValue(c)
		attrC[i] = []byte(c.Selectivity)
	}
	rowsC, err := scheme.EncryptTable(joinC, attrC)
	if err != nil {
		return nil, err
	}

	joinO := make([][]byte, len(ds.Orders))
	attrO := make([][]byte, len(ds.Orders))
	for i, o := range ds.Orders {
		joinO[i] = tpch.OrderJoinValue(o)
		attrO[i] = []byte(o.Selectivity)
	}
	rowsO, err := scheme.EncryptTable(joinO, attrO)
	if err != nil {
		return nil, err
	}

	return &HahnWorkload{
		Scheme:    scheme,
		Dataset:   ds,
		Customers: baseline.NewServerState(rowsC),
		Orders:    baseline.NewServerState(rowsO),
	}, nil
}

// RunServerJoin measures the Hahn baseline's server cost: unwrap all
// selection-matching rows, then nested-loop join the unwrapped tags.
func (w *HahnWorkload) RunServerJoin(label string) JoinResult {
	tok := w.Scheme.Token([][]byte{[]byte(label)})
	start := time.Now()
	w.Customers.Unwrap(tok)
	w.Orders.Unwrap(tok)
	pairs := baseline.NestedLoopJoin(w.Customers, w.Orders)
	return JoinResult{ServerTime: time.Since(start), Matches: len(pairs)}
}
