package sql

import "repro/internal/metrics"

// sqlMetrics counts what the planner decides — how many plans compile,
// how many pairwise join steps they carry, and how often the
// statistics-driven prefilter heuristic picks SSE pre-filtering over a
// full scan per side. All fields are nil-safe no-ops until Instrument
// is called, so planning costs nothing extra by default.
type sqlMetrics struct {
	plans     *metrics.Counter
	steps     *metrics.Counter
	decisions *metrics.CounterVec // by decision: "prefilter" | "scan"
	// Plan-cache counters: hits are Compile calls served from the
	// cache, misses ran the planner (and were then cached).
	planCacheHits   *metrics.Counter
	planCacheMisses *metrics.Counter
}

// Instrument registers the planner's metrics with reg and starts
// recording. Pass the same registry the serving layer scrapes (e.g.
// server.Registry()) so plan decisions land next to execution metrics.
func (c *Catalog) Instrument(reg *metrics.Registry) {
	c.met = sqlMetrics{
		plans:           metrics.NewCounter(reg, "sj_sql_plans_total", "join plans compiled"),
		steps:           metrics.NewCounter(reg, "sj_sql_plan_steps_total", "pairwise join steps across compiled plans"),
		decisions:       metrics.NewCounterVec(reg, "sj_sql_prefilter_decisions_total", "per-side planner decisions between SSE prefilter and full scan", "decision"),
		planCacheHits:   metrics.NewCounter(reg, "sj_sql_plan_cache_hits_total", "Compile calls served from the plan cache"),
		planCacheMisses: metrics.NewCounter(reg, "sj_sql_plan_cache_misses_total", "Compile calls that ran the planner"),
	}
}

// record counts one successfully compiled plan. sides holds one entry
// per FROM table, so each table's prefilter decision counts exactly
// once however the join order stitched it in.
func (m *sqlMetrics) record(plan *Plan, sides []*SidePlan) {
	m.plans.Inc()
	m.steps.Add(uint64(len(plan.Steps)))
	for _, sp := range sides {
		if sp.Prefilter {
			m.decisions.With("prefilter").Inc()
		} else {
			m.decisions.With("scan").Inc()
		}
	}
}
