package sql

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/metrics"
)

func cacheCatalog(t *testing.T) *Catalog {
	t.Helper()
	cat, err := NewCatalog(
		TableSchema{Name: "Teams", JoinColumn: "Key", Attrs: map[string]int{"Name": 0}, Indexed: true, RowCount: 30},
		TableSchema{Name: "Employees", JoinColumn: "Team", Attrs: map[string]int{"Role": 0}, Indexed: true, RowCount: 400},
	)
	if err != nil {
		t.Fatal(err)
	}
	return cat
}

const cacheQuery = `SELECT * FROM Teams JOIN Employees ON Teams.Key = Employees.Team WHERE Teams.Name = 'Web Application'`

// TestPlanCacheHit pins the memoization contract: an identical second
// Compile returns an equivalent plan flagged Cached, without re-running
// the planner.
func TestPlanCacheHit(t *testing.T) {
	cat := cacheCatalog(t)
	reg := metrics.NewRegistry()
	cat.Instrument(reg)

	cold, err := cat.Compile(cacheQuery)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Cached {
		t.Fatal("first compile reported a cache hit")
	}
	warm, err := cat.Compile(cacheQuery)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Cached {
		t.Fatal("second compile missed the plan cache")
	}
	// Everything but the Cached flag must match the fresh compile.
	cmp := *warm
	cmp.Cached = false
	if !reflect.DeepEqual(&cmp, cold) {
		t.Fatalf("cached plan diverges from fresh compile:\n%s\nvs\n%s", warm.Describe(), cold.Describe())
	}
	hits := reg.Get("sj_sql_plan_cache_hits_total").(*metrics.Counter)
	misses := reg.Get("sj_sql_plan_cache_misses_total").(*metrics.Counter)
	if hits.Value() != 1 || misses.Value() != 1 {
		t.Fatalf("plan cache counters: hits=%d misses=%d, want 1/1", hits.Value(), misses.Value())
	}
	// The planner's own counters must count the one real compile only.
	if plans := reg.Get("sj_sql_plans_total").(*metrics.Counter); plans.Value() != 1 {
		t.Fatalf("sj_sql_plans_total = %d after one miss and one hit", plans.Value())
	}
}

// TestPlanCacheNormalization checks the canonical key: case,
// whitespace and an EXPLAIN prefix must all land in the same slot, with
// the Explain flag restored per statement.
func TestPlanCacheNormalization(t *testing.T) {
	cat := cacheCatalog(t)
	if _, err := cat.Compile(cacheQuery); err != nil {
		t.Fatal(err)
	}
	variants := []string{
		`select * from teams join employees on teams.key = employees.team where teams.name = 'Web Application'`,
		"SELECT  *  FROM Teams  JOIN Employees ON Teams.Key = Employees.Team\nWHERE Teams.Name = 'Web Application'",
		`EXPLAIN ` + cacheQuery,
	}
	for _, v := range variants {
		p, err := cat.Compile(v)
		if err != nil {
			t.Fatal(err)
		}
		if !p.Cached {
			t.Fatalf("variant missed the cache: %q", v)
		}
	}
	explained, err := cat.Compile(`EXPLAIN ` + cacheQuery)
	if err != nil {
		t.Fatal(err)
	}
	if !explained.Explain {
		t.Fatal("cache hit dropped the EXPLAIN flag")
	}
	plain, err := cat.Compile(cacheQuery)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Explain {
		t.Fatal("cache hit leaked the EXPLAIN flag onto a bare statement")
	}
	// Predicate values stay case-sensitive: a different literal is a
	// different plan.
	other, err := cat.Compile(strings.Replace(cacheQuery, "Web Application", "web application", 1))
	if err != nil {
		t.Fatal(err)
	}
	if other.Cached {
		t.Fatal("differing predicate value hit the cache")
	}
}

// TestPlanCacheSelectSegment pins that the SELECT list is part of the
// canonical key: a key-only projection and SELECT * are different
// plans, while case and ordering of the same list coalesce.
func TestPlanCacheSelectSegment(t *testing.T) {
	cat := cacheCatalog(t)
	if _, err := cat.Compile(cacheQuery); err != nil {
		t.Fatal(err)
	}
	keyOnly := strings.Replace(cacheQuery, "SELECT *", "SELECT Teams.Key, Employees.Team", 1)
	p, err := cat.Compile(keyOnly)
	if err != nil {
		t.Fatal(err)
	}
	if p.Cached {
		t.Fatal("key-only projection hit the SELECT * cache slot")
	}
	if !p.SideA.SkipPayload || !p.SideB.SkipPayload {
		t.Fatalf("key-only projection kept payloads: %v/%v", p.SideA.SkipPayload, p.SideB.SkipPayload)
	}
	// Same list, different case: one slot.
	if p, err = cat.Compile(strings.Replace(cacheQuery, "SELECT *", "select TEAMS.key, employees.TEAM", 1)); err != nil {
		t.Fatal(err)
	}
	if !p.Cached {
		t.Fatal("case variant of the SELECT list missed the cache")
	}
	// The original SELECT * slot is still warm and still ships payloads.
	if p, err = cat.Compile(cacheQuery); err != nil {
		t.Fatal(err)
	}
	if !p.Cached || p.SideA.SkipPayload || p.SideB.SkipPayload {
		t.Fatalf("SELECT * slot corrupted: cached=%v skip=%v/%v", p.Cached, p.SideA.SkipPayload, p.SideB.SkipPayload)
	}
}

// TestPlanCacheInvalidation checks that every planning input clears the
// cache: statistics, index flags, the worker hint, and the semi-join
// and NDV knobs.
func TestPlanCacheInvalidation(t *testing.T) {
	mutations := []struct {
		name string
		mut  func(*Catalog)
	}{
		{"SetStats", func(c *Catalog) {
			if err := c.SetStats("Teams", 1000, true); err != nil {
				t.Fatal(err)
			}
		}},
		{"SetIndexed", func(c *Catalog) {
			if err := c.SetIndexed("Teams", false); err != nil {
				t.Fatal(err)
			}
		}},
		{"SetDefaultWorkers", func(c *Catalog) { c.SetDefaultWorkers(7) }},
		{"SetNDV", func(c *Catalog) {
			if err := c.SetNDV("Teams", 9); err != nil {
				t.Fatal(err)
			}
		}},
		{"SetSemiJoin", func(c *Catalog) { c.SetSemiJoin(false) }},
	}
	for _, m := range mutations {
		t.Run(m.name, func(t *testing.T) {
			cat := cacheCatalog(t)
			if _, err := cat.Compile(cacheQuery); err != nil {
				t.Fatal(err)
			}
			m.mut(cat)
			p, err := cat.Compile(cacheQuery)
			if err != nil {
				t.Fatal(err)
			}
			if p.Cached {
				t.Fatalf("%s did not invalidate the plan cache", m.name)
			}
		})
	}
}

// TestPlanCacheDecryptStats checks the EXPLAIN hook: with a stats
// provider attached, compiled plans carry a decrypt-cache snapshot and
// Describe renders it.
func TestPlanCacheDecryptStats(t *testing.T) {
	cat := cacheCatalog(t)
	cat.SetDecryptCacheStats(func() engine.DecryptCacheStats {
		return engine.DecryptCacheStats{Enabled: true, Hits: 5, Misses: 2, Entries: 1, Bytes: 2048, Budget: 1 << 20}
	})
	p, err := cat.Compile(`EXPLAIN ` + cacheQuery)
	if err != nil {
		t.Fatal(err)
	}
	if p.DecCache == nil || p.DecCache.Hits != 5 {
		t.Fatalf("plan carries no decrypt-cache snapshot: %+v", p.DecCache)
	}
	out := p.Describe()
	if !strings.Contains(out, "plan cache: miss") {
		t.Fatalf("EXPLAIN lacks the plan cache line:\n%s", out)
	}
	if !strings.Contains(out, "decrypt cache: 5 hit(s), 2 miss(es)") {
		t.Fatalf("EXPLAIN lacks the decrypt cache line:\n%s", out)
	}
	warm, err := cat.Compile(`EXPLAIN ` + cacheQuery)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(warm.Describe(), "plan cache: hit") {
		t.Fatalf("EXPLAIN does not report the plan cache hit:\n%s", warm.Describe())
	}
}

// TestPlanCacheEviction pins the LRU bound: compiling more shapes than
// maxCachedPlans evicts the oldest, which then re-compiles as a miss.
func TestPlanCacheEviction(t *testing.T) {
	cat := cacheCatalog(t)
	mk := func(i int) string {
		return cacheQuery + ` AND Employees.Role = '` + strings.Repeat("r", i%7+1) + `-` + string(rune('a'+i%26)) + strings.Repeat("x", i/26) + `'`
	}
	if _, err := cat.Compile(cacheQuery); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < maxCachedPlans; i++ {
		if _, err := cat.Compile(mk(i)); err != nil {
			t.Fatal(err)
		}
	}
	p, err := cat.Compile(cacheQuery)
	if err != nil {
		t.Fatal(err)
	}
	if p.Cached {
		t.Fatal("oldest shape survived past the cache bound")
	}
	// The most recent shape must still be cached.
	p, err = cat.Compile(mk(maxCachedPlans - 1))
	if err != nil {
		t.Fatal(err)
	}
	if !p.Cached {
		t.Fatal("most recent shape was evicted")
	}
}
