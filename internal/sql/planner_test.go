package sql

import (
	"strings"
	"testing"
)

// planCatalog builds a two-table catalog with configurable index state.
func planCatalog(t *testing.T, indexedA, indexedB bool) *Catalog {
	t.Helper()
	cat, err := NewCatalog(
		TableSchema{Name: "Teams", JoinColumn: "Key", Attrs: map[string]int{"Name": 0, "Dept": 1}, Indexed: indexedA},
		TableSchema{Name: "Employees", JoinColumn: "Team", Attrs: map[string]int{"Role": 0, "Level": 1}, Indexed: indexedB},
	)
	if err != nil {
		t.Fatal(err)
	}
	return cat
}

const baseQuery = `SELECT * FROM Teams JOIN Employees ON Teams.Key = Employees.Team`

func TestPlanStrategySelection(t *testing.T) {
	cases := []struct {
		name               string
		indexedA, indexedB bool
		where              string
		strategy           Strategy
		preA, preB         bool
		reasonA, reasonB   string
	}{
		{
			name:     "both indexed, predicates both sides",
			indexedA: true, indexedB: true,
			where:    ` WHERE Teams.Name = 'x' AND Employees.Role = 'y'`,
			strategy: Prefiltered, preA: true, preB: true,
		},
		{
			name:     "no indexes",
			indexedA: false, indexedB: false,
			where:    ` WHERE Teams.Name = 'x' AND Employees.Role = 'y'`,
			strategy: FullScan,
			reasonA:  "no SSE index", reasonB: "no SSE index",
		},
		{
			name:     "indexed but no WHERE",
			indexedA: true, indexedB: true,
			where:    ``,
			strategy: FullScan,
			reasonA:  "no WHERE predicates", reasonB: "no WHERE predicates",
		},
		{
			name:     "mixed: only A indexed, predicates both sides",
			indexedA: true, indexedB: false,
			where:    ` WHERE Teams.Name = 'x' AND Employees.Role = 'y'`,
			strategy: Prefiltered, preA: true,
			reasonB: "no SSE index",
		},
		{
			name:     "predicates only on unindexed side",
			indexedA: true, indexedB: false,
			where:    ` WHERE Employees.Role = 'y'`,
			strategy: FullScan,
			reasonA:  "no WHERE predicates", reasonB: "no SSE index",
		},
		{
			name:     "predicates only on indexed side",
			indexedA: true, indexedB: false,
			where:    ` WHERE Teams.Name = 'x'`,
			strategy: Prefiltered, preA: true,
			reasonB: "no WHERE predicates",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cat := planCatalog(t, c.indexedA, c.indexedB)
			plan, err := cat.Compile(baseQuery + c.where)
			if err != nil {
				t.Fatal(err)
			}
			if plan.Strategy != c.strategy {
				t.Fatalf("strategy = %v, want %v", plan.Strategy, c.strategy)
			}
			if plan.SideA.Prefilter != c.preA || plan.SideB.Prefilter != c.preB {
				t.Fatalf("prefilter sides = %v/%v, want %v/%v",
					plan.SideA.Prefilter, plan.SideB.Prefilter, c.preA, c.preB)
			}
			if plan.SideA.Reason != c.reasonA || plan.SideB.Reason != c.reasonB {
				t.Fatalf("reasons = %q/%q, want %q/%q",
					plan.SideA.Reason, plan.SideB.Reason, c.reasonA, c.reasonB)
			}
		})
	}
}

func TestParseExplain(t *testing.T) {
	q, err := Parse(`EXPLAIN ` + baseQuery + ` WHERE Teams.Name = 'x'`)
	if err != nil {
		t.Fatal(err)
	}
	if !q.Explain {
		t.Fatal("Explain flag not set")
	}
	if q, err = Parse(`explain ` + baseQuery); err != nil || !q.Explain {
		t.Fatalf("lowercase explain: %v, %+v", err, q)
	}
	if q, err = Parse(baseQuery); err != nil || q.Explain {
		t.Fatalf("plain query: %v, explain=%v", err, q.Explain)
	}
	// EXPLAIN must prefix a whole statement, not appear mid-query.
	if _, err = Parse(`SELECT EXPLAIN * FROM A JOIN B ON A.k = B.k`); err == nil {
		t.Fatal("accepted misplaced EXPLAIN")
	}
	cat := planCatalog(t, true, true)
	plan, err := cat.Compile(`EXPLAIN ` + baseQuery + ` WHERE Teams.Name = 'x'`)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Explain {
		t.Fatal("plan lost the Explain flag")
	}
}

func TestPlanPredSummaries(t *testing.T) {
	cat := planCatalog(t, true, true)
	// Dept appears before Name in the WHERE clause sorted order but
	// after it in source order; same-column conjuncts merge.
	plan, err := cat.Compile(baseQuery +
		` WHERE Teams.name = 'x' AND Teams.DEPT IN ('a', 'b') AND Employees.Role = 'r' AND Employees.Role IN ('s', 't')`)
	if err != nil {
		t.Fatal(err)
	}
	wantA := []PredSummary{{Column: "Dept", Values: 2}, {Column: "Name", Values: 1}}
	wantB := []PredSummary{{Column: "Role", Values: 3}}
	assertPreds := func(got, want []PredSummary, side string) {
		if len(got) != len(want) {
			t.Fatalf("side %s preds = %+v, want %+v", side, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("side %s preds[%d] = %+v, want %+v", side, i, got[i], want[i])
			}
		}
	}
	assertPreds(plan.SideA.Preds, wantA, "A")
	assertPreds(plan.SideB.Preds, wantB, "B")
	if plan.SideA.Tokens() != 3 || plan.SideB.Tokens() != 3 {
		t.Fatalf("token counts = %d/%d, want 3/3", plan.SideA.Tokens(), plan.SideB.Tokens())
	}
}

func TestPlanWorkers(t *testing.T) {
	cat := planCatalog(t, true, true)
	cat.SetDefaultWorkers(4)
	plan, err := cat.Compile(baseQuery)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Workers != 4 {
		t.Fatalf("workers = %d, want 4", plan.Workers)
	}
	cat.SetDefaultWorkers(-1) // negative clamps to the default
	if plan, err = cat.Compile(baseQuery); err != nil || plan.Workers != 0 {
		t.Fatalf("workers = %d, %v; want 0", plan.Workers, err)
	}
}

func TestSetIndexed(t *testing.T) {
	cat := planCatalog(t, false, false)
	if err := cat.SetIndexed("teams", true); err != nil {
		t.Fatal(err) // case-insensitive lookup
	}
	s, err := cat.Schema("Teams")
	if err != nil || !s.Indexed {
		t.Fatalf("Indexed not set: %+v, %v", s, err)
	}
	if err := cat.SetIndexed("Nope", true); err == nil {
		t.Fatal("unknown table accepted")
	}
}

func TestCatalogRejectsCaseFoldCollisions(t *testing.T) {
	if _, err := NewCatalog(TableSchema{
		Name: "T", JoinColumn: "k",
		Attrs: map[string]int{"Role": 0, "role": 1},
	}); err == nil || !strings.Contains(err.Error(), "collide") {
		t.Fatalf("colliding attrs accepted: %v", err)
	}
	if _, err := NewCatalog(TableSchema{
		Name: "T", JoinColumn: "Key",
		Attrs: map[string]int{"KEY": 0},
	}); err == nil || !strings.Contains(err.Error(), "collide") {
		t.Fatalf("attr colliding with join column accepted: %v", err)
	}
	if _, err := NewCatalog(TableSchema{
		Name: "T", JoinColumn: "k",
		Attrs: map[string]int{"c": -1},
	}); err == nil || !strings.Contains(err.Error(), "negative") {
		t.Fatalf("negative attribute index accepted: %v", err)
	}
	// Two columns on one attribute slot would compile `c = 'x' AND
	// d = 'y'` into one IN clause, silently turning AND into OR.
	if _, err := NewCatalog(TableSchema{
		Name: "T", JoinColumn: "k",
		Attrs: map[string]int{"c": 0, "d": 0},
	}); err == nil || !strings.Contains(err.Error(), "share attribute index") {
		t.Fatalf("duplicate attribute index accepted: %v", err)
	}
}

// TestAttrResolutionDeterministic pins the fix for the old map-iteration
// lookup: even against a schema whose columns case-fold collide (which
// NewCatalog rejects, but nothing forces schemas through NewCatalog),
// resolution must land on the same column every time — sorted order,
// uppercase first.
func TestAttrResolutionDeterministic(t *testing.T) {
	s := TableSchema{
		Name: "T", JoinColumn: "k",
		Attrs: map[string]int{"ROLE": 3, "Role": 7, "role": 9},
	}
	for i := 0; i < 200; i++ {
		name, idx, err := resolveAttr(s, "rOlE")
		if err != nil {
			t.Fatal(err)
		}
		if name != "ROLE" || idx != 3 {
			t.Fatalf("iteration %d: resolved to %q (%d), want ROLE (3)", i, name, idx)
		}
	}
	if _, _, err := resolveAttr(s, "k"); err == nil || !strings.Contains(err.Error(), "join column") {
		t.Fatalf("join-column predicate error lost: %v", err)
	}
	if _, _, err := resolveAttr(s, "nope"); err == nil || !strings.Contains(err.Error(), "no filterable column") {
		t.Fatalf("unknown-column error lost: %v", err)
	}
}
