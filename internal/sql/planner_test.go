package sql

import (
	"fmt"
	"strings"
	"testing"
)

// planCatalog builds a two-table catalog with configurable index state.
func planCatalog(t *testing.T, indexedA, indexedB bool) *Catalog {
	t.Helper()
	cat, err := NewCatalog(
		TableSchema{Name: "Teams", JoinColumn: "Key", Attrs: map[string]int{"Name": 0, "Dept": 1}, Indexed: indexedA},
		TableSchema{Name: "Employees", JoinColumn: "Team", Attrs: map[string]int{"Role": 0, "Level": 1}, Indexed: indexedB},
	)
	if err != nil {
		t.Fatal(err)
	}
	return cat
}

const baseQuery = `SELECT * FROM Teams JOIN Employees ON Teams.Key = Employees.Team`

func TestPlanStrategySelection(t *testing.T) {
	cases := []struct {
		name               string
		indexedA, indexedB bool
		where              string
		strategy           Strategy
		preA, preB         bool
		reasonA, reasonB   string
	}{
		{
			name:     "both indexed, predicates both sides",
			indexedA: true, indexedB: true,
			where:    ` WHERE Teams.Name = 'x' AND Employees.Role = 'y'`,
			strategy: Prefiltered, preA: true, preB: true,
		},
		{
			name:     "no indexes",
			indexedA: false, indexedB: false,
			where:    ` WHERE Teams.Name = 'x' AND Employees.Role = 'y'`,
			strategy: FullScan,
			reasonA:  "no SSE index", reasonB: "no SSE index",
		},
		{
			name:     "indexed but no WHERE",
			indexedA: true, indexedB: true,
			where:    ``,
			strategy: FullScan,
			reasonA:  "no WHERE predicates", reasonB: "no WHERE predicates",
		},
		{
			name:     "mixed: only A indexed, predicates both sides",
			indexedA: true, indexedB: false,
			where:    ` WHERE Teams.Name = 'x' AND Employees.Role = 'y'`,
			strategy: Prefiltered, preA: true,
			reasonB: "no SSE index",
		},
		{
			name:     "predicates only on unindexed side",
			indexedA: true, indexedB: false,
			where:    ` WHERE Employees.Role = 'y'`,
			strategy: FullScan,
			reasonA:  "no WHERE predicates", reasonB: "no SSE index",
		},
		{
			name:     "predicates only on indexed side",
			indexedA: true, indexedB: false,
			where:    ` WHERE Teams.Name = 'x'`,
			strategy: Prefiltered, preA: true,
			reasonB: "no WHERE predicates",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cat := planCatalog(t, c.indexedA, c.indexedB)
			plan, err := cat.Compile(baseQuery + c.where)
			if err != nil {
				t.Fatal(err)
			}
			if plan.Strategy != c.strategy {
				t.Fatalf("strategy = %v, want %v", plan.Strategy, c.strategy)
			}
			if plan.SideA.Prefilter != c.preA || plan.SideB.Prefilter != c.preB {
				t.Fatalf("prefilter sides = %v/%v, want %v/%v",
					plan.SideA.Prefilter, plan.SideB.Prefilter, c.preA, c.preB)
			}
			if plan.SideA.Reason != c.reasonA || plan.SideB.Reason != c.reasonB {
				t.Fatalf("reasons = %q/%q, want %q/%q",
					plan.SideA.Reason, plan.SideB.Reason, c.reasonA, c.reasonB)
			}
		})
	}
}

// orderCatalog builds a three-table catalog (shared join-key domain)
// with per-table row counts; rows == 0 leaves the count unknown.
func orderCatalog(t *testing.T, rowsA, rowsB, rowsC int) *Catalog {
	t.Helper()
	cat, err := NewCatalog(
		TableSchema{Name: "A", JoinColumn: "k", Attrs: map[string]int{"c": 0}, Indexed: true, RowCount: rowsA},
		TableSchema{Name: "B", JoinColumn: "k", Attrs: map[string]int{"c": 0}, Indexed: true, RowCount: rowsB},
		TableSchema{Name: "C", JoinColumn: "k", Attrs: map[string]int{"c": 0}, Indexed: true, RowCount: rowsC},
	)
	if err != nil {
		t.Fatal(err)
	}
	return cat
}

// steps renders a plan's chain compactly for pinning: "B*C B*A+" where
// + marks a stitch step.
func stepsString(p *Plan) string {
	var parts []string
	for _, st := range p.Steps {
		s := st.Left.Table + "*" + st.Right.Table
		if st.Stitch {
			s += "+"
		}
		parts = append(parts, s)
	}
	return strings.Join(parts, " ")
}

// TestJoinOrderFromRowCounts pins that the chain starts at the smallest
// table and grows by the smallest connected table — the
// small-table-first rule of the statistics-driven ordering.
func TestJoinOrderFromRowCounts(t *testing.T) {
	cat := orderCatalog(t, 1000, 10, 100)
	plan, err := cat.Compile(`SELECT * FROM A, B, C WHERE A.k = B.k AND B.k = C.k`)
	if err != nil {
		t.Fatal(err)
	}
	if got := stepsString(plan); got != "B*C B*A+" {
		t.Fatalf("steps = %q, want %q", got, "B*C B*A+")
	}
	if plan.OrderReason != "row statistics (smallest estimated sides first)" {
		t.Fatalf("order reason = %q", plan.OrderReason)
	}
	// The FROM clause still dictates the result column order.
	if len(plan.Tables) != 3 || plan.Tables[0] != "A" || plan.Tables[1] != "B" || plan.Tables[2] != "C" {
		t.Fatalf("result tables = %v", plan.Tables)
	}
}

// TestJoinOrderUsesSelectivity pins that predicate selectivity — not
// just raw row counts — drives the order: a selective predicate shrinks
// a big table's estimated weight below a smaller unfiltered one.
func TestJoinOrderUsesSelectivity(t *testing.T) {
	cat := orderCatalog(t, 1000, 10, 50)
	// A carries one predicate value: est. 100 rows. Without it A (1000)
	// would join last; with C at 50 the order is B, C, A either way, so
	// sharpen: predicate brings A to 100, C stays 50 -> B, C, A. Then
	// make the predicate two-column: est. 1000*0.1*0.1 = 10 rows... but
	// the schema has one attr, so use an equality (0.1): est 100 > 50.
	plan, err := cat.Compile(`SELECT * FROM A, B, C WHERE A.k = B.k AND B.k = C.k AND A.c = 'x'`)
	if err != nil {
		t.Fatal(err)
	}
	if got := stepsString(plan); got != "B*C B*A+" {
		t.Fatalf("steps = %q, want %q", got, "B*C B*A+")
	}

	// Now give C no statistics edge: shrink A's estimate below C by
	// raising C's rows.
	cat = orderCatalog(t, 1000, 10, 500)
	plan, err = cat.Compile(`SELECT * FROM A, B, C WHERE A.k = B.k AND B.k = C.k AND A.c = 'x'`)
	if err != nil {
		t.Fatal(err)
	}
	// est(A) = 100 < rows(C) = 500: A joins before C.
	if got := stepsString(plan); got != "B*A B*C+" {
		t.Fatalf("steps = %q, want %q", got, "B*A B*C+")
	}
}

// TestJoinOrderUsesNDV pins that distinct-value counts sharpen the
// equality selectivity from the 0.1 default to 1/NDV — and that the
// sharper estimate can flip the join order both ways.
func TestJoinOrderUsesNDV(t *testing.T) {
	// Baseline (no NDV): est(A) = 1000 * 0.1 = 100 > rows(C) = 50, so C
	// joins before A.
	cat := orderCatalog(t, 1000, 10, 50)
	const q = `SELECT * FROM A, B, C WHERE A.k = B.k AND B.k = C.k AND A.c = 'x'`
	plan, err := cat.Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	if got := stepsString(plan); got != "B*C B*A+" {
		t.Fatalf("steps without NDV = %q, want %q", got, "B*C B*A+")
	}

	// A column with 100 distinct values: est(A) = 1000/100 = 10 ties
	// with rows(B) = 10, so A now anchors the chain ahead of C.
	if err := cat.SetNDV("a", 100); err != nil {
		t.Fatal(err) // case-insensitive lookup
	}
	if plan, err = cat.Compile(q); err != nil {
		t.Fatal(err)
	}
	if got := stepsString(plan); got != "A*B B*C+" {
		t.Fatalf("steps with NDV=100 = %q, want %q", got, "A*B B*C+")
	}

	// Few distinct values make equality *less* selective than the
	// default: est(A) = 1000/2 = 500 > 50 keeps C first.
	if err := cat.SetNDV("A", 2); err != nil {
		t.Fatal(err)
	}
	if plan, err = cat.Compile(q); err != nil {
		t.Fatal(err)
	}
	if got := stepsString(plan); got != "B*C B*A+" {
		t.Fatalf("steps with NDV=2 = %q, want %q", got, "B*C B*A+")
	}

	if err := cat.SetNDV("Nope", 5); err == nil {
		t.Fatal("unknown table accepted")
	}
}

// TestEstimateRowsNDV pins the estimator arithmetic itself.
func TestEstimateRowsNDV(t *testing.T) {
	eq := func(vals int) []PredSummary { return []PredSummary{{Column: "c", Values: vals}} }
	cases := []struct {
		rows, ndv int
		preds     []PredSummary
		want      int
	}{
		{rows: 1000, ndv: 0, preds: eq(1), want: 100},  // default 0.1
		{rows: 1000, ndv: 100, preds: eq(1), want: 10}, // 1/NDV
		{rows: 1000, ndv: 100, preds: eq(3), want: 30}, // IN scales per value
		{rows: 1000, ndv: 2, preds: eq(5), want: 1000}, // saturates at the table
		{rows: 0, ndv: 100, preds: eq(1), want: -1},    // unknown rows stay unknown
		{rows: 1000, ndv: 100, preds: nil, want: 1000}, // no predicates
	}
	for _, c := range cases {
		if got := estimateRows(c.rows, c.ndv, c.preds); got != c.want {
			t.Errorf("estimateRows(%d, %d, %+v) = %d, want %d", c.rows, c.ndv, c.preds, got, c.want)
		}
	}
}

// TestSetSemiJoin pins the catalog knob: semi-join candidate
// propagation is on by default, toggles off and back on, and only ever
// marks stitch steps.
func TestSetSemiJoin(t *testing.T) {
	cat := orderCatalog(t, 1000, 10, 100)
	const q = `SELECT * FROM A, B, C WHERE A.k = B.k AND B.k = C.k`
	plan, err := cat.Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Steps[0].SemiJoin || !plan.Steps[1].SemiJoin {
		t.Fatalf("default semi-join flags = %v/%v, want false/true",
			plan.Steps[0].SemiJoin, plan.Steps[1].SemiJoin)
	}
	// The stitch step's hub payloads are discarded client-side, so the
	// planner always skips them, whatever the SELECT list.
	if !plan.Steps[1].Left.SkipPayload {
		t.Fatal("stitch step's hub side should skip payloads")
	}

	cat.SetSemiJoin(false)
	if plan, err = cat.Compile(q); err != nil {
		t.Fatal(err)
	}
	if plan.Steps[1].SemiJoin {
		t.Fatal("SetSemiJoin(false) did not disable candidate propagation")
	}
	cat.SetSemiJoin(true)
	if plan, err = cat.Compile(q); err != nil {
		t.Fatal(err)
	}
	if !plan.Steps[1].SemiJoin {
		t.Fatal("SetSemiJoin(true) did not restore candidate propagation")
	}
}

// TestSelectListProjection pins the key-only projection planning: a
// side whose payload columns never appear in the SELECT list is marked
// SkipPayload, and unknown references fail compilation.
func TestSelectListProjection(t *testing.T) {
	cat := orderCatalog(t, 1000, 10, 100)

	// Join-column-only SELECT: every side is key-only.
	plan, err := cat.Compile(`SELECT A.k, B.k, C.k FROM A, B, C WHERE A.k = B.k AND B.k = C.k`)
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range plan.Steps {
		if !st.Left.SkipPayload || !st.Right.SkipPayload {
			t.Fatalf("key-only SELECT left payloads on: %s*%s = %v/%v",
				st.Left.Table, st.Right.Table, st.Left.SkipPayload, st.Right.SkipPayload)
		}
	}

	// Referencing an attribute keeps that side's payloads.
	plan, err = cat.Compile(`SELECT A.c, B.k, C.k FROM A, B, C WHERE A.k = B.k AND B.k = C.k`)
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range plan.Steps {
		st := st
		for i, sp := range []*SidePlan{&st.Left, &st.Right} {
			// The stitched hub's payloads are discarded client-side, so
			// its left slot stays key-only regardless.
			if st.Stitch && i == 0 {
				continue
			}
			wantSkip := sp.Table != "A"
			if sp.SkipPayload != wantSkip {
				t.Fatalf("side %s SkipPayload = %v, want %v", sp.Table, sp.SkipPayload, wantSkip)
			}
		}
	}

	// SELECT * keeps every non-stitch payload.
	plan, err = cat.Compile(`SELECT * FROM A JOIN B ON A.k = B.k`)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Steps[0].Left.SkipPayload || plan.Steps[0].Right.SkipPayload {
		t.Fatal("SELECT * should not skip payloads")
	}

	if _, err = cat.Compile(`SELECT D.c FROM A JOIN B ON A.k = B.k`); err == nil ||
		!strings.Contains(err.Error(), "not part of the join") {
		t.Fatalf("SELECT of foreign table accepted: %v", err)
	}
	if _, err = cat.Compile(`SELECT A.nope FROM A JOIN B ON A.k = B.k`); err == nil {
		t.Fatal("SELECT of unknown column accepted")
	}
}

// TestJoinOrderDeclarationFallback pins the no-statistics behavior: the
// chain follows the FROM clause and says so.
func TestJoinOrderDeclarationFallback(t *testing.T) {
	cat := orderCatalog(t, 0, 0, 0)
	plan, err := cat.Compile(`SELECT * FROM A JOIN B ON A.k = B.k JOIN C ON B.k = C.k`)
	if err != nil {
		t.Fatal(err)
	}
	if got := stepsString(plan); got != "A*B B*C+" {
		t.Fatalf("steps = %q, want %q", got, "A*B B*C+")
	}
	if plan.OrderReason != "declaration order (row statistics missing)" {
		t.Fatalf("order reason = %q", plan.OrderReason)
	}
}

// TestJoinOrderStarStitch pins the star shape: two tables joined
// against one hub both stitch on the hub.
func TestJoinOrderStarStitch(t *testing.T) {
	cat := orderCatalog(t, 5, 1000, 800)
	plan, err := cat.Compile(`SELECT * FROM A JOIN B ON B.k = A.k JOIN C ON C.k = A.k`)
	if err != nil {
		t.Fatal(err)
	}
	if got := stepsString(plan); got != "A*C A*B+" {
		t.Fatalf("steps = %q, want %q", got, "A*C A*B+")
	}
}

// TestTwoTableKeepsDeclarationOrder pins that statistics never reorder
// a two-table plan: side A/B are part of the legacy API surface.
func TestTwoTableKeepsDeclarationOrder(t *testing.T) {
	cat := orderCatalog(t, 1000, 10, 100)
	plan, err := cat.Compile(`SELECT * FROM A JOIN B ON A.k = B.k`)
	if err != nil {
		t.Fatal(err)
	}
	if plan.TableA != "A" || plan.TableB != "B" {
		t.Fatalf("two-table sides reordered: %s, %s", plan.TableA, plan.TableB)
	}
	// The public OrderReason must not claim a statistics-driven order
	// that the two-table compatibility rule overrides.
	if plan.OrderReason != "declared side order (two-table plan)" {
		t.Fatalf("order reason = %q", plan.OrderReason)
	}
}

// TestPrefilterThreshold pins the row-count-aware prefilter rule that
// replaced "any predicate is selective": the estimated candidate set
// must be smaller than the table.
func TestPrefilterThreshold(t *testing.T) {
	cases := []struct {
		name      string
		rows      int
		values    int
		prefilter bool
		reason    string
	}{
		{name: "selective predicate", rows: 100, values: 1, prefilter: true},
		{name: "wide IN saturates", rows: 100, values: 10, reason: "predicates not selective (est. 100 of 100 rows)"},
		{name: "tiny table never wins", rows: 1, values: 1, reason: "predicates not selective (est. 1 of 1 rows)"},
		{name: "unknown rows keeps legacy rule", rows: 0, values: 10, prefilter: true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cat := orderCatalog(t, c.rows, 50, 50)
			vals := make([]string, c.values)
			for i := range vals {
				vals[i] = fmt.Sprintf("'v%d'", i)
			}
			q := `SELECT * FROM A JOIN B ON A.k = B.k WHERE A.c IN (` + strings.Join(vals, ", ") + `)`
			plan, err := cat.Compile(q)
			if err != nil {
				t.Fatal(err)
			}
			if plan.SideA.Prefilter != c.prefilter {
				t.Fatalf("prefilter = %v, want %v (%+v)", plan.SideA.Prefilter, c.prefilter, plan.SideA)
			}
			if !c.prefilter && plan.SideA.Reason != c.reason {
				t.Fatalf("reason = %q, want %q", plan.SideA.Reason, c.reason)
			}
		})
	}
}

// TestSetStats pins the catalog sync surface the backends drive.
func TestSetStats(t *testing.T) {
	cat := planCatalog(t, false, false)
	if err := cat.SetStats("teams", 42, true); err != nil {
		t.Fatal(err) // case-insensitive lookup
	}
	s, err := cat.Schema("Teams")
	if err != nil || !s.Indexed || s.RowCount != 42 {
		t.Fatalf("stats not set: %+v, %v", s, err)
	}
	// Unknown rows are clamped, not stored negative.
	if err := cat.SetStats("Teams", -7, false); err != nil {
		t.Fatal(err)
	}
	if s, _ = cat.Schema("Teams"); s.RowCount != 0 || s.Indexed {
		t.Fatalf("negative rows not clamped: %+v", s)
	}
	if err := cat.SetStats("Nope", 1, true); err == nil {
		t.Fatal("unknown table accepted")
	}
}

func TestParseExplain(t *testing.T) {
	q, err := Parse(`EXPLAIN ` + baseQuery + ` WHERE Teams.Name = 'x'`)
	if err != nil {
		t.Fatal(err)
	}
	if !q.Explain {
		t.Fatal("Explain flag not set")
	}
	if q, err = Parse(`explain ` + baseQuery); err != nil || !q.Explain {
		t.Fatalf("lowercase explain: %v, %+v", err, q)
	}
	if q, err = Parse(baseQuery); err != nil || q.Explain {
		t.Fatalf("plain query: %v, explain=%v", err, q.Explain)
	}
	// EXPLAIN must prefix a whole statement, not appear mid-query.
	if _, err = Parse(`SELECT EXPLAIN * FROM A JOIN B ON A.k = B.k`); err == nil {
		t.Fatal("accepted misplaced EXPLAIN")
	}
	cat := planCatalog(t, true, true)
	plan, err := cat.Compile(`EXPLAIN ` + baseQuery + ` WHERE Teams.Name = 'x'`)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Explain {
		t.Fatal("plan lost the Explain flag")
	}
}

func TestPlanPredSummaries(t *testing.T) {
	cat := planCatalog(t, true, true)
	// Dept appears before Name in the WHERE clause sorted order but
	// after it in source order; same-column conjuncts merge.
	plan, err := cat.Compile(baseQuery +
		` WHERE Teams.name = 'x' AND Teams.DEPT IN ('a', 'b') AND Employees.Role = 'r' AND Employees.Role IN ('s', 't')`)
	if err != nil {
		t.Fatal(err)
	}
	wantA := []PredSummary{{Column: "Dept", Values: 2}, {Column: "Name", Values: 1}}
	wantB := []PredSummary{{Column: "Role", Values: 3}}
	assertPreds := func(got, want []PredSummary, side string) {
		if len(got) != len(want) {
			t.Fatalf("side %s preds = %+v, want %+v", side, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("side %s preds[%d] = %+v, want %+v", side, i, got[i], want[i])
			}
		}
	}
	assertPreds(plan.SideA.Preds, wantA, "A")
	assertPreds(plan.SideB.Preds, wantB, "B")
	if plan.SideA.Tokens() != 3 || plan.SideB.Tokens() != 3 {
		t.Fatalf("token counts = %d/%d, want 3/3", plan.SideA.Tokens(), plan.SideB.Tokens())
	}
}

func TestPlanWorkers(t *testing.T) {
	cat := planCatalog(t, true, true)
	cat.SetDefaultWorkers(4)
	plan, err := cat.Compile(baseQuery)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Workers != 4 {
		t.Fatalf("workers = %d, want 4", plan.Workers)
	}
	cat.SetDefaultWorkers(-1) // negative clamps to the default
	if plan, err = cat.Compile(baseQuery); err != nil || plan.Workers != 0 {
		t.Fatalf("workers = %d, %v; want 0", plan.Workers, err)
	}
}

func TestSetIndexed(t *testing.T) {
	cat := planCatalog(t, false, false)
	if err := cat.SetIndexed("teams", true); err != nil {
		t.Fatal(err) // case-insensitive lookup
	}
	s, err := cat.Schema("Teams")
	if err != nil || !s.Indexed {
		t.Fatalf("Indexed not set: %+v, %v", s, err)
	}
	if err := cat.SetIndexed("Nope", true); err == nil {
		t.Fatal("unknown table accepted")
	}
}

func TestCatalogRejectsCaseFoldCollisions(t *testing.T) {
	if _, err := NewCatalog(TableSchema{
		Name: "T", JoinColumn: "k",
		Attrs: map[string]int{"Role": 0, "role": 1},
	}); err == nil || !strings.Contains(err.Error(), "collide") {
		t.Fatalf("colliding attrs accepted: %v", err)
	}
	if _, err := NewCatalog(TableSchema{
		Name: "T", JoinColumn: "Key",
		Attrs: map[string]int{"KEY": 0},
	}); err == nil || !strings.Contains(err.Error(), "collide") {
		t.Fatalf("attr colliding with join column accepted: %v", err)
	}
	if _, err := NewCatalog(TableSchema{
		Name: "T", JoinColumn: "k",
		Attrs: map[string]int{"c": -1},
	}); err == nil || !strings.Contains(err.Error(), "negative") {
		t.Fatalf("negative attribute index accepted: %v", err)
	}
	// Two columns on one attribute slot would compile `c = 'x' AND
	// d = 'y'` into one IN clause, silently turning AND into OR.
	if _, err := NewCatalog(TableSchema{
		Name: "T", JoinColumn: "k",
		Attrs: map[string]int{"c": 0, "d": 0},
	}); err == nil || !strings.Contains(err.Error(), "share attribute index") {
		t.Fatalf("duplicate attribute index accepted: %v", err)
	}
}

// TestAttrResolutionDeterministic pins the fix for the old map-iteration
// lookup: even against a schema whose columns case-fold collide (which
// NewCatalog rejects, but nothing forces schemas through NewCatalog),
// resolution must land on the same column every time — sorted order,
// uppercase first.
func TestAttrResolutionDeterministic(t *testing.T) {
	s := TableSchema{
		Name: "T", JoinColumn: "k",
		Attrs: map[string]int{"ROLE": 3, "Role": 7, "role": 9},
	}
	for i := 0; i < 200; i++ {
		name, idx, err := resolveAttr(s, "rOlE")
		if err != nil {
			t.Fatal(err)
		}
		if name != "ROLE" || idx != 3 {
			t.Fatalf("iteration %d: resolved to %q (%d), want ROLE (3)", i, name, idx)
		}
	}
	if _, _, err := resolveAttr(s, "k"); err == nil || !strings.Contains(err.Error(), "join column") {
		t.Fatalf("join-column predicate error lost: %v", err)
	}
	if _, _, err := resolveAttr(s, "nope"); err == nil || !strings.Contains(err.Error(), "no filterable column") {
		t.Fatalf("unknown-column error lost: %v", err)
	}
}
