package sql

import (
	"math/rand"
	"strings"
	"testing"
)

// fuzzCatalog is the populated catalog hostile inputs are planned
// against: indexed and unindexed tables (one with row statistics, one
// without) whose names appear in the fuzz seeds, so mutations
// frequently reach predicate compilation, join ordering and strategy
// selection rather than dying at name resolution.
func fuzzCatalog() *Catalog {
	cat, err := NewCatalog(
		TableSchema{Name: "A", JoinColumn: "k", Attrs: map[string]int{"c": 0, "d": 1}, Indexed: true, RowCount: 100},
		TableSchema{Name: "B", JoinColumn: "k", Attrs: map[string]int{"c": 0, "e": 1}},
		TableSchema{Name: "C", JoinColumn: "k", Attrs: map[string]int{"f": 0}, Indexed: true, RowCount: 7},
	)
	if err != nil {
		panic(err)
	}
	return cat
}

// checkPlanInvariants validates what every successfully planned query
// must satisfy, whatever the input looked like.
func checkPlanInvariants(t testing.TB, input string, plan *Plan) {
	t.Helper()
	if plan == nil {
		t.Fatalf("nil plan without error for %q", input)
	}
	if len(plan.Steps) != len(plan.Tables)-1 {
		t.Fatalf("%d steps for %d tables for %q", len(plan.Steps), len(plan.Tables), input)
	}
	prefiltered := false
	joined := map[string]bool{}
	for i, st := range plan.Steps {
		if (st.Strategy == Prefiltered) != (st.Left.Prefilter || st.Right.Prefilter) {
			t.Fatalf("step %d strategy %v inconsistent with sides %v/%v for %q",
				i, st.Strategy, st.Left.Prefilter, st.Right.Prefilter, input)
		}
		if st.Strategy == Prefiltered {
			prefiltered = true
		}
		if st.Stitch != (i > 0) {
			t.Fatalf("step %d stitch=%v for %q", i, st.Stitch, input)
		}
		if i > 0 && !joined[st.Left.Table] {
			t.Fatalf("step %d stitches on %q, which is not joined yet, for %q", i, st.Left.Table, input)
		}
		if i > 0 && joined[st.Right.Table] {
			t.Fatalf("step %d re-joins %q for %q", i, st.Right.Table, input)
		}
		joined[st.Left.Table] = true
		joined[st.Right.Table] = true
		for _, sp := range []*SidePlan{&st.Left, &st.Right} {
			if sp.Prefilter && (sp.Reason != "" || len(sp.Preds) == 0 || sp.Tokens() == 0) {
				t.Fatalf("prefiltered side %q with reason=%q preds=%v for %q",
					sp.Table, sp.Reason, sp.Preds, input)
			}
			if !sp.Prefilter && sp.Reason == "" {
				t.Fatalf("full-scan side %q without reason for %q", sp.Table, input)
			}
			if sp.Prefilter && sp.EstRows >= 0 && sp.EstRows >= sp.RowCount {
				t.Fatalf("prefiltered side %q despite est. %d of %d rows for %q",
					sp.Table, sp.EstRows, sp.RowCount, input)
			}
		}
	}
	if len(joined) != len(plan.Tables) {
		t.Fatalf("steps join %d tables, FROM names %d, for %q", len(joined), len(plan.Tables), input)
	}
	for _, name := range plan.Tables {
		if !joined[name] {
			t.Fatalf("FROM table %q missing from the chain for %q", name, input)
		}
	}
	if (plan.Strategy == Prefiltered) != prefiltered {
		t.Fatalf("plan strategy %v inconsistent with steps for %q", plan.Strategy, input)
	}
	if plan.TableA != plan.Steps[0].Left.Table || plan.TableB != plan.Steps[0].Right.Table ||
		plan.SideA.Table != plan.TableA || plan.SideB.Table != plan.TableB {
		t.Fatalf("legacy side projection diverged from step 0 for %q", input)
	}
	if plan.Describe() == "" {
		t.Fatalf("empty Describe() for %q", input)
	}
}

// TestParserNeverPanics drives the lexer, parser AND planner with
// mutated and random inputs: every call must return cleanly (a plan or
// an error), never panic — the property that matters for a front end
// fed by remote clients.
func TestParserNeverPanics(t *testing.T) {
	seeds := []string{
		`SELECT * FROM A JOIN B ON A.k = B.k WHERE A.c IN ('x', 'y') AND B.d = 'z'`,
		`EXPLAIN SELECT * FROM A JOIN B ON A.k = B.k WHERE A.c = 'x' AND B.c = 'y'`,
		`SELECT * FROM A, B, C WHERE A.k = B.k AND B.k = C.k AND C.f = 'x'`,
		`SELECT * FROM A JOIN B ON A.k = B.k JOIN C ON C.k = B.k`,
		`select * from t1 join t2 on t1.a = t2.b`,
		`SELECT`,
		`'''`,
		`((((`,
		`A.B.C.D = = IN`,
	}
	rng := rand.New(rand.NewSource(99))
	chars := []byte(`SELECTFROMJOINWHEREINANDEXPLAIN*.,()='" abc123`)
	cat := fuzzCatalog()

	tryPlan := func(input string) {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("front end panicked on %q: %v", input, r)
			}
		}()
		q, err := Parse(input)
		if err != nil {
			return
		}
		plan, err := cat.PlanQuery(q)
		if err != nil {
			return
		}
		checkPlanInvariants(t, input, plan)
	}

	for _, s := range seeds {
		tryPlan(s)
		// Mutations: deletions, swaps, random splices.
		for i := 0; i < 200; i++ {
			b := []byte(s)
			switch rng.Intn(3) {
			case 0: // delete a byte
				if len(b) > 0 {
					p := rng.Intn(len(b))
					b = append(b[:p], b[p+1:]...)
				}
			case 1: // replace a byte
				if len(b) > 0 {
					b[rng.Intn(len(b))] = chars[rng.Intn(len(chars))]
				}
			case 2: // insert a byte
				p := rng.Intn(len(b) + 1)
				b = append(b[:p], append([]byte{chars[rng.Intn(len(chars))]}, b[p:]...)...)
			}
			tryPlan(string(b))
		}
	}

	// Fully random strings.
	for i := 0; i < 500; i++ {
		n := rng.Intn(60)
		var sb strings.Builder
		for j := 0; j < n; j++ {
			sb.WriteByte(chars[rng.Intn(len(chars))])
		}
		tryPlan(sb.String())
	}
}

// FuzzPlanQuery is the native-fuzzing twin of TestParserNeverPanics:
// the corpus seeds under testdata/fuzz/FuzzPlanQuery run on every
// regular `go test`, and `go test -fuzz FuzzPlanQuery` explores from
// them. Panics and invariant violations in Parse/PlanQuery/Describe are
// the targets.
func FuzzPlanQuery(f *testing.F) {
	for _, s := range []string{
		`SELECT * FROM A JOIN B ON A.k = B.k WHERE A.c IN ('x', 'y') AND B.c = 'z'`,
		`EXPLAIN SELECT * FROM A JOIN B ON B.k = A.k WHERE A.d = 'v' AND A.d IN (1, 2.5)`,
		`SELECT * FROM B JOIN A ON B.k = A.k`,
		`SELECT * FROM A JOIN B ON A.k = B.k WHERE B.e = 'it''s'`,
		`SELECT * FROM A, B, C WHERE A.k = B.k AND B.k = C.k AND C.f IN ('x', 'y')`,
		`EXPLAIN SELECT * FROM C JOIN B ON C.k = B.k JOIN A ON A.k = C.k WHERE A.c = 'v'`,
	} {
		f.Add(s)
	}
	cat := fuzzCatalog()
	f.Fuzz(func(t *testing.T, input string) {
		q, err := Parse(input)
		if err != nil {
			return
		}
		plan, err := cat.PlanQuery(q)
		if err != nil {
			return
		}
		checkPlanInvariants(t, input, plan)
	})
}

// TestLexerTerminates: the lexer must reach EOF or an error on any
// input without looping forever (guard via a generous token budget).
func TestLexerTerminates(t *testing.T) {
	inputs := []string{
		"", " ", "..", "==", "a.b.c", "'open", `"open`, "123.456.789",
		strings.Repeat("x", 10000),
	}
	for _, in := range inputs {
		l := newLexer(in)
		for i := 0; i < len(in)+10; i++ {
			tok, err := l.next()
			if err != nil || tok.kind == tokEOF {
				break
			}
			if i == len(in)+9 {
				t.Fatalf("lexer did not terminate on %q", in)
			}
		}
	}
}
