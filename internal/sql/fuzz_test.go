package sql

import (
	"math/rand"
	"strings"
	"testing"
)

// TestParserNeverPanics drives the lexer and parser with mutated and
// random inputs: every call must return cleanly (a query or an error),
// never panic — the property that matters for a parser fed by remote
// clients.
func TestParserNeverPanics(t *testing.T) {
	seeds := []string{
		`SELECT * FROM A JOIN B ON A.k = B.k WHERE A.c IN ('x', 'y') AND B.d = 'z'`,
		`select * from t1 join t2 on t1.a = t2.b`,
		`SELECT`,
		`'''`,
		`((((`,
		`A.B.C.D = = IN`,
	}
	rng := rand.New(rand.NewSource(99))
	chars := []byte(`SELECTFROMJOINWHEREINAND*.,()='" abc123`)

	tryParse := func(input string) {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("parser panicked on %q: %v", input, r)
			}
		}()
		_, _ = Parse(input)
	}

	for _, s := range seeds {
		tryParse(s)
		// Mutations: deletions, swaps, random splices.
		for i := 0; i < 200; i++ {
			b := []byte(s)
			switch rng.Intn(3) {
			case 0: // delete a byte
				if len(b) > 0 {
					p := rng.Intn(len(b))
					b = append(b[:p], b[p+1:]...)
				}
			case 1: // replace a byte
				if len(b) > 0 {
					b[rng.Intn(len(b))] = chars[rng.Intn(len(chars))]
				}
			case 2: // insert a byte
				p := rng.Intn(len(b) + 1)
				b = append(b[:p], append([]byte{chars[rng.Intn(len(chars))]}, b[p:]...)...)
			}
			tryParse(string(b))
		}
	}

	// Fully random strings.
	for i := 0; i < 500; i++ {
		n := rng.Intn(60)
		var sb strings.Builder
		for j := 0; j < n; j++ {
			sb.WriteByte(chars[rng.Intn(len(chars))])
		}
		tryParse(sb.String())
	}
}

// TestLexerTerminates: the lexer must reach EOF or an error on any
// input without looping forever (guard via a generous token budget).
func TestLexerTerminates(t *testing.T) {
	inputs := []string{
		"", " ", "..", "==", "a.b.c", "'open", `"open`, "123.456.789",
		strings.Repeat("x", 10000),
	}
	for _, in := range inputs {
		l := newLexer(in)
		for i := 0; i < len(in)+10; i++ {
			tok, err := l.next()
			if err != nil || tok.kind == tokEOF {
				break
			}
			if i == len(in)+9 {
				t.Fatalf("lexer did not terminate on %q", in)
			}
		}
	}
}
