package sql

import (
	"fmt"
	"strings"
)

// Describe renders the plan the way EXPLAIN prints it. A single-join
// plan keeps the historical two-side rendering; a multi-join plan
// renders the operator tree: the chosen join order (and what drove
// it), each pairwise encrypted join step with its per-side
// Scan/Prefilter decision, the stitch table of every bind step, the
// worker hint, and the leakage consequence of the choices. The output
// is deterministic (predicates are listed in sorted column order) and
// pinned by golden-file tests.
func (p *Plan) Describe() string {
	var b strings.Builder
	if len(p.Steps) <= 1 {
		switch p.Strategy {
		case Prefiltered:
			fmt.Fprintf(&b, "plan: prefiltered (SSE candidate selection, SJ.Dec over candidates)\n")
		default:
			fmt.Fprintf(&b, "plan: full scan (SJ.Dec over every row)\n")
		}
		describeSide(&b, "A", &p.SideA, "")
		describeSide(&b, "B", &p.SideB, "")
		describeWorkers(&b, p.Workers)
		describeCaches(&b, p)
		if p.Strategy == Prefiltered {
			fmt.Fprintf(&b, "leakage: server additionally learns the rows matching each predicate value (SSE access pattern)\n")
		} else {
			fmt.Fprintf(&b, "leakage: the paper's exact profile (equality pairs among selected rows only)\n")
		}
		return b.String()
	}

	fmt.Fprintf(&b, "plan: %d-table join, %d pairwise encrypted step(s), left-deep\n", len(p.Tables), len(p.Steps))
	order := make([]string, 0, len(p.Tables))
	for i, st := range p.Steps {
		if i == 0 {
			order = append(order, st.Left.Table)
		}
		order = append(order, st.Right.Table)
	}
	fmt.Fprintf(&b, "join order: %s — %s\n", strings.Join(order, ", "), p.OrderReason)
	for i, st := range p.Steps {
		fmt.Fprintf(&b, "step %d: %s JOIN %s [%s]", i+1, st.Left.Table, st.Right.Table, st.Strategy)
		if st.Stitch {
			fmt.Fprintf(&b, " (stitch on %s rows, client-side)", st.Left.Table)
		}
		b.WriteByte('\n')
		if st.SemiJoin {
			// The candidate count is runtime data (the previous step's
			// matches), so EXPLAIN names the source step, not a number.
			fmt.Fprintf(&b, "  semi-join: candidates from step %d — SJ.Dec only over %s rows the previous step matched\n", i, st.Left.Table)
		}
		describeSide(&b, "A", &st.Left, "  ")
		describeSide(&b, "B", &st.Right, "  ")
	}
	describeWorkers(&b, p.Workers)
	describeCaches(&b, p)
	if p.Strategy == Prefiltered {
		fmt.Fprintf(&b, "leakage: per pairwise join sigma(q), plus SSE access pattern on prefiltered sides; stitch keys stay client-side\n")
	} else {
		fmt.Fprintf(&b, "leakage: per pairwise join sigma(q) (equality pairs among selected rows); stitch keys stay client-side\n")
	}
	return b.String()
}

func describeWorkers(b *strings.Builder, workers int) {
	if workers > 0 {
		fmt.Fprintf(b, "workers: %d\n", workers)
	} else {
		fmt.Fprintf(b, "workers: engine default\n")
	}
}

// describeCaches renders the caching annotations: whether this plan
// came from the plan cache, and — when the catalog carries a decrypt-
// cache stats hook — the server's decrypt-result cache counters at
// compile time.
func describeCaches(b *strings.Builder, p *Plan) {
	if p.Cached {
		fmt.Fprintf(b, "plan cache: hit\n")
	} else {
		fmt.Fprintf(b, "plan cache: miss\n")
	}
	if p.DecCache == nil {
		return
	}
	if !p.DecCache.Enabled {
		fmt.Fprintf(b, "decrypt cache: disabled\n")
		return
	}
	fmt.Fprintf(b, "decrypt cache: %d hit(s), %d miss(es), %d eviction(s), %d entrie(s), %d of %d bytes\n",
		p.DecCache.Hits, p.DecCache.Misses, p.DecCache.Evictions,
		p.DecCache.Entries, p.DecCache.Bytes, p.DecCache.Budget)
}

func describeSide(b *strings.Builder, label string, sp *SidePlan, indent string) {
	indexed := "not indexed"
	if sp.Indexed {
		indexed = "indexed"
	}
	if sp.RowCount > 0 {
		fmt.Fprintf(b, "%sside %s: %s [%s, %d rows]\n", indent, label, sp.Table, indexed, sp.RowCount)
	} else {
		fmt.Fprintf(b, "%sside %s: %s [%s]\n", indent, label, sp.Table, indexed)
	}
	if len(sp.Preds) == 0 {
		fmt.Fprintf(b, "%s  predicates: none\n", indent)
	} else {
		parts := make([]string, len(sp.Preds))
		for i, pr := range sp.Preds {
			parts[i] = fmt.Sprintf("%s (%d value(s))", pr.Column, pr.Values)
		}
		fmt.Fprintf(b, "%s  predicates: %s\n", indent, strings.Join(parts, ", "))
	}
	if sp.SkipPayload {
		fmt.Fprintf(b, "%s  projection: key-only (payloads not shipped or decrypted)\n", indent)
	}
	if sp.Prefilter {
		if sp.EstRows >= 0 {
			fmt.Fprintf(b, "%s  -> prefiltered, %d SSE token(s), est. %d candidate row(s)\n", indent, sp.Tokens(), sp.EstRows)
		} else {
			fmt.Fprintf(b, "%s  -> prefiltered, %d SSE token(s)\n", indent, sp.Tokens())
		}
	} else {
		fmt.Fprintf(b, "%s  -> full scan (%s)\n", indent, sp.Reason)
	}
}
