package sql

import (
	"fmt"
	"strings"
)

// Describe renders the plan the way EXPLAIN prints it: the chosen
// strategy, each side's table, index state, predicate summary and
// per-side decision (with the fallback reason when a side full-scans),
// the worker hint, and the leakage consequence of the choice. The
// output is deterministic (predicates are listed in sorted column
// order) and pinned by golden-file tests.
func (p *Plan) Describe() string {
	var b strings.Builder
	switch p.Strategy {
	case Prefiltered:
		fmt.Fprintf(&b, "plan: prefiltered (SSE candidate selection, SJ.Dec over candidates)\n")
	default:
		fmt.Fprintf(&b, "plan: full scan (SJ.Dec over every row)\n")
	}
	describeSide(&b, "A", &p.SideA)
	describeSide(&b, "B", &p.SideB)
	if p.Workers > 0 {
		fmt.Fprintf(&b, "workers: %d\n", p.Workers)
	} else {
		fmt.Fprintf(&b, "workers: engine default\n")
	}
	if p.Strategy == Prefiltered {
		fmt.Fprintf(&b, "leakage: server additionally learns the rows matching each predicate value (SSE access pattern)\n")
	} else {
		fmt.Fprintf(&b, "leakage: the paper's exact profile (equality pairs among selected rows only)\n")
	}
	return b.String()
}

func describeSide(b *strings.Builder, label string, sp *SidePlan) {
	indexed := "not indexed"
	if sp.Indexed {
		indexed = "indexed"
	}
	fmt.Fprintf(b, "side %s: %s [%s]\n", label, sp.Table, indexed)
	if len(sp.Preds) == 0 {
		fmt.Fprintf(b, "  predicates: none\n")
	} else {
		parts := make([]string, len(sp.Preds))
		for i, pr := range sp.Preds {
			parts[i] = fmt.Sprintf("%s (%d value(s))", pr.Column, pr.Values)
		}
		fmt.Fprintf(b, "  predicates: %s\n", strings.Join(parts, ", "))
	}
	if sp.Prefilter {
		fmt.Fprintf(b, "  -> prefiltered, %d SSE token(s)\n", sp.Tokens())
	} else {
		fmt.Fprintf(b, "  -> full scan (%s)\n", sp.Reason)
	}
}
