// Package sql implements a small SQL front end over the query form the
// paper supports (Section 4, Example 4.1), extended to multi-table
// equi-joins:
//
//	SELECT * FROM A JOIN B ON A.j = B.j
//	WHERE A.attr IN ('v1', 'v2') AND B.attr = 'v3'
//
//	SELECT * FROM A, B, C
//	WHERE A.j = B.j AND B.j = C.j AND C.attr = 'v'
//
// A FROM clause may list tables with commas, chain JOIN ... ON
// clauses, or mix both; join conditions may equivalently appear as
// WHERE conjuncts relating two columns. Queries are lexed, parsed into
// an AST, validated against a catalog of table schemas and planned
// into a left-deep chain of pairwise encrypted joins over the Secure
// Join engine's Selection predicates (see Catalog.PlanQuery). Equality
// predicates are sugar for one-element IN clauses. A statement may be
// prefixed with EXPLAIN, in which case the planned operator tree is
// rendered instead of running the query (see Plan.Describe).
package sql

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer output.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokString
	tokNumber
	tokStar
	tokDot
	tokComma
	tokLParen
	tokRParen
	tokEq
	tokKeyword
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokString:
		return "string literal"
	case tokNumber:
		return "number"
	case tokStar:
		return "'*'"
	case tokDot:
		return "'.'"
	case tokComma:
		return "','"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokEq:
		return "'='"
	case tokKeyword:
		return "keyword"
	}
	return "unknown token"
}

// keywords recognized by the dialect (case-insensitive).
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "JOIN": true, "ON": true,
	"WHERE": true, "AND": true, "IN": true, "EXPLAIN": true,
}

type token struct {
	kind tokenKind
	text string // identifier/keyword text (keywords upper-cased), or literal value
	pos  int    // byte offset in the input, for error messages
}

// lexer scans a query string into tokens.
type lexer struct {
	input string
	pos   int
}

func newLexer(input string) *lexer { return &lexer{input: input} }

// next returns the next token or an error for malformed input.
func (l *lexer) next() (token, error) {
	for l.pos < len(l.input) && unicode.IsSpace(rune(l.input[l.pos])) {
		l.pos++
	}
	if l.pos >= len(l.input) {
		return token{kind: tokEOF, pos: l.pos}, nil
	}
	start := l.pos
	c := l.input[l.pos]

	switch c {
	case '*':
		l.pos++
		return token{kind: tokStar, text: "*", pos: start}, nil
	case '.':
		l.pos++
		return token{kind: tokDot, text: ".", pos: start}, nil
	case ',':
		l.pos++
		return token{kind: tokComma, text: ",", pos: start}, nil
	case '(':
		l.pos++
		return token{kind: tokLParen, text: "(", pos: start}, nil
	case ')':
		l.pos++
		return token{kind: tokRParen, text: ")", pos: start}, nil
	case '=':
		l.pos++
		return token{kind: tokEq, text: "=", pos: start}, nil
	case '\'', '"':
		quote := c
		l.pos++
		var sb strings.Builder
		for l.pos < len(l.input) {
			if l.input[l.pos] == quote {
				// Doubled quote is an escaped quote.
				if l.pos+1 < len(l.input) && l.input[l.pos+1] == quote {
					sb.WriteByte(quote)
					l.pos += 2
					continue
				}
				l.pos++
				return token{kind: tokString, text: sb.String(), pos: start}, nil
			}
			sb.WriteByte(l.input[l.pos])
			l.pos++
		}
		return token{}, fmt.Errorf("sql: unterminated string literal at offset %d", start)
	}

	if isDigit(c) {
		for l.pos < len(l.input) && (isDigit(l.input[l.pos]) || l.input[l.pos] == '.') {
			l.pos++
		}
		return token{kind: tokNumber, text: l.input[start:l.pos], pos: start}, nil
	}

	if isIdentStart(c) {
		for l.pos < len(l.input) && isIdentPart(l.input[l.pos]) {
			l.pos++
		}
		word := l.input[start:l.pos]
		upper := strings.ToUpper(word)
		if keywords[upper] {
			return token{kind: tokKeyword, text: upper, pos: start}, nil
		}
		return token{kind: tokIdent, text: word, pos: start}, nil
	}

	return token{}, fmt.Errorf("sql: unexpected character %q at offset %d", c, start)
}

func isDigit(c byte) bool      { return c >= '0' && c <= '9' }
func isIdentStart(c byte) bool { return c == '_' || unicode.IsLetter(rune(c)) }
func isIdentPart(c byte) bool  { return isIdentStart(c) || isDigit(c) }
