package sql_test

import (
	"fmt"
	"testing"

	"repro/internal/client"
	"repro/internal/engine"
	"repro/internal/securejoin"
	"repro/internal/server"
	"repro/internal/sql"
)

// Cluster conformance: both suites — the 20-query two-table suite and
// the multi-join suite — run against a 2-shard in-process cluster and
// must produce exactly what one server produces: identical row
// identities, identical decrypted payload bytes, and a summed sigma(q)
// equal to the single-server revealed-pair count. This is the
// executable form of the alignment argument in cluster.go's package
// doc: equi-join pairs are always co-located, so per-shard traces
// partition the single-server trace.

// clusterFixture boots one reference server plus a 2-shard cluster,
// all sharing the reference client's key material so every execution
// decrypts the same ciphertext world.
func clusterFixture(t *testing.T) (*client.Client, *client.Cluster) {
	t.Helper()
	newSrv := func() string {
		srv := server.New(nil)
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		return addr
	}
	single, err := client.Dial(newSrv(), securejoin.Params{M: 2, T: 3})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { single.Close() })
	cl, err := client.DialClusterWithKeys([]string{newSrv(), newSrv()}, single.Keys())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return single, cl
}

func TestSQLConformanceCluster(t *testing.T) {
	single, cl := clusterFixture(t)

	teams, employees := conformanceTables()
	for name, rows := range map[string][]engine.PlainRow{
		"Teams": teams, "Employees": employees,
	} {
		if err := single.UploadIndexed(name, rows); err != nil {
			t.Fatal(err)
		}
		if err := cl.UploadIndexed(name, rows); err != nil {
			t.Fatal(err)
		}
	}

	cat, err := sql.NewCatalog(
		sql.TableSchema{Name: "Teams", JoinColumn: "Key", Attrs: map[string]int{"Name": 0, "Dept": 1}},
		sql.TableSchema{Name: "Employees", JoinColumn: "Team", Attrs: map[string]int{"Role": 0, "Level": 1}},
	)
	if err != nil {
		t.Fatal(err)
	}
	// The aggregated cluster catalog must be indistinguishable from the
	// single server's: summed shard rows, every shard indexed.
	infos, err := cl.SyncCatalog(cat)
	if err != nil {
		t.Fatal(err)
	}
	wantRows := map[string]int{"Teams": len(teams), "Employees": len(employees)}
	// Hash partitioning places each distinct join value on exactly one
	// shard, so summing per-shard NDVs must recover the true count.
	distinct := func(rows []engine.PlainRow) int {
		seen := map[string]bool{}
		for _, r := range rows {
			seen[string(r.JoinValue)] = true
		}
		return len(seen)
	}
	wantNDV := map[string]int{"Teams": distinct(teams), "Employees": distinct(employees)}
	for _, info := range infos {
		if info.Rows != wantRows[info.Name] || !info.Indexed || info.ShardCount != 2 {
			t.Fatalf("aggregated describe of %s = %+v, want %d rows, indexed, 2 shards",
				info.Name, info, wantRows[info.Name])
		}
		if info.NDV != wantNDV[info.Name] {
			t.Errorf("aggregated NDV of %s = %d, want %d", info.Name, info.NDV, wantNDV[info.Name])
		}
	}

	for _, cq := range conformanceQueries {
		cq := cq
		t.Run(cq.name, func(t *testing.T) {
			plan, err := cat.Compile(cq.query)
			if err != nil {
				t.Fatal(err)
			}

			render := func(r sql.ResultRow) string {
				return fmt.Sprintf("%d|%d|%s|%s", r.Rows[0], r.Rows[1], r.Payloads[0], r.Payloads[1])
			}
			var singleRows []string
			singleRevealed, err := single.ExecutePlan(plan,
				func(r sql.ResultRow) error { singleRows = append(singleRows, render(r)); return nil })
			if err != nil {
				t.Fatal(err)
			}
			var clRows []string
			clRevealed, err := cl.ExecutePlan(plan,
				func(r sql.ResultRow) error { clRows = append(clRows, render(r)); return nil })
			if err != nil {
				t.Fatal(err)
			}

			var want []string
			for _, pr := range cq.rows {
				want = append(want, fmt.Sprintf("%d|%d|%s|%s",
					pr[0], pr[1], teams[pr[0]].Payload, employees[pr[1]].Payload))
			}
			wantCanon := canonical(t, want)
			singleCanon := canonical(t, singleRows)
			if singleCanon != wantCanon {
				t.Fatalf("single-server rows =\n%s\nwant\n%s", singleCanon, wantCanon)
			}
			if clCanon := canonical(t, clRows); clCanon != singleCanon {
				t.Errorf("2-shard cluster rows differ from single server:\n%s\nvs\n%s", clCanon, singleCanon)
			}
			if clRevealed != singleRevealed {
				t.Errorf("cluster summed sigma = %d pairs, single server revealed %d", clRevealed, singleRevealed)
			}

			// The ad-hoc scatter-gather path must agree too, with the same
			// upload-map row identities.
			adhoc, adhocRevealed, err := cl.Join(plan.TableA, plan.TableB, plan.SelA, plan.SelB,
				client.JoinOpts{Prefilter: plan.Strategy == sql.Prefiltered})
			if err != nil {
				t.Fatal(err)
			}
			var adhocRows []string
			for _, r := range adhoc {
				adhocRows = append(adhocRows, fmt.Sprintf("%d|%d|%s|%s", r.RowA, r.RowB, r.PayloadA, r.PayloadB))
			}
			if adhocCanon := canonical(t, adhocRows); adhocCanon != singleCanon {
				t.Errorf("cluster ad-hoc join rows differ from single server:\n%s\nvs\n%s", adhocCanon, singleCanon)
			}
			if adhocRevealed != singleRevealed {
				t.Errorf("cluster ad-hoc sigma = %d pairs, single server revealed %d", adhocRevealed, singleRevealed)
			}
		})
	}
}

func TestSQLConformanceClusterMultiJoin(t *testing.T) {
	single, cl := clusterFixture(t)

	teams, employees := conformanceTables()
	offices := conformanceOffices()
	payloads := [][]engine.PlainRow{teams, employees, offices}
	for name, rows := range map[string][]engine.PlainRow{
		"Teams": teams, "Employees": employees, "Offices": offices,
	} {
		if err := single.UploadIndexed(name, rows); err != nil {
			t.Fatal(err)
		}
		if err := cl.UploadIndexed(name, rows); err != nil {
			t.Fatal(err)
		}
	}

	cat, err := sql.NewCatalog(
		sql.TableSchema{Name: "Teams", JoinColumn: "Key", Attrs: map[string]int{"Name": 0, "Dept": 1}},
		sql.TableSchema{Name: "Employees", JoinColumn: "Team", Attrs: map[string]int{"Role": 0, "Level": 1}},
		sql.TableSchema{Name: "Offices", JoinColumn: "TeamKey", Attrs: map[string]int{"Site": 0}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.SyncCatalog(cat); err != nil {
		t.Fatal(err)
	}

	for _, cq := range multiJoinQueries {
		cq := cq
		t.Run(cq.name, func(t *testing.T) {
			plan, err := cat.Compile(cq.query)
			if err != nil {
				t.Fatal(err)
			}
			render := func(r sql.ResultRow) string {
				return fmt.Sprintf("%d|%d|%d|%s|%s|%s",
					r.Rows[0], r.Rows[1], r.Rows[2], r.Payloads[0], r.Payloads[1], r.Payloads[2])
			}
			var singleRows []string
			singleRevealed, err := single.ExecutePlan(plan,
				func(r sql.ResultRow) error { singleRows = append(singleRows, render(r)); return nil })
			if err != nil {
				t.Fatal(err)
			}
			// Both cluster modes: synchronous scatter and every shard-step
			// routed through that backend's job queue.
			execute := map[string]func(*sql.Plan, func(sql.ResultRow) error) (int, error){
				"cluster-sync":  cl.ExecutePlan,
				"cluster-async": cl.ExecutePlanAsync,
			}

			var want []string
			for _, tr := range cq.rows {
				want = append(want, fmt.Sprintf("%d|%d|%d|%s|%s|%s",
					tr[0], tr[1], tr[2],
					payloads[0][tr[0]].Payload, payloads[1][tr[1]].Payload, payloads[2][tr[2]].Payload))
			}
			wantCanon := canonical(t, want)
			singleCanon := canonical(t, singleRows)
			if singleCanon != wantCanon {
				t.Fatalf("single-server rows =\n%s\nwant\n%s", singleCanon, wantCanon)
			}
			for mode, exec := range execute {
				var rows []string
				revealed, err := exec(plan,
					func(r sql.ResultRow) error { rows = append(rows, render(r)); return nil })
				if err != nil {
					t.Fatalf("%s: %v", mode, err)
				}
				if got := canonical(t, rows); got != singleCanon {
					t.Errorf("%s rows differ from single server:\n%s\nvs\n%s", mode, got, singleCanon)
				}
				if revealed != singleRevealed {
					t.Errorf("%s summed sigma = %d pairs, single server revealed %d", mode, revealed, singleRevealed)
				}
			}

			// Full execution (semi-join off) through the cluster: same
			// rows, and the default semi-join run may only have revealed
			// fewer pairs than this reference.
			cat.SetSemiJoin(false)
			fullPlan, err := cat.Compile(cq.query)
			if err != nil {
				t.Fatal(err)
			}
			cat.SetSemiJoin(true)
			var fullRows []string
			fullRevealed, err := cl.ExecutePlan(fullPlan,
				func(r sql.ResultRow) error { fullRows = append(fullRows, render(r)); return nil })
			if err != nil {
				t.Fatal(err)
			}
			if got := canonical(t, fullRows); got != singleCanon {
				t.Errorf("cluster full-execution rows differ from single server:\n%s\nvs\n%s", got, singleCanon)
			}
			if singleRevealed > fullRevealed {
				t.Errorf("semi-join revealed %d pairs, more than full execution's %d", singleRevealed, fullRevealed)
			}
		})
	}
}
