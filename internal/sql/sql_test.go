package sql

import (
	"strings"
	"testing"
)

func TestParseFullQuery(t *testing.T) {
	q, err := Parse(`SELECT * FROM Employees JOIN Teams ON Employees.Team = Teams.Key
		WHERE Teams.Name = 'Web Application' AND Employees.Role IN ('Tester', 'Programmer')`)
	if err != nil {
		t.Fatal(err)
	}
	if q.TableA != "Employees" || q.TableB != "Teams" {
		t.Fatalf("tables = %s, %s", q.TableA, q.TableB)
	}
	if q.OnA != "Team" || q.OnB != "Key" {
		t.Fatalf("on = %s, %s", q.OnA, q.OnB)
	}
	if len(q.Predicates) != 2 {
		t.Fatalf("%d predicates", len(q.Predicates))
	}
	if q.Predicates[0].Table != "Teams" || q.Predicates[0].Values[0] != "Web Application" {
		t.Fatalf("predicate 0 = %+v", q.Predicates[0])
	}
	if len(q.Predicates[1].Values) != 2 {
		t.Fatalf("IN clause parsed as %v", q.Predicates[1].Values)
	}
}

func TestParseReversedOnCondition(t *testing.T) {
	q, err := Parse(`SELECT * FROM A JOIN B ON B.y = A.x`)
	if err != nil {
		t.Fatal(err)
	}
	if q.OnA != "x" || q.OnB != "y" {
		t.Fatalf("on = %s, %s; reversal not normalized", q.OnA, q.OnB)
	}
}

func TestParseNoWhere(t *testing.T) {
	q, err := Parse(`SELECT * FROM A JOIN B ON A.k = B.k`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Predicates) != 0 {
		t.Fatal("unexpected predicates")
	}
}

func TestParseCaseInsensitiveKeywords(t *testing.T) {
	if _, err := Parse(`select * from A join B on A.k = B.k where A.c = 'v'`); err != nil {
		t.Fatal(err)
	}
}

func TestParseStringEscapes(t *testing.T) {
	q, err := Parse(`SELECT * FROM A JOIN B ON A.k = B.k WHERE A.c = 'it''s'`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Predicates[0].Values[0] != "it's" {
		t.Fatalf("escape handling: %q", q.Predicates[0].Values[0])
	}
}

func TestParseNumberLiteral(t *testing.T) {
	q, err := Parse(`SELECT * FROM A JOIN B ON A.k = B.k WHERE A.c IN (1, 2.5)`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Predicates[0].Values[0] != "1" || q.Predicates[0].Values[1] != "2.5" {
		t.Fatalf("number literals: %v", q.Predicates[0].Values)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		``,
		`SELECT a FROM A JOIN B ON A.k = B.k`,          // projection list unsupported
		`SELECT * FROM A`,                              // missing JOIN
		`SELECT * FROM A JOIN B ON A.k = C.k`,          // ON references foreign table
		`SELECT * FROM A JOIN B ON k = B.k`,            // unqualified column
		`SELECT * FROM A JOIN B ON A.k = B.k WHERE`,    // dangling WHERE
		`SELECT * FROM A JOIN B ON A.k = B.k trailing`, // trailing garbage
		`SELECT * FROM A JOIN B ON A.k = B.k WHERE A.c IN ()`,
		`SELECT * FROM A JOIN B ON A.k = B.k WHERE A.c = 'unterminated`,
		`SELECT * FROM A JOIN B ON A.k = B.k WHERE A.c LIKE 'x'`,
	}
	for _, c := range cases {
		if _, err := Parse(c); err == nil {
			t.Errorf("accepted malformed query %q", c)
		}
	}
}

func testCatalog(t *testing.T) *Catalog {
	t.Helper()
	cat, err := NewCatalog(
		TableSchema{Name: "Teams", JoinColumn: "Key", Attrs: map[string]int{"Name": 0}},
		TableSchema{Name: "Employees", JoinColumn: "Team", Attrs: map[string]int{"Role": 0}},
	)
	if err != nil {
		t.Fatal(err)
	}
	return cat
}

func TestPlanQuery(t *testing.T) {
	cat := testCatalog(t)
	plan, err := cat.Compile(`SELECT * FROM Teams JOIN Employees ON Teams.Key = Employees.Team
		WHERE Teams.Name = 'Web Application' AND Employees.Role = 'Tester'`)
	if err != nil {
		t.Fatal(err)
	}
	if plan.TableA != "Teams" || plan.TableB != "Employees" {
		t.Fatalf("plan tables: %s, %s", plan.TableA, plan.TableB)
	}
	if got := plan.SelA[0]; len(got) != 1 || string(got[0]) != "Web Application" {
		t.Fatalf("SelA = %v", plan.SelA)
	}
	if got := plan.SelB[0]; len(got) != 1 || string(got[0]) != "Tester" {
		t.Fatalf("SelB = %v", plan.SelB)
	}
}

func TestPlanMergesPredicatesOnSameColumn(t *testing.T) {
	cat := testCatalog(t)
	plan, err := cat.Compile(`SELECT * FROM Teams JOIN Employees ON Teams.Key = Employees.Team
		WHERE Employees.Role = 'Tester' AND Employees.Role IN ('Programmer')`)
	if err != nil {
		t.Fatal(err)
	}
	if got := plan.SelB[0]; len(got) != 2 {
		t.Fatalf("merged IN clause = %v", got)
	}
}

func TestPlanErrors(t *testing.T) {
	cat := testCatalog(t)
	cases := []struct {
		query, wantErr string
	}{
		{`SELECT * FROM Nope JOIN Employees ON Nope.Key = Employees.Team`, "unknown table"},
		{`SELECT * FROM Teams JOIN Employees ON Teams.Name = Employees.Team`, "join column"},
		{`SELECT * FROM Teams JOIN Employees ON Teams.Key = Employees.Team WHERE Teams.Nope = 'x'`, "no filterable column"},
		{`SELECT * FROM Teams JOIN Employees ON Teams.Key = Employees.Team WHERE Teams.Key = 'x'`, "join column"},
	}
	for _, c := range cases {
		_, err := cat.Compile(c.query)
		if err == nil {
			t.Errorf("accepted %q", c.query)
			continue
		}
		if !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("error for %q = %v, want substring %q", c.query, err, c.wantErr)
		}
	}
}

func TestCatalogValidation(t *testing.T) {
	if _, err := NewCatalog(
		TableSchema{Name: "T", JoinColumn: "k"},
		TableSchema{Name: "t", JoinColumn: "k"},
	); err == nil {
		t.Fatal("duplicate (case-insensitive) table accepted")
	}
	if _, err := NewCatalog(TableSchema{Name: "T"}); err == nil {
		t.Fatal("schema without join column accepted")
	}
}

func TestPlanPredicateOnForeignTable(t *testing.T) {
	cat := testCatalog(t)
	_, err := cat.Compile(`SELECT * FROM Teams JOIN Employees ON Teams.Key = Employees.Team
		WHERE Other.Col = 'x'`)
	if err == nil || !strings.Contains(err.Error(), "not part of the join") {
		t.Fatalf("err = %v", err)
	}
}
