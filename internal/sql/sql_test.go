package sql

import (
	"strings"
	"testing"
)

func TestParseFullQuery(t *testing.T) {
	q, err := Parse(`SELECT * FROM Employees JOIN Teams ON Employees.Team = Teams.Key
		WHERE Teams.Name = 'Web Application' AND Employees.Role IN ('Tester', 'Programmer')`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Tables) != 2 || q.Tables[0] != "Employees" || q.Tables[1] != "Teams" {
		t.Fatalf("tables = %v", q.Tables)
	}
	if len(q.Conds) != 1 {
		t.Fatalf("%d join conditions", len(q.Conds))
	}
	c := q.Conds[0]
	if c.Left != (ColRef{"Employees", "Team"}) || c.Right != (ColRef{"Teams", "Key"}) {
		t.Fatalf("condition = %+v", c)
	}
	if len(q.Predicates) != 2 {
		t.Fatalf("%d predicates", len(q.Predicates))
	}
	if q.Predicates[0].Table != "Teams" || q.Predicates[0].Values[0] != "Web Application" {
		t.Fatalf("predicate 0 = %+v", q.Predicates[0])
	}
	if len(q.Predicates[1].Values) != 2 {
		t.Fatalf("IN clause parsed as %v", q.Predicates[1].Values)
	}
}

func TestParseMultiTableFrom(t *testing.T) {
	// Comma list, chained JOINs and the mixed form all produce the same
	// table set and join conditions.
	forms := []string{
		`SELECT * FROM A, B, C WHERE A.k = B.k AND B.k = C.k AND A.c = 'x'`,
		`SELECT * FROM A JOIN B ON A.k = B.k JOIN C ON B.k = C.k WHERE A.c = 'x'`,
		`SELECT * FROM A JOIN B ON A.k = B.k, C WHERE B.k = C.k AND A.c = 'x'`,
	}
	for _, f := range forms {
		q, err := Parse(f)
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		if len(q.Tables) != 3 || q.Tables[0] != "A" || q.Tables[1] != "B" || q.Tables[2] != "C" {
			t.Fatalf("%s: tables = %v", f, q.Tables)
		}
		if len(q.Conds) != 2 {
			t.Fatalf("%s: %d join conditions", f, len(q.Conds))
		}
		if len(q.Predicates) != 1 || q.Predicates[0].Table != "A" {
			t.Fatalf("%s: predicates = %+v", f, q.Predicates)
		}
	}
}

func TestParseWhereJoinCondition(t *testing.T) {
	q, err := Parse(`SELECT * FROM A, B WHERE A.c = 'v' AND A.k = B.k`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Conds) != 1 || q.Conds[0].Left != (ColRef{"A", "k"}) || q.Conds[0].Right != (ColRef{"B", "k"}) {
		t.Fatalf("conds = %+v", q.Conds)
	}
	if len(q.Predicates) != 1 {
		t.Fatalf("predicates = %+v", q.Predicates)
	}
}

func TestParseRejectsDuplicateTables(t *testing.T) {
	for _, f := range []string{
		`SELECT * FROM A, a WHERE A.k = a.k`,
		`SELECT * FROM A JOIN A ON A.k = A.k`,
	} {
		if _, err := Parse(f); err == nil || !strings.Contains(err.Error(), "twice in FROM") {
			t.Errorf("%s: err = %v", f, err)
		}
	}
}

// TestParseSelectList pins the projection grammar: SELECT * leaves
// Select nil, an explicit list records each qualified reference with
// its byte offset.
func TestParseSelectList(t *testing.T) {
	q, err := Parse(`SELECT * FROM A JOIN B ON A.k = B.k`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Select != nil {
		t.Fatalf("SELECT * produced a projection list: %+v", q.Select)
	}

	q, err = Parse(`SELECT A.k, B.c FROM A JOIN B ON A.k = B.k`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Select) != 2 {
		t.Fatalf("projection list = %+v", q.Select)
	}
	if q.Select[0].ColRef != (ColRef{"A", "k"}) || q.Select[1].ColRef != (ColRef{"B", "c"}) {
		t.Fatalf("projection refs = %+v", q.Select)
	}
	// Offsets point into the statement: "A.k" starts right after
	// "SELECT ".
	if q.Select[0].Pos != 7 {
		t.Fatalf("first projection offset = %d, want 7", q.Select[0].Pos)
	}
}

func TestParseNoWhere(t *testing.T) {
	q, err := Parse(`SELECT * FROM A JOIN B ON A.k = B.k`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Predicates) != 0 {
		t.Fatal("unexpected predicates")
	}
}

func TestParseCaseInsensitiveKeywords(t *testing.T) {
	if _, err := Parse(`select * from A join B on A.k = B.k where A.c = 'v'`); err != nil {
		t.Fatal(err)
	}
}

func TestParseStringEscapes(t *testing.T) {
	q, err := Parse(`SELECT * FROM A JOIN B ON A.k = B.k WHERE A.c = 'it''s'`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Predicates[0].Values[0] != "it's" {
		t.Fatalf("escape handling: %q", q.Predicates[0].Values[0])
	}
}

func TestParseNumberLiteral(t *testing.T) {
	q, err := Parse(`SELECT * FROM A JOIN B ON A.k = B.k WHERE A.c IN (1, 2.5)`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Predicates[0].Values[0] != "1" || q.Predicates[0].Values[1] != "2.5" {
		t.Fatalf("number literals: %v", q.Predicates[0].Values)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		``,
		`SELECT a FROM A JOIN B ON A.k = B.k`,          // unqualified projection column
		`SELECT * FROM A`,                              // single table
		`SELECT FROM A JOIN B ON A.k = B.k`,            // empty projection list
		`SELECT A.k, FROM A JOIN B ON A.k = B.k`,       // dangling comma in list
		`SELECT *, A.k FROM A JOIN B ON A.k = B.k`,     // star mixed with columns
		`SELECT * FROM A JOIN B ON k = B.k`,            // unqualified column
		`SELECT * FROM A JOIN B ON A.k = B.k WHERE`,    // dangling WHERE
		`SELECT * FROM A JOIN B ON A.k = B.k trailing`, // trailing garbage
		`SELECT * FROM A JOIN B ON A.k = B.k WHERE A.c IN ()`,
		`SELECT * FROM A JOIN B ON A.k = B.k WHERE A.c = 'unterminated`,
		`SELECT * FROM A JOIN B ON A.k = B.k WHERE A.c LIKE 'x'`,
		`SELECT * FROM A, WHERE A.c = 'x'`, // dangling comma
		`SELECT * FROM A JOIN B`,           // JOIN without ON
	}
	for _, c := range cases {
		if _, err := Parse(c); err == nil {
			t.Errorf("accepted malformed query %q", c)
		}
	}
}

// TestParseErrorPositions pins that errors for unexpected input in FROM
// and ON lists name the byte offset of the offending token, so a shell
// user can find the typo in a long statement.
func TestParseErrorPositions(t *testing.T) {
	cases := []struct {
		query string
		want  string
	}{
		// offset of "b": "SELECT * FROM a " is 16 bytes.
		{`SELECT * FROM a b ON a.k = b.k`, "offset 16"},
		// offset of WHERE after the dangling comma.
		{`SELECT * FROM a, WHERE a.k = a.k`, "offset 17"},
		// offset of the misplaced literal in the ON list.
		{`SELECT * FROM a JOIN b ON a.k = 'x'`, "offset 32"},
		// offset of EOF after a half-written ON condition.
		{`SELECT * FROM a JOIN b ON a.k =`, "offset 31"},
		// offset of the keyword where the joined table name should be.
		{`SELECT * FROM a JOIN WHERE ON a.k = b.k`, "offset 21"},
		// trailing garbage reports where it starts.
		{`SELECT * FROM a JOIN b ON a.k = b.k nonsense extra`, "offset 36"},
		// single-table FROM points back at the lone table.
		{`SELECT * FROM lonely WHERE lonely.c = 'x'`, "offset 14"},
	}
	for _, c := range cases {
		_, err := Parse(c.query)
		if err == nil {
			t.Errorf("accepted %q", c.query)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("error for %q = %q, want substring %q", c.query, err, c.want)
		}
	}
}

func testCatalog(t *testing.T) *Catalog {
	t.Helper()
	cat, err := NewCatalog(
		TableSchema{Name: "Teams", JoinColumn: "Key", Attrs: map[string]int{"Name": 0}},
		TableSchema{Name: "Employees", JoinColumn: "Team", Attrs: map[string]int{"Role": 0}},
	)
	if err != nil {
		t.Fatal(err)
	}
	return cat
}

func TestPlanQuery(t *testing.T) {
	cat := testCatalog(t)
	plan, err := cat.Compile(`SELECT * FROM Teams JOIN Employees ON Teams.Key = Employees.Team
		WHERE Teams.Name = 'Web Application' AND Employees.Role = 'Tester'`)
	if err != nil {
		t.Fatal(err)
	}
	if plan.TableA != "Teams" || plan.TableB != "Employees" {
		t.Fatalf("plan tables: %s, %s", plan.TableA, plan.TableB)
	}
	if len(plan.Steps) != 1 || plan.Steps[0].Stitch {
		t.Fatalf("steps = %+v", plan.Steps)
	}
	if got := plan.SelA[0]; len(got) != 1 || string(got[0]) != "Web Application" {
		t.Fatalf("SelA = %v", plan.SelA)
	}
	if got := plan.SelB[0]; len(got) != 1 || string(got[0]) != "Tester" {
		t.Fatalf("SelB = %v", plan.SelB)
	}
}

func TestPlanMergesPredicatesOnSameColumn(t *testing.T) {
	cat := testCatalog(t)
	plan, err := cat.Compile(`SELECT * FROM Teams JOIN Employees ON Teams.Key = Employees.Team
		WHERE Employees.Role = 'Tester' AND Employees.Role IN ('Programmer')`)
	if err != nil {
		t.Fatal(err)
	}
	if got := plan.SelB[0]; len(got) != 2 {
		t.Fatalf("merged IN clause = %v", got)
	}
}

func TestPlanErrors(t *testing.T) {
	cat := testCatalog(t)
	cases := []struct {
		query, wantErr string
	}{
		{`SELECT * FROM Nope JOIN Employees ON Nope.Key = Employees.Team`, "unknown table"},
		{`SELECT * FROM Teams JOIN Employees ON Teams.Name = Employees.Team`, "join column"},
		{`SELECT * FROM Teams JOIN Employees ON Teams.Key = Employees.Team WHERE Teams.Nope = 'x'`, "no filterable column"},
		{`SELECT * FROM Teams JOIN Employees ON Teams.Key = Employees.Team WHERE Teams.Key = 'x'`, "join column"},
		// The ON condition referencing a table outside the FROM list is
		// now a planner error (the parser no longer resolves sides).
		{`SELECT * FROM Teams JOIN Employees ON Teams.Key = Offices.Team`, "not part of the join"},
		// No join condition at all: the join graph is disconnected.
		{`SELECT * FROM Teams, Employees`, "no join condition"},
		{`SELECT * FROM Teams, Employees WHERE Teams.Name = 'x'`, "no join condition"},
	}
	for _, c := range cases {
		_, err := cat.Compile(c.query)
		if err == nil {
			t.Errorf("accepted %q", c.query)
			continue
		}
		if !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("error for %q = %v, want substring %q", c.query, err, c.wantErr)
		}
	}
}

func TestCatalogValidation(t *testing.T) {
	if _, err := NewCatalog(
		TableSchema{Name: "T", JoinColumn: "k"},
		TableSchema{Name: "t", JoinColumn: "k"},
	); err == nil {
		t.Fatal("duplicate (case-insensitive) table accepted")
	}
	if _, err := NewCatalog(TableSchema{Name: "T"}); err == nil {
		t.Fatal("schema without join column accepted")
	}
	if _, err := NewCatalog(TableSchema{Name: "T", JoinColumn: "k", RowCount: -1}); err == nil {
		t.Fatal("negative row count accepted")
	}
}

func TestPlanPredicateOnForeignTable(t *testing.T) {
	cat := testCatalog(t)
	_, err := cat.Compile(`SELECT * FROM Teams JOIN Employees ON Teams.Key = Employees.Team
		WHERE Other.Col = 'x'`)
	if err == nil || !strings.Contains(err.Error(), "not part of the join") {
		t.Fatalf("err = %v", err)
	}
}
