package sql_test

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"testing"

	"repro/internal/client"
	"repro/internal/engine"
	"repro/internal/securejoin"
	"repro/internal/server"
	"repro/internal/sql"
)

// The end-to-end SQL conformance suite: every query is compiled once
// and then executed five ways —
//
//  1. in-process full scan        (engine.ExecuteJoin)
//  2. in-process prefiltered      (engine.ExecuteJoinPrefiltered)
//  3. wire full scan              (client.Join)
//  4. wire prefiltered            (client.JoinWith{Prefilter})
//  5. wire, planner-chosen        (client.JoinPlan)
//  6. in-process cached           (engine.ExecuteJoin re-run, same token)
//
// — and all six must produce identical row sets, identical decrypted
// payloads, and identical sigma(q) revealed-pair counts. The whole
// suite runs with the decrypt-result cache attached, and the sixth
// mode re-executes the reference query under its original token so the
// rows come out of the cache: a caching bug shows up as a row or sigma
// divergence here. This is the
// regression net that pins plan equivalence for all future planner
// work: a planner that picks the wrong strategy still has to produce
// the right answer, and a prefilter bug that drops or invents rows
// fails loudly against the full-scan reference.

// conformanceQuery is one suite entry. rows lists the expected result
// as (teams row, employees row) pairs, in canonical (sorted) order.
type conformanceQuery struct {
	name  string
	query string
	rows  [][2]int
	// fullScan marks queries the planner must NOT prefilter (no WHERE
	// clause); everything else must plan prefiltered against the
	// indexed uploads.
	fullScan bool
}

const conformanceBase = `SELECT * FROM Teams JOIN Employees ON Teams.Key = Employees.Team`

// Dataset: Teams (join Key; attrs Name=0, Dept=1) and Employees (join
// Team; attrs Role=0, Level=1). Kept tiny — every full scan pays one
// SJ.Dec pairing per row.
//
//	Teams:     0: key 1, Web Application, Eng     -> team-web
//	           1: key 2, Database,        Eng     -> team-db
//	           2: key 3, Helpdesk,        Support -> team-help
//	Employees: 0: team 1, Programmer, level 2     -> hans
//	           1: team 1, Tester,     level 1     -> kaily
//	           2: team 2, Programmer, level 1     -> john
//	           3: team 3, Operator,   level 3     -> omar
func conformanceTables() (teams, employees []engine.PlainRow) {
	teams = []engine.PlainRow{
		{JoinValue: []byte("1"), Attrs: [][]byte{[]byte("Web Application"), []byte("Eng")}, Payload: []byte("team-web")},
		{JoinValue: []byte("2"), Attrs: [][]byte{[]byte("Database"), []byte("Eng")}, Payload: []byte("team-db")},
		{JoinValue: []byte("3"), Attrs: [][]byte{[]byte("Helpdesk"), []byte("Support")}, Payload: []byte("team-help")},
	}
	employees = []engine.PlainRow{
		{JoinValue: []byte("1"), Attrs: [][]byte{[]byte("Programmer"), []byte("2")}, Payload: []byte("hans")},
		{JoinValue: []byte("1"), Attrs: [][]byte{[]byte("Tester"), []byte("1")}, Payload: []byte("kaily")},
		{JoinValue: []byte("2"), Attrs: [][]byte{[]byte("Programmer"), []byte("1")}, Payload: []byte("john")},
		{JoinValue: []byte("3"), Attrs: [][]byte{[]byte("Operator"), []byte("3")}, Payload: []byte("omar")},
	}
	return
}

var conformanceQueries = []conformanceQuery{
	{name: "no where", query: conformanceBase,
		rows: [][2]int{{0, 0}, {0, 1}, {1, 2}, {2, 3}}, fullScan: true},
	{name: "eq on A", query: conformanceBase + ` WHERE Teams.Name = 'Web Application'`,
		rows: [][2]int{{0, 0}, {0, 1}}},
	{name: "eq on B", query: conformanceBase + ` WHERE Employees.Role = 'Programmer'`,
		rows: [][2]int{{0, 0}, {1, 2}}},
	{name: "eq both sides", query: conformanceBase + ` WHERE Teams.Name = 'Database' AND Employees.Role = 'Programmer'`,
		rows: [][2]int{{1, 2}}},
	{name: "IN on A", query: conformanceBase + ` WHERE Teams.Name IN ('Web Application', 'Database')`,
		rows: [][2]int{{0, 0}, {0, 1}, {1, 2}}},
	// With NDV stats synced (3 distinct team keys), an IN covering as
	// many values as the table has distinct join values estimates to the
	// whole table — the planner now correctly refuses the index probe.
	{name: "IN all roles", query: conformanceBase + ` WHERE Employees.Role IN ('Programmer', 'Tester', 'Operator')`,
		rows: [][2]int{{0, 0}, {0, 1}, {1, 2}, {2, 3}}, fullScan: true},
	{name: "same-column conjuncts merge", query: conformanceBase + ` WHERE Employees.Role = 'Programmer' AND Employees.Role IN ('Tester')`,
		rows: [][2]int{{0, 0}, {0, 1}, {1, 2}}},
	{name: "multi-attr conjunction one side", query: conformanceBase + ` WHERE Employees.Role = 'Programmer' AND Employees.Level = '1'`,
		rows: [][2]int{{1, 2}}},
	{name: "multi-attr conjunction both sides", query: conformanceBase + ` WHERE Teams.Dept = 'Support' AND Teams.Name IN ('Web Application', 'Helpdesk') AND Employees.Level IN ('3', '1')`,
		rows: [][2]int{{2, 3}}},
	{name: "absent value", query: conformanceBase + ` WHERE Teams.Name = 'Nonexistent'`,
		rows: nil},
	{name: "conjunction empties", query: conformanceBase + ` WHERE Employees.Role = 'Programmer' AND Employees.Level = '3'`,
		rows: nil},
	{name: "reversed ON", query: `SELECT * FROM Teams JOIN Employees ON Employees.Team = Teams.Key WHERE Teams.Dept = 'Eng'`,
		rows: [][2]int{{0, 0}, {0, 1}, {1, 2}}},
	{name: "lowercase everything", query: `select * from teams join employees on teams.key = employees.team where employees.role = 'Operator'`,
		rows: [][2]int{{2, 3}}},
	{name: "escaped quote value", query: conformanceBase + ` WHERE Teams.Name = 'it''s'`,
		rows: nil},
	{name: "number literal", query: conformanceBase + ` WHERE Employees.Level = 1`,
		rows: [][2]int{{0, 1}, {1, 2}}},
	{name: "number IN", query: conformanceBase + ` WHERE Employees.Level IN (1, 2)`,
		rows: [][2]int{{0, 0}, {0, 1}, {1, 2}}},
	{name: "duplicate IN values", query: conformanceBase + ` WHERE Teams.Name IN ('Web Application', 'Web Application')`,
		rows: [][2]int{{0, 0}, {0, 1}}},
	{name: "cross-side mixed IN", query: conformanceBase + ` WHERE Teams.Dept = 'Eng' AND Employees.Role IN ('Tester', 'Operator')`,
		rows: [][2]int{{0, 1}}},
	{name: "dept only", query: conformanceBase + ` WHERE Teams.Dept = 'Support'`,
		rows: [][2]int{{2, 3}}},
	{name: "IN covering every value", query: conformanceBase + ` WHERE Teams.Name IN ('Web Application', 'Database', 'Helpdesk')`,
		rows: [][2]int{{0, 0}, {0, 1}, {1, 2}, {2, 3}}, fullScan: true},
}

// canonical renders one execution's result as a sorted, payload-opened
// row list so executions with different batch orders compare equal.
func canonical(t *testing.T, rows []string) string {
	t.Helper()
	sorted := append([]string(nil), rows...)
	sort.Strings(sorted)
	return strings.Join(sorted, "\n")
}

// conformanceOffices is the third table of the multi-join suite: one
// row per office, joined on the team key — so Teams is the hub of a
// 3-way star with Employees and Offices. Team 1 has two offices, which
// pins stitch multiplicity.
//
//	0: key 1, Berlin    -> office-berlin
//	1: key 2, Kitchener -> office-kw
//	2: key 3, Remote    -> office-remote
//	3: key 1, Berlin    -> office-berlin2
func conformanceOffices() []engine.PlainRow {
	return []engine.PlainRow{
		{JoinValue: []byte("1"), Attrs: [][]byte{[]byte("Berlin")}, Payload: []byte("office-berlin")},
		{JoinValue: []byte("2"), Attrs: [][]byte{[]byte("Kitchener")}, Payload: []byte("office-kw")},
		{JoinValue: []byte("3"), Attrs: [][]byte{[]byte("Remote")}, Payload: []byte("office-remote")},
		{JoinValue: []byte("1"), Attrs: [][]byte{[]byte("Berlin")}, Payload: []byte("office-berlin2")},
	}
}

const multiJoinBase = `SELECT * FROM Teams JOIN Employees ON Teams.Key = Employees.Team JOIN Offices ON Offices.TeamKey = Teams.Key`

// multiJoinQueries: rows are (teams, employees, offices) row triples in
// the tables' declared order.
var multiJoinQueries = []struct {
	name  string
	query string
	rows  [][3]int
}{
	{name: "threeway no where", query: multiJoinBase,
		rows: [][3]int{{0, 0, 0}, {0, 0, 3}, {0, 1, 0}, {0, 1, 3}, {1, 2, 1}, {2, 3, 2}}},
	{name: "threeway filter on hub", query: multiJoinBase + ` WHERE Teams.Dept = 'Eng'`,
		rows: [][3]int{{0, 0, 0}, {0, 0, 3}, {0, 1, 0}, {0, 1, 3}, {1, 2, 1}}},
	{name: "threeway filter two leaves", query: multiJoinBase + ` WHERE Employees.Role = 'Programmer' AND Offices.Site = 'Berlin'`,
		rows: [][3]int{{0, 0, 0}, {0, 0, 3}}},
	{name: "threeway conjunction empties", query: multiJoinBase + ` WHERE Teams.Name = 'Helpdesk' AND Employees.Role = 'Programmer'`,
		rows: nil},
	{name: "threeway IN on offices", query: multiJoinBase + ` WHERE Offices.Site IN ('Kitchener', 'Remote')`,
		rows: [][3]int{{1, 2, 1}, {2, 3, 2}}},
	{name: "threeway comma form", query: `SELECT * FROM Teams, Employees, Offices WHERE Teams.Key = Employees.Team AND Offices.TeamKey = Teams.Key AND Teams.Dept = 'Support'`,
		rows: [][3]int{{2, 3, 2}}},
}

// TestSQLConformanceMultiJoin executes every 3-table query through the
// planner-chosen operator tree in both execution modes — in-process
// (sql.Execute over the engine) and over the wire (client.ExecutePlan)
// — and both must produce identical stitched rows, identical decrypted
// payloads, and identical summed sigma(q) revealed-pair counts, all
// matching the hand-computed ground truth.
func TestSQLConformanceMultiJoin(t *testing.T) {
	srv := server.New(nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	c, err := client.Dial(addr, securejoin.Params{M: 2, T: 3})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })

	teams, employees := conformanceTables()
	offices := conformanceOffices()
	for name, rows := range map[string][]engine.PlainRow{
		"Teams": teams, "Employees": employees, "Offices": offices,
	} {
		if err := c.UploadIndexed(name, rows); err != nil {
			t.Fatal(err)
		}
	}

	cat, err := sql.NewCatalog(
		sql.TableSchema{Name: "Teams", JoinColumn: "Key", Attrs: map[string]int{"Name": 0, "Dept": 1}},
		sql.TableSchema{Name: "Employees", JoinColumn: "Team", Attrs: map[string]int{"Role": 0, "Level": 1}},
		sql.TableSchema{Name: "Offices", JoinColumn: "TeamKey", Attrs: map[string]int{"Site": 0}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.SyncCatalog(cat); err != nil {
		t.Fatal(err)
	}

	payloads := [][]engine.PlainRow{teams, employees, offices}
	eng := srv.Engine()
	eng.SetDecryptCache(64 << 20) // caching on: multi-join must be unaffected
	keys := c.Keys()

	for _, cq := range multiJoinQueries {
		cq := cq
		t.Run(cq.name, func(t *testing.T) {
			plan, err := cat.Compile(cq.query)
			if err != nil {
				t.Fatal(err)
			}
			if len(plan.Steps) != 2 {
				t.Fatalf("planned %d steps, want 2:\n%s", len(plan.Steps), plan.Describe())
			}
			// The catalog synced real row counts, so the order must be
			// statistics-driven; Teams (3 rows) is the smallest table and
			// the hub, so it anchors every chain regardless of the query.
			if plan.OrderReason != "row statistics (smallest estimated sides first)" {
				t.Fatalf("order reason = %q", plan.OrderReason)
			}
			if !plan.Steps[1].Stitch {
				t.Fatal("second step not marked as a stitch")
			}
			// Semi-join is on by default: the stitch step must carry the
			// reduction, and the stitch side's payload is always skipped
			// (the stitcher reads it from the intermediate).
			if !plan.Steps[1].SemiJoin {
				t.Fatal("stitch step not marked semi-join")
			}
			if !plan.Steps[1].Left.SkipPayload {
				t.Fatal("stitch step left side does not skip its payload")
			}

			render := func(r sql.ResultRow) string {
				return fmt.Sprintf("%d|%d|%d|%s|%s|%s",
					r.Rows[0], r.Rows[1], r.Rows[2], r.Payloads[0], r.Payloads[1], r.Payloads[2])
			}
			var libRows []string
			libRevealed, err := sql.Execute(sql.EngineRunner{Eng: eng, Keys: keys}, plan,
				func(r sql.ResultRow) error { libRows = append(libRows, render(r)); return nil })
			if err != nil {
				t.Fatal(err)
			}
			var wireRows []string
			wireRevealed, err := c.ExecutePlan(plan,
				func(r sql.ResultRow) error { wireRows = append(wireRows, render(r)); return nil })
			if err != nil {
				t.Fatal(err)
			}
			// Async mode submits each step lazily through the job queue,
			// carrying the same candidate lists.
			var asyncRows []string
			asyncRevealed, err := c.ExecutePlanAsync(plan,
				func(r sql.ResultRow) error { asyncRows = append(asyncRows, render(r)); return nil })
			if err != nil {
				t.Fatal(err)
			}
			// Full execution (semi-join disabled) is the reference the
			// reduction must match row for row. Revealed pairs may only
			// shrink: a hub row that matched nothing in the previous step
			// is never decrypted again, so its later-step pairs — which
			// full execution reveals and then discards — never surface.
			cat.SetSemiJoin(false)
			fullPlan, err := cat.Compile(cq.query)
			if err != nil {
				t.Fatal(err)
			}
			cat.SetSemiJoin(true)
			if fullPlan.Steps[1].SemiJoin {
				t.Fatal("SetSemiJoin(false) did not clear the stitch step's semi-join flag")
			}
			var fullRows []string
			fullRevealed, err := c.ExecutePlan(fullPlan,
				func(r sql.ResultRow) error { fullRows = append(fullRows, render(r)); return nil })
			if err != nil {
				t.Fatal(err)
			}

			var want []string
			for _, tr := range cq.rows {
				want = append(want, fmt.Sprintf("%d|%d|%d|%s|%s|%s",
					tr[0], tr[1], tr[2],
					payloads[0][tr[0]].Payload, payloads[1][tr[1]].Payload, payloads[2][tr[2]].Payload))
			}
			wantCanon := canonical(t, want)
			libCanon := canonical(t, libRows)
			if libCanon != wantCanon {
				t.Fatalf("lib rows =\n%s\nwant\n%s", libCanon, wantCanon)
			}
			if wireCanon := canonical(t, wireRows); wireCanon != libCanon {
				t.Errorf("wire rows differ from lib:\n%s\nvs\n%s", wireCanon, libCanon)
			}
			if libRevealed != wireRevealed {
				t.Errorf("lib revealed %d pairs, wire revealed %d", libRevealed, wireRevealed)
			}
			if asyncCanon := canonical(t, asyncRows); asyncCanon != libCanon {
				t.Errorf("async rows differ from lib:\n%s\nvs\n%s", asyncCanon, libCanon)
			}
			if asyncRevealed != libRevealed {
				t.Errorf("lib revealed %d pairs, async revealed %d", libRevealed, asyncRevealed)
			}
			if fullCanon := canonical(t, fullRows); fullCanon != libCanon {
				t.Errorf("full execution rows differ from semi-join:\n%s\nvs\n%s", fullCanon, libCanon)
			}
			if libRevealed > fullRevealed {
				t.Errorf("semi-join revealed %d pairs, more than full execution's %d", libRevealed, fullRevealed)
			}

			// Key-only projection: selecting only join columns must yield
			// the same stitched row identities and revealed pairs with
			// every payload column empty.
			keyOnly := strings.Replace(cq.query, "SELECT *", "SELECT Teams.Key, Employees.Team, Offices.TeamKey", 1)
			koPlan, err := cat.Compile(keyOnly)
			if err != nil {
				t.Fatal(err)
			}
			for s := range koPlan.Steps {
				if !koPlan.Steps[s].Left.SkipPayload || !koPlan.Steps[s].Right.SkipPayload {
					t.Fatalf("key-only plan step %d still ships payloads:\n%s", s, koPlan.Describe())
				}
			}
			var koRows []string
			koRevealed, err := c.ExecutePlan(koPlan,
				func(r sql.ResultRow) error {
					for i, p := range r.Payloads {
						if len(p) != 0 {
							t.Errorf("key-only execution delivered a payload for column %d: %q", i, p)
						}
					}
					koRows = append(koRows, fmt.Sprintf("%d|%d|%d", r.Rows[0], r.Rows[1], r.Rows[2]))
					return nil
				})
			if err != nil {
				t.Fatal(err)
			}
			var wantIDs []string
			for _, tr := range cq.rows {
				wantIDs = append(wantIDs, fmt.Sprintf("%d|%d|%d", tr[0], tr[1], tr[2]))
			}
			if got, want := canonical(t, koRows), canonical(t, wantIDs); got != want {
				t.Errorf("key-only rows =\n%s\nwant\n%s", got, want)
			}
			if koRevealed != libRevealed {
				t.Errorf("key-only revealed %d pairs, semi-join revealed %d", koRevealed, libRevealed)
			}
		})
	}
}

func TestSQLConformance(t *testing.T) {
	srv := server.New(nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	c, err := client.Dial(addr, securejoin.Params{M: 2, T: 3})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })

	teams, employees := conformanceTables()
	if err := c.UploadIndexed("Teams", teams); err != nil {
		t.Fatal(err)
	}
	if err := c.UploadIndexed("Employees", employees); err != nil {
		t.Fatal(err)
	}

	cat, err := sql.NewCatalog(
		sql.TableSchema{Name: "Teams", JoinColumn: "Key", Attrs: map[string]int{"Name": 0, "Dept": 1}},
		sql.TableSchema{Name: "Employees", JoinColumn: "Team", Attrs: map[string]int{"Role": 0, "Level": 1}},
	)
	if err != nil {
		t.Fatal(err)
	}
	// Catalog sync over the wire: both uploads carried indexes, so the
	// planner must see both tables as indexed.
	if _, err := c.SyncCatalog(cat); err != nil {
		t.Fatal(err)
	}

	eng := srv.Engine()
	eng.SetDecryptCache(64 << 20)
	keys := c.Keys()
	open := func(sealed []byte) string {
		t.Helper()
		pt, err := keys.OpenPayload(sealed)
		if err != nil {
			t.Fatal(err)
		}
		return string(pt)
	}

	for _, cq := range conformanceQueries {
		cq := cq
		t.Run(cq.name, func(t *testing.T) {
			plan, err := cat.Compile(cq.query)
			if err != nil {
				t.Fatal(err)
			}
			wantStrategy := sql.Prefiltered
			if cq.fullScan {
				wantStrategy = sql.FullScan
			}
			if plan.Strategy != wantStrategy {
				t.Fatalf("planner chose %v, want %v", plan.Strategy, wantStrategy)
			}

			type execution struct {
				mode     string
				rows     []string
				revealed int
			}
			var execs []execution

			// 1. In-process full scan — the reference semantics.
			q, err := keys.NewQuery(plan.SelA, plan.SelB)
			if err != nil {
				t.Fatal(err)
			}
			libFull, trace, err := eng.ExecuteJoin(plan.TableA, plan.TableB, q)
			if err != nil {
				t.Fatal(err)
			}
			e := execution{mode: "lib-full", revealed: trace.Pairs.Len()}
			for _, r := range libFull {
				e.rows = append(e.rows, fmt.Sprintf("%d|%d|%s|%s", r.RowA, r.RowB, open(r.PayloadA), open(r.PayloadB)))
			}
			execs = append(execs, e)

			// 2. In-process prefiltered.
			pq, err := keys.NewPrefilterQuery(plan.SelA, plan.SelB)
			if err != nil {
				t.Fatal(err)
			}
			libPre, preTrace, err := eng.ExecuteJoinPrefiltered(plan.TableA, plan.TableB, pq)
			if err != nil {
				t.Fatal(err)
			}
			e = execution{mode: "lib-prefiltered", revealed: preTrace.Pairs.Len()}
			for _, r := range libPre {
				e.rows = append(e.rows, fmt.Sprintf("%d|%d|%s|%s", r.RowA, r.RowB, open(r.PayloadA), open(r.PayloadB)))
			}
			execs = append(execs, e)

			// 3 + 4. Wire full scan and wire prefiltered.
			for _, mode := range []struct {
				name string
				opts client.JoinOpts
			}{
				{"wire-full", client.JoinOpts{}},
				{"wire-prefiltered", client.JoinOpts{Prefilter: true}},
			} {
				rows, revealed, err := c.JoinWith(plan.TableA, plan.TableB, plan.SelA, plan.SelB, mode.opts)
				if err != nil {
					t.Fatal(err)
				}
				e = execution{mode: mode.name, revealed: revealed}
				for _, r := range rows {
					e.rows = append(e.rows, fmt.Sprintf("%d|%d|%s|%s", r.RowA, r.RowB, r.PayloadA, r.PayloadB))
				}
				execs = append(execs, e)
			}

			// 5. The planner-chosen wire execution.
			stream, err := c.JoinPlan(plan)
			if err != nil {
				t.Fatal(err)
			}
			e = execution{mode: "wire-planned"}
			for {
				batch, err := stream.Next()
				if err == io.EOF {
					break
				}
				if err != nil {
					t.Fatal(err)
				}
				for _, r := range batch {
					e.rows = append(e.rows, fmt.Sprintf("%d|%d|%s|%s", r.RowA, r.RowB, r.PayloadA, r.PayloadB))
				}
			}
			e.revealed = stream.RevealedPairs()
			execs = append(execs, e)

			// 6. Cached re-execution: the same token against the same
			// tables must be served from the decrypt cache, with
			// identical rows and sigma.
			hitsBefore := eng.DecryptCacheStats().Hits
			libCached, cachedTrace, err := eng.ExecuteJoin(plan.TableA, plan.TableB, q)
			if err != nil {
				t.Fatal(err)
			}
			e = execution{mode: "lib-cached", revealed: cachedTrace.Pairs.Len()}
			for _, r := range libCached {
				e.rows = append(e.rows, fmt.Sprintf("%d|%d|%s|%s", r.RowA, r.RowB, open(r.PayloadA), open(r.PayloadB)))
			}
			execs = append(execs, e)
			if hits := eng.DecryptCacheStats().Hits; hits <= hitsBefore {
				t.Errorf("cached re-execution recorded no decrypt-cache hits (%d before, %d after)", hitsBefore, hits)
			}

			// Expected rows against the declared ground truth.
			var want []string
			for _, pr := range cq.rows {
				want = append(want, fmt.Sprintf("%d|%d|%s|%s",
					pr[0], pr[1], teams[pr[0]].Payload, employees[pr[1]].Payload))
			}
			wantCanon := canonical(t, want)

			ref := execs[0]
			refCanon := canonical(t, ref.rows)
			if refCanon != wantCanon {
				t.Fatalf("%s rows =\n%s\nwant\n%s", ref.mode, refCanon, wantCanon)
			}
			for _, e := range execs[1:] {
				if got := canonical(t, e.rows); got != refCanon {
					t.Errorf("%s rows differ from %s:\n%s\nvs\n%s", e.mode, ref.mode, got, refCanon)
				}
				if e.revealed != ref.revealed {
					t.Errorf("%s revealed %d pairs, %s revealed %d", e.mode, e.revealed, ref.mode, ref.revealed)
				}
			}
		})
	}
}
