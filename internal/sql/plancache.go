package sql

import (
	"container/list"
	"fmt"
	"strings"

	"repro/internal/engine"
)

// Plan caching. Planning is pure: a compiled Plan depends only on the
// normalized query shape and on the catalog state the planner consults
// (schemas, row statistics, index flags, the worker hint). Compile
// therefore memoizes plans under a canonical rendering of the parsed
// statement, and every catalog mutation that could change a planning
// decision — SetStats, SetNDV, SetIndexed, SetDefaultWorkers,
// SetSemiJoin — clears the cache. Dashboards and EXPLAIN's repeated-query workloads re-plan the
// same handful of shapes between stat syncs; those compiles become a
// map lookup.
//
// A hit returns a shallow copy with Cached set: the slices and
// Selection maps are shared with the cached plan, which is safe because
// executors treat compiled plans as read-only.

// maxCachedPlans bounds the plan cache; least-recently-compiled shapes
// are evicted beyond it.
const maxCachedPlans = 256

type planEntry struct {
	key  string
	plan Plan
}

// canonicalKey renders the normalized shape of a parsed query: folded
// identifiers, source offsets dropped, the EXPLAIN prefix ignored (a
// hit restores the current statement's Explain flag). Two statements
// differing only in case, whitespace or EXPLAIN share one cache slot.
// Join conditions and predicates keep their source order — value order
// flows into the compiled Selections, so reordering here would make a
// hit diverge from a fresh compile.
func canonicalKey(q *JoinQuery) string {
	var b strings.Builder
	// SELECT * and an explicit list plan differently (key-only
	// projections), so the list is part of the shape; "select:*" keeps
	// pre-projection statements on their old slot.
	b.WriteString("select:")
	if q.Select == nil {
		b.WriteByte('*')
	}
	for _, s := range q.Select {
		fmt.Fprintf(&b, "%s.%s,", strings.ToLower(s.Table), strings.ToLower(s.Column))
	}
	b.WriteString(";from:")
	for _, t := range q.Tables {
		b.WriteString(strings.ToLower(t))
		b.WriteByte(',')
	}
	b.WriteString(";on:")
	for _, c := range q.Conds {
		fmt.Fprintf(&b, "%s.%s=%s.%s,",
			strings.ToLower(c.Left.Table), strings.ToLower(c.Left.Column),
			strings.ToLower(c.Right.Table), strings.ToLower(c.Right.Column))
	}
	b.WriteString(";where:")
	for _, p := range q.Predicates {
		fmt.Fprintf(&b, "%s.%s in(", strings.ToLower(p.Table), strings.ToLower(p.Column))
		for _, v := range p.Values {
			fmt.Fprintf(&b, "%q,", v) // values stay case-sensitive
		}
		b.WriteString("),")
	}
	return b.String()
}

// cachedPlan returns a copy of the cached plan for key, or nil.
func (c *Catalog) cachedPlan(key string) *Plan {
	c.planMu.Lock()
	defer c.planMu.Unlock()
	el, ok := c.planByKey[key]
	if !ok {
		return nil
	}
	c.planLRU.MoveToFront(el)
	cp := el.Value.(*planEntry).plan
	return &cp
}

// storePlan caches a freshly compiled plan by value, evicting the
// least-recently-used shape beyond the cache bound.
func (c *Catalog) storePlan(key string, p *Plan) {
	c.planMu.Lock()
	defer c.planMu.Unlock()
	if c.planByKey == nil {
		c.planByKey = make(map[string]*list.Element)
		c.planLRU = list.New()
	}
	if el, ok := c.planByKey[key]; ok {
		el.Value.(*planEntry).plan = *p
		c.planLRU.MoveToFront(el)
		return
	}
	c.planByKey[key] = c.planLRU.PushFront(&planEntry{key: key, plan: *p})
	for c.planLRU.Len() > maxCachedPlans {
		back := c.planLRU.Back()
		delete(c.planByKey, back.Value.(*planEntry).key)
		c.planLRU.Remove(back)
	}
}

// invalidatePlans empties the plan cache; called by every catalog
// mutation that feeds a planning decision.
func (c *Catalog) invalidatePlans() {
	c.planMu.Lock()
	c.planByKey = nil
	c.planLRU = nil
	c.planMu.Unlock()
}

// SetDecryptCacheStats attaches a provider of the server's
// decrypt-result cache statistics — typically
// engine.Server.DecryptCacheStats for in-process catalogs — which
// Compile snapshots onto every plan so EXPLAIN can render the cache's
// hit/miss state alongside the planning decisions.
func (c *Catalog) SetDecryptCacheStats(fn func() engine.DecryptCacheStats) {
	c.decStats = fn
}

// stampDecCache snapshots the decrypt-cache statistics onto a plan.
func (c *Catalog) stampDecCache(p *Plan) {
	if c.decStats == nil {
		return
	}
	st := c.decStats()
	p.DecCache = &st
}
