package sql

import (
	"errors"
	"fmt"
	"io"
	"sort"

	"repro/internal/engine"
)

// SpecFor compiles one pairwise join step of the plan down to the
// engine's executable JoinSpec, deriving the per-step join tokens —
// and, for a prefiltered step, the SSE search-token maps of the
// prefiltered sides — from the client's key material. A side the
// planner left on full scan gets no token map, so its query keywords
// are never revealed to the server without a corresponding speedup.
//
// The resulting spec runs through engine.Server.OpenJoin; wire-mode
// callers use client.Client.ExecutePlan instead, which performs the
// same derivation per step and ships the tokens in JoinRequests.
func (p *Plan) SpecFor(step int, keys *engine.Client) (engine.JoinSpec, error) {
	if step < 0 || step >= len(p.Steps) {
		return engine.JoinSpec{}, fmt.Errorf("sql: plan has no step %d", step)
	}
	st := &p.Steps[step]
	spec := engine.JoinSpec{
		Workers: p.Workers,
		// Key-only projections: a side whose payload the SELECT list
		// never references skips payload shipping and opening entirely.
		SkipPayloadA: st.Left.SkipPayload,
		SkipPayloadB: st.Right.SkipPayload,
	}
	if st.Strategy != Prefiltered {
		q, err := keys.NewQuery(st.Left.Sel, st.Right.Sel)
		if err != nil {
			return engine.JoinSpec{}, err
		}
		spec.Query = q
		return spec, nil
	}
	pq, err := keys.NewPrefilterQuery(st.Left.Sel, st.Right.Sel)
	if err != nil {
		return engine.JoinSpec{}, err
	}
	if !st.Left.Prefilter {
		pq.TokensA = nil
	}
	if !st.Right.Prefilter {
		pq.TokensB = nil
	}
	spec.Prefilter = pq
	return spec, nil
}

// Spec compiles a single-join plan into the engine's JoinSpec — the
// pre-operator-tree entry point, kept for two-table callers. Multi-join
// plans must run through Execute (or client.Client.ExecutePlan), which
// stitches the pairwise steps.
func (p *Plan) Spec(keys *engine.Client) (engine.JoinSpec, error) {
	if len(p.Steps) != 1 {
		return engine.JoinSpec{}, fmt.Errorf("sql: plan joins %d tables in %d steps; use Execute for multi-join plans", len(p.Tables), len(p.Steps))
	}
	return p.SpecFor(0, keys)
}

// StepRow is one decrypted result pair of a pairwise join step: the
// row numbers and opened payloads of the step's left and right tables.
type StepRow struct {
	RowL, RowR         int
	PayloadL, PayloadR []byte
}

// StepStream consumes one pairwise join step's results batch by batch.
// Next returns io.EOF after the final batch, at which point
// RevealedPairs reports the step's sigma(q) size. Close releases a
// stream early; the leakage observed up to that point stays recorded.
type StepStream interface {
	Next() ([]StepRow, error)
	Close()
	RevealedPairs() int
}

// StepInput is the runtime data Execute threads from one drained step
// into the next — the semi-join reduction.
type StepInput struct {
	// CandidatesL restricts the step's left (shared/hub) table to these
	// sorted row ids: exactly the rows the previous step matched, whose
	// identities sigma(q) already revealed to the server. Nil means no
	// restriction (the first step, or a plan with semi-join disabled).
	CandidatesL []int
}

// StepRunner executes one pairwise encrypted join of a compiled plan.
// internal/sql provides the in-process EngineRunner; internal/client
// implements the wire twin over JoinRequest frames. Runners that
// cannot honor in.CandidatesL (e.g. re-attaching pre-submitted jobs)
// may ignore it — the stitch discards non-candidate rows client-side
// either way, so results are identical, just slower.
type StepRunner interface {
	RunStep(p *Plan, step int, in StepInput) (StepStream, error)
}

// ResultRow is one stitched result of an executed plan: per FROM-clause
// table (Plan.Tables order), the server row number and the decrypted
// payload.
type ResultRow struct {
	Rows     []int
	Payloads [][]byte
}

// Execute runs a compiled plan through a StepRunner: the first pairwise
// join streams from the server, and every subsequent step's decrypted
// pairs are stitched into the intermediate client-side on the shared
// table's row identity. emit receives every stitched result row; the
// final step streams, so a single-join plan never materializes its
// result set. The returned count sums the revealed equality pairs
// (sigma) over all executed steps.
//
// If the intermediate result empties before the chain ends, the
// remaining steps are skipped: they could not contribute rows, and not
// running them reveals strictly less to the server.
func Execute(r StepRunner, p *Plan, emit func(ResultRow) error) (revealed int, err error) {
	if len(p.Steps) == 0 {
		return 0, errors.New("sql: plan has no join steps")
	}
	col := make(map[string]int, len(p.Tables))
	for i, t := range p.Tables {
		col[t] = i
	}
	width := len(p.Tables)

	var tuples []ResultRow
	for i := range p.Steps {
		st := &p.Steps[i]
		last := i == len(p.Steps)-1
		li, ri := col[st.Left.Table], col[st.Right.Table]

		// For stitch steps, index the intermediate by the shared (left)
		// table's row number before draining the step.
		var byRow map[int][]int // left row -> tuple positions
		var in StepInput
		if st.Stitch {
			byRow = make(map[int][]int, len(tuples))
			for ti := range tuples {
				k := tuples[ti].Rows[li]
				byRow[k] = append(byRow[k], ti)
			}
			if st.SemiJoin {
				// Semi-join reduction: the keys of byRow are exactly the
				// hub rows the previous step matched — ship them so the
				// runner decrypts only those. Execute already broke out of
				// the loop on an empty intermediate, so the list is never
				// empty here (wire encoding cannot distinguish empty from
				// absent).
				in.CandidatesL = make([]int, 0, len(byRow))
				for k := range byRow {
					in.CandidatesL = append(in.CandidatesL, k)
				}
				sort.Ints(in.CandidatesL)
			}
		}

		stream, err := r.RunStep(p, i, in)
		if err != nil {
			return revealed, err
		}
		var next []ResultRow
		for {
			batch, err := stream.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				stream.Close()
				return revealed, err
			}
			for _, m := range batch {
				if !st.Stitch {
					row := ResultRow{Rows: make([]int, width), Payloads: make([][]byte, width)}
					for j := range row.Rows {
						row.Rows[j] = -1
					}
					row.Rows[li], row.Payloads[li] = m.RowL, m.PayloadL
					row.Rows[ri], row.Payloads[ri] = m.RowR, m.PayloadR
					if err := emitOrCollect(emit, &next, row, last); err != nil {
						stream.Close()
						return revealed, err
					}
					continue
				}
				for _, ti := range byRow[m.RowL] {
					t := tuples[ti]
					row := ResultRow{
						Rows:     append([]int(nil), t.Rows...),
						Payloads: append([][]byte(nil), t.Payloads...),
					}
					row.Rows[ri], row.Payloads[ri] = m.RowR, m.PayloadR
					if err := emitOrCollect(emit, &next, row, last); err != nil {
						stream.Close()
						return revealed, err
					}
				}
			}
		}
		revealed += stream.RevealedPairs()
		tuples = next
		if !last && len(tuples) == 0 {
			break
		}
	}
	return revealed, nil
}

// emitOrCollect routes one stitched row: the final step emits directly
// (streaming), earlier steps collect the intermediate.
func emitOrCollect(emit func(ResultRow) error, next *[]ResultRow, row ResultRow, last bool) error {
	if last {
		return emit(row)
	}
	*next = append(*next, row)
	return nil
}

// EngineRunner executes plan steps against an in-process engine,
// opening result payloads with the client's keys so the emitted rows
// match what wire-mode execution delivers.
type EngineRunner struct {
	Eng  *engine.Server
	Keys *engine.Client
	// Batch bounds probe-side rows per stream batch (0 = engine
	// default).
	Batch int
}

// RunStep compiles one step and opens its engine JoinStream.
func (r EngineRunner) RunStep(p *Plan, step int, in StepInput) (StepStream, error) {
	spec, err := p.SpecFor(step, r.Keys)
	if err != nil {
		return nil, err
	}
	spec.Batch = r.Batch
	spec.CandidatesA = in.CandidatesL
	st := &p.Steps[step]
	js, err := r.Eng.OpenJoin(st.Left.Table, st.Right.Table, spec)
	if err != nil {
		return nil, err
	}
	return &engineStepStream{js: js, keys: r.Keys}, nil
}

// engineStepStream adapts engine.JoinStream to StepStream, decrypting
// payloads as batches arrive.
type engineStepStream struct {
	js   *engine.JoinStream
	keys *engine.Client
}

func (s *engineStepStream) Next() ([]StepRow, error) {
	rows, err := s.js.Next()
	if err != nil {
		return nil, err
	}
	out := make([]StepRow, len(rows))
	for i, r := range rows {
		// A side executed key-only has no payload to open (nil from the
		// engine's SkipPayload flags); its result column stays nil.
		var pl, pr []byte
		if len(r.PayloadA) > 0 {
			if pl, err = s.keys.OpenPayload(r.PayloadA); err != nil {
				return nil, fmt.Errorf("sql: opening payload of %d: %w", r.RowA, err)
			}
		}
		if len(r.PayloadB) > 0 {
			if pr, err = s.keys.OpenPayload(r.PayloadB); err != nil {
				return nil, fmt.Errorf("sql: opening payload of %d: %w", r.RowB, err)
			}
		}
		out[i] = StepRow{RowL: r.RowA, RowR: r.RowB, PayloadL: pl, PayloadR: pr}
	}
	return out, nil
}

func (s *engineStepStream) Close()             { s.js.Close() }
func (s *engineStepStream) RevealedPairs() int { return s.js.RevealedPairs() }
