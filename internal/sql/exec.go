package sql

import (
	"repro/internal/engine"
)

// Spec compiles the plan all the way down to the engine's executable
// JoinSpec, deriving the per-query join tokens — and, for a prefiltered
// plan, the SSE search-token maps of the prefiltered sides — from the
// client's key material. A side the planner left on full scan gets no
// token map, so its query keywords are never revealed to the server
// without a corresponding speedup.
//
// The resulting spec runs through engine.Server.OpenJoin; wire-mode
// callers use client.Client.JoinPlan instead, which performs the same
// derivation and ships the tokens in a JoinRequest.
func (p *Plan) Spec(keys *engine.Client) (engine.JoinSpec, error) {
	spec := engine.JoinSpec{Workers: p.Workers}
	if p.Strategy != Prefiltered {
		q, err := keys.NewQuery(p.SelA, p.SelB)
		if err != nil {
			return engine.JoinSpec{}, err
		}
		spec.Query = q
		return spec, nil
	}
	pq, err := keys.NewPrefilterQuery(p.SelA, p.SelB)
	if err != nil {
		return engine.JoinSpec{}, err
	}
	if !p.SideA.Prefilter {
		pq.TokensA = nil
	}
	if !p.SideB.Prefilter {
		pq.TokensB = nil
	}
	spec.Prefilter = pq
	return spec, nil
}
