package sql

import (
	"fmt"
	"strings"

	"repro/internal/securejoin"
)

// TableSchema declares how a named table maps onto the Secure Join row
// layout: which column is the join column and, for each filterable
// column, its attribute index in the encrypted vector.
type TableSchema struct {
	Name string
	// JoinColumn is the column encrypted as the row's join value.
	JoinColumn string
	// Attrs maps filterable column names to their attribute index
	// (0 <= index < Params.M).
	Attrs map[string]int
}

// Catalog is the set of known table schemas, keyed case-insensitively.
type Catalog struct {
	tables map[string]TableSchema
}

// NewCatalog builds a catalog from schemas, rejecting duplicates.
func NewCatalog(schemas ...TableSchema) (*Catalog, error) {
	c := &Catalog{tables: make(map[string]TableSchema, len(schemas))}
	for _, s := range schemas {
		key := strings.ToLower(s.Name)
		if _, dup := c.tables[key]; dup {
			return nil, fmt.Errorf("sql: duplicate table %q in catalog", s.Name)
		}
		if s.JoinColumn == "" {
			return nil, fmt.Errorf("sql: table %q has no join column", s.Name)
		}
		c.tables[key] = s
	}
	return c, nil
}

// Schema looks up a table schema by name.
func (c *Catalog) Schema(name string) (TableSchema, error) {
	s, ok := c.tables[strings.ToLower(name)]
	if !ok {
		return TableSchema{}, fmt.Errorf("sql: unknown table %q", name)
	}
	return s, nil
}

// Plan is a validated, executable query: the two table names and the
// Selection predicate for each side.
type Plan struct {
	TableA, TableB string
	SelA, SelB     securejoin.Selection
}

// PlanQuery validates a parsed query against the catalog and compiles
// the WHERE clause into per-table Selections. Multiple predicates on the
// same column merge into one IN clause.
func (c *Catalog) PlanQuery(q *JoinQuery) (*Plan, error) {
	sa, err := c.Schema(q.TableA)
	if err != nil {
		return nil, err
	}
	sb, err := c.Schema(q.TableB)
	if err != nil {
		return nil, err
	}
	if !strings.EqualFold(q.OnA, sa.JoinColumn) {
		return nil, fmt.Errorf("sql: table %q can only join on its encrypted join column %q, not %q",
			sa.Name, sa.JoinColumn, q.OnA)
	}
	if !strings.EqualFold(q.OnB, sb.JoinColumn) {
		return nil, fmt.Errorf("sql: table %q can only join on its encrypted join column %q, not %q",
			sb.Name, sb.JoinColumn, q.OnB)
	}

	plan := &Plan{
		TableA: sa.Name, TableB: sb.Name,
		SelA: securejoin.Selection{}, SelB: securejoin.Selection{},
	}
	for _, p := range q.Predicates {
		var schema TableSchema
		var sel securejoin.Selection
		switch {
		case strings.EqualFold(p.Table, q.TableA):
			schema, sel = sa, plan.SelA
		case strings.EqualFold(p.Table, q.TableB):
			schema, sel = sb, plan.SelB
		default:
			return nil, fmt.Errorf("sql: predicate references table %q, which is not part of the join", p.Table)
		}
		idx, err := attrIndex(schema, p.Column)
		if err != nil {
			return nil, err
		}
		for _, v := range p.Values {
			sel[idx] = append(sel[idx], []byte(v))
		}
	}
	return plan, nil
}

// Compile parses and plans in one step.
func (c *Catalog) Compile(query string) (*Plan, error) {
	q, err := Parse(query)
	if err != nil {
		return nil, err
	}
	return c.PlanQuery(q)
}

func attrIndex(s TableSchema, column string) (int, error) {
	for name, idx := range s.Attrs {
		if strings.EqualFold(name, column) {
			return idx, nil
		}
	}
	if strings.EqualFold(column, s.JoinColumn) {
		return 0, fmt.Errorf("sql: column %q of table %q is the join column; it cannot carry a WHERE predicate", column, s.Name)
	}
	return 0, fmt.Errorf("sql: table %q has no filterable column %q", s.Name, column)
}
