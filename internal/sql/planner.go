package sql

import (
	"container/list"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"repro/internal/engine"
	"repro/internal/securejoin"
)

// TableSchema declares how a named table maps onto the Secure Join row
// layout: which column is the join column and, for each filterable
// column, its attribute index in the encrypted vector.
type TableSchema struct {
	Name string
	// JoinColumn is the column encrypted as the row's join value.
	JoinColumn string
	// Attrs maps filterable column names to their attribute index
	// (0 <= index < Params.M).
	Attrs map[string]int
	// Indexed records whether the table was uploaded with an SSE
	// pre-filter index. The planner chooses prefiltered execution for a
	// side only when its table is indexed. It is catalog metadata, not
	// ground truth: feed it from engine.Server.TableStats in process or
	// from client.DescribeTables over the wire (see Catalog.SetStats).
	Indexed bool
	// RowCount is the table's last known row count, the statistic the
	// planner's join ordering and prefilter thresholds consult. 0 means
	// unknown: ordering falls back to declaration order and any
	// predicate is treated as selective. Sync it alongside Indexed from
	// engine.Server.TableStats or client.DescribeTables.
	RowCount int
	// NDV is the table's distinct-join-value count (0 = unknown),
	// computed client-side at encrypt time and echoed by
	// TableStats/Describe. When present, the planner replaces the fixed
	// defaultEqSelectivity guess with a per-value selectivity of 1/NDV —
	// an approximation (the count is over the join column, predicates
	// are over attributes), but one anchored to the table's real value
	// diversity instead of a constant.
	NDV int
}

// Catalog is the set of known table schemas, keyed case-insensitively.
type Catalog struct {
	tables map[string]TableSchema
	// workers is the SJ.Dec worker hint stamped onto every plan;
	// 0 keeps the engine default.
	workers int
	// met records planner decisions; nil-safe no-op until Instrument.
	met sqlMetrics
	// noSemiJoin disables the semi-join reduction on stitch steps
	// (stored inverted so the zero-value catalog keeps it on — the
	// reduction is leakage-neutral and strictly cheaper). See
	// SetSemiJoin.
	noSemiJoin bool

	// Plan cache (see plancache.go): compiled plans keyed by normalized
	// query shape, cleared whenever a catalog mutation could change a
	// planning decision. planMu guards both structures.
	planMu    sync.Mutex
	planByKey map[string]*list.Element
	planLRU   *list.List
	// decStats, when set, supplies decrypt-cache statistics that
	// Compile stamps onto plans for EXPLAIN.
	decStats func() engine.DecryptCacheStats
}

// NewCatalog builds a catalog from schemas, rejecting duplicates and
// column names that collide case-insensitively — column resolution is
// case-insensitive, so a schema with both "Role" and "role" would make
// predicate compilation ambiguous.
func NewCatalog(schemas ...TableSchema) (*Catalog, error) {
	c := &Catalog{tables: make(map[string]TableSchema, len(schemas))}
	for _, s := range schemas {
		key := strings.ToLower(s.Name)
		if _, dup := c.tables[key]; dup {
			return nil, fmt.Errorf("sql: duplicate table %q in catalog", s.Name)
		}
		if s.JoinColumn == "" {
			return nil, fmt.Errorf("sql: table %q has no join column", s.Name)
		}
		if s.RowCount < 0 {
			return nil, fmt.Errorf("sql: table %q has negative row count %d", s.Name, s.RowCount)
		}
		seen := make(map[string]string, len(s.Attrs)+1)
		seen[strings.ToLower(s.JoinColumn)] = s.JoinColumn
		seenIdx := make(map[int]string, len(s.Attrs))
		for name, idx := range s.Attrs {
			if idx < 0 {
				return nil, fmt.Errorf("sql: table %q: column %q has negative attribute index %d", s.Name, name, idx)
			}
			folded := strings.ToLower(name)
			if prev, dup := seen[folded]; dup {
				return nil, fmt.Errorf("sql: table %q: columns %q and %q collide case-insensitively", s.Name, prev, name)
			}
			seen[folded] = name
			// Two columns on one attribute slot would merge their AND'ed
			// predicates into a single IN clause — a conjunction silently
			// executed as a disjunction.
			if prev, dup := seenIdx[idx]; dup {
				return nil, fmt.Errorf("sql: table %q: columns %q and %q share attribute index %d", s.Name, prev, name, idx)
			}
			seenIdx[idx] = name
		}
		c.tables[key] = s
	}
	return c, nil
}

// SetDefaultWorkers sets the SJ.Dec worker hint stamped onto every
// subsequent plan (0 = engine default, the initial value).
func (c *Catalog) SetDefaultWorkers(n int) {
	if n < 0 {
		n = 0
	}
	c.workers = n
	c.invalidatePlans()
}

// SetIndexed records whether a table carries an SSE pre-filter index,
// enabling the planner's automatic fast path. It returns an error for
// tables the catalog does not know (callers syncing from a server that
// holds extra tables can ignore it).
func (c *Catalog) SetIndexed(name string, indexed bool) error {
	key := strings.ToLower(name)
	s, ok := c.tables[key]
	if !ok {
		return fmt.Errorf("sql: unknown table %q", name)
	}
	s.Indexed = indexed
	c.tables[key] = s
	c.invalidatePlans()
	return nil
}

// SetStats records a table's execution statistics: its row count and
// whether it carries an SSE pre-filter index. The planner consults both
// for join ordering (small tables first) and for the prefilter
// threshold (estimated candidates must beat a full scan). rows <= 0
// marks the count unknown.
func (c *Catalog) SetStats(name string, rows int, indexed bool) error {
	key := strings.ToLower(name)
	s, ok := c.tables[key]
	if !ok {
		return fmt.Errorf("sql: unknown table %q", name)
	}
	if rows < 0 {
		rows = 0
	}
	s.RowCount = rows
	s.Indexed = indexed
	c.tables[key] = s
	c.invalidatePlans()
	return nil
}

// SetNDV records a table's distinct-join-value count, the statistic
// that replaces the fixed per-value selectivity guess with 1/NDV (see
// TableSchema.NDV). ndv <= 0 marks the count unknown. Kept separate
// from SetStats so existing callers syncing rows+indexed keep their
// signature.
func (c *Catalog) SetNDV(name string, ndv int) error {
	key := strings.ToLower(name)
	s, ok := c.tables[key]
	if !ok {
		return fmt.Errorf("sql: unknown table %q", name)
	}
	if ndv < 0 {
		ndv = 0
	}
	s.NDV = ndv
	c.tables[key] = s
	c.invalidatePlans()
	return nil
}

// SetSemiJoin toggles the semi-join reduction: when on (the default),
// every stitch step ships the hub rows matched by the previous step as
// an explicit candidate list, so the server decrypts only those rows.
// The list is a subset of the pairs sigma(q) already revealed, so the
// reduction is leakage-neutral; turning it off reproduces the full
// re-decryption behavior (useful for ablation benchmarks).
func (c *Catalog) SetSemiJoin(enabled bool) {
	c.noSemiJoin = !enabled
	c.invalidatePlans()
}

// TableNames lists the catalog's declared table names, sorted.
func (c *Catalog) TableNames() []string {
	out := make([]string, 0, len(c.tables))
	for _, s := range c.tables {
		out = append(out, s.Name)
	}
	sort.Strings(out)
	return out
}

// Schema looks up a table schema by name.
func (c *Catalog) Schema(name string) (TableSchema, error) {
	s, ok := c.tables[strings.ToLower(name)]
	if !ok {
		return TableSchema{}, fmt.Errorf("sql: unknown table %q", name)
	}
	return s, nil
}

// Strategy is the execution strategy a plan (or one of its pairwise
// join steps) selected.
type Strategy int

const (
	// FullScan runs SJ.Dec over every row of both tables — the paper's
	// exact leakage profile (Theorem 5.2).
	FullScan Strategy = iota
	// Prefiltered resolves WHERE predicates through SSE indexes first
	// (Section 4.3), paying SJ.Dec only for candidate rows on the
	// prefiltered sides. Costs per-attribute access-pattern leakage.
	Prefiltered
)

func (s Strategy) String() string {
	if s == Prefiltered {
		return "prefiltered"
	}
	return "full scan"
}

// defaultEqSelectivity is the fraction of a table's rows one predicate
// value is assumed to match when no histogram exists: an equality
// selects ~10% of the rows, an IN clause with k values ~k*10% (capped
// at the whole table), and conjuncts on different columns multiply.
// Deliberately pessimistic — with real row counts it only has to
// separate "worth an index probe" from "touches everything anyway".
const defaultEqSelectivity = 0.1

// PredSummary describes the compiled predicates of one column: the
// schema-declared column name and the number of IN-clause values after
// merging same-column conjuncts. One SSE search token is issued per
// value when the side is prefiltered.
type PredSummary struct {
	Column string
	Values int
}

// SidePlan is the per-table leaf of a plan tree — a Scan with an
// optional Prefilter on top: which table is read, the statistics the
// decision consulted, whether the side will be pre-filtered through
// its SSE index, and why not if it won't.
type SidePlan struct {
	Table   string
	Indexed bool
	// RowCount is the catalog's row count for the table (0 = unknown).
	RowCount int
	// EstRows is the estimated number of rows surviving the side's
	// predicates under the default selectivity model; -1 when RowCount
	// is unknown.
	EstRows int
	// Preds lists the side's compiled predicates in deterministic
	// (sorted-by-column) order.
	Preds []PredSummary
	// Sel is the side's compiled Selection, enforced cryptographically
	// by the join tokens of every step the table participates in.
	Sel securejoin.Selection
	// Prefilter is true when this side's predicates are resolved
	// through the table's SSE index before SJ.Dec.
	Prefilter bool
	// Reason explains a full-scan decision for this side; empty when
	// Prefilter is true.
	Reason string
	// SkipPayload marks a key-only side: the SELECT list never
	// references the table's payload (or, for the left side of a stitch
	// step, the stitcher takes the payload from the intermediate), so
	// the step skips sealed-payload shipping and decryption for it
	// entirely. Strictly leakage-reducing — the server learns only that
	// fewer ciphertexts left the building.
	SkipPayload bool
}

// Tokens is the number of SSE search tokens a prefiltered execution
// derives for this side (one per predicate value).
func (sp *SidePlan) Tokens() int {
	n := 0
	for _, p := range sp.Preds {
		n += p.Values
	}
	return n
}

// weight is the side's estimated effective row count, the quantity the
// join ordering minimizes. Unknown statistics weigh MaxInt so known
// tables sort first and ties fall back to declaration order.
func (sp *SidePlan) weight() int {
	if sp.EstRows >= 0 {
		return sp.EstRows
	}
	if sp.RowCount > 0 {
		return sp.RowCount
	}
	return math.MaxInt
}

// JoinStep is one pairwise encrypted join of a left-deep plan: Left and
// Right are its Scan/Prefilter leaves, Strategy is Prefiltered when
// either side resolves predicates through its SSE index. For every step
// after the first, Stitch is true and Left names a table that is
// already part of the intermediate result: the step still executes as a
// complete pairwise encrypted join on the server, and the client
// stitches its decrypted pairs into the intermediate on Left's row
// identity (bind-join style — no join keys or candidate lists are ever
// sent back to the server).
type JoinStep struct {
	Left, Right SidePlan
	Strategy    Strategy
	Stitch      bool
	// SemiJoin marks a stitch step that ships the hub rows matched by
	// the previous step as an explicit candidate list, so SJ.Dec runs
	// only over rows sigma(q) already revealed (leakage-neutral: the
	// list is a subset of the prior step's revealed pairs). Off when
	// the catalog disabled the reduction (Catalog.SetSemiJoin).
	SemiJoin bool
}

// Plan is a validated, executable query: the left-deep chain of
// pairwise encrypted joins the planner chose, each side's Selection and
// prefilter decision, and the order statistics drove. Selections are
// always enforced cryptographically by the join tokens; per-side
// Prefilter only decides whether SSE pre-filtering additionally narrows
// the rows SJ.Dec touches. SpecFor compiles one step into the engine's
// JoinSpec and Execute runs the whole tree (see exec.go).
//
// For compatibility with two-table callers, the fields of the first
// step are mirrored in TableA/TableB, SelA/SelB and SideA/SideB.
type Plan struct {
	// Tables lists the FROM-clause tables in declaration order — the
	// result column order of SELECT *.
	Tables []string
	// Steps is the left-deep chain, in execution order.
	Steps []JoinStep
	// OrderReason says what drove the join order: row statistics or the
	// declaration-order fallback.
	OrderReason string
	// Explain marks an EXPLAIN statement: render Describe() instead of
	// executing.
	Explain bool
	// Strategy is Prefiltered when at least one side of one step
	// pre-filters.
	Strategy Strategy
	// Workers is the SJ.Dec worker hint for the execution
	// (0 = engine/server default).
	Workers int
	// Cached marks a plan served from the catalog's plan cache rather
	// than compiled fresh (see plancache.go).
	Cached bool
	// DecCache optionally carries the server's decrypt-result cache
	// statistics snapshotted at compile time (see
	// Catalog.SetDecryptCacheStats); EXPLAIN renders them.
	DecCache *engine.DecryptCacheStats

	// Two-table projections of Steps[0], kept so existing single-join
	// callers (and the pre-plan client APIs) keep working unchanged.
	TableA, TableB string
	SelA, SelB     securejoin.Selection
	SideA, SideB   SidePlan
}

// PlanQuery validates a parsed query against the catalog and compiles
// the WHERE clause into per-table Selections. Multiple predicates on
// the same column merge into one IN clause. The planner then builds a
// left-deep chain of pairwise encrypted joins: the join order is chosen
// from catalog row counts and estimated predicate selectivity (smallest
// estimated sides first; declaration order when statistics are
// missing), and each side is pre-filtered only when it carries
// predicates, its table has an SSE index, and the estimated candidate
// set is smaller than the table (row-count-aware threshold).
func (c *Catalog) PlanQuery(q *JoinQuery) (*Plan, error) {
	if len(q.Tables) < 2 {
		return nil, fmt.Errorf("sql: a join query names at least two tables")
	}
	// Resolve the FROM tables to schemas and build one side plan per
	// table; canonical schema names are used everywhere downstream.
	schemas := make([]TableSchema, len(q.Tables))
	sides := make([]*SidePlan, len(q.Tables))
	byName := make(map[string]int, len(q.Tables)) // folded name -> table position
	tables := make([]string, len(q.Tables))
	for i, name := range q.Tables {
		s, err := c.Schema(name)
		if err != nil {
			return nil, err
		}
		schemas[i] = s
		tables[i] = s.Name
		byName[strings.ToLower(s.Name)] = i
		sides[i] = &SidePlan{
			Table: s.Name, Indexed: s.Indexed, RowCount: s.RowCount,
			Sel: securejoin.Selection{},
		}
	}

	// Join conditions: each side of a condition must reference a FROM
	// table on its encrypted join column; the conditions form the edges
	// of the join graph the ordering walks.
	type edge struct{ a, b int }
	edges := make([]edge, 0, len(q.Conds))
	for _, cond := range q.Conds {
		ia, err := resolveJoinSide(cond.Left, cond.Pos, schemas, byName)
		if err != nil {
			return nil, err
		}
		ib, err := resolveJoinSide(cond.Right, cond.Pos, schemas, byName)
		if err != nil {
			return nil, err
		}
		if ia == ib {
			return nil, fmt.Errorf("sql: join condition at offset %d relates table %q to itself", cond.Pos, schemas[ia].Name)
		}
		edges = append(edges, edge{ia, ib})
	}

	// Predicates compile into per-table selections; same-column
	// conjuncts merge into one IN clause.
	counts := make([]map[string]int, len(sides))
	for i := range counts {
		counts[i] = make(map[string]int)
	}
	for _, p := range q.Predicates {
		i, ok := byName[strings.ToLower(p.Table)]
		if !ok {
			return nil, fmt.Errorf("sql: predicate references table %q, which is not part of the join (offset %d)", p.Table, p.Pos)
		}
		name, idx, err := resolveAttr(schemas[i], p.Column)
		if err != nil {
			return nil, err
		}
		for _, v := range p.Values {
			sides[i].Sel[idx] = append(sides[i].Sel[idx], []byte(v))
			counts[i][name]++
		}
	}
	for i, sp := range sides {
		sp.Preds = predSummaries(counts[i])
		sp.EstRows = estimateRows(sp.RowCount, schemas[i].NDV, sp.Preds)
		chooseSide(sp)
	}

	// Key-only projections: with an explicit SELECT list, a table whose
	// non-join columns are never referenced ships no payloads at all.
	// SELECT * (nil list) keeps every payload, the legacy behavior.
	if q.Select != nil {
		needPayload := make([]bool, len(sides))
		for _, ref := range q.Select {
			i, ok := byName[strings.ToLower(ref.Table)]
			if !ok {
				return nil, fmt.Errorf("sql: SELECT references table %q, which is not part of the join (offset %d)", ref.Table, ref.Pos)
			}
			if strings.EqualFold(ref.Column, schemas[i].JoinColumn) {
				continue // key reference: row identity only, no payload
			}
			if _, _, err := resolveAttr(schemas[i], ref.Column); err != nil {
				return nil, err
			}
			needPayload[i] = true
		}
		for i, sp := range sides {
			sp.SkipPayload = !needPayload[i]
		}
	}

	// Adjacency over the join graph. Every table sharing an edge with a
	// table is a potential stitch partner; the ordering below picks the
	// lightest connected table next, so star and chain shapes both
	// compile to a left-deep sequence of pairwise joins.
	adj := make([][]int, len(sides))
	for _, e := range edges {
		adj[e.a] = append(adj[e.a], e.b)
		adj[e.b] = append(adj[e.b], e.a)
	}

	order, partners, reason, err := chooseOrder(sides, adj)
	if err != nil {
		return nil, err
	}

	plan := &Plan{
		Tables:      tables,
		OrderReason: reason,
		Explain:     q.Explain,
		Workers:     c.workers,
	}
	for n := 1; n < len(order); n++ {
		left, right := sides[partners[n]], sides[order[n]]
		step := JoinStep{Left: *left, Right: *right, Stitch: n > 1}
		if step.Stitch {
			step.SemiJoin = !c.noSemiJoin
			// The stitcher always takes the hub's payload from the
			// intermediate the earlier steps built, never from this
			// step's pairs — the left payload of a stitch step is dead
			// weight regardless of the SELECT list.
			step.Left.SkipPayload = true
		}
		if left.Prefilter || right.Prefilter {
			step.Strategy = Prefiltered
		}
		plan.Steps = append(plan.Steps, step)
		if step.Strategy == Prefiltered {
			plan.Strategy = Prefiltered
		}
	}

	// Legacy two-table projection of the first step.
	first := plan.Steps[0]
	plan.TableA, plan.TableB = first.Left.Table, first.Right.Table
	plan.SelA, plan.SelB = first.Left.Sel, first.Right.Sel
	plan.SideA, plan.SideB = first.Left, first.Right
	c.met.record(plan, sides)
	return plan, nil
}

// resolveJoinSide maps one side of a join condition onto its FROM-table
// position, enforcing that the referenced column is the table's
// encrypted join column — the only column Secure Join can equate.
func resolveJoinSide(ref ColRef, pos int, schemas []TableSchema, byName map[string]int) (int, error) {
	i, ok := byName[strings.ToLower(ref.Table)]
	if !ok {
		return 0, fmt.Errorf("sql: join condition references table %q, which is not part of the join (offset %d)", ref.Table, pos)
	}
	if !strings.EqualFold(ref.Column, schemas[i].JoinColumn) {
		return 0, fmt.Errorf("sql: table %q can only join on its encrypted join column %q, not %q (offset %d)",
			schemas[i].Name, schemas[i].JoinColumn, ref.Column, pos)
	}
	return i, nil
}

// chooseOrder picks the left-deep join order and, for every table after
// the first, its partner — the already-joined table the pairwise join
// pairs it with (the build side, and the stitch table from the second
// step on). The lightest table (by estimated effective rows) starts the
// chain, each subsequent pick is the lightest remaining table connected
// to the joined set, and its partner is its lightest already-joined
// neighbor, so the build side of every pairwise join stays as small as
// the statistics allow. With no row statistics every weight ties and
// the walk degrades to declaration order, which is also the
// deterministic tie-break. A two-table query always keeps its declared
// side order: the pre-tree APIs expose side A/B directly (JoinedRow,
// client.JoinPlan), so reordering them would flip user-visible columns
// without reducing any work — both sides of a single pairwise join are
// decrypted either way.
func chooseOrder(sides []*SidePlan, adj [][]int) (order, partners []int, reason string, err error) {
	n := len(sides)
	known := 0
	for _, sp := range sides {
		if sp.RowCount > 0 {
			known++
		}
	}
	better := betterSide(sides)
	start := -1
	for i := 0; i < n; i++ {
		if len(adj[i]) == 0 {
			return nil, nil, "", fmt.Errorf("sql: table %q has no join condition relating it to the other tables", sides[i].Table)
		}
		if better(i, start) {
			start = i
		}
	}
	switch known {
	case n:
		reason = "row statistics (smallest estimated sides first)"
	case 0:
		reason = "declaration order (row statistics missing)"
	default:
		// Connectivity can still force a stats-less table early, so this
		// only claims what is true: known weights were used where the
		// graph allowed.
		reason = "partial row statistics (known sides weighed, unknown heaviest)"
	}
	if n == 2 {
		return []int{0, 1}, []int{-1, 0}, "declared side order (two-table plan)", nil
	}
	order, partners = []int{start}, []int{-1}
	joined := map[int]bool{start: true}
	for len(order) < n {
		next := -1
		for i := 0; i < n; i++ {
			if joined[i] {
				continue
			}
			connected := false
			for _, nb := range adj[i] {
				if joined[nb] {
					connected = true
					break
				}
			}
			if connected && better(i, next) {
				next = i
			}
		}
		if next == -1 {
			// Disconnected join graph: name one stranded table.
			for i := 0; i < n; i++ {
				if !joined[i] {
					return nil, nil, "", fmt.Errorf("sql: table %q is not connected to the rest of the join (missing join condition)", sides[i].Table)
				}
			}
		}
		partner := -1
		for _, nb := range adj[next] {
			if joined[nb] && better(nb, partner) {
				partner = nb
			}
		}
		order, partners = append(order, next), append(partners, partner)
		joined[next] = true
	}
	return order, partners, reason, nil
}

// betterSide builds the one ordering comparator both the chain walk
// and the stitch-partner choice use: i is preferred over j (j == -1
// means "no candidate yet") when its estimated weight is strictly
// smaller — unknown statistics weigh heaviest — with declaration order
// as the tie-break, so with no statistics at all the walk reproduces
// the FROM clause.
func betterSide(sides []*SidePlan) func(i, j int) bool {
	return func(i, j int) bool {
		if j == -1 {
			return true
		}
		if wi, wj := sides[i].weight(), sides[j].weight(); wi != wj {
			return wi < wj
		}
		return i < j
	}
}

// estimateRows applies the selectivity model: rows surviving the
// side's predicates, assuming each predicate value matches a fraction
// 1/NDV of the table when the distinct-value count is known and
// defaultEqSelectivity otherwise, with different columns independent.
// Returns -1 when the row count is unknown.
func estimateRows(rowCount, ndv int, preds []PredSummary) int {
	if rowCount <= 0 {
		return -1
	}
	perValue := defaultEqSelectivity
	if ndv > 0 {
		perValue = 1 / float64(ndv)
	}
	frac := 1.0
	for _, p := range preds {
		f := float64(p.Values) * perValue
		if f > 1 {
			f = 1
		}
		frac *= f
	}
	est := int(math.Ceil(float64(rowCount) * frac))
	if est > rowCount {
		est = rowCount
	}
	return est
}

// chooseSide applies the per-side plan-selection rule: pre-filter iff
// the side has predicates, its table carries an SSE index, and — when
// the catalog knows the row count — the estimated candidate set is
// actually smaller than the table. Without statistics any predicate
// counts as selective, the pre-statistics behavior.
func chooseSide(sp *SidePlan) {
	switch {
	case len(sp.Preds) == 0:
		sp.Reason = "no WHERE predicates"
	case !sp.Indexed:
		sp.Reason = "no SSE index"
	case sp.EstRows >= 0 && sp.EstRows >= sp.RowCount:
		sp.Reason = fmt.Sprintf("predicates not selective (est. %d of %d rows)", sp.EstRows, sp.RowCount)
	default:
		sp.Prefilter = true
	}
}

// predSummaries renders per-column value counts in sorted column order,
// so plans (and their EXPLAIN output) are deterministic.
func predSummaries(counts map[string]int) []PredSummary {
	if len(counts) == 0 {
		return nil
	}
	out := make([]PredSummary, 0, len(counts))
	for col, n := range counts {
		out = append(out, PredSummary{Column: col, Values: n})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Column < out[j].Column })
	return out
}

// Compile parses and plans in one step, memoizing compiled plans by
// normalized query shape (see plancache.go): re-compiling an unchanged
// statement against an unchanged catalog returns a cached copy with
// Cached set, skipping planning entirely. Catalog mutations (SetStats,
// SetIndexed, SetDefaultWorkers) invalidate the cache.
func (c *Catalog) Compile(query string) (*Plan, error) {
	q, err := Parse(query)
	if err != nil {
		return nil, err
	}
	key := canonicalKey(q)
	if p := c.cachedPlan(key); p != nil {
		p.Cached = true
		p.Explain = q.Explain // EXPLAIN and its bare statement share a slot
		c.stampDecCache(p)
		c.met.planCacheHits.Inc()
		return p, nil
	}
	c.met.planCacheMisses.Inc()
	p, err := c.PlanQuery(q)
	if err != nil {
		return nil, err
	}
	c.storePlan(key, p)
	c.stampDecCache(p)
	return p, nil
}

// resolveAttr maps a query column name onto the schema's declared name
// and attribute index. Candidate columns are scanned in sorted order,
// so resolution — and with it predicate compilation and error
// reporting — is deterministic even for schemas that bypassed
// NewCatalog's collision check.
func resolveAttr(s TableSchema, column string) (string, int, error) {
	names := make([]string, 0, len(s.Attrs))
	for name := range s.Attrs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if strings.EqualFold(name, column) {
			return name, s.Attrs[name], nil
		}
	}
	if strings.EqualFold(column, s.JoinColumn) {
		return "", 0, fmt.Errorf("sql: column %q of table %q is the join column; it cannot carry a WHERE predicate", column, s.Name)
	}
	return "", 0, fmt.Errorf("sql: table %q has no filterable column %q", s.Name, column)
}
