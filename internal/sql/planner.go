package sql

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/securejoin"
)

// TableSchema declares how a named table maps onto the Secure Join row
// layout: which column is the join column and, for each filterable
// column, its attribute index in the encrypted vector.
type TableSchema struct {
	Name string
	// JoinColumn is the column encrypted as the row's join value.
	JoinColumn string
	// Attrs maps filterable column names to their attribute index
	// (0 <= index < Params.M).
	Attrs map[string]int
	// Indexed records whether the table was uploaded with an SSE
	// pre-filter index. The planner chooses prefiltered execution for a
	// side only when its table is indexed. It is catalog metadata, not
	// ground truth: feed it from engine.Server.TableStats in process or
	// from client.DescribeTables over the wire (see Catalog.SetIndexed).
	Indexed bool
}

// Catalog is the set of known table schemas, keyed case-insensitively.
type Catalog struct {
	tables map[string]TableSchema
	// workers is the SJ.Dec worker hint stamped onto every plan;
	// 0 keeps the engine default.
	workers int
}

// NewCatalog builds a catalog from schemas, rejecting duplicates and
// column names that collide case-insensitively — column resolution is
// case-insensitive, so a schema with both "Role" and "role" would make
// predicate compilation ambiguous.
func NewCatalog(schemas ...TableSchema) (*Catalog, error) {
	c := &Catalog{tables: make(map[string]TableSchema, len(schemas))}
	for _, s := range schemas {
		key := strings.ToLower(s.Name)
		if _, dup := c.tables[key]; dup {
			return nil, fmt.Errorf("sql: duplicate table %q in catalog", s.Name)
		}
		if s.JoinColumn == "" {
			return nil, fmt.Errorf("sql: table %q has no join column", s.Name)
		}
		seen := make(map[string]string, len(s.Attrs)+1)
		seen[strings.ToLower(s.JoinColumn)] = s.JoinColumn
		seenIdx := make(map[int]string, len(s.Attrs))
		for name, idx := range s.Attrs {
			if idx < 0 {
				return nil, fmt.Errorf("sql: table %q: column %q has negative attribute index %d", s.Name, name, idx)
			}
			folded := strings.ToLower(name)
			if prev, dup := seen[folded]; dup {
				return nil, fmt.Errorf("sql: table %q: columns %q and %q collide case-insensitively", s.Name, prev, name)
			}
			seen[folded] = name
			// Two columns on one attribute slot would merge their AND'ed
			// predicates into a single IN clause — a conjunction silently
			// executed as a disjunction.
			if prev, dup := seenIdx[idx]; dup {
				return nil, fmt.Errorf("sql: table %q: columns %q and %q share attribute index %d", s.Name, prev, name, idx)
			}
			seenIdx[idx] = name
		}
		c.tables[key] = s
	}
	return c, nil
}

// SetDefaultWorkers sets the SJ.Dec worker hint stamped onto every
// subsequent plan (0 = engine default, the initial value).
func (c *Catalog) SetDefaultWorkers(n int) {
	if n < 0 {
		n = 0
	}
	c.workers = n
}

// SetIndexed records whether a table carries an SSE pre-filter index,
// enabling the planner's automatic fast path. It returns an error for
// tables the catalog does not know (callers syncing from a server that
// holds extra tables can ignore it).
func (c *Catalog) SetIndexed(name string, indexed bool) error {
	key := strings.ToLower(name)
	s, ok := c.tables[key]
	if !ok {
		return fmt.Errorf("sql: unknown table %q", name)
	}
	s.Indexed = indexed
	c.tables[key] = s
	return nil
}

// TableNames lists the catalog's declared table names, sorted.
func (c *Catalog) TableNames() []string {
	out := make([]string, 0, len(c.tables))
	for _, s := range c.tables {
		out = append(out, s.Name)
	}
	sort.Strings(out)
	return out
}

// Schema looks up a table schema by name.
func (c *Catalog) Schema(name string) (TableSchema, error) {
	s, ok := c.tables[strings.ToLower(name)]
	if !ok {
		return TableSchema{}, fmt.Errorf("sql: unknown table %q", name)
	}
	return s, nil
}

// Strategy is the execution strategy a plan selected.
type Strategy int

const (
	// FullScan runs SJ.Dec over every row of both tables — the paper's
	// exact leakage profile (Theorem 5.2).
	FullScan Strategy = iota
	// Prefiltered resolves WHERE predicates through SSE indexes first
	// (Section 4.3), paying SJ.Dec only for candidate rows on the
	// prefiltered sides. Costs per-attribute access-pattern leakage.
	Prefiltered
)

func (s Strategy) String() string {
	if s == Prefiltered {
		return "prefiltered"
	}
	return "full scan"
}

// PredSummary describes the compiled predicates of one column: the
// schema-declared column name and the number of IN-clause values after
// merging same-column conjuncts. One SSE search token is issued per
// value when the side is prefiltered.
type PredSummary struct {
	Column string
	Values int
}

// SidePlan is the per-table half of a plan: whether the side will be
// pre-filtered through its SSE index, and why not if it won't.
type SidePlan struct {
	Table   string
	Indexed bool
	// Preds lists the side's compiled predicates in deterministic
	// (sorted-by-column) order.
	Preds []PredSummary
	// Prefilter is true when this side's predicates are resolved
	// through the table's SSE index before SJ.Dec.
	Prefilter bool
	// Reason explains a full-scan decision for this side; empty when
	// Prefilter is true.
	Reason string
}

// Tokens is the number of SSE search tokens a prefiltered execution
// derives for this side (one per predicate value).
func (sp *SidePlan) Tokens() int {
	n := 0
	for _, p := range sp.Preds {
		n += p.Values
	}
	return n
}

// Plan is a validated, executable query: the two table names, the
// Selection predicate for each side, and the execution strategy the
// planner chose. Selections are always enforced cryptographically by
// the join tokens; Strategy only decides whether SSE pre-filtering
// additionally narrows the rows SJ.Dec touches. Spec compiles the plan
// into the engine's JoinSpec (see exec.go).
type Plan struct {
	TableA, TableB string
	SelA, SelB     securejoin.Selection
	// Explain marks an EXPLAIN statement: render Describe() instead of
	// executing.
	Explain bool
	// Strategy is Prefiltered when at least one side pre-filters.
	Strategy     Strategy
	SideA, SideB SidePlan
	// Workers is the SJ.Dec worker hint for the execution
	// (0 = engine/server default).
	Workers int
}

// PlanQuery validates a parsed query against the catalog and compiles
// the WHERE clause into per-table Selections. Multiple predicates on the
// same column merge into one IN clause. The execution strategy is chosen
// automatically: a side is pre-filtered when it carries selective
// predicates (any WHERE conjunct counts) and its table was uploaded
// with an SSE index; everything else falls back to a full scan.
func (c *Catalog) PlanQuery(q *JoinQuery) (*Plan, error) {
	sa, err := c.Schema(q.TableA)
	if err != nil {
		return nil, err
	}
	sb, err := c.Schema(q.TableB)
	if err != nil {
		return nil, err
	}
	if !strings.EqualFold(q.OnA, sa.JoinColumn) {
		return nil, fmt.Errorf("sql: table %q can only join on its encrypted join column %q, not %q",
			sa.Name, sa.JoinColumn, q.OnA)
	}
	if !strings.EqualFold(q.OnB, sb.JoinColumn) {
		return nil, fmt.Errorf("sql: table %q can only join on its encrypted join column %q, not %q",
			sb.Name, sb.JoinColumn, q.OnB)
	}

	plan := &Plan{
		TableA: sa.Name, TableB: sb.Name,
		SelA: securejoin.Selection{}, SelB: securejoin.Selection{},
		Explain: q.Explain,
		SideA:   SidePlan{Table: sa.Name, Indexed: sa.Indexed},
		SideB:   SidePlan{Table: sb.Name, Indexed: sb.Indexed},
		Workers: c.workers,
	}
	countsA := make(map[string]int)
	countsB := make(map[string]int)
	for _, p := range q.Predicates {
		var schema TableSchema
		var sel securejoin.Selection
		var counts map[string]int
		switch {
		case strings.EqualFold(p.Table, q.TableA):
			schema, sel, counts = sa, plan.SelA, countsA
		case strings.EqualFold(p.Table, q.TableB):
			schema, sel, counts = sb, plan.SelB, countsB
		default:
			return nil, fmt.Errorf("sql: predicate references table %q, which is not part of the join", p.Table)
		}
		name, idx, err := resolveAttr(schema, p.Column)
		if err != nil {
			return nil, err
		}
		for _, v := range p.Values {
			sel[idx] = append(sel[idx], []byte(v))
			counts[name]++
		}
	}
	plan.SideA.Preds = predSummaries(countsA)
	plan.SideB.Preds = predSummaries(countsB)
	chooseSide(&plan.SideA)
	chooseSide(&plan.SideB)
	if plan.SideA.Prefilter || plan.SideB.Prefilter {
		plan.Strategy = Prefiltered
	}
	return plan, nil
}

// chooseSide applies the per-side plan-selection rule: pre-filter iff
// the side has predicates AND its table carries an SSE index.
func chooseSide(sp *SidePlan) {
	switch {
	case len(sp.Preds) == 0:
		sp.Reason = "no WHERE predicates"
	case !sp.Indexed:
		sp.Reason = "no SSE index"
	default:
		sp.Prefilter = true
	}
}

// predSummaries renders per-column value counts in sorted column order,
// so plans (and their EXPLAIN output) are deterministic.
func predSummaries(counts map[string]int) []PredSummary {
	if len(counts) == 0 {
		return nil
	}
	out := make([]PredSummary, 0, len(counts))
	for col, n := range counts {
		out = append(out, PredSummary{Column: col, Values: n})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Column < out[j].Column })
	return out
}

// Compile parses and plans in one step.
func (c *Catalog) Compile(query string) (*Plan, error) {
	q, err := Parse(query)
	if err != nil {
		return nil, err
	}
	return c.PlanQuery(q)
}

// resolveAttr maps a query column name onto the schema's declared name
// and attribute index. Candidate columns are scanned in sorted order,
// so resolution — and with it predicate compilation and error
// reporting — is deterministic even for schemas that bypassed
// NewCatalog's collision check.
func resolveAttr(s TableSchema, column string) (string, int, error) {
	names := make([]string, 0, len(s.Attrs))
	for name := range s.Attrs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if strings.EqualFold(name, column) {
			return name, s.Attrs[name], nil
		}
	}
	if strings.EqualFold(column, s.JoinColumn) {
		return "", 0, fmt.Errorf("sql: column %q of table %q is the join column; it cannot carry a WHERE predicate", column, s.Name)
	}
	return "", 0, fmt.Errorf("sql: table %q has no filterable column %q", s.Name, column)
}
