package sql

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the EXPLAIN golden files")

// TestExplainGolden pins the exact EXPLAIN rendering for the three plan
// shapes: fully prefiltered, full-scan fallback, and a mixed plan where
// only one side carries an index. Regenerate with
//
//	go test ./internal/sql -run TestExplainGolden -update
func TestExplainGolden(t *testing.T) {
	cases := []struct {
		name               string
		indexedA, indexedB bool
		workers            int
		query              string
	}{
		{
			name:     "explain_prefiltered",
			indexedA: true, indexedB: true, workers: 4,
			query: `EXPLAIN ` + baseQuery +
				` WHERE Teams.Name = 'Web Application' AND Employees.Role IN ('Tester', 'Programmer')`,
		},
		{
			name:     "explain_fullscan_fallback",
			indexedA: false, indexedB: false,
			query: `EXPLAIN ` + baseQuery +
				` WHERE Teams.Name = 'Web Application' AND Employees.Role = 'Tester'`,
		},
		{
			name:     "explain_mixed_index",
			indexedA: true, indexedB: false,
			query: `EXPLAIN ` + baseQuery +
				` WHERE Teams.Dept = 'Eng' AND Teams.Name IN ('Web Application', 'Database') AND Employees.Role = 'Tester'`,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cat := planCatalog(t, c.indexedA, c.indexedB)
			cat.SetDefaultWorkers(c.workers)
			checkGolden(t, cat, c.name, c.query)
		})
	}
}

func checkGolden(t *testing.T, cat *Catalog, name, query string) {
	t.Helper()
	plan, err := cat.Compile(query)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Explain {
		t.Fatal("EXPLAIN statement did not set the flag")
	}
	got := plan.Describe()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if got != string(want) {
		t.Errorf("EXPLAIN output drifted from %s:\n--- got ---\n%s--- want ---\n%s", path, got, want)
	}
}

// TestExplainGoldenMultiJoin pins the operator-tree rendering: a fully
// statistics-driven 3-way tree and a mixed chain where one table lacks
// both an index and statistics. Regenerate with -update.
func TestExplainGoldenMultiJoin(t *testing.T) {
	t.Run("explain_threeway", func(t *testing.T) {
		cat, err := NewCatalog(
			TableSchema{Name: "Customers", JoinColumn: "custkey", Attrs: map[string]int{"segment": 0}, Indexed: true, RowCount: 150},
			TableSchema{Name: "Orders", JoinColumn: "custkey", Attrs: map[string]int{"priority": 0}, Indexed: true, RowCount: 1500},
			TableSchema{Name: "Profiles", JoinColumn: "custkey", Attrs: map[string]int{"tier": 0}, Indexed: true, RowCount: 150},
		)
		if err != nil {
			t.Fatal(err)
		}
		cat.SetDefaultWorkers(4)
		checkGolden(t, cat, "explain_threeway",
			`EXPLAIN SELECT * FROM Orders JOIN Customers ON Orders.custkey = Customers.custkey`+
				` JOIN Profiles ON Profiles.custkey = Customers.custkey`+
				` WHERE Customers.segment = 'BUILDING' AND Orders.priority IN ('1-URGENT', '2-HIGH')`)
	})
	t.Run("explain_mixed_chain", func(t *testing.T) {
		cat, err := NewCatalog(
			TableSchema{Name: "Teams", JoinColumn: "Key", Attrs: map[string]int{"Name": 0}, Indexed: true, RowCount: 30},
			TableSchema{Name: "Employees", JoinColumn: "Team", Attrs: map[string]int{"Role": 0}, Indexed: false, RowCount: 400},
			TableSchema{Name: "Badges", JoinColumn: "TeamKey", Attrs: map[string]int{"Color": 0}},
		)
		if err != nil {
			t.Fatal(err)
		}
		checkGolden(t, cat, "explain_mixed_chain",
			`EXPLAIN SELECT * FROM Teams, Employees, Badges`+
				` WHERE Teams.Key = Employees.Team AND Badges.TeamKey = Teams.Key`+
				` AND Teams.Name = 'Web Application' AND Employees.Role = 'Tester' AND Badges.Color IN ('red', 'gold')`)
	})
}
