package sql

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the EXPLAIN golden files")

// TestExplainGolden pins the exact EXPLAIN rendering for the three plan
// shapes: fully prefiltered, full-scan fallback, and a mixed plan where
// only one side carries an index. Regenerate with
//
//	go test ./internal/sql -run TestExplainGolden -update
func TestExplainGolden(t *testing.T) {
	cases := []struct {
		name               string
		indexedA, indexedB bool
		workers            int
		query              string
	}{
		{
			name:     "explain_prefiltered",
			indexedA: true, indexedB: true, workers: 4,
			query: `EXPLAIN ` + baseQuery +
				` WHERE Teams.Name = 'Web Application' AND Employees.Role IN ('Tester', 'Programmer')`,
		},
		{
			name:     "explain_fullscan_fallback",
			indexedA: false, indexedB: false,
			query: `EXPLAIN ` + baseQuery +
				` WHERE Teams.Name = 'Web Application' AND Employees.Role = 'Tester'`,
		},
		{
			name:     "explain_mixed_index",
			indexedA: true, indexedB: false,
			query: `EXPLAIN ` + baseQuery +
				` WHERE Teams.Dept = 'Eng' AND Teams.Name IN ('Web Application', 'Database') AND Employees.Role = 'Tester'`,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cat := planCatalog(t, c.indexedA, c.indexedB)
			cat.SetDefaultWorkers(c.workers)
			plan, err := cat.Compile(c.query)
			if err != nil {
				t.Fatal(err)
			}
			if !plan.Explain {
				t.Fatal("EXPLAIN statement did not set the flag")
			}
			got := plan.Describe()
			path := filepath.Join("testdata", c.name+".golden")
			if *update {
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run with -update to create)", err)
			}
			if got != string(want) {
				t.Errorf("EXPLAIN output drifted from %s:\n--- got ---\n%s--- want ---\n%s", path, got, want)
			}
		})
	}
}
