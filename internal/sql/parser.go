package sql

import (
	"fmt"
	"strings"
)

// JoinQuery is the AST of one supported statement:
//
//	[EXPLAIN] SELECT {* | <colRef> [, <colRef>]...}
//	FROM <table> {, <table> | JOIN <table> ON <colRef> = <colRef>}
//	[WHERE <conjunct> [AND <conjunct>]...]
//
// where each conjunct is either a predicate — <colRef> IN ('v', ...) or
// <colRef> = 'v' — or another equi-join condition <colRef> = <colRef>.
// Comma-listed tables and chained JOIN ... ON clauses are equivalent:
// the parser collects every table of the FROM clause into Tables and
// every join condition (from ON clauses and from WHERE conjuncts
// relating two columns) into Conds; the planner decides the join order.
type JoinQuery struct {
	// Tables lists the FROM-clause tables in declaration order.
	Tables []string
	// Select lists an explicit SELECT list's column references in
	// source order; nil means SELECT *. The planner uses it for
	// key-only projections: a table whose non-join columns are never
	// selected ships no payloads (see SidePlan.SkipPayload). Result
	// rows always carry every table's row number either way.
	Select []SelectCol
	// Conds lists the equi-join conditions in source order.
	Conds []JoinCond
	// Predicates lists the WHERE conjuncts restricting single columns,
	// in source order.
	Predicates []Predicate
	// Explain is set when the statement was prefixed with EXPLAIN: the
	// caller should render the plan instead of executing it.
	Explain bool
}

// JoinCond is one equi-join condition relating two tables' join
// columns, from an ON clause or a WHERE conjunct.
type JoinCond struct {
	Left, Right ColRef
	// Pos is the byte offset of the condition in the input, for error
	// messages.
	Pos int
}

// Predicate is one IN (or equality, desugared to a one-element IN)
// restriction on a named table's column.
type Predicate struct {
	Table  string
	Column string
	Values []string
	// Pos is the byte offset of the predicate in the input, for error
	// messages.
	Pos int
}

// ColRef is a qualified column reference.
type ColRef struct {
	Table, Column string
}

// SelectCol is one entry of an explicit SELECT list.
type SelectCol struct {
	ColRef
	// Pos is the byte offset of the reference in the input, for error
	// messages.
	Pos int
}

// Parse parses one statement of the supported dialect.
func Parse(query string) (*JoinQuery, error) {
	p := &parser{lex: newLexer(query)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	q, err := p.parseJoinQuery()
	if err != nil {
		return nil, err
	}
	if p.cur.kind != tokEOF {
		return nil, fmt.Errorf("sql: unexpected %s %q after end of statement at offset %d",
			p.cur.kind, p.cur.text, p.cur.pos)
	}
	return q, nil
}

type parser struct {
	lex *lexer
	cur token
}

func (p *parser) advance() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.cur = t
	return nil
}

func (p *parser) expectKeyword(kw string) error {
	if p.cur.kind != tokKeyword || p.cur.text != kw {
		return fmt.Errorf("sql: expected %s, found %s %q at offset %d", kw, p.cur.kind, p.cur.text, p.cur.pos)
	}
	return p.advance()
}

func (p *parser) expect(kind tokenKind) (token, error) {
	if p.cur.kind != kind {
		return token{}, fmt.Errorf("sql: expected %s, found %s %q at offset %d", kind, p.cur.kind, p.cur.text, p.cur.pos)
	}
	t := p.cur
	return t, p.advance()
}

func (p *parser) parseJoinQuery() (*JoinQuery, error) {
	explain := false
	if p.cur.kind == tokKeyword && p.cur.text == "EXPLAIN" {
		explain = true
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	var sel []SelectCol
	if p.cur.kind == tokStar {
		if err := p.advance(); err != nil {
			return nil, err
		}
	} else {
		// An explicit SELECT list: qualified column references only.
		// Referencing just join columns (SELECT a.key, b.key) makes the
		// query key-only — no payload is decrypted at all.
		for {
			pos := p.cur.pos
			ref, err := p.parseColRef()
			if err != nil {
				return nil, fmt.Errorf("sql: SELECT list: %w", err)
			}
			sel = append(sel, SelectCol{ColRef: ref, Pos: pos})
			if p.cur.kind == tokComma {
				if err := p.advance(); err != nil {
					return nil, err
				}
				continue
			}
			break
		}
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	q := &JoinQuery{Explain: explain, Select: sel}

	first, err := p.expect(tokIdent)
	if err != nil {
		return nil, fmt.Errorf("sql: FROM list: %w", err)
	}
	q.Tables = append(q.Tables, first.text)
	seen := map[string]int{strings.ToLower(first.text): first.pos}

	// The rest of the FROM clause: comma-listed tables and/or chained
	// JOIN ... ON clauses, in any mix.
	for {
		switch {
		case p.cur.kind == tokComma:
			if err := p.advance(); err != nil {
				return nil, err
			}
			t, err := p.expect(tokIdent)
			if err != nil {
				return nil, fmt.Errorf("sql: FROM list: %w", err)
			}
			if err := addTable(q, seen, t); err != nil {
				return nil, err
			}
			continue
		case p.cur.kind == tokKeyword && p.cur.text == "JOIN":
			if err := p.advance(); err != nil {
				return nil, err
			}
			t, err := p.expect(tokIdent)
			if err != nil {
				return nil, fmt.Errorf("sql: JOIN clause: %w", err)
			}
			if err := addTable(q, seen, t); err != nil {
				return nil, err
			}
			if err := p.expectKeyword("ON"); err != nil {
				return nil, err
			}
			cond, err := p.parseJoinCond()
			if err != nil {
				return nil, err
			}
			q.Conds = append(q.Conds, cond)
			continue
		case p.cur.kind == tokIdent:
			// A bare identifier after a table name is almost always a
			// missing comma or JOIN keyword; report it precisely instead
			// of falling through to the generic trailing-input error.
			return nil, fmt.Errorf("sql: expected ',' or JOIN before %q in FROM list at offset %d",
				p.cur.text, p.cur.pos)
		}
		break
	}
	if len(q.Tables) < 2 {
		return nil, fmt.Errorf("sql: a join query names at least two tables, found only %q (offset %d)",
			first.text, first.pos)
	}

	if p.cur.kind == tokKeyword && p.cur.text == "WHERE" {
		if err := p.advance(); err != nil {
			return nil, err
		}
		for {
			if err := p.parseConjunct(q); err != nil {
				return nil, err
			}
			if p.cur.kind == tokKeyword && p.cur.text == "AND" {
				if err := p.advance(); err != nil {
					return nil, err
				}
				continue
			}
			break
		}
	}
	return q, nil
}

// addTable appends one FROM-clause table, rejecting duplicates — the
// dialect has no aliases, so a table can appear only once.
func addTable(q *JoinQuery, seen map[string]int, t token) error {
	key := strings.ToLower(t.text)
	if firstPos, dup := seen[key]; dup {
		return fmt.Errorf("sql: table %q appears twice in FROM (offsets %d and %d); self-joins need aliases, which the dialect does not support",
			t.text, firstPos, t.pos)
	}
	seen[key] = t.pos
	q.Tables = append(q.Tables, t.text)
	return nil
}

// parseJoinCond parses Table.Column = Table.Column.
func (p *parser) parseJoinCond() (JoinCond, error) {
	pos := p.cur.pos
	left, err := p.parseColRef()
	if err != nil {
		return JoinCond{}, err
	}
	if _, err := p.expect(tokEq); err != nil {
		return JoinCond{}, fmt.Errorf("sql: ON condition: %w", err)
	}
	right, err := p.parseColRef()
	if err != nil {
		return JoinCond{}, fmt.Errorf("sql: ON condition: %w", err)
	}
	return JoinCond{Left: left, Right: right, Pos: pos}, nil
}

// parseColRef parses Table.Column (the qualified form is mandatory; the
// dialect has no scoping rules to disambiguate bare columns).
func (p *parser) parseColRef() (ColRef, error) {
	table, err := p.expect(tokIdent)
	if err != nil {
		return ColRef{}, err
	}
	if _, err := p.expect(tokDot); err != nil {
		return ColRef{}, fmt.Errorf("sql: column references must be qualified as Table.Column: %w", err)
	}
	col, err := p.expect(tokIdent)
	if err != nil {
		return ColRef{}, err
	}
	return ColRef{Table: table.text, Column: col.text}, nil
}

// parseConjunct parses one WHERE conjunct: a predicate restricting one
// column (Table.Column IN ('a', 'b') or Table.Column = 'a') or an
// equi-join condition relating two columns (Table.Column = Table.Column).
func (p *parser) parseConjunct(q *JoinQuery) error {
	pos := p.cur.pos
	ref, err := p.parseColRef()
	if err != nil {
		return err
	}

	switch {
	case p.cur.kind == tokEq:
		if err := p.advance(); err != nil {
			return err
		}
		// The right-hand side decides what this conjunct is: another
		// column reference makes it a join condition, a literal a
		// predicate.
		if p.cur.kind == tokIdent {
			right, err := p.parseColRef()
			if err != nil {
				return err
			}
			q.Conds = append(q.Conds, JoinCond{Left: ref, Right: right, Pos: pos})
			return nil
		}
		v, err := p.parseLiteral()
		if err != nil {
			return err
		}
		q.Predicates = append(q.Predicates, Predicate{Table: ref.Table, Column: ref.Column, Values: []string{v}, Pos: pos})
		return nil
	case p.cur.kind == tokKeyword && p.cur.text == "IN":
		if err := p.advance(); err != nil {
			return err
		}
		if _, err := p.expect(tokLParen); err != nil {
			return err
		}
		pred := Predicate{Table: ref.Table, Column: ref.Column, Pos: pos}
		for {
			v, err := p.parseLiteral()
			if err != nil {
				return err
			}
			pred.Values = append(pred.Values, v)
			if p.cur.kind == tokComma {
				if err := p.advance(); err != nil {
					return err
				}
				continue
			}
			break
		}
		if _, err := p.expect(tokRParen); err != nil {
			return err
		}
		q.Predicates = append(q.Predicates, pred)
		return nil
	default:
		return fmt.Errorf("sql: expected '=' or IN after %s.%s at offset %d",
			ref.Table, ref.Column, p.cur.pos)
	}
}

// parseLiteral accepts string and number literals, returning their text.
func (p *parser) parseLiteral() (string, error) {
	switch p.cur.kind {
	case tokString, tokNumber:
		v := p.cur.text
		return v, p.advance()
	default:
		return "", fmt.Errorf("sql: expected a literal, found %s %q at offset %d",
			p.cur.kind, p.cur.text, p.cur.pos)
	}
}
