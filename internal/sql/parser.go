package sql

import (
	"fmt"
	"strings"
)

// JoinQuery is the AST of one supported statement:
//
//	[EXPLAIN] SELECT * FROM <TableA> JOIN <TableB> ON <colRef> = <colRef>
//	[WHERE <predicate> [AND <predicate>]...]
//
// where each predicate is <colRef> IN ('v', ...) or <colRef> = 'v'.
type JoinQuery struct {
	TableA, TableB string
	// OnA and OnB are the join column names of the respective tables.
	OnA, OnB string
	// Predicates lists the WHERE conjuncts in source order.
	Predicates []Predicate
	// Explain is set when the statement was prefixed with EXPLAIN: the
	// caller should render the plan instead of executing it.
	Explain bool
}

// Predicate is one IN (or equality, desugared to a one-element IN)
// restriction on a named table's column.
type Predicate struct {
	Table  string
	Column string
	Values []string
}

// ColRef is a qualified column reference.
type ColRef struct {
	Table, Column string
}

// Parse parses one statement of the supported dialect.
func Parse(query string) (*JoinQuery, error) {
	p := &parser{lex: newLexer(query)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	q, err := p.parseJoinQuery()
	if err != nil {
		return nil, err
	}
	if p.cur.kind != tokEOF {
		return nil, fmt.Errorf("sql: unexpected %s %q after end of statement", p.cur.kind, p.cur.text)
	}
	return q, nil
}

type parser struct {
	lex *lexer
	cur token
}

func (p *parser) advance() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.cur = t
	return nil
}

func (p *parser) expectKeyword(kw string) error {
	if p.cur.kind != tokKeyword || p.cur.text != kw {
		return fmt.Errorf("sql: expected %s, found %s %q at offset %d", kw, p.cur.kind, p.cur.text, p.cur.pos)
	}
	return p.advance()
}

func (p *parser) expect(kind tokenKind) (token, error) {
	if p.cur.kind != kind {
		return token{}, fmt.Errorf("sql: expected %s, found %s %q at offset %d", kind, p.cur.kind, p.cur.text, p.cur.pos)
	}
	t := p.cur
	return t, p.advance()
}

func (p *parser) parseJoinQuery() (*JoinQuery, error) {
	explain := false
	if p.cur.kind == tokKeyword && p.cur.text == "EXPLAIN" {
		explain = true
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokStar); err != nil {
		return nil, fmt.Errorf("sql: only SELECT * is supported: %w", err)
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	tableA, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("JOIN"); err != nil {
		return nil, err
	}
	tableB, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("ON"); err != nil {
		return nil, err
	}
	left, err := p.parseColRef()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokEq); err != nil {
		return nil, err
	}
	right, err := p.parseColRef()
	if err != nil {
		return nil, err
	}

	q := &JoinQuery{TableA: tableA.text, TableB: tableB.text, Explain: explain}

	// Resolve which side of the ON condition belongs to which table.
	switch {
	case strings.EqualFold(left.Table, q.TableA) && strings.EqualFold(right.Table, q.TableB):
		q.OnA, q.OnB = left.Column, right.Column
	case strings.EqualFold(left.Table, q.TableB) && strings.EqualFold(right.Table, q.TableA):
		q.OnA, q.OnB = right.Column, left.Column
	default:
		return nil, fmt.Errorf("sql: ON condition must relate %s and %s, got %s and %s",
			q.TableA, q.TableB, left.Table, right.Table)
	}

	if p.cur.kind == tokKeyword && p.cur.text == "WHERE" {
		if err := p.advance(); err != nil {
			return nil, err
		}
		for {
			pred, err := p.parsePredicate()
			if err != nil {
				return nil, err
			}
			q.Predicates = append(q.Predicates, pred)
			if p.cur.kind == tokKeyword && p.cur.text == "AND" {
				if err := p.advance(); err != nil {
					return nil, err
				}
				continue
			}
			break
		}
	}
	return q, nil
}

// parseColRef parses Table.Column (the qualified form is mandatory; the
// dialect has no scoping rules to disambiguate bare columns).
func (p *parser) parseColRef() (ColRef, error) {
	table, err := p.expect(tokIdent)
	if err != nil {
		return ColRef{}, err
	}
	if _, err := p.expect(tokDot); err != nil {
		return ColRef{}, fmt.Errorf("sql: column references must be qualified as Table.Column: %w", err)
	}
	col, err := p.expect(tokIdent)
	if err != nil {
		return ColRef{}, err
	}
	return ColRef{Table: table.text, Column: col.text}, nil
}

// parsePredicate parses Table.Column IN ('a', 'b') or Table.Column = 'a'.
func (p *parser) parsePredicate() (Predicate, error) {
	ref, err := p.parseColRef()
	if err != nil {
		return Predicate{}, err
	}
	pred := Predicate{Table: ref.Table, Column: ref.Column}

	switch {
	case p.cur.kind == tokEq:
		if err := p.advance(); err != nil {
			return Predicate{}, err
		}
		v, err := p.parseLiteral()
		if err != nil {
			return Predicate{}, err
		}
		pred.Values = []string{v}
	case p.cur.kind == tokKeyword && p.cur.text == "IN":
		if err := p.advance(); err != nil {
			return Predicate{}, err
		}
		if _, err := p.expect(tokLParen); err != nil {
			return Predicate{}, err
		}
		for {
			v, err := p.parseLiteral()
			if err != nil {
				return Predicate{}, err
			}
			pred.Values = append(pred.Values, v)
			if p.cur.kind == tokComma {
				if err := p.advance(); err != nil {
					return Predicate{}, err
				}
				continue
			}
			break
		}
		if _, err := p.expect(tokRParen); err != nil {
			return Predicate{}, err
		}
	default:
		return Predicate{}, fmt.Errorf("sql: expected '=' or IN after %s.%s at offset %d",
			ref.Table, ref.Column, p.cur.pos)
	}
	return pred, nil
}

// parseLiteral accepts string and number literals, returning their text.
func (p *parser) parseLiteral() (string, error) {
	switch p.cur.kind {
	case tokString, tokNumber:
		v := p.cur.text
		return v, p.advance()
	default:
		return "", fmt.Errorf("sql: expected a literal, found %s %q at offset %d",
			p.cur.kind, p.cur.text, p.cur.pos)
	}
}
