package engine

import (
	"bytes"
	"crypto/aes"
	"crypto/cipher"
	"errors"
	"fmt"
	"io"
	"sync"
	"testing"

	"repro/internal/securejoin"
)

// TestJoinStreamMatchesExecuteJoin drains a stream with batch size 1
// and checks it produces exactly the rows and trace of the one-shot
// path.
func TestJoinStreamMatchesExecuteJoin(t *testing.T) {
	client, server := setup(t)
	sel := securejoin.Selection{}

	q1, err := client.NewQuery(sel, sel)
	if err != nil {
		t.Fatal(err)
	}
	want, wantTrace, err := server.ExecuteJoin("Teams", "Employees", q1)
	if err != nil {
		t.Fatal(err)
	}

	q2, err := client.NewQuery(sel, sel)
	if err != nil {
		t.Fatal(err)
	}
	stream, err := server.OpenJoinQuery("Teams", "Employees", q2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if stream.Trace() != nil {
		t.Fatal("trace available before stream exhausted")
	}
	var got []JoinedRow
	batches := 0
	for {
		rows, err := stream.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) > 1 {
			t.Fatalf("batch of %d rows exceeds batch size 1", len(rows))
		}
		batches++
		got = append(got, rows...)
	}
	if batches < len(got) {
		t.Fatalf("%d rows arrived in %d batches; want at least one batch per probe row", len(got), batches)
	}
	if len(got) != len(want) {
		t.Fatalf("stream produced %d rows, ExecuteJoin %d", len(got), len(want))
	}
	match := make(map[string]bool, len(want))
	for _, r := range want {
		match[fmt.Sprintf("%d/%d", r.RowA, r.RowB)] = true
	}
	for _, r := range got {
		if !match[fmt.Sprintf("%d/%d", r.RowA, r.RowB)] {
			t.Fatalf("stream produced unexpected pair (%d,%d)", r.RowA, r.RowB)
		}
	}
	if stream.RevealedPairs() != wantTrace.Pairs.Len() {
		t.Fatalf("stream trace %d pairs, ExecuteJoin trace %d", stream.RevealedPairs(), wantTrace.Pairs.Len())
	}
	// Exhausted stream keeps returning EOF.
	if _, err := stream.Next(); err != io.EOF {
		t.Fatalf("Next after EOF: %v", err)
	}
}

// TestJoinStreamCloseRecordsPartialLeakage: a stream released before
// being drained must still contribute the pairs the server already
// observed to the audit log.
func TestJoinStreamCloseRecordsPartialLeakage(t *testing.T) {
	client, server := setup(t)
	q, err := client.NewQuery(securejoin.Selection{}, securejoin.Selection{})
	if err != nil {
		t.Fatal(err)
	}
	st, err := server.OpenJoinQuery("Teams", "Employees", q, 1)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := st.Next() // one probe row: employee 0 matches team 0
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("first batch has %d rows, want 1", len(rows))
	}
	st.Close()
	if st.Trace() == nil {
		t.Fatal("closed stream has no trace")
	}
	if st.RevealedPairs() != 1 {
		t.Fatalf("partial trace has %d pairs, want 1", st.RevealedPairs())
	}
	perQuery, _ := server.ObservedLeakage()
	if len(perQuery) != 1 || perQuery[0].Len() != 1 {
		t.Fatalf("audit log = %v, want one 1-pair trace", perQuery)
	}
	// Close is idempotent and does not double-record.
	st.Close()
	if perQuery, _ := server.ObservedLeakage(); len(perQuery) != 1 {
		t.Fatalf("second Close appended a trace: %d entries", len(perQuery))
	}
}

// TestConcurrentExecuteJoin runs joins from many goroutines against
// shared read-only tables plus concurrent uploads of fresh tables; with
// -race this validates the RWMutex table store and the separate trace
// lock.
func TestConcurrentExecuteJoin(t *testing.T) {
	client, server := setup(t)
	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan error, goroutines+1)

	// Concurrent writer: re-upload a table under a new name repeatedly.
	wg.Add(1)
	go func() {
		defer wg.Done()
		teams, _ := exampleTables()
		for i := 0; i < 4; i++ {
			enc, err := client.EncryptTable(fmt.Sprintf("Scratch-%d", i), teams)
			if err != nil {
				errs <- err
				return
			}
			server.Upload(enc)
		}
	}()

	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			q, err := client.NewQuery(securejoin.Selection{}, securejoin.Selection{})
			if err != nil {
				errs <- err
				return
			}
			rows, trace, err := server.ExecuteJoin("Teams", "Employees", q)
			if err != nil {
				errs <- err
				return
			}
			if len(rows) != 4 {
				errs <- fmt.Errorf("concurrent join: %d rows, want 4", len(rows))
				return
			}
			if trace.Pairs.Len() == 0 {
				errs <- errors.New("concurrent join recorded empty trace")
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	perQuery, _ := server.ObservedLeakage()
	if len(perQuery) != goroutines {
		t.Fatalf("recorded %d traces, want %d", len(perQuery), goroutines)
	}
}

// TestOpenPayloadAuthError: tampered or foreign payloads yield the
// typed ErrPayloadAuth.
func TestOpenPayloadAuthError(t *testing.T) {
	client, err := NewClient(securejoin.Params{M: 1, T: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	sealed, err := client.sealPayload([]byte("secret"))
	if err != nil {
		t.Fatal(err)
	}

	// Round trip works.
	pt, err := client.OpenPayload(sealed)
	if err != nil || string(pt) != "secret" {
		t.Fatalf("open: %q, %v", pt, err)
	}
	// Tampered ciphertext fails with the typed error.
	tampered := append([]byte{}, sealed...)
	tampered[len(tampered)-1] ^= 1
	if _, err := client.OpenPayload(tampered); !errors.Is(err, ErrPayloadAuth) {
		t.Fatalf("tampered payload: got %v, want ErrPayloadAuth", err)
	}
	// Too-short blob fails with the typed error too.
	if _, err := client.OpenPayload([]byte{1, 2}); !errors.Is(err, ErrPayloadAuth) {
		t.Fatalf("short payload: got %v, want ErrPayloadAuth", err)
	}
	// A different client's key cannot open it.
	other, err := NewClient(securejoin.Params{M: 1, T: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := other.OpenPayload(sealed); !errors.Is(err, ErrPayloadAuth) {
		t.Fatalf("foreign key: got %v, want ErrPayloadAuth", err)
	}
}

// TestSealPayloadUsesClientRNG: with a deterministic rng the nonce —
// and therefore the whole sealed blob — is reproducible, proving
// sealPayload draws from the configured rng rather than crypto/rand.
func TestSealPayloadUsesClientRNG(t *testing.T) {
	block, err := aes.NewCipher(make([]byte, 32))
	if err != nil {
		t.Fatal(err)
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		t.Fatal(err)
	}
	c := &Client{payloadAEAD: aead, rng: zeroReader{}}
	s1, err := c.sealPayload([]byte("p"))
	if err != nil {
		t.Fatal(err)
	}
	s2, err := c.sealPayload([]byte("p"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(s1, s2) {
		t.Fatal("sealPayload ignored the client's deterministic rng")
	}
	ns := aead.NonceSize()
	if !bytes.Equal(s1[:ns], make([]byte, ns)) {
		t.Fatal("nonce not drawn from the configured rng")
	}
}

// zeroReader yields an endless stream of zero bytes.
type zeroReader struct{}

func (zeroReader) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = 0
	}
	return len(p), nil
}
