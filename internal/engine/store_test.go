package engine

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/securejoin"
)

// fakeStore records RegisterTable/DropTable persistence calls and can
// inject failures, pinning the persist-before-install contract without
// touching a disk.
type fakeStore struct {
	commits    []string
	deletes    []string
	failCommit error
	failDelete error
}

func (f *fakeStore) Commit(t *EncryptedTable) error {
	if f.failCommit != nil {
		return f.failCommit
	}
	f.commits = append(f.commits, t.Name)
	return nil
}

func (f *fakeStore) Delete(name string) error {
	if f.failDelete != nil {
		return f.failDelete
	}
	f.deletes = append(f.deletes, name)
	return nil
}

func storeTestClient(t *testing.T) *Client {
	t.Helper()
	client, err := NewClient(securejoin.Params{M: 1, T: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return client
}

// TestRegisterTablePersistsBeforeInstall: a table is durable before it
// is queryable, and a persistence failure leaves the in-memory map —
// and any previous version — untouched.
func TestRegisterTablePersistsBeforeInstall(t *testing.T) {
	client := storeTestClient(t)
	server := NewServer()
	fs := &fakeStore{}
	server.SetStore(fs)

	v1, err := client.EncryptTable("T", []PlainRow{{JoinValue: []byte("1"), Attrs: [][]byte{[]byte("a")}, Payload: []byte("v1")}})
	if err != nil {
		t.Fatal(err)
	}
	if err := server.RegisterTable(v1); err != nil {
		t.Fatal(err)
	}
	if len(fs.commits) != 1 || fs.commits[0] != "T" {
		t.Fatalf("store commits = %v, want [T]", fs.commits)
	}
	got, err := server.Table("T")
	if err != nil {
		t.Fatal(err)
	}
	if got != v1 {
		t.Fatal("installed table is not the registered one")
	}

	// A failing store must reject the new version and keep serving v1.
	fs.failCommit = errors.New("disk full")
	v2, err := client.EncryptTable("T", []PlainRow{{JoinValue: []byte("2"), Attrs: [][]byte{[]byte("b")}, Payload: []byte("v2")}})
	if err != nil {
		t.Fatal(err)
	}
	if err := server.RegisterTable(v2); err == nil {
		t.Fatal("RegisterTable succeeded despite store failure")
	}
	got, err = server.Table("T")
	if err != nil {
		t.Fatal(err)
	}
	if got != v1 {
		t.Fatal("failed registration replaced the in-memory table")
	}
}

// TestRegisterTableWithoutStore: with no store attached RegisterTable
// degrades to a plain in-memory install.
func TestRegisterTableWithoutStore(t *testing.T) {
	client := storeTestClient(t)
	server := NewServer()
	tab, err := client.EncryptTable("T", []PlainRow{{JoinValue: []byte("1"), Attrs: [][]byte{[]byte("a")}, Payload: []byte("p")}})
	if err != nil {
		t.Fatal(err)
	}
	if err := server.RegisterTable(tab); err != nil {
		t.Fatal(err)
	}
	if _, err := server.Table("T"); err != nil {
		t.Fatal(err)
	}
}

// TestDropTable: deletion persists first and unknown names fail without
// touching the store.
func TestDropTable(t *testing.T) {
	client := storeTestClient(t)
	server := NewServer()
	fs := &fakeStore{}
	server.SetStore(fs)
	tab, err := client.EncryptTable("T", []PlainRow{{JoinValue: []byte("1"), Attrs: [][]byte{[]byte("a")}, Payload: []byte("p")}})
	if err != nil {
		t.Fatal(err)
	}
	if err := server.RegisterTable(tab); err != nil {
		t.Fatal(err)
	}
	if err := server.DropTable("T"); err != nil {
		t.Fatal(err)
	}
	if len(fs.deletes) != 1 || fs.deletes[0] != "T" {
		t.Fatalf("store deletes = %v, want [T]", fs.deletes)
	}
	if _, err := server.Table("T"); err == nil {
		t.Fatal("dropped table still served")
	}
	if err := server.DropTable("T"); err == nil {
		t.Fatal("dropping unknown table succeeded")
	}
	if len(fs.deletes) != 1 {
		t.Fatalf("unknown-table drop reached the store: %v", fs.deletes)
	}

	fs.failDelete = errors.New("manifest gone")
	if err := server.RegisterTable(tab); err != nil {
		t.Fatal(err)
	}
	if err := server.DropTable("T"); err == nil {
		t.Fatal("DropTable succeeded despite store failure")
	}
	if _, err := server.Table("T"); err != nil {
		t.Fatal("failed drop removed the in-memory table")
	}
}

// TestRegisterTableOverwriteReplacesIndex pins the overwrite semantics
// the durable store relies on: re-registering a table name atomically
// replaces rows AND SSE index, so a prefiltered query after the
// overwrite resolves candidates against the new index — never a stale
// one matched to old row numbering.
func TestRegisterTableOverwriteReplacesIndex(t *testing.T) {
	client := storeTestClient(t)
	server := NewServer()
	server.SetStore(&fakeStore{})

	// v1: the "red" predicate matches row 0 only.
	v1 := []PlainRow{
		{JoinValue: []byte("k"), Attrs: [][]byte{[]byte("red")}, Payload: []byte("v1-red")},
		{JoinValue: []byte("x"), Attrs: [][]byte{[]byte("blue")}, Payload: []byte("v1-blue")},
	}
	// v2 swaps the attribute order: "red" now lives on row 1 with a
	// different join value, so a stale v1 index would select the wrong
	// candidate row and produce v1's result.
	v2 := []PlainRow{
		{JoinValue: []byte("y"), Attrs: [][]byte{[]byte("blue")}, Payload: []byte("v2-blue")},
		{JoinValue: []byte("k"), Attrs: [][]byte{[]byte("red")}, Payload: []byte("v2-red")},
	}
	other := []PlainRow{
		{JoinValue: []byte("k"), Attrs: [][]byte{[]byte("m")}, Payload: []byte("other")},
	}

	for name, rows := range map[string][]PlainRow{"T": v1, "O": other} {
		enc, err := client.EncryptTableIndexed(name, rows)
		if err != nil {
			t.Fatal(err)
		}
		if err := server.RegisterTable(enc); err != nil {
			t.Fatal(err)
		}
	}
	encV2, err := client.EncryptTableIndexed("T", v2)
	if err != nil {
		t.Fatal(err)
	}
	if err := server.RegisterTable(encV2); err != nil {
		t.Fatal(err)
	}

	pq, err := client.NewPrefilterQuery(securejoin.Selection{0: [][]byte{[]byte("red")}}, securejoin.Selection{})
	if err != nil {
		t.Fatal(err)
	}
	rows, _, err := server.ExecuteJoinPrefiltered("T", "O", pq)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("got %d joined rows, want 1", len(rows))
	}
	if rows[0].RowA != 1 {
		t.Fatalf("candidate row %d, want 1: stale index served after overwrite", rows[0].RowA)
	}
	payload, err := client.OpenPayload(rows[0].PayloadA)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(payload, []byte("v2-red")) {
		t.Fatalf("joined payload %q, want v2-red", payload)
	}
}

// TestLeakageCounters: counters track per-table revealed pairs and can
// be checkpointed and reseeded across a simulated restart.
func TestLeakageCounters(t *testing.T) {
	client := storeTestClient(t)
	server := NewServer()
	teams, employees := exampleTables()
	encT, err := client.EncryptTable("Teams", teams)
	if err != nil {
		t.Fatal(err)
	}
	encE, err := client.EncryptTable("Employees", employees)
	if err != nil {
		t.Fatal(err)
	}
	server.Upload(encT)
	server.Upload(encE)

	q, err := client.NewQuery(securejoin.Selection{}, securejoin.Selection{})
	if err != nil {
		t.Fatal(err)
	}
	_, trace, err := server.ExecuteJoin("Teams", "Employees", q)
	if err != nil {
		t.Fatal(err)
	}

	counters := server.LeakageCounters()
	var wantTeams, wantEmployees uint64
	for p := range trace.Pairs {
		if p.A.Table == "Teams" || p.B.Table == "Teams" {
			wantTeams++
		}
		if p.A.Table == "Employees" || p.B.Table == "Employees" {
			wantEmployees++
		}
	}
	if trace.Pairs.Len() == 0 {
		t.Fatal("query revealed no pairs; counters untestable")
	}
	if counters["Teams"] != wantTeams || counters["Employees"] != wantEmployees {
		t.Fatalf("counters = %v, want Teams=%d Employees=%d", counters, wantTeams, wantEmployees)
	}

	// "Restart": a fresh server seeded with the checkpoint reports the
	// same counters and keeps incrementing from them.
	restarted := NewServer()
	restarted.SeedLeakageCounters(counters)
	restarted.Upload(encT)
	restarted.Upload(encE)
	q2, err := client.NewQuery(securejoin.Selection{}, securejoin.Selection{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := restarted.ExecuteJoin("Teams", "Employees", q2); err != nil {
		t.Fatal(err)
	}
	after := restarted.LeakageCounters()
	if after["Teams"] != 2*wantTeams || after["Employees"] != 2*wantEmployees {
		t.Fatalf("seeded counters after identical query = %v, want Teams=%d Employees=%d",
			after, 2*wantTeams, 2*wantEmployees)
	}
}
