package engine

import (
	"bytes"
	"testing"

	"repro/internal/leakage"
	"repro/internal/securejoin"
)

func exampleTables() (teams, employees []PlainRow) {
	teams = []PlainRow{
		{JoinValue: []byte("1"), Attrs: [][]byte{[]byte("Web Application")}, Payload: []byte("team-1")},
		{JoinValue: []byte("2"), Attrs: [][]byte{[]byte("Database")}, Payload: []byte("team-2")},
	}
	employees = []PlainRow{
		{JoinValue: []byte("1"), Attrs: [][]byte{[]byte("Programmer")}, Payload: []byte("hans")},
		{JoinValue: []byte("1"), Attrs: [][]byte{[]byte("Tester")}, Payload: []byte("kaily")},
		{JoinValue: []byte("2"), Attrs: [][]byte{[]byte("Programmer")}, Payload: []byte("john")},
		{JoinValue: []byte("2"), Attrs: [][]byte{[]byte("Tester")}, Payload: []byte("sally")},
	}
	return
}

func setup(t *testing.T) (*Client, *Server) {
	t.Helper()
	client, err := NewClient(securejoin.Params{M: 1, T: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	server := NewServer()
	teams, employees := exampleTables()
	encT, err := client.EncryptTable("Teams", teams)
	if err != nil {
		t.Fatal(err)
	}
	encE, err := client.EncryptTable("Employees", employees)
	if err != nil {
		t.Fatal(err)
	}
	server.Upload(encT)
	server.Upload(encE)
	return client, server
}

func TestEndToEndJoin(t *testing.T) {
	client, server := setup(t)
	q, err := client.NewQuery(
		securejoin.Selection{0: [][]byte{[]byte("Web Application")}},
		securejoin.Selection{0: [][]byte{[]byte("Tester")}},
	)
	if err != nil {
		t.Fatal(err)
	}
	rows, trace, err := server.ExecuteJoin("Teams", "Employees", q)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("expected 1 result, got %d", len(rows))
	}
	pa, err := client.OpenPayload(rows[0].PayloadA)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := client.OpenPayload(rows[0].PayloadB)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pa, []byte("team-1")) || !bytes.Equal(pb, []byte("kaily")) {
		t.Fatalf("payloads = %q, %q", pa, pb)
	}
	if trace.Pairs.Len() != 1 {
		t.Fatalf("query trace has %d pairs, want 1", trace.Pairs.Len())
	}
}

// TestSeriesLeakageIsClosureOnly replays the two queries of the paper's
// timeline and verifies that the server's cumulative observation equals
// exactly the transitive closure of the per-query traces (Corollary
// 5.2.2) — 2 pairs, not Hahn's 6.
func TestSeriesLeakageIsClosureOnly(t *testing.T) {
	client, server := setup(t)

	q1, err := client.NewQuery(
		securejoin.Selection{0: [][]byte{[]byte("Web Application")}},
		securejoin.Selection{0: [][]byte{[]byte("Tester")}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := server.ExecuteJoin("Teams", "Employees", q1); err != nil {
		t.Fatal(err)
	}
	q2, err := client.NewQuery(
		securejoin.Selection{0: [][]byte{[]byte("Database")}},
		securejoin.Selection{0: [][]byte{[]byte("Programmer")}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := server.ExecuteJoin("Teams", "Employees", q2); err != nil {
		t.Fatal(err)
	}

	perQuery, closure := server.ObservedLeakage()
	if len(perQuery) != 2 {
		t.Fatalf("%d per-query traces", len(perQuery))
	}
	if closure.Len() != 2 {
		t.Fatalf("closure has %d pairs, want 2", closure.Len())
	}
	if leakage.IsSuperAdditive(closure, perQuery) {
		t.Fatal("engine leaked super-additively")
	}
	want := leakage.NewPairSet(
		leakage.Pair{A: leakage.RowRef{Table: "Teams", Row: 0}, B: leakage.RowRef{Table: "Employees", Row: 1}},
		leakage.Pair{A: leakage.RowRef{Table: "Teams", Row: 1}, B: leakage.RowRef{Table: "Employees", Row: 2}},
	)
	if !closure.Equal(want) {
		t.Fatalf("closure = %v", closure.Sorted())
	}
}

func TestTableStats(t *testing.T) {
	client, server := setup(t)
	teams, _ := exampleTables()
	// Replace Teams with an indexed version so both states appear.
	encT, err := client.EncryptTableIndexed("Teams", teams)
	if err != nil {
		t.Fatal(err)
	}
	server.Upload(encT)

	stats := server.TableStats()
	want := []TableStat{
		{Name: "Employees", Rows: 4, Indexed: false, NDV: 2},
		{Name: "Teams", Rows: 2, Indexed: true, NDV: 2},
	}
	if len(stats) != len(want) {
		t.Fatalf("TableStats = %+v", stats)
	}
	for i := range want {
		if stats[i] != want[i] {
			t.Fatalf("TableStats[%d] = %+v, want %+v", i, stats[i], want[i])
		}
	}
}

func TestUnknownTable(t *testing.T) {
	client, server := setup(t)
	q, err := client.NewQuery(securejoin.Selection{}, securejoin.Selection{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := server.ExecuteJoin("Teams", "Nope", q); err == nil {
		t.Fatal("join against a missing table should fail")
	}
	if _, _, err := server.ExecuteJoin("Nope", "Teams", q); err == nil {
		t.Fatal("join against a missing table should fail")
	}
}

func TestPayloadConfidentialityAndIntegrity(t *testing.T) {
	client, server := setup(t)
	table, err := server.Table("Teams")
	if err != nil {
		t.Fatal(err)
	}
	sealed := table.Rows[0].Payload
	if bytes.Contains(sealed, []byte("team-1")) {
		t.Fatal("payload plaintext visible in stored ciphertext")
	}
	// Tampering must be detected.
	tampered := append([]byte{}, sealed...)
	tampered[len(tampered)-1] ^= 1
	if _, err := client.OpenPayload(tampered); err == nil {
		t.Fatal("tampered payload accepted")
	}
	// A second client cannot open the first client's payloads.
	other, err := NewClient(securejoin.Params{M: 1, T: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := other.OpenPayload(sealed); err == nil {
		t.Fatal("foreign client opened the payload")
	}
	if _, err := client.OpenPayload([]byte{1, 2}); err == nil {
		t.Fatal("truncated payload accepted")
	}
}

// TestRepeatedQueryUnlinkable: executing the same logical query twice
// adds no new pairs to the closure (the results are the same rows), and
// the servers' D values across the two executions differ.
func TestRepeatedQueryUnlinkable(t *testing.T) {
	client, server := setup(t)
	sel := securejoin.Selection{0: [][]byte{[]byte("Web Application")}}
	selB := securejoin.Selection{0: [][]byte{[]byte("Tester")}}
	for i := 0; i < 2; i++ {
		q, err := client.NewQuery(sel, selB)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := server.ExecuteJoin("Teams", "Employees", q); err != nil {
			t.Fatal(err)
		}
	}
	_, closure := server.ObservedLeakage()
	if closure.Len() != 1 {
		t.Fatalf("re-running a query should not grow the closure: %d pairs", closure.Len())
	}
}
