package engine

import (
	"bytes"
	"testing"

	"repro/internal/securejoin"
)

func TestSaveLoadTable(t *testing.T) {
	client, err := NewClient(securejoin.Params{M: 1, T: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	teams, employees := exampleTables()
	encT, err := client.EncryptTableIndexed("Teams", teams)
	if err != nil {
		t.Fatal(err)
	}
	encE, err := client.EncryptTable("Employees", employees) // no index
	if err != nil {
		t.Fatal(err)
	}

	var bufT, bufE bytes.Buffer
	if err := SaveTable(&bufT, encT); err != nil {
		t.Fatal(err)
	}
	if err := SaveTable(&bufE, encE); err != nil {
		t.Fatal(err)
	}

	loadedT, err := LoadTable(&bufT)
	if err != nil {
		t.Fatal(err)
	}
	loadedE, err := LoadTable(&bufE)
	if err != nil {
		t.Fatal(err)
	}
	if loadedT.Name != "Teams" || len(loadedT.Rows) != 2 {
		t.Fatalf("loaded table header wrong: %s/%d", loadedT.Name, len(loadedT.Rows))
	}
	if loadedT.Index == nil {
		t.Fatal("index lost in round trip")
	}
	if loadedE.Index != nil {
		t.Fatal("index appeared from nowhere")
	}

	// The reloaded tables must answer queries identically.
	server := NewServer()
	server.Upload(loadedT)
	server.Upload(loadedE)
	q, err := client.NewQuery(
		securejoin.Selection{0: [][]byte{[]byte("Web Application")}},
		securejoin.Selection{0: [][]byte{[]byte("Tester")}},
	)
	if err != nil {
		t.Fatal(err)
	}
	rows, _, err := server.ExecuteJoin("Teams", "Employees", q)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("reloaded tables returned %d rows", len(rows))
	}
	payload, err := client.OpenPayload(rows[0].PayloadB)
	if err != nil {
		t.Fatal(err)
	}
	if string(payload) != "kaily" {
		t.Fatalf("payload = %q", payload)
	}

	// Pre-filtered execution also works on a reloaded indexed table.
	pq, err := client.NewPrefilterQuery(
		securejoin.Selection{0: [][]byte{[]byte("Web Application")}},
		securejoin.Selection{0: [][]byte{[]byte("Tester")}},
	)
	if err != nil {
		t.Fatal(err)
	}
	rows2, _, err := server.ExecuteJoinPrefiltered("Teams", "Employees", pq)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows2) != 1 {
		t.Fatalf("prefiltered query on reloaded table returned %d rows", len(rows2))
	}
}

func TestLoadTableRejectsCorruption(t *testing.T) {
	client, err := NewClient(securejoin.Params{M: 1, T: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := client.EncryptTable("T", []PlainRow{
		{JoinValue: []byte("x"), Attrs: [][]byte{[]byte("a")}, Payload: []byte("p")},
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveTable(&buf, enc); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Corrupt a byte near the middle (inside a ciphertext element).
	data[len(data)/2] ^= 0xff
	if _, err := LoadTable(bytes.NewReader(data)); err == nil {
		t.Fatal("corrupted table accepted")
	}
	if _, err := LoadTable(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty stream accepted")
	}
}
