package engine

import (
	"container/list"
	"crypto/sha256"
	"fmt"
	"sync"

	"repro/internal/securejoin"
)

// This file implements the decrypt-result cache. SJ.Dec is
// deterministic in (token, ciphertext): re-running a query token over
// an unchanged table recomputes exactly the same D values, and at
// ~16ms of pairing work per row that recomputation dominates every
// repeated query. The cache memoizes per-row D values under the key
// (table name, table version, SHA-256 of the token bytes), so a warm
// re-execution skips the pairing wall entirely.
//
// The version component is a server-side install counter bumped every
// time a name is (re-)registered; a cached entry can therefore never
// serve rows of a table that was overwritten, even though the
// EncryptedTable structure itself carries no version. The token digest
// binds the entry to one issued token: tokens embed fresh randomness
// (k, delta) per query, so distinct queries never alias, and a reused
// token — the only way to hit — yields bitwise-identical D values by
// determinism of SJ.Dec.
//
// Leakage: a hit reveals nothing the server did not already hold. The
// cached D values are exactly the sigma(q) material the server
// observed when it first executed the token, and the key is derived
// from ciphertext bytes it stores anyway.
//
// Entries are filled sparsely: a prefiltered query decrypts only its
// candidate rows and caches only those slots; a later broader query
// under the same token pays pairings only for the rows still missing.

// decKey identifies one cached decryption: a table version crossed
// with a token digest.
type decKey struct {
	table   string
	version uint64
	token   [sha256.Size]byte
}

// decEntry holds the per-row D values decrypted so far under one key.
// rows is indexed by original row number; nil slots are not yet
// decrypted.
type decEntry struct {
	key   decKey
	rows  []securejoin.DValue
	bytes int64
}

// Byte-accounting constants: a per-entry fixed cost plus a per-slot
// slice header, so even an entry of empty slots is charged against the
// budget.
const (
	decEntryOverhead = 128
	decSlotOverhead  = 24
)

// decryptCache is a byte-budgeted LRU over decEntries. Eviction is per
// entry (one table version x token), never per row.
type decryptCache struct {
	mu        sync.Mutex
	budget    int64
	bytes     int64
	lru       *list.List // of *decEntry; front = most recent
	entries   map[decKey]*list.Element
	hits      uint64
	misses    uint64
	evicted   uint64
	oversized uint64
}

func newDecryptCache(budget int64) *decryptCache {
	return &decryptCache{
		budget:  budget,
		lru:     list.New(),
		entries: make(map[decKey]*list.Element),
	}
}

// snapshot returns a copy of the entry's row slice (sharing the
// immutable DValue bytes) or nil when the key is absent. Copying under
// the lock lets callers read slots while concurrent fills mutate the
// entry.
func (c *decryptCache) snapshot(key decKey) []securejoin.DValue {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil
	}
	c.lru.MoveToFront(el)
	e := el.Value.(*decEntry)
	out := make([]securejoin.DValue, len(e.rows))
	copy(out, e.rows)
	return out
}

// record accumulates lookup statistics for DecryptCacheStats.
func (c *decryptCache) record(hits, misses uint64) {
	c.mu.Lock()
	c.hits += hits
	c.misses += misses
	c.mu.Unlock()
}

// fill installs freshly decrypted rows into the entry for key (creating
// it for a table of n rows), then evicts least-recently-used entries
// until the cache fits its budget again. It returns the number of
// entries evicted and whether the filled entry itself outgrew the whole
// budget. An oversized entry is dropped immediately rather than cached:
// keeping it would first evict every other entry and then be evicted
// itself on the next fill, so an oversized table would thrash the cache
// to empty on every query while never producing a warm hit. Two
// concurrent identical queries may both decrypt a row; determinism
// makes the double fill harmless.
func (c *decryptCache) fill(key decKey, n int, rows []int, vals []securejoin.DValue) (evictions uint64, oversized bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	var e *decEntry
	if ok {
		c.lru.MoveToFront(el)
		e = el.Value.(*decEntry)
	} else {
		e = &decEntry{
			key:   key,
			rows:  make([]securejoin.DValue, n),
			bytes: decEntryOverhead + int64(n)*decSlotOverhead,
		}
		c.entries[key] = c.lru.PushFront(e)
		c.bytes += e.bytes
	}
	for i, r := range rows {
		if r < 0 || r >= len(e.rows) || e.rows[r] != nil {
			continue
		}
		e.rows[r] = vals[i]
		e.bytes += int64(len(vals[i]))
		c.bytes += int64(len(vals[i]))
	}
	if e.bytes > c.budget {
		c.removeLocked(e)
		c.oversized++
		oversized = true
	}
	for c.bytes > c.budget && c.lru.Len() > 0 {
		back := c.lru.Back()
		c.removeLocked(back.Value.(*decEntry))
		evictions++
	}
	c.evicted += evictions
	return evictions, oversized
}

func (c *decryptCache) removeLocked(e *decEntry) {
	el, ok := c.entries[e.key]
	if !ok {
		return
	}
	c.lru.Remove(el)
	delete(c.entries, e.key)
	c.bytes -= e.bytes
}

// purgeTable drops every entry of a table, whatever its version or
// token — called when a name is re-registered or dropped so stale
// versions stop occupying budget. Purges are invalidations, not
// capacity evictions, and are not counted in the eviction metric.
func (c *decryptCache) purgeTable(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for key, el := range c.entries {
		if key.table == name {
			c.removeLocked(el.Value.(*decEntry))
		}
	}
}

func (c *decryptCache) sizeBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// DecryptCacheStats is a point-in-time view of the decrypt-result
// cache, surfaced through EXPLAIN and the wire server's status.
type DecryptCacheStats struct {
	Enabled   bool
	Hits      uint64
	Misses    uint64
	Evictions uint64
	// Oversized counts fills whose single entry outgrew the entire byte
	// budget and was therefore dropped instead of cached (see fill).
	Oversized uint64
	Entries   int
	Bytes     int64
	Budget    int64
}

func (c *decryptCache) stats() DecryptCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return DecryptCacheStats{
		Enabled:   true,
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evicted,
		Oversized: c.oversized,
		Entries:   len(c.entries),
		Bytes:     c.bytes,
		Budget:    c.budget,
	}
}

// SetDecryptCache attaches a decrypt-result cache with the given byte
// budget; budget <= 0 detaches it. Safe to call at any time, including
// while joins are executing: the pointer is swapped atomically, in-
// flight decrypt phases finish against whichever cache they loaded, and
// later phases see the new one (resetting the budget discards all
// cached entries along with the old cache).
func (s *Server) SetDecryptCache(budget int64) {
	if budget <= 0 {
		s.decCache.Store(nil)
		s.met.DecCacheBytes.Set(0)
		return
	}
	s.decCache.Store(newDecryptCache(budget))
}

// DecryptCacheStats reports the decrypt cache's counters; Enabled is
// false (and everything else zero) when no cache is attached.
func (s *Server) DecryptCacheStats() DecryptCacheStats {
	cache := s.decCache.Load()
	if cache == nil {
		return DecryptCacheStats{}
	}
	return cache.stats()
}

// tokenDec is the per-stream decryption context of one (token, table
// version) pair: the token's precomputed Miller program plus the cache
// key it decrypts under. The zero key with cached == false means the
// rows bypass the cache.
type tokenDec struct {
	pc     *securejoin.TokenPrecomp
	key    decKey
	cached bool
}

// newTokenDec records the token's Miller program once and derives the
// token's cache key. The key is derived even when no cache is attached
// at open time: SetDecryptCache may install one at runtime, and a
// long-lived stream should start filling it from its next decrypt
// phase.
func (s *Server) newTokenDec(tk *securejoin.Token, table string, version uint64) *tokenDec {
	td := &tokenDec{pc: tk.Precompute()}
	raw, err := tk.MarshalBinary()
	if err != nil {
		// A token that cannot be serialized cannot be cache-keyed; run
		// it uncached rather than fail the join.
		return td
	}
	td.key = decKey{table: table, version: version, token: sha256.Sum256(raw)}
	td.cached = true
	return td
}

// decryptRows runs SJ.Dec over the selected row subset (nil = every
// row) through the stream's precomputed token, spreading the pairings
// over a worker pool (workers <= 0 uses GOMAXPROCS). With a decrypt
// cache attached, rows already decrypted under the same (table
// version, token) are served from it and only the missing rows pay
// pairings; the fresh results are cached for the next lookup.
func (s *Server) decryptRows(td *tokenDec, t *EncryptedTable, rows []int, workers int) ([]securejoin.DValue, error) {
	for _, r := range rows {
		if r < 0 || r >= len(t.Rows) {
			return nil, fmt.Errorf("engine: candidate row %d out of range", r)
		}
	}
	cache := s.decCache.Load()
	if cache == nil || !td.cached {
		cts := gatherCiphertexts(t, rows)
		return securejoin.DecryptTableParallelWith(td.pc, cts, workers)
	}

	snap := cache.snapshot(td.key)
	count := candCount(rows, len(t.Rows))
	out := make([]securejoin.DValue, count)
	var missRows, missPos []int
	for i := 0; i < count; i++ {
		r := candRow(rows, i)
		if snap != nil && r < len(snap) && snap[r] != nil {
			out[i] = snap[r]
			continue
		}
		missRows = append(missRows, r)
		missPos = append(missPos, i)
	}
	hits := uint64(count - len(missRows))
	cache.record(hits, uint64(len(missRows)))
	s.met.DecCacheHits.Add(hits)
	s.met.DecCacheMisses.Add(uint64(len(missRows)))
	if len(missRows) == 0 {
		return out, nil
	}

	cts := gatherCiphertexts(t, missRows)
	vals, err := securejoin.DecryptTableParallelWith(td.pc, cts, workers)
	if err != nil {
		return nil, err
	}
	for i, v := range vals {
		out[missPos[i]] = v
	}
	evictions, oversized := cache.fill(td.key, len(t.Rows), missRows, vals)
	s.met.DecCacheEvictions.Add(evictions)
	if oversized {
		s.met.DecCacheOversized.Inc()
	}
	s.met.DecCacheBytes.Set(cache.sizeBytes())
	return out, nil
}

// gatherCiphertexts resolves a candidate list (nil = every row, and
// already bounds-checked by the caller) to the rows' join ciphertexts.
func gatherCiphertexts(t *EncryptedTable, rows []int) []*securejoin.RowCiphertext {
	if rows == nil {
		cts := make([]*securejoin.RowCiphertext, len(t.Rows))
		for i, r := range t.Rows {
			cts[i] = r.Join
		}
		return cts
	}
	cts := make([]*securejoin.RowCiphertext, len(rows))
	for i, r := range rows {
		cts[i] = t.Rows[r].Join
	}
	return cts
}
