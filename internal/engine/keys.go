package engine

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/securejoin"
	"repro/internal/sse"
)

// Client key persistence: ExportKeys writes every client secret (Secure
// Join master key, payload AEAD key, SSE index keys) so a client can be
// reconstructed in a later session with LoadClientKeys and keep
// querying previously uploaded tables. The output must be stored like
// any other long-term secret key.

type keyFile struct {
	Scheme  []byte
	Payload []byte
	SSE     []byte
}

// ExportKeys serializes all client secrets to w.
func (c *Client) ExportKeys(w io.Writer) error {
	schemeBytes, err := c.scheme.MarshalBinary()
	if err != nil {
		return fmt.Errorf("engine: encoding scheme: %w", err)
	}
	sseBytes, err := c.sse.MarshalKeys()
	if err != nil {
		return fmt.Errorf("engine: encoding SSE keys: %w", err)
	}
	return gob.NewEncoder(w).Encode(&keyFile{
		Scheme:  schemeBytes,
		Payload: c.payloadKey,
		SSE:     sseBytes,
	})
}

// LoadClientKeys reconstructs a client from ExportKeys output.
func LoadClientKeys(r io.Reader) (*Client, error) {
	var f keyFile
	if err := gob.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("engine: decoding key file: %w", err)
	}
	scheme, err := securejoin.LoadScheme(f.Scheme, nil)
	if err != nil {
		return nil, err
	}
	if len(f.Payload) != 32 {
		return nil, fmt.Errorf("engine: payload key has %d bytes, want 32", len(f.Payload))
	}
	block, err := aes.NewCipher(f.Payload)
	if err != nil {
		return nil, err
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, err
	}
	sseClient, err := sse.LoadClientKeys(f.SSE)
	if err != nil {
		return nil, err
	}
	return &Client{
		scheme:      scheme,
		payloadAEAD: aead,
		payloadKey:  f.Payload,
		sse:         sseClient,
		rng:         rand.Reader,
	}, nil
}
