package engine

import (
	"fmt"
	"sort"

	"repro/internal/securejoin"
	"repro/internal/sse"
)

// This file adds the optional SSE pre-filter of Section 4.3 ("There
// exist many (searchable) encryption schemes which can be used for
// pre-filtering the rows with the attributes matching the selection
// criteria reducing the size of the tables, but they are orthogonal to
// our join encryption scheme"). When a table is uploaded with an index,
// the server can resolve the selection predicates via SSE first and run
// the expensive SJ.Dec pairings only over the candidate rows — turning
// per-query work from O(n) pairings into O(selectivity * n).
//
// The pre-filter trades a little leakage for that speedup: the server
// additionally learns which rows match each *individual* attribute
// predicate (standard SSE access-pattern leakage), not only the
// equality pairs among fully-matching rows. Clients wanting the exact
// leakage of Theorem 5.2 use ExecuteJoin instead.

// PrefilterQuery carries, for each table, the SSE tokens of the query's
// selection predicates: one token list per restricted attribute
// (tokens of one attribute are OR'ed, attributes are AND'ed), matching
// the WHERE ... IN (...) AND ... semantics.
type PrefilterQuery struct {
	Join    *securejoin.Query
	TokensA map[int][]sse.SearchToken
	TokensB map[int][]sse.SearchToken
}

// EncryptTableIndexed encrypts a table and builds its SSE pre-filter
// index over the same attribute values used by the Secure Join
// selection polynomials.
func (c *Client) EncryptTableIndexed(name string, rows []PlainRow) (*EncryptedTable, error) {
	table, err := c.EncryptTable(name, rows)
	if err != nil {
		return nil, err
	}
	attrRows := make([][][]byte, len(rows))
	for i, r := range rows {
		attrRows[i] = r.Attrs
	}
	idx, err := c.sse.BuildIndex(attrRows)
	if err != nil {
		return nil, fmt.Errorf("engine: building SSE index for %s: %w", name, err)
	}
	table.Index = idx
	return table, nil
}

// NewPrefilterQuery issues the join tokens plus the SSE search tokens
// for both selections.
func (c *Client) NewPrefilterQuery(selA, selB securejoin.Selection) (*PrefilterQuery, error) {
	q, err := c.NewQuery(selA, selB)
	if err != nil {
		return nil, err
	}
	return &PrefilterQuery{
		Join:    q,
		TokensA: c.sseTokens(selA),
		TokensB: c.sseTokens(selB),
	}, nil
}

func (c *Client) sseTokens(sel securejoin.Selection) map[int][]sse.SearchToken {
	out := make(map[int][]sse.SearchToken, len(sel))
	for attr, values := range sel {
		toks := make([]sse.SearchToken, len(values))
		for i, v := range values {
			toks[i] = c.sse.Tokenize(attr, v)
		}
		out[attr] = toks
	}
	return out
}

// ExecuteJoinPrefiltered runs a join like ExecuteJoin but resolves the
// selection predicates through each table's SSE index first, paying
// SJ.Dec only for candidate rows. Tables uploaded without an index are
// processed in full. It is a thin wrapper draining the same planned
// pipeline behind OpenJoin that serves full scans.
func (s *Server) ExecuteJoinPrefiltered(tableA, tableB string, q *PrefilterQuery) ([]JoinedRow, *QueryTrace, error) {
	st, err := s.OpenJoin(tableA, tableB, JoinSpec{Prefilter: q})
	if err != nil {
		return nil, nil, err
	}
	return drain(st)
}

// candidates resolves a table's pre-filter: the intersection over
// restricted attributes of the union over each attribute's values.
// With no index or no restrictions it returns the nil sentinel meaning
// "every row" — full scans never materialize an all-rows index slice.
func candidates(t *EncryptedTable, tokens map[int][]sse.SearchToken) ([]int, error) {
	if t.Index == nil || len(tokens) == 0 {
		return nil, nil
	}
	cand := []int{} // non-nil: an empty pre-filter result means no rows
	first := true
	for _, toks := range tokens {
		rows, err := t.Index.SearchUnion(toks)
		if err != nil {
			return nil, err
		}
		// IntersectSorted silently drops rows on unsorted input, so an
		// index implementation that stops sorting would turn into wrong
		// (not slow) results; sort defensively when the invariant is
		// violated.
		if !sortedUnique(rows) {
			rows = sortUnique(rows)
		}
		if first {
			cand = rows
			first = false
			continue
		}
		cand = sse.IntersectSorted(cand, rows)
	}
	if cand == nil {
		// IntersectSorted returns nil for an empty intersection; keep
		// the no-rows result distinct from the nil "every row" sentinel.
		cand = []int{}
	}
	return cand, nil
}

// mergeCandidates intersects the pre-filter's candidate rows with an
// explicit candidate list from a JoinSpec (the semi-join reduction).
// An empty explicit list means "no explicit restriction" — over the
// wire the field is gob-additive, so absent and empty are
// indistinguishable, and a multi-join executor never ships an empty
// list anyway (an empty intermediate short-circuits the whole plan).
// Out-of-range ids are dropped defensively rather than crashing the
// decrypt pipeline on a confused (or malicious) client.
func mergeCandidates(cand, explicit []int, tableRows int) []int {
	if len(explicit) == 0 {
		return cand
	}
	if !sortedUnique(explicit) {
		explicit = sortUnique(explicit)
	}
	ex := make([]int, 0, len(explicit))
	for _, id := range explicit {
		if id >= 0 && id < tableRows {
			ex = append(ex, id)
		}
	}
	if cand == nil {
		return ex
	}
	out := sse.IntersectSorted(cand, ex)
	if out == nil {
		out = []int{} // keep "no rows" distinct from the "every row" sentinel
	}
	return out
}

// sortedUnique reports whether xs is strictly ascending.
func sortedUnique(xs []int) bool {
	for i := 1; i < len(xs); i++ {
		if xs[i] <= xs[i-1] {
			return false
		}
	}
	return true
}

// sortUnique returns xs sorted ascending with duplicates removed.
func sortUnique(xs []int) []int {
	out := append([]int(nil), xs...)
	sort.Ints(out)
	n := 0
	for i, x := range out {
		if i == 0 || x != out[n-1] {
			out[n] = x
			n++
		}
	}
	return out[:n]
}

// candRow maps an index into a candidate list back to the original row
// number; the nil sentinel means the identity mapping (full scan).
func candRow(cand []int, i int) int {
	if cand == nil {
		return i
	}
	return cand[i]
}

// candCount is the number of candidate rows (nil sentinel = the whole
// table).
func candCount(cand []int, tableRows int) int {
	if cand == nil {
		return tableRows
	}
	return len(cand)
}
