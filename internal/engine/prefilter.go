package engine

import (
	"fmt"

	"repro/internal/leakage"
	"repro/internal/securejoin"
	"repro/internal/sse"
)

// This file adds the optional SSE pre-filter of Section 4.3 ("There
// exist many (searchable) encryption schemes which can be used for
// pre-filtering the rows with the attributes matching the selection
// criteria reducing the size of the tables, but they are orthogonal to
// our join encryption scheme"). When a table is uploaded with an index,
// the server can resolve the selection predicates via SSE first and run
// the expensive SJ.Dec pairings only over the candidate rows — turning
// per-query work from O(n) pairings into O(selectivity * n).
//
// The pre-filter trades a little leakage for that speedup: the server
// additionally learns which rows match each *individual* attribute
// predicate (standard SSE access-pattern leakage), not only the
// equality pairs among fully-matching rows. Clients wanting the exact
// leakage of Theorem 5.2 use ExecuteJoin instead.

// PrefilterQuery carries, for each table, the SSE tokens of the query's
// selection predicates: one token list per restricted attribute
// (tokens of one attribute are OR'ed, attributes are AND'ed), matching
// the WHERE ... IN (...) AND ... semantics.
type PrefilterQuery struct {
	Join    *securejoin.Query
	TokensA map[int][]sse.SearchToken
	TokensB map[int][]sse.SearchToken
}

// EncryptTableIndexed encrypts a table and builds its SSE pre-filter
// index over the same attribute values used by the Secure Join
// selection polynomials.
func (c *Client) EncryptTableIndexed(name string, rows []PlainRow) (*EncryptedTable, error) {
	table, err := c.EncryptTable(name, rows)
	if err != nil {
		return nil, err
	}
	attrRows := make([][][]byte, len(rows))
	for i, r := range rows {
		attrRows[i] = r.Attrs
	}
	idx, err := c.sse.BuildIndex(attrRows)
	if err != nil {
		return nil, fmt.Errorf("engine: building SSE index for %s: %w", name, err)
	}
	table.Index = idx
	return table, nil
}

// NewPrefilterQuery issues the join tokens plus the SSE search tokens
// for both selections.
func (c *Client) NewPrefilterQuery(selA, selB securejoin.Selection) (*PrefilterQuery, error) {
	q, err := c.NewQuery(selA, selB)
	if err != nil {
		return nil, err
	}
	return &PrefilterQuery{
		Join:    q,
		TokensA: c.sseTokens(selA),
		TokensB: c.sseTokens(selB),
	}, nil
}

func (c *Client) sseTokens(sel securejoin.Selection) map[int][]sse.SearchToken {
	out := make(map[int][]sse.SearchToken, len(sel))
	for attr, values := range sel {
		toks := make([]sse.SearchToken, len(values))
		for i, v := range values {
			toks[i] = c.sse.Tokenize(attr, v)
		}
		out[attr] = toks
	}
	return out
}

// ExecuteJoinPrefiltered runs a join like ExecuteJoin but resolves the
// selection predicates through each table's SSE index first, paying
// SJ.Dec only for candidate rows. Tables uploaded without an index are
// processed in full.
func (s *Server) ExecuteJoinPrefiltered(tableA, tableB string, q *PrefilterQuery) ([]JoinedRow, *QueryTrace, error) {
	ta, tb, err := s.snapshot(tableA, tableB)
	if err != nil {
		return nil, nil, err
	}

	candA, err := candidates(ta, q.TokensA)
	if err != nil {
		return nil, nil, err
	}
	candB, err := candidates(tb, q.TokensB)
	if err != nil {
		return nil, nil, err
	}

	das, err := decryptRows(q.Join.TokenA, ta, candA)
	if err != nil {
		return nil, nil, err
	}
	dbs, err := decryptRows(q.Join.TokenB, tb, candB)
	if err != nil {
		return nil, nil, err
	}

	pairs := securejoin.HashJoin(das, dbs)
	result := make([]JoinedRow, len(pairs))
	trace := &QueryTrace{Pairs: leakage.NewPairSet()}
	for i, p := range pairs {
		ra, rb := candA[p.RowA], candB[p.RowB]
		result[i] = JoinedRow{
			RowA: ra, RowB: rb,
			PayloadA: ta.Rows[ra].Payload,
			PayloadB: tb.Rows[rb].Payload,
		}
		trace.Pairs.Add(leakage.Pair{
			A: leakage.RowRef{Table: tableA, Row: ra},
			B: leakage.RowRef{Table: tableB, Row: rb},
		})
	}
	for _, sp := range securejoin.SelfPairs(das) {
		trace.Pairs.Add(leakage.Pair{
			A: leakage.RowRef{Table: tableA, Row: candA[sp[0]]},
			B: leakage.RowRef{Table: tableA, Row: candA[sp[1]]},
		})
	}
	for _, sp := range securejoin.SelfPairs(dbs) {
		trace.Pairs.Add(leakage.Pair{
			A: leakage.RowRef{Table: tableB, Row: candB[sp[0]]},
			B: leakage.RowRef{Table: tableB, Row: candB[sp[1]]},
		})
	}
	s.recordTrace(trace)
	return result, trace, nil
}

// candidates resolves a table's pre-filter: the intersection over
// restricted attributes of the union over each attribute's values.
// With no index or no restrictions, every row is a candidate.
func candidates(t *EncryptedTable, tokens map[int][]sse.SearchToken) ([]int, error) {
	if t.Index == nil || len(tokens) == 0 {
		all := make([]int, len(t.Rows))
		for i := range all {
			all[i] = i
		}
		return all, nil
	}
	var cand []int
	first := true
	for _, toks := range tokens {
		rows, err := t.Index.SearchUnion(toks)
		if err != nil {
			return nil, err
		}
		if first {
			cand = rows
			first = false
			continue
		}
		cand = sse.IntersectSorted(cand, rows)
	}
	return cand, nil
}

// decryptRows runs SJ.Dec over the selected row subset only.
func decryptRows(tk *securejoin.Token, t *EncryptedTable, rows []int) ([]securejoin.DValue, error) {
	cts := make([]*securejoin.RowCiphertext, len(rows))
	for i, r := range rows {
		if r < 0 || r >= len(t.Rows) {
			return nil, fmt.Errorf("engine: candidate row %d out of range", r)
		}
		cts[i] = t.Rows[r].Join
	}
	return securejoin.DecryptTable(tk, cts)
}
