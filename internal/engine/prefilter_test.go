package engine

import (
	"io"
	"testing"

	"repro/internal/securejoin"
)

func setupIndexed(t *testing.T) (*Client, *Server) {
	t.Helper()
	client, err := NewClient(securejoin.Params{M: 1, T: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	server := NewServer()
	teams, employees := exampleTables()
	encT, err := client.EncryptTableIndexed("Teams", teams)
	if err != nil {
		t.Fatal(err)
	}
	encE, err := client.EncryptTableIndexed("Employees", employees)
	if err != nil {
		t.Fatal(err)
	}
	if encT.Index == nil || encE.Index == nil {
		t.Fatal("indexed upload did not attach an index")
	}
	server.Upload(encT)
	server.Upload(encE)
	return client, server
}

// TestPrefilteredJoinMatchesFullJoin: the pre-filtered execution path
// must return exactly the same result rows as the full scan.
func TestPrefilteredJoinMatchesFullJoin(t *testing.T) {
	client, server := setupIndexed(t)
	selA := securejoin.Selection{0: [][]byte{[]byte("Web Application")}}
	selB := securejoin.Selection{0: [][]byte{[]byte("Tester")}}

	pq, err := client.NewPrefilterQuery(selA, selB)
	if err != nil {
		t.Fatal(err)
	}
	fast, trace, err := server.ExecuteJoinPrefiltered("Teams", "Employees", pq)
	if err != nil {
		t.Fatal(err)
	}

	q, err := client.NewQuery(selA, selB)
	if err != nil {
		t.Fatal(err)
	}
	full, _, err := server.ExecuteJoin("Teams", "Employees", q)
	if err != nil {
		t.Fatal(err)
	}

	if len(fast) != len(full) {
		t.Fatalf("prefiltered join returned %d rows, full join %d", len(fast), len(full))
	}
	for i := range fast {
		if fast[i].RowA != full[i].RowA || fast[i].RowB != full[i].RowB {
			t.Fatalf("row %d differs: %v vs %v", i, fast[i], full[i])
		}
	}
	if trace.Pairs.Len() != 1 {
		t.Fatalf("trace has %d pairs", trace.Pairs.Len())
	}
}

// TestPrefilteredJoinINClause: IN clauses union within an attribute.
func TestPrefilteredJoinINClause(t *testing.T) {
	client, server := setupIndexed(t)
	pq, err := client.NewPrefilterQuery(
		securejoin.Selection{0: [][]byte{[]byte("Web Application"), []byte("Database")}},
		securejoin.Selection{0: [][]byte{[]byte("Tester")}},
	)
	if err != nil {
		t.Fatal(err)
	}
	rows, _, err := server.ExecuteJoinPrefiltered("Teams", "Employees", pq)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("expected both testers, got %d rows", len(rows))
	}
}

// TestPrefilterOnUnindexedTableFallsBack: a table uploaded without an
// index is processed with a full scan and the query still succeeds.
func TestPrefilterOnUnindexedTableFallsBack(t *testing.T) {
	client, err := NewClient(securejoin.Params{M: 1, T: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	server := NewServer()
	teams, employees := exampleTables()
	encT, err := client.EncryptTable("Teams", teams) // no index
	if err != nil {
		t.Fatal(err)
	}
	encE, err := client.EncryptTableIndexed("Employees", employees)
	if err != nil {
		t.Fatal(err)
	}
	server.Upload(encT)
	server.Upload(encE)

	pq, err := client.NewPrefilterQuery(
		securejoin.Selection{0: [][]byte{[]byte("Web Application")}},
		securejoin.Selection{0: [][]byte{[]byte("Tester")}},
	)
	if err != nil {
		t.Fatal(err)
	}
	rows, _, err := server.ExecuteJoinPrefiltered("Teams", "Employees", pq)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("expected 1 row, got %d", len(rows))
	}
}

// TestPrefilterEmptySelection: with no predicates every row is a
// candidate and the pre-filtered path degenerates to the full join.
func TestPrefilterEmptySelection(t *testing.T) {
	client, server := setupIndexed(t)
	pq, err := client.NewPrefilterQuery(securejoin.Selection{}, securejoin.Selection{})
	if err != nil {
		t.Fatal(err)
	}
	rows, _, err := server.ExecuteJoinPrefiltered("Teams", "Employees", pq)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("unfiltered join should return 4 rows, got %d", len(rows))
	}
}

// TestPrefilterNoMatches: predicates selecting nothing yield an empty
// result without error.
func TestPrefilterNoMatches(t *testing.T) {
	client, server := setupIndexed(t)
	pq, err := client.NewPrefilterQuery(
		securejoin.Selection{0: [][]byte{[]byte("No Such Team")}},
		securejoin.Selection{},
	)
	if err != nil {
		t.Fatal(err)
	}
	rows, trace, err := server.ExecuteJoinPrefiltered("Teams", "Employees", pq)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 0 {
		t.Fatalf("expected no joined rows, got %d", len(rows))
	}
	// The Employees side is unrestricted, so its intra-table equality
	// pairs (two teams of two) are legitimately revealed even though
	// the cross join is empty — exactly the paper's leakage definition.
	if trace.Pairs.Len() != 2 {
		t.Fatalf("expected the 2 intra-Employees pairs, got %d", trace.Pairs.Len())
	}
}

// TestPrefilteredStreamMatchesOneShot drains the planned pipeline with
// a tiny batch size and checks it yields exactly the rows and trace of
// the one-shot wrapper — the two paths are the same code, but this
// pins the stream plumbing (candidate ordering, row-id mapping).
func TestPrefilteredStreamMatchesOneShot(t *testing.T) {
	client, server := setupIndexed(t)
	selA := securejoin.Selection{0: [][]byte{[]byte("Web Application"), []byte("Database")}}
	selB := securejoin.Selection{0: [][]byte{[]byte("Tester")}}

	pq, err := client.NewPrefilterQuery(selA, selB)
	if err != nil {
		t.Fatal(err)
	}
	want, wantTrace, err := server.ExecuteJoinPrefiltered("Teams", "Employees", pq)
	if err != nil {
		t.Fatal(err)
	}

	pq2, err := client.NewPrefilterQuery(selA, selB)
	if err != nil {
		t.Fatal(err)
	}
	st, err := server.OpenJoin("Teams", "Employees", JoinSpec{Prefilter: pq2, Batch: 1})
	if err != nil {
		t.Fatal(err)
	}
	var got []JoinedRow
	for {
		rows, err := st.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) > 1 {
			t.Fatalf("batch of %d rows exceeds batch size 1", len(rows))
		}
		got = append(got, rows...)
	}
	if len(got) != len(want) {
		t.Fatalf("stream produced %d rows, one-shot %d", len(got), len(want))
	}
	for i := range got {
		if got[i].RowA != want[i].RowA || got[i].RowB != want[i].RowB {
			t.Fatalf("row %d differs: %v vs %v", i, got[i], want[i])
		}
	}
	if st.RevealedPairs() != wantTrace.Pairs.Len() {
		t.Fatalf("stream trace %d pairs, one-shot trace %d", st.RevealedPairs(), wantTrace.Pairs.Len())
	}
}

// TestPrefilteredStreamCloseRecordsPrefix: a prefiltered stream
// released before the first probe must still audit the intra-A pairs
// observed when the build side was decrypted.
func TestPrefilteredStreamCloseRecordsPrefix(t *testing.T) {
	client, server := setupIndexed(t)
	// Employees as the build side: its four rows pair up by join value
	// ((hans,kaily) on "1", (john,sally) on "2"), so decrypting side A
	// alone already leaks two intra-table pairs.
	pq, err := client.NewPrefilterQuery(securejoin.Selection{}, securejoin.Selection{})
	if err != nil {
		t.Fatal(err)
	}
	st, err := server.OpenJoin("Employees", "Teams", JoinSpec{Prefilter: pq, Batch: 1})
	if err != nil {
		t.Fatal(err)
	}
	st.Close() // before any Next: only the build side has leaked
	if st.Trace() == nil {
		t.Fatal("closed stream has no trace")
	}
	// Employees rows (1,2) and (3,4) share join values: 2 intra-A pairs.
	if st.RevealedPairs() != 2 {
		t.Fatalf("prefix trace has %d pairs, want the 2 intra-A pairs", st.RevealedPairs())
	}
	perQuery, _ := server.ObservedLeakage()
	if len(perQuery) != 1 || perQuery[0].Len() != 2 {
		t.Fatalf("audit log = %v, want one 2-pair trace", perQuery)
	}
}

// TestJoinSpecWorkersMatchesSequential: the worker count is a pure
// performance knob — any value must produce identical rows and traces.
func TestJoinSpecWorkersMatchesSequential(t *testing.T) {
	client, server := setupIndexed(t)
	selB := securejoin.Selection{0: [][]byte{[]byte("Tester")}}
	var baseRows []JoinedRow
	var basePairs int
	for i, workers := range []int{1, 0, 4} {
		pq, err := client.NewPrefilterQuery(securejoin.Selection{}, selB)
		if err != nil {
			t.Fatal(err)
		}
		st, err := server.OpenJoin("Teams", "Employees", JoinSpec{Prefilter: pq, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		rows, _, err := drain(st)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			baseRows, basePairs = rows, st.RevealedPairs()
			continue
		}
		if len(rows) != len(baseRows) || st.RevealedPairs() != basePairs {
			t.Fatalf("workers=%d: %d rows/%d pairs, want %d/%d",
				workers, len(rows), st.RevealedPairs(), len(baseRows), basePairs)
		}
		for j := range rows {
			if rows[j].RowA != baseRows[j].RowA || rows[j].RowB != baseRows[j].RowB {
				t.Fatalf("workers=%d: row %d differs", workers, j)
			}
		}
	}
}

// TestJoinSpecWithoutTokens: a spec carrying neither Query nor
// Prefilter fails loudly instead of dereferencing nil.
func TestJoinSpecWithoutTokens(t *testing.T) {
	_, server := setupIndexed(t)
	if _, err := server.OpenJoin("Teams", "Employees", JoinSpec{}); err == nil {
		t.Fatal("empty spec accepted")
	}
}
