package engine

import (
	"testing"

	"repro/internal/securejoin"
)

func setupIndexed(t *testing.T) (*Client, *Server) {
	t.Helper()
	client, err := NewClient(securejoin.Params{M: 1, T: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	server := NewServer()
	teams, employees := exampleTables()
	encT, err := client.EncryptTableIndexed("Teams", teams)
	if err != nil {
		t.Fatal(err)
	}
	encE, err := client.EncryptTableIndexed("Employees", employees)
	if err != nil {
		t.Fatal(err)
	}
	if encT.Index == nil || encE.Index == nil {
		t.Fatal("indexed upload did not attach an index")
	}
	server.Upload(encT)
	server.Upload(encE)
	return client, server
}

// TestPrefilteredJoinMatchesFullJoin: the pre-filtered execution path
// must return exactly the same result rows as the full scan.
func TestPrefilteredJoinMatchesFullJoin(t *testing.T) {
	client, server := setupIndexed(t)
	selA := securejoin.Selection{0: [][]byte{[]byte("Web Application")}}
	selB := securejoin.Selection{0: [][]byte{[]byte("Tester")}}

	pq, err := client.NewPrefilterQuery(selA, selB)
	if err != nil {
		t.Fatal(err)
	}
	fast, trace, err := server.ExecuteJoinPrefiltered("Teams", "Employees", pq)
	if err != nil {
		t.Fatal(err)
	}

	q, err := client.NewQuery(selA, selB)
	if err != nil {
		t.Fatal(err)
	}
	full, _, err := server.ExecuteJoin("Teams", "Employees", q)
	if err != nil {
		t.Fatal(err)
	}

	if len(fast) != len(full) {
		t.Fatalf("prefiltered join returned %d rows, full join %d", len(fast), len(full))
	}
	for i := range fast {
		if fast[i].RowA != full[i].RowA || fast[i].RowB != full[i].RowB {
			t.Fatalf("row %d differs: %v vs %v", i, fast[i], full[i])
		}
	}
	if trace.Pairs.Len() != 1 {
		t.Fatalf("trace has %d pairs", trace.Pairs.Len())
	}
}

// TestPrefilteredJoinINClause: IN clauses union within an attribute.
func TestPrefilteredJoinINClause(t *testing.T) {
	client, server := setupIndexed(t)
	pq, err := client.NewPrefilterQuery(
		securejoin.Selection{0: [][]byte{[]byte("Web Application"), []byte("Database")}},
		securejoin.Selection{0: [][]byte{[]byte("Tester")}},
	)
	if err != nil {
		t.Fatal(err)
	}
	rows, _, err := server.ExecuteJoinPrefiltered("Teams", "Employees", pq)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("expected both testers, got %d rows", len(rows))
	}
}

// TestPrefilterOnUnindexedTableFallsBack: a table uploaded without an
// index is processed with a full scan and the query still succeeds.
func TestPrefilterOnUnindexedTableFallsBack(t *testing.T) {
	client, err := NewClient(securejoin.Params{M: 1, T: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	server := NewServer()
	teams, employees := exampleTables()
	encT, err := client.EncryptTable("Teams", teams) // no index
	if err != nil {
		t.Fatal(err)
	}
	encE, err := client.EncryptTableIndexed("Employees", employees)
	if err != nil {
		t.Fatal(err)
	}
	server.Upload(encT)
	server.Upload(encE)

	pq, err := client.NewPrefilterQuery(
		securejoin.Selection{0: [][]byte{[]byte("Web Application")}},
		securejoin.Selection{0: [][]byte{[]byte("Tester")}},
	)
	if err != nil {
		t.Fatal(err)
	}
	rows, _, err := server.ExecuteJoinPrefiltered("Teams", "Employees", pq)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("expected 1 row, got %d", len(rows))
	}
}

// TestPrefilterEmptySelection: with no predicates every row is a
// candidate and the pre-filtered path degenerates to the full join.
func TestPrefilterEmptySelection(t *testing.T) {
	client, server := setupIndexed(t)
	pq, err := client.NewPrefilterQuery(securejoin.Selection{}, securejoin.Selection{})
	if err != nil {
		t.Fatal(err)
	}
	rows, _, err := server.ExecuteJoinPrefiltered("Teams", "Employees", pq)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("unfiltered join should return 4 rows, got %d", len(rows))
	}
}

// TestPrefilterNoMatches: predicates selecting nothing yield an empty
// result without error.
func TestPrefilterNoMatches(t *testing.T) {
	client, server := setupIndexed(t)
	pq, err := client.NewPrefilterQuery(
		securejoin.Selection{0: [][]byte{[]byte("No Such Team")}},
		securejoin.Selection{},
	)
	if err != nil {
		t.Fatal(err)
	}
	rows, trace, err := server.ExecuteJoinPrefiltered("Teams", "Employees", pq)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 0 {
		t.Fatalf("expected no joined rows, got %d", len(rows))
	}
	// The Employees side is unrestricted, so its intra-table equality
	// pairs (two teams of two) are legitimately revealed even though
	// the cross join is empty — exactly the paper's leakage definition.
	if trace.Pairs.Len() != 2 {
		t.Fatalf("expected the 2 intra-Employees pairs, got %d", trace.Pairs.Len())
	}
}
