package engine

import (
	"sort"
	"testing"

	"repro/internal/securejoin"
)

// joinKey flattens a join result into comparable (rowA, rowB) pairs.
func joinKeys(rows []JoinedRow) [][2]int {
	out := make([][2]int, len(rows))
	for i, r := range rows {
		out[i] = [2]int{r.RowA, r.RowB}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

func sameJoin(t *testing.T, a, b []JoinedRow) {
	t.Helper()
	ka, kb := joinKeys(a), joinKeys(b)
	if len(ka) != len(kb) {
		t.Fatalf("join cardinality changed: %d vs %d rows", len(ka), len(kb))
	}
	for i := range ka {
		if ka[i] != kb[i] {
			t.Fatalf("join pair %d changed: %v vs %v", i, ka[i], kb[i])
		}
	}
}

// TestDecryptCacheWarmHit re-executes one query token against an
// unchanged server: the second run must be served entirely from the
// decrypt cache and still produce the identical join result and
// sigma(q) trace.
func TestDecryptCacheWarmHit(t *testing.T) {
	client, server := setup(t)
	server.SetDecryptCache(64 << 20)

	q, err := client.NewQuery(
		securejoin.Selection{0: [][]byte{[]byte("Web Application")}},
		securejoin.Selection{0: [][]byte{[]byte("Tester")}},
	)
	if err != nil {
		t.Fatal(err)
	}
	cold, coldTrace, err := server.ExecuteJoin("Teams", "Employees", q)
	if err != nil {
		t.Fatal(err)
	}
	st := server.DecryptCacheStats()
	if !st.Enabled {
		t.Fatal("cache attached but stats report disabled")
	}
	if st.Hits != 0 || st.Misses != 6 {
		t.Fatalf("cold run: hits=%d misses=%d, want 0/6", st.Hits, st.Misses)
	}

	warm, warmTrace, err := server.ExecuteJoin("Teams", "Employees", q)
	if err != nil {
		t.Fatal(err)
	}
	sameJoin(t, cold, warm)
	if coldTrace.Pairs.Len() != warmTrace.Pairs.Len() {
		t.Fatalf("sigma changed under caching: %d vs %d pairs",
			coldTrace.Pairs.Len(), warmTrace.Pairs.Len())
	}
	st = server.DecryptCacheStats()
	if st.Hits != 6 || st.Misses != 6 {
		t.Fatalf("warm run: hits=%d misses=%d, want 6/6", st.Hits, st.Misses)
	}
	if st.Entries != 2 || st.Bytes <= 0 {
		t.Fatalf("stats report %d entries / %d bytes after two lookups", st.Entries, st.Bytes)
	}
}

// TestDecryptCacheFreshTokensMiss checks the key's token digest: a new
// query over the same tables (fresh k/delta randomness in the tokens)
// must not hit entries cached under a previous token.
func TestDecryptCacheFreshTokensMiss(t *testing.T) {
	client, server := setup(t)
	server.SetDecryptCache(64 << 20)

	sel := securejoin.Selection{}
	for i := 0; i < 2; i++ {
		q, err := client.NewQuery(sel, sel)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := server.ExecuteJoin("Teams", "Employees", q); err != nil {
			t.Fatal(err)
		}
	}
	st := server.DecryptCacheStats()
	if st.Hits != 0 || st.Misses != 12 {
		t.Fatalf("fresh tokens: hits=%d misses=%d, want 0/12", st.Hits, st.Misses)
	}
}

// TestDecryptCacheInvalidationOnRegister overwrites one table between
// two executions of the same token. The re-registered version must miss
// the cache (its install version changed) and the join must come out
// identical — the rows were re-encrypted from the same plaintext.
func TestDecryptCacheInvalidationOnRegister(t *testing.T) {
	client, server := setup(t)
	server.SetDecryptCache(64 << 20)

	q, err := client.NewQuery(securejoin.Selection{}, securejoin.Selection{})
	if err != nil {
		t.Fatal(err)
	}
	cold, coldTrace, err := server.ExecuteJoin("Teams", "Employees", q)
	if err != nil {
		t.Fatal(err)
	}

	// Re-encrypt Employees from the same plaintext rows: fresh
	// ciphertext randomness, same join semantics, new install version.
	_, employees := exampleTables()
	encE, err := client.EncryptTable("Employees", employees)
	if err != nil {
		t.Fatal(err)
	}
	if err := server.RegisterTable(encE); err != nil {
		t.Fatal(err)
	}

	warm, warmTrace, err := server.ExecuteJoin("Teams", "Employees", q)
	if err != nil {
		t.Fatal(err)
	}
	sameJoin(t, cold, warm)
	if coldTrace.Pairs.Len() != warmTrace.Pairs.Len() {
		t.Fatalf("sigma changed across re-register: %d vs %d pairs",
			coldTrace.Pairs.Len(), warmTrace.Pairs.Len())
	}
	st := server.DecryptCacheStats()
	// Teams (2 rows) hits on the second run; Employees' 4 rows must be
	// re-decrypted under the new version: 6 cold misses + 4 fresh ones.
	if st.Hits != 2 || st.Misses != 10 {
		t.Fatalf("post-register: hits=%d misses=%d, want 2/10", st.Hits, st.Misses)
	}
}

// TestDecryptCachePrefilterSparseFill runs a prefiltered query twice:
// the entry is filled sparsely with only the candidate rows, and the
// re-execution serves exactly those rows from cache.
func TestDecryptCachePrefilterSparseFill(t *testing.T) {
	client, err := NewClient(securejoin.Params{M: 1, T: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	server := NewServer()
	server.SetDecryptCache(64 << 20)
	teams, employees := exampleTables()
	encT, err := client.EncryptTableIndexed("Teams", teams)
	if err != nil {
		t.Fatal(err)
	}
	encE, err := client.EncryptTableIndexed("Employees", employees)
	if err != nil {
		t.Fatal(err)
	}
	server.Upload(encT)
	server.Upload(encE)

	pq, err := client.NewPrefilterQuery(
		securejoin.Selection{0: [][]byte{[]byte("Web Application")}},
		securejoin.Selection{0: [][]byte{[]byte("Tester")}},
	)
	if err != nil {
		t.Fatal(err)
	}
	cold, _, err := server.ExecuteJoinPrefiltered("Teams", "Employees", pq)
	if err != nil {
		t.Fatal(err)
	}
	warm, _, err := server.ExecuteJoinPrefiltered("Teams", "Employees", pq)
	if err != nil {
		t.Fatal(err)
	}
	sameJoin(t, cold, warm)
	st := server.DecryptCacheStats()
	// 1 Teams candidate + 2 Employees candidates per run.
	if st.Misses != 3 || st.Hits != 3 {
		t.Fatalf("prefiltered runs: hits=%d misses=%d, want 3/3", st.Hits, st.Misses)
	}
}

// TestDecryptCacheOversizedDropped bounds the cache well under any
// table entry: every fill's entry alone outgrows the budget, so each is
// dropped as oversized (counted, not cached) rather than thrashing the
// LRU, the budget holds, and results stay correct.
func TestDecryptCacheOversizedDropped(t *testing.T) {
	client, server := setup(t)
	const budget = 512 // smaller than any filled table entry here
	server.SetDecryptCache(budget)

	q, err := client.NewQuery(securejoin.Selection{}, securejoin.Selection{})
	if err != nil {
		t.Fatal(err)
	}
	cold, _, err := server.ExecuteJoin("Teams", "Employees", q)
	if err != nil {
		t.Fatal(err)
	}
	warm, _, err := server.ExecuteJoin("Teams", "Employees", q)
	if err != nil {
		t.Fatal(err)
	}
	sameJoin(t, cold, warm)
	st := server.DecryptCacheStats()
	if st.Oversized != 4 { // 2 tables x 2 runs, never cached
		t.Fatalf("oversized drops = %d, want 4", st.Oversized)
	}
	if st.Evictions != 0 {
		t.Fatalf("oversized drops leaked into the eviction count: %d", st.Evictions)
	}
	if st.Entries != 0 {
		t.Fatalf("%d oversized entries were kept", st.Entries)
	}
	if st.Bytes > budget {
		t.Fatalf("cache holds %d bytes over a %d byte budget", st.Bytes, budget)
	}
}

// TestDecryptCacheOversizedKeepsSmallTablesWarm is the regression test
// for the thrash bug: filling an entry larger than the whole budget
// used to evict everything (its own rows included), so a cache budgeted
// under its biggest table never produced a warm hit for anyone. Now the
// oversized entry alone is dropped and the small table's entry stays
// resident across runs.
func TestDecryptCacheOversizedKeepsSmallTablesWarm(t *testing.T) {
	client, server := setup(t)
	// Teams (2 rows, ~944 bytes filled) fits; Employees (4 rows, ~1760
	// bytes) alone exceeds the budget.
	const budget = 1200
	server.SetDecryptCache(budget)

	q, err := client.NewQuery(securejoin.Selection{}, securejoin.Selection{})
	if err != nil {
		t.Fatal(err)
	}
	cold, _, err := server.ExecuteJoin("Teams", "Employees", q)
	if err != nil {
		t.Fatal(err)
	}
	warm, _, err := server.ExecuteJoin("Teams", "Employees", q)
	if err != nil {
		t.Fatal(err)
	}
	sameJoin(t, cold, warm)
	st := server.DecryptCacheStats()
	// Warm run: Teams' 2 rows hit; Employees' 4 re-decrypt both times.
	if st.Hits != 2 || st.Misses != 10 {
		t.Fatalf("hits=%d misses=%d, want 2/10 (small table warm, big table dropped)", st.Hits, st.Misses)
	}
	if st.Oversized != 2 {
		t.Fatalf("oversized drops = %d, want 2 (Employees, both runs)", st.Oversized)
	}
	if st.Entries != 1 {
		t.Fatalf("cache holds %d entries, want 1 (Teams)", st.Entries)
	}
	if st.Bytes > budget {
		t.Fatalf("cache holds %d bytes over a %d byte budget", st.Bytes, budget)
	}
}

// TestDecryptCacheSwapDuringJoins flips the cache configuration while
// joins are executing: SetDecryptCache swaps an atomic pointer, so
// concurrent decrypt phases finish against whichever cache they loaded.
// Run under -race this pins the data-race-freedom of runtime swaps; the
// join results must stay correct throughout.
func TestDecryptCacheSwapDuringJoins(t *testing.T) {
	client, server := setup(t)

	q, err := client.NewQuery(securejoin.Selection{}, securejoin.Selection{})
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := server.ExecuteJoin("Teams", "Employees", q)
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	flipped := make(chan struct{})
	go func() {
		defer close(flipped)
		budgets := []int64{0, 512, 64 << 20, 0, 1 << 20}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				server.SetDecryptCache(budgets[i%len(budgets)])
				server.DecryptCacheStats()
			}
		}
	}()
	for i := 0; i < 4; i++ {
		got, _, err := server.ExecuteJoin("Teams", "Employees", q)
		if err != nil {
			t.Fatal(err)
		}
		sameJoin(t, want, got)
	}
	close(stop)
	<-flipped
}

// TestDecryptCacheDisabledStats checks the zero-value reporting and
// that a zero budget detaches the cache.
func TestDecryptCacheDisabledStats(t *testing.T) {
	server := NewServer()
	if st := server.DecryptCacheStats(); st.Enabled {
		t.Fatal("fresh server reports an attached decrypt cache")
	}
	server.SetDecryptCache(1 << 20)
	if st := server.DecryptCacheStats(); !st.Enabled {
		t.Fatal("attached cache reports disabled")
	}
	server.SetDecryptCache(0)
	if st := server.DecryptCacheStats(); st.Enabled {
		t.Fatal("zero budget did not detach the cache")
	}
}
