// Package engine implements the database-as-a-service system model of
// Section 2 on top of the Secure Join scheme: a Client that owns the
// master secret key, encrypts tables and issues query tokens, and a
// Server that stores only ciphertexts and executes SJ.Dec + SJ.Match as
// an O(n) hash join. Row payloads (the full attribute tuples returned in
// join results) are protected with client-side AES-GCM, so the server
// handles them only as opaque blobs.
//
// The Server is safe for concurrent use: the table store is guarded by
// an RWMutex (uploads take the write lock, queries only a brief read
// lock to snapshot the immutable tables), and leakage traces are
// recorded under a separate lock, so joins — thousands of pairing
// operations each — run truly in parallel. Join results are produced
// incrementally through JoinStream, whose Next method yields bounded
// batches as SJ.Match progresses instead of materializing the whole
// result set; ExecuteJoin remains as a convenience that drains a
// stream.
//
// The server additionally records, per query, the equality pairs its
// execution observed — the sigma(q) trace of Section 5.2 — so examples
// and tests can audit the leakage of a series of queries.
package engine

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/leakage"
	"repro/internal/securejoin"
	"repro/internal/sse"
)

// ErrPayloadAuth is returned by OpenPayload when a sealed payload fails
// AEAD authentication — the blob was sealed under a different key or
// tampered with in transit.
var ErrPayloadAuth = errors.New("engine: payload authentication failed")

// PlainRow is one client-side row: the join value, the filterable
// attribute values (in scheme attribute order) and an arbitrary payload
// (e.g. the rendered full tuple) returned with join results.
type PlainRow struct {
	JoinValue []byte
	Attrs     [][]byte
	Payload   []byte
}

// EncryptedRow is the server-side image of one row.
type EncryptedRow struct {
	Join    *securejoin.RowCiphertext
	Payload []byte // AES-GCM sealed under the client's payload key
}

// EncryptedTable is an uploaded table. Index is the optional SSE
// pre-filter index (see prefilter.go); it is nil for tables uploaded
// with EncryptTable. Once uploaded, a table is immutable — re-uploads
// replace the whole table — which is what lets queries snapshot it
// under a brief read lock.
//
// Shard/ShardCount annotate a table that is one hash-partition of a
// larger logical table sharded client-side on the join key (see
// client.Cluster): this server holds shard Shard of ShardCount. They
// are metadata only — the engine stores and joins a shard exactly like
// a whole table — and zero for unsharded tables.
//
// NDV is the number of distinct join values of the table, counted
// client-side at encrypt time (the server only ever sees ciphertexts,
// so it could not compute this itself). It is planner metadata only —
// 0 means unknown — and feeds the SQL planner's selectivity estimates
// through TableStats/Describe.
type EncryptedTable struct {
	Name       string
	Rows       []*EncryptedRow
	Index      *sse.Index
	Shard      int
	ShardCount int
	NDV        int
}

// Client holds all secret material: the Secure Join master key, the
// payload encryption key and the SSE index keys.
type Client struct {
	scheme      *securejoin.Scheme
	payloadAEAD cipher.AEAD
	payloadKey  []byte
	sse         *sse.Client
	rng         io.Reader
}

// NewClient creates a client for tables with the given Secure Join
// parameters. If rng is nil crypto/rand is used. The rng supplies ALL
// client randomness — keys and the AES-GCM payload nonces — so a
// deterministic rng is for reproducible tests only: reusing one across
// clients, or re-running it against the same key, repeats (key, nonce)
// pairs, which breaks GCM entirely.
func NewClient(params securejoin.Params, rng io.Reader) (*Client, error) {
	scheme, err := securejoin.Setup(params, rng)
	if err != nil {
		return nil, err
	}
	if rng == nil {
		rng = rand.Reader
	}
	key := make([]byte, 32)
	if _, err := io.ReadFull(rng, key); err != nil {
		return nil, fmt.Errorf("engine: sampling payload key: %w", err)
	}
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, err
	}
	sseClient, err := sse.NewClient(rng)
	if err != nil {
		return nil, err
	}
	return &Client{scheme: scheme, payloadAEAD: aead, payloadKey: key, sse: sseClient, rng: rng}, nil
}

// Params returns the scheme parameters of the client.
func (c *Client) Params() securejoin.Params { return c.scheme.Params() }

// EncryptTable encrypts a table for upload.
func (c *Client) EncryptTable(name string, rows []PlainRow) (*EncryptedTable, error) {
	out := &EncryptedTable{Name: name, Rows: make([]*EncryptedRow, len(rows)), NDV: countDistinctJoinValues(rows)}
	for i, r := range rows {
		jc, err := c.scheme.Encrypt(securejoin.Row{JoinValue: r.JoinValue, Attrs: r.Attrs})
		if err != nil {
			return nil, fmt.Errorf("engine: encrypting row %d of %s: %w", i, name, err)
		}
		pc, err := c.sealPayload(r.Payload)
		if err != nil {
			return nil, err
		}
		out.Rows[i] = &EncryptedRow{Join: jc, Payload: pc}
	}
	return out, nil
}

// countDistinctJoinValues is the join-column NDV stamped onto encrypted
// tables: only the key owner can count plaintext join values, so this
// happens at encrypt time and travels with the upload as metadata.
func countDistinctJoinValues(rows []PlainRow) int {
	seen := make(map[string]struct{}, len(rows))
	for _, r := range rows {
		seen[string(r.JoinValue)] = struct{}{}
	}
	return len(seen)
}

// NewQuery issues the two tokens of one equi-join query.
func (c *Client) NewQuery(selA, selB securejoin.Selection) (*securejoin.Query, error) {
	return c.scheme.NewQuery(selA, selB)
}

// OpenPayload decrypts a payload blob from a join result. A blob that
// fails authentication yields an error wrapping ErrPayloadAuth.
func (c *Client) OpenPayload(sealed []byte) ([]byte, error) {
	ns := c.payloadAEAD.NonceSize()
	if len(sealed) < ns {
		return nil, fmt.Errorf("%w: sealed payload shorter than nonce", ErrPayloadAuth)
	}
	pt, err := c.payloadAEAD.Open(nil, sealed[:ns], sealed[ns:], nil)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrPayloadAuth, err)
	}
	return pt, nil
}

func (c *Client) sealPayload(pt []byte) ([]byte, error) {
	nonce := make([]byte, c.payloadAEAD.NonceSize())
	if _, err := io.ReadFull(c.rng, nonce); err != nil {
		return nil, fmt.Errorf("engine: sampling payload nonce: %w", err)
	}
	return c.payloadAEAD.Seal(nonce, nonce, pt, nil), nil
}

// JoinedRow is one element of a join result: the sealed payloads of the
// matching rows.
type JoinedRow struct {
	RowA, RowB         int
	PayloadA, PayloadB []byte
}

// QueryTrace is the server-observable leakage of one query: the equality
// pairs revealed among rows matching the selection criteria (cross-table
// and intra-table), i.e. sigma(q) of Section 5.2.
type QueryTrace struct {
	Pairs leakage.PairSet
}

// TableStore is the optional durability hook of a Server: when set,
// RegisterTable persists each table version (and DropTable each
// deletion) through it before the in-memory map changes, so a table is
// never acknowledged that a restart would lose. internal/store
// implements it over a snapshot-plus-manifest data directory.
type TableStore interface {
	// Commit makes one table version durable, atomically replacing any
	// previous version of the same name.
	Commit(t *EncryptedTable) error
	// Delete durably removes a table.
	Delete(name string) error
}

// Server stores encrypted tables and executes join queries. It holds no
// key material and is safe for concurrent use.
type Server struct {
	// registerMu serializes persist+install sequences (RegisterTable,
	// DropTable) so the durable log and the in-memory map apply table
	// versions in the same order.
	registerMu sync.Mutex
	store      TableStore

	// tablesMu guards the table map only. Uploaded tables themselves
	// are immutable, so queries hold the read lock just long enough to
	// snapshot the two *EncryptedTable pointers.
	tablesMu sync.RWMutex
	tables   map[string]*EncryptedTable

	// versions counts installs per table name, bumped on every Upload
	// and RegisterTable and never reset (a dropped name keeps its
	// counter), so a decrypt-cache entry keyed to an old version can
	// never alias a re-registered table. Guarded by tablesMu.
	versions map[string]uint64

	// decCache, when non-nil, memoizes per-row SJ.Dec results (see
	// deccache.go). An atomic pointer so SetDecryptCache may swap or
	// detach the cache at runtime — job workers start joins long after
	// setup — while concurrent joins load it once per decrypt phase.
	decCache atomic.Pointer[decryptCache]

	// traceMu guards the leakage records, separately from the table
	// store so concurrent joins serialize only on the cheap trace
	// append, never on the pairing-heavy execution.
	traceMu    sync.Mutex
	cumulative leakage.PairSet
	perQuery   []leakage.PairSet
	leakCounts map[string]uint64

	// met is the instrumentation surface (see metrics.go). The zero
	// value records nothing; Instrument replaces it before serving.
	met Metrics
}

// NewServer returns an empty server.
func NewServer() *Server {
	return &Server{
		tables:     make(map[string]*EncryptedTable),
		versions:   make(map[string]uint64),
		cumulative: leakage.NewPairSet(),
		leakCounts: make(map[string]uint64),
	}
}

// SetStore attaches the durability hook. Call it before serving
// requests — typically right after restoring the store's tables with
// Upload — so every subsequent RegisterTable persists.
func (s *Server) SetStore(st TableStore) {
	s.registerMu.Lock()
	s.store = st
	s.registerMu.Unlock()
}

// Upload installs a table in memory only, replacing any previous
// version. It is the right call for keyless in-process demos and for
// restoring already-durable tables at recovery; a server with a
// TableStore attached registers client uploads with RegisterTable so
// they persist before being acknowledged.
func (s *Server) Upload(t *EncryptedTable) {
	s.tablesMu.Lock()
	s.tables[t.Name] = t
	s.versions[t.Name]++
	s.tablesMu.Unlock()
	s.invalidateDecrypts(t.Name)
}

// invalidateDecrypts purges a table's decrypt-cache entries after an
// install or drop. The version bump already makes the stale entries
// unreachable; the purge just stops them from occupying budget.
func (s *Server) invalidateDecrypts(name string) {
	cache := s.decCache.Load()
	if cache == nil {
		return
	}
	cache.purgeTable(name)
	s.met.DecCacheBytes.Set(cache.sizeBytes())
}

// RegisterTable stores an encrypted table, replacing any previous
// version of the same name. With a TableStore attached the version is
// persisted first and an error leaves the in-memory map — and hence
// every concurrent query — still on the previous version; without one
// it is equivalent to Upload. Replacement is atomic for readers: a
// query snapshots either the old table (with its old SSE index) or the
// new one, never a mix.
func (s *Server) RegisterTable(t *EncryptedTable) error {
	s.registerMu.Lock()
	defer s.registerMu.Unlock()
	if s.store != nil {
		if err := s.store.Commit(t); err != nil {
			return fmt.Errorf("engine: persisting table %q: %w", t.Name, err)
		}
	}
	s.tablesMu.Lock()
	s.tables[t.Name] = t
	s.versions[t.Name]++
	s.tablesMu.Unlock()
	s.invalidateDecrypts(t.Name)
	return nil
}

// DropTable removes a table, persisting the deletion first when a
// TableStore is attached.
func (s *Server) DropTable(name string) error {
	s.registerMu.Lock()
	defer s.registerMu.Unlock()
	s.tablesMu.RLock()
	_, ok := s.tables[name]
	s.tablesMu.RUnlock()
	if !ok {
		return fmt.Errorf("engine: unknown table %q", name)
	}
	if s.store != nil {
		if err := s.store.Delete(name); err != nil {
			return fmt.Errorf("engine: deleting table %q: %w", name, err)
		}
	}
	s.tablesMu.Lock()
	delete(s.tables, name)
	s.tablesMu.Unlock()
	s.invalidateDecrypts(name)
	return nil
}

// TableStat summarizes one stored table for catalog discovery: its
// name, row count and whether it carries an SSE pre-filter index. This
// is what a SQL planner needs to choose prefiltered execution — served
// in-process here and over the wire by the server's Describe request.
// Shard/ShardCount echo the table's shard annotations (zero for whole
// tables). NDV echoes the client-computed distinct-join-value count
// (0 = unknown), which the planner turns into per-value selectivity.
type TableStat struct {
	Name       string
	Rows       int
	Indexed    bool
	Shard      int
	ShardCount int
	NDV        int
}

// TableStats lists the stored tables, sorted by name.
func (s *Server) TableStats() []TableStat {
	s.tablesMu.RLock()
	out := make([]TableStat, 0, len(s.tables))
	for _, t := range s.tables {
		out = append(out, TableStat{
			Name: t.Name, Rows: len(t.Rows), Indexed: t.Index != nil,
			Shard: t.Shard, ShardCount: t.ShardCount, NDV: t.NDV,
		})
	}
	s.tablesMu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Table returns an uploaded table.
func (s *Server) Table(name string) (*EncryptedTable, error) {
	s.tablesMu.RLock()
	t, ok := s.tables[name]
	s.tablesMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("engine: unknown table %q", name)
	}
	return t, nil
}

// snapshot resolves both join operands, and their install versions for
// decrypt-cache keying, under one read-lock acquisition.
func (s *Server) snapshot(tableA, tableB string) (ta, tb *EncryptedTable, va, vb uint64, err error) {
	s.tablesMu.RLock()
	ta, okA := s.tables[tableA]
	tb, okB := s.tables[tableB]
	va, vb = s.versions[tableA], s.versions[tableB]
	s.tablesMu.RUnlock()
	if !okA {
		return nil, nil, 0, 0, fmt.Errorf("engine: unknown table %q", tableA)
	}
	if !okB {
		return nil, nil, 0, 0, fmt.Errorf("engine: unknown table %q", tableB)
	}
	return ta, tb, va, vb, nil
}

// recordTrace appends one query's leakage to the audit log and bumps
// the per-table revealed-pair counters.
func (s *Server) recordTrace(trace *QueryTrace) {
	s.traceMu.Lock()
	s.perQuery = append(s.perQuery, trace.Pairs)
	s.cumulative.AddAll(trace.Pairs)
	touched := make(map[string]bool, 2)
	for p := range trace.Pairs {
		s.leakCounts[p.A.Table]++
		touched[p.A.Table] = true
		if p.B.Table != p.A.Table {
			s.leakCounts[p.B.Table]++
			touched[p.B.Table] = true
		}
	}
	for table := range touched {
		s.met.RevealedPairs.With(table).Set(int64(s.leakCounts[table]))
	}
	s.traceMu.Unlock()
}

// LeakageCounters returns, per table, how many revealed equality pairs
// recorded so far touch that table (an intra-table pair counts once).
// Unlike the full PairSet traces these counters are cheap to persist,
// so a durable server checkpoints them across restarts.
func (s *Server) LeakageCounters() map[string]uint64 {
	s.traceMu.Lock()
	defer s.traceMu.Unlock()
	out := make(map[string]uint64, len(s.leakCounts))
	for k, v := range s.leakCounts {
		out[k] = v
	}
	return out
}

// SeedLeakageCounters restores per-table counters checkpointed by an
// earlier process (see LeakageCounters), replacing the current values
// of the named tables. Call it at recovery, before serving queries.
func (s *Server) SeedLeakageCounters(counters map[string]uint64) {
	s.traceMu.Lock()
	for k, v := range counters {
		s.leakCounts[k] = v
		s.met.RevealedPairs.With(k).Set(int64(v))
	}
	s.traceMu.Unlock()
}

// DefaultBatchSize is the number of rows per JoinStream batch when the
// caller does not choose one; the protocol layer inherits it as the
// default response-frame bound.
const DefaultBatchSize = 256

// JoinSpec is the plan of one join execution. Every join — library
// one-shot, streamed over the wire, pre-filtered or full scan — is
// described by a spec and executed by the one pipeline behind OpenJoin:
//
//	candidate selection -> parallel SJ.Dec (build side) ->
//	incremental SJ.Dec + hash-match (probe side) ->
//	leakage accounting -> bounded batches
type JoinSpec struct {
	// Query holds the two per-query join tokens. It may be left nil
	// when Prefilter is set (Prefilter.Join is used then).
	Query *securejoin.Query
	// Prefilter optionally carries the SSE search tokens of the
	// query's selections; candidate selection then resolves them
	// against the tables' indexes so SJ.Dec runs only over matching
	// rows. Nil means full scan (the paper's exact leakage profile).
	Prefilter *PrefilterQuery
	// CandidatesA/B optionally restrict each side to an explicit row-id
	// list — the semi-join reduction: a multi-join executor ships the
	// hub rows matched by the previous step so SJ.Dec runs only over
	// them. They compose with Prefilter by intersection, and with each
	// other by the usual semantics: empty (or nil) means no explicit
	// restriction. Leakage-neutral: the lists contain only row ids whose
	// match status sigma(q) of the prior step already revealed.
	CandidatesA []int
	CandidatesB []int
	// SkipPayloadA/B omit that side's sealed payload from every emitted
	// JoinedRow — the key-only projection: when the query's SELECT list
	// references no payload of the side, there is nothing to ship or
	// for the client to open. Strictly leakage-reducing (the server
	// streams fewer of the opaque blobs it stores).
	SkipPayloadA bool
	SkipPayloadB bool
	// Batch bounds the probe-side rows per Next call; <= 0 selects
	// DefaultBatchSize.
	Batch int
	// Workers bounds the SJ.Dec worker pool per decrypt phase;
	// <= 0 uses GOMAXPROCS, 1 forces sequential decryption.
	Workers int
	// Progress, when non-nil, is called after each completed pipeline
	// step — the build-side decrypt, then every probe batch — with the
	// cumulative counters so far. It runs on the goroutine draining the
	// stream, so implementations must be fast and must synchronize their
	// own state; the async job table uses it to publish live JobStatus.
	Progress func(JoinProgress)
}

// JoinProgress is the cumulative progress of one join execution,
// reported through JoinSpec.Progress.
type JoinProgress struct {
	// RowsDecrypted counts rows run through SJ.Dec (or served for them
	// from the decrypt cache) so far, build and probe sides alike.
	RowsDecrypted int
	// StepsDone counts completed pipeline steps: 1 for the build-side
	// decrypt+index, plus 1 per probe batch.
	StepsDone int
	// RevealedPairs is the size of sigma(q) accumulated so far.
	RevealedPairs int
}

// query resolves the join tokens of a spec.
func (spec *JoinSpec) query() (*securejoin.Query, error) {
	q := spec.Query
	if q == nil && spec.Prefilter != nil {
		q = spec.Prefilter.Join
	}
	if q == nil || q.TokenA == nil || q.TokenB == nil {
		return nil, errors.New("engine: join spec carries no query tokens")
	}
	return q, nil
}

// JoinStream produces the results of one equi-join query in bounded
// batches. Opening the stream runs the front of the pipeline: the
// tables are snapshotted, candidate rows are resolved (via the SSE
// pre-filter when the spec carries one), and the build side is
// decrypted by a parallel SJ.Dec worker pool and indexed. Each Next
// call then decrypts one batch of probe-side candidates, probes the
// hash index and returns the matches it produced, so peak memory is
// independent of the result cardinality. Once the stream terminates —
// exhausted, failed, or released early with Close — the leakage
// observed up to that point has been recorded and Trace/RevealedPairs
// report it.
type JoinStream struct {
	srv            *Server
	tableA, tableB string
	ta, tb         *EncryptedTable
	tokenB         *tokenDec // probe-side token: Miller program + cache key
	batch          int
	workers        int

	index    map[string][]int // D value of A -> rows, the build side
	probe    []int            // candidate rows of B, ascending; nil = every row
	skipA    bool             // key-only projection: omit side-A payloads
	skipB    bool             // key-only projection: omit side-B payloads
	bucketsB map[string][]int // D value of B -> rows seen so far (intra-B pairs)
	pairs    leakage.PairSet  // leakage accumulated as matching progresses
	next     int              // next entry of probe to decrypt
	trace    *QueryTrace
	done     bool
	err      error     // sticky terminal error, re-returned by Next
	started  time.Time // stream open time, for the join wall-time histogram

	progress  func(JoinProgress) // optional per-step progress hook
	rowsDec   int                // rows decrypted so far, both sides
	stepsDone int                // completed pipeline steps
}

// reportProgress publishes the stream's cumulative counters through the
// spec's hook, if any.
func (st *JoinStream) reportProgress() {
	if st.progress == nil {
		return
	}
	st.progress(JoinProgress{
		RowsDecrypted: st.rowsDec,
		StepsDone:     st.stepsDone,
		RevealedPairs: st.pairs.Len(),
	})
}

// OpenJoin starts one planned equi-join query: candidate selection and
// the parallel SJ.Dec + index build over table A happen up front, then
// SJ.Dec + SJ.Match run over table B's candidates incrementally as the
// stream is drained.
func (s *Server) OpenJoin(tableA, tableB string, spec JoinSpec) (*JoinStream, error) {
	q, err := spec.query()
	if err != nil {
		return nil, err
	}
	ta, tb, verA, verB, err := s.snapshot(tableA, tableB)
	if err != nil {
		return nil, err
	}
	started := time.Now()
	s.met.JoinsStarted.Inc()

	// Candidate selection: with a pre-filter, SSE resolves each side's
	// selection to the matching rows; otherwise every row is probed.
	var tokensA, tokensB map[int][]sse.SearchToken
	if spec.Prefilter != nil {
		tokensA, tokensB = spec.Prefilter.TokensA, spec.Prefilter.TokensB
	}
	candA, err := candidates(ta, tokensA)
	if err != nil {
		return nil, err
	}
	candB, err := candidates(tb, tokensB)
	if err != nil {
		return nil, err
	}
	// Explicit candidate lists (the semi-join reduction) intersect with
	// whatever the SSE pre-filter selected.
	candA = mergeCandidates(candA, spec.CandidatesA, len(ta.Rows))
	candB = mergeCandidates(candB, spec.CandidatesB, len(tb.Rows))

	// Build side: parallel SJ.Dec over A's candidates, indexed by D
	// value under the original row numbers. Each token's Miller program
	// is recorded once here — the build side replays it per row, the
	// probe side per batch — and the decrypt cache (when attached) is
	// keyed under the snapshotted table versions.
	decStart := time.Now()
	das, err := s.decryptRows(s.newTokenDec(q.TokenA, tableA, verA), ta, candA, spec.Workers)
	if err != nil {
		return nil, err
	}
	s.met.DecSeconds.Observe(time.Since(decStart).Seconds())
	s.met.RowsDecrypted.Add(uint64(len(das)))
	index := make(map[string][]int, len(das))
	for i, d := range das {
		index[string(d)] = append(index[string(d)], candRow(candA, i))
	}
	batch := spec.Batch
	if batch <= 0 {
		batch = DefaultBatchSize
	}
	// The intra-A pairs were observed the moment side A was decrypted;
	// seed the trace with them so even a stream closed before the first
	// probe audits honestly. (das itself need not be retained.)
	pairs := leakage.NewPairSet()
	for _, sp := range securejoin.SelfPairs(das) {
		pairs.Add(leakage.Pair{
			A: leakage.RowRef{Table: tableA, Row: candRow(candA, sp[0])},
			B: leakage.RowRef{Table: tableA, Row: candRow(candA, sp[1])},
		})
	}
	st := &JoinStream{
		srv:    s,
		tableA: tableA, tableB: tableB,
		ta: ta, tb: tb,
		tokenB:   s.newTokenDec(q.TokenB, tableB, verB),
		batch:    batch,
		workers:  spec.Workers,
		index:    index,
		probe:    candB,
		skipA:    spec.SkipPayloadA,
		skipB:    spec.SkipPayloadB,
		bucketsB: make(map[string][]int),
		pairs:    pairs,
		started:  started,
		progress: spec.Progress,
	}
	st.rowsDec = len(das)
	st.stepsDone = 1 // build side decrypted and indexed
	st.reportProgress()
	return st, nil
}

// OpenJoinQuery starts a full-scan join with the pre-plan signature —
// a thin wrapper over the spec pipeline kept for callers that predate
// JoinSpec.
func (s *Server) OpenJoinQuery(tableA, tableB string, q *securejoin.Query, batch int) (*JoinStream, error) {
	return s.OpenJoin(tableA, tableB, JoinSpec{Query: q, Batch: batch})
}

// Next returns the joined rows produced by the next batch of probe-side
// rows. A batch may be empty of matches yet non-terminal; the stream is
// exhausted when Next returns io.EOF, at which point the query trace
// has been recorded.
func (st *JoinStream) Next() ([]JoinedRow, error) {
	if st.done {
		if st.err != nil {
			return nil, st.err
		}
		return nil, io.EOF
	}
	total := candCount(st.probe, len(st.tb.Rows))
	if st.next >= total {
		st.finish()
		return nil, io.EOF
	}
	end := st.next + st.batch
	if end > total {
		end = total
	}
	batchRows := make([]int, end-st.next)
	for i := range batchRows {
		batchRows[i] = candRow(st.probe, st.next+i)
	}
	decStart := time.Now()
	chunk, err := st.srv.decryptRows(st.tokenB, st.tb, batchRows, st.workers)
	if err != nil {
		st.err = err
		st.finish() // the pairs observed before the failure still leaked
		return nil, err
	}
	st.srv.met.DecSeconds.Observe(time.Since(decStart).Seconds())
	st.srv.met.RowsDecrypted.Add(uint64(len(chunk)))
	var out []JoinedRow
	for j, db := range chunk {
		rowB := candRow(st.probe, st.next+j)
		key := string(db)
		for _, rowA := range st.index[key] {
			jr := JoinedRow{RowA: rowA, RowB: rowB}
			if !st.skipA {
				jr.PayloadA = st.ta.Rows[rowA].Payload
			}
			if !st.skipB {
				jr.PayloadB = st.tb.Rows[rowB].Payload
			}
			out = append(out, jr)
			st.pairs.Add(leakage.Pair{
				A: leakage.RowRef{Table: st.tableA, Row: rowA},
				B: leakage.RowRef{Table: st.tableB, Row: rowB},
			})
		}
		// Intra-B equalities: this row pairs with every earlier B row
		// sharing its D value — the incremental form of SelfPairs, so
		// neither the D values nor a second match pass is needed.
		for _, prior := range st.bucketsB[key] {
			st.pairs.Add(leakage.Pair{
				A: leakage.RowRef{Table: st.tableB, Row: prior},
				B: leakage.RowRef{Table: st.tableB, Row: rowB},
			})
		}
		st.bucketsB[key] = append(st.bucketsB[key], rowB)
	}
	st.next = end
	st.rowsDec += len(chunk)
	st.stepsDone++
	st.reportProgress()
	return out, nil
}

// finish records the leakage accumulated so far — the full sigma(q)
// when the stream is drained, a prefix when it failed or was released
// early. Idempotent.
func (st *JoinStream) finish() {
	if st.done {
		return
	}
	st.done = true
	st.trace = &QueryTrace{Pairs: st.pairs}
	st.srv.recordTrace(st.trace)
	st.srv.met.JoinsCompleted.Inc()
	st.srv.met.JoinSeconds.Observe(time.Since(st.started).Seconds())
}

// Close releases a stream without draining it. The leakage observed up
// to this point is recorded — a client hanging up mid-stream must not
// erase pairs the server already saw from the audit log. Idempotent;
// draining to io.EOF makes it a no-op.
func (st *JoinStream) Close() {
	st.finish()
}

// Trace returns the query's leakage trace. It is non-nil only once the
// stream has terminated (drained, failed, or closed).
func (st *JoinStream) Trace() *QueryTrace { return st.trace }

// RevealedPairs is the size of the query's sigma(q) trace; valid after
// the stream is exhausted.
func (st *JoinStream) RevealedPairs() int {
	if st.trace == nil {
		return 0
	}
	return st.trace.Pairs.Len()
}

// ExecuteJoin runs one equi-join query to completion: SJ.Dec over both
// tables followed by a hash-based SJ.Match. It returns the joined row
// payloads and records the query's observed leakage. It is a
// convenience wrapper that drains a JoinStream; servers streaming
// results to clients use OpenJoin directly.
func (s *Server) ExecuteJoin(tableA, tableB string, q *securejoin.Query) ([]JoinedRow, *QueryTrace, error) {
	st, err := s.OpenJoin(tableA, tableB, JoinSpec{Query: q})
	if err != nil {
		return nil, nil, err
	}
	return drain(st)
}

// drain pulls a stream to exhaustion and returns the accumulated rows
// with the recorded trace — the shared tail of the one-shot wrappers.
func drain(st *JoinStream) ([]JoinedRow, *QueryTrace, error) {
	var result []JoinedRow
	for {
		rows, err := st.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, nil, err
		}
		result = append(result, rows...)
	}
	return result, st.Trace(), nil
}

// ObservedLeakage returns the per-query traces recorded so far and the
// transitive closure of their union — by Corollary 5.2.2 this closure is
// everything a semi-honest server can derive from the whole series.
func (s *Server) ObservedLeakage() (perQuery []leakage.PairSet, closure leakage.PairSet) {
	// Snapshot under the lock, compute the (potentially expensive)
	// closure outside it so auditing never stalls concurrent joins'
	// trace recording.
	s.traceMu.Lock()
	perQuery = append([]leakage.PairSet(nil), s.perQuery...)
	cumulative := leakage.NewPairSet()
	cumulative.AddAll(s.cumulative)
	s.traceMu.Unlock()
	return perQuery, cumulative.TransitiveClosure()
}
