// Package engine implements the database-as-a-service system model of
// Section 2 on top of the Secure Join scheme: a Client that owns the
// master secret key, encrypts tables and issues query tokens, and a
// Server that stores only ciphertexts and executes SJ.Dec + SJ.Match as
// an O(n) hash join. Row payloads (the full attribute tuples returned in
// join results) are protected with client-side AES-GCM, so the server
// handles them only as opaque blobs.
//
// The server additionally records, per query, the equality pairs its
// execution observed — the sigma(q) trace of Section 5.2 — so examples
// and tests can audit the leakage of a series of queries.
package engine

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"errors"
	"fmt"
	"io"

	"repro/internal/leakage"
	"repro/internal/securejoin"
	"repro/internal/sse"
)

// PlainRow is one client-side row: the join value, the filterable
// attribute values (in scheme attribute order) and an arbitrary payload
// (e.g. the rendered full tuple) returned with join results.
type PlainRow struct {
	JoinValue []byte
	Attrs     [][]byte
	Payload   []byte
}

// EncryptedRow is the server-side image of one row.
type EncryptedRow struct {
	Join    *securejoin.RowCiphertext
	Payload []byte // AES-GCM sealed under the client's payload key
}

// EncryptedTable is an uploaded table. Index is the optional SSE
// pre-filter index (see prefilter.go); it is nil for tables uploaded
// with EncryptTable.
type EncryptedTable struct {
	Name  string
	Rows  []*EncryptedRow
	Index *sse.Index
}

// Client holds all secret material: the Secure Join master key, the
// payload encryption key and the SSE index keys.
type Client struct {
	scheme      *securejoin.Scheme
	payloadAEAD cipher.AEAD
	payloadKey  []byte
	sse         *sse.Client
}

// NewClient creates a client for tables with the given Secure Join
// parameters. If rng is nil crypto/rand is used.
func NewClient(params securejoin.Params, rng io.Reader) (*Client, error) {
	scheme, err := securejoin.Setup(params, rng)
	if err != nil {
		return nil, err
	}
	if rng == nil {
		rng = rand.Reader
	}
	key := make([]byte, 32)
	if _, err := io.ReadFull(rng, key); err != nil {
		return nil, fmt.Errorf("engine: sampling payload key: %w", err)
	}
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, err
	}
	sseClient, err := sse.NewClient(rng)
	if err != nil {
		return nil, err
	}
	return &Client{scheme: scheme, payloadAEAD: aead, payloadKey: key, sse: sseClient}, nil
}

// Params returns the scheme parameters of the client.
func (c *Client) Params() securejoin.Params { return c.scheme.Params() }

// EncryptTable encrypts a table for upload.
func (c *Client) EncryptTable(name string, rows []PlainRow) (*EncryptedTable, error) {
	out := &EncryptedTable{Name: name, Rows: make([]*EncryptedRow, len(rows))}
	for i, r := range rows {
		jc, err := c.scheme.Encrypt(securejoin.Row{JoinValue: r.JoinValue, Attrs: r.Attrs})
		if err != nil {
			return nil, fmt.Errorf("engine: encrypting row %d of %s: %w", i, name, err)
		}
		pc, err := c.sealPayload(r.Payload)
		if err != nil {
			return nil, err
		}
		out.Rows[i] = &EncryptedRow{Join: jc, Payload: pc}
	}
	return out, nil
}

// NewQuery issues the two tokens of one equi-join query.
func (c *Client) NewQuery(selA, selB securejoin.Selection) (*securejoin.Query, error) {
	return c.scheme.NewQuery(selA, selB)
}

// OpenPayload decrypts a payload blob from a join result.
func (c *Client) OpenPayload(sealed []byte) ([]byte, error) {
	ns := c.payloadAEAD.NonceSize()
	if len(sealed) < ns {
		return nil, errors.New("engine: sealed payload shorter than nonce")
	}
	return c.payloadAEAD.Open(nil, sealed[:ns], sealed[ns:], nil)
}

func (c *Client) sealPayload(pt []byte) ([]byte, error) {
	nonce := make([]byte, c.payloadAEAD.NonceSize())
	if _, err := io.ReadFull(rand.Reader, nonce); err != nil {
		return nil, err
	}
	return c.payloadAEAD.Seal(nonce, nonce, pt, nil), nil
}

// JoinedRow is one element of a join result: the sealed payloads of the
// matching rows.
type JoinedRow struct {
	RowA, RowB         int
	PayloadA, PayloadB []byte
}

// QueryTrace is the server-observable leakage of one query: the equality
// pairs revealed among rows matching the selection criteria (cross-table
// and intra-table), i.e. sigma(q) of Section 5.2.
type QueryTrace struct {
	Pairs leakage.PairSet
}

// Server stores encrypted tables and executes join queries. It holds no
// key material.
type Server struct {
	tables map[string]*EncryptedTable

	// cumulative is everything the server has observed across queries,
	// for leakage auditing.
	cumulative leakage.PairSet
	perQuery   []leakage.PairSet
}

// NewServer returns an empty server.
func NewServer() *Server {
	return &Server{tables: make(map[string]*EncryptedTable), cumulative: leakage.NewPairSet()}
}

// Upload stores an encrypted table, replacing any previous version.
func (s *Server) Upload(t *EncryptedTable) {
	s.tables[t.Name] = t
}

// Table returns an uploaded table.
func (s *Server) Table(name string) (*EncryptedTable, error) {
	t, ok := s.tables[name]
	if !ok {
		return nil, fmt.Errorf("engine: unknown table %q", name)
	}
	return t, nil
}

// ExecuteJoin runs one equi-join query: SJ.Dec over both tables followed
// by a hash-based SJ.Match. It returns the joined row payloads and
// records the query's observed leakage.
func (s *Server) ExecuteJoin(tableA, tableB string, q *securejoin.Query) ([]JoinedRow, *QueryTrace, error) {
	ta, err := s.Table(tableA)
	if err != nil {
		return nil, nil, err
	}
	tb, err := s.Table(tableB)
	if err != nil {
		return nil, nil, err
	}

	das, err := decryptAll(q.TokenA, ta)
	if err != nil {
		return nil, nil, err
	}
	dbs, err := decryptAll(q.TokenB, tb)
	if err != nil {
		return nil, nil, err
	}

	pairs := securejoin.HashJoin(das, dbs)
	result := make([]JoinedRow, len(pairs))
	for i, p := range pairs {
		result[i] = JoinedRow{
			RowA:     p.RowA,
			RowB:     p.RowB,
			PayloadA: ta.Rows[p.RowA].Payload,
			PayloadB: tb.Rows[p.RowB].Payload,
		}
	}

	trace := &QueryTrace{Pairs: leakage.NewPairSet()}
	for _, p := range pairs {
		trace.Pairs.Add(leakage.Pair{
			A: leakage.RowRef{Table: tableA, Row: p.RowA},
			B: leakage.RowRef{Table: tableB, Row: p.RowB},
		})
	}
	for _, sp := range securejoin.SelfPairs(das) {
		trace.Pairs.Add(leakage.Pair{
			A: leakage.RowRef{Table: tableA, Row: sp[0]},
			B: leakage.RowRef{Table: tableA, Row: sp[1]},
		})
	}
	for _, sp := range securejoin.SelfPairs(dbs) {
		trace.Pairs.Add(leakage.Pair{
			A: leakage.RowRef{Table: tableB, Row: sp[0]},
			B: leakage.RowRef{Table: tableB, Row: sp[1]},
		})
	}
	s.perQuery = append(s.perQuery, trace.Pairs)
	s.cumulative.AddAll(trace.Pairs)

	return result, trace, nil
}

// ObservedLeakage returns the per-query traces recorded so far and the
// transitive closure of their union — by Corollary 5.2.2 this closure is
// everything a semi-honest server can derive from the whole series.
func (s *Server) ObservedLeakage() (perQuery []leakage.PairSet, closure leakage.PairSet) {
	return s.perQuery, s.cumulative.TransitiveClosure()
}

func decryptAll(tk *securejoin.Token, t *EncryptedTable) ([]securejoin.DValue, error) {
	cts := make([]*securejoin.RowCiphertext, len(t.Rows))
	for i, r := range t.Rows {
		cts[i] = r.Join
	}
	return securejoin.DecryptTable(tk, cts)
}
