package engine

import (
	"bytes"
	"testing"

	"repro/internal/securejoin"
)

// TestKeyExportRoundTrip: a client reconstructed from exported keys
// must be able to (i) decrypt payloads sealed by the original client,
// (ii) issue tokens that match ciphertexts produced by the original
// client, and (iii) use the SSE pre-filter of previously built indexes.
func TestKeyExportRoundTrip(t *testing.T) {
	orig, err := NewClient(securejoin.Params{M: 1, T: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	server := NewServer()
	teams, employees := exampleTables()
	encT, err := orig.EncryptTableIndexed("Teams", teams)
	if err != nil {
		t.Fatal(err)
	}
	encE, err := orig.EncryptTableIndexed("Employees", employees)
	if err != nil {
		t.Fatal(err)
	}
	server.Upload(encT)
	server.Upload(encE)

	var buf bytes.Buffer
	if err := orig.ExportKeys(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadClientKeys(&buf)
	if err != nil {
		t.Fatal(err)
	}

	// Query with the restored client against tables uploaded by the
	// original client.
	q, err := restored.NewQuery(
		securejoin.Selection{0: [][]byte{[]byte("Web Application")}},
		securejoin.Selection{0: [][]byte{[]byte("Tester")}},
	)
	if err != nil {
		t.Fatal(err)
	}
	rows, _, err := server.ExecuteJoin("Teams", "Employees", q)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("restored client's query returned %d rows", len(rows))
	}
	payload, err := restored.OpenPayload(rows[0].PayloadB)
	if err != nil {
		t.Fatal(err)
	}
	if string(payload) != "kaily" {
		t.Fatalf("payload = %q", payload)
	}

	// Pre-filtered path with restored SSE keys.
	pq, err := restored.NewPrefilterQuery(
		securejoin.Selection{0: [][]byte{[]byte("Web Application")}},
		securejoin.Selection{0: [][]byte{[]byte("Tester")}},
	)
	if err != nil {
		t.Fatal(err)
	}
	rows2, _, err := server.ExecuteJoinPrefiltered("Teams", "Employees", pq)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows2) != 1 {
		t.Fatalf("restored client's prefiltered query returned %d rows", len(rows2))
	}

	// New rows encrypted by the restored client join against old ones.
	extra, err := restored.EncryptTable("Extra", []PlainRow{
		{JoinValue: []byte("1"), Attrs: [][]byte{[]byte("anything")}, Payload: []byte("extra")},
	})
	if err != nil {
		t.Fatal(err)
	}
	server.Upload(extra)
	q2, err := restored.NewQuery(securejoin.Selection{}, securejoin.Selection{})
	if err != nil {
		t.Fatal(err)
	}
	rows3, _, err := server.ExecuteJoin("Extra", "Teams", q2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows3) != 1 {
		t.Fatalf("cross-session encryption compatibility broken: %d rows", len(rows3))
	}
}

func TestLoadClientKeysRejectsGarbage(t *testing.T) {
	if _, err := LoadClientKeys(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty key file accepted")
	}
	if _, err := LoadClientKeys(bytes.NewReader([]byte("not gob"))); err == nil {
		t.Fatal("garbage key file accepted")
	}
}
