package engine

import (
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/securejoin"
	"repro/internal/sse"
)

// Persistence for encrypted tables: the server (or the client, before
// upload) can serialize a table to any io.Writer and reload it later.
// Only public values are stored — ciphertexts, sealed payloads and the
// SSE index — so a table file is safe to keep on untrusted storage,
// with the same security posture as the running server.

// tableFile is the gob image of an EncryptedTable. Shard/ShardCount
// and NDV are gob-additive (zero in files written before they
// existed), so the annotations survive restarts without a format
// change.
type tableFile struct {
	Name       string
	Rows       []tableFileRow
	Index      []byte // empty when the table has no SSE index
	Shard      int
	ShardCount int
	NDV        int
}

type tableFileRow struct {
	Join    []byte
	Payload []byte
}

// SaveTable serializes an encrypted table.
func SaveTable(w io.Writer, t *EncryptedTable) error {
	f := tableFile{Name: t.Name, Rows: make([]tableFileRow, len(t.Rows)), Shard: t.Shard, ShardCount: t.ShardCount, NDV: t.NDV}
	for i, r := range t.Rows {
		jc, err := r.Join.MarshalBinary()
		if err != nil {
			return fmt.Errorf("engine: encoding row %d: %w", i, err)
		}
		f.Rows[i] = tableFileRow{Join: jc, Payload: r.Payload}
	}
	if t.Index != nil {
		idx, err := t.Index.MarshalBinary()
		if err != nil {
			return fmt.Errorf("engine: encoding index: %w", err)
		}
		f.Index = idx
	}
	return gob.NewEncoder(w).Encode(&f)
}

// LoadTable deserializes a table written by SaveTable, re-validating
// every ciphertext group element.
func LoadTable(r io.Reader) (*EncryptedTable, error) {
	var f tableFile
	if err := gob.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("engine: decoding table: %w", err)
	}
	t := &EncryptedTable{Name: f.Name, Rows: make([]*EncryptedRow, len(f.Rows)), Shard: f.Shard, ShardCount: f.ShardCount, NDV: f.NDV}
	for i, row := range f.Rows {
		var ct securejoin.RowCiphertext
		if err := ct.UnmarshalBinary(row.Join); err != nil {
			return nil, fmt.Errorf("engine: decoding row %d: %w", i, err)
		}
		t.Rows[i] = &EncryptedRow{Join: &ct, Payload: row.Payload}
	}
	if len(f.Index) > 0 {
		idx := &sse.Index{}
		if err := idx.UnmarshalBinary(f.Index); err != nil {
			return nil, fmt.Errorf("engine: decoding index: %w", err)
		}
		t.Index = idx
	}
	return t, nil
}
