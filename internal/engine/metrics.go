package engine

import (
	"repro/internal/metrics"
)

// Metrics is the engine's instrumentation surface. Every field is
// nil-safe (see internal/metrics), so an uninstrumented Server — the
// zero Metrics value — records nothing and pays one nil check per
// event. The SJ.Dec histogram is the headline series: pairings are the
// dominant cost of every query, and this is where a regression in the
// pairing wall first becomes visible.
type Metrics struct {
	// JoinsStarted counts join streams opened; JoinsCompleted counts
	// streams terminated (drained, failed or closed early), so
	// started-completed is the number currently executing.
	JoinsStarted   *metrics.Counter
	JoinsCompleted *metrics.Counter
	// RowsDecrypted counts rows run through SJ.Dec (build and probe
	// sides alike); DecSeconds is the latency of each SJ.Dec phase (one
	// parallel decrypt of a build side or of one probe batch).
	RowsDecrypted *metrics.Counter
	DecSeconds    *metrics.Histogram
	// JoinSeconds is the open-to-termination wall time per join stream.
	JoinSeconds *metrics.Histogram
	// Decrypt-result cache counters (see deccache.go): hits and misses
	// count rows looked up, evictions counts entries pushed out by the
	// byte budget, and bytes gauges the cache's current footprint.
	DecCacheHits      *metrics.Counter
	DecCacheMisses    *metrics.Counter
	DecCacheEvictions *metrics.Counter
	DecCacheOversized *metrics.Counter
	DecCacheBytes     *metrics.Gauge
	// RevealedPairs tracks, per table, the leakage counter: how many
	// revealed equality pairs recorded so far touch that table. A gauge,
	// not a counter, because recovery seeds it from the store's
	// checkpoint.
	RevealedPairs *metrics.GaugeVec
}

// NewMetrics creates the engine metric set against reg (which may be
// nil for unregistered metrics).
func NewMetrics(reg *metrics.Registry) Metrics {
	return Metrics{
		JoinsStarted:      metrics.NewCounter(reg, "sj_joins_started_total", "join streams opened"),
		JoinsCompleted:    metrics.NewCounter(reg, "sj_joins_completed_total", "join streams terminated (drained, failed or closed early)"),
		RowsDecrypted:     metrics.NewCounter(reg, "sj_rows_decrypted_total", "rows run through SJ.Dec pairings"),
		DecSeconds:        metrics.NewHistogram(reg, "sj_dec_seconds", "latency of one SJ.Dec decrypt phase (build side or probe batch)", nil),
		JoinSeconds:       metrics.NewHistogram(reg, "sj_join_seconds", "wall time of one join stream, open to termination", nil),
		DecCacheHits:      metrics.NewCounter(reg, "sj_decrypt_cache_hits_total", "rows served from the decrypt-result cache"),
		DecCacheMisses:    metrics.NewCounter(reg, "sj_decrypt_cache_misses_total", "rows that paid SJ.Dec pairings on a cache lookup"),
		DecCacheEvictions: metrics.NewCounter(reg, "sj_decrypt_cache_evictions_total", "decrypt-cache entries evicted by the byte budget"),
		DecCacheOversized: metrics.NewCounter(reg, "sj_decrypt_cache_oversized_total", "decrypt-cache fills dropped because one entry alone exceeded the byte budget"),
		DecCacheBytes:     metrics.NewGauge(reg, "sj_decrypt_cache_bytes", "current decrypt-cache footprint in bytes"),
		RevealedPairs:     metrics.NewGaugeVec(reg, "sj_revealed_pairs", "revealed equality pairs touching each table (sigma leakage counter)", "table"),
	}
}

// Instrument attaches engine metrics registered in reg. Call before
// serving queries (metric pointers are read without synchronization by
// concurrent joins); typically the wire server does this at
// construction. Instrumenting twice against the same registry panics
// on the duplicate names, as it would double-count.
func (s *Server) Instrument(reg *metrics.Registry) {
	s.met = NewMetrics(reg)
}
