package ipe

import (
	"testing"
)

func TestMasterKeyCodecRoundTrip(t *testing.T) {
	msk, err := Setup(4, nil)
	if err != nil {
		t.Fatal(err)
	}
	data, err := msk.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var restored MasterKey
	if err := restored.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if restored.N != msk.N {
		t.Fatalf("dimension %d, want %d", restored.N, msk.N)
	}
	if !restored.B.Equal(msk.B) {
		t.Fatal("B differs after round trip")
	}
	if !restored.BStar.Equal(msk.BStar) {
		t.Fatal("recomputed B* differs")
	}
	if !restored.Det.Equal(msk.Det) {
		t.Fatal("recomputed det differs")
	}

	// Interoperability: a token from the original key must decrypt a
	// ciphertext from the restored key to the same D value as the
	// original pair.
	v := vec(1, 2, 3, 4)
	w := vec(4, 3, 2, 1)
	tk, err := msk.KeyGenModified(v)
	if err != nil {
		t.Fatal(err)
	}
	ctOrig, err := msk.EncryptModified(w)
	if err != nil {
		t.Fatal(err)
	}
	ctRestored, err := restored.EncryptModified(w)
	if err != nil {
		t.Fatal(err)
	}
	d1, err := DecryptModified(tk, ctOrig)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := DecryptModified(tk, ctRestored)
	if err != nil {
		t.Fatal(err)
	}
	if !d1.Equal(d2) {
		t.Fatal("restored key is not interoperable")
	}
}

func TestMasterKeyCodecRejectsMalformed(t *testing.T) {
	var msk MasterKey
	if err := msk.UnmarshalBinary(nil); err == nil {
		t.Fatal("nil encoding accepted")
	}
	if err := msk.UnmarshalBinary([]byte{0, 0, 0, 2, 1, 2, 3}); err == nil {
		t.Fatal("truncated encoding accepted")
	}
	// n = 0.
	if err := msk.UnmarshalBinary([]byte{0, 0, 0, 0}); err == nil {
		t.Fatal("zero dimension accepted")
	}
	// A singular matrix (all zeros) of dimension 2.
	data := make([]byte, 4+2*2*32)
	data[3] = 2
	if err := msk.UnmarshalBinary(data); err == nil {
		t.Fatal("singular matrix accepted")
	}
}
