package ipe

import (
	"encoding/binary"
	"fmt"

	"repro/internal/matrix"
	"repro/internal/zq"
)

// Master-key serialization. Only B is stored (32 bytes per entry,
// preceded by the dimension); B* and det(B) are recomputed on load, so
// a key file cannot hold an inconsistent (B, B*) pair.

// MarshalBinary encodes the master secret key.
func (msk *MasterKey) MarshalBinary() ([]byte, error) {
	out := make([]byte, 4, 4+msk.N*msk.N*32)
	binary.BigEndian.PutUint32(out, uint32(msk.N))
	for i := 0; i < msk.N; i++ {
		for j := 0; j < msk.N; j++ {
			out = append(out, msk.B.At(i, j).Bytes()...)
		}
	}
	return out, nil
}

// UnmarshalBinary decodes a master key produced by MarshalBinary,
// recomputing the dual matrix and determinant and rejecting singular B.
func (msk *MasterKey) UnmarshalBinary(data []byte) error {
	if len(data) < 4 {
		return fmt.Errorf("ipe: master key encoding too short")
	}
	n := int(binary.BigEndian.Uint32(data))
	data = data[4:]
	if n <= 0 || n > 1<<12 {
		return fmt.Errorf("ipe: implausible master key dimension %d", n)
	}
	if len(data) != n*n*32 {
		return fmt.Errorf("ipe: master key encoding has %d body bytes, want %d", len(data), n*n*32)
	}
	b := matrix.New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			off := (i*n + j) * 32
			b.Set(i, j, zq.FromBytes(data[off:off+32]))
		}
	}
	det := b.Det()
	if det.IsZero() {
		return fmt.Errorf("ipe: master key matrix is singular")
	}
	bStar, err := b.Dual()
	if err != nil {
		return err
	}
	msk.N = n
	msk.B = b
	msk.BStar = bStar
	msk.Det = det
	return nil
}
