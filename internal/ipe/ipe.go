// Package ipe implements the function-hiding inner-product encryption
// (FHIPE) scheme of Kim, Lewi, Mandal, Montgomery, Roy and Wu (SCN'18)
// over the bn256 pairing groups, exactly as recalled in Section 3.3 of
// the paper, together with the modified variant of Section 4.2 that the
// Secure Join scheme is built on.
//
// In the full scheme, a secret key for vector v and a ciphertext for
// vector w decrypt to the inner product <v, w> provided it lies in a
// polynomially-sized set S. In the modified variant the randomizers
// alpha and beta are fixed to 1 (randomness is carried inside the
// vectors instead), only the second component of keys and ciphertexts is
// kept, and decryption outputs the group element
//
//	D = e(g1, g2)^(det(B) * <v, w>)
//
// without extracting a discrete logarithm: Secure Join only compares D
// values for equality.
package ipe

import (
	"errors"
	"fmt"
	"io"
	"math/big"

	"repro/internal/bn256"
	"repro/internal/matrix"
	"repro/internal/zq"
)

// MasterKey is the IPE master secret key: the matrix B sampled from
// GL_n(Z_q), its dual B* = det(B)(B^-1)^T and det(B).
type MasterKey struct {
	N     int
	B     *matrix.Matrix
	BStar *matrix.Matrix
	Det   zq.Scalar
}

// Setup samples a master secret key for vectors of dimension n.
// The public parameters (the bn256 group description) are implicit.
func Setup(n int, rng io.Reader) (*MasterKey, error) {
	if n <= 0 {
		return nil, errors.New("ipe: dimension must be positive")
	}
	b, err := matrix.RandomInvertible(n, rng)
	if err != nil {
		return nil, fmt.Errorf("ipe: sampling B: %w", err)
	}
	bStar, err := b.Dual()
	if err != nil {
		return nil, fmt.Errorf("ipe: computing B*: %w", err)
	}
	return &MasterKey{N: n, B: b, BStar: bStar, Det: b.Det()}, nil
}

// SecretKey is a full-scheme functional key (K1, K2) for a vector v.
type SecretKey struct {
	K1 *bn256.G1
	K2 []*bn256.G1
}

// Ciphertext is a full-scheme ciphertext (C1, C2) for a vector w.
type Ciphertext struct {
	C1 *bn256.G2
	C2 []*bn256.G2
}

// KeyGen produces the pair sk = (g1^(alpha det B), g1^(alpha v B)) for a
// fresh uniform alpha.
func (msk *MasterKey) KeyGen(v zq.Vector, rng io.Reader) (*SecretKey, error) {
	if len(v) != msk.N {
		return nil, fmt.Errorf("ipe: key vector has length %d, want %d", len(v), msk.N)
	}
	alpha, err := zq.Random(rng)
	if err != nil {
		return nil, err
	}
	sk := &SecretKey{
		K1: new(bn256.G1).ScalarBaseMult(alpha.Mul(msk.Det).Big()),
		K2: make([]*bn256.G1, msk.N),
	}
	vb := msk.B.MulVec(v)
	for i, c := range vb {
		sk.K2[i] = new(bn256.G1).ScalarBaseMult(alpha.Mul(c).Big())
	}
	return sk, nil
}

// Encrypt produces the pair ct = (g2^beta, g2^(beta w B*)) for a fresh
// uniform beta.
func (msk *MasterKey) Encrypt(w zq.Vector, rng io.Reader) (*Ciphertext, error) {
	if len(w) != msk.N {
		return nil, fmt.Errorf("ipe: plaintext vector has length %d, want %d", len(w), msk.N)
	}
	beta, err := zq.Random(rng)
	if err != nil {
		return nil, err
	}
	ct := &Ciphertext{
		C1: new(bn256.G2).ScalarBaseMult(beta.Big()),
		C2: make([]*bn256.G2, msk.N),
	}
	wb := msk.BStar.MulVec(w)
	for i, c := range wb {
		ct.C2[i] = new(bn256.G2).ScalarBaseMult(beta.Mul(c).Big())
	}
	return ct, nil
}

// Decrypt recovers <v, w> if it lies in the candidate set S (given as a
// slice of int64), and returns an error otherwise. This mirrors
// IPE.Decrypt of Section 3.3: compute D1 = e(K1, C1),
// D2 = e(K2, C2) and search for z in S with D1^z == D2.
func Decrypt(sk *SecretKey, ct *Ciphertext, s []int64) (int64, error) {
	d1 := bn256.Pair(sk.K1, ct.C1)
	d2 := bn256.PairBatch(sk.K2, ct.C2)
	for _, z := range s {
		var cand bn256.GT
		k := big.NewInt(z)
		if z < 0 {
			// D1^z with negative z: invert after exponentiation.
			cand.Exp(d1, new(big.Int).Neg(k))
			cand.Invert(&cand)
		} else {
			cand.Exp(d1, k)
		}
		if cand.Equal(d2) {
			return z, nil
		}
	}
	return 0, errors.New("ipe: inner product outside candidate set")
}

// Token is a modified-scheme key: the single vector component
// Tk = g1^(v B). The paper calls this the query's "unlocking token".
type Token struct {
	Elems []*bn256.G1
}

// CiphertextM is a modified-scheme ciphertext: the single vector
// component C = g2^(w B*).
type CiphertextM struct {
	Elems []*bn256.G2
}

// KeyGenModified computes Tk = g1^(v B) with alpha = 1; per Section 4.2
// the randomness that alpha provided lives inside v itself (the delta
// slot appended by the Secure Join token builder).
func (msk *MasterKey) KeyGenModified(v zq.Vector) (*Token, error) {
	if len(v) != msk.N {
		return nil, fmt.Errorf("ipe: token vector has length %d, want %d", len(v), msk.N)
	}
	vb := msk.B.MulVec(v)
	tk := &Token{Elems: make([]*bn256.G1, msk.N)}
	for i, c := range vb {
		tk.Elems[i] = new(bn256.G1).ScalarBaseMult(c.Big())
	}
	return tk, nil
}

// EncryptModified computes C = g2^(w B*) with beta = 1; the gamma slots
// inside w carry the randomness.
func (msk *MasterKey) EncryptModified(w zq.Vector) (*CiphertextM, error) {
	if len(w) != msk.N {
		return nil, fmt.Errorf("ipe: plaintext vector has length %d, want %d", len(w), msk.N)
	}
	wb := msk.BStar.MulVec(w)
	ct := &CiphertextM{Elems: make([]*bn256.G2, msk.N)}
	for i, c := range wb {
		ct.Elems[i] = new(bn256.G2).ScalarBaseMult(c.Big())
	}
	return ct, nil
}

// DecryptModified computes D = e(Tk, C) = e(g1,g2)^(det(B) <v, w>) using
// one batched multi-pairing. Secure Join compares these D values for
// equality; their discrete logs are never extracted.
func DecryptModified(tk *Token, ct *CiphertextM) (*bn256.GT, error) {
	if len(tk.Elems) != len(ct.Elems) {
		return nil, fmt.Errorf("ipe: token dimension %d does not match ciphertext dimension %d",
			len(tk.Elems), len(ct.Elems))
	}
	return bn256.PairBatch(tk.Elems, ct.Elems), nil
}

// TokenPrecomp is a token with its G1-side Miller program recorded
// once, amortizing the fixed-argument pairing work across every
// ciphertext the token is paired with. The handle is immutable and
// safe for concurrent use by multiple goroutines.
type TokenPrecomp struct {
	n  int
	pc *bn256.PairingPrecomp
}

// PrecomputeToken records the fixed-argument pairing program of a
// modified-scheme token. The cost is roughly one Miller loop; every
// subsequent Decrypt pays only the per-ciphertext evaluation.
func PrecomputeToken(tk *Token) *TokenPrecomp {
	return &TokenPrecomp{n: len(tk.Elems), pc: bn256.PrecomputePairBatch(tk.Elems)}
}

// Dim returns the token dimension the precomputation was built for.
func (tp *TokenPrecomp) Dim() int { return tp.n }

// Decrypt computes the same D value DecryptModified would for the
// precomputed token, evaluating the recorded Miller program at the
// ciphertext's G2 elements.
func (tp *TokenPrecomp) Decrypt(ct *CiphertextM) (*bn256.GT, error) {
	if tp.n != len(ct.Elems) {
		return nil, fmt.Errorf("ipe: token dimension %d does not match ciphertext dimension %d",
			tp.n, len(ct.Elems))
	}
	return bn256.PairBatchPrecomputed(tp.pc, ct.Elems), nil
}
