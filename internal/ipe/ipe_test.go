package ipe

import (
	"testing"

	"repro/internal/zq"
)

func vec(xs ...int64) zq.Vector {
	v := make(zq.Vector, len(xs))
	for i, x := range xs {
		v[i] = zq.FromInt64(x)
	}
	return v
}

func TestFullSchemeRecoverInnerProduct(t *testing.T) {
	msk, err := Setup(4, nil)
	if err != nil {
		t.Fatal(err)
	}
	v := vec(1, 2, 3, 4)
	w := vec(2, 0, 1, 5) // <v,w> = 2 + 0 + 3 + 20 = 25
	sk, err := msk.KeyGen(v, nil)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := msk.Encrypt(w, nil)
	if err != nil {
		t.Fatal(err)
	}
	s := []int64{0, 5, 10, 25, 30}
	got, err := Decrypt(sk, ct, s)
	if err != nil {
		t.Fatal(err)
	}
	if got != 25 {
		t.Fatalf("decrypted %d, want 25", got)
	}
}

func TestFullSchemeNegativeInnerProduct(t *testing.T) {
	msk, err := Setup(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	v := vec(1, -3)
	w := vec(2, 1) // <v,w> = -1
	sk, err := msk.KeyGen(v, nil)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := msk.Encrypt(w, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decrypt(sk, ct, []int64{-2, -1, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if got != -1 {
		t.Fatalf("decrypted %d, want -1", got)
	}
}

func TestFullSchemeOutsideCandidateSet(t *testing.T) {
	msk, err := Setup(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	sk, err := msk.KeyGen(vec(1, 1), nil)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := msk.Encrypt(vec(10, 10), nil) // <v,w> = 20
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decrypt(sk, ct, []int64{0, 1, 2}); err == nil {
		t.Fatal("decryption should fail outside the candidate set")
	}
}

// TestModifiedSchemeEquality is the property Secure Join needs: two
// ciphertexts decrypted under keys with the same inner-product outcome
// yield equal D values, and differing inner products yield different
// ones.
func TestModifiedSchemeEquality(t *testing.T) {
	msk, err := Setup(3, nil)
	if err != nil {
		t.Fatal(err)
	}

	// <v, w1> == <v, w2> == 10
	v := vec(1, 2, 0)
	w1 := vec(10, 0, 7)
	w2 := vec(2, 4, 99)
	tk, err := msk.KeyGenModified(v)
	if err != nil {
		t.Fatal(err)
	}
	c1, err := msk.EncryptModified(w1)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := msk.EncryptModified(w2)
	if err != nil {
		t.Fatal(err)
	}
	d1, err := DecryptModified(tk, c1)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := DecryptModified(tk, c2)
	if err != nil {
		t.Fatal(err)
	}
	if !d1.Equal(d2) {
		t.Fatal("equal inner products should give equal D values")
	}

	// <v, w3> = 11 != 10
	w3 := vec(11, 0, 3)
	c3, err := msk.EncryptModified(w3)
	if err != nil {
		t.Fatal(err)
	}
	d3, err := DecryptModified(tk, c3)
	if err != nil {
		t.Fatal(err)
	}
	if d1.Equal(d3) {
		t.Fatal("different inner products should give different D values")
	}
}

// TestModifiedSchemeCrossMskUnlinkable: the same vectors under two
// independent master keys must produce different D values (det(B)
// differs), the reason different clients/uploads are unlinkable.
func TestModifiedSchemeCrossMskUnlinkable(t *testing.T) {
	v := vec(1, 2)
	w := vec(3, 4)
	d := func() []byte {
		msk, err := Setup(2, nil)
		if err != nil {
			t.Fatal(err)
		}
		tk, err := msk.KeyGenModified(v)
		if err != nil {
			t.Fatal(err)
		}
		ct, err := msk.EncryptModified(w)
		if err != nil {
			t.Fatal(err)
		}
		gt, err := DecryptModified(tk, ct)
		if err != nil {
			t.Fatal(err)
		}
		return gt.Marshal()
	}
	if string(d()) == string(d()) {
		t.Fatal("independent master keys produced identical D values")
	}
}

func TestDimensionValidation(t *testing.T) {
	if _, err := Setup(0, nil); err == nil {
		t.Fatal("dimension 0 should be rejected")
	}
	msk, err := Setup(3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := msk.KeyGen(vec(1, 2), nil); err == nil {
		t.Fatal("short key vector should be rejected")
	}
	if _, err := msk.Encrypt(vec(1, 2, 3, 4), nil); err == nil {
		t.Fatal("long plaintext vector should be rejected")
	}
	if _, err := msk.KeyGenModified(vec(1)); err == nil {
		t.Fatal("short modified key vector should be rejected")
	}
	if _, err := msk.EncryptModified(vec(1)); err == nil {
		t.Fatal("short modified plaintext vector should be rejected")
	}

	tk, err := msk.KeyGenModified(vec(1, 2, 3))
	if err != nil {
		t.Fatal(err)
	}
	short := &CiphertextM{Elems: nil}
	if _, err := DecryptModified(tk, short); err == nil {
		t.Fatal("mismatched dimensions should be rejected")
	}
}

// TestKeyCiphertextRandomization: two keys for the same vector (or two
// ciphertexts for the same message) must differ, by the fresh alpha and
// beta randomness of the full scheme.
func TestKeyCiphertextRandomization(t *testing.T) {
	msk, err := Setup(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	v := vec(5, 6)
	sk1, err := msk.KeyGen(v, nil)
	if err != nil {
		t.Fatal(err)
	}
	sk2, err := msk.KeyGen(v, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sk1.K1.Equal(sk2.K1) {
		t.Fatal("two keys for the same vector are identical (alpha reuse)")
	}
	ct1, err := msk.Encrypt(v, nil)
	if err != nil {
		t.Fatal(err)
	}
	ct2, err := msk.Encrypt(v, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ct1.C1.Equal(ct2.C1) {
		t.Fatal("two ciphertexts for the same vector are identical (beta reuse)")
	}
}
