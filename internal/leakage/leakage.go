// Package leakage makes the paper's leakage analysis executable. It
// models the information an honest-but-curious DBMS server learns from a
// series of equi-join queries as sets of revealed equality pairs between
// rows (Section 5.2's trace), computes transitive closures over query
// series with a union-find structure, and provides per-scheme leakage
// simulators reproducing the Section 2.1 comparison:
//
//   - deterministic encryption reveals every equal pair at upload time,
//   - CryptDB's onion encryption reveals every equal pair of the joined
//     columns at the first query touching them,
//   - Hahn et al. reveal pairs among all rows *ever* unwrapped by any
//     query's selection criterion — the union of queries can therefore
//     leak more than the sum of the queries (super-additive leakage),
//   - Secure Join reveals only pairs matched within a single query, so a
//     series leaks exactly the transitive closure of the per-query
//     leakages.
package leakage

import (
	"fmt"
	"sort"
)

// RowRef identifies a row by table name and row index.
type RowRef struct {
	Table string
	Row   int
}

func (r RowRef) String() string { return fmt.Sprintf("%s[%d]", r.Table, r.Row) }

// Pair is an unordered equality pair between two rows whose join values
// the adversary has learned to be equal.
type Pair struct {
	A, B RowRef
}

// normalize orders the endpoints canonically so that Pair values are
// comparable.
func (p Pair) normalize() Pair {
	if p.B.Table < p.A.Table || (p.B.Table == p.A.Table && p.B.Row < p.A.Row) {
		p.A, p.B = p.B, p.A
	}
	return p
}

// PairSet is a set of revealed equality pairs.
type PairSet map[Pair]struct{}

// NewPairSet returns a set containing the given pairs.
func NewPairSet(pairs ...Pair) PairSet {
	s := make(PairSet, len(pairs))
	for _, p := range pairs {
		s.Add(p)
	}
	return s
}

// Add inserts a pair (self-pairs are ignored).
func (s PairSet) Add(p Pair) {
	p = p.normalize()
	if p.A == p.B {
		return
	}
	s[p] = struct{}{}
}

// AddAll inserts every pair of o.
func (s PairSet) AddAll(o PairSet) {
	for p := range o {
		s.Add(p)
	}
}

// Contains reports whether p is in the set.
func (s PairSet) Contains(p Pair) bool {
	_, ok := s[p.normalize()]
	return ok
}

// Len returns the number of pairs.
func (s PairSet) Len() int { return len(s) }

// Equal reports whether s and o contain exactly the same pairs.
func (s PairSet) Equal(o PairSet) bool {
	if len(s) != len(o) {
		return false
	}
	for p := range s {
		if _, ok := o[p]; !ok {
			return false
		}
	}
	return true
}

// Sorted returns the pairs in a deterministic order for display.
func (s PairSet) Sorted() []Pair {
	out := make([]Pair, 0, len(s))
	for p := range s {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.A.Table != b.A.Table {
			return a.A.Table < b.A.Table
		}
		if a.A.Row != b.A.Row {
			return a.A.Row < b.A.Row
		}
		if a.B.Table != b.B.Table {
			return a.B.Table < b.B.Table
		}
		return a.B.Row < b.B.Row
	})
	return out
}

// TransitiveClosure returns the closure of s under transitivity of
// equality: if (a,b) and (b,c) are revealed then (a,c) is derivable.
// This is the paper's lower-bound leakage for a series of queries.
func (s PairSet) TransitiveClosure() PairSet {
	uf := NewUnionFind()
	for p := range s {
		uf.Union(p.A, p.B)
	}
	return uf.Pairs()
}

// IsSuperAdditive reports whether observed leaks strictly more than the
// transitive closure of the per-query leakages: the paper's definition
// of super-additive leakage (Section 2.1). perQuery lists sigma(q_i) for
// each query.
func IsSuperAdditive(observed PairSet, perQuery []PairSet) bool {
	union := NewPairSet()
	for _, q := range perQuery {
		union.AddAll(q)
	}
	closure := union.TransitiveClosure()
	for p := range observed {
		if !closure.Contains(p) {
			return true
		}
	}
	return false
}

// UnionFind maintains equivalence classes of row references.
type UnionFind struct {
	parent map[RowRef]RowRef
	rank   map[RowRef]int
}

// NewUnionFind returns an empty structure.
func NewUnionFind() *UnionFind {
	return &UnionFind{parent: make(map[RowRef]RowRef), rank: make(map[RowRef]int)}
}

// Find returns the class representative of x, adding x if unseen.
func (u *UnionFind) Find(x RowRef) RowRef {
	p, ok := u.parent[x]
	if !ok {
		u.parent[x] = x
		return x
	}
	if p == x {
		return x
	}
	root := u.Find(p)
	u.parent[x] = root
	return root
}

// Union merges the classes of a and b.
func (u *UnionFind) Union(a, b RowRef) {
	ra, rb := u.Find(a), u.Find(b)
	if ra == rb {
		return
	}
	if u.rank[ra] < u.rank[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	if u.rank[ra] == u.rank[rb] {
		u.rank[ra]++
	}
}

// Connected reports whether a and b are in the same class.
func (u *UnionFind) Connected(a, b RowRef) bool {
	return u.Find(a) == u.Find(b)
}

// Classes returns the members of each non-singleton equivalence class.
func (u *UnionFind) Classes() [][]RowRef {
	groups := make(map[RowRef][]RowRef)
	for x := range u.parent {
		r := u.Find(x)
		groups[r] = append(groups[r], x)
	}
	var out [][]RowRef
	for _, members := range groups {
		if len(members) < 2 {
			continue
		}
		sort.Slice(members, func(i, j int) bool {
			if members[i].Table != members[j].Table {
				return members[i].Table < members[j].Table
			}
			return members[i].Row < members[j].Row
		})
		out = append(out, members)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i][0], out[j][0]
		if a.Table != b.Table {
			return a.Table < b.Table
		}
		return a.Row < b.Row
	})
	return out
}

// Pairs expands every equivalence class into all of its internal pairs.
func (u *UnionFind) Pairs() PairSet {
	out := NewPairSet()
	for _, members := range u.Classes() {
		for i := 0; i < len(members); i++ {
			for j := i + 1; j < len(members); j++ {
				out.Add(Pair{A: members[i], B: members[j]})
			}
		}
	}
	return out
}
