package leakage

import "testing"

func ref(table string, row int) RowRef { return RowRef{Table: table, Row: row} }

func TestPairNormalization(t *testing.T) {
	s := NewPairSet()
	s.Add(Pair{A: ref("B", 2), B: ref("A", 1)})
	if !s.Contains(Pair{A: ref("A", 1), B: ref("B", 2)}) {
		t.Fatal("pair order should not matter")
	}
	if s.Len() != 1 {
		t.Fatalf("len = %d", s.Len())
	}
	// Self pairs are ignored.
	s.Add(Pair{A: ref("A", 1), B: ref("A", 1)})
	if s.Len() != 1 {
		t.Fatal("self pair was stored")
	}
}

func TestPairSetOps(t *testing.T) {
	a := NewPairSet(Pair{A: ref("T", 0), B: ref("T", 1)})
	b := NewPairSet(Pair{A: ref("T", 1), B: ref("T", 0)})
	if !a.Equal(b) {
		t.Fatal("sets with same normalized pairs should be equal")
	}
	b.Add(Pair{A: ref("T", 2), B: ref("T", 3)})
	if a.Equal(b) {
		t.Fatal("different sets reported equal")
	}
	a.AddAll(b)
	if a.Len() != 2 {
		t.Fatalf("union has %d pairs", a.Len())
	}
	if got := a.Sorted(); len(got) != 2 || got[0].A.Row > got[1].A.Row {
		t.Fatalf("sorted output wrong: %v", got)
	}
}

func TestUnionFind(t *testing.T) {
	uf := NewUnionFind()
	uf.Union(ref("A", 0), ref("B", 0))
	uf.Union(ref("B", 0), ref("B", 1))
	if !uf.Connected(ref("A", 0), ref("B", 1)) {
		t.Fatal("transitivity broken")
	}
	if uf.Connected(ref("A", 0), ref("C", 9)) {
		t.Fatal("disconnected elements reported connected")
	}
	classes := uf.Classes()
	if len(classes) != 1 || len(classes[0]) != 3 {
		t.Fatalf("classes = %v", classes)
	}
}

func TestTransitiveClosure(t *testing.T) {
	s := NewPairSet(
		Pair{A: ref("T", 0), B: ref("T", 1)},
		Pair{A: ref("T", 1), B: ref("T", 2)},
	)
	c := s.TransitiveClosure()
	if c.Len() != 3 {
		t.Fatalf("closure of a 3-chain should have 3 pairs, got %d", c.Len())
	}
	if !c.Contains(Pair{A: ref("T", 0), B: ref("T", 2)}) {
		t.Fatal("derived pair missing from closure")
	}
	// Closure is idempotent.
	if !c.TransitiveClosure().Equal(c) {
		t.Fatal("closure not idempotent")
	}
}

func TestIsSuperAdditive(t *testing.T) {
	q1 := NewPairSet(Pair{A: ref("T", 0), B: ref("T", 1)})
	q2 := NewPairSet(Pair{A: ref("T", 1), B: ref("T", 2)})
	perQuery := []PairSet{q1, q2}

	// Observing exactly the closure is NOT super-additive.
	union := NewPairSet()
	union.AddAll(q1)
	union.AddAll(q2)
	closure := union.TransitiveClosure()
	if IsSuperAdditive(closure, perQuery) {
		t.Fatal("closure itself flagged as super-additive")
	}
	// Observing an unrelated pair IS.
	extra := NewPairSet()
	extra.AddAll(closure)
	extra.Add(Pair{A: ref("T", 7), B: ref("T", 8)})
	if !IsSuperAdditive(extra, perQuery) {
		t.Fatal("extra pair not flagged as super-additive")
	}
}

// example21 builds the tables and query series of Example 2.1.
func example21() (*Table, *Table, []Query) {
	teams := &Table{
		Name:  "Teams",
		Joins: []string{"1", "2"},
		Attrs: [][]string{{"Web Application"}, {"Database"}},
	}
	employees := &Table{
		Name:  "Employees",
		Joins: []string{"1", "1", "2", "2"},
		Attrs: [][]string{{"Programmer"}, {"Tester"}, {"Programmer"}, {"Tester"}},
	}
	queries := []Query{
		{SelA: map[int][]string{0: {"Web Application"}}, SelB: map[int][]string{0: {"Tester"}}},
		{SelA: map[int][]string{0: {"Database"}}, SelB: map[int][]string{0: {"Programmer"}}},
	}
	return teams, employees, queries
}

// TestSection21Timeline checks the exact pair counts of the paper's
// Section 2.1 analysis at t0, t1 and t2 for all four schemes.
func TestSection21Timeline(t *testing.T) {
	teams, employees, queries := example21()

	check := func(name string, got []PairSet, want []int) {
		t.Helper()
		if len(got) != len(want) {
			t.Fatalf("%s: %d time points, want %d", name, len(got), len(want))
		}
		for i, w := range want {
			if got[i].Len() != w {
				t.Errorf("%s at t%d: %d pairs, want %d", name, i, got[i].Len(), w)
			}
		}
	}
	check("deterministic", DeterministicLeakage(teams, employees, queries), []int{6, 6, 6})
	check("cryptdb", CryptDBLeakage(teams, employees, queries), []int{0, 6, 6})
	check("hahn", HahnLeakage(teams, employees, queries), []int{0, 1, 6})
	check("securejoin", SecureJoinLeakage(teams, employees, queries), []int{0, 1, 2})
}

func TestHahnIsSuperAdditiveOnExample(t *testing.T) {
	teams, employees, queries := example21()
	perQuery := []PairSet{
		PerQueryLeakage(teams, employees, queries[0]),
		PerQueryLeakage(teams, employees, queries[1]),
	}
	hahn := HahnLeakage(teams, employees, queries)
	if !IsSuperAdditive(hahn[2], perQuery) {
		t.Fatal("Hahn should be super-additive on Example 2.1")
	}
	sj := SecureJoinLeakage(teams, employees, queries)
	if IsSuperAdditive(sj[2], perQuery) {
		t.Fatal("Secure Join must not be super-additive")
	}
}

func TestPerQueryLeakageContents(t *testing.T) {
	teams, employees, queries := example21()
	sigma1 := PerQueryLeakage(teams, employees, queries[0])
	// Only (Teams[0], Employees[1]) — key 1 with Name=Web Application
	// joins employee 2 (index 1) with Role=Tester.
	if sigma1.Len() != 1 || !sigma1.Contains(Pair{A: ref("Teams", 0), B: ref("Employees", 1)}) {
		t.Fatalf("sigma(q1) = %v", sigma1.Sorted())
	}
}

// TestIntraTablePairs: an unselective query over Employees alone must
// reveal the within-table pairs (b1,b2) and (b3,b4) of Example 2.1.
func TestIntraTablePairs(t *testing.T) {
	teams, employees, _ := example21()
	q := Query{SelA: map[int][]string{}, SelB: map[int][]string{}}
	sigma := PerQueryLeakage(teams, employees, q)
	if !sigma.Contains(Pair{A: ref("Employees", 0), B: ref("Employees", 1)}) {
		t.Fatal("intra-table pair (b1,b2) missing")
	}
	if !sigma.Contains(Pair{A: ref("Employees", 2), B: ref("Employees", 3)}) {
		t.Fatal("intra-table pair (b3,b4) missing")
	}
	if sigma.Len() != 6 {
		t.Fatalf("unselective query should reveal all 6 pairs, got %d", sigma.Len())
	}
}
