package leakage

// This file contains the per-scheme leakage simulators of the Section
// 2.1 analysis. Each simulator is fed the plaintext tables and the query
// series and answers: which equality pairs does a server running this
// scheme observe at each point in time?
//
// The simulators intentionally work on plaintext — they model what an
// adversary *learns*, which for the analytic comparison is a function of
// join-value equality and selection-predicate membership only. The
// executable cryptographic counterparts live in internal/securejoin and
// internal/baseline; tests cross-check the simulators against the real
// implementations on the paper's example.

// Table is a plaintext view of a table for leakage simulation: for each
// row, its join value and its attribute values.
type Table struct {
	Name  string
	Joins []string   // join-column value per row
	Attrs [][]string // attribute values per row
}

// Query describes one equi-join query over two tables with per-table
// selection predicates (attribute index -> admissible values).
type Query struct {
	SelA map[int][]string // selection on table A
	SelB map[int][]string // selection on table B
}

// matches reports whether row r of tbl satisfies sel.
func matches(tbl *Table, r int, sel map[int][]string) bool {
	for attr, values := range sel {
		ok := false
		if attr < len(tbl.Attrs[r]) {
			for _, v := range values {
				if tbl.Attrs[r][attr] == v {
					ok = true
					break
				}
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// equalPairsAmong returns every pair among the given row sets (both
// cross-table and intra-table) with equal join values.
func equalPairsAmong(ta *Table, rowsA []int, tb *Table, rowsB []int) PairSet {
	out := NewPairSet()
	add := func(t1 *Table, r1 int, t2 *Table, r2 int) {
		if t1.Joins[r1] == t2.Joins[r2] {
			out.Add(Pair{A: RowRef{t1.Name, r1}, B: RowRef{t2.Name, r2}})
		}
	}
	for i := 0; i < len(rowsA); i++ {
		for j := i + 1; j < len(rowsA); j++ {
			add(ta, rowsA[i], ta, rowsA[j])
		}
	}
	for i := 0; i < len(rowsB); i++ {
		for j := i + 1; j < len(rowsB); j++ {
			add(tb, rowsB[i], tb, rowsB[j])
		}
	}
	for _, i := range rowsA {
		for _, j := range rowsB {
			add(ta, i, tb, j)
		}
	}
	return out
}

func allRows(t *Table) []int {
	rows := make([]int, len(t.Joins))
	for i := range rows {
		rows[i] = i
	}
	return rows
}

func selectedRows(t *Table, sel map[int][]string) []int {
	var rows []int
	for i := range t.Joins {
		if matches(t, i, sel) {
			rows = append(rows, i)
		}
	}
	return rows
}

// DeterministicLeakage models Hacigumus et al.: all equal pairs of the
// join columns are visible from time t0 (upload), before any query.
func DeterministicLeakage(ta, tb *Table, queries []Query) []PairSet {
	atUpload := equalPairsAmong(ta, allRows(ta), tb, allRows(tb))
	out := []PairSet{atUpload}
	for range queries {
		next := NewPairSet()
		next.AddAll(out[len(out)-1])
		out = append(out, next)
	}
	return out
}

// CryptDBLeakage models onion encryption: nothing at t0; the first join
// query strips the probabilistic onion from both join columns, revealing
// all equal pairs.
func CryptDBLeakage(ta, tb *Table, queries []Query) []PairSet {
	out := []PairSet{NewPairSet()}
	for range queries {
		// Any join query over the pair of columns strips the onion from
		// both columns entirely.
		next := NewPairSet()
		next.AddAll(out[len(out)-1])
		next.AddAll(equalPairsAmong(ta, allRows(ta), tb, allRows(tb)))
		out = append(out, next)
	}
	return out
}

// HahnLeakage models Hahn et al. (ICDE'19): each query unwraps the KP-ABE
// layer of every row matching its selection criterion; unwrapped rows
// stay unwrapped, so at time t_i all equal pairs among rows unwrapped by
// ANY query so far are visible. This is where super-additive leakage
// arises.
func HahnLeakage(ta, tb *Table, queries []Query) []PairSet {
	out := []PairSet{NewPairSet()}
	unwrappedA := map[int]bool{}
	unwrappedB := map[int]bool{}
	for _, q := range queries {
		for _, r := range selectedRows(ta, q.SelA) {
			unwrappedA[r] = true
		}
		for _, r := range selectedRows(tb, q.SelB) {
			unwrappedB[r] = true
		}
		rowsA := keys(unwrappedA)
		rowsB := keys(unwrappedB)
		out = append(out, equalPairsAmong(ta, rowsA, tb, rowsB))
	}
	return out
}

// SecureJoinLeakage models this paper's scheme: query q_i reveals only
// the equal pairs among rows matching q_i's selection criteria; across
// queries the adversary can combine observations only up to transitive
// closure. The returned cumulative sets are exactly those closures.
func SecureJoinLeakage(ta, tb *Table, queries []Query) []PairSet {
	out := []PairSet{NewPairSet()}
	union := NewPairSet()
	for _, q := range queries {
		sigma := PerQueryLeakage(ta, tb, q)
		union.AddAll(sigma)
		out = append(out, union.TransitiveClosure())
	}
	return out
}

// PerQueryLeakage returns sigma(q): the equality pairs revealed by one
// Secure Join query in isolation.
func PerQueryLeakage(ta, tb *Table, q Query) PairSet {
	return equalPairsAmong(ta, selectedRows(ta, q.SelA), tb, selectedRows(tb, q.SelB))
}

func keys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
