package bn256

import (
	"crypto/rand"
	"math/big"
	"testing"
)

// Ablation benchmarks for the design choices DESIGN.md calls out: the
// Montgomery-limb field vs a big.Int field, batched multi-pairing vs
// naive per-pair pairing, and the cost split between the Miller loop
// and the final exponentiation.

func BenchmarkGFpMul(b *testing.B) {
	x, _ := rand.Int(rand.Reader, P)
	y, _ := rand.Int(rand.Reader, P)
	fx, fy := gfPFromBig(x), gfPFromBig(y)
	var out gfP
	b.Run("montgomery", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			out.Mul(fx, fy)
		}
	})
	b.Run("bigint", func(b *testing.B) {
		z := new(big.Int)
		for i := 0; i < b.N; i++ {
			z.Mul(x, y)
			z.Mod(z, P)
		}
	})
}

func BenchmarkGFpInvert(b *testing.B) {
	x, _ := rand.Int(rand.Reader, P)
	fx := gfPFromBig(x)
	var out gfP
	for i := 0; i < b.N; i++ {
		out.Invert(fx)
	}
}

func BenchmarkG1ScalarBaseMult(b *testing.B) {
	k, _ := rand.Int(rand.Reader, Order)
	var e G1
	for i := 0; i < b.N; i++ {
		e.ScalarBaseMult(k)
	}
}

func BenchmarkG2ScalarBaseMult(b *testing.B) {
	k, _ := rand.Int(rand.Reader, Order)
	var e G2
	for i := 0; i < b.N; i++ {
		e.ScalarBaseMult(k)
	}
}

func BenchmarkPairing(b *testing.B) {
	_, p, _ := RandomG1(rand.Reader)
	_, q, _ := RandomG2(rand.Reader)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Pair(p, q)
	}
}

func BenchmarkMillerLoopOnly(b *testing.B) {
	_, p, _ := RandomG1(rand.Reader)
	_, q, _ := RandomG2(rand.Reader)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		slots := []*pairSlot{newPairSlot(&p.p, &q.p)}
		millerBatch(slots)
	}
}

func BenchmarkFinalExponentiationOnly(b *testing.B) {
	_, p, _ := RandomG1(rand.Reader)
	_, q, _ := RandomG2(rand.Reader)
	slots := []*pairSlot{newPairSlot(&p.p, &q.p)}
	f := millerBatch(slots)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		finalExponentiation(&f)
	}
}

// BenchmarkPairBatchedVsNaive quantifies the multi-pairing saving: SJ
// decryption pairs d = m(t+1)+3 elements; the batched Miller loop
// shares the squaring chain and pays one final exponentiation instead
// of d.
func BenchmarkPairBatchedVsNaive(b *testing.B) {
	const d = 5 // m=1, t=1
	ps := make([]*G1, d)
	qs := make([]*G2, d)
	for i := range ps {
		_, ps[i], _ = RandomG1(rand.Reader)
		_, qs[i], _ = RandomG2(rand.Reader)
	}
	b.Run("batched", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			PairBatch(ps, qs)
		}
	})
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			acc := new(GT).SetOne()
			for j := 0; j < d; j++ {
				acc.Mul(acc, Pair(ps[j], qs[j]))
			}
		}
	})
}

// BenchmarkPairBatchPrecomputed quantifies the fixed-argument saving:
// with the G1 side recorded once, each evaluation pays only the line
// evaluations at Q, the accumulator squarings, and the final
// exponentiation — the per-step inversions and T-chain updates are
// gone.
func BenchmarkPairBatchPrecomputed(b *testing.B) {
	const d = 5 // m=1, t=1
	ps := make([]*G1, d)
	qs := make([]*G2, d)
	for i := range ps {
		_, ps[i], _ = RandomG1(rand.Reader)
		_, qs[i], _ = RandomG2(rand.Reader)
	}
	b.Run("precompute", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			PrecomputePairBatch(ps)
		}
	})
	pc := PrecomputePairBatch(ps)
	b.Run("evaluate", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			PairBatchPrecomputed(pc, qs)
		}
	})
	b.Run("direct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			PairBatch(ps, qs)
		}
	})
}

func BenchmarkGTMarshal(b *testing.B) {
	_, p, _ := RandomG1(rand.Reader)
	_, q, _ := RandomG2(rand.Reader)
	e := Pair(p, q)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Marshal()
	}
}
