package bn256

import (
	"fmt"
	"math/big"
)

// gfP2 is an element a0 + a1*i of Fp2 = Fp(i) with i^2 = -1. This
// representation requires p = 3 mod 4, which is verified at init.
type gfP2 struct {
	a0, a1 gfP
}

var (
	// xi is the quadratic and cubic non-residue in Fp2 that defines the
	// tower Fp6 = Fp2[tau]/(tau^3 - xi). It is chosen at init as the
	// first element of the form n + i that is neither a square nor a
	// cube in Fp2.
	xi gfP2
	// xiInv is xi^-1, used for the twist curve coefficient b' = 3/xi.
	xiInv gfP2
	// xiN is the small integer n with xi = n + i, letting MulXi run on
	// additions instead of a full Fp2 multiplication.
	xiN int64
	// p2Minus1Over2 and p2Minus1Over3 are residue-test exponents.
	p2Minus1Over2 *big.Int
	p2Minus1Over3 *big.Int
)

func initGFp2() {
	if new(big.Int).Mod(P, big.NewInt(4)).Int64() != 3 {
		panic("bn256: prime is not 3 mod 4; i^2 = -1 is not a tower base")
	}
	p2 := new(big.Int).Mul(P, P)
	p2m1 := new(big.Int).Sub(p2, big.NewInt(1))
	p2Minus1Over2 = new(big.Int).Rsh(p2m1, 1)
	p2Minus1Over3 = new(big.Int).Div(p2m1, big.NewInt(3))
	if new(big.Int).Mod(p2m1, big.NewInt(3)).Sign() != 0 {
		panic("bn256: p^2-1 not divisible by 3")
	}

	// Find xi = n + i that is a quadratic and cubic non-residue.
	one := newGFp2One()
	for n := int64(1); ; n++ {
		var cand gfP2
		cand.a0 = *newGFp(n)
		cand.a1 = *newGFp(1)
		var t gfP2
		if t.Exp(&cand, p2Minus1Over2); t.Equal(one) {
			continue
		}
		if t.Exp(&cand, p2Minus1Over3); t.Equal(one) {
			continue
		}
		xi = cand
		xiN = n
		break
	}
	xiInv.Invert(&xi)
}

func newGFp2One() *gfP2 {
	e := &gfP2{}
	e.a0.SetOne()
	return e
}

func (e *gfP2) String() string {
	return fmt.Sprintf("(%v, %v)", &e.a0, &e.a1)
}

// Set sets e = a and returns e.
func (e *gfP2) Set(a *gfP2) *gfP2 {
	e.a0.Set(&a.a0)
	e.a1.Set(&a.a1)
	return e
}

// SetZero sets e = 0 and returns e.
func (e *gfP2) SetZero() *gfP2 {
	e.a0.SetZero()
	e.a1.SetZero()
	return e
}

// SetOne sets e = 1 and returns e.
func (e *gfP2) SetOne() *gfP2 {
	e.a0.SetOne()
	e.a1.SetZero()
	return e
}

// IsZero reports whether e == 0.
func (e *gfP2) IsZero() bool {
	return e.a0.IsZero() && e.a1.IsZero()
}

// IsOne reports whether e == 1.
func (e *gfP2) IsOne() bool {
	return e.a0.Equal(&rOne) && e.a1.IsZero()
}

// Equal reports whether e == a.
func (e *gfP2) Equal(a *gfP2) bool {
	return e.a0.Equal(&a.a0) && e.a1.Equal(&a.a1)
}

// Conjugate sets e = a0 - a1*i and returns e.
func (e *gfP2) Conjugate(a *gfP2) *gfP2 {
	e.a0.Set(&a.a0)
	e.a1.Neg(&a.a1)
	return e
}

// Add sets e = a + b and returns e.
func (e *gfP2) Add(a, b *gfP2) *gfP2 {
	e.a0.Add(&a.a0, &b.a0)
	e.a1.Add(&a.a1, &b.a1)
	return e
}

// Sub sets e = a - b and returns e.
func (e *gfP2) Sub(a, b *gfP2) *gfP2 {
	e.a0.Sub(&a.a0, &b.a0)
	e.a1.Sub(&a.a1, &b.a1)
	return e
}

// Neg sets e = -a and returns e.
func (e *gfP2) Neg(a *gfP2) *gfP2 {
	e.a0.Neg(&a.a0)
	e.a1.Neg(&a.a1)
	return e
}

// Double sets e = 2a and returns e.
func (e *gfP2) Double(a *gfP2) *gfP2 {
	e.a0.Double(&a.a0)
	e.a1.Double(&a.a1)
	return e
}

// Mul sets e = a*b using Karatsuba multiplication and returns e.
func (e *gfP2) Mul(a, b *gfP2) *gfP2 {
	// (a0 + a1 i)(b0 + b1 i) = (a0b0 - a1b1) + ((a0+a1)(b0+b1) - a0b0 - a1b1) i
	var v0, v1, s, t gfP
	v0.Mul(&a.a0, &b.a0)
	v1.Mul(&a.a1, &b.a1)
	s.Add(&a.a0, &a.a1)
	t.Add(&b.a0, &b.a1)
	s.Mul(&s, &t)
	s.Sub(&s, &v0)
	s.Sub(&s, &v1)
	e.a0.Sub(&v0, &v1)
	e.a1.Set(&s)
	return e
}

// MulScalar sets e = a * s for a base-field scalar s and returns e.
func (e *gfP2) MulScalar(a *gfP2, s *gfP) *gfP2 {
	e.a0.Mul(&a.a0, s)
	e.a1.Mul(&a.a1, s)
	return e
}

// Square sets e = a^2 and returns e.
func (e *gfP2) Square(a *gfP2) *gfP2 {
	// (a0 + a1 i)^2 = (a0+a1)(a0-a1) + 2 a0 a1 i
	var s, d, m gfP
	s.Add(&a.a0, &a.a1)
	d.Sub(&a.a0, &a.a1)
	m.Mul(&a.a0, &a.a1)
	e.a0.Mul(&s, &d)
	e.a1.Double(&m)
	return e
}

// MulXi sets e = a * xi and returns e. Since xi = n + i for a small n,
// the product is (n*a0 - a1) + (a0 + n*a1)*i, computed with a short
// double-and-add chain instead of a full Fp2 multiplication. MulXi sits
// on every tau-reduction in the tower, so this is one of the hottest
// field operations in the pairing.
func (e *gfP2) MulXi(a *gfP2) *gfP2 {
	var na0, na1, r0, r1 gfP
	mulSmall(&na0, &a.a0, xiN)
	mulSmall(&na1, &a.a1, xiN)
	r0.Sub(&na0, &a.a1)
	r1.Add(&a.a0, &na1)
	e.a0.Set(&r0)
	e.a1.Set(&r1)
	return e
}

// mulSmall sets e = n*a for a small positive integer n using
// double-and-add on field additions.
func mulSmall(e, a *gfP, n int64) {
	var acc gfP
	started := false
	for bit := 62; bit >= 0; bit-- {
		if started {
			acc.Double(&acc)
		}
		if n&(1<<uint(bit)) != 0 {
			if started {
				acc.Add(&acc, a)
			} else {
				acc.Set(a)
				started = true
			}
		}
	}
	if !started {
		acc.SetZero()
	}
	e.Set(&acc)
}

// Invert sets e = a^-1 and returns e. Inverting zero yields zero.
func (e *gfP2) Invert(a *gfP2) *gfP2 {
	// 1/(a0 + a1 i) = (a0 - a1 i) / (a0^2 + a1^2)
	var n, t0, t1 gfP
	t0.Square(&a.a0)
	t1.Square(&a.a1)
	n.Add(&t0, &t1)
	n.Invert(&n)
	e.a0.Mul(&a.a0, &n)
	n.Neg(&n)
	e.a1.Mul(&a.a1, &n)
	return e
}

// Exp sets e = a^k for a non-negative exponent k and returns e.
func (e *gfP2) Exp(a *gfP2, k *big.Int) *gfP2 {
	acc := *newGFp2One()
	base := *a
	for i := k.BitLen() - 1; i >= 0; i-- {
		acc.Square(&acc)
		if k.Bit(i) == 1 {
			acc.Mul(&acc, &base)
		}
	}
	return e.Set(&acc)
}

// Sqrt sets e to a square root of a and reports whether a is a quadratic
// residue in Fp2. Uses the complex method, valid for p = 3 mod 4.
func (e *gfP2) Sqrt(a *gfP2) bool {
	if a.IsZero() {
		e.SetZero()
		return true
	}
	pPlus1Over4 := new(big.Int).Add(P, big.NewInt(1))
	pPlus1Over4.Rsh(pPlus1Over4, 2)
	inv2 := newGFp(2)
	inv2.Invert(inv2)

	// lambda = sqrt(norm(a)) in Fp.
	var norm, t gfP
	norm.Square(&a.a0)
	t.Square(&a.a1)
	norm.Add(&norm, &t)
	var lambda gfP
	lambda.Exp(&norm, pPlus1Over4)
	var check gfP
	if check.Square(&lambda); !check.Equal(&norm) {
		return false
	}
	for attempt := 0; attempt < 2; attempt++ {
		// delta = (a0 + lambda)/2, then x0 = sqrt(delta), x1 = a1/(2 x0).
		var delta gfP
		delta.Add(&a.a0, &lambda)
		delta.Mul(&delta, inv2)
		var x0 gfP
		x0.Exp(&delta, pPlus1Over4)
		var sq gfP
		if sq.Square(&x0); sq.Equal(&delta) && !x0.IsZero() {
			var x0inv, x1 gfP
			x0inv.Invert(&x0)
			x1.Mul(&a.a1, &x0inv)
			x1.Mul(&x1, inv2)
			var cand gfP2
			cand.a0 = x0
			cand.a1 = x1
			var candSq gfP2
			if candSq.Square(&cand); candSq.Equal(a) {
				e.Set(&cand)
				return true
			}
		}
		lambda.Neg(&lambda)
	}
	return false
}
