package bn256

// The reduced Tate pairing e(P, Q) = f_{r,P}(psi(Q))^((p^12-1)/r), where
// psi is the untwisting isomorphism psi(x, y) = (omega^2 x, omega^3 y)
// from the twist E'(Fp2) into E(Fp12).
//
// The Miller loop walks multiples of P with affine arithmetic over Fp
// (cheap), evaluating the line functions at psi(Q). Because the
// embedding degree is even and psi(Q)'s x-coordinate lies in the
// subfield Fp6 (omega^2 = tau), vertical lines evaluate into Fp6 and
// are erased by the final exponentiation, so they are skipped
// ("denominator elimination").
//
// millerBatch evaluates the product of several pairings in one loop.
// All slots share the loop over r, so the per-step affine inversions
// are batched with Montgomery's simultaneous-inversion trick and the
// expensive final exponentiation is performed once. This is the
// workhorse behind SJ.Dec, which pairs a d-element token with a
// d-element ciphertext.

// pairSlot carries the per-pair Miller loop state.
type pairSlot struct {
	px, py gfP  // affine P
	qx, qy gfP2 // affine Q on the twist
	tx, ty gfP  // running point T = kP, affine
	inf    bool // T is the point at infinity
	skip   bool // degenerate input (P or Q at infinity): contribute 1
}

// batchInvert replaces each element of xs with its inverse using
// Montgomery's trick: one field inversion plus 3(n-1) multiplications.
// All inputs must be non-zero.
func batchInvert(xs []*gfP) {
	n := len(xs)
	if n == 0 {
		return
	}
	prefix := make([]gfP, n)
	prefix[0] = *xs[0]
	for i := 1; i < n; i++ {
		prefix[i].Mul(&prefix[i-1], xs[i])
	}
	var inv gfP
	inv.Invert(&prefix[n-1])
	for i := n - 1; i >= 1; i-- {
		var xi gfP
		xi.Mul(&inv, &prefix[i-1])
		inv.Mul(&inv, xs[i])
		*xs[i] = xi
	}
	*xs[0] = inv
}

// lineEval computes the sparse Fp12 coefficients of the line through the
// slot's current T with slope lambda, evaluated at psi(Q):
//
//	l = (lambda*Tx - Ty) + (-lambda*Qx) tau + (Qy) tau*omega
//
// The constant coefficient c = lambda*Tx - Ty lives in the base field,
// which mulLine exploits.
func (s *pairSlot) lineEval(lambda, c *gfP, l01, l11 *gfP2) {
	c.Mul(lambda, &s.tx)
	c.Sub(c, &s.ty)

	var negLambda gfP
	negLambda.Neg(lambda)
	l01.MulScalar(&s.qx, &negLambda)

	l11.Set(&s.qy)
}

// millerBatch computes f = prod_i f_{r, P_i}(psi(Q_i)) over one shared
// Miller loop. Slots whose P or Q is infinite contribute the identity.
func millerBatch(slots []*pairSlot) gfP12 {
	var f gfP12
	f.SetOne()

	active := func() []*pairSlot {
		as := make([]*pairSlot, 0, len(slots))
		for _, s := range slots {
			if !s.skip && !s.inf {
				as = append(as, s)
			}
		}
		return as
	}

	denoms := make([]*gfP, 0, len(slots))
	lambdas := make([]gfP, len(slots))

	for i := Order.BitLen() - 2; i >= 0; i-- {
		f.Square(&f)

		// Doubling step: lambda = 3Tx^2 / (2Ty) for every active slot.
		as := active()
		denoms = denoms[:0]
		dblSlots := as[:0]
		for _, s := range as {
			if s.ty.IsZero() {
				// 2T = infinity: vertical line, erased by the final
				// exponentiation.
				s.inf = true
				continue
			}
			idx := len(dblSlots)
			lambdas[idx].Double(&s.ty)
			denoms = append(denoms, &lambdas[idx])
			dblSlots = append(dblSlots, s)
		}
		batchInvert(denoms)
		for j, s := range dblSlots {
			// lambda = 3 Tx^2 / (2 Ty); lambdas[j] already holds (2Ty)^-1.
			var num, lambda, t2 gfP
			num.Square(&s.tx)
			t2.Double(&num)
			num.Add(&t2, &num)
			lambda.Mul(&num, &lambdas[j])

			var c gfP
			var l01, l11 gfP2
			s.lineEval(&lambda, &c, &l01, &l11)
			f.mulLine(&f, &c, &l01, &l11)

			// T = 2T: x3 = lambda^2 - 2Tx, y3 = lambda(Tx - x3) - Ty.
			var x3, y3, t gfP
			x3.Square(&lambda)
			t.Double(&s.tx)
			x3.Sub(&x3, &t)
			t.Sub(&s.tx, &x3)
			y3.Mul(&lambda, &t)
			y3.Sub(&y3, &s.ty)
			s.tx.Set(&x3)
			s.ty.Set(&y3)
		}

		if Order.Bit(i) == 0 {
			continue
		}

		// Addition step: T = T + P with lambda = (Py - Ty)/(Px - Tx).
		as = active()
		denoms = denoms[:0]
		addSlots := as[:0]
		for _, s := range as {
			var dx gfP
			dx.Sub(&s.px, &s.tx)
			if dx.IsZero() {
				var sumY gfP
				sumY.Add(&s.ty, &s.py)
				if sumY.IsZero() {
					// T = -P: vertical line, erased; T becomes infinity.
					s.inf = true
					continue
				}
				// T = P: a doubling disguised as an addition. Handle via
				// the tangent line.
				var twoY, num, lambda gfP
				twoY.Double(&s.ty)
				twoY.Invert(&twoY)
				num.Square(&s.tx)
				var tmp gfP
				tmp.Double(&num)
				num.Add(&tmp, &num)
				lambda.Mul(&num, &twoY)
				var c gfP
				var l01, l11 gfP2
				s.lineEval(&lambda, &c, &l01, &l11)
				f.mulLine(&f, &c, &l01, &l11)
				var x3, y3, t gfP
				x3.Square(&lambda)
				t.Double(&s.tx)
				x3.Sub(&x3, &t)
				t.Sub(&s.tx, &x3)
				y3.Mul(&lambda, &t)
				y3.Sub(&y3, &s.ty)
				s.tx.Set(&x3)
				s.ty.Set(&y3)
				continue
			}
			idx := len(addSlots)
			lambdas[idx].Set(&dx)
			denoms = append(denoms, &lambdas[idx])
			addSlots = append(addSlots, s)
		}
		batchInvert(denoms)
		for j, s := range addSlots {
			var num, lambda gfP
			num.Sub(&s.py, &s.ty)
			lambda.Mul(&num, &lambdas[j])

			var c gfP
			var l01, l11 gfP2
			s.lineEval(&lambda, &c, &l01, &l11)
			f.mulLine(&f, &c, &l01, &l11)

			// T = T + P.
			var x3, y3, t gfP
			x3.Square(&lambda)
			t.Add(&s.tx, &s.px)
			x3.Sub(&x3, &t)
			t.Sub(&s.tx, &x3)
			y3.Mul(&lambda, &t)
			y3.Sub(&y3, &s.ty)
			s.tx.Set(&x3)
			s.ty.Set(&y3)
		}
	}
	return f
}

// finalExponentiation raises f to (p^12-1)/r, mapping Miller-loop output
// into the order-r subgroup of Fp12 (GT). The easy part uses conjugation
// and the p^2 Frobenius; after it the element lies in the cyclotomic
// subgroup, so the hard part (p^4-p^2+1)/r runs as the Devegili et al.
// Frobenius decomposition in the BN parameter u — three exponentiations
// by the 63-bit u on cyclotomic squarings instead of one by a 1000-bit
// exponent. The tower tests pin it against the plain finalExpHard
// exponentiation.
func finalExponentiation(f *gfP12) gfP12 {
	var t0, t1 gfP12
	// f^(p^6-1) = conj(f) * f^-1
	t0.Conjugate(f)
	t1.Invert(f)
	t0.Mul(&t0, &t1)
	// ^(p^2+1)
	t1.Frobenius2(&t0)
	t0.Mul(&t0, &t1)
	// ^((p^4-p^2+1)/r)
	return hardExponentiation(&t0)
}

// expByU sets e = a^u for a in the cyclotomic subgroup, via plain
// square-and-multiply on cyclotomic squarings (u is 63 bits).
func (e *gfP12) expByU(a *gfP12) *gfP12 {
	var acc, base gfP12
	base.Set(a)
	acc.Set(a)
	for i := u.BitLen() - 2; i >= 0; i-- {
		acc.cyclotomicSquare(&acc)
		if u.Bit(i) == 1 {
			acc.Mul(&acc, &base)
		}
	}
	return e.Set(&acc)
}

// hardExponentiation computes a^((p^4-p^2+1)/r) for a in the cyclotomic
// subgroup, using the exact decomposition of the hard exponent into
// powers of p and u (Devegili, O hEigeartaigh, Scott, Dahab,
// "Implementing Cryptographic Pairings over Barreto-Naehrig Curves").
// Inversions become conjugations in the cyclotomic subgroup.
func hardExponentiation(a *gfP12) gfP12 {
	var fp, fp2, fp3 gfP12
	fp.Frobenius1(a)
	fp2.Frobenius2(a)
	fp3.Frobenius1(&fp2)

	var fu, fu2, fu3 gfP12
	fu.expByU(a)
	fu2.expByU(&fu)
	fu3.expByU(&fu2)

	var y3, fu2p, fu3p, y2 gfP12
	y3.Frobenius1(&fu)
	fu2p.Frobenius1(&fu2)
	fu3p.Frobenius1(&fu3)
	y2.Frobenius2(&fu2)

	var y0 gfP12
	y0.Mul(&fp, &fp2)
	y0.Mul(&y0, &fp3)

	var y1, y4, y5, y6 gfP12
	y1.Conjugate(a)
	y5.Conjugate(&fu2)
	y3.Conjugate(&y3)
	y4.Mul(&fu, &fu2p)
	y4.Conjugate(&y4)
	y6.Mul(&fu3, &fu3p)
	y6.Conjugate(&y6)

	var t0, t1 gfP12
	t0.cyclotomicSquare(&y6)
	t0.Mul(&t0, &y4)
	t0.Mul(&t0, &y5)
	t1.Mul(&y3, &y5)
	t1.Mul(&t1, &t0)
	t0.Mul(&t0, &y2)
	t1.cyclotomicSquare(&t1)
	t1.Mul(&t1, &t0)
	t1.cyclotomicSquare(&t1)
	t0.Mul(&t1, &y1)
	t1.Mul(&t1, &y0)
	t0.cyclotomicSquare(&t0)
	t0.Mul(&t0, &t1)
	return t0
}

// newPairSlot prepares Miller loop state for e(P, Q), normalizing both
// points to affine coordinates.
func newPairSlot(p *curvePoint, q *twistPoint) *pairSlot {
	s := &pairSlot{}
	if p.IsInfinity() || q.IsInfinity() {
		s.skip = true
		return s
	}
	var pa curvePoint
	pa.Set(p)
	pa.MakeAffine()
	var qa twistPoint
	qa.Set(q)
	qa.MakeAffine()
	s.px.Set(&pa.x)
	s.py.Set(&pa.y)
	s.qx.Set(&qa.x)
	s.qy.Set(&qa.y)
	s.tx.Set(&pa.x)
	s.ty.Set(&pa.y)
	return s
}

// pair computes the reduced Tate pairing of a single point pair.
func pair(p *curvePoint, q *twistPoint) gfP12 {
	slots := []*pairSlot{newPairSlot(p, q)}
	f := millerBatch(slots)
	return finalExponentiation(&f)
}

// pairBatch computes prod_i e(P_i, Q_i) with one shared Miller loop and a
// single final exponentiation.
func pairBatch(ps []*curvePoint, qs []*twistPoint) gfP12 {
	if len(ps) != len(qs) {
		panic("bn256: mismatched pairing batch")
	}
	slots := make([]*pairSlot, len(ps))
	for i := range ps {
		slots[i] = newPairSlot(ps[i], qs[i])
	}
	f := millerBatch(slots)
	return finalExponentiation(&f)
}
