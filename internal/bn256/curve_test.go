package bn256

import (
	"crypto/rand"
	"math/big"
	"testing"
)

func randScalar(t *testing.T) *big.Int {
	t.Helper()
	k, err := rand.Int(rand.Reader, Order)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestG1GroupLaws(t *testing.T) {
	a, b := randScalar(t), randScalar(t)
	pa := new(G1).ScalarBaseMult(a)
	pb := new(G1).ScalarBaseMult(b)

	// g^a + g^b == g^(a+b)
	sum := new(G1).Add(pa, pb)
	ab := new(big.Int).Add(a, b)
	want := new(G1).ScalarBaseMult(ab)
	if !sum.Equal(want) {
		t.Fatal("G1 addition is not compatible with scalar multiplication")
	}

	// Commutativity.
	sum2 := new(G1).Add(pb, pa)
	if !sum.Equal(sum2) {
		t.Fatal("G1 addition is not commutative")
	}

	// P + (-P) == infinity.
	neg := new(G1).Neg(pa)
	id := new(G1).Add(pa, neg)
	if !id.IsInfinity() {
		t.Fatal("P + (-P) != infinity")
	}

	// P + infinity == P.
	inf := new(G1).SetInfinity()
	same := new(G1).Add(pa, inf)
	if !same.Equal(pa) {
		t.Fatal("P + infinity != P")
	}

	// Doubling consistency: P + P == 2P.
	dbl := new(G1).Add(pa, pa)
	twice := new(G1).ScalarMult(pa, big.NewInt(2))
	if !dbl.Equal(twice) {
		t.Fatal("P + P != 2P")
	}
}

func TestG2GroupLaws(t *testing.T) {
	a, b := randScalar(t), randScalar(t)
	pa := new(G2).ScalarBaseMult(a)
	pb := new(G2).ScalarBaseMult(b)

	sum := new(G2).Add(pa, pb)
	ab := new(big.Int).Add(a, b)
	want := new(G2).ScalarBaseMult(ab)
	if !sum.Equal(want) {
		t.Fatal("G2 addition is not compatible with scalar multiplication")
	}

	neg := new(G2).Neg(pa)
	id := new(G2).Add(pa, neg)
	if !id.IsInfinity() {
		t.Fatal("Q + (-Q) != infinity")
	}

	dbl := new(G2).Add(pa, pa)
	twice := new(G2).ScalarMult(pa, big.NewInt(2))
	if !dbl.Equal(twice) {
		t.Fatal("Q + Q != 2Q")
	}
}

func TestG1MarshalRoundTrip(t *testing.T) {
	for i := 0; i < 10; i++ {
		_, p, err := RandomG1(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		var q G1
		if err := q.Unmarshal(p.Marshal()); err != nil {
			t.Fatal(err)
		}
		if !p.Equal(&q) {
			t.Fatal("G1 marshal round trip failed")
		}
	}
	// Infinity round trip.
	inf := new(G1).SetInfinity()
	var q G1
	if err := q.Unmarshal(inf.Marshal()); err != nil {
		t.Fatal(err)
	}
	if !q.IsInfinity() {
		t.Fatal("G1 infinity round trip failed")
	}
}

func TestG2MarshalRoundTrip(t *testing.T) {
	for i := 0; i < 5; i++ {
		_, p, err := RandomG2(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		var q G2
		if err := q.Unmarshal(p.Marshal()); err != nil {
			t.Fatal(err)
		}
		if !p.Equal(&q) {
			t.Fatal("G2 marshal round trip failed")
		}
	}
}

func TestG1UnmarshalRejectsOffCurve(t *testing.T) {
	_, p, err := RandomG1(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	data := p.Marshal()
	data[63] ^= 1 // corrupt y
	var q G1
	if err := q.Unmarshal(data); err == nil {
		t.Fatal("accepted an off-curve G1 point")
	}
	if err := q.Unmarshal(data[:10]); err == nil {
		t.Fatal("accepted a truncated G1 encoding")
	}
}

func TestG2UnmarshalRejectsOffCurve(t *testing.T) {
	_, p, err := RandomG2(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	data := p.Marshal()
	data[127] ^= 1
	var q G2
	if err := q.Unmarshal(data); err == nil {
		t.Fatal("accepted an off-twist G2 point")
	}
}

func TestG2UnmarshalRejectsWrongSubgroup(t *testing.T) {
	// Build a twist point outside the order-r subgroup: a point with
	// order dividing the cofactor. Multiply a random twist point by r;
	// if the result is not infinity it has cofactor order.
	for n := int64(1); n < 60; n++ {
		var x, rhs, y gfP2
		x.a0 = *newGFp(n)
		x.a1 = *newGFp(3)
		rhs.Square(&x)
		rhs.Mul(&rhs, &x)
		rhs.Add(&rhs, &twistB)
		if !y.Sqrt(&rhs) {
			continue
		}
		var pt twistPoint
		pt.x, pt.y = x, y
		pt.z.SetOne()
		var small twistPoint
		small.Mul(&pt, Order)
		if small.IsInfinity() {
			continue // the point happened to lie in G2
		}
		small.MakeAffine()
		var g2 G2
		g2.p.Set(&small)
		data := g2.Marshal()
		var q G2
		if err := q.Unmarshal(data); err == nil {
			t.Fatal("accepted a G2 point outside the order-r subgroup")
		}
		return
	}
	t.Skip("no cofactor-order point found in scan range")
}

func TestPairingWithInfinity(t *testing.T) {
	_, p, _ := RandomG1(rand.Reader)
	_, q, _ := RandomG2(rand.Reader)
	infG1 := new(G1).SetInfinity()
	infG2 := new(G2).SetInfinity()
	if !Pair(infG1, q).IsOne() {
		t.Fatal("e(0, Q) != 1")
	}
	if !Pair(p, infG2).IsOne() {
		t.Fatal("e(P, 0) != 1")
	}
}

func TestPairingLinearityInEachArgument(t *testing.T) {
	a, b := randScalar(t), randScalar(t)
	p := new(G1).ScalarBaseMult(a)
	q := new(G2).ScalarBaseMult(b)
	k := big.NewInt(7)

	// e(kP, Q) == e(P, kQ) == e(P, Q)^k
	kp := new(G1).ScalarMult(p, k)
	kq := new(G2).ScalarMult(q, k)
	base := Pair(p, q)
	want := new(GT).Exp(base, k)
	if !Pair(kp, q).Equal(want) {
		t.Fatal("e(kP, Q) != e(P, Q)^k")
	}
	if !Pair(p, kq).Equal(want) {
		t.Fatal("e(P, kQ) != e(P, Q)^k")
	}
}

func TestPairBatchEmpty(t *testing.T) {
	if !PairBatch(nil, nil).IsOne() {
		t.Fatal("empty batch should be the identity")
	}
}

func TestPairBatchWithInfinitySlots(t *testing.T) {
	_, p, _ := RandomG1(rand.Reader)
	_, q, _ := RandomG2(rand.Reader)
	inf1 := new(G1).SetInfinity()
	inf2 := new(G2).SetInfinity()
	got := PairBatch([]*G1{p, inf1}, []*G2{q, inf2})
	want := Pair(p, q)
	if !got.Equal(want) {
		t.Fatal("infinity slots should contribute the identity")
	}
}

func TestNormHandlesNegativeScalars(t *testing.T) {
	k := big.NewInt(-3)
	p := new(G1).ScalarBaseMult(k)
	want := new(G1).ScalarBaseMult(new(big.Int).Sub(Order, big.NewInt(3)))
	if !p.Equal(want) {
		t.Fatal("negative scalar not normalized")
	}
}
