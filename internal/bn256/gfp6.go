package bn256

import "fmt"

// gfP6 is an element b0 + b1*tau + b2*tau^2 of Fp6 = Fp2[tau]/(tau^3 - xi).
type gfP6 struct {
	b0, b1, b2 gfP2
}

func (e *gfP6) String() string {
	return fmt.Sprintf("(%v + %v tau + %v tau^2)", &e.b0, &e.b1, &e.b2)
}

// Set sets e = a and returns e.
func (e *gfP6) Set(a *gfP6) *gfP6 {
	e.b0.Set(&a.b0)
	e.b1.Set(&a.b1)
	e.b2.Set(&a.b2)
	return e
}

// SetZero sets e = 0 and returns e.
func (e *gfP6) SetZero() *gfP6 {
	e.b0.SetZero()
	e.b1.SetZero()
	e.b2.SetZero()
	return e
}

// SetOne sets e = 1 and returns e.
func (e *gfP6) SetOne() *gfP6 {
	e.b0.SetOne()
	e.b1.SetZero()
	e.b2.SetZero()
	return e
}

// IsZero reports whether e == 0.
func (e *gfP6) IsZero() bool {
	return e.b0.IsZero() && e.b1.IsZero() && e.b2.IsZero()
}

// Equal reports whether e == a.
func (e *gfP6) Equal(a *gfP6) bool {
	return e.b0.Equal(&a.b0) && e.b1.Equal(&a.b1) && e.b2.Equal(&a.b2)
}

// Add sets e = a + b and returns e.
func (e *gfP6) Add(a, b *gfP6) *gfP6 {
	e.b0.Add(&a.b0, &b.b0)
	e.b1.Add(&a.b1, &b.b1)
	e.b2.Add(&a.b2, &b.b2)
	return e
}

// Sub sets e = a - b and returns e.
func (e *gfP6) Sub(a, b *gfP6) *gfP6 {
	e.b0.Sub(&a.b0, &b.b0)
	e.b1.Sub(&a.b1, &b.b1)
	e.b2.Sub(&a.b2, &b.b2)
	return e
}

// Neg sets e = -a and returns e.
func (e *gfP6) Neg(a *gfP6) *gfP6 {
	e.b0.Neg(&a.b0)
	e.b1.Neg(&a.b1)
	e.b2.Neg(&a.b2)
	return e
}

// Mul sets e = a*b using interleaved Karatsuba and returns e.
func (e *gfP6) Mul(a, b *gfP6) *gfP6 {
	var t0, t1, t2, s0, s1, s2 gfP2
	t0.Mul(&a.b0, &b.b0)
	t1.Mul(&a.b1, &b.b1)
	t2.Mul(&a.b2, &b.b2)

	// c0 = t0 + xi*((a1+a2)(b1+b2) - t1 - t2)
	s0.Add(&a.b1, &a.b2)
	s1.Add(&b.b1, &b.b2)
	s0.Mul(&s0, &s1)
	s0.Sub(&s0, &t1)
	s0.Sub(&s0, &t2)
	s0.MulXi(&s0)
	s0.Add(&s0, &t0)

	// c1 = (a0+a1)(b0+b1) - t0 - t1 + xi*t2
	s1.Add(&a.b0, &a.b1)
	s2.Add(&b.b0, &b.b1)
	s1.Mul(&s1, &s2)
	s1.Sub(&s1, &t0)
	s1.Sub(&s1, &t1)
	var x2 gfP2
	x2.MulXi(&t2)
	s1.Add(&s1, &x2)

	// c2 = (a0+a2)(b0+b2) - t0 - t2 + t1
	s2.Add(&a.b0, &a.b2)
	var s3 gfP2
	s3.Add(&b.b0, &b.b2)
	s2.Mul(&s2, &s3)
	s2.Sub(&s2, &t0)
	s2.Sub(&s2, &t2)
	s2.Add(&s2, &t1)

	e.b0.Set(&s0)
	e.b1.Set(&s1)
	e.b2.Set(&s2)
	return e
}

// MulScalar sets e = a*s for an Fp2 scalar s and returns e.
func (e *gfP6) MulScalar(a *gfP6, s *gfP2) *gfP6 {
	e.b0.Mul(&a.b0, s)
	e.b1.Mul(&a.b1, s)
	e.b2.Mul(&a.b2, s)
	return e
}

// MulTau sets e = a*tau and returns e, using tau^3 = xi.
func (e *gfP6) MulTau(a *gfP6) *gfP6 {
	var t gfP2
	t.MulXi(&a.b2)
	b1 := a.b0
	b2 := a.b1
	e.b0.Set(&t)
	e.b1.Set(&b1)
	e.b2.Set(&b2)
	return e
}

// Square sets e = a^2 and returns e.
func (e *gfP6) Square(a *gfP6) *gfP6 {
	return e.Mul(a, a)
}

// Invert sets e = a^-1 and returns e. Inverting zero yields zero.
func (e *gfP6) Invert(a *gfP6) *gfP6 {
	// Using the standard cubic-extension inversion:
	//   A = b0^2 - xi b1 b2
	//   B = xi b2^2 - b0 b1
	//   C = b1^2 - b0 b2
	//   F = b0 A + xi b2 B + xi b1 C
	//   a^-1 = (A + B tau + C tau^2)/F
	var A, B, C, F, t gfP2

	A.Square(&a.b0)
	t.Mul(&a.b1, &a.b2)
	t.MulXi(&t)
	A.Sub(&A, &t)

	B.Square(&a.b2)
	B.MulXi(&B)
	t.Mul(&a.b0, &a.b1)
	B.Sub(&B, &t)

	C.Square(&a.b1)
	t.Mul(&a.b0, &a.b2)
	C.Sub(&C, &t)

	F.Mul(&a.b0, &A)
	t.Mul(&a.b2, &B)
	t.MulXi(&t)
	F.Add(&F, &t)
	t.Mul(&a.b1, &C)
	t.MulXi(&t)
	F.Add(&F, &t)

	F.Invert(&F)
	e.b0.Mul(&A, &F)
	e.b1.Mul(&B, &F)
	e.b2.Mul(&C, &F)
	return e
}
