package bn256

import (
	"crypto/rand"
	"math/big"
	"testing"
)

func randGFp2(t *testing.T) *gfP2 {
	t.Helper()
	a, _ := randGFp(t)
	b, _ := randGFp(t)
	return &gfP2{a0: *a, a1: *b}
}

func randGFp6(t *testing.T) *gfP6 {
	t.Helper()
	return &gfP6{b0: *randGFp2(t), b1: *randGFp2(t), b2: *randGFp2(t)}
}

func randGFp12(t *testing.T) *gfP12 {
	t.Helper()
	return &gfP12{c0: *randGFp6(t), c1: *randGFp6(t)}
}

func TestXiIsNonResidue(t *testing.T) {
	one := newGFp2One()
	var sq gfP2
	if sq.Exp(&xi, p2Minus1Over2); sq.Equal(one) {
		t.Fatal("xi is a square in Fp2")
	}
	var cb gfP2
	if cb.Exp(&xi, p2Minus1Over3); cb.Equal(one) {
		t.Fatal("xi is a cube in Fp2")
	}
}

func TestGFp2Arithmetic(t *testing.T) {
	for i := 0; i < 40; i++ {
		a, b, c := randGFp2(t), randGFp2(t), randGFp2(t)

		// (a+b)c == ac + bc
		var sum, lhs, ac, bc, rhs gfP2
		sum.Add(a, b)
		lhs.Mul(&sum, c)
		ac.Mul(a, c)
		bc.Mul(b, c)
		rhs.Add(&ac, &bc)
		if !lhs.Equal(&rhs) {
			t.Fatal("gfP2 distributivity fails")
		}

		// Square == Mul self
		var sq, mm gfP2
		sq.Square(a)
		mm.Mul(a, a)
		if !sq.Equal(&mm) {
			t.Fatal("gfP2 square != mul self")
		}

		// a * a^-1 == 1
		if !a.IsZero() {
			var inv, prod gfP2
			inv.Invert(a)
			prod.Mul(a, &inv)
			if !prod.IsOne() {
				t.Fatal("gfP2 inverse fails")
			}
		}

		// i^2 == -1: (0+1i)^2 = -1.
		var iElt gfP2
		iElt.a1.SetOne()
		var iSq gfP2
		iSq.Square(&iElt)
		var minusOne gfP2
		minusOne.a0.Neg(&rOne)
		if !iSq.Equal(&minusOne) {
			t.Fatal("i^2 != -1")
		}
	}
}

func TestGFp2Sqrt(t *testing.T) {
	for i := 0; i < 25; i++ {
		a := randGFp2(t)
		var sq gfP2
		sq.Square(a)
		var root gfP2
		if !root.Sqrt(&sq) {
			t.Fatal("square reported as non-residue")
		}
		var check gfP2
		check.Square(&root)
		if !check.Equal(&sq) {
			t.Fatal("sqrt returned a non-root")
		}
	}
}

func TestGFp2Conjugate(t *testing.T) {
	a := randGFp2(t)
	// a * conj(a) must be real (the norm).
	var conj, prod gfP2
	conj.Conjugate(a)
	prod.Mul(a, &conj)
	if !prod.a1.IsZero() {
		t.Fatal("a * conj(a) is not in Fp")
	}
}

func TestGFp6Arithmetic(t *testing.T) {
	for i := 0; i < 20; i++ {
		a, b, c := randGFp6(t), randGFp6(t), randGFp6(t)

		var sum, lhs, ac, bc, rhs gfP6
		sum.Add(a, b)
		lhs.Mul(&sum, c)
		ac.Mul(a, c)
		bc.Mul(b, c)
		rhs.Add(&ac, &bc)
		if !lhs.Equal(&rhs) {
			t.Fatal("gfP6 distributivity fails")
		}

		if !a.IsZero() {
			var inv, prod, one gfP6
			inv.Invert(a)
			prod.Mul(a, &inv)
			one.SetOne()
			if !prod.Equal(&one) {
				t.Fatal("gfP6 inverse fails")
			}
		}
	}
}

func TestGFp6MulTau(t *testing.T) {
	// Multiplying by tau must agree with multiplying by the element
	// (0, 1, 0).
	a := randGFp6(t)
	var tau gfP6
	tau.b1.SetOne()
	var viaMul, viaTau gfP6
	viaMul.Mul(a, &tau)
	viaTau.MulTau(a)
	if !viaMul.Equal(&viaTau) {
		t.Fatal("MulTau disagrees with generic multiplication")
	}
	// tau^3 == xi.
	var t3 gfP6
	t3.MulTau(&tau)
	t3.MulTau(&t3)
	var want gfP6
	want.b0.Set(&xi)
	if !t3.Equal(&want) {
		t.Fatal("tau^3 != xi")
	}
}

func TestGFp12Arithmetic(t *testing.T) {
	for i := 0; i < 10; i++ {
		a, b, c := randGFp12(t), randGFp12(t), randGFp12(t)

		var sum, lhs, ac, bc, rhs gfP12
		sum.Add(a, b)
		lhs.Mul(&sum, c)
		ac.Mul(a, c)
		bc.Mul(b, c)
		rhs.Add(&ac, &bc)
		if !lhs.Equal(&rhs) {
			t.Fatal("gfP12 distributivity fails")
		}

		var sq, mm gfP12
		sq.Square(a)
		mm.Mul(a, a)
		if !sq.Equal(&mm) {
			t.Fatal("gfP12 square != mul self")
		}

		if !a.IsZero() {
			var inv, prod gfP12
			inv.Invert(a)
			prod.Mul(a, &inv)
			if !prod.IsOne() {
				t.Fatal("gfP12 inverse fails")
			}
		}
	}
}

func TestFrobenius2IsP2Power(t *testing.T) {
	// Frobenius2 must agree with raising to the p^2 power.
	a := randGFp12(t)
	p2 := new(big.Int).Mul(P, P)
	var viaExp, viaFrob gfP12
	viaExp.Exp(a, p2)
	viaFrob.Frobenius2(a)
	if !viaExp.Equal(&viaFrob) {
		t.Fatal("Frobenius2 disagrees with x^(p^2)")
	}
}

func TestMulLineMatchesGeneric(t *testing.T) {
	for i := 0; i < 10; i++ {
		a := randGFp12(t)
		c, _ := randGFp(t)
		l01, l11 := randGFp2(t), randGFp2(t)

		var viaSparse gfP12
		viaSparse.mulLine(a, c, l01, l11)

		var l gfP12
		l.c0.b0.a0.Set(c)
		l.c0.b1.Set(l01)
		l.c1.b1.Set(l11)
		var viaGeneric gfP12
		viaGeneric.Mul(a, &l)

		if !viaSparse.Equal(&viaGeneric) {
			t.Fatal("mulLine disagrees with generic multiplication")
		}
	}
}

func TestMulXiMatchesGeneric(t *testing.T) {
	// The small-n double-and-add MulXi must agree with a full
	// multiplication by the xi constant.
	for i := 0; i < 20; i++ {
		a := randGFp2(t)
		var fast, generic gfP2
		fast.MulXi(a)
		generic.Mul(a, &xi)
		if !fast.Equal(&generic) {
			t.Fatal("MulXi disagrees with generic multiplication by xi")
		}
		// Aliased form.
		fast.Set(a)
		fast.MulXi(&fast)
		if !fast.Equal(&generic) {
			t.Fatal("aliased MulXi disagrees with generic multiplication by xi")
		}
	}
}

func TestGFp12SquareMatchesMul(t *testing.T) {
	// Complex squaring must agree with a general self-multiplication,
	// including when the receiver aliases the operand.
	for i := 0; i < 20; i++ {
		a := randGFp12(t)
		var viaMul, viaSquare gfP12
		viaMul.Mul(a, a)
		viaSquare.Square(a)
		if !viaSquare.Equal(&viaMul) {
			t.Fatal("Square disagrees with Mul(a, a)")
		}
		viaSquare.Set(a)
		viaSquare.Square(&viaSquare)
		if !viaSquare.Equal(&viaMul) {
			t.Fatal("aliased Square disagrees with Mul(a, a)")
		}
	}
}

// easyPart applies the easy part of the final exponentiation, mapping
// an arbitrary element into the cyclotomic subgroup.
func easyPart(t *testing.T, a *gfP12) *gfP12 {
	t.Helper()
	var t0, t1 gfP12
	t0.Conjugate(a)
	t1.Invert(a)
	t0.Mul(&t0, &t1)
	t1.Frobenius2(&t0)
	t0.Mul(&t0, &t1)
	return &t0
}

func TestCyclotomicSquareMatchesSquare(t *testing.T) {
	// Granger-Scott squaring is only valid in the cyclotomic subgroup;
	// inside it, it must agree exactly with the general squaring.
	for i := 0; i < 10; i++ {
		c := easyPart(t, randGFp12(t))
		var viaSquare, viaCyclo gfP12
		viaSquare.Square(c)
		viaCyclo.cyclotomicSquare(c)
		if !viaCyclo.Equal(&viaSquare) {
			t.Fatal("cyclotomicSquare disagrees with Square in the cyclotomic subgroup")
		}
		viaCyclo.Set(c)
		viaCyclo.cyclotomicSquare(&viaCyclo)
		if !viaCyclo.Equal(&viaSquare) {
			t.Fatal("aliased cyclotomicSquare disagrees with Square")
		}
	}
}

func TestFrobenius1IsPPower(t *testing.T) {
	a := randGFp12(t)
	var viaExp, viaFrob gfP12
	viaExp.Exp(a, P)
	viaFrob.Frobenius1(a)
	if !viaExp.Equal(&viaFrob) {
		t.Fatal("Frobenius1 disagrees with x^p")
	}
}

func TestExpCyclotomicMatchesExp(t *testing.T) {
	c := easyPart(t, randGFp12(t))
	k, err := rand.Int(rand.Reader, Order)
	if err != nil {
		t.Fatal(err)
	}
	var viaExp, viaCyclo gfP12
	viaExp.Exp(c, k)
	viaCyclo.expCyclotomic(c, k)
	if !viaCyclo.Equal(&viaExp) {
		t.Fatal("expCyclotomic disagrees with Exp")
	}
}

func TestHardExponentiationMatchesPlainExp(t *testing.T) {
	// The Devegili Frobenius decomposition of the hard part must equal
	// the plain exponentiation by (p^4 - p^2 + 1)/r on cyclotomic
	// elements — this pins the whole optimized final exponentiation.
	for i := 0; i < 3; i++ {
		c := easyPart(t, randGFp12(t))
		var want gfP12
		want.Exp(c, finalExpHard)
		got := hardExponentiation(c)
		if !got.Equal(&want) {
			t.Fatal("hardExponentiation disagrees with Exp(finalExpHard)")
		}
	}
}

func TestGFp12ExpHomomorphism(t *testing.T) {
	a := randGFp12(t)
	x, err := rand.Int(rand.Reader, big.NewInt(1<<30))
	if err != nil {
		t.Fatal(err)
	}
	y, err := rand.Int(rand.Reader, big.NewInt(1<<30))
	if err != nil {
		t.Fatal(err)
	}
	var ax, ay, prod, axy gfP12
	ax.Exp(a, x)
	ay.Exp(a, y)
	prod.Mul(&ax, &ay)
	axy.Exp(a, new(big.Int).Add(x, y))
	if !prod.Equal(&axy) {
		t.Fatal("a^x * a^y != a^(x+y)")
	}
}
