package bn256

import (
	"crypto/rand"
	"errors"
	"io"
	"math/big"
)

// G1 is an element of the order-r group of points on E(Fp). The zero
// value is not valid; use new(G1).Set... or the package functions.
type G1 struct {
	p curvePoint
}

// G2 is an element of the order-r subgroup of the twist E'(Fp2).
type G2 struct {
	p twistPoint
}

// GT is an element of the order-r subgroup of Fp12*.
type GT struct {
	p gfP12
}

// RandomG1 returns k and g1^k where k is uniform in [1, Order-1].
func RandomG1(r io.Reader) (*big.Int, *G1, error) {
	k, err := randomK(r)
	if err != nil {
		return nil, nil, err
	}
	return k, new(G1).ScalarBaseMult(k), nil
}

// RandomG2 returns k and g2^k where k is uniform in [1, Order-1].
func RandomG2(r io.Reader) (*big.Int, *G2, error) {
	k, err := randomK(r)
	if err != nil {
		return nil, nil, err
	}
	return k, new(G2).ScalarBaseMult(k), nil
}

func randomK(r io.Reader) (*big.Int, error) {
	if r == nil {
		r = rand.Reader
	}
	for {
		k, err := rand.Int(r, Order)
		if err != nil {
			return nil, err
		}
		if k.Sign() > 0 {
			return k, nil
		}
	}
}

// ScalarBaseMult sets e = g1^k where g1 is the generator (1, 2).
func (e *G1) ScalarBaseMult(k *big.Int) *G1 {
	e.p.Mul(&curveGen, norm(k))
	return e
}

// ScalarMult sets e = a^k.
func (e *G1) ScalarMult(a *G1, k *big.Int) *G1 {
	e.p.Mul(&a.p, norm(k))
	return e
}

// Add sets e = a + b (group operation written additively).
func (e *G1) Add(a, b *G1) *G1 {
	e.p.Add(&a.p, &b.p)
	return e
}

// Neg sets e = -a.
func (e *G1) Neg(a *G1) *G1 {
	e.p.Neg(&a.p)
	return e
}

// Set sets e = a.
func (e *G1) Set(a *G1) *G1 {
	e.p.Set(&a.p)
	return e
}

// SetInfinity sets e to the group identity.
func (e *G1) SetInfinity() *G1 {
	e.p.SetInfinity()
	return e
}

// IsInfinity reports whether e is the group identity.
func (e *G1) IsInfinity() bool {
	return e.p.IsInfinity()
}

// Equal reports whether e == a.
func (e *G1) Equal(a *G1) bool {
	return e.p.Equal(&a.p)
}

// Marshal encodes e as 64 bytes: the affine x and y coordinates, big
// endian. The identity encodes as all zeros.
func (e *G1) Marshal() []byte {
	out := make([]byte, 64)
	if e.p.IsInfinity() {
		return out
	}
	var a curvePoint
	a.Set(&e.p)
	a.MakeAffine()
	a.x.Marshal(out[:32])
	a.y.Marshal(out[32:])
	return out
}

// Unmarshal decodes a point produced by Marshal, verifying that it lies
// on the curve.
func (e *G1) Unmarshal(data []byte) error {
	if len(data) != 64 {
		return errors.New("bn256: invalid G1 encoding length")
	}
	if allZero(data) {
		e.p.SetInfinity()
		return nil
	}
	var a curvePoint
	if err := a.x.Unmarshal(data[:32]); err != nil {
		return err
	}
	if err := a.y.Unmarshal(data[32:]); err != nil {
		return err
	}
	a.z.SetOne()
	if !a.isOnCurve() {
		return errors.New("bn256: malformed G1 point")
	}
	e.p.Set(&a)
	return nil
}

// ScalarBaseMult sets e = g2^k where g2 is the fixed twist generator.
func (e *G2) ScalarBaseMult(k *big.Int) *G2 {
	e.p.Mul(&twistGen, norm(k))
	return e
}

// ScalarMult sets e = a^k.
func (e *G2) ScalarMult(a *G2, k *big.Int) *G2 {
	e.p.Mul(&a.p, norm(k))
	return e
}

// Add sets e = a + b.
func (e *G2) Add(a, b *G2) *G2 {
	e.p.Add(&a.p, &b.p)
	return e
}

// Neg sets e = -a.
func (e *G2) Neg(a *G2) *G2 {
	e.p.Neg(&a.p)
	return e
}

// Set sets e = a.
func (e *G2) Set(a *G2) *G2 {
	e.p.Set(&a.p)
	return e
}

// SetInfinity sets e to the group identity.
func (e *G2) SetInfinity() *G2 {
	e.p.SetInfinity()
	return e
}

// IsInfinity reports whether e is the group identity.
func (e *G2) IsInfinity() bool {
	return e.p.IsInfinity()
}

// Equal reports whether e == a.
func (e *G2) Equal(a *G2) bool {
	return e.p.Equal(&a.p)
}

// Marshal encodes e as 128 bytes: x.a0 || x.a1 || y.a0 || y.a1, big
// endian. The identity encodes as all zeros.
func (e *G2) Marshal() []byte {
	out := make([]byte, 128)
	if e.p.IsInfinity() {
		return out
	}
	var a twistPoint
	a.Set(&e.p)
	a.MakeAffine()
	a.x.a0.Marshal(out[0:32])
	a.x.a1.Marshal(out[32:64])
	a.y.a0.Marshal(out[64:96])
	a.y.a1.Marshal(out[96:128])
	return out
}

// Unmarshal decodes a point produced by Marshal, verifying both the twist
// equation and membership in the order-r subgroup.
func (e *G2) Unmarshal(data []byte) error {
	if len(data) != 128 {
		return errors.New("bn256: invalid G2 encoding length")
	}
	if allZero(data) {
		e.p.SetInfinity()
		return nil
	}
	var a twistPoint
	if err := a.x.a0.Unmarshal(data[0:32]); err != nil {
		return err
	}
	if err := a.x.a1.Unmarshal(data[32:64]); err != nil {
		return err
	}
	if err := a.y.a0.Unmarshal(data[64:96]); err != nil {
		return err
	}
	if err := a.y.a1.Unmarshal(data[96:128]); err != nil {
		return err
	}
	a.z.SetOne()
	if !a.isOnTwist() {
		return errors.New("bn256: malformed G2 point")
	}
	var check twistPoint
	check.Mul(&a, Order)
	if !check.IsInfinity() {
		return errors.New("bn256: G2 point not in the order-r subgroup")
	}
	e.p.Set(&a)
	return nil
}

// Pair computes the reduced Tate pairing e(p, q).
func Pair(p *G1, q *G2) *GT {
	gt := &GT{}
	gt.p = pair(&p.p, &q.p)
	return gt
}

// PairBatch computes the product of pairings prod_i e(ps[i], qs[i]) with a
// single shared Miller loop and one final exponentiation. It is
// substantially faster than multiplying len(ps) individual pairings.
func PairBatch(ps []*G1, qs []*G2) *GT {
	cps := make([]*curvePoint, len(ps))
	cqs := make([]*twistPoint, len(qs))
	for i := range ps {
		cps[i] = &ps[i].p
	}
	for i := range qs {
		cqs[i] = &qs[i].p
	}
	gt := &GT{}
	gt.p = pairBatch(cps, cqs)
	return gt
}

// Mul sets e = a * b (the GT group operation) and returns e.
func (e *GT) Mul(a, b *GT) *GT {
	e.p.Mul(&a.p, &b.p)
	return e
}

// Exp sets e = a^k and returns e.
func (e *GT) Exp(a *GT, k *big.Int) *GT {
	e.p.Exp(&a.p, norm(k))
	return e
}

// Invert sets e = a^-1 and returns e.
func (e *GT) Invert(a *GT) *GT {
	// GT elements lie in the cyclotomic subgroup where inversion is
	// conjugation, but use the generic inverse for safety.
	e.p.Invert(&a.p)
	return e
}

// Set sets e = a and returns e.
func (e *GT) Set(a *GT) *GT {
	e.p.Set(&a.p)
	return e
}

// SetOne sets e to the GT identity and returns e.
func (e *GT) SetOne() *GT {
	e.p.SetOne()
	return e
}

// IsOne reports whether e is the GT identity.
func (e *GT) IsOne() bool {
	return e.p.IsOne()
}

// Equal reports whether e == a.
func (e *GT) Equal(a *GT) bool {
	return e.p.Equal(&a.p)
}

// Marshal encodes e as 384 bytes (twelve Fp coefficients, big endian).
// Equal GT elements produce identical encodings, making the output
// usable as a hash-join key.
func (e *GT) Marshal() []byte {
	out := make([]byte, 384)
	coeffs := []*gfP{
		&e.p.c0.b0.a0, &e.p.c0.b0.a1,
		&e.p.c0.b1.a0, &e.p.c0.b1.a1,
		&e.p.c0.b2.a0, &e.p.c0.b2.a1,
		&e.p.c1.b0.a0, &e.p.c1.b0.a1,
		&e.p.c1.b1.a0, &e.p.c1.b1.a1,
		&e.p.c1.b2.a0, &e.p.c1.b2.a1,
	}
	for i, c := range coeffs {
		c.Marshal(out[i*32 : (i+1)*32])
	}
	return out
}

// Unmarshal decodes an element produced by Marshal.
func (e *GT) Unmarshal(data []byte) error {
	if len(data) != 384 {
		return errors.New("bn256: invalid GT encoding length")
	}
	coeffs := []*gfP{
		&e.p.c0.b0.a0, &e.p.c0.b0.a1,
		&e.p.c0.b1.a0, &e.p.c0.b1.a1,
		&e.p.c0.b2.a0, &e.p.c0.b2.a1,
		&e.p.c1.b0.a0, &e.p.c1.b0.a1,
		&e.p.c1.b1.a0, &e.p.c1.b1.a1,
		&e.p.c1.b2.a0, &e.p.c1.b2.a1,
	}
	for i, c := range coeffs {
		if err := c.Unmarshal(data[i*32 : (i+1)*32]); err != nil {
			return err
		}
	}
	return nil
}

// norm reduces k into [0, Order) so that negative and oversized scalars
// behave as their canonical representatives.
func norm(k *big.Int) *big.Int {
	if k.Sign() >= 0 && k.Cmp(Order) < 0 {
		return k
	}
	return new(big.Int).Mod(k, Order)
}

func allZero(b []byte) bool {
	for _, v := range b {
		if v != 0 {
			return false
		}
	}
	return true
}
