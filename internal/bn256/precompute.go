package bn256

// Fixed-argument pairing precomputation. SJ.Dec pairs one token (G1
// side) against every row ciphertext (G2 side) of a table. The Miller
// loop's doubling chain, batched inversions, and line slopes depend
// only on the G1 points, so a fixed G1 batch can be walked once and
// replayed per row: PrecomputePairBatch records the loop as a flat
// program of accumulator squarings and per-slot line coefficients, and
// PairBatchPrecomputed evaluates that program at a row's G2 points.
// What remains per row is exactly the Fp12 work — line evaluations at
// Q, accumulator squarings, and the final exponentiation — while the
// per-step field inversions and T-chain updates disappear.

// ppOp is one step of a recorded Miller program: an accumulator
// squaring (slot < 0), or a line multiplication for slot. The line
//
//	l = (lambda*Tx - Ty) + (-lambda*Qx) tau + (Qy) tau*omega
//
// is an Fp12 element only determined up to Fp scalars: the final
// exponentiation erases any Fp factor (because p-1 divides
// (p^12-1)/r), so the recorded program normalizes each line by its
// base-field constant c = lambda*Tx - Ty. A monic op stores
// a = -lambda/c and b = 1/c and evaluates as 1 + (a*Qx) tau +
// (b*Qy) tau*omega, which mulLineMonic multiplies in with 9 Fp2
// multiplications instead of 12. The rare c == 0 lines (monic ==
// false) keep the generic form a = -lambda, b = 1 with a zero
// constant term. The inversions that make lines monic are batched at
// precompute time, where they are paid once per token rather than
// once per row.
type ppOp struct {
	slot  int32
	monic bool
	a, b  gfP
}

// PairingPrecomp is the recorded G1-side Miller program of a fixed
// batch of points. It is immutable after construction and safe for
// concurrent use by multiple goroutines.
type PairingPrecomp struct {
	n   int
	ops []ppOp
}

// Size returns the number of G1 slots the program was built for.
func (pc *PairingPrecomp) Size() int { return pc.n }

// ppSlot carries the per-pair precomputation state: the P-side half of
// pairSlot.
type ppSlot struct {
	px, py gfP
	tx, ty gfP
	inf    bool
	skip   bool
}

// recordLine appends the line coefficients for slot j with slope
// lambda, evaluated against the slot's current T. The raw slope and
// constant are stored; normalizeLines rewrites them into monic form
// once the whole program is recorded.
func (pc *PairingPrecomp) recordLine(j int, s *ppSlot, lambda *gfP) {
	var op ppOp
	op.slot = int32(j)
	op.a.Set(lambda)
	op.b.Mul(lambda, &s.tx)
	op.b.Sub(&op.b, &s.ty) // c = lambda*Tx - Ty
	pc.ops = append(pc.ops, op)
}

// normalizeLines divides every recorded line by its base-field
// constant, batching the inversions with Montgomery's trick. Lines
// whose constant is zero keep the generic form.
func (pc *PairingPrecomp) normalizeLines() {
	invs := make([]*gfP, 0, len(pc.ops))
	for i := range pc.ops {
		op := &pc.ops[i]
		if op.slot >= 0 && !op.b.IsZero() {
			invs = append(invs, &op.b)
		}
	}
	batchInvert(invs)
	for i := range pc.ops {
		op := &pc.ops[i]
		if op.slot < 0 {
			continue
		}
		if op.b.IsZero() {
			// c == 0: keep l = (-lambda*Qx) tau + (Qy) tau*omega.
			op.a.Neg(&op.a)
			op.b.Set(&rOne)
			continue
		}
		op.monic = true
		var t gfP
		t.Mul(&op.a, &op.b) // lambda/c
		op.a.Neg(&t)
	}
}

// precomputePairBatch walks millerBatch's loop over the P side only,
// recording every squaring and line it would perform. The control flow
// mirrors millerBatch exactly — including the degenerate branches where
// T reaches infinity — so that replaying the program against any G2
// batch reproduces millerBatch's output up to the Fp line scalings,
// which the final exponentiation erases.
func precomputePairBatch(cps []*curvePoint) *PairingPrecomp {
	n := len(cps)
	pc := &PairingPrecomp{n: n}
	// 254 squarings plus ~1.5 lines per bit per slot.
	pc.ops = make([]ppOp, 0, Order.BitLen()*(1+n+n/2))

	slots := make([]*ppSlot, n)
	for i, p := range cps {
		s := &ppSlot{}
		if p.IsInfinity() {
			s.skip = true
		} else {
			var pa curvePoint
			pa.Set(p)
			pa.MakeAffine()
			s.px.Set(&pa.x)
			s.py.Set(&pa.y)
			s.tx.Set(&pa.x)
			s.ty.Set(&pa.y)
		}
		slots[i] = s
	}

	type active struct {
		j int
		s *ppSlot
	}
	actives := func() []active {
		as := make([]active, 0, n)
		for j, s := range slots {
			if !s.skip && !s.inf {
				as = append(as, active{j, s})
			}
		}
		return as
	}

	denoms := make([]*gfP, 0, n)
	lambdas := make([]gfP, n)

	for i := Order.BitLen() - 2; i >= 0; i-- {
		pc.ops = append(pc.ops, ppOp{slot: -1}) // f.Square(&f)

		// Doubling step: lambda = 3Tx^2 / (2Ty).
		as := actives()
		denoms = denoms[:0]
		dblSlots := as[:0]
		for _, a := range as {
			if a.s.ty.IsZero() {
				a.s.inf = true
				continue
			}
			idx := len(dblSlots)
			lambdas[idx].Double(&a.s.ty)
			denoms = append(denoms, &lambdas[idx])
			dblSlots = append(dblSlots, a)
		}
		batchInvert(denoms)
		for j, a := range dblSlots {
			s := a.s
			var num, lambda, t2 gfP
			num.Square(&s.tx)
			t2.Double(&num)
			num.Add(&t2, &num)
			lambda.Mul(&num, &lambdas[j])

			pc.recordLine(a.j, s, &lambda)

			var x3, y3, t gfP
			x3.Square(&lambda)
			t.Double(&s.tx)
			x3.Sub(&x3, &t)
			t.Sub(&s.tx, &x3)
			y3.Mul(&lambda, &t)
			y3.Sub(&y3, &s.ty)
			s.tx.Set(&x3)
			s.ty.Set(&y3)
		}

		if Order.Bit(i) == 0 {
			continue
		}

		// Addition step: T = T + P with lambda = (Py - Ty)/(Px - Tx).
		as = actives()
		denoms = denoms[:0]
		addSlots := as[:0]
		for _, a := range as {
			s := a.s
			var dx gfP
			dx.Sub(&s.px, &s.tx)
			if dx.IsZero() {
				var sumY gfP
				sumY.Add(&s.ty, &s.py)
				if sumY.IsZero() {
					s.inf = true
					continue
				}
				// T = P: tangent line.
				var twoY, num, lambda gfP
				twoY.Double(&s.ty)
				twoY.Invert(&twoY)
				num.Square(&s.tx)
				var tmp gfP
				tmp.Double(&num)
				num.Add(&tmp, &num)
				lambda.Mul(&num, &twoY)
				pc.recordLine(a.j, s, &lambda)
				var x3, y3, t gfP
				x3.Square(&lambda)
				t.Double(&s.tx)
				x3.Sub(&x3, &t)
				t.Sub(&s.tx, &x3)
				y3.Mul(&lambda, &t)
				y3.Sub(&y3, &s.ty)
				s.tx.Set(&x3)
				s.ty.Set(&y3)
				continue
			}
			idx := len(addSlots)
			lambdas[idx].Set(&dx)
			denoms = append(denoms, &lambdas[idx])
			addSlots = append(addSlots, a)
		}
		batchInvert(denoms)
		for j, a := range addSlots {
			s := a.s
			var num, lambda gfP
			num.Sub(&s.py, &s.ty)
			lambda.Mul(&num, &lambdas[j])

			pc.recordLine(a.j, s, &lambda)

			var x3, y3, t gfP
			x3.Square(&lambda)
			t.Add(&s.tx, &s.px)
			x3.Sub(&x3, &t)
			t.Sub(&s.tx, &x3)
			y3.Mul(&lambda, &t)
			y3.Sub(&y3, &s.ty)
			s.tx.Set(&x3)
			s.ty.Set(&y3)
		}
	}
	pc.normalizeLines()
	return pc
}

// miller replays the recorded program against one batch of G2 points,
// producing the same Fp12 element millerBatch would. Slots whose Q is
// infinite contribute the identity, exactly as millerBatch's skip
// handling does. Accumulator squarings are elided while the accumulator
// is still one.
func (pc *PairingPrecomp) miller(qs []*twistPoint) gfP12 {
	qx := make([]gfP2, pc.n)
	qy := make([]gfP2, pc.n)
	qskip := make([]bool, pc.n)
	for i, q := range qs {
		if q.IsInfinity() {
			qskip[i] = true
			continue
		}
		var qa twistPoint
		qa.Set(q)
		qa.MakeAffine()
		qx[i].Set(&qa.x)
		qy[i].Set(&qa.y)
	}

	var f gfP12
	f.SetOne()
	one := true
	var l01, l11 gfP2
	var zeroC gfP
	for i := range pc.ops {
		op := &pc.ops[i]
		if op.slot < 0 {
			if !one {
				f.Square(&f)
			}
			continue
		}
		if qskip[op.slot] {
			continue
		}
		l01.MulScalar(&qx[op.slot], &op.a)
		l11.MulScalar(&qy[op.slot], &op.b)
		if one {
			// f = 1 * l: install the sparse line directly.
			f.SetZero()
			if op.monic {
				f.c0.b0.a0.Set(&rOne)
			}
			f.c0.b1.Set(&l01)
			f.c1.b1.Set(&l11)
			one = false
			continue
		}
		if op.monic {
			f.mulLineMonic(&f, &l01, &l11)
		} else {
			f.mulLine(&f, &zeroC, &l01, &l11)
		}
	}
	return f
}

// PrecomputePairBatch records the G1-side Miller program for a fixed
// batch of points, to be replayed against many G2 batches with
// PairBatchPrecomputed. The returned handle is immutable and safe for
// concurrent use.
func PrecomputePairBatch(ps []*G1) *PairingPrecomp {
	cps := make([]*curvePoint, len(ps))
	for i, p := range ps {
		cps[i] = &p.p
	}
	return precomputePairBatch(cps)
}

// PairBatchPrecomputed computes prod_i e(P_i, Q_i) for the fixed G1
// batch recorded in pc, equal to PairBatch of the original points with
// qs. It panics if len(qs) differs from the precomputed batch size.
func PairBatchPrecomputed(pc *PairingPrecomp, qs []*G2) *GT {
	if len(qs) != pc.n {
		panic("bn256: mismatched pairing batch")
	}
	cqs := make([]*twistPoint, len(qs))
	for i := range qs {
		cqs[i] = &qs[i].p
	}
	f := pc.miller(cqs)
	gt := &GT{}
	gt.p = finalExponentiation(&f)
	return gt
}
