package bn256

import "math/big"

// curvePoint is a point on E: y^2 = x^3 + 3 over Fp in Jacobian
// coordinates (X, Y, Z) representing the affine point (X/Z^2, Y/Z^3).
// The point at infinity has Z = 0.
type curvePoint struct {
	x, y, z gfP
}

// curveB is the curve coefficient b = 3 in Montgomery form.
var curveB gfP

// curveGen is the generator (1, 2) of G1.
var curveGen curvePoint

func initCurve() {
	curveB = *newGFp(3)
	curveGen = curvePoint{
		x: *newGFp(1),
		y: *newGFp(2),
		z: *newGFp(1),
	}
	if !curveGen.isOnCurve() {
		panic("bn256: G1 generator is not on the curve")
	}
}

// Set sets c = a and returns c.
func (c *curvePoint) Set(a *curvePoint) *curvePoint {
	c.x.Set(&a.x)
	c.y.Set(&a.y)
	c.z.Set(&a.z)
	return c
}

// SetInfinity sets c to the point at infinity.
func (c *curvePoint) SetInfinity() *curvePoint {
	c.x.SetOne()
	c.y.SetOne()
	c.z.SetZero()
	return c
}

// IsInfinity reports whether c is the point at infinity.
func (c *curvePoint) IsInfinity() bool {
	return c.z.IsZero()
}

// isOnCurve reports whether the affine form of c satisfies y^2 = x^3 + 3.
func (c *curvePoint) isOnCurve() bool {
	if c.IsInfinity() {
		return true
	}
	var a curvePoint
	a.Set(c)
	a.MakeAffine()
	var lhs, rhs gfP
	lhs.Square(&a.y)
	rhs.Square(&a.x)
	rhs.Mul(&rhs, &a.x)
	rhs.Add(&rhs, &curveB)
	return lhs.Equal(&rhs)
}

// MakeAffine normalizes c to Z = 1 (or the canonical infinity encoding)
// and returns c.
func (c *curvePoint) MakeAffine() *curvePoint {
	if c.z.Equal(&rOne) {
		return c
	}
	if c.IsInfinity() {
		return c.SetInfinity()
	}
	var zInv, zInv2, zInv3 gfP
	zInv.Invert(&c.z)
	zInv2.Square(&zInv)
	zInv3.Mul(&zInv2, &zInv)
	c.x.Mul(&c.x, &zInv2)
	c.y.Mul(&c.y, &zInv3)
	c.z.SetOne()
	return c
}

// Double sets c = 2a and returns c.
func (c *curvePoint) Double(a *curvePoint) *curvePoint {
	if a.IsInfinity() {
		return c.SetInfinity()
	}
	// dbl-2009-l formulas for a = 0 curves.
	var A, B, C, D, E, F, t gfP
	A.Square(&a.x)
	B.Square(&a.y)
	C.Square(&B)

	D.Add(&a.x, &B)
	D.Square(&D)
	D.Sub(&D, &A)
	D.Sub(&D, &C)
	D.Double(&D)

	E.Double(&A)
	E.Add(&E, &A)
	F.Square(&E)

	var x3, y3, z3 gfP
	x3.Double(&D)
	x3.Sub(&F, &x3)

	t.Sub(&D, &x3)
	y3.Mul(&E, &t)
	t.Double(&C)
	t.Double(&t)
	t.Double(&t)
	y3.Sub(&y3, &t)

	z3.Mul(&a.y, &a.z)
	z3.Double(&z3)

	c.x.Set(&x3)
	c.y.Set(&y3)
	c.z.Set(&z3)
	return c
}

// Add sets c = a + b and returns c.
func (c *curvePoint) Add(a, b *curvePoint) *curvePoint {
	if a.IsInfinity() {
		return c.Set(b)
	}
	if b.IsInfinity() {
		return c.Set(a)
	}
	// add-2007-bl Jacobian addition.
	var z1z1, z2z2, u1, u2, s1, s2 gfP
	z1z1.Square(&a.z)
	z2z2.Square(&b.z)
	u1.Mul(&a.x, &z2z2)
	u2.Mul(&b.x, &z1z1)
	s1.Mul(&a.y, &b.z)
	s1.Mul(&s1, &z2z2)
	s2.Mul(&b.y, &a.z)
	s2.Mul(&s2, &z1z1)

	var h, r gfP
	h.Sub(&u2, &u1)
	r.Sub(&s2, &s1)
	if h.IsZero() {
		if r.IsZero() {
			return c.Double(a)
		}
		return c.SetInfinity()
	}
	r.Double(&r)

	var i, j, v gfP
	i.Double(&h)
	i.Square(&i)
	j.Mul(&h, &i)
	v.Mul(&u1, &i)

	var x3, y3, z3, t gfP
	x3.Square(&r)
	x3.Sub(&x3, &j)
	t.Double(&v)
	x3.Sub(&x3, &t)

	t.Sub(&v, &x3)
	y3.Mul(&r, &t)
	t.Mul(&s1, &j)
	t.Double(&t)
	y3.Sub(&y3, &t)

	z3.Add(&a.z, &b.z)
	z3.Square(&z3)
	z3.Sub(&z3, &z1z1)
	z3.Sub(&z3, &z2z2)
	z3.Mul(&z3, &h)

	c.x.Set(&x3)
	c.y.Set(&y3)
	c.z.Set(&z3)
	return c
}

// Neg sets c = -a and returns c.
func (c *curvePoint) Neg(a *curvePoint) *curvePoint {
	c.x.Set(&a.x)
	c.y.Neg(&a.y)
	c.z.Set(&a.z)
	return c
}

// Mul sets c = k*a using double-and-add and returns c.
func (c *curvePoint) Mul(a *curvePoint, k *big.Int) *curvePoint {
	var acc curvePoint
	acc.SetInfinity()
	base := *a
	for i := k.BitLen() - 1; i >= 0; i-- {
		acc.Double(&acc)
		if k.Bit(i) == 1 {
			acc.Add(&acc, &base)
		}
	}
	return c.Set(&acc)
}

// Equal reports whether c and a represent the same point.
func (c *curvePoint) Equal(a *curvePoint) bool {
	if c.IsInfinity() || a.IsInfinity() {
		return c.IsInfinity() == a.IsInfinity()
	}
	// Cross-multiply to avoid affine conversion:
	// x1/z1^2 == x2/z2^2 and y1/z1^3 == y2/z2^3.
	var z1z1, z2z2, l, r gfP
	z1z1.Square(&c.z)
	z2z2.Square(&a.z)
	l.Mul(&c.x, &z2z2)
	r.Mul(&a.x, &z1z1)
	if !l.Equal(&r) {
		return false
	}
	var z1z1z1, z2z2z2 gfP
	z1z1z1.Mul(&z1z1, &c.z)
	z2z2z2.Mul(&z2z2, &a.z)
	l.Mul(&c.y, &z2z2z2)
	r.Mul(&a.y, &z1z1z1)
	return l.Equal(&r)
}
