// Package bn256 implements a 256-bit Barreto–Naehrig pairing-friendly
// elliptic curve with groups G1, G2 and GT of prime order Order, and a
// bilinear Tate pairing e: G1 x G2 -> GT.
//
// The curve is defined by the BN parameter u below; the field prime p,
// the group order r, the trace of Frobenius t and the G2 twist cofactor
// are all derived from u at package initialization via the standard BN
// polynomial parametrization:
//
//	p = 36u^4 + 36u^3 + 24u^2 + 6u + 1
//	r = 36u^4 + 36u^3 + 18u^2 + 6u + 1
//	t = 6u^2 + 1
//
// G1 is the group of points of E: y^2 = x^3 + 3 over Fp with generator
// (1, 2). G2 is the order-r subgroup of the sextic D-twist
// E': y^2 = x^3 + 3/xi over Fp2, and GT is the order-r subgroup of
// Fp12*. The pairing is the reduced Tate pairing computed with a Miller
// loop over r and a final exponentiation to the power (p^12-1)/r.
//
// The implementation is self-contained (standard library only): Fp uses
// 4x64-bit Montgomery limbs and the extension tower Fp2/Fp6/Fp12 is
// built as Fp2 = Fp(i) with i^2 = -1, Fp6 = Fp2[tau]/(tau^3 - xi) and
// Fp12 = Fp6[omega]/(omega^2 - tau).
package bn256

import (
	"math/big"
)

// u is the BN curve parameter. This is the same parameter used by the
// original golang.org/x/crypto/bn256 curve, giving a 256-bit prime field.
var u = bigFromBase10("4965661367192848881")

var (
	// P is the prime order of the base field Fp.
	P *big.Int
	// Order is the prime order r of G1, G2 and GT.
	Order *big.Int
	// trace is the trace of Frobenius t = 6u^2 + 1.
	trace *big.Int
	// twistCofactor is #E'(Fp2)/r = 2p - r = p - 1 + t.
	twistCofactor *big.Int
	// finalExpHard is (p^4 - p^2 + 1)/r, the hard part of the final
	// exponentiation.
	finalExpHard *big.Int
)

func bigFromBase10(s string) *big.Int {
	n, ok := new(big.Int).SetString(s, 10)
	if !ok {
		panic("bn256: invalid base-10 constant: " + s)
	}
	return n
}

// initParams derives p, r, t and the derived exponents from u.
func initParams() {
	one := big.NewInt(1)
	u2 := new(big.Int).Mul(u, u)
	u3 := new(big.Int).Mul(u2, u)
	u4 := new(big.Int).Mul(u3, u)

	// p = 36u^4 + 36u^3 + 24u^2 + 6u + 1
	P = new(big.Int).Mul(u4, big.NewInt(36))
	P.Add(P, new(big.Int).Mul(u3, big.NewInt(36)))
	P.Add(P, new(big.Int).Mul(u2, big.NewInt(24)))
	P.Add(P, new(big.Int).Mul(u, big.NewInt(6)))
	P.Add(P, one)

	// r = 36u^4 + 36u^3 + 18u^2 + 6u + 1
	Order = new(big.Int).Mul(u4, big.NewInt(36))
	Order.Add(Order, new(big.Int).Mul(u3, big.NewInt(36)))
	Order.Add(Order, new(big.Int).Mul(u2, big.NewInt(18)))
	Order.Add(Order, new(big.Int).Mul(u, big.NewInt(6)))
	Order.Add(Order, one)

	// t = 6u^2 + 1
	trace = new(big.Int).Mul(u2, big.NewInt(6))
	trace.Add(trace, one)

	// twist cofactor c2 = p - 1 + t
	twistCofactor = new(big.Int).Add(P, trace)
	twistCofactor.Sub(twistCofactor, one)

	// hard part of the final exponentiation: (p^4 - p^2 + 1)/r
	p2 := new(big.Int).Mul(P, P)
	p4 := new(big.Int).Mul(p2, p2)
	h := new(big.Int).Sub(p4, p2)
	h.Add(h, one)
	rem := new(big.Int)
	h.DivMod(h, Order, rem)
	if rem.Sign() != 0 {
		panic("bn256: (p^4 - p^2 + 1) not divisible by r")
	}
	finalExpHard = h
}

func init() {
	initParams()
	initGFp()
	initGFp2()
	initTower()
	initCurve()
	initTwist()
}
