package bn256

import (
	"crypto/rand"
	"math/big"
	"testing"
)

// Independent validation of the Jacobian group law: a textbook affine
// implementation over big.Int, sharing no code with the production
// formulas, must agree with curvePoint on random inputs.

type affinePoint struct {
	x, y *big.Int
	inf  bool
}

func affineFromCurvePoint(c *curvePoint) affinePoint {
	if c.IsInfinity() {
		return affinePoint{inf: true}
	}
	var a curvePoint
	a.Set(c)
	a.MakeAffine()
	return affinePoint{x: a.x.BigInt(), y: a.y.BigInt()}
}

func affineAdd(p, q affinePoint) affinePoint {
	if p.inf {
		return q
	}
	if q.inf {
		return p
	}
	if p.x.Cmp(q.x) == 0 {
		sum := new(big.Int).Add(p.y, q.y)
		sum.Mod(sum, P)
		if sum.Sign() == 0 {
			return affinePoint{inf: true}
		}
		// Doubling: lambda = 3x^2 / 2y.
		num := new(big.Int).Mul(p.x, p.x)
		num.Mul(num, big.NewInt(3))
		den := new(big.Int).Lsh(p.y, 1)
		den.ModInverse(den, P)
		lambda := num.Mul(num, den)
		lambda.Mod(lambda, P)
		return affineChord(p, p, lambda)
	}
	// Addition: lambda = (y2 - y1)/(x2 - x1).
	num := new(big.Int).Sub(q.y, p.y)
	den := new(big.Int).Sub(q.x, p.x)
	den.Mod(den, P)
	den.ModInverse(den, P)
	lambda := num.Mul(num, den)
	lambda.Mod(lambda, P)
	return affineChord(p, q, lambda)
}

func affineChord(p, q affinePoint, lambda *big.Int) affinePoint {
	x3 := new(big.Int).Mul(lambda, lambda)
	x3.Sub(x3, p.x)
	x3.Sub(x3, q.x)
	x3.Mod(x3, P)
	y3 := new(big.Int).Sub(p.x, x3)
	y3.Mul(y3, lambda)
	y3.Sub(y3, p.y)
	y3.Mod(y3, P)
	return affinePoint{x: x3, y: y3}
}

func (p affinePoint) equal(q affinePoint) bool {
	if p.inf || q.inf {
		return p.inf == q.inf
	}
	return p.x.Cmp(q.x) == 0 && p.y.Cmp(q.y) == 0
}

func TestJacobianAgainstAffineReference(t *testing.T) {
	for i := 0; i < 30; i++ {
		ka, _ := rand.Int(rand.Reader, Order)
		kb, _ := rand.Int(rand.Reader, Order)
		var pa, pb, sum curvePoint
		pa.Mul(&curveGen, ka)
		pb.Mul(&curveGen, kb)
		sum.Add(&pa, &pb)

		ra := affineFromCurvePoint(&pa)
		rb := affineFromCurvePoint(&pb)
		want := affineAdd(ra, rb)
		got := affineFromCurvePoint(&sum)
		if !got.equal(want) {
			t.Fatalf("Jacobian addition disagrees with affine reference (iteration %d)", i)
		}

		var dbl curvePoint
		dbl.Double(&pa)
		wantDbl := affineAdd(ra, ra)
		gotDbl := affineFromCurvePoint(&dbl)
		if !gotDbl.equal(wantDbl) {
			t.Fatalf("Jacobian doubling disagrees with affine reference (iteration %d)", i)
		}
	}
}

// TestScalarMultAgainstRepeatedAddition validates Mul against the
// definition for small scalars.
func TestScalarMultAgainstRepeatedAddition(t *testing.T) {
	var acc curvePoint
	acc.SetInfinity()
	for k := int64(1); k <= 25; k++ {
		acc.Add(&acc, &curveGen)
		var viaMul curvePoint
		viaMul.Mul(&curveGen, big.NewInt(k))
		if !acc.Equal(&viaMul) {
			t.Fatalf("k*G != G+...+G at k=%d", k)
		}
	}
}

// TestTwistScalarMultAgainstRepeatedAddition does the same on G2.
func TestTwistScalarMultAgainstRepeatedAddition(t *testing.T) {
	var acc twistPoint
	acc.SetInfinity()
	for k := int64(1); k <= 10; k++ {
		acc.Add(&acc, &twistGen)
		var viaMul twistPoint
		viaMul.Mul(&twistGen, big.NewInt(k))
		if !acc.Equal(&viaMul) {
			t.Fatalf("k*G2 != repeated addition at k=%d", k)
		}
	}
}
