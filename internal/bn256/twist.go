package bn256

import "math/big"

// twistPoint is a point on the sextic D-twist E': y^2 = x^3 + 3/xi over
// Fp2 in Jacobian coordinates. The order-r subgroup of E'(Fp2) is G2.
type twistPoint struct {
	x, y, z gfP2
}

// twistB is the twist curve coefficient b' = 3/xi.
var twistB gfP2

// twistGen is a generator of the order-r subgroup of E'(Fp2), found at
// init by hashing along x-coordinates and clearing the twist cofactor.
var twistGen twistPoint

func initTwist() {
	var three gfP2
	three.a0 = *newGFp(3)
	twistB.Mul(&three, &xiInv)

	// Scan small x-coordinates for a point on the twist, then clear the
	// cofactor to land in the order-r subgroup.
	for n := int64(1); ; n++ {
		var x, rhs, y gfP2
		x.a0 = *newGFp(n)
		x.a1 = *newGFp(1)
		rhs.Square(&x)
		rhs.Mul(&rhs, &x)
		rhs.Add(&rhs, &twistB)
		if !y.Sqrt(&rhs) {
			continue
		}
		var pt twistPoint
		pt.x.Set(&x)
		pt.y.Set(&y)
		pt.z.SetOne()
		if !pt.isOnTwist() {
			continue
		}
		var gen twistPoint
		gen.Mul(&pt, twistCofactor)
		if gen.IsInfinity() {
			continue
		}
		var check twistPoint
		check.Mul(&gen, Order)
		if !check.IsInfinity() {
			panic("bn256: cofactor-cleared twist point does not have order r")
		}
		gen.MakeAffine()
		twistGen = gen
		return
	}
}

// Set sets t = a and returns t.
func (t *twistPoint) Set(a *twistPoint) *twistPoint {
	t.x.Set(&a.x)
	t.y.Set(&a.y)
	t.z.Set(&a.z)
	return t
}

// SetInfinity sets t to the point at infinity.
func (t *twistPoint) SetInfinity() *twistPoint {
	t.x.SetOne()
	t.y.SetOne()
	t.z.SetZero()
	return t
}

// IsInfinity reports whether t is the point at infinity.
func (t *twistPoint) IsInfinity() bool {
	return t.z.IsZero()
}

// isOnTwist reports whether the affine form of t satisfies
// y^2 = x^3 + 3/xi.
func (t *twistPoint) isOnTwist() bool {
	if t.IsInfinity() {
		return true
	}
	var a twistPoint
	a.Set(t)
	a.MakeAffine()
	var lhs, rhs gfP2
	lhs.Square(&a.y)
	rhs.Square(&a.x)
	rhs.Mul(&rhs, &a.x)
	rhs.Add(&rhs, &twistB)
	return lhs.Equal(&rhs)
}

// MakeAffine normalizes t to Z = 1 (or canonical infinity) and returns t.
func (t *twistPoint) MakeAffine() *twistPoint {
	if t.z.IsOne() {
		return t
	}
	if t.IsInfinity() {
		return t.SetInfinity()
	}
	var zInv, zInv2, zInv3 gfP2
	zInv.Invert(&t.z)
	zInv2.Square(&zInv)
	zInv3.Mul(&zInv2, &zInv)
	t.x.Mul(&t.x, &zInv2)
	t.y.Mul(&t.y, &zInv3)
	t.z.SetOne()
	return t
}

// Double sets t = 2a and returns t.
func (t *twistPoint) Double(a *twistPoint) *twistPoint {
	if a.IsInfinity() {
		return t.SetInfinity()
	}
	var A, B, C, D, E, F, tt gfP2
	A.Square(&a.x)
	B.Square(&a.y)
	C.Square(&B)

	D.Add(&a.x, &B)
	D.Square(&D)
	D.Sub(&D, &A)
	D.Sub(&D, &C)
	D.Double(&D)

	E.Double(&A)
	E.Add(&E, &A)
	F.Square(&E)

	var x3, y3, z3 gfP2
	x3.Double(&D)
	x3.Sub(&F, &x3)

	tt.Sub(&D, &x3)
	y3.Mul(&E, &tt)
	tt.Double(&C)
	tt.Double(&tt)
	tt.Double(&tt)
	y3.Sub(&y3, &tt)

	z3.Mul(&a.y, &a.z)
	z3.Double(&z3)

	t.x.Set(&x3)
	t.y.Set(&y3)
	t.z.Set(&z3)
	return t
}

// Add sets t = a + b and returns t.
func (t *twistPoint) Add(a, b *twistPoint) *twistPoint {
	if a.IsInfinity() {
		return t.Set(b)
	}
	if b.IsInfinity() {
		return t.Set(a)
	}
	var z1z1, z2z2, u1, u2, s1, s2 gfP2
	z1z1.Square(&a.z)
	z2z2.Square(&b.z)
	u1.Mul(&a.x, &z2z2)
	u2.Mul(&b.x, &z1z1)
	s1.Mul(&a.y, &b.z)
	s1.Mul(&s1, &z2z2)
	s2.Mul(&b.y, &a.z)
	s2.Mul(&s2, &z1z1)

	var h, r gfP2
	h.Sub(&u2, &u1)
	r.Sub(&s2, &s1)
	if h.IsZero() {
		if r.IsZero() {
			return t.Double(a)
		}
		return t.SetInfinity()
	}
	r.Double(&r)

	var i, j, v gfP2
	i.Double(&h)
	i.Square(&i)
	j.Mul(&h, &i)
	v.Mul(&u1, &i)

	var x3, y3, z3, tt gfP2
	x3.Square(&r)
	x3.Sub(&x3, &j)
	tt.Double(&v)
	x3.Sub(&x3, &tt)

	tt.Sub(&v, &x3)
	y3.Mul(&r, &tt)
	tt.Mul(&s1, &j)
	tt.Double(&tt)
	y3.Sub(&y3, &tt)

	z3.Add(&a.z, &b.z)
	z3.Square(&z3)
	z3.Sub(&z3, &z1z1)
	z3.Sub(&z3, &z2z2)
	z3.Mul(&z3, &h)

	t.x.Set(&x3)
	t.y.Set(&y3)
	t.z.Set(&z3)
	return t
}

// Neg sets t = -a and returns t.
func (t *twistPoint) Neg(a *twistPoint) *twistPoint {
	t.x.Set(&a.x)
	t.y.Neg(&a.y)
	t.z.Set(&a.z)
	return t
}

// Mul sets t = k*a using double-and-add and returns t.
func (t *twistPoint) Mul(a *twistPoint, k *big.Int) *twistPoint {
	var acc twistPoint
	acc.SetInfinity()
	base := *a
	for i := k.BitLen() - 1; i >= 0; i-- {
		acc.Double(&acc)
		if k.Bit(i) == 1 {
			acc.Add(&acc, &base)
		}
	}
	return t.Set(&acc)
}

// Equal reports whether t and a represent the same point.
func (t *twistPoint) Equal(a *twistPoint) bool {
	if t.IsInfinity() || a.IsInfinity() {
		return t.IsInfinity() == a.IsInfinity()
	}
	var z1z1, z2z2, l, r gfP2
	z1z1.Square(&t.z)
	z2z2.Square(&a.z)
	l.Mul(&t.x, &z2z2)
	r.Mul(&a.x, &z1z1)
	if !l.Equal(&r) {
		return false
	}
	var z1c, z2c gfP2
	z1c.Mul(&z1z1, &t.z)
	z2c.Mul(&z2z2, &a.z)
	l.Mul(&t.y, &z2c)
	r.Mul(&a.y, &z1c)
	return l.Equal(&r)
}
