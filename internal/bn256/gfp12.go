package bn256

import (
	"fmt"
	"math/big"
)

// gfP12 is an element c0 + c1*omega of Fp12 = Fp6[omega]/(omega^2 - tau).
type gfP12 struct {
	c0, c1 gfP6
}

// frob2Consts[k] = (xi^((p^2-1)/6))^k for k = 0..5, the coefficient
// constants of the p^2-power Frobenius on the omega^k basis.
var frob2Consts [6]gfP2

func initTower() {
	p2 := new(big.Int).Mul(P, P)
	exp := new(big.Int).Sub(p2, big.NewInt(1))
	exp.Div(exp, big.NewInt(6))
	var gamma gfP2
	gamma.Exp(&xi, exp)
	frob2Consts[0].SetOne()
	for k := 1; k < 6; k++ {
		frob2Consts[k].Mul(&frob2Consts[k-1], &gamma)
	}
}

func (e *gfP12) String() string {
	return fmt.Sprintf("(%v + %v omega)", &e.c0, &e.c1)
}

// Set sets e = a and returns e.
func (e *gfP12) Set(a *gfP12) *gfP12 {
	e.c0.Set(&a.c0)
	e.c1.Set(&a.c1)
	return e
}

// SetZero sets e = 0 and returns e.
func (e *gfP12) SetZero() *gfP12 {
	e.c0.SetZero()
	e.c1.SetZero()
	return e
}

// SetOne sets e = 1 and returns e.
func (e *gfP12) SetOne() *gfP12 {
	e.c0.SetOne()
	e.c1.SetZero()
	return e
}

// IsZero reports whether e == 0.
func (e *gfP12) IsZero() bool {
	return e.c0.IsZero() && e.c1.IsZero()
}

// IsOne reports whether e == 1.
func (e *gfP12) IsOne() bool {
	var one gfP6
	one.SetOne()
	return e.c0.Equal(&one) && e.c1.IsZero()
}

// Equal reports whether e == a.
func (e *gfP12) Equal(a *gfP12) bool {
	return e.c0.Equal(&a.c0) && e.c1.Equal(&a.c1)
}

// Conjugate sets e = c0 - c1*omega, the p^6-power Frobenius, and returns e.
func (e *gfP12) Conjugate(a *gfP12) *gfP12 {
	e.c0.Set(&a.c0)
	e.c1.Neg(&a.c1)
	return e
}

// Add sets e = a + b and returns e.
func (e *gfP12) Add(a, b *gfP12) *gfP12 {
	e.c0.Add(&a.c0, &b.c0)
	e.c1.Add(&a.c1, &b.c1)
	return e
}

// Sub sets e = a - b and returns e.
func (e *gfP12) Sub(a, b *gfP12) *gfP12 {
	e.c0.Sub(&a.c0, &b.c0)
	e.c1.Sub(&a.c1, &b.c1)
	return e
}

// Mul sets e = a*b and returns e.
func (e *gfP12) Mul(a, b *gfP12) *gfP12 {
	// Karatsuba: (c0 + c1 w)(d0 + d1 w) =
	//   c0 d0 + c1 d1 tau + ((c0+c1)(d0+d1) - c0 d0 - c1 d1) w
	var v0, v1, s, t gfP6
	v0.Mul(&a.c0, &b.c0)
	v1.Mul(&a.c1, &b.c1)
	s.Add(&a.c0, &a.c1)
	t.Add(&b.c0, &b.c1)
	s.Mul(&s, &t)
	s.Sub(&s, &v0)
	s.Sub(&s, &v1)
	var v1t gfP6
	v1t.MulTau(&v1)
	e.c0.Add(&v0, &v1t)
	e.c1.Set(&s)
	return e
}

// Square sets e = a^2 and returns e.
func (e *gfP12) Square(a *gfP12) *gfP12 {
	// (c0 + c1 w)^2 = c0^2 + c1^2 tau + 2 c0 c1 w
	var v0, v1, m gfP6
	v0.Square(&a.c0)
	v1.Square(&a.c1)
	m.Mul(&a.c0, &a.c1)
	var v1t gfP6
	v1t.MulTau(&v1)
	e.c0.Add(&v0, &v1t)
	e.c1.Add(&m, &m)
	return e
}

// Invert sets e = a^-1 and returns e. Inverting zero yields zero.
func (e *gfP12) Invert(a *gfP12) *gfP12 {
	// 1/(c0 + c1 w) = (c0 - c1 w)/(c0^2 - c1^2 tau)
	var d, t gfP6
	d.Square(&a.c0)
	t.Square(&a.c1)
	t.MulTau(&t)
	d.Sub(&d, &t)
	d.Invert(&d)
	e.c0.Mul(&a.c0, &d)
	d.Neg(&d)
	e.c1.Mul(&a.c1, &d)
	return e
}

// Exp sets e = a^k for a non-negative exponent k and returns e.
func (e *gfP12) Exp(a *gfP12, k *big.Int) *gfP12 {
	var acc gfP12
	acc.SetOne()
	base := *a
	for i := k.BitLen() - 1; i >= 0; i-- {
		acc.Square(&acc)
		if k.Bit(i) == 1 {
			acc.Mul(&acc, &base)
		}
	}
	return e.Set(&acc)
}

// Frobenius2 sets e = a^(p^2) and returns e. The p^2-power Frobenius acts
// trivially on Fp2 coefficients and multiplies the omega^k basis
// coefficient by frob2Consts[k].
func (e *gfP12) Frobenius2(a *gfP12) *gfP12 {
	// Basis exponents: c0.b0 -> w^0, c0.b1 -> w^2, c0.b2 -> w^4,
	// c1.b0 -> w^1, c1.b1 -> w^3, c1.b2 -> w^5.
	e.c0.b0.Mul(&a.c0.b0, &frob2Consts[0])
	e.c0.b1.Mul(&a.c0.b1, &frob2Consts[2])
	e.c0.b2.Mul(&a.c0.b2, &frob2Consts[4])
	e.c1.b0.Mul(&a.c1.b0, &frob2Consts[1])
	e.c1.b1.Mul(&a.c1.b1, &frob2Consts[3])
	e.c1.b2.Mul(&a.c1.b2, &frob2Consts[5])
	return e
}

// mulLine multiplies e by the sparse line element
// l = (l00 + l01*tau) + (l11*tau)*omega, the shape produced by Tate
// pairing line evaluations, and returns e. Exploiting sparsity saves
// roughly half the Fp2 multiplications of a general gfP12 Mul.
func (e *gfP12) mulLine(a *gfP12, l00, l01, l11 *gfP2) *gfP12 {
	// b = b0 + b1 w with b0 = (l00, l01, 0), b1 = (0, l11, 0).
	var b0, b1 gfP6
	b0.b0.Set(l00)
	b0.b1.Set(l01)
	b1.b1.Set(l11)

	var v0, v1, s, t gfP6
	v0.Mul(&a.c0, &b0)
	v1.Mul(&a.c1, &b1)
	s.Add(&a.c0, &a.c1)
	t.Add(&b0, &b1)
	s.Mul(&s, &t)
	s.Sub(&s, &v0)
	s.Sub(&s, &v1)
	var v1t gfP6
	v1t.MulTau(&v1)
	e.c0.Add(&v0, &v1t)
	e.c1.Set(&s)
	return e
}
