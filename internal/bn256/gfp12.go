package bn256

import (
	"fmt"
	"math/big"
)

// gfP12 is an element c0 + c1*omega of Fp12 = Fp6[omega]/(omega^2 - tau).
type gfP12 struct {
	c0, c1 gfP6
}

// frob2Consts[k] = (xi^((p^2-1)/6))^k for k = 0..5, the coefficient
// constants of the p^2-power Frobenius on the omega^k basis.
var frob2Consts [6]gfP2

// frob1Consts[k] = (xi^((p-1)/6))^k for k = 0..5, the coefficient
// constants of the p-power Frobenius: w^p = xi^((p-1)/6) * w, and the
// Fp2 coefficients themselves are conjugated (i^p = -i for p = 3 mod 4).
var frob1Consts [6]gfP2

func initTower() {
	p2 := new(big.Int).Mul(P, P)
	exp := new(big.Int).Sub(p2, big.NewInt(1))
	exp.Div(exp, big.NewInt(6))
	var gamma gfP2
	gamma.Exp(&xi, exp)
	frob2Consts[0].SetOne()
	for k := 1; k < 6; k++ {
		frob2Consts[k].Mul(&frob2Consts[k-1], &gamma)
	}

	pm1 := new(big.Int).Sub(P, big.NewInt(1))
	if new(big.Int).Mod(pm1, big.NewInt(6)).Sign() != 0 {
		panic("bn256: p-1 not divisible by 6; p-power Frobenius constants undefined")
	}
	exp1 := new(big.Int).Div(pm1, big.NewInt(6))
	var gamma1 gfP2
	gamma1.Exp(&xi, exp1)
	frob1Consts[0].SetOne()
	for k := 1; k < 6; k++ {
		frob1Consts[k].Mul(&frob1Consts[k-1], &gamma1)
	}
}

func (e *gfP12) String() string {
	return fmt.Sprintf("(%v + %v omega)", &e.c0, &e.c1)
}

// Set sets e = a and returns e.
func (e *gfP12) Set(a *gfP12) *gfP12 {
	e.c0.Set(&a.c0)
	e.c1.Set(&a.c1)
	return e
}

// SetZero sets e = 0 and returns e.
func (e *gfP12) SetZero() *gfP12 {
	e.c0.SetZero()
	e.c1.SetZero()
	return e
}

// SetOne sets e = 1 and returns e.
func (e *gfP12) SetOne() *gfP12 {
	e.c0.SetOne()
	e.c1.SetZero()
	return e
}

// IsZero reports whether e == 0.
func (e *gfP12) IsZero() bool {
	return e.c0.IsZero() && e.c1.IsZero()
}

// IsOne reports whether e == 1.
func (e *gfP12) IsOne() bool {
	var one gfP6
	one.SetOne()
	return e.c0.Equal(&one) && e.c1.IsZero()
}

// Equal reports whether e == a.
func (e *gfP12) Equal(a *gfP12) bool {
	return e.c0.Equal(&a.c0) && e.c1.Equal(&a.c1)
}

// Conjugate sets e = c0 - c1*omega, the p^6-power Frobenius, and returns e.
func (e *gfP12) Conjugate(a *gfP12) *gfP12 {
	e.c0.Set(&a.c0)
	e.c1.Neg(&a.c1)
	return e
}

// Add sets e = a + b and returns e.
func (e *gfP12) Add(a, b *gfP12) *gfP12 {
	e.c0.Add(&a.c0, &b.c0)
	e.c1.Add(&a.c1, &b.c1)
	return e
}

// Sub sets e = a - b and returns e.
func (e *gfP12) Sub(a, b *gfP12) *gfP12 {
	e.c0.Sub(&a.c0, &b.c0)
	e.c1.Sub(&a.c1, &b.c1)
	return e
}

// Mul sets e = a*b and returns e.
func (e *gfP12) Mul(a, b *gfP12) *gfP12 {
	// Karatsuba: (c0 + c1 w)(d0 + d1 w) =
	//   c0 d0 + c1 d1 tau + ((c0+c1)(d0+d1) - c0 d0 - c1 d1) w
	var v0, v1, s, t gfP6
	v0.Mul(&a.c0, &b.c0)
	v1.Mul(&a.c1, &b.c1)
	s.Add(&a.c0, &a.c1)
	t.Add(&b.c0, &b.c1)
	s.Mul(&s, &t)
	s.Sub(&s, &v0)
	s.Sub(&s, &v1)
	var v1t gfP6
	v1t.MulTau(&v1)
	e.c0.Add(&v0, &v1t)
	e.c1.Set(&s)
	return e
}

// Square sets e = a^2 and returns e.
func (e *gfP12) Square(a *gfP12) *gfP12 {
	// Complex squaring: with v = c0 c1,
	//   (c0 + c1 w)^2 = (c0 + c1)(c0 + tau c1) - v - tau v + 2 v w,
	// costing two Fp6 multiplications instead of the three of the
	// schoolbook c0^2 + tau c1^2 + 2 c0 c1 w.
	var v, t, s gfP6
	v.Mul(&a.c0, &a.c1)
	t.MulTau(&a.c1)
	t.Add(&a.c0, &t)
	s.Add(&a.c0, &a.c1)
	t.Mul(&s, &t)
	t.Sub(&t, &v)
	var vt gfP6
	vt.MulTau(&v)
	t.Sub(&t, &vt)
	e.c0.Set(&t)
	e.c1.Add(&v, &v)
	return e
}

// cyclotomicSquare sets e = a^2 for a in the cyclotomic subgroup of
// Fp12 (elements of order dividing p^4 - p^2 + 1, which is where the
// easy part of the final exponentiation lands). Granger-Scott squaring
// works on the Fp4 sub-doublets of the w-power basis (w^2 = tau,
// w^6 = xi): w^0 = c0.b0, w^1 = c1.b0, w^2 = c0.b1, w^3 = c1.b1,
// w^4 = c0.b2, w^5 = c1.b2. Nine Fp2 squarings replace the twelve Fp2
// multiplications of a general squaring. Results are undefined outside
// the cyclotomic subgroup.
func (e *gfP12) cyclotomicSquare(a *gfP12) *gfP12 {
	var t0, t1, t2, t3, t4, t5, t6, t7, t8 gfP2

	t0.Square(&a.c1.b1) // x4^2
	t1.Square(&a.c0.b0) // x0^2
	t6.Add(&a.c1.b1, &a.c0.b0)
	t6.Square(&t6)
	t6.Sub(&t6, &t0)
	t6.Sub(&t6, &t1) // 2 x4 x0

	t2.Square(&a.c0.b2) // x2^2
	t3.Square(&a.c1.b0) // x3^2
	t7.Add(&a.c0.b2, &a.c1.b0)
	t7.Square(&t7)
	t7.Sub(&t7, &t2)
	t7.Sub(&t7, &t3) // 2 x2 x3

	t4.Square(&a.c1.b2) // x5^2
	t5.Square(&a.c0.b1) // x1^2
	t8.Add(&a.c1.b2, &a.c0.b1)
	t8.Square(&t8)
	t8.Sub(&t8, &t4)
	t8.Sub(&t8, &t5)
	t8.MulXi(&t8) // 2 x5 x1 xi

	t0.MulXi(&t0)
	t0.Add(&t0, &t1) // xi x4^2 + x0^2
	t2.MulXi(&t2)
	t2.Add(&t2, &t3) // xi x2^2 + x3^2
	t4.MulXi(&t4)
	t4.Add(&t4, &t5) // xi x5^2 + x1^2

	var z gfP2
	z.Sub(&t0, &a.c0.b0)
	z.Double(&z)
	e.c0.b0.Add(&z, &t0)
	z.Sub(&t2, &a.c0.b1)
	z.Double(&z)
	e.c0.b1.Add(&z, &t2)
	z.Sub(&t4, &a.c0.b2)
	z.Double(&z)
	e.c0.b2.Add(&z, &t4)

	z.Add(&t8, &a.c1.b0)
	z.Double(&z)
	e.c1.b0.Add(&z, &t8)
	z.Add(&t6, &a.c1.b1)
	z.Double(&z)
	e.c1.b1.Add(&z, &t6)
	z.Add(&t7, &a.c1.b2)
	z.Double(&z)
	e.c1.b2.Add(&z, &t7)
	return e
}

// expCyclotomic sets e = a^k for a in the cyclotomic subgroup, using
// cyclotomic squarings and a fixed 4-bit window. The final
// exponentiation's hard part spends ~1000 squarings here, so the
// cheaper squaring and the 4x reduction in multiplications both land on
// every pairing.
func (e *gfP12) expCyclotomic(a *gfP12, k *big.Int) *gfP12 {
	var table [16]gfP12
	table[1].Set(a)
	for i := 2; i < 16; i++ {
		table[i].Mul(&table[i-1], a)
	}
	var acc gfP12
	acc.SetOne()
	bits := k.BitLen()
	start := (bits+3)/4*4 - 4
	for w := start; w >= 0; w -= 4 {
		if w != start {
			acc.cyclotomicSquare(&acc)
			acc.cyclotomicSquare(&acc)
			acc.cyclotomicSquare(&acc)
			acc.cyclotomicSquare(&acc)
		}
		nib := k.Bit(w) | k.Bit(w+1)<<1 | k.Bit(w+2)<<2 | k.Bit(w+3)<<3
		if nib != 0 {
			acc.Mul(&acc, &table[nib])
		}
	}
	return e.Set(&acc)
}

// Invert sets e = a^-1 and returns e. Inverting zero yields zero.
func (e *gfP12) Invert(a *gfP12) *gfP12 {
	// 1/(c0 + c1 w) = (c0 - c1 w)/(c0^2 - c1^2 tau)
	var d, t gfP6
	d.Square(&a.c0)
	t.Square(&a.c1)
	t.MulTau(&t)
	d.Sub(&d, &t)
	d.Invert(&d)
	e.c0.Mul(&a.c0, &d)
	d.Neg(&d)
	e.c1.Mul(&a.c1, &d)
	return e
}

// Exp sets e = a^k for a non-negative exponent k and returns e.
func (e *gfP12) Exp(a *gfP12, k *big.Int) *gfP12 {
	var acc gfP12
	acc.SetOne()
	base := *a
	for i := k.BitLen() - 1; i >= 0; i-- {
		acc.Square(&acc)
		if k.Bit(i) == 1 {
			acc.Mul(&acc, &base)
		}
	}
	return e.Set(&acc)
}

// Frobenius1 sets e = a^p and returns e. The p-power Frobenius
// conjugates each Fp2 coefficient and multiplies the w^k basis
// coefficient by frob1Consts[k].
func (e *gfP12) Frobenius1(a *gfP12) *gfP12 {
	// Basis exponents: c0.b0 -> w^0, c0.b1 -> w^2, c0.b2 -> w^4,
	// c1.b0 -> w^1, c1.b1 -> w^3, c1.b2 -> w^5.
	var t gfP2
	t.Conjugate(&a.c0.b0)
	e.c0.b0.Mul(&t, &frob1Consts[0])
	t.Conjugate(&a.c0.b1)
	e.c0.b1.Mul(&t, &frob1Consts[2])
	t.Conjugate(&a.c0.b2)
	e.c0.b2.Mul(&t, &frob1Consts[4])
	t.Conjugate(&a.c1.b0)
	e.c1.b0.Mul(&t, &frob1Consts[1])
	t.Conjugate(&a.c1.b1)
	e.c1.b1.Mul(&t, &frob1Consts[3])
	t.Conjugate(&a.c1.b2)
	e.c1.b2.Mul(&t, &frob1Consts[5])
	return e
}

// Frobenius2 sets e = a^(p^2) and returns e. The p^2-power Frobenius acts
// trivially on Fp2 coefficients and multiplies the omega^k basis
// coefficient by frob2Consts[k].
func (e *gfP12) Frobenius2(a *gfP12) *gfP12 {
	// Basis exponents: c0.b0 -> w^0, c0.b1 -> w^2, c0.b2 -> w^4,
	// c1.b0 -> w^1, c1.b1 -> w^3, c1.b2 -> w^5.
	e.c0.b0.Mul(&a.c0.b0, &frob2Consts[0])
	e.c0.b1.Mul(&a.c0.b1, &frob2Consts[2])
	e.c0.b2.Mul(&a.c0.b2, &frob2Consts[4])
	e.c1.b0.Mul(&a.c1.b0, &frob2Consts[1])
	e.c1.b1.Mul(&a.c1.b1, &frob2Consts[3])
	e.c1.b2.Mul(&a.c1.b2, &frob2Consts[5])
	return e
}

// mulSparseScalar01 sets e = a * (c + m1 tau) for a base-field scalar c
// and an Fp2 coefficient m1: the sparse shape of one Tate line's Fp6
// half. Karatsuba on the low terms plus scalar multiplications for c
// costs 13 base-field multiplications against 18 for a general gfP6
// multiplication.
func (e *gfP6) mulSparseScalar01(a *gfP6, c *gfP, m1 *gfP2) *gfP6 {
	// (b0 + b1 tau + b2 tau^2)(c + m1 tau) =
	//   (c b0 + xi b2 m1) + (b0 m1 + c b1) tau + (b1 m1 + c b2) tau^2
	var t0, t1, cross, u0, u1, cm gfP2
	t0.MulScalar(&a.b0, c)
	t1.Mul(&a.b1, m1)
	cross.Add(&a.b0, &a.b1)
	cm.a0.Add(c, &m1.a0)
	cm.a1.Set(&m1.a1)
	cross.Mul(&cross, &cm)
	cross.Sub(&cross, &t0)
	cross.Sub(&cross, &t1) // b0 m1 + c b1
	u0.MulScalar(&a.b2, c)
	u1.Mul(&a.b2, m1)
	u1.MulXi(&u1)

	var c0, c2 gfP2
	c0.Add(&t0, &u1)
	c2.Add(&t1, &u0)
	e.b0.Set(&c0)
	e.b1.Set(&cross)
	e.b2.Set(&c2)
	return e
}

// mulSparseOne01 sets e = a * (1 + m1 tau): the monic form of a line's
// Fp6 half. The unit constant term makes the Karatsuba cross terms
// plain additions, leaving 9 base-field multiplications.
func (e *gfP6) mulSparseOne01(a *gfP6, m1 *gfP2) *gfP6 {
	// (b0 + b1 tau + b2 tau^2)(1 + m1 tau) =
	//   (b0 + xi b2 m1) + (b1 + b0 m1) tau + (b2 + b1 m1) tau^2
	var t0, t1, t2 gfP2
	t0.Mul(&a.b0, m1)
	t1.Mul(&a.b1, m1)
	t2.Mul(&a.b2, m1)
	t2.MulXi(&t2)

	var c0, c1, c2 gfP2
	c0.Add(&a.b0, &t2)
	c1.Add(&a.b1, &t0)
	c2.Add(&a.b2, &t1)
	e.b0.Set(&c0)
	e.b1.Set(&c1)
	e.b2.Set(&c2)
	return e
}

// mulLineMonic multiplies e by the monic sparse line element
// l = 1 + (l01)*tau + (l11*tau)*omega. Precomputed pairing programs
// normalize each line by its base-field constant (an Fp factor the
// final exponentiation erases), which drops the per-line cost to 9 Fp2
// multiplications.
func (e *gfP12) mulLineMonic(a *gfP12, l01, l11 *gfP2) *gfP12 {
	// b = b0 + b1 w with b0 = (1, l01, 0), b1 = (0, l11, 0).
	var v0, v1, s gfP6
	v0.mulSparseOne01(&a.c0, l01) // a0 * (1 + l01 tau)

	// v1 = a1 * (l11 tau): (x0 + x1 tau + x2 tau^2) l11 tau =
	//   xi x2 l11 + x0 l11 tau + x1 l11 tau^2.
	var w0, w1, w2 gfP2
	w0.Mul(&a.c1.b2, l11)
	w0.MulXi(&w0)
	w1.Mul(&a.c1.b0, l11)
	w2.Mul(&a.c1.b1, l11)
	v1.b0.Set(&w0)
	v1.b1.Set(&w1)
	v1.b2.Set(&w2)

	var sum01 gfP2
	sum01.Add(l01, l11)
	s.Add(&a.c0, &a.c1)
	s.mulSparseOne01(&s, &sum01) // (a0+a1)(b0+b1)
	s.Sub(&s, &v0)
	s.Sub(&s, &v1)

	var v1t gfP6
	v1t.MulTau(&v1)
	e.c0.Add(&v0, &v1t)
	e.c1.Set(&s)
	return e
}

// mulLine multiplies e by the sparse line element
// l = c + (l01)*tau + (l11*tau)*omega with c in the base field, the
// shape produced by Tate pairing line evaluations (c = lambda*Tx - Ty
// is a base-field scalar). The true sparse product costs ~12 Fp2
// multiplications against 18 for a general gfP12 Mul.
func (e *gfP12) mulLine(a *gfP12, c *gfP, l01, l11 *gfP2) *gfP12 {
	// b = b0 + b1 w with b0 = (c, l01, 0), b1 = (0, l11, 0).
	// Karatsuba over w: v0 = a0 b0, v1 = a1 b1,
	// c1 = (a0+a1)(b0+b1) - v0 - v1, c0 = v0 + tau v1.
	var v0, v1, s gfP6
	v0.mulSparseScalar01(&a.c0, c, l01) // a0 * (c + l01 tau)

	// v1 = a1 * (l11 tau): (x0 + x1 tau + x2 tau^2) l11 tau =
	//   xi x2 l11 + x0 l11 tau + x1 l11 tau^2.
	var w0, w1, w2 gfP2
	w0.Mul(&a.c1.b2, l11)
	w0.MulXi(&w0)
	w1.Mul(&a.c1.b0, l11)
	w2.Mul(&a.c1.b1, l11)
	v1.b0.Set(&w0)
	v1.b1.Set(&w1)
	v1.b2.Set(&w2)

	var sum01 gfP2
	sum01.Add(l01, l11)
	s.Add(&a.c0, &a.c1)
	s.mulSparseScalar01(&s, c, &sum01) // (a0+a1)(b0+b1)
	s.Sub(&s, &v0)
	s.Sub(&s, &v1)

	var v1t gfP6
	v1t.MulTau(&v1)
	e.c0.Add(&v0, &v1t)
	e.c1.Set(&s)
	return e
}
