package bn256

import (
	"fmt"
	"math/big"
	"math/bits"
)

// gfP is an element of the prime field Fp held in Montgomery form as four
// little-endian 64-bit limbs: the value represented is limbs * 2^-256 mod p.
type gfP [4]uint64

var (
	// pLimbs holds p as little-endian limbs.
	pLimbs [4]uint64
	// np is -p^-1 mod 2^64, the Montgomery reduction constant.
	np uint64
	// r2 is 2^512 mod p, used to convert into Montgomery form.
	r2 gfP
	// rOne is 1 in Montgomery form (2^256 mod p).
	rOne gfP
	// pMinus2 is p-2, the Fermat inversion exponent.
	pMinus2 *big.Int
)

func initGFp() {
	if P.BitLen() > 256 {
		panic("bn256: prime does not fit in four limbs")
	}
	for i := 0; i < 4; i++ {
		pLimbs[i] = 0
	}
	for i, w := range P.Bits() {
		pLimbs[i] = uint64(w)
	}

	// np = -p^-1 mod 2^64 via Newton iteration on the low limb.
	inv := pLimbs[0] // p is odd, so p^-1 mod 2 == 1 == pLimbs[0] mod 2
	for i := 0; i < 5; i++ {
		inv *= 2 - pLimbs[0]*inv
	}
	np = -inv

	big256 := new(big.Int).Lsh(big.NewInt(1), 256)
	r2Big := new(big.Int).Mul(big256, big256)
	r2Big.Mod(r2Big, P)
	r2 = gfPFromRawBig(r2Big)

	rBig := new(big.Int).Mod(big256, P)
	rOne = gfPFromRawBig(rBig)

	pMinus2 = new(big.Int).Sub(P, big.NewInt(2))
}

// gfPFromRawBig loads a reduced big.Int into limbs without Montgomery
// conversion.
func gfPFromRawBig(n *big.Int) gfP {
	if n.Sign() < 0 || n.Cmp(P) >= 0 {
		panic("bn256: value out of range")
	}
	var e gfP
	for i, w := range n.Bits() {
		e[i] = uint64(w)
	}
	return e
}

// newGFp converts a small signed integer into a Montgomery-form field
// element.
func newGFp(x int64) *gfP {
	n := big.NewInt(x)
	n.Mod(n, P)
	e := gfPFromRawBig(n)
	e.montEncode(&e)
	return &e
}

// gfPFromBig converts an arbitrary big.Int into a Montgomery-form field
// element, reducing it mod p.
func gfPFromBig(n *big.Int) *gfP {
	m := new(big.Int).Mod(n, P)
	e := gfPFromRawBig(m)
	e.montEncode(&e)
	return &e
}

// BigInt returns the canonical (non-Montgomery) value of e.
func (e *gfP) BigInt() *big.Int {
	var d gfP
	d.montDecode(e)
	out := new(big.Int)
	for i := 3; i >= 0; i-- {
		out.Lsh(out, 64)
		out.Or(out, new(big.Int).SetUint64(d[i]))
	}
	return out
}

func (e *gfP) String() string {
	return fmt.Sprintf("%x", e.BigInt())
}

// Set sets e = a and returns e.
func (e *gfP) Set(a *gfP) *gfP {
	*e = *a
	return e
}

// SetZero sets e = 0.
func (e *gfP) SetZero() *gfP {
	*e = gfP{}
	return e
}

// SetOne sets e = 1 (in Montgomery form).
func (e *gfP) SetOne() *gfP {
	*e = rOne
	return e
}

// IsZero reports whether e == 0.
func (e *gfP) IsZero() bool {
	return e[0]|e[1]|e[2]|e[3] == 0
}

// Equal reports whether e == a.
func (e *gfP) Equal(a *gfP) bool {
	return e[0] == a[0] && e[1] == a[1] && e[2] == a[2] && e[3] == a[3]
}

// gteP reports whether the raw limbs of e are >= p.
func (e *gfP) gteP() bool {
	for i := 3; i >= 0; i-- {
		if e[i] > pLimbs[i] {
			return true
		}
		if e[i] < pLimbs[i] {
			return false
		}
	}
	return true // equal
}

// subP sets e = e - p over the raw limbs (assumes e >= p or a pending
// carry makes the subtraction safe).
func (e *gfP) subP() {
	var b uint64
	e[0], b = bits.Sub64(e[0], pLimbs[0], 0)
	e[1], b = bits.Sub64(e[1], pLimbs[1], b)
	e[2], b = bits.Sub64(e[2], pLimbs[2], b)
	e[3], _ = bits.Sub64(e[3], pLimbs[3], b)
}

// Add sets e = a + b mod p and returns e.
func (e *gfP) Add(a, b *gfP) *gfP {
	var c uint64
	e[0], c = bits.Add64(a[0], b[0], 0)
	e[1], c = bits.Add64(a[1], b[1], c)
	e[2], c = bits.Add64(a[2], b[2], c)
	e[3], c = bits.Add64(a[3], b[3], c)
	if c == 1 || e.gteP() {
		e.subP()
	}
	return e
}

// Sub sets e = a - b mod p and returns e.
func (e *gfP) Sub(a, b *gfP) *gfP {
	var brw uint64
	e[0], brw = bits.Sub64(a[0], b[0], 0)
	e[1], brw = bits.Sub64(a[1], b[1], brw)
	e[2], brw = bits.Sub64(a[2], b[2], brw)
	e[3], brw = bits.Sub64(a[3], b[3], brw)
	if brw == 1 {
		var c uint64
		e[0], c = bits.Add64(e[0], pLimbs[0], 0)
		e[1], c = bits.Add64(e[1], pLimbs[1], c)
		e[2], c = bits.Add64(e[2], pLimbs[2], c)
		e[3], _ = bits.Add64(e[3], pLimbs[3], c)
	}
	return e
}

// Neg sets e = -a mod p and returns e.
func (e *gfP) Neg(a *gfP) *gfP {
	if a.IsZero() {
		return e.SetZero()
	}
	var brw uint64
	e[0], brw = bits.Sub64(pLimbs[0], a[0], 0)
	e[1], brw = bits.Sub64(pLimbs[1], a[1], brw)
	e[2], brw = bits.Sub64(pLimbs[2], a[2], brw)
	e[3], _ = bits.Sub64(pLimbs[3], a[3], brw)
	return e
}

// Double sets e = 2a mod p and returns e.
func (e *gfP) Double(a *gfP) *gfP {
	return e.Add(a, a)
}

// mul512 computes the full 512-bit product of a and b.
func mul512(a, b *gfP) [8]uint64 {
	var r [8]uint64
	for i := 0; i < 4; i++ {
		var carry uint64
		ai := a[i]
		for j := 0; j < 4; j++ {
			hi, lo := bits.Mul64(ai, b[j])
			var c uint64
			lo, c = bits.Add64(lo, r[i+j], 0)
			hi += c
			lo, c = bits.Add64(lo, carry, 0)
			hi += c
			r[i+j] = lo
			carry = hi
		}
		r[i+4] = carry
	}
	return r
}

// montReduce performs Montgomery reduction of a 512-bit value, returning
// t = r * 2^-256 mod p with t < p.
func montReduce(r *[8]uint64) gfP {
	var extra uint64
	for i := 0; i < 4; i++ {
		m := r[i] * np
		var carry uint64
		for j := 0; j < 4; j++ {
			hi, lo := bits.Mul64(m, pLimbs[j])
			var c uint64
			lo, c = bits.Add64(lo, r[i+j], 0)
			hi += c
			lo, c = bits.Add64(lo, carry, 0)
			hi += c
			r[i+j] = lo
			carry = hi
		}
		// Propagate carry into the upper words.
		for k := i + 4; k < 8 && carry != 0; k++ {
			var c uint64
			r[k], c = bits.Add64(r[k], carry, 0)
			carry = c
		}
		extra += carry
	}
	t := gfP{r[4], r[5], r[6], r[7]}
	if extra != 0 || t.gteP() {
		t.subP()
	}
	return t
}

// Mul sets e = a * b mod p (Montgomery form) and returns e.
func (e *gfP) Mul(a, b *gfP) *gfP {
	r := mul512(a, b)
	*e = montReduce(&r)
	return e
}

// Square sets e = a^2 mod p and returns e.
func (e *gfP) Square(a *gfP) *gfP {
	return e.Mul(a, a)
}

// montEncode converts a from canonical into Montgomery form.
func (e *gfP) montEncode(a *gfP) *gfP {
	return e.Mul(a, &r2)
}

// montDecode converts a from Montgomery into canonical form.
func (e *gfP) montDecode(a *gfP) *gfP {
	r := [8]uint64{a[0], a[1], a[2], a[3]}
	*e = montReduce(&r)
	return e
}

// Exp sets e = a^k mod p for a non-negative exponent k and returns e.
func (e *gfP) Exp(a *gfP, k *big.Int) *gfP {
	acc := rOne
	base := *a
	for i := k.BitLen() - 1; i >= 0; i-- {
		acc.Square(&acc)
		if k.Bit(i) == 1 {
			acc.Mul(&acc, &base)
		}
	}
	*e = acc
	return e
}

// Invert sets e = a^-1 mod p via Fermat's little theorem and returns e.
// Inverting zero yields zero.
func (e *gfP) Invert(a *gfP) *gfP {
	return e.Exp(a, pMinus2)
}

// Marshal appends the 32-byte big-endian canonical encoding of e to out.
func (e *gfP) Marshal(out []byte) {
	var d gfP
	d.montDecode(e)
	for i := 0; i < 4; i++ {
		w := d[3-i]
		for j := 0; j < 8; j++ {
			out[i*8+j] = byte(w >> (56 - 8*j))
		}
	}
}

// Unmarshal sets e from a 32-byte big-endian canonical encoding. It
// returns an error if the value is not fully reduced.
func (e *gfP) Unmarshal(in []byte) error {
	var d gfP
	for i := 0; i < 4; i++ {
		var w uint64
		for j := 0; j < 8; j++ {
			w = w<<8 | uint64(in[i*8+j])
		}
		d[3-i] = w
	}
	if d.gteP() {
		return errFieldElementRange
	}
	e.montEncode(&d)
	return nil
}

var errFieldElementRange = fmt.Errorf("bn256: field element not reduced")
