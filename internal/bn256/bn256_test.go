package bn256

import (
	"bytes"
	"crypto/rand"
	"math/big"
	"testing"
)

func TestParamsDerivation(t *testing.T) {
	// p and r must be prime and satisfy the BN relation r = p + 1 - t.
	if !P.ProbablyPrime(32) {
		t.Fatal("p is not prime")
	}
	if !Order.ProbablyPrime(32) {
		t.Fatal("r is not prime")
	}
	want := new(big.Int).Add(P, big.NewInt(1))
	want.Sub(want, trace)
	if want.Cmp(Order) != 0 {
		t.Fatal("r != p + 1 - t")
	}
	if P.BitLen() < 250 {
		t.Fatalf("p has %d bits, want >= 250", P.BitLen())
	}
}

func TestG1Order(t *testing.T) {
	var e G1
	e.ScalarBaseMult(Order)
	if !e.IsInfinity() {
		t.Fatal("r * g1 != infinity")
	}
	e.ScalarBaseMult(big.NewInt(1))
	if e.IsInfinity() {
		t.Fatal("g1 is infinity")
	}
}

func TestG2Order(t *testing.T) {
	var e G2
	e.ScalarBaseMult(Order)
	if !e.IsInfinity() {
		t.Fatal("r * g2 != infinity")
	}
	e.ScalarBaseMult(big.NewInt(1))
	if e.IsInfinity() {
		t.Fatal("g2 is infinity")
	}
}

func TestPairingBilinearity(t *testing.T) {
	a, pa, err := RandomG1(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	b, qb, err := RandomG2(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}

	// e(g1^a, g2^b) must equal e(g1, g2)^(ab).
	lhs := Pair(pa, qb)
	base := Pair(new(G1).ScalarBaseMult(big.NewInt(1)), new(G2).ScalarBaseMult(big.NewInt(1)))
	ab := new(big.Int).Mul(a, b)
	ab.Mod(ab, Order)
	rhs := new(GT).Exp(base, ab)
	if !lhs.Equal(rhs) {
		t.Fatal("pairing is not bilinear")
	}
	if lhs.IsOne() {
		t.Fatal("pairing is degenerate")
	}
}

func TestPairingNonDegenerate(t *testing.T) {
	g1 := new(G1).ScalarBaseMult(big.NewInt(1))
	g2 := new(G2).ScalarBaseMult(big.NewInt(1))
	e := Pair(g1, g2)
	if e.IsOne() {
		t.Fatal("e(g1, g2) == 1")
	}
	// e(g1, g2)^r == 1 (GT has order r).
	var er GT
	er.Exp(e, Order)
	if !er.IsOne() {
		t.Fatal("e(g1, g2)^r != 1")
	}
}

func TestPairBatchMatchesProduct(t *testing.T) {
	var ps []*G1
	var qs []*G2
	expected := new(GT).SetOne()
	for i := 0; i < 4; i++ {
		a, p, err := RandomG1(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		b, q, err := RandomG2(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		_ = a
		_ = b
		ps = append(ps, p)
		qs = append(qs, q)
		expected.Mul(expected, Pair(p, q))
	}
	got := PairBatch(ps, qs)
	if !got.Equal(expected) {
		t.Fatal("PairBatch disagrees with the product of individual pairings")
	}
}

func TestGTMarshalRoundTrip(t *testing.T) {
	_, p, _ := RandomG1(rand.Reader)
	_, q, _ := RandomG2(rand.Reader)
	e := Pair(p, q)
	data := e.Marshal()
	var e2 GT
	if err := e2.Unmarshal(data); err != nil {
		t.Fatal(err)
	}
	if !e.Equal(&e2) {
		t.Fatal("GT marshal round trip failed")
	}
	if !bytes.Equal(data, e2.Marshal()) {
		t.Fatal("GT re-marshal differs")
	}
}
