package bn256

import (
	"bytes"
	"crypto/rand"
	"math/big"
	"sync"
	"testing"
)

func randPairBatch(t *testing.T, n int) ([]*G1, []*G2) {
	t.Helper()
	ps := make([]*G1, n)
	qs := make([]*G2, n)
	for i := 0; i < n; i++ {
		var err error
		if _, ps[i], err = RandomG1(rand.Reader); err != nil {
			t.Fatal(err)
		}
		if _, qs[i], err = RandomG2(rand.Reader); err != nil {
			t.Fatal(err)
		}
	}
	return ps, qs
}

// TestPairBatchPrecomputedMatchesPairBatch pins the fixed-argument
// evaluation against the direct batched pairing over a range of batch
// sizes: the recorded Miller program must reproduce millerBatch's
// output exactly.
func TestPairBatchPrecomputedMatchesPairBatch(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8} {
		ps, qs := randPairBatch(t, n)
		pc := PrecomputePairBatch(ps)
		if pc.Size() != n {
			t.Fatalf("Size() = %d, want %d", pc.Size(), n)
		}
		want := PairBatch(ps, qs)
		got := PairBatchPrecomputed(pc, qs)
		if !bytes.Equal(got.Marshal(), want.Marshal()) {
			t.Fatalf("n=%d: precomputed pairing disagrees with PairBatch", n)
		}
	}
}

// TestPairBatchPrecomputedReuse checks that one handle evaluated
// against several distinct G2 batches matches PairBatch on each.
func TestPairBatchPrecomputedReuse(t *testing.T) {
	const n = 4
	ps, _ := randPairBatch(t, n)
	pc := PrecomputePairBatch(ps)
	for round := 0; round < 3; round++ {
		_, qs := randPairBatch(t, n)
		want := PairBatch(ps, qs)
		got := PairBatchPrecomputed(pc, qs)
		if !bytes.Equal(got.Marshal(), want.Marshal()) {
			t.Fatalf("round %d: precomputed pairing diverged on reuse", round)
		}
	}
}

// TestPairBatchPrecomputedEdgeCases covers the degenerate inputs: a
// point at infinity on either side, the single-slot batch, and the
// empty batch, each of which must agree with PairBatch.
func TestPairBatchPrecomputedEdgeCases(t *testing.T) {
	infG1 := new(G1).ScalarBaseMult(Order)
	infG2 := new(G2).ScalarBaseMult(Order)
	if !infG1.IsInfinity() || !infG2.IsInfinity() {
		t.Fatal("Order multiple is not the identity")
	}

	t.Run("empty", func(t *testing.T) {
		pc := PrecomputePairBatch(nil)
		got := PairBatchPrecomputed(pc, nil)
		want := PairBatch(nil, nil)
		if !bytes.Equal(got.Marshal(), want.Marshal()) {
			t.Fatal("empty batch disagrees with PairBatch")
		}
	})

	t.Run("single", func(t *testing.T) {
		ps, qs := randPairBatch(t, 1)
		pc := PrecomputePairBatch(ps)
		got := PairBatchPrecomputed(pc, qs)
		want := PairBatch(ps, qs)
		if !bytes.Equal(got.Marshal(), want.Marshal()) {
			t.Fatal("single-slot batch disagrees with PairBatch")
		}
	})

	t.Run("g1-infinity", func(t *testing.T) {
		ps, qs := randPairBatch(t, 3)
		ps[1] = infG1
		pc := PrecomputePairBatch(ps)
		got := PairBatchPrecomputed(pc, qs)
		want := PairBatch(ps, qs)
		if !bytes.Equal(got.Marshal(), want.Marshal()) {
			t.Fatal("G1 infinity slot disagrees with PairBatch")
		}
	})

	t.Run("g2-infinity", func(t *testing.T) {
		ps, qs := randPairBatch(t, 3)
		qs[2] = infG2
		pc := PrecomputePairBatch(ps)
		got := PairBatchPrecomputed(pc, qs)
		want := PairBatch(ps, qs)
		if !bytes.Equal(got.Marshal(), want.Marshal()) {
			t.Fatal("G2 infinity slot disagrees with PairBatch")
		}
	})

	t.Run("all-infinity", func(t *testing.T) {
		ps := []*G1{infG1, infG1}
		qs := []*G2{infG2, infG2}
		pc := PrecomputePairBatch(ps)
		got := PairBatchPrecomputed(pc, qs)
		want := PairBatch(ps, qs)
		if !bytes.Equal(got.Marshal(), want.Marshal()) {
			t.Fatal("all-infinity batch disagrees with PairBatch")
		}
	})

	t.Run("mismatched-length-panics", func(t *testing.T) {
		ps, qs := randPairBatch(t, 2)
		pc := PrecomputePairBatch(ps)
		defer func() {
			if recover() == nil {
				t.Fatal("no panic on mismatched batch length")
			}
		}()
		PairBatchPrecomputed(pc, qs[:1])
	})
}

// TestPairingPrecompConcurrent shares one handle across goroutines,
// each evaluating its own G2 batch; under -race this doubles as the
// data-race check for the shared read-only program.
func TestPairingPrecompConcurrent(t *testing.T) {
	const n = 3
	const workers = 8
	ps, _ := randPairBatch(t, n)
	pc := PrecomputePairBatch(ps)

	type job struct {
		qs   []*G2
		want []byte
	}
	jobs := make([]job, workers)
	for i := range jobs {
		_, qs := randPairBatch(t, n)
		jobs[i] = job{qs: qs, want: PairBatch(ps, qs).Marshal()}
	}

	var wg sync.WaitGroup
	bad := make([]bool, workers)
	for i := range jobs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got := PairBatchPrecomputed(pc, jobs[i].qs)
			if !bytes.Equal(got.Marshal(), jobs[i].want) {
				bad[i] = true
			}
		}(i)
	}
	wg.Wait()
	for i, b := range bad {
		if b {
			t.Fatalf("worker %d: concurrent precomputed pairing diverged", i)
		}
	}
}

// TestPrecomputeBilinearity checks e(kG, Q) = e(G, Q)^k through the
// precomputed path.
func TestPrecomputeBilinearity(t *testing.T) {
	k, p, err := RandomG1(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	_, q, err := RandomG2(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}

	pc := PrecomputePairBatch([]*G1{p})
	lhs := PairBatchPrecomputed(pc, []*G2{q})

	g := new(G1).ScalarBaseMult(big.NewInt(1))
	pcG := PrecomputePairBatch([]*G1{g})
	rhs := PairBatchPrecomputed(pcG, []*G2{q})
	rhs = new(GT).Exp(rhs, k)

	if !bytes.Equal(lhs.Marshal(), rhs.Marshal()) {
		t.Fatal("precomputed pairing is not bilinear")
	}
}
