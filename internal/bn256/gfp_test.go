package bn256

import (
	"crypto/rand"
	"math/big"
	"testing"
	"testing/quick"
)

// randGFp returns a uniformly random field element together with its
// canonical big.Int value.
func randGFp(t *testing.T) (*gfP, *big.Int) {
	t.Helper()
	n, err := rand.Int(rand.Reader, P)
	if err != nil {
		t.Fatal(err)
	}
	return gfPFromBig(n), n
}

func quickCfg() *quick.Config {
	return &quick.Config{MaxCount: 64}
}

// TestGFpMatchesBigInt cross-checks every gfP operation against the
// big.Int reference implementation on random inputs.
func TestGFpMatchesBigInt(t *testing.T) {
	for i := 0; i < 200; i++ {
		a, aBig := randGFp(t)
		b, bBig := randGFp(t)

		var sum gfP
		sum.Add(a, b)
		want := new(big.Int).Add(aBig, bBig)
		want.Mod(want, P)
		if sum.BigInt().Cmp(want) != 0 {
			t.Fatalf("add mismatch: %v + %v", aBig, bBig)
		}

		var diff gfP
		diff.Sub(a, b)
		want.Sub(aBig, bBig)
		want.Mod(want, P)
		if diff.BigInt().Cmp(want) != 0 {
			t.Fatalf("sub mismatch: %v - %v", aBig, bBig)
		}

		var prod gfP
		prod.Mul(a, b)
		want.Mul(aBig, bBig)
		want.Mod(want, P)
		if prod.BigInt().Cmp(want) != 0 {
			t.Fatalf("mul mismatch: %v * %v", aBig, bBig)
		}

		var neg gfP
		neg.Neg(a)
		want.Neg(aBig)
		want.Mod(want, P)
		if neg.BigInt().Cmp(want) != 0 {
			t.Fatalf("neg mismatch: -%v", aBig)
		}
	}
}

func TestGFpInvert(t *testing.T) {
	for i := 0; i < 50; i++ {
		a, aBig := randGFp(t)
		if aBig.Sign() == 0 {
			continue
		}
		var inv, prod gfP
		inv.Invert(a)
		prod.Mul(a, &inv)
		if !prod.Equal(&rOne) {
			t.Fatalf("a * a^-1 != 1 for a = %v", aBig)
		}
	}
	// Inverting zero yields zero (Fermat convention).
	var zero, inv gfP
	inv.Invert(&zero)
	if !inv.IsZero() {
		t.Fatal("0^-1 should be 0 under the Fermat convention")
	}
}

func TestGFpExpMatchesBigInt(t *testing.T) {
	a, aBig := randGFp(t)
	for _, k := range []int64{0, 1, 2, 3, 17, 65537} {
		var got gfP
		got.Exp(a, big.NewInt(k))
		want := new(big.Int).Exp(aBig, big.NewInt(k), P)
		if got.BigInt().Cmp(want) != 0 {
			t.Fatalf("exp mismatch at k=%d", k)
		}
	}
}

func TestGFpMarshalRoundTrip(t *testing.T) {
	for i := 0; i < 50; i++ {
		a, _ := randGFp(t)
		buf := make([]byte, 32)
		a.Marshal(buf)
		var b gfP
		if err := b.Unmarshal(buf); err != nil {
			t.Fatal(err)
		}
		if !a.Equal(&b) {
			t.Fatal("marshal round trip failed")
		}
	}
}

func TestGFpUnmarshalRejectsUnreduced(t *testing.T) {
	buf := make([]byte, 32)
	pBytes := P.Bytes()
	copy(buf[32-len(pBytes):], pBytes) // exactly p: not reduced
	var e gfP
	if err := e.Unmarshal(buf); err == nil {
		t.Fatal("unmarshal accepted p itself")
	}
	for i := range buf {
		buf[i] = 0xff
	}
	if err := e.Unmarshal(buf); err == nil {
		t.Fatal("unmarshal accepted 2^256-1")
	}
}

// TestGFpFieldAxioms verifies commutativity, associativity and
// distributivity via testing/quick over random limb patterns reduced
// into the field.
func TestGFpFieldAxioms(t *testing.T) {
	fromRaw := func(x [4]uint64) *gfP {
		n := new(big.Int)
		for i := 3; i >= 0; i-- {
			n.Lsh(n, 64)
			n.Or(n, new(big.Int).SetUint64(x[i]))
		}
		return gfPFromBig(n)
	}

	commutative := func(x, y [4]uint64) bool {
		a, b := fromRaw(x), fromRaw(y)
		var ab, ba gfP
		ab.Mul(a, b)
		ba.Mul(b, a)
		return ab.Equal(&ba)
	}
	if err := quick.Check(commutative, quickCfg()); err != nil {
		t.Error("multiplication not commutative:", err)
	}

	associative := func(x, y, z [4]uint64) bool {
		a, b, c := fromRaw(x), fromRaw(y), fromRaw(z)
		var ab, abc1, bc, abc2 gfP
		ab.Mul(a, b)
		abc1.Mul(&ab, c)
		bc.Mul(b, c)
		abc2.Mul(a, &bc)
		return abc1.Equal(&abc2)
	}
	if err := quick.Check(associative, quickCfg()); err != nil {
		t.Error("multiplication not associative:", err)
	}

	distributive := func(x, y, z [4]uint64) bool {
		a, b, c := fromRaw(x), fromRaw(y), fromRaw(z)
		var bPlusC, lhs, ab, ac, rhs gfP
		bPlusC.Add(b, c)
		lhs.Mul(a, &bPlusC)
		ab.Mul(a, b)
		ac.Mul(a, c)
		rhs.Add(&ab, &ac)
		return lhs.Equal(&rhs)
	}
	if err := quick.Check(distributive, quickCfg()); err != nil {
		t.Error("distributivity fails:", err)
	}
}
