package bn256

import (
	"math/big"
	"testing"
)

// Edge cases for the Montgomery arithmetic: values near 0 and p, where
// carry/borrow handling errors hide.
func TestGFpEdgeValues(t *testing.T) {
	one := big.NewInt(1)
	pm1 := new(big.Int).Sub(P, one)

	edges := []*big.Int{
		big.NewInt(0),
		one,
		big.NewInt(2),
		pm1,
		new(big.Int).Sub(P, big.NewInt(2)),
		new(big.Int).Rsh(P, 1), // ~p/2
	}
	for _, a := range edges {
		for _, b := range edges {
			fa, fb := gfPFromBig(a), gfPFromBig(b)

			var sum gfP
			sum.Add(fa, fb)
			want := new(big.Int).Add(a, b)
			want.Mod(want, P)
			if sum.BigInt().Cmp(want) != 0 {
				t.Fatalf("add edge case %v + %v", a, b)
			}

			var prod gfP
			prod.Mul(fa, fb)
			want.Mul(a, b)
			want.Mod(want, P)
			if prod.BigInt().Cmp(want) != 0 {
				t.Fatalf("mul edge case %v * %v", a, b)
			}

			var diff gfP
			diff.Sub(fa, fb)
			want.Sub(a, b)
			want.Mod(want, P)
			if diff.BigInt().Cmp(want) != 0 {
				t.Fatalf("sub edge case %v - %v", a, b)
			}
		}
	}

	// (p-1)^2 mod p == 1.
	fpm1 := gfPFromBig(pm1)
	var sq gfP
	sq.Square(fpm1)
	if !sq.Equal(&rOne) {
		t.Fatal("(p-1)^2 != 1")
	}

	// -0 == 0.
	var zero, negZero gfP
	negZero.Neg(&zero)
	if !negZero.IsZero() {
		t.Fatal("-0 != 0")
	}
}

func TestGFpDoubleNearP(t *testing.T) {
	// Doubling values above p/2 exercises the conditional subtraction.
	half := new(big.Int).Rsh(P, 1)
	for i := int64(0); i < 4; i++ {
		v := new(big.Int).Add(half, big.NewInt(i))
		f := gfPFromBig(v)
		var d gfP
		d.Double(f)
		want := new(big.Int).Lsh(v, 1)
		want.Mod(want, P)
		if d.BigInt().Cmp(want) != 0 {
			t.Fatalf("double edge case at p/2 + %d", i)
		}
	}
}

func TestCurvePointEqualAcrossRepresentations(t *testing.T) {
	// The same point in different Jacobian representations must compare
	// equal. 2P computed via Double (Jacobian z != 1) vs via affine
	// normalization.
	var p curvePoint
	p.Set(&curveGen)
	var d1 curvePoint
	d1.Double(&p)
	var d2 curvePoint
	d2.Set(&d1)
	d2.MakeAffine()
	if !d1.Equal(&d2) {
		t.Fatal("equality across Jacobian representations fails")
	}
	if d1.IsInfinity() {
		t.Fatal("2G is not infinity")
	}
}

func TestScalarMultZeroAndOne(t *testing.T) {
	var e G1
	e.ScalarBaseMult(big.NewInt(0))
	if !e.IsInfinity() {
		t.Fatal("0 * g != infinity")
	}
	var g G1
	g.ScalarBaseMult(big.NewInt(1))
	var e2 G1
	e2.ScalarMult(&g, big.NewInt(1))
	if !e2.Equal(&g) {
		t.Fatal("1 * g != g")
	}
	// Adding infinity to infinity.
	var inf1, inf2, sum G1
	inf1.SetInfinity()
	inf2.SetInfinity()
	sum.Add(&inf1, &inf2)
	if !sum.IsInfinity() {
		t.Fatal("infinity + infinity != infinity")
	}
}

func TestTwistGeneratorProperties(t *testing.T) {
	if !twistGen.isOnTwist() {
		t.Fatal("twist generator is off the twist")
	}
	var check twistPoint
	check.Mul(&twistGen, Order)
	if !check.IsInfinity() {
		t.Fatal("twist generator does not have order r")
	}
	// Not of small order: multiplying by small integers stays off
	// infinity.
	for k := int64(1); k <= 16; k++ {
		var e twistPoint
		e.Mul(&twistGen, big.NewInt(k))
		if e.IsInfinity() {
			t.Fatalf("twist generator has small order %d", k)
		}
	}
}

// TestPairingAgreesUnderPointAddition: e(P1 + P2, Q) = e(P1,Q) e(P2,Q),
// the homomorphism in the first argument through actual point addition
// rather than scalar arithmetic.
func TestPairingAgreesUnderPointAddition(t *testing.T) {
	k1, k2 := big.NewInt(11), big.NewInt(23)
	p1 := new(G1).ScalarBaseMult(k1)
	p2 := new(G1).ScalarBaseMult(k2)
	q := new(G2).ScalarBaseMult(big.NewInt(5))

	sum := new(G1).Add(p1, p2)
	lhs := Pair(sum, q)
	rhs := new(GT).Mul(Pair(p1, q), Pair(p2, q))
	if !lhs.Equal(rhs) {
		t.Fatal("pairing does not distribute over G1 addition")
	}
}

func TestGTUnmarshalRejectsBadLength(t *testing.T) {
	var e GT
	if err := e.Unmarshal(make([]byte, 10)); err == nil {
		t.Fatal("short GT encoding accepted")
	}
	bad := make([]byte, 384)
	for i := range bad {
		bad[i] = 0xff
	}
	if err := e.Unmarshal(bad); err == nil {
		t.Fatal("unreduced GT coefficients accepted")
	}
}
