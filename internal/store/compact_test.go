package store

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/engine"
)

// tableState snapshots the observable state of a store for
// before/after-compaction comparisons.
func tableState(t testing.TB, s *Store) (tables map[string][]byte, counters map[string]uint64) {
	t.Helper()
	tables = make(map[string][]byte)
	for _, tab := range s.Tables() {
		var buf bytes.Buffer
		if err := engine.SaveTable(&buf, tab); err != nil {
			t.Fatal(err)
		}
		tables[tab.Name] = buf.Bytes()
	}
	return tables, s.Counters()
}

func assertSameState(t *testing.T, s *Store, wantTables map[string][]byte, wantCounters map[string]uint64) {
	t.Helper()
	gotTables, gotCounters := tableState(t, s)
	if len(gotTables) != len(wantTables) {
		t.Fatalf("%d tables after compaction, want %d", len(gotTables), len(wantTables))
	}
	for name, enc := range wantTables {
		if !bytes.Equal(gotTables[name], enc) {
			t.Fatalf("table %q drifted across compaction", name)
		}
	}
	if len(gotCounters) != len(wantCounters) {
		t.Fatalf("counters = %v, want %v", gotCounters, wantCounters)
	}
	for k, v := range wantCounters {
		if gotCounters[k] != v {
			t.Fatalf("counter %q = %d, want %d", k, gotCounters[k], v)
		}
	}
}

// TestCompactFoldsManifest: an explicit Compact folds a manifest full
// of overwrites, deletions and counter checkpoints down to one record
// per live table plus the latest checkpoint, preserving every byte of
// live state across the rewrite and a subsequent recovery.
func TestCompactFoldsManifest(t *testing.T) {
	dir := t.TempDir()
	c := newTestClient(t)
	s := mustOpen(t, dir)

	mustCommit(t, s, encTable(t, c, "keep", true, "r1", "r2"))
	mustCommit(t, s, encTable(t, c, "gone", false, "x"))
	for i := 0; i < 5; i++ {
		mustCommit(t, s, encTable(t, c, "churn", false, "v", "v", "v"))
		if err := s.RecordCounters(map[string]uint64{"keep": uint64(i + 1), "churn": 7}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Delete("gone"); err != nil {
		t.Fatal(err)
	}
	wantTables, wantCounters := tableState(t, s)
	before := s.RecordCount()
	if before != 13 {
		t.Fatalf("RecordCount = %d, want 13", before)
	}

	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	// 2 live tables + 1 counters checkpoint.
	if got := s.RecordCount(); got != 3 {
		t.Fatalf("RecordCount after Compact = %d, want 3", got)
	}
	assertSameState(t, s, wantTables, wantCounters)

	// The compacted manifest must still accept appends, and everything
	// must recover from disk.
	mustCommit(t, s, encTable(t, c, "late", true, "z"))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := mustOpen(t, dir)
	if len(s2.Damaged()) != 0 {
		t.Fatalf("damage after compaction: %v", s2.Damaged())
	}
	if got := s2.RecordCount(); got != 4 {
		t.Fatalf("RecordCount after reopen = %d, want 4", got)
	}
	tableByName(t, s2, "late")
	wantTables["late"], _ = func() ([]byte, error) {
		var buf bytes.Buffer
		err := engine.SaveTable(&buf, tableByName(t, s2, "late"))
		return buf.Bytes(), err
	}()
	assertSameState(t, s2, wantTables, wantCounters)
}

// TestOpenAutoCompacts: Open rewrites a record-heavy manifest (the
// one-checkpoint-per-join growth pattern) without changing any live
// state.
func TestOpenAutoCompacts(t *testing.T) {
	dir := t.TempDir()
	c := newTestClient(t)
	s := mustOpen(t, dir)
	mustCommit(t, s, encTable(t, c, "T", true, "p1", "p2"))
	for i := 0; i < compactThreshold+10; i++ {
		if err := s.RecordCounters(map[string]uint64{"T": uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	wantTables, wantCounters := tableState(t, s)
	if s.RecordCount() <= compactThreshold {
		t.Fatalf("test setup too small: %d records", s.RecordCount())
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, dir)
	if got := s2.RecordCount(); got != 2 { // 1 table + 1 checkpoint
		t.Fatalf("RecordCount after auto-compaction = %d, want 2", got)
	}
	assertSameState(t, s2, wantTables, wantCounters)
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	// And the compacted directory recovers cleanly again.
	s3 := mustOpen(t, dir)
	if len(s3.Damaged()) != 0 {
		t.Fatalf("damage after auto-compaction: %v", s3.Damaged())
	}
	assertSameState(t, s3, wantTables, wantCounters)
}

// TestCompactRefusesDamage: compacting a store that recovered damaged
// tables would erase their manifest records and let the sweep reclaim
// the forensic snapshots, so Compact must refuse.
func TestCompactRefusesDamage(t *testing.T) {
	dir := t.TempDir()
	c := newTestClient(t)
	s := mustOpen(t, dir)
	mustCommit(t, s, encTable(t, c, "fine", false, "ok"))
	mustCommit(t, s, encTable(t, c, "broken", false, "soon gone"))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Corrupt the second table's snapshot so recovery marks it damaged.
	snaps, err := filepath.Glob(filepath.Join(dir, tablesDir, "*.snap"))
	if err != nil || len(snaps) != 2 {
		t.Fatalf("snapshots = %v, %v", snaps, err)
	}
	data, err := os.ReadFile(snaps[1])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(snaps[1], data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, dir)
	if len(s2.Damaged()) == 0 {
		t.Fatal("corrupted snapshot not reported as damage")
	}
	if err := s2.Compact(); err == nil || !strings.Contains(err.Error(), "damaged") {
		t.Fatalf("Compact on damaged store: err = %v", err)
	}
	// The forensic snapshot must still be on disk.
	if _, err := os.Stat(snaps[1]); err != nil {
		t.Fatalf("forensic snapshot gone: %v", err)
	}
}

// TestCompactionTornMidRewrite is the crash-injection case: a
// compaction that died before its atomic rename leaves a staging file
// (possibly torn mid-record) next to the untouched old manifest. Open
// must recover everything from the old manifest and discard the
// staging litter.
func TestCompactionTornMidRewrite(t *testing.T) {
	dir := t.TempDir()
	c := newTestClient(t)
	s := mustOpen(t, dir)
	mustCommit(t, s, encTable(t, c, "A", true, "a1", "a2"))
	mustCommit(t, s, encTable(t, c, "B", false, "b1"))
	if err := s.RecordCounters(map[string]uint64{"A": 3, "B": 1}); err != nil {
		t.Fatal(err)
	}
	wantTables, wantCounters := tableState(t, s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate the torn rewrite: a prefix of the real manifest (cut
	// mid-record) under the staging name. If Open mistook it for the
	// manifest it would see a torn tail and half the tables.
	manifest, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		t.Fatal(err)
	}
	torn := manifest[:len(manifest)/2]
	if err := os.WriteFile(filepath.Join(dir, compactName), torn, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, dir)
	if len(s2.Damaged()) != 0 {
		t.Fatalf("torn staging file reported as damage: %v", s2.Damaged())
	}
	assertSameState(t, s2, wantTables, wantCounters)
	if _, err := os.Stat(filepath.Join(dir, compactName)); !os.IsNotExist(err) {
		t.Fatalf("staging litter survived Open: %v", err)
	}
	// The recovered store must still be writable (the staging sweep
	// must not have confused the lock handoff).
	mustCommit(t, s2, encTable(t, c, "C", false, "c1"))
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	s3 := mustOpen(t, dir)
	tableByName(t, s3, "C")
}
