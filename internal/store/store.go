// Package store persists a server's ciphertext table set so the DBaaS
// deployment of Section 2 survives restarts: the server holds clients'
// encrypted tables long-term and answers a series of join queries, so a
// process restart must not lose an upload or its SSE index.
//
// On-disk layout under one data directory:
//
//	<dir>/MANIFEST          append-only record log (the WAL)
//	<dir>/tables/<seq>.snap one snapshot per committed table version
//	                        (engine.SaveTable encoding)
//
// Snapshots carry only public values — ciphertexts, sealed payloads and
// the SSE index — so the data directory has the same security posture
// as the running server's memory: safe on untrusted storage.
//
// Commit protocol. A table version is written to a temporary file,
// fsynced, atomically renamed to its final seq-numbered name, and only
// then referenced by a manifest record carrying its SHA-256 digest; the
// manifest append is itself fsynced before Commit returns. A crash at
// any point therefore leaves either (a) a stray temp file, (b) an
// orphan snapshot no record references, or (c) a torn manifest tail —
// all of which Open detects and discards. A table is durable exactly
// when its manifest record is.
//
// Manifest framing. Each record is a self-contained gob payload wrapped
// as: 4-byte big-endian payload length | payload | 4-byte big-endian
// CRC-32C of the payload. Replay stops at the first record that is
// truncated or fails its CRC; the tail from that point is reported as
// damage and truncated away so future appends start from a clean
// prefix.
//
// Recovery rules. Open replays the manifest (last record wins per
// table), then verifies every live snapshot against its recorded
// digest and decodes it. A snapshot that is missing, fails its digest,
// or fails to decode makes its table *damaged*: the table is skipped —
// never served — and reported through Damaged; the broken file is kept
// on disk for forensics. Stray temp files and orphan snapshots are
// removed.
package store

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"syscall"

	"repro/internal/engine"
	"repro/internal/metrics"
)

const (
	manifestName = "MANIFEST"
	// compactName is the staging file of a manifest compaction; a crash
	// mid-compaction leaves it behind and Open discards it (the old
	// MANIFEST is still authoritative until the atomic rename).
	compactName = "MANIFEST.compact"
	tablesDir   = "tables"
	jobsDir     = "jobs"
	tmpPrefix   = ".tmp-"

	// maxRecordSize bounds one manifest record so a corrupt length
	// header cannot force an unbounded allocation during replay.
	// Records hold metadata only (never row data), so 1 MiB is generous.
	maxRecordSize = 1 << 20

	// compactThreshold is the replayed-record count past which Open
	// rewrites the manifest: counter checkpoints append one record per
	// join, so a busy server's manifest grows without bound until a
	// compaction folds it to one record per live table plus the latest
	// checkpoint.
	compactThreshold = 64
)

// ErrClosed is returned by operations on a closed store.
var ErrClosed = errors.New("store: closed")

// errTorn marks a manifest tail that ends mid-record or fails its CRC.
var errTorn = errors.New("torn record")

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Record operations. Values are part of the on-disk format.
const (
	opCommit    uint8 = 1 // table version committed
	opDelete    uint8 = 2 // table deleted
	opCounters  uint8 = 3 // per-table leakage counters checkpoint
	opJob       uint8 = 4 // completed async job result committed
	opJobDelete uint8 = 5 // job result reaped
)

// record is the gob image of one manifest entry. Every record is
// encoded with a fresh encoder so each is self-contained and replay can
// stop at any boundary.
// The Job* fields (gob-additive: absent in manifests written by older
// versions) describe one completed async job: Snapshot/Digest/Rows are
// reused for the job's spool file under jobs/ (Snapshot empty for a
// failed job, which has no result rows to spool).
type record struct {
	Seq      uint64
	Op       uint8
	Table    string            // opCommit, opDelete
	Snapshot string            // opCommit: file name under tables/; opJob: under jobs/
	Digest   []byte            // opCommit, opJob: SHA-256 of the snapshot/spool file
	Rows     int               // opCommit, opJob
	Indexed  bool              // opCommit
	Counters map[string]uint64 // opCounters: last record wins
	Job      string            // opJob, opJobDelete: job ID
	JobA     string            // opJob: join operand tables
	JobB     string            // opJob
	JobErr   string            // opJob: failure message of a failed job
	Pairs    int               // opJob: sigma(q) of the completed join
	Finished int64             // opJob: completion time, Unix seconds
}

// Damage describes one table (or manifest region) Open found broken and
// skipped. Recovery never panics on damage and never serves a damaged
// table; it recovers the survivors and reports the rest here.
type Damage struct {
	Table    string // empty for manifest-level damage
	Snapshot string // file name under tables/, when known
	Reason   string
}

func (d Damage) String() string {
	if d.Table == "" {
		return d.Reason
	}
	return fmt.Sprintf("table %q (%s): %s", d.Table, d.Snapshot, d.Reason)
}

// entry is the live manifest state of one table.
type entry struct {
	snapshot string
	digest   []byte
}

// Store is a durable table set backed by one data directory. It is safe
// for concurrent use; all mutating operations are serialized and fsync
// before returning, so a table (or counter checkpoint) acked by a call
// survives any later crash.
type Store struct {
	dir string

	mu       sync.Mutex
	manifest *os.File
	seq      uint64
	// records counts the manifest's framed records (replayed + appended
	// since), the statistic the auto-compaction trigger watches.
	records  int
	entries  map[string]entry
	tables   map[string]*engine.EncryptedTable
	jobs     map[string]jobEntry
	counters map[string]uint64
	damaged  []Damage
	// appendErr is sticky: once an append fails mid-write the manifest
	// may have a torn tail, and appending after it would bury valid
	// records behind garbage replay cannot cross.
	appendErr error

	// Byte counters for the durability write paths; nil-safe no-ops
	// until Instrument attaches registered counters.
	snapshotBytes *metrics.Counter
	walBytes      *metrics.Counter
}

// Instrument registers the store's write-volume counters in reg:
// sj_store_snapshot_bytes_total (table snapshot bytes written) and
// sj_store_wal_bytes_total (manifest record bytes appended). Call
// before serving traffic; an uninstrumented store records nothing.
func (s *Store) Instrument(reg *metrics.Registry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.snapshotBytes = metrics.NewCounter(reg, "sj_store_snapshot_bytes_total", "table snapshot bytes written to the data dir")
	s.walBytes = metrics.NewCounter(reg, "sj_store_wal_bytes_total", "manifest (WAL) record bytes appended")
}

// Open creates or recovers a store in dir, re-registering every durable
// table. It never fails on damaged tables or a torn manifest tail —
// those are skipped and reported by Damaged — only on environmental
// errors (unusable directory, unreadable manifest).
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(filepath.Join(dir, tablesDir), 0o755); err != nil {
		return nil, fmt.Errorf("store: creating layout: %w", err)
	}
	if err := os.MkdirAll(filepath.Join(dir, jobsDir), 0o755); err != nil {
		return nil, fmt.Errorf("store: creating layout: %w", err)
	}
	mf, err := os.OpenFile(filepath.Join(dir, manifestName), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: opening manifest: %w", err)
	}
	// One process per data directory: two writers appending at their
	// own remembered offsets would interleave records into garbage the
	// next recovery truncates away. The advisory lock lives on the
	// manifest's open file description, so it dies with the process —
	// no stale lock file survives a crash.
	if err := syscall.Flock(int(mf.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		mf.Close()
		return nil, fmt.Errorf("store: data dir %s is locked by another process: %w", dir, err)
	}
	s := &Store{
		dir:      dir,
		manifest: mf,
		entries:  make(map[string]entry),
		tables:   make(map[string]*engine.EncryptedTable),
		jobs:     make(map[string]jobEntry),
		counters: make(map[string]uint64),
	}
	// A leftover compaction staging file means a compaction crashed
	// before its atomic rename: the old MANIFEST (locked above) is
	// still authoritative, so the partial rewrite is litter.
	os.Remove(filepath.Join(dir, compactName))
	if err := s.replay(); err != nil {
		mf.Close()
		return nil, err
	}
	s.loadTables()
	s.sweep()
	// Fold a record-heavy manifest down to its live state (Compact
	// itself refuses when recovery found damage — compaction would drop
	// the damaged tables' records, and with them the forensic trail
	// sweep preserves). Best-effort — a failed compaction leaves the
	// old manifest authoritative and the store fully usable.
	if s.records > compactThreshold {
		_ = s.Compact()
	}
	return s, nil
}

// replay reads the manifest, applying records in order (last wins per
// table). A torn tail is truncated away so the next append starts at a
// clean record boundary.
func (s *Store) replay() error {
	br := bufio.NewReader(s.manifest)
	var good int64 // offset just past the last intact record
	for {
		rec, n, err := readRecord(br)
		if err == io.EOF {
			break
		}
		if err != nil {
			s.damaged = append(s.damaged, Damage{
				Reason: fmt.Sprintf("manifest: %v at offset %d; discarding tail", err, good),
			})
			if err := s.manifest.Truncate(good); err != nil {
				return fmt.Errorf("store: truncating torn manifest tail: %w", err)
			}
			break
		}
		good += n
		s.records++
		if rec.Seq > s.seq {
			s.seq = rec.Seq
		}
		switch rec.Op {
		case opCommit:
			s.entries[rec.Table] = entry{snapshot: rec.Snapshot, digest: rec.Digest}
		case opDelete:
			delete(s.entries, rec.Table)
		case opCounters:
			counters := make(map[string]uint64, len(rec.Counters))
			for k, v := range rec.Counters {
				counters[k] = v
			}
			s.counters = counters
		case opJob:
			s.jobs[rec.Job] = jobEntry{
				snapshot: rec.Snapshot,
				digest:   rec.Digest,
				meta: JobMeta{
					ID:            rec.Job,
					TableA:        rec.JobA,
					TableB:        rec.JobB,
					Rows:          rec.Rows,
					RevealedPairs: rec.Pairs,
					Err:           rec.JobErr,
					FinishedUnix:  rec.Finished,
				},
			}
		case opJobDelete:
			delete(s.jobs, rec.Job)
		default:
			// A record from a future format version: skip it rather than
			// refusing to recover the tables this version understands.
			s.damaged = append(s.damaged, Damage{
				Reason: fmt.Sprintf("manifest: unknown record op %d (seq %d) skipped", rec.Op, rec.Seq),
			})
		}
	}
	if _, err := s.manifest.Seek(good, io.SeekStart); err != nil {
		return fmt.Errorf("store: seeking manifest end: %w", err)
	}
	return nil
}

// readRecord decodes one framed manifest record, returning the bytes it
// consumed. Any mid-record end of stream or CRC failure yields errTorn.
func readRecord(br *bufio.Reader) (*record, int64, error) {
	var hdr [4]byte
	if n, err := io.ReadFull(br, hdr[:]); err != nil {
		if n == 0 && err == io.EOF {
			return nil, 0, io.EOF // clean record boundary
		}
		return nil, 0, fmt.Errorf("%w: truncated length header", errTorn)
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 || n > maxRecordSize {
		return nil, 0, fmt.Errorf("%w: implausible record length %d", errTorn, n)
	}
	body := make([]byte, n+4) // payload + CRC trailer
	if _, err := io.ReadFull(br, body); err != nil {
		return nil, 0, fmt.Errorf("%w: truncated record body", errTorn)
	}
	payload, trailer := body[:n], body[n:]
	if crc32.Checksum(payload, crcTable) != binary.BigEndian.Uint32(trailer) {
		return nil, 0, fmt.Errorf("%w: record checksum mismatch", errTorn)
	}
	var rec record
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&rec); err != nil {
		return nil, 0, fmt.Errorf("%w: undecodable record: %v", errTorn, err)
	}
	return &rec, int64(len(hdr)) + int64(len(body)), nil
}

// loadTables verifies and decodes every live snapshot; failures demote
// the table to damaged instead of aborting recovery.
func (s *Store) loadTables() {
	for _, name := range sortedKeys(s.entries) {
		e := s.entries[name]
		path := filepath.Join(s.dir, tablesDir, e.snapshot)
		data, err := os.ReadFile(path)
		switch {
		case errors.Is(err, fs.ErrNotExist):
			s.damage(name, e.snapshot, "snapshot missing")
			continue
		case err != nil:
			s.damage(name, e.snapshot, fmt.Sprintf("reading snapshot: %v", err))
			continue
		}
		if sum := sha256.Sum256(data); !bytes.Equal(sum[:], e.digest) {
			s.damage(name, e.snapshot, "snapshot checksum mismatch")
			continue
		}
		t, err := engine.LoadTable(bytes.NewReader(data))
		if err != nil {
			s.damage(name, e.snapshot, fmt.Sprintf("decoding snapshot: %v", err))
			continue
		}
		if t.Name != name {
			s.damage(name, e.snapshot, fmt.Sprintf("snapshot holds table %q", t.Name))
			continue
		}
		s.tables[name] = t
	}
}

// damage records one broken table and withdraws it from the live set so
// it is never served. Its snapshot stays on disk for forensics (sweep
// skips files referenced by damaged entries too).
func (s *Store) damage(name, snapshot, reason string) {
	s.damaged = append(s.damaged, Damage{Table: name, Snapshot: snapshot, Reason: reason})
	delete(s.tables, name)
	// Keep the entry out of entries so a later Commit of the same name
	// heals the table, but remember the file as referenced via damaged.
	delete(s.entries, name)
}

// sweep removes crash litter from tables/ and jobs/: temp files of
// interrupted writes and orphan snapshots/spools whose commit record
// never became durable (or whose table/job was since overwritten,
// deleted or reaped).
func (s *Store) sweep() {
	referenced := make(map[string]bool, len(s.entries)+len(s.damaged))
	for _, e := range s.entries {
		referenced[e.snapshot] = true
	}
	for _, d := range s.damaged {
		if d.Snapshot != "" {
			referenced[d.Snapshot] = true
		}
	}
	s.sweepDir(tablesDir, referenced)
	jobRefs := make(map[string]bool, len(s.jobs))
	for _, je := range s.jobs {
		if je.snapshot != "" {
			jobRefs[je.snapshot] = true
		}
	}
	s.sweepDir(jobsDir, jobRefs)
}

// sweepDir removes every file under dir that is neither referenced nor
// anything but temp-write litter. Best-effort cleanup.
func (s *Store) sweepDir(dir string, referenced map[string]bool) {
	ents, err := os.ReadDir(filepath.Join(s.dir, dir))
	if err != nil {
		return
	}
	for _, de := range ents {
		name := de.Name()
		if strings.HasPrefix(name, tmpPrefix) || !referenced[name] {
			os.Remove(filepath.Join(s.dir, dir, name))
		}
	}
}

// Dir returns the store's data directory.
func (s *Store) Dir() string { return s.dir }

// Tables returns the recovered (and since committed) live tables,
// sorted by name.
func (s *Store) Tables() []*engine.EncryptedTable {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*engine.EncryptedTable, 0, len(s.tables))
	for _, name := range sortedKeys(s.tables) {
		out = append(out, s.tables[name])
	}
	return out
}

// Counters returns the last durable leakage-counter checkpoint.
func (s *Store) Counters() map[string]uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]uint64, len(s.counters))
	for k, v := range s.counters {
		out[k] = v
	}
	return out
}

// Damaged reports what Open found broken and skipped. The slice is
// fixed at Open time.
func (s *Store) Damaged() []Damage {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Damage(nil), s.damaged...)
}

// Commit makes one table version durable, atomically replacing any
// previous version of the same name: the new snapshot is fully on disk
// and fsynced before the manifest record referencing it is appended,
// and the old version's snapshot is removed only after that append
// succeeds. When Commit returns nil the table survives any crash; when
// it returns an error the previous version (if any) is still intact.
func (s *Store) Commit(t *engine.EncryptedTable) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.usable(); err != nil {
		return err
	}
	seq := s.seq + 1
	snap := fmt.Sprintf("%016x.snap", seq)
	tmp := filepath.Join(s.dir, tablesDir, tmpPrefix+snap)
	final := filepath.Join(s.dir, tablesDir, snap)
	digest, snapBytes, err := writeSnapshot(tmp, t)
	if err != nil {
		return err
	}
	s.snapshotBytes.Add(uint64(snapBytes))
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: installing snapshot: %w", err)
	}
	if err := syncDir(filepath.Join(s.dir, tablesDir)); err != nil {
		os.Remove(final)
		return err
	}
	rec := &record{
		Seq: seq, Op: opCommit,
		Table: t.Name, Snapshot: snap, Digest: digest,
		Rows: len(t.Rows), Indexed: t.Index != nil,
	}
	if err := s.append(rec); err != nil {
		// Leave the snapshot in place: a failed append (in particular a
		// failed Sync) does not prove the record missed the disk, and if
		// it did land, its table must find this file on the next
		// recovery — removing it here could destroy the only copy while
		// the overwritten version's snapshot gets swept as unreferenced.
		// A record that never became durable makes this file the orphan
		// instead, and the sweep reclaims it.
		return err
	}
	s.seq = seq
	if old, ok := s.entries[t.Name]; ok && old.snapshot != snap {
		os.Remove(filepath.Join(s.dir, tablesDir, old.snapshot))
	}
	s.entries[t.Name] = entry{snapshot: snap, digest: digest}
	s.tables[t.Name] = t
	return nil
}

// Delete durably removes a table: the deletion record is fsynced before
// the snapshot is unlinked, so a crash in between leaves only an orphan
// file for the next Open's sweep.
func (s *Store) Delete(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.usable(); err != nil {
		return err
	}
	e, ok := s.entries[name]
	if !ok {
		return fmt.Errorf("store: unknown table %q", name)
	}
	seq := s.seq + 1
	if err := s.append(&record{Seq: seq, Op: opDelete, Table: name}); err != nil {
		return err
	}
	s.seq = seq
	os.Remove(filepath.Join(s.dir, tablesDir, e.snapshot))
	delete(s.entries, name)
	delete(s.tables, name)
	return nil
}

// RecordCounters checkpoints the per-table leakage counters (revealed
// equality pairs touching each table, see engine.LeakageCounters) so
// the audit state survives restarts alongside the tables it describes.
// The whole map is written each time; replay keeps the last checkpoint.
func (s *Store) RecordCounters(counters map[string]uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.usable(); err != nil {
		return err
	}
	cp := make(map[string]uint64, len(counters))
	for k, v := range counters {
		cp[k] = v
	}
	seq := s.seq + 1
	if err := s.append(&record{Seq: seq, Op: opCounters, Counters: cp}); err != nil {
		return err
	}
	s.seq = seq
	s.counters = cp
	return nil
}

// Close releases the manifest. Further mutating calls fail with
// ErrClosed.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.manifest == nil {
		return nil
	}
	err := s.manifest.Close()
	s.manifest = nil
	return err
}

// usable gates mutating operations: the store must be open and must not
// have a possibly-torn manifest tail from an earlier failed append.
func (s *Store) usable() error {
	if s.manifest == nil {
		return ErrClosed
	}
	if s.appendErr != nil {
		return fmt.Errorf("store: manifest disabled after failed append: %w", s.appendErr)
	}
	return nil
}

// append writes one framed record and fsyncs the manifest. A failure is
// sticky — the tail may be torn, so no further appends are accepted.
func (s *Store) append(rec *record) error {
	b, err := encodeRecord(rec)
	if err != nil {
		return err
	}
	if _, err := s.manifest.Write(b); err != nil {
		s.appendErr = err
		return fmt.Errorf("store: appending manifest record: %w", err)
	}
	if err := s.manifest.Sync(); err != nil {
		s.appendErr = err
		return fmt.Errorf("store: syncing manifest: %w", err)
	}
	s.walBytes.Add(uint64(len(b)))
	s.records++
	return nil
}

// encodeRecord frames one record the way append writes it: length
// prefix, gob payload, CRC-32C trailer.
func encodeRecord(rec *record) ([]byte, error) {
	var buf bytes.Buffer
	buf.Write([]byte{0, 0, 0, 0}) // length placeholder
	if err := gob.NewEncoder(&buf).Encode(rec); err != nil {
		return nil, fmt.Errorf("store: encoding manifest record: %w", err)
	}
	b := buf.Bytes()
	payload := b[4:]
	if len(payload) > maxRecordSize {
		return nil, fmt.Errorf("store: manifest record of %d bytes exceeds limit", len(payload))
	}
	binary.BigEndian.PutUint32(b[:4], uint32(len(payload)))
	var trailer [4]byte
	binary.BigEndian.PutUint32(trailer[:], crc32.Checksum(payload, crcTable))
	return append(b, trailer[:]...), nil
}

// RecordCount reports the number of framed records currently in the
// manifest (replayed at Open plus appended since).
func (s *Store) RecordCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.records
}

// Compact rewrites the manifest to its live state — one commit record
// per live table plus one leakage-counter checkpoint — discarding the
// history of overwrites, deletions and stale checkpoints that grow it
// one record per join. The rewrite is crash-safe: the new manifest is
// staged under MANIFEST.compact, fsynced, and atomically renamed over
// MANIFEST; a crash at any point leaves either the old manifest intact
// (plus staging litter Open discards) or the new one fully in place.
// The staging file's lock is taken before the rename, so the directory
// never has a moment where a second process could claim it.
//
// Compaction is refused while Damaged() is non-empty: damaged tables
// have no live entry, so rewriting would erase their records and let
// the next recovery sweep their snapshots — destroying both the
// startup damage report and the forensic evidence. Heal the damage
// (re-commit the tables) or clear it out of band first.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.usable(); err != nil {
		return err
	}
	if len(s.damaged) > 0 {
		return fmt.Errorf("store: refusing to compact with %d damaged table(s)/regions; compaction would erase the forensic trail", len(s.damaged))
	}
	path := filepath.Join(s.dir, compactName)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: staging compacted manifest: %w", err)
	}
	abort := func(e error) error {
		f.Close()
		os.Remove(path)
		return e
	}
	// Lock the staging file NOW: after the rename below it is the
	// manifest, and a successor process must find it locked from the
	// first instant it exists under the MANIFEST name.
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		return abort(fmt.Errorf("store: locking compacted manifest: %w", err))
	}
	seq := s.seq
	records := 0
	for _, name := range sortedKeys(s.entries) {
		e := s.entries[name]
		seq++
		b, err := encodeRecord(&record{
			Seq: seq, Op: opCommit,
			Table: name, Snapshot: e.snapshot, Digest: e.digest,
			Rows: len(s.tables[name].Rows), Indexed: s.tables[name].Index != nil,
		})
		if err != nil {
			return abort(err)
		}
		if _, err := f.Write(b); err != nil {
			return abort(fmt.Errorf("store: writing compacted manifest: %w", err))
		}
		records++
	}
	for _, id := range sortedKeys(s.jobs) {
		je := s.jobs[id]
		seq++
		b, err := encodeRecord(jobRecord(seq, je))
		if err != nil {
			return abort(err)
		}
		if _, err := f.Write(b); err != nil {
			return abort(fmt.Errorf("store: writing compacted manifest: %w", err))
		}
		records++
	}
	if len(s.counters) > 0 {
		seq++
		cp := make(map[string]uint64, len(s.counters))
		for k, v := range s.counters {
			cp[k] = v
		}
		b, err := encodeRecord(&record{Seq: seq, Op: opCounters, Counters: cp})
		if err != nil {
			return abort(err)
		}
		if _, err := f.Write(b); err != nil {
			return abort(fmt.Errorf("store: writing compacted manifest: %w", err))
		}
		records++
	}
	if err := f.Sync(); err != nil {
		return abort(fmt.Errorf("store: syncing compacted manifest: %w", err))
	}
	if err := os.Rename(path, filepath.Join(s.dir, manifestName)); err != nil {
		return abort(fmt.Errorf("store: installing compacted manifest: %w", err))
	}
	if err := syncDir(s.dir); err != nil {
		// The rename happened but may not be durable; future appends go
		// to the new file either way (both outcomes hold identical live
		// state), so just surface the error.
		s.manifest.Close()
		s.manifest = f
		s.seq = seq
		s.records = records
		return err
	}
	// Swap the handles: the old inode is unlinked and its lock dies
	// with the close; f holds the lock on the live manifest.
	s.manifest.Close()
	s.manifest = f
	s.seq = seq
	s.records = records
	return nil
}

// countingWriter counts bytes passing through, for the snapshot-bytes
// metric (hashed and counted during the write, never read back).
type countingWriter struct {
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	c.n += int64(len(p))
	return len(p), nil
}

// writeSnapshot serializes a table to path, fsyncs it, and returns the
// SHA-256 of the written bytes along with their count — both computed
// during the write, so the snapshot is never read back.
func writeSnapshot(path string, t *engine.EncryptedTable) ([]byte, int64, error) {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, 0, fmt.Errorf("store: creating snapshot: %w", err)
	}
	h := sha256.New()
	var cw countingWriter
	if err := engine.SaveTable(io.MultiWriter(f, h, &cw), t); err != nil {
		f.Close()
		os.Remove(path)
		return nil, 0, fmt.Errorf("store: writing snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(path)
		return nil, 0, fmt.Errorf("store: syncing snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(path)
		return nil, 0, fmt.Errorf("store: closing snapshot: %w", err)
	}
	return h.Sum(nil), cw.n, nil
}

// syncDir fsyncs a directory so a just-renamed entry is durable.
func syncDir(path string) error {
	d, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("store: syncing directory: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("store: syncing directory: %w", err)
	}
	return nil
}

// sortedKeys returns a map's keys in ascending order, for deterministic
// recovery and listing order.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
