package store

import (
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/internal/engine"
)

// Crash-injection suite: each test damages the on-disk state the way a
// torn write, bit rot, or lost file would, then requires Open to
// recover every surviving table and *report* — never panic on, never
// serve — the damaged ones.

// commitTwo seeds a data dir with tables T1 and T2 (committed in that
// order) and returns their encrypted versions.
func commitTwo(t *testing.T, dir string) (t1, t2 *engine.EncryptedTable) {
	t.Helper()
	c := newTestClient(t)
	t1 = encTable(t, c, "T1", true, "one-a", "one-b")
	t2 = encTable(t, c, "T2", true, "two-a", "two-b", "two-c")
	s := mustOpen(t, dir)
	mustCommit(t, s, t1)
	mustCommit(t, s, t2)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	return t1, t2
}

// snapshotOf returns the snapshot file of the n-th commit (0-based):
// snapshot names are ascending sequence numbers, so sorting recovers
// commit order.
func snapshotOf(t *testing.T, dir string, n int) string {
	t.Helper()
	files := snapshotFiles(t, dir)
	sort.Strings(files)
	if n >= len(files) {
		t.Fatalf("want snapshot %d, have %v", n, files)
	}
	return filepath.Join(dir, tablesDir, files[n])
}

func assertDamagedTable(t *testing.T, s *Store, table, reasonSub string) {
	t.Helper()
	for _, d := range s.Damaged() {
		if d.Table == table && strings.Contains(d.Reason, reasonSub) {
			return
		}
	}
	t.Fatalf("no damage report for table %q containing %q; got %v", table, reasonSub, s.Damaged())
}

// TestTruncatedManifestEntry: a manifest that ends mid-record (torn
// write at crash) loses exactly the torn commit; the earlier table
// survives and the tail damage is reported. The truncated tail must
// also not poison later appends.
func TestTruncatedManifestEntry(t *testing.T) {
	dir := t.TempDir()
	t1, _ := commitTwo(t, dir)
	manifest := filepath.Join(dir, manifestName)
	fi, err := os.Stat(manifest)
	if err != nil {
		t.Fatal(err)
	}
	// Chop into the middle of the last record (T2's commit).
	if err := os.Truncate(manifest, fi.Size()-3); err != nil {
		t.Fatal(err)
	}

	s := mustOpen(t, dir)
	tables := s.Tables()
	if len(tables) != 1 || tables[0].Name != "T1" {
		t.Fatalf("recovered %d tables, want just T1", len(tables))
	}
	sameTable(t, tables[0], t1)
	if len(s.Damaged()) != 1 || !strings.Contains(s.Damaged()[0].Reason, "manifest") {
		t.Fatalf("damage = %v, want one manifest-tail report", s.Damaged())
	}
	// T2's snapshot lost its record; the sweep must have reclaimed it.
	if files := snapshotFiles(t, dir); len(files) != 1 {
		t.Fatalf("snapshots after torn-tail recovery: %v, want 1", files)
	}

	// The store stays writable: commit something new and recover clean.
	c := newTestClient(t)
	t3 := encTable(t, c, "T3", false, "three")
	mustCommit(t, s, t3)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := mustOpen(t, dir)
	assertNoDamage(t, s2)
	if len(s2.Tables()) != 2 {
		t.Fatalf("recovered %d tables, want T1+T3", len(s2.Tables()))
	}
	sameTable(t, tableByName(t, s2, "T3"), t3)
}

// TestCorruptSnapshot: a flipped byte in a snapshot fails the digest
// check; the table is reported damaged and skipped, its file kept for
// forensics, and the intact table still served.
func TestCorruptSnapshot(t *testing.T) {
	dir := t.TempDir()
	t1, _ := commitTwo(t, dir)
	victim := snapshotOf(t, dir, 1) // T2: second commit
	data, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(victim, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s := mustOpen(t, dir)
	tables := s.Tables()
	if len(tables) != 1 || tables[0].Name != "T1" {
		t.Fatalf("recovered %d tables, want just T1", len(tables))
	}
	sameTable(t, tables[0], t1)
	assertDamagedTable(t, s, "T2", "checksum")
	if _, err := os.Stat(victim); err != nil {
		t.Fatalf("corrupt snapshot was removed, want it kept for forensics: %v", err)
	}
}

// TestMissingSnapshot: a manifest record whose snapshot file is gone
// yields a damage report, not a panic or a phantom table.
func TestMissingSnapshot(t *testing.T) {
	dir := t.TempDir()
	t1, _ := commitTwo(t, dir)
	if err := os.Remove(snapshotOf(t, dir, 1)); err != nil {
		t.Fatal(err)
	}

	s := mustOpen(t, dir)
	tables := s.Tables()
	if len(tables) != 1 || tables[0].Name != "T1" {
		t.Fatalf("recovered %d tables, want just T1", len(tables))
	}
	sameTable(t, tables[0], t1)
	assertDamagedTable(t, s, "T2", "missing")
}

// TestRecommitHealsDamage: committing a fresh version of a damaged
// table brings it back; the next recovery is clean and the corrupt
// snapshot is reclaimed once nothing references it.
func TestRecommitHealsDamage(t *testing.T) {
	dir := t.TempDir()
	commitTwo(t, dir)
	victim := snapshotOf(t, dir, 1)
	if err := os.Remove(victim); err != nil {
		t.Fatal(err)
	}

	s := mustOpen(t, dir)
	assertDamagedTable(t, s, "T2", "missing")
	c := newTestClient(t)
	healed := encTable(t, c, "T2", true, "two-again")
	mustCommit(t, s, healed)
	sameTable(t, tableByName(t, s, "T2"), healed)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, dir)
	assertNoDamage(t, s2)
	if len(s2.Tables()) != 2 {
		t.Fatalf("recovered %d tables, want 2", len(s2.Tables()))
	}
	sameTable(t, tableByName(t, s2, "T2"), healed)
}

// TestSweepRemovesCrashLitter: stray temp files (interrupted snapshot
// writes) and orphan snapshots (renamed but never referenced by a
// durable record) are cleaned up by Open without touching live data.
func TestSweepRemovesCrashLitter(t *testing.T) {
	dir := t.TempDir()
	commitTwo(t, dir)
	litter := []string{
		filepath.Join(dir, tablesDir, tmpPrefix+"crashed"),
		filepath.Join(dir, tablesDir, "ffffffffffffffff.snap"), // orphan: no record
	}
	for _, p := range litter {
		if err := os.WriteFile(p, []byte("junk"), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	s := mustOpen(t, dir)
	assertNoDamage(t, s)
	if len(s.Tables()) != 2 {
		t.Fatalf("recovered %d tables, want 2", len(s.Tables()))
	}
	for _, p := range litter {
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Fatalf("crash litter %s survived the sweep", p)
		}
	}
	if files := snapshotFiles(t, dir); len(files) != 2 {
		t.Fatalf("snapshots after sweep: %v, want 2", files)
	}
}

// TestEmptyManifestTolerated: a zero-byte manifest (crash before the
// first record) is a valid empty store.
func TestEmptyManifestTolerated(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(filepath.Join(dir, tablesDir), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, manifestName), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	s := mustOpen(t, dir)
	assertNoDamage(t, s)
	if len(s.Tables()) != 0 {
		t.Fatalf("empty manifest recovered %d tables", len(s.Tables()))
	}
}

// TestGarbageManifestTolerated: a manifest that is pure garbage from
// byte zero recovers as empty-with-damage, and stays usable.
func TestGarbageManifestTolerated(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(filepath.Join(dir, tablesDir), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, manifestName), []byte("this is not a manifest"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := mustOpen(t, dir)
	if len(s.Tables()) != 0 || len(s.Damaged()) != 1 {
		t.Fatalf("garbage manifest: %d tables, damage %v", len(s.Tables()), s.Damaged())
	}
	c := newTestClient(t)
	tab := encTable(t, c, "T", false, "x")
	mustCommit(t, s, tab)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := mustOpen(t, dir)
	assertNoDamage(t, s2)
	sameTable(t, tableByName(t, s2, "T"), tab)
}
