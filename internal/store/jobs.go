package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// This file persists completed async-job results, the spool behind the
// wire server's SubmitJob/AttachJob: a join submitted as a job must
// survive both client disconnect and server restart, so its finished
// result is committed here before the job is marked done.
//
// Layout and protocol mirror table snapshots exactly: the result rows
// are gob-encoded to <dir>/jobs/<seq>.spool (temp write, fsync, atomic
// rename, directory sync), then an opJob manifest record referencing
// the spool by name and SHA-256 digest is appended and fsynced. A job
// is durable exactly when its record is; a crash in between leaves an
// orphan spool the next Open sweeps. Failed jobs carry no spool — only
// the opJob record with its error message — so a resubmit decision
// survives restarts too. Reaping (TTL expiry) appends opJobDelete and
// unlinks the spool.
//
// Spooled rows hold only what the server already stores: row indices
// and sealed payload blobs. Nothing about the plaintext result leaks
// into the data directory beyond the sigma(q) cardinality the server
// observed anyway.

// JobRow is one joined result row as spooled to disk: the row indices
// of the two operands and their sealed payloads, exactly what the wire
// layer streams to an attached client.
type JobRow struct {
	RowA, RowB         int
	PayloadA, PayloadB []byte
}

// JobMeta describes one completed job: identity, operands, result
// cardinality, leakage, and — for failed jobs — the error message.
type JobMeta struct {
	ID             string
	TableA, TableB string
	// Rows is the number of spooled result rows (0 for failed jobs).
	Rows int
	// RevealedPairs is the job's sigma(q), reported on attach summaries.
	RevealedPairs int
	// Err is non-empty when the job failed; a failed job has no spool.
	Err string
	// FinishedUnix is the completion time (Unix seconds), the clock the
	// TTL reaper runs against.
	FinishedUnix int64
}

// jobEntry is the live manifest state of one job.
type jobEntry struct {
	snapshot string // spool file under jobs/, empty for failed jobs
	digest   []byte
	meta     JobMeta
}

// jobRecord builds the manifest record image of a job entry, shared by
// CommitJob and Compact.
func jobRecord(seq uint64, je jobEntry) *record {
	return &record{
		Seq: seq, Op: opJob,
		Job:      je.meta.ID,
		JobA:     je.meta.TableA,
		JobB:     je.meta.TableB,
		Snapshot: je.snapshot,
		Digest:   je.digest,
		Rows:     je.meta.Rows,
		Pairs:    je.meta.RevealedPairs,
		JobErr:   je.meta.Err,
		Finished: je.meta.FinishedUnix,
	}
}

// jobSpool is the gob image of one spool file.
type jobSpool struct {
	Rows []JobRow
}

// CommitJob makes one completed job durable: the result rows are
// spooled (failed jobs, meta.Err non-empty, spool nothing) and the job
// record is appended, all before returning. Committing an ID again
// replaces the previous result, like a table re-commit.
func (s *Store) CommitJob(meta JobMeta, rows []JobRow) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.usable(); err != nil {
		return err
	}
	if meta.ID == "" {
		return fmt.Errorf("store: job commit without an ID")
	}
	meta.Rows = len(rows)
	seq := s.seq + 1
	je := jobEntry{meta: meta}
	if meta.Err == "" {
		spool := fmt.Sprintf("%016x.spool", seq)
		tmp := filepath.Join(s.dir, jobsDir, tmpPrefix+spool)
		final := filepath.Join(s.dir, jobsDir, spool)
		digest, n, err := writeJobSpool(tmp, rows)
		if err != nil {
			return err
		}
		s.snapshotBytes.Add(uint64(n))
		if err := os.Rename(tmp, final); err != nil {
			os.Remove(tmp)
			return fmt.Errorf("store: installing job spool: %w", err)
		}
		if err := syncDir(filepath.Join(s.dir, jobsDir)); err != nil {
			os.Remove(final)
			return err
		}
		je.snapshot = spool
		je.digest = digest
	}
	if err := s.append(jobRecord(seq, je)); err != nil {
		// Keep the spool for the same reason Commit keeps its snapshot: a
		// failed append does not prove the record missed the disk, and if
		// it landed, the next recovery must find this file. An orphan is
		// reclaimed by the sweep instead.
		return err
	}
	s.seq = seq
	if old, ok := s.jobs[meta.ID]; ok && old.snapshot != "" && old.snapshot != je.snapshot {
		os.Remove(filepath.Join(s.dir, jobsDir, old.snapshot))
	}
	s.jobs[meta.ID] = je
	return nil
}

// Jobs returns the metadata of every durable job, sorted by ID.
func (s *Store) Jobs() []JobMeta {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobMeta, 0, len(s.jobs))
	for _, id := range sortedKeys(s.jobs) {
		out = append(out, s.jobs[id].meta)
	}
	return out
}

// ReadJobRows loads and verifies one job's spooled result rows. The
// spool is digest-checked on every read — it is consulted lazily, long
// after Open, so verification cannot be front-loaded into recovery. A
// failed job yields its recorded error.
func (s *Store) ReadJobRows(id string) ([]JobRow, error) {
	s.mu.Lock()
	je, ok := s.jobs[id]
	dir := s.dir
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("store: unknown job %q", id)
	}
	if je.meta.Err != "" {
		return nil, fmt.Errorf("store: job %q failed: %s", id, je.meta.Err)
	}
	data, err := os.ReadFile(filepath.Join(dir, jobsDir, je.snapshot))
	if err != nil {
		return nil, fmt.Errorf("store: reading job spool: %w", err)
	}
	if sum := sha256.Sum256(data); !bytes.Equal(sum[:], je.digest) {
		return nil, fmt.Errorf("store: job %q spool checksum mismatch", id)
	}
	var sp jobSpool
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&sp); err != nil {
		return nil, fmt.Errorf("store: decoding job spool: %w", err)
	}
	if len(sp.Rows) != je.meta.Rows {
		return nil, fmt.Errorf("store: job %q spool holds %d rows, record says %d", id, len(sp.Rows), je.meta.Rows)
	}
	return sp.Rows, nil
}

// DeleteJob durably removes a job (the reaper's primitive): the
// deletion record is fsynced before the spool is unlinked, so a crash
// in between leaves only an orphan file for the next Open's sweep.
func (s *Store) DeleteJob(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.usable(); err != nil {
		return err
	}
	je, ok := s.jobs[id]
	if !ok {
		return fmt.Errorf("store: unknown job %q", id)
	}
	seq := s.seq + 1
	if err := s.append(&record{Seq: seq, Op: opJobDelete, Job: id}); err != nil {
		return err
	}
	s.seq = seq
	if je.snapshot != "" {
		os.Remove(filepath.Join(s.dir, jobsDir, je.snapshot))
	}
	delete(s.jobs, id)
	return nil
}

// writeJobSpool serializes result rows to path, fsyncs, and returns the
// SHA-256 and byte count of the written encoding (computed during the
// write, never read back) — the job-spool twin of writeSnapshot.
func writeJobSpool(path string, rows []JobRow) ([]byte, int64, error) {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, 0, fmt.Errorf("store: creating job spool: %w", err)
	}
	h := sha256.New()
	var cw countingWriter
	w := io.MultiWriter(f, h, &cw)
	if err := gob.NewEncoder(w).Encode(&jobSpool{Rows: rows}); err != nil {
		f.Close()
		os.Remove(path)
		return nil, 0, fmt.Errorf("store: writing job spool: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(path)
		return nil, 0, fmt.Errorf("store: syncing job spool: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(path)
		return nil, 0, fmt.Errorf("store: closing job spool: %w", err)
	}
	return h.Sum(nil), cw.n, nil
}
