package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/securejoin"
)

func newTestClient(t testing.TB) *engine.Client {
	t.Helper()
	c, err := engine.NewClient(securejoin.Params{M: 1, T: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// encTable builds an encrypted table with one row per payload; row i
// joins on "k<i>" and carries a single attribute "a<i>".
func encTable(t testing.TB, c *engine.Client, name string, indexed bool, payloads ...string) *engine.EncryptedTable {
	t.Helper()
	rows := make([]engine.PlainRow, len(payloads))
	for i, p := range payloads {
		rows[i] = engine.PlainRow{
			JoinValue: []byte(fmt.Sprintf("k%d", i)),
			Attrs:     [][]byte{[]byte(fmt.Sprintf("a%d", i))},
			Payload:   []byte(p),
		}
	}
	var (
		tab *engine.EncryptedTable
		err error
	)
	if indexed {
		tab, err = c.EncryptTableIndexed(name, rows)
	} else {
		tab, err = c.EncryptTable(name, rows)
	}
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func mustOpen(t testing.TB, dir string) *Store {
	t.Helper()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func mustCommit(t testing.TB, s *Store, tab *engine.EncryptedTable) {
	t.Helper()
	if err := s.Commit(tab); err != nil {
		t.Fatal(err)
	}
}

// tableByName finds one recovered table or fails.
func tableByName(t testing.TB, s *Store, name string) *engine.EncryptedTable {
	t.Helper()
	for _, tab := range s.Tables() {
		if tab.Name == name {
			return tab
		}
	}
	t.Fatalf("table %q not in store (have %d tables)", name, len(s.Tables()))
	return nil
}

// sameTable compares the server-visible content of two table versions:
// row count, the exact sealed payload bytes, and index presence.
func sameTable(t testing.TB, got, want *engine.EncryptedTable) {
	t.Helper()
	if got.Name != want.Name {
		t.Fatalf("table name %q, want %q", got.Name, want.Name)
	}
	if len(got.Rows) != len(want.Rows) {
		t.Fatalf("table %q: %d rows, want %d", got.Name, len(got.Rows), len(want.Rows))
	}
	for i := range got.Rows {
		if !bytes.Equal(got.Rows[i].Payload, want.Rows[i].Payload) {
			t.Fatalf("table %q row %d: payload differs", got.Name, i)
		}
	}
	if (got.Index != nil) != (want.Index != nil) {
		t.Fatalf("table %q: index presence %v, want %v", got.Name, got.Index != nil, want.Index != nil)
	}
}

func snapshotFiles(t testing.TB, dir string) []string {
	t.Helper()
	ents, err := os.ReadDir(filepath.Join(dir, tablesDir))
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, e := range ents {
		out = append(out, e.Name())
	}
	return out
}

func assertNoDamage(t testing.TB, s *Store) {
	t.Helper()
	if d := s.Damaged(); len(d) != 0 {
		t.Fatalf("unexpected damage: %v", d)
	}
}

// TestLockSingleOpener: a data dir is owned by one store handle at a
// time — a concurrent Open fails instead of letting two writers
// interleave manifest appends — and Close releases the ownership.
func TestLockSingleOpener(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	if second, err := Open(dir); err == nil {
		second.Close()
		t.Fatal("second Open of a held data dir succeeded")
	} else if !strings.Contains(err.Error(), "locked") {
		t.Fatalf("second Open failed with %v, want a lock error", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("Open after Close: %v", err)
	}
	s2.Close()
}

func TestOpenEmptyDir(t *testing.T) {
	s := mustOpen(t, t.TempDir())
	if len(s.Tables()) != 0 || len(s.Counters()) != 0 {
		t.Fatalf("fresh store not empty: %d tables, %d counters", len(s.Tables()), len(s.Counters()))
	}
	assertNoDamage(t, s)
}

// TestCommitRecoverRoundTrip: tables (indexed and not) survive a
// close/reopen cycle byte-identically.
func TestCommitRecoverRoundTrip(t *testing.T) {
	dir := t.TempDir()
	c := newTestClient(t)
	plainTab := encTable(t, c, "plain", false, "p0", "p1", "p2")
	indexedTab := encTable(t, c, "indexed", true, "q0", "q1")

	s := mustOpen(t, dir)
	mustCommit(t, s, plainTab)
	mustCommit(t, s, indexedTab)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, dir)
	assertNoDamage(t, s2)
	if n := len(s2.Tables()); n != 2 {
		t.Fatalf("recovered %d tables, want 2", n)
	}
	sameTable(t, tableByName(t, s2, "plain"), plainTab)
	sameTable(t, tableByName(t, s2, "indexed"), indexedTab)
}

// TestCountersRoundTrip: the whole-map checkpoint semantics — last
// record wins, including dropped keys.
func TestCountersRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	if err := s.RecordCounters(map[string]uint64{"A": 3, "B": 5}); err != nil {
		t.Fatal(err)
	}
	if err := s.RecordCounters(map[string]uint64{"A": 4}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, dir)
	assertNoDamage(t, s2)
	got := s2.Counters()
	if len(got) != 1 || got["A"] != 4 {
		t.Fatalf("recovered counters %v, want map[A:4]", got)
	}
}

// TestOverwriteReplacesSnapshot: re-committing a table name atomically
// replaces the previous version — the old snapshot file is gone, and
// recovery serves only the new rows and index.
func TestOverwriteReplacesSnapshot(t *testing.T) {
	dir := t.TempDir()
	c := newTestClient(t)
	v1 := encTable(t, c, "T", true, "v1-a", "v1-b", "v1-c")
	v2 := encTable(t, c, "T", true, "v2-a")
	other := encTable(t, c, "O", false, "o")

	s := mustOpen(t, dir)
	mustCommit(t, s, v1)
	mustCommit(t, s, other)
	mustCommit(t, s, v2)
	if files := snapshotFiles(t, dir); len(files) != 2 {
		t.Fatalf("snapshots after overwrite: %v, want exactly 2 (new T + O)", files)
	}
	sameTable(t, tableByName(t, s, "T"), v2)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, dir)
	assertNoDamage(t, s2)
	if n := len(s2.Tables()); n != 2 {
		t.Fatalf("recovered %d tables, want 2", n)
	}
	sameTable(t, tableByName(t, s2, "T"), v2)
	sameTable(t, tableByName(t, s2, "O"), other)
}

// TestDelete: a deletion is durable and removes the snapshot.
func TestDelete(t *testing.T) {
	dir := t.TempDir()
	c := newTestClient(t)
	s := mustOpen(t, dir)
	mustCommit(t, s, encTable(t, c, "T1", false, "x"))
	mustCommit(t, s, encTable(t, c, "T2", false, "y"))
	if err := s.Delete("T1"); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("nope"); err == nil {
		t.Fatal("deleting unknown table succeeded")
	}
	if files := snapshotFiles(t, dir); len(files) != 1 {
		t.Fatalf("snapshots after delete: %v, want 1", files)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, dir)
	assertNoDamage(t, s2)
	tables := s2.Tables()
	if len(tables) != 1 || tables[0].Name != "T2" {
		t.Fatalf("recovered tables %v, want just T2", tables)
	}
}

// TestClosedStore: mutating a closed store fails with ErrClosed and
// closing twice is fine.
func TestClosedStore(t *testing.T) {
	c := newTestClient(t)
	s := mustOpen(t, t.TempDir())
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(encTable(t, c, "T", false, "x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Commit on closed store: %v, want ErrClosed", err)
	}
	if err := s.RecordCounters(nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("RecordCounters on closed store: %v, want ErrClosed", err)
	}
}
