package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := NewCounter(r, "c_total", "test counter")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := NewGauge(r, "g", "test gauge")
	g.Set(10)
	g.Add(-3)
	g.Dec()
	if got := g.Value(); got != 6 {
		t.Fatalf("gauge = %d, want 6", got)
	}
}

// TestNilSafety pins the contract instrumented packages rely on: every
// mutator and reader is a no-op/zero on nil receivers, and the
// constructors work against a nil registry.
func TestNilSafety(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(3)
	if c.Value() != 0 {
		t.Fatal("nil counter value != 0")
	}
	var g *Gauge
	g.Set(3)
	g.Add(1)
	if g.Value() != 0 {
		t.Fatal("nil gauge value != 0")
	}
	var h *Histogram
	h.Observe(1)
	if h.Count() != 0 || h.Sum() != 0 || !math.IsNaN(h.Quantile(0.5)) {
		t.Fatal("nil histogram not inert")
	}
	var cv *CounterVec
	cv.With("x").Inc()
	var gv *GaugeVec
	gv.With("x").Set(1)
	var hv *HistogramVec
	hv.With("x").Observe(1)

	var r *Registry
	NewCounter(r, "a", "").Inc()
	NewHistogram(r, "b", "", nil).Observe(1)
	r.WritePrometheus(&strings.Builder{})
	if r.Get("a") != nil {
		t.Fatal("nil registry Get != nil")
	}
}

// TestHistogramBucketBoundaries pins the inclusive-upper-bound (`le`)
// convention: an observation exactly on a bound lands in that bound's
// bucket, one epsilon above lands in the next.
func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewHistogram(nil, "h", "", []float64{1, 2, 5})
	h.Observe(1)   // bucket le=1
	h.Observe(1.0) // bucket le=1
	h.Observe(2)   // bucket le=2 (inclusive)
	h.Observe(2.1) // bucket le=5
	h.Observe(5)   // bucket le=5 (inclusive)
	h.Observe(7)   // +Inf

	want := []uint64{2, 1, 2, 1} // per-bucket (non-cumulative)
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Errorf("bucket %d = %d, want %d", i, got, w)
		}
	}
	if h.Count() != 6 {
		t.Errorf("count = %d, want 6", h.Count())
	}
	if got, want := h.Sum(), 1+1+2+2.1+5+7.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("sum = %g, want %g", got, want)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(nil, "h", "", []float64{1, 2, 4})
	for i := 0; i < 100; i++ {
		h.Observe(0.5) // all in le=1
	}
	// Every observation in [0,1]: the median interpolates inside it.
	if q := h.Quantile(0.5); q <= 0 || q > 1 {
		t.Errorf("p50 = %g, want in (0,1]", q)
	}
	h2 := NewHistogram(nil, "h2", "", []float64{1, 2, 4})
	for i := 0; i < 50; i++ {
		h2.Observe(0.5)
	}
	for i := 0; i < 50; i++ {
		h2.Observe(3) // le=4
	}
	if q := h2.Quantile(0.9); q < 2 || q > 4 {
		t.Errorf("p90 = %g, want in [2,4]", q)
	}
	// +Inf observations clamp to the last finite bound.
	h3 := NewHistogram(nil, "h3", "", []float64{1, 2})
	h3.Observe(100)
	if q := h3.Quantile(0.99); q != 2 {
		t.Errorf("+Inf quantile = %g, want clamp to 2", q)
	}
	if !math.IsNaN((&Histogram{}).Quantile(0.5)) {
		t.Error("empty histogram quantile should be NaN")
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	c := NewCounter(r, "sj_test_total", "a test counter")
	c.Add(3)
	g := NewGauge(r, "sj_gauge", "a gauge")
	g.Set(-2)
	h := NewHistogram(r, "sj_lat_seconds", "latency", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(2)
	cv := NewCounterVec(r, "sj_req_total", "requests", "type")
	cv.With("join").Add(2)
	cv.With(`we"ird`).Inc()

	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"# HELP sj_test_total a test counter",
		"# TYPE sj_test_total counter",
		"sj_test_total 3",
		"sj_gauge -2",
		"# TYPE sj_lat_seconds histogram",
		`sj_lat_seconds_bucket{le="0.1"} 1`,
		`sj_lat_seconds_bucket{le="1"} 2`,
		`sj_lat_seconds_bucket{le="+Inf"} 3`,
		"sj_lat_seconds_sum 2.55",
		"sj_lat_seconds_count 3",
		`sj_req_total{type="join"} 2`,
		`sj_req_total{type="we\"ird"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	// Output is sorted by metric name.
	if strings.Index(out, "sj_gauge") > strings.Index(out, "sj_test_total") {
		t.Error("metrics not sorted by name")
	}
}

func TestHistogramVecExposition(t *testing.T) {
	r := NewRegistry()
	hv := NewHistogramVec(r, "sj_req_seconds", "request latency", "type", []float64{1})
	hv.With("join").Observe(0.5)
	hv.With("ping").Observe(2)
	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		`sj_req_seconds_bucket{type="join",le="1"} 1`,
		`sj_req_seconds_bucket{type="ping",le="+Inf"} 1`,
		`sj_req_seconds_count{type="join"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestRegistryGet(t *testing.T) {
	r := NewRegistry()
	h := NewHistogram(r, "h", "", nil)
	if got := r.Get("h"); got != h {
		t.Fatalf("Get returned %v, want the histogram", got)
	}
	if r.Get("missing") != nil {
		t.Fatal("Get(missing) != nil")
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	NewCounter(r, "dup", "")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	NewCounter(r, "dup", "")
}

// TestConcurrentUpdates exercises every metric type from many
// goroutines; run under -race this is the data-race net for the
// lock-free paths.
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := NewCounter(r, "c", "")
	g := NewGauge(r, "g", "")
	h := NewHistogram(r, "h", "", []float64{1, 2, 4})
	cv := NewCounterVec(r, "cv", "", "l")
	hv := NewHistogramVec(r, "hv", "", "l", []float64{1})

	const workers, iters = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			label := string(rune('a' + w%3))
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%5) * 0.9)
				cv.With(label).Inc()
				hv.With(label).Observe(0.5)
				if i%100 == 0 {
					var b strings.Builder
					r.WritePrometheus(&b) // scrape concurrently with writers
				}
			}
		}()
	}
	wg.Wait()
	if c.Value() != workers*iters {
		t.Errorf("counter = %d, want %d", c.Value(), workers*iters)
	}
	if h.Count() != workers*iters {
		t.Errorf("histogram count = %d, want %d", h.Count(), workers*iters)
	}
	var total uint64
	for _, l := range []string{"a", "b", "c"} {
		total += cv.With(l).Value()
	}
	if total != workers*iters {
		t.Errorf("vec total = %d, want %d", total, workers*iters)
	}
}
