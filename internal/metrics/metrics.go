// Package metrics is a dependency-free observability core: atomic
// counters, gauges and fixed-bucket histograms, optionally grouped
// under single-label families, registered in a Registry that renders
// the Prometheus text exposition format. It exists so the pairing-heavy
// hot paths (SJ.Dec, the wire server, the SQL planner) can be
// instrumented without pulling an external client library into a
// crypto codebase, and so sjbench and a production sjserver share one
// measurement path: both read the same Registry.
//
// Every constructor accepts a nil *Registry and returns a fully
// functional, merely unregistered metric, and every mutating method is
// safe on a nil receiver. Instrumented packages therefore never branch
// on "is observability enabled" — an uninstrumented engine pays one
// nil check per event, nothing more.
//
// Concurrency: all metric updates are lock-free atomics; families
// (Vec types) take a short mutex only when a label value is first
// seen. Rendering takes a snapshot under the registry lock but reads
// metric values with the same atomics as writers, so scraping never
// stalls a join.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n. Safe on a nil receiver (no-op).
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a value that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value. Safe on a nil receiver.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adds delta (negative to decrease). Safe on a nil receiver.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Inc adds one; Dec subtracts one.
func (g *Gauge) Inc() { g.Add(1) }
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value (0 on a nil receiver).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram counts observations into fixed buckets with inclusive
// upper bounds (the Prometheus `le` convention: an observation equal
// to a bound lands in that bound's bucket). An implicit +Inf bucket
// catches everything beyond the last bound.
type Histogram struct {
	bounds []float64       // ascending upper bounds, +Inf implicit
	counts []atomic.Uint64 // len(bounds)+1, cumulative only at render
	sum    atomic.Uint64   // float64 bits, CAS-updated
	count  atomic.Uint64
}

// DefBuckets is the default latency bucket layout, in seconds: wide
// enough to cover a sub-millisecond SSE lookup and a multi-second
// full-scan join in one histogram.
var DefBuckets = []float64{.001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10, 30}

func newHistogram(buckets []float64) *Histogram {
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	bounds := append([]float64(nil), buckets...)
	sort.Float64s(bounds)
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records one value. Safe on a nil receiver.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v: inclusive le semantics
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Quantile estimates the q-quantile (0 <= q <= 1) from the bucket
// counts by linear interpolation inside the containing bucket — the
// same estimate Prometheus' histogram_quantile computes. Observations
// in the +Inf bucket clamp to the last finite bound. Returns NaN when
// the histogram is empty or nil.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return math.NaN()
	}
	total := h.count.Load()
	if total == 0 || q < 0 || q > 1 {
		return math.NaN()
	}
	rank := q * float64(total)
	var cum uint64
	for i := range h.counts {
		n := h.counts[i].Load()
		if n == 0 {
			cum += n
			continue
		}
		if float64(cum+n) >= rank {
			upper := math.Inf(1)
			if i < len(h.bounds) {
				upper = h.bounds[i]
			} else if len(h.bounds) > 0 {
				// +Inf bucket: clamp to the last finite bound, the
				// best estimate available without the raw values.
				return h.bounds[len(h.bounds)-1]
			}
			lower := 0.0
			if i > 0 {
				lower = h.bounds[i-1]
			}
			if math.IsInf(upper, 1) {
				return lower
			}
			return lower + (upper-lower)*((rank-float64(cum))/float64(n))
		}
		cum += n
	}
	if len(h.bounds) > 0 {
		return h.bounds[len(h.bounds)-1]
	}
	return math.NaN()
}

// metric is one registered entry: its metadata plus a renderer that
// appends exposition-format sample lines for the current value.
type metric struct {
	name, help, typ string
	render          func(w io.Writer, name string)
	value           any
}

// Registry holds registered metrics and renders them. The zero value
// is not usable; construct with NewRegistry. All constructor functions
// accept a nil Registry, returning unregistered but working metrics.
type Registry struct {
	mu      sync.Mutex
	metrics []*metric
	names   map[string]bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: make(map[string]bool)}
}

// register panics on duplicate names: two subsystems claiming one name
// is a wiring bug that silent last-wins would hide from the dashboard.
func (r *Registry) register(m *metric) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.names[m.name] {
		panic(fmt.Sprintf("metrics: duplicate registration of %q", m.name))
	}
	r.names[m.name] = true
	r.metrics = append(r.metrics, m)
}

// Get returns the registered metric value with the given name — a
// *Counter, *Gauge, *Histogram or one of the Vec types — or nil when
// absent. Callers type-assert; sjbench uses it to pull histogram
// quantiles out of a live server's registry.
func (r *Registry) Get(name string) any {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, m := range r.metrics {
		if m.name == name {
			return m.value
		}
	}
	return nil
}

// WritePrometheus renders every registered metric in the Prometheus
// text exposition format (version 0.0.4), sorted by metric name.
func (r *Registry) WritePrometheus(w io.Writer) {
	if r == nil {
		return
	}
	r.mu.Lock()
	ms := append([]*metric(nil), r.metrics...)
	r.mu.Unlock()
	sort.Slice(ms, func(i, j int) bool { return ms[i].name < ms[j].name })
	for _, m := range ms {
		if m.help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", m.name, m.help)
		}
		fmt.Fprintf(w, "# TYPE %s %s\n", m.name, m.typ)
		m.render(w, m.name)
	}
}

// NewCounter creates and registers a counter. r may be nil.
func NewCounter(r *Registry, name, help string) *Counter {
	c := &Counter{}
	r.register(&metric{name: name, help: help, typ: "counter", value: c,
		render: func(w io.Writer, name string) {
			fmt.Fprintf(w, "%s %d\n", name, c.Value())
		}})
	return c
}

// NewGauge creates and registers a gauge. r may be nil.
func NewGauge(r *Registry, name, help string) *Gauge {
	g := &Gauge{}
	r.register(&metric{name: name, help: help, typ: "gauge", value: g,
		render: func(w io.Writer, name string) {
			fmt.Fprintf(w, "%s %d\n", name, g.Value())
		}})
	return g
}

// NewHistogram creates and registers a histogram with the given bucket
// upper bounds (nil or empty selects DefBuckets). r may be nil.
func NewHistogram(r *Registry, name, help string, buckets []float64) *Histogram {
	h := newHistogram(buckets)
	r.register(&metric{name: name, help: help, typ: "histogram", value: h,
		render: func(w io.Writer, name string) {
			renderHistogram(w, name, "", h)
		}})
	return h
}

// renderHistogram appends the cumulative _bucket/_sum/_count lines of
// one histogram; extraLabel (`key="value"` form, may be empty) is
// merged into each bucket's label set for Vec children.
func renderHistogram(w io.Writer, name, extraLabel string, h *Histogram) {
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		le := "+Inf"
		if i < len(h.bounds) {
			le = formatFloat(h.bounds[i])
		}
		if extraLabel != "" {
			fmt.Fprintf(w, "%s_bucket{%s,le=%q} %d\n", name, extraLabel, le, cum)
		} else {
			fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, le, cum)
		}
	}
	suffix := ""
	if extraLabel != "" {
		suffix = "{" + extraLabel + "}"
	}
	fmt.Fprintf(w, "%s_sum%s %s\n", name, suffix, formatFloat(h.Sum()))
	fmt.Fprintf(w, "%s_count%s %d\n", name, suffix, cum)
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// vec is the shared child-management core of the Vec types.
type vec[T any] struct {
	mu    sync.Mutex
	kids  map[string]T
	mk    func() T
	order []string // first-seen order; render sorts
}

func (v *vec[T]) with(label string) T {
	v.mu.Lock()
	defer v.mu.Unlock()
	if k, ok := v.kids[label]; ok {
		return k
	}
	k := v.mk()
	v.kids[label] = k
	v.order = append(v.order, label)
	return k
}

func (v *vec[T]) snapshot() (labels []string, kids []T) {
	v.mu.Lock()
	defer v.mu.Unlock()
	labels = append([]string(nil), v.order...)
	sort.Strings(labels)
	kids = make([]T, len(labels))
	for i, l := range labels {
		kids[i] = v.kids[l]
	}
	return labels, kids
}

// CounterVec is a family of counters keyed by one label value.
type CounterVec struct {
	key string
	v   vec[*Counter]
}

// NewCounterVec creates and registers a counter family whose children
// are keyed by the label named key. r may be nil.
func NewCounterVec(r *Registry, name, help, key string) *CounterVec {
	cv := &CounterVec{key: key}
	cv.v = vec[*Counter]{kids: make(map[string]*Counter), mk: func() *Counter { return &Counter{} }}
	r.register(&metric{name: name, help: help, typ: "counter", value: cv,
		render: func(w io.Writer, name string) {
			labels, kids := cv.v.snapshot()
			for i, l := range labels {
				fmt.Fprintf(w, "%s{%s=%q} %d\n", name, cv.key, l, kids[i].Value())
			}
		}})
	return cv
}

// With returns the child counter for a label value, creating it on
// first use. Safe on a nil receiver (returns a nil, no-op *Counter).
func (cv *CounterVec) With(label string) *Counter {
	if cv == nil {
		return nil
	}
	return cv.v.with(label)
}

// GaugeVec is a family of gauges keyed by one label value.
type GaugeVec struct {
	key string
	v   vec[*Gauge]
}

// NewGaugeVec creates and registers a gauge family. r may be nil.
func NewGaugeVec(r *Registry, name, help, key string) *GaugeVec {
	gv := &GaugeVec{key: key}
	gv.v = vec[*Gauge]{kids: make(map[string]*Gauge), mk: func() *Gauge { return &Gauge{} }}
	r.register(&metric{name: name, help: help, typ: "gauge", value: gv,
		render: func(w io.Writer, name string) {
			labels, kids := gv.v.snapshot()
			for i, l := range labels {
				fmt.Fprintf(w, "%s{%s=%q} %d\n", name, gv.key, l, kids[i].Value())
			}
		}})
	return gv
}

// With returns the child gauge for a label value. Safe on nil.
func (gv *GaugeVec) With(label string) *Gauge {
	if gv == nil {
		return nil
	}
	return gv.v.with(label)
}

// HistogramVec is a family of histograms keyed by one label value, all
// sharing one bucket layout.
type HistogramVec struct {
	key     string
	buckets []float64
	v       vec[*Histogram]
}

// NewHistogramVec creates and registers a histogram family. r may be
// nil; nil/empty buckets select DefBuckets.
func NewHistogramVec(r *Registry, name, help, key string, buckets []float64) *HistogramVec {
	hv := &HistogramVec{key: key, buckets: buckets}
	hv.v = vec[*Histogram]{kids: make(map[string]*Histogram), mk: func() *Histogram { return newHistogram(hv.buckets) }}
	r.register(&metric{name: name, help: help, typ: "histogram", value: hv,
		render: func(w io.Writer, name string) {
			labels, kids := hv.v.snapshot()
			for i, l := range labels {
				renderHistogram(w, name, fmt.Sprintf("%s=%q", hv.key, l), kids[i])
			}
		}})
	return hv
}

// With returns the child histogram for a label value. Safe on nil.
func (hv *HistogramVec) With(label string) *Histogram {
	if hv == nil {
		return nil
	}
	return hv.v.with(label)
}
