package tpch

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCustomersCSV writes the Customers table with a header row.
func WriteCustomersCSV(w io.Writer, customers []Customer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"custkey", "name", "address", "nationkey", "phone",
		"acctbal", "mktsegment", "comment", "selectivity",
	}); err != nil {
		return err
	}
	for _, c := range customers {
		rec := []string{
			strconv.Itoa(c.CustKey), c.Name, c.Address,
			strconv.Itoa(c.NationKey), c.Phone,
			strconv.FormatFloat(c.AcctBal, 'f', 2, 64),
			c.MktSegment, c.Comment, c.Selectivity,
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteOrdersCSV writes the Orders table with a header row.
func WriteOrdersCSV(w io.Writer, orders []Order) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"orderkey", "custkey", "orderstatus", "totalprice", "orderdate",
		"orderpriority", "clerk", "shippriority", "comment", "selectivity",
	}); err != nil {
		return err
	}
	for _, o := range orders {
		rec := []string{
			strconv.Itoa(o.OrderKey), strconv.Itoa(o.CustKey), o.OrderStatus,
			strconv.FormatFloat(o.TotalPrice, 'f', 2, 64), o.OrderDate,
			o.OrderPriority, o.Clerk, strconv.Itoa(o.ShipPriority),
			o.Comment, o.Selectivity,
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCustomersCSV parses a table written by WriteCustomersCSV.
func ReadCustomersCSV(r io.Reader) ([]Customer, error) {
	cr := csv.NewReader(r)
	recs, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(recs) == 0 {
		return nil, fmt.Errorf("tpch: empty customers CSV")
	}
	out := make([]Customer, 0, len(recs)-1)
	for i, rec := range recs[1:] {
		if len(rec) != 9 {
			return nil, fmt.Errorf("tpch: customers row %d has %d fields, want 9", i+1, len(rec))
		}
		custKey, err := strconv.Atoi(rec[0])
		if err != nil {
			return nil, fmt.Errorf("tpch: customers row %d custkey: %w", i+1, err)
		}
		nationKey, err := strconv.Atoi(rec[3])
		if err != nil {
			return nil, fmt.Errorf("tpch: customers row %d nationkey: %w", i+1, err)
		}
		bal, err := strconv.ParseFloat(rec[5], 64)
		if err != nil {
			return nil, fmt.Errorf("tpch: customers row %d acctbal: %w", i+1, err)
		}
		out = append(out, Customer{
			CustKey: custKey, Name: rec[1], Address: rec[2],
			NationKey: nationKey, Phone: rec[4], AcctBal: bal,
			MktSegment: rec[6], Comment: rec[7], Selectivity: rec[8],
		})
	}
	return out, nil
}

// ReadOrdersCSV parses a table written by WriteOrdersCSV.
func ReadOrdersCSV(r io.Reader) ([]Order, error) {
	cr := csv.NewReader(r)
	recs, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(recs) == 0 {
		return nil, fmt.Errorf("tpch: empty orders CSV")
	}
	out := make([]Order, 0, len(recs)-1)
	for i, rec := range recs[1:] {
		if len(rec) != 10 {
			return nil, fmt.Errorf("tpch: orders row %d has %d fields, want 10", i+1, len(rec))
		}
		orderKey, err := strconv.Atoi(rec[0])
		if err != nil {
			return nil, fmt.Errorf("tpch: orders row %d orderkey: %w", i+1, err)
		}
		custKey, err := strconv.Atoi(rec[1])
		if err != nil {
			return nil, fmt.Errorf("tpch: orders row %d custkey: %w", i+1, err)
		}
		price, err := strconv.ParseFloat(rec[3], 64)
		if err != nil {
			return nil, fmt.Errorf("tpch: orders row %d totalprice: %w", i+1, err)
		}
		shipPrio, err := strconv.Atoi(rec[7])
		if err != nil {
			return nil, fmt.Errorf("tpch: orders row %d shippriority: %w", i+1, err)
		}
		out = append(out, Order{
			OrderKey: orderKey, CustKey: custKey, OrderStatus: rec[2],
			TotalPrice: price, OrderDate: rec[4], OrderPriority: rec[5],
			Clerk: rec[6], ShipPriority: shipPrio, Comment: rec[8],
			Selectivity: rec[9],
		})
	}
	return out, nil
}
