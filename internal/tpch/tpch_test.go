package tpch

import (
	"bytes"
	"testing"
)

func TestGenerateRowCounts(t *testing.T) {
	ds := Generate(0.001, 1)
	if len(ds.Customers) != 150 {
		t.Fatalf("customers = %d, want 150", len(ds.Customers))
	}
	if len(ds.Orders) != 1500 {
		t.Fatalf("orders = %d, want 1500", len(ds.Orders))
	}
	// Tiny scale factors still produce at least one row.
	tiny := Generate(0.0000001, 1)
	if len(tiny.Customers) < 1 || len(tiny.Orders) < 1 {
		t.Fatal("degenerate scale factor produced empty tables")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(0.0005, 42)
	b := Generate(0.0005, 42)
	if len(a.Orders) != len(b.Orders) {
		t.Fatal("row counts differ across runs")
	}
	for i := range a.Orders {
		if a.Orders[i] != b.Orders[i] {
			t.Fatalf("order %d differs across identically-seeded runs", i)
		}
	}
	c := Generate(0.0005, 43)
	same := true
	for i := range a.Orders {
		if a.Orders[i] != c.Orders[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical data")
	}
}

func TestSelectivityProportions(t *testing.T) {
	ds := Generate(0.01, 7) // 1500 customers, 15000 orders
	counts := map[string]int{}
	for _, c := range ds.Customers {
		counts[c.Selectivity]++
	}
	n := len(ds.Customers)
	for _, class := range Selectivities {
		want := SelectivityCount(n, class.Fraction)
		if counts[class.Label] != want {
			t.Errorf("class %s: %d rows, want %d", class.Label, counts[class.Label], want)
		}
	}
	// The four classes plus the remainder cover the table.
	total := 0
	for _, v := range counts {
		total += v
	}
	if total != n {
		t.Fatalf("selectivity labels cover %d of %d rows", total, n)
	}
}

func TestForeignKeysInRange(t *testing.T) {
	ds := Generate(0.001, 3)
	nc := len(ds.Customers)
	for _, o := range ds.Orders {
		if o.CustKey < 1 || o.CustKey > nc {
			t.Fatalf("order %d has custkey %d outside [1, %d]", o.OrderKey, o.CustKey, nc)
		}
	}
	// Customer keys are 1..n without gaps.
	for i, c := range ds.Customers {
		if c.CustKey != i+1 {
			t.Fatalf("customer %d has key %d", i, c.CustKey)
		}
	}
}

func TestJoinValueEncoding(t *testing.T) {
	c := Customer{CustKey: 17}
	o := Order{CustKey: 17}
	if !bytes.Equal(CustomerJoinValue(c), OrderJoinValue(o)) {
		t.Fatal("matching keys encode differently")
	}
	if bytes.Equal(CustomerJoinValue(Customer{CustKey: 1}), CustomerJoinValue(Customer{CustKey: 11})) {
		t.Fatal("distinct keys encode identically")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	ds := Generate(0.0002, 5)

	var cbuf bytes.Buffer
	if err := WriteCustomersCSV(&cbuf, ds.Customers); err != nil {
		t.Fatal(err)
	}
	customers, err := ReadCustomersCSV(&cbuf)
	if err != nil {
		t.Fatal(err)
	}
	if len(customers) != len(ds.Customers) {
		t.Fatalf("round trip lost rows: %d vs %d", len(customers), len(ds.Customers))
	}
	for i := range customers {
		if customers[i] != ds.Customers[i] {
			t.Fatalf("customer %d differs after round trip", i)
		}
	}

	var obuf bytes.Buffer
	if err := WriteOrdersCSV(&obuf, ds.Orders); err != nil {
		t.Fatal(err)
	}
	orders, err := ReadOrdersCSV(&obuf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range orders {
		if orders[i] != ds.Orders[i] {
			t.Fatalf("order %d differs after round trip", i)
		}
	}
}

func TestCSVRejectsMalformed(t *testing.T) {
	if _, err := ReadCustomersCSV(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty customers CSV accepted")
	}
	bad := "custkey,name,address,nationkey,phone,acctbal,mktsegment,comment,selectivity\nnot-a-number,x,y,0,p,1.0,M,c,none\n"
	if _, err := ReadCustomersCSV(bytes.NewReader([]byte(bad))); err == nil {
		t.Fatal("malformed custkey accepted")
	}
	short := "orderkey,custkey\n1,2\n"
	if _, err := ReadOrdersCSV(bytes.NewReader([]byte(short))); err == nil {
		t.Fatal("short orders row accepted")
	}
}
