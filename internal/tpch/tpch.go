// Package tpch generates the synthetic TPC-H data the paper evaluates
// on: the Customers table (8 attributes) and the Orders table (9
// attributes), joined on custkey, at configurable scale factors. As in
// Section 6.1, both tables carry an extra "selectivity" column taking
// values {1/12.5, 1/25, 1/50, 1/100}, where value x is assigned to x*n
// of the n rows — so an IN clause selecting a single selectivity value x
// matches exactly the fraction x of each table.
//
// The generator is deterministic for a given seed, making benchmarks and
// tests reproducible without shipping TPC-H's dbgen output.
package tpch

import (
	"fmt"
	"math/rand"
	"strconv"
)

// Standard TPC-H row counts at scale factor 1.0.
const (
	CustomersPerSF = 150_000
	OrdersPerSF    = 1_500_000
)

// Selectivity labels. Each label s is assigned to s*n rows of every
// table; remaining rows receive SelectivityNone.
const (
	Sel12_5 = "1/12.5"
	Sel25   = "1/25"
	Sel50   = "1/50"
	Sel100  = "1/100"
	// SelectivityNone marks rows outside all benchmark selectivity
	// classes.
	SelectivityNone = "none"
)

// Selectivities lists the four benchmark selectivity classes with their
// numeric fractions, in the order the paper's figures sweep them.
var Selectivities = []struct {
	Label    string
	Fraction float64
}{
	{Sel100, 1.0 / 100},
	{Sel50, 1.0 / 50},
	{Sel25, 1.0 / 25},
	{Sel12_5, 1.0 / 12.5},
}

// Customer mirrors the TPC-H Customers schema of Section 6.1 plus the
// selectivity column.
type Customer struct {
	CustKey     int
	Name        string
	Address     string
	NationKey   int
	Phone       string
	AcctBal     float64
	MktSegment  string
	Comment     string
	Selectivity string
}

// Order mirrors the TPC-H Orders schema of Section 6.1 plus the
// selectivity column.
type Order struct {
	OrderKey      int
	CustKey       int
	OrderStatus   string
	TotalPrice    float64
	OrderDate     string
	OrderPriority string
	Clerk         string
	ShipPriority  int
	Comment       string
	Selectivity   string
}

// Dataset holds one generated instance.
type Dataset struct {
	ScaleFactor float64
	Customers   []Customer
	Orders      []Order
}

var (
	mktSegments = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"}
	priorities  = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}
	statuses    = []string{"F", "O", "P"}
)

// Generate builds a dataset at the given scale factor with a fixed seed.
// Row counts round down but are kept at least 1.
func Generate(scaleFactor float64, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	nc := max(1, int(float64(CustomersPerSF)*scaleFactor))
	no := max(1, int(float64(OrdersPerSF)*scaleFactor))

	ds := &Dataset{
		ScaleFactor: scaleFactor,
		Customers:   make([]Customer, nc),
		Orders:      make([]Order, no),
	}

	selC := selectivityColumn(nc, rng)
	for i := range ds.Customers {
		key := i + 1
		ds.Customers[i] = Customer{
			CustKey:     key,
			Name:        fmt.Sprintf("Customer#%09d", key),
			Address:     randAddress(rng),
			NationKey:   rng.Intn(25),
			Phone:       randPhone(rng),
			AcctBal:     float64(rng.Intn(1_100_000)-100_000) / 100,
			MktSegment:  mktSegments[rng.Intn(len(mktSegments))],
			Comment:     randComment(rng),
			Selectivity: selC[i],
		}
	}

	selO := selectivityColumn(no, rng)
	for i := range ds.Orders {
		key := i + 1
		ds.Orders[i] = Order{
			OrderKey:      key,
			CustKey:       rng.Intn(nc) + 1,
			OrderStatus:   statuses[rng.Intn(len(statuses))],
			TotalPrice:    float64(rng.Intn(50_000_000)) / 100,
			OrderDate:     randDate(rng),
			OrderPriority: priorities[rng.Intn(len(priorities))],
			Clerk:         fmt.Sprintf("Clerk#%09d", rng.Intn(1000)+1),
			ShipPriority:  0,
			Comment:       randComment(rng),
			Selectivity:   selO[i],
		}
	}
	return ds
}

// selectivityColumn builds a shuffled column of n selectivity labels in
// which each class s covers exactly floor(s*n) rows.
func selectivityColumn(n int, rng *rand.Rand) []string {
	col := make([]string, n)
	for i := range col {
		col[i] = SelectivityNone
	}
	pos := 0
	for _, class := range Selectivities {
		count := int(class.Fraction * float64(n))
		for i := 0; i < count && pos < n; i++ {
			col[pos] = class.Label
			pos++
		}
	}
	rng.Shuffle(n, func(i, j int) { col[i], col[j] = col[j], col[i] })
	return col
}

// SelectivityCount returns the number of rows of the label's class in a
// table of n rows, matching selectivityColumn's assignment.
func SelectivityCount(n int, fraction float64) int {
	return int(fraction * float64(n))
}

func randAddress(rng *rand.Rand) string {
	return fmt.Sprintf("%d %s St.", rng.Intn(9000)+100, []string{"Oak", "Pine", "Maple", "Cedar", "Elm"}[rng.Intn(5)])
}

func randPhone(rng *rand.Rand) string {
	return fmt.Sprintf("%02d-%03d-%03d-%04d", rng.Intn(25)+10, rng.Intn(1000), rng.Intn(1000), rng.Intn(10000))
}

func randDate(rng *rand.Rand) string {
	return fmt.Sprintf("%04d-%02d-%02d", 1992+rng.Intn(7), rng.Intn(12)+1, rng.Intn(28)+1)
}

var commentWords = []string{
	"carefully", "final", "deposits", "sleep", "furiously", "quickly",
	"bold", "accounts", "requests", "ironic", "packages", "regular",
}

func randComment(rng *rand.Rand) string {
	n := rng.Intn(4) + 3
	s := ""
	for i := 0; i < n; i++ {
		if i > 0 {
			s += " "
		}
		s += commentWords[rng.Intn(len(commentWords))]
	}
	return s
}

// CustomerJoinValue returns the custkey join-column encoding used by the
// encrypted schemes.
func CustomerJoinValue(c Customer) []byte {
	return []byte(strconv.Itoa(c.CustKey))
}

// OrderJoinValue returns the custkey join-column encoding for orders.
func OrderJoinValue(o Order) []byte {
	return []byte(strconv.Itoa(o.CustKey))
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
