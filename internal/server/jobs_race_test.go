package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/securejoin"
)

// TestJobAttachReapRace pins the attach-vs-reaper contract: the TTL
// reaper must never DeleteJob a spool an in-flight attach is streaming
// (the attach pins the job), so every attach racing a forced reap
// either delivers the full identical result or fails with the typed
// unknown-job error — never a raw spool read error mid-stream.
func TestJobAttachReapRace(t *testing.T) {
	dir := t.TempDir()
	srv, addr := startDurableServer(t, dir)
	c := dial(t, addr)
	uploadPair(t, c, 16)

	info, err := c.SubmitJoinQuery("L", "R", securejoin.Selection{}, securejoin.Selection{}, client.JoinOpts{})
	if err != nil {
		t.Fatal(err)
	}
	// Draining proves the job reached done, and done implies the result
	// was spooled durably first — so the races below all contend on the
	// spool, the case the pin exists for.
	want, wantRevealed, err := c.WaitJob(info.ID)
	if err != nil {
		t.Fatal(err)
	}

	const attachers = 16
	var wg sync.WaitGroup
	errs := make(chan error, attachers)
	for i := 0; i < attachers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rows, revealed, err := c.WaitJob(info.ID)
			if err != nil {
				errs <- err
				return
			}
			if len(rows) != len(want) || revealed != wantRevealed {
				errs <- fmt.Errorf("partial stream: %d rows / %d pairs, want %d / %d",
					len(rows), revealed, len(want), wantRevealed)
			}
		}()
	}
	// Force-reap concurrently with a cutoff in the future, so every
	// finished unpinned job is eligible on each sweep.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			srv.reapJobs(time.Now().Add(time.Hour))
			time.Sleep(time.Millisecond)
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		if !errors.Is(err, client.ErrUnknownJob) {
			t.Fatalf("attach racing the reaper: %v, want a full stream or client.ErrUnknownJob", err)
		}
	}
}

// TestJobSubmitAttachReapStress runs submit, attach and forced reaps
// concurrently (CI repeats it under -race -count=2) — the lock-order
// audit's executable form: jobMu → j.mu nesting only ever happens in
// reapJobs, and no interleaving of the three paths may deadlock, race,
// or surface anything but a full result or typed unknown-job.
func TestJobSubmitAttachReapStress(t *testing.T) {
	srv := New(nil)
	srv.SetJobWorkers(4)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	c := dial(t, addr)
	uploadPair(t, c, 4)

	stop := make(chan struct{})
	var reapWg sync.WaitGroup
	reapWg.Add(1)
	go func() {
		defer reapWg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				srv.reapJobs(time.Now().Add(time.Hour))
				time.Sleep(time.Millisecond)
			}
		}
	}()

	const workers, iters = 4, 3
	var wg sync.WaitGroup
	errs := make(chan error, workers*iters)
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				var info *client.JobInfo
				err := client.WithRetry(client.RetryConfig{Base: 5 * time.Millisecond}, func() error {
					var rerr error
					info, rerr = c.SubmitJoinQuery("L", "R", securejoin.Selection{}, securejoin.Selection{}, client.JoinOpts{})
					return rerr
				})
				if err != nil {
					errs <- fmt.Errorf("submit: %w", err)
					continue
				}
				rows, _, err := c.WaitJob(info.ID)
				if err != nil {
					// Reaped between done and attach: a legal interleaving
					// with the aggressive sweeper, as long as it is typed.
					if !errors.Is(err, client.ErrUnknownJob) {
						errs <- fmt.Errorf("attach: %w", err)
					}
					continue
				}
				if len(rows) != 4 {
					errs <- fmt.Errorf("attach streamed %d rows, want 4", len(rows))
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	reapWg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestJobPollContextCancel is the PollJobCtx regression: a cancelled
// context interrupts the poll during its (long) wait between status
// requests, instead of the old bare time.Sleep spinning on.
func TestJobPollContextCancel(t *testing.T) {
	srv := New(nil)
	srv.SetJobWorkers(1)
	srv.SetJobQueueDepth(4)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	c := dial(t, addr)
	uploadPair(t, c, 16)

	// Job A occupies the only worker; job B stays queued behind it, so
	// the poll below cannot terminate on its own quickly.

	if _, err := c.SubmitJoinQuery("L", "R", securejoin.Selection{}, securejoin.Selection{}, client.JoinOpts{}); err != nil {
		t.Fatal(err)
	}
	infoB, err := c.SubmitJoinQuery("L", "R", securejoin.Selection{}, securejoin.Selection{}, client.JoinOpts{})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	// A 10s interval means only the cancellation can end the first wait.
	if _, err := c.PollJobCtx(ctx, infoB.ID, 10*time.Second); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled poll: %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancel took %v to interrupt the poll wait", elapsed)
	}
}
