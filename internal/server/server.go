// Package server implements the DBMS-provider side of the
// database-as-a-service model over TCP, speaking the wire v2 protocol:
// a version handshake followed by length-prefixed gob frames. Every
// request on a connection is dispatched on its own goroutine keyed by
// the client-chosen request ID, so clients can pipeline uploads and
// joins; join results are streamed back as bounded JoinBatch frames —
// interleaved with the frames of other in-flight requests — and
// terminated by a summary frame. The server never sees key material:
// it executes SJ.Dec and the hash-based SJ.Match over opaque
// ciphertexts and returns sealed payloads.
package server

import (
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/securejoin"
	"repro/internal/sse"
	"repro/internal/store"
	"repro/internal/wire"
)

// closeGrace bounds how long Close waits for in-flight requests to
// finish writing before force-closing their connections — without it a
// peer that stops reading could block a handler's write, and Close's
// WaitGroup, forever.
var closeGrace = 30 * time.Second

// Server is a TCP front end over an engine.Server.
type Server struct {
	eng    *engine.Server
	logger *log.Logger
	batch  int
	store  *store.Store

	// Observability and admission control (see observe.go). The
	// registry holds the engine's, the store's and the wire layer's
	// metrics together; limits are configured before Listen.
	reg             *metrics.Registry
	met             serverMetrics
	started         time.Time
	joinSem         chan struct{} // global join-worker semaphore; nil = unlimited
	maxJoinsPerConn int
	idleTimeout     atomic.Int64 // nanoseconds; 0 = no idle timeout
	http            *http.Server // optional /metrics + /healthz endpoint

	// countersMu makes each leakage-counter checkpoint a consistent
	// read-then-append: without it two finishing joins could write
	// their snapshots to the manifest in the opposite order they read
	// them, leaving the older one as the durable tail.
	countersMu sync.Mutex

	// Async job subsystem (see jobs.go): the job table, the bounded
	// worker pool executing ALL join work (sync and submitted), and its
	// FIFO task queue. Pool sizing is configured before Serve.
	jobMu         sync.Mutex
	jobs          map[string]*job
	jobWorkers    int
	jobQueueDepth int
	jobTTL        time.Duration
	taskQueue     chan joinTask
	poolOnce      sync.Once

	done      chan struct{}
	closeOnce sync.Once
	ln        net.Listener

	connMu sync.Mutex
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup // accept loop + live connections + join workers
}

// New returns a server with an empty in-memory table store. logger may
// be nil to disable logging.
func New(logger *log.Logger) *Server {
	return NewWithStore(logger, nil)
}

// NewWithStore returns a server backed by a durable table store: every
// table the store recovered is re-registered (with its SSE index) and
// the persisted leakage counters are restored, then uploads committed
// over the wire persist through the store before they are acked. st may
// be nil for the in-memory behavior of New. The server owns the store
// from here on: Close closes it.
func NewWithStore(logger *log.Logger, st *store.Store) *Server {
	reg := metrics.NewRegistry()
	s := &Server{
		eng:             engine.NewServer(),
		logger:          logger,
		batch:           engine.DefaultBatchSize,
		store:           st,
		reg:             reg,
		met:             newServerMetrics(reg),
		started:         time.Now(),
		maxJoinsPerConn: maxInFlight,
		jobQueueDepth:   defaultJobQueueDepth,
		jobTTL:          defaultJobTTL,
		jobs:            make(map[string]*job),
		done:            make(chan struct{}),
		conns:           make(map[net.Conn]struct{}),
	}
	// Instrument the engine before the recovery below so the seeded
	// leakage counters land in the gauges too.
	s.eng.Instrument(reg)
	if st != nil {
		st.Instrument(reg)
		tables := st.Tables()
		for _, t := range tables {
			// Upload, not RegisterTable: these versions are already
			// durable, re-persisting them would only churn the manifest.
			s.eng.Upload(t)
			s.logf("recovered table %q (%d rows, indexed=%v)", t.Name, len(t.Rows), t.Index != nil)
		}
		s.eng.SeedLeakageCounters(st.Counters())
		s.eng.SetStore(st)
		s.recoverJobs(st)
		s.logf("store %s: %d tables recovered, %d damaged", st.Dir(), len(tables), len(st.Damaged()))
	}
	return s
}

// SetBatchSize bounds the number of joined rows per response frame.
// Call before Listen; n <= 0 restores the default.
func (s *Server) SetBatchSize(n int) {
	if n <= 0 {
		n = engine.DefaultBatchSize
	}
	s.batch = n
}

// SetDecryptCache attaches a decrypt-result cache with the given byte
// budget to the underlying engine (budget <= 0 disables caching). Call
// before Listen, like SetBatchSize.
func (s *Server) SetDecryptCache(budget int64) {
	s.eng.SetDecryptCache(budget)
}

// Engine exposes the underlying engine, e.g. for leakage audits in
// tests and examples.
func (s *Server) Engine() *engine.Server { return s.eng }

// Listen starts accepting connections on addr (e.g. "127.0.0.1:0") and
// returns the bound address. Serving happens on background goroutines
// until Close.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("server: listen: %w", err)
	}
	s.Serve(ln)
	return ln.Addr().String(), nil
}

// Serve starts accepting on a caller-provided listener; it returns
// immediately, serving on background goroutines until Close. The first
// call also starts the join worker pool and the job TTL reaper, so the
// pool-sizing setters must run before it.
func (s *Server) Serve(ln net.Listener) {
	s.startJobPool()
	s.ln = ln
	s.wg.Add(1)
	go s.acceptLoop()
}

// Close stops the listener, lets in-flight requests finish writing
// their responses, and waits for all connection goroutines to exit.
func (s *Server) Close() error {
	var err error
	s.closeOnce.Do(func() {
		close(s.done)
		if s.ln != nil {
			err = s.ln.Close()
		}
		if s.http != nil {
			s.http.Close()
		}
		// Half-close live connections: the read side unblocks the
		// request reader, while the write side stays open so in-flight
		// requests can still deliver their terminal frames.
		s.connMu.Lock()
		for c := range s.conns {
			if tc, ok := c.(*net.TCPConn); ok {
				tc.CloseRead()
			} else {
				c.Close()
			}
		}
		s.connMu.Unlock()
		// If a peer stops reading, its handler's write never finishes;
		// after the grace period force-close whatever is left so Wait
		// cannot hang forever.
		force := time.AfterFunc(closeGrace, func() {
			s.connMu.Lock()
			for c := range s.conns {
				c.Close()
			}
			s.connMu.Unlock()
		})
		// The workers exit on done without draining the queue, but a
		// session may be blocked in reqs.Wait on a queued sync join (and
		// job waiters on queued jobs) — drain and abort those tasks until
		// every connection and worker has finished.
		var drainStop chan struct{}
		if s.taskQueue != nil {
			drainStop = make(chan struct{})
			go s.drainTasks(drainStop)
		}
		s.wg.Wait()
		if drainStop != nil {
			close(drainStop)
			// Abort whatever is still queued (only detached jobs can
			// remain: a queued sync join implies a live session, and those
			// all finished above) so their waiters' channels close and
			// their failure reaches the store before it does.
		drain:
			for {
				select {
				case t := <-s.taskQueue:
					s.abortTask(t)
				default:
					break drain
				}
			}
		}
		force.Stop()
		// With no request left in flight the manifest is quiescent;
		// release it so a successor process can recover the directory.
		if s.store != nil {
			if cerr := s.store.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}
	})
	return err
}

// acceptLoop accepts until the listener closes. Transient Accept
// errors (e.g. EMFILE) back off exponentially instead of killing the
// listener.
func (s *Server) acceptLoop() {
	defer s.wg.Done()
	backoff := 5 * time.Millisecond
	const maxBackoff = time.Second
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.done:
				return
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return
			}
			s.logf("accept error (retrying in %v): %v", backoff, err)
			select {
			case <-time.After(backoff):
			case <-s.done:
				return
			}
			if backoff *= 2; backoff > maxBackoff {
				backoff = maxBackoff
			}
			continue
		}
		backoff = 5 * time.Millisecond
		if !s.track(conn) {
			continue
		}
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

// track registers a connection for Close's shutdown sweep. A
// connection accepted concurrently with Close (after the sweep already
// ran) is closed immediately instead of escaping it.
func (s *Server) track(conn net.Conn) bool {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	select {
	case <-s.done:
		conn.Close()
		return false
	default:
	}
	s.conns[conn] = struct{}{}
	s.met.ConnsTotal.Inc()
	s.met.ActiveConns.Inc()
	return true
}

// maxInFlight caps the concurrently executing requests per connection;
// joins cost thousands of pairings each, so an unbounded pipeline
// would let one client occupy arbitrary CPU and memory. When the cap
// is reached the connection's request reader blocks, backpressuring
// the client through TCP.
const maxInFlight = 32

// session is the per-connection state: the framed conn, a write lock
// serializing frames of concurrently executing requests, a wait group
// and semaphore tracking those requests, the staging area of chunked
// uploads, and the cancellation channels of in-flight joins.
type session struct {
	srv     *Server
	conn    *wire.Conn
	writeMu sync.Mutex
	reqs    sync.WaitGroup
	sem     chan struct{}
	gate    joinGate // per-connection join admission (see observe.go)

	// closed is closed when the connection's read loop exits — the
	// client is gone — so blocking handlers (AttachJob waiting on a
	// running job) stop waiting for someone who will never read the
	// answer.
	closed chan struct{}

	// staging is touched only by the connection's read loop (uploads
	// run inline there for ordering), so it needs no lock.
	staging map[string][]*engine.EncryptedRow

	cancelMu sync.Mutex
	cancels  map[uint64]chan struct{}
}

// registerCancel creates the cancellation channel for a request. It
// runs on the read loop before the request is dispatched, so a Cancel
// arriving later on the same connection always finds it.
func (ss *session) registerCancel(id uint64) {
	ss.cancelMu.Lock()
	ss.cancels[id] = make(chan struct{})
	ss.cancelMu.Unlock()
}

// cancel closes a request's cancellation channel if the request is
// still in flight; cancels for finished or unknown IDs are ignored.
func (ss *session) cancel(id uint64) {
	ss.cancelMu.Lock()
	if ch, ok := ss.cancels[id]; ok {
		select {
		case <-ch: // already cancelled
		default:
			close(ch)
		}
	}
	ss.cancelMu.Unlock()
}

// cancelled returns the request's cancellation channel (nil for
// requests that never registered one).
func (ss *session) cancelled(id uint64) <-chan struct{} {
	ss.cancelMu.Lock()
	defer ss.cancelMu.Unlock()
	return ss.cancels[id]
}

// clearCancel removes a finished request's cancellation channel.
func (ss *session) clearCancel(id uint64) {
	ss.cancelMu.Lock()
	delete(ss.cancels, id)
	ss.cancelMu.Unlock()
}

func (ss *session) send(f *wire.Frame) error {
	ss.writeMu.Lock()
	defer ss.writeMu.Unlock()
	if err := ss.conn.Send(f); err != nil {
		return err
	}
	ss.srv.met.FramesOut.Inc()
	return nil
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.connMu.Lock()
		delete(s.conns, conn)
		s.connMu.Unlock()
		conn.Close()
		s.met.ActiveConns.Dec()
	}()

	wc := wire.NewConn(conn)
	if err := wire.ServerHandshake(wc); err != nil {
		s.logf("handshake with %s: %v", conn.RemoteAddr(), err)
		return
	}
	ss := &session{
		srv:     s,
		conn:    wc,
		sem:     make(chan struct{}, maxInFlight),
		closed:  make(chan struct{}),
		staging: make(map[string][]*engine.EncryptedRow),
		cancels: make(map[uint64]chan struct{}),
	}
	for {
		// With an idle timeout configured, every blocking read carries a
		// deadline. Expiry while requests are still executing is not
		// idleness (the client is waiting on us, not the reverse) — the
		// loop just re-arms and keeps reading.
		idle := time.Duration(s.idleTimeout.Load())
		if idle > 0 {
			conn.SetReadDeadline(time.Now().Add(idle))
		}
		var req wire.Request
		if err := wc.Recv(&req); err != nil {
			if idle > 0 && errors.Is(err, os.ErrDeadlineExceeded) {
				// In-flight work lives either in a request slot or — for
				// joins, which execute on the worker pool — in the
				// connection's join gate; either one means not idle.
				if len(ss.sem) > 0 || ss.gate.joins.Load() > 0 {
					continue
				}
				// Typed close notice (ID 0 = connection-level, see wire)
				// so the client reports ErrIdleClosed, not a bare EOF.
				s.met.IdleClosed.Inc()
				s.logf("closing idle connection %s after %v", conn.RemoteAddr(), idle)
				ss.send(&wire.Frame{Code: wire.CodeIdleTimeout, Err: "connection idle timeout exceeded"})
				break
			}
			if err != io.EOF && !errors.Is(err, net.ErrClosed) {
				s.logf("read from %s: %v", conn.RemoteAddr(), err)
			}
			break
		}
		s.met.FramesIn.Inc()
		// Cancels are handled on the read loop itself — they must not
		// queue behind the heavy requests they are trying to cancel —
		// and so is their ack, keeping a cancel flood bounded by the
		// same TCP backpressure as everything else.
		if req.Cancel != 0 {
			started := time.Now()
			ss.cancel(req.Cancel)
			ss.send(&wire.Frame{ID: req.ID, Ok: true})
			s.met.ReqSeconds.With("cancel").Observe(time.Since(started).Seconds())
			continue
		}
		// Uploads run inline too: chunks of one staged upload sequence
		// are order-dependent, and read-loop execution is the ordering
		// guarantee (they are cheap — no pairings — unlike joins).
		if req.Upload != nil {
			started := time.Now()
			if err := ss.handleUpload(req.ID, req.Upload); err != nil {
				s.logf("request %d: writing response: %v", req.ID, err)
			}
			s.met.ReqSeconds.With("upload").Observe(time.Since(started).Seconds())
			continue
		}
		if req.Join != nil {
			// Admission control runs on the read loop, so a shed response
			// never queues behind the very load it is reporting. An
			// admitted join is handed to the worker pool's FIFO queue
			// rather than its own goroutine; a full queue sheds exactly
			// like an exhausted semaphore.
			if !ss.admitJoin(req.ID) {
				continue
			}
			ss.registerCancel(req.ID)
			ss.reqs.Add(1)
			if !s.enqueueJoin(joinTask{ss: ss, id: req.ID, jr: req.Join}) {
				ss.clearCancel(req.ID)
				ss.releaseJoin()
				ss.reqs.Done()
				s.shed(ss, req.ID, "join queue full")
			}
			continue
		}
		ss.sem <- struct{}{}
		ss.reqs.Add(1)
		go func(req wire.Request) {
			defer func() {
				<-ss.sem
				ss.reqs.Done()
			}()
			ss.handle(&req)
		}(req)
	}
	// Unblock handlers waiting on behalf of this client (job attaches):
	// the peer is gone, so there is no one left to stream to.
	close(ss.closed)
	// The read loop is the only producer of staged upload chunks, so
	// once it exits no Commit can arrive: drop any half-finished
	// sequence now instead of pinning its rows while pipelined joins
	// drain below. Nothing of it was ever durable — the store is only
	// written on Commit.
	clear(ss.staging)
	// Let pipelined requests finish writing before the conn closes.
	ss.reqs.Wait()
}

// handle dispatches the request kinds that run on their own goroutine
// (uploads and cancels are handled on the read loop, and joins on the
// worker pool — see serveConn).
func (ss *session) handle(req *wire.Request) {
	var err error
	started := time.Now()
	kind := ""
	switch {
	case req.Submit != nil:
		kind = "submit"
		err = ss.handleSubmit(req.ID, req.Submit)
	case req.JobStatus != "":
		kind = "jobstatus"
		err = ss.handleJobStatus(req.ID, req.JobStatus)
	case req.Attach != "":
		kind = "attach"
		err = ss.handleAttach(req.ID, req.Attach)
	case req.Describe:
		kind = "describe"
		err = ss.handleDescribe(req.ID)
	case req.Ping:
		// The ack doubles as the protocol's health probe: readiness and
		// key gauges ride the Ok frame (gob-additive — old clients just
		// see the ack).
		kind = "ping"
		err = ss.send(&wire.Frame{ID: req.ID, Ok: true, Health: ss.srv.health()})
	default:
		err = ss.sendErr(req.ID, errors.New("server: empty request"))
	}
	if kind != "" {
		ss.srv.met.ReqSeconds.With(kind).Observe(time.Since(started).Seconds())
	}
	if err != nil {
		ss.srv.logf("request %d: writing response: %v", req.ID, err)
	}
}

func (ss *session) sendErr(id uint64, err error) error {
	return ss.send(&wire.Frame{ID: id, Err: err.Error()})
}

// handleDescribe answers a catalog-sync request with the stored tables'
// names, row counts and SSE-index presence — the metadata a client-side
// SQL planner needs to pick prefiltered plans automatically.
func (ss *session) handleDescribe(id uint64) error {
	stats := ss.srv.eng.TableStats()
	list := &wire.TableList{Tables: make([]wire.TableInfo, len(stats))}
	for i, st := range stats {
		list.Tables[i] = wire.TableInfo{
			Name: st.Name, Rows: st.Rows, Indexed: st.Indexed,
			Shard: st.Shard, ShardCount: st.ShardCount, NDV: st.NDV,
		}
	}
	return ss.send(&wire.Frame{ID: id, Tables: list})
}

// clampWorkers bounds a client's SJ.Dec worker hint: the hint cannot
// commandeer more goroutines than the server has cores, and 0 (or a
// negative value, including from clients that predate the field) keeps
// the engine default.
func clampWorkers(hint int) int {
	if hint < 0 {
		return 0
	}
	if max := runtime.GOMAXPROCS(0); hint > max {
		return max
	}
	return hint
}

// handleUpload stages each chunk of an upload sequence and installs
// the table atomically on the Commit chunk, so a sequence that fails
// or is abandoned mid-way never leaves a truncated table visible.
func (ss *session) handleUpload(id uint64, up *wire.UploadRequest) error {
	rows := make([]*engine.EncryptedRow, len(up.Rows))
	for i, r := range up.Rows {
		var ct securejoin.RowCiphertext
		if err := ct.UnmarshalBinary(r.JoinCiphertext); err != nil {
			// A failed chunk aborts the sequence; free whatever it
			// staged instead of pinning it for the connection's life.
			delete(ss.staging, up.Table)
			return ss.sendErr(id, fmt.Errorf("row %d: %w", i, err))
		}
		rows[i] = &engine.EncryptedRow{Join: &ct, Payload: r.Payload}
	}
	if !up.Append {
		// First chunk of a sequence discards any stale staging left by
		// an earlier abandoned upload of the same table.
		delete(ss.staging, up.Table)
	}
	staged := append(ss.staging[up.Table], rows...)
	if up.Commit {
		delete(ss.staging, up.Table)
	} else {
		ss.staging[up.Table] = staged
	}
	if up.Commit {
		// The shard annotations of a cluster upload ride the Commit
		// chunk's metadata into the engine (and, via SaveTable, the
		// store): the server stores and joins a shard exactly like a
		// whole table, but Describe echoes the annotations so clients
		// can verify which partition this backend holds.
		table := &engine.EncryptedTable{Name: up.Table, Rows: staged, Shard: up.Shard, ShardCount: up.ShardCount, NDV: up.NDV}
		if len(up.Index) > 0 {
			idx := &sse.Index{}
			if err := idx.UnmarshalBinary(up.Index); err != nil {
				return ss.sendErr(id, fmt.Errorf("index: %w", err))
			}
			table.Index = idx
		}
		// Persist (when a store is attached) before the ack below: a
		// client that saw Ok on its Commit chunk must find the table
		// after a server restart.
		if err := ss.srv.eng.RegisterTable(table); err != nil {
			return ss.sendErr(id, err)
		}
		if up.ShardCount > 0 {
			ss.srv.logf("uploaded table %q shard %d/%d (%d rows, indexed=%v)", up.Table, up.Shard, up.ShardCount, len(staged), table.Index != nil)
		} else {
			ss.srv.logf("uploaded table %q (%d rows, indexed=%v)", up.Table, len(staged), table.Index != nil)
		}
	} else {
		ss.srv.logf("staged %d rows for table %q", len(rows), up.Table)
	}
	return ss.send(&wire.Frame{ID: id, Ok: true})
}

// joinSpecFrom parses a wire join request — tokens and optional SSE
// prefilters — into the engine spec it describes. Shared by the sync
// join path and the async job executor (which also validates submits
// with it, so malformed tokens fail at submit time).
func (s *Server) joinSpecFrom(jr *wire.JoinRequest) (engine.JoinSpec, error) {
	var ta, tb securejoin.Token
	if err := ta.UnmarshalBinary(jr.TokenA); err != nil {
		return engine.JoinSpec{}, fmt.Errorf("token A: %w", err)
	}
	if err := tb.UnmarshalBinary(jr.TokenB); err != nil {
		return engine.JoinSpec{}, fmt.Errorf("token B: %w", err)
	}
	q := &securejoin.Query{TokenA: &ta, TokenB: &tb}

	spec := engine.JoinSpec{
		Query: q, Batch: s.batch, Workers: clampWorkers(jr.Workers),
		// Semi-join candidate lists and key-only projection flags pass
		// straight through; the engine intersects candidates with any
		// prefilter and drops out-of-range ids defensively.
		CandidatesA: jr.CandidatesA, CandidatesB: jr.CandidatesB,
		SkipPayloadA: jr.SkipPayloadA, SkipPayloadB: jr.SkipPayloadB,
	}
	if len(jr.PrefilterA) > 0 || len(jr.PrefilterB) > 0 {
		pf := &engine.PrefilterQuery{Join: q}
		if len(jr.PrefilterA) > 0 {
			toks, err := sse.UnmarshalTokenMap(jr.PrefilterA)
			if err != nil {
				return engine.JoinSpec{}, fmt.Errorf("prefilter A: %w", err)
			}
			pf.TokensA = toks
		}
		if len(jr.PrefilterB) > 0 {
			toks, err := sse.UnmarshalTokenMap(jr.PrefilterB)
			if err != nil {
				return engine.JoinSpec{}, fmt.Errorf("prefilter B: %w", err)
			}
			pf.TokensB = toks
		}
		spec.Prefilter = pf
	}
	return spec, nil
}

// sendRowBatches streams joined rows to the client re-split into frames
// bounded by both the configured row count and a byte budget: the
// engine's batch bounds probe-side rows, but duplicate join keys can
// multiply the output (skewed keys turn 2 probe rows into thousands of
// matches), and sealed payloads can be large. Shared by the sync join
// path and job attachment.
func (ss *session) sendRowBatches(id uint64, rows []wire.JoinedRow) (int, error) {
	sent := 0
	for len(rows) > 0 {
		n, bytes := 0, 0
		for n < len(rows) && (n == 0 || (n < ss.srv.batch && bytes < wire.FrameByteBudget)) {
			bytes += len(rows[n].PayloadA) + len(rows[n].PayloadB) + 64
			n++
		}
		ss.srv.met.BatchBytes.Add(uint64(bytes))
		if err := ss.send(&wire.Frame{ID: id, Batch: &wire.JoinBatch{Rows: rows[:n:n]}}); err != nil {
			return sent, err
		}
		sent += n
		rows = rows[n:]
	}
	return sent, nil
}

func (ss *session) handleJoin(id uint64, jr *wire.JoinRequest) error {
	defer ss.clearCancel(id)
	spec, err := ss.srv.joinSpecFrom(jr)
	if err != nil {
		return ss.sendErr(id, err)
	}
	stream, err := ss.srv.eng.OpenJoin(jr.TableA, jr.TableB, spec)
	if err != nil {
		return ss.sendErr(id, err)
	}
	// Whatever ends this request — drain, cancel, engine error, dead
	// peer — the leakage observed so far must reach the audit log, and
	// the updated counters must reach the store. Defers run LIFO, so
	// the stream closes (recording its trace) before the checkpoint.
	defer ss.srv.persistCounters()
	defer stream.Close()
	cancelled := ss.cancelled(id)
	sent := 0
	for {
		select {
		case <-cancelled:
			ss.srv.logf("join %q x %q cancelled after %d rows", jr.TableA, jr.TableB, sent)
			return ss.sendErr(id, errors.New("join cancelled"))
		default:
		}
		rows, err := stream.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return ss.sendErr(id, err)
		}
		out := make([]wire.JoinedRow, len(rows))
		for i, r := range rows {
			out[i] = wire.JoinedRow{
				RowA: r.RowA, RowB: r.RowB,
				PayloadA: r.PayloadA, PayloadB: r.PayloadB,
			}
		}
		n, err := ss.sendRowBatches(id, out)
		sent += n
		if err != nil {
			// Best effort: if the conn is still alive (e.g. a single row
			// overflowed the frame limit) the client must still get a
			// terminal frame.
			ss.sendErr(id, fmt.Errorf("streaming result: %v", err))
			return err
		}
	}
	revealed := stream.RevealedPairs()
	ss.srv.logf("join %q x %q: %d result rows, %d revealed pairs", jr.TableA, jr.TableB, sent, revealed)
	return ss.send(&wire.Frame{ID: id, Summary: &wire.JoinSummary{RevealedPairs: revealed}})
}

// persistCounters checkpoints the engine's per-table leakage counters
// to the store after a join. Best-effort by design: table data is never
// at risk, and a crash between a join's trace recording and its
// checkpoint costs at most that one join's counter increments.
func (s *Server) persistCounters() {
	if s.store == nil {
		return
	}
	s.countersMu.Lock()
	defer s.countersMu.Unlock()
	if err := s.store.RecordCounters(s.eng.LeakageCounters()); err != nil {
		s.logf("persisting leakage counters: %v", err)
	}
}

func (s *Server) logf(format string, args ...any) {
	if s.logger != nil {
		s.logger.Printf(format, args...)
	}
}
