// Package server implements the DBMS-provider side of the
// database-as-a-service model over TCP. The protocol is length-prefixed
// gob: the client uploads encrypted tables and issues join-query tokens;
// the server — which never sees key material — executes SJ.Dec and the
// hash-based SJ.Match and streams back the sealed payloads of matching
// row pairs.
package server

import (
	"encoding/gob"
	"errors"
	"fmt"
	"log"
	"net"
	"sync"

	"repro/internal/engine"
	"repro/internal/securejoin"
	"repro/internal/wire"
)

// Server is a TCP front end over an engine.Server.
type Server struct {
	mu     sync.Mutex
	eng    *engine.Server
	ln     net.Listener
	done   chan struct{}
	logger *log.Logger
}

// New returns a server with an empty table store. logger may be nil to
// disable logging.
func New(logger *log.Logger) *Server {
	return &Server{eng: engine.NewServer(), done: make(chan struct{}), logger: logger}
}

// Listen starts accepting connections on addr (e.g. "127.0.0.1:0") and
// returns the bound address. Serving happens on background goroutines
// until Close.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("server: listen: %w", err)
	}
	s.ln = ln
	go s.acceptLoop()
	return ln.Addr().String(), nil
}

// Close stops the listener. In-flight connections finish their current
// request.
func (s *Server) Close() error {
	close(s.done)
	if s.ln != nil {
		return s.ln.Close()
	}
	return nil
}

func (s *Server) acceptLoop() {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.done:
				return
			default:
			}
			s.logf("accept error: %v", err)
			return
		}
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		var req wire.Request
		if err := dec.Decode(&req); err != nil {
			return // client hung up
		}
		resp := s.handle(&req)
		if err := enc.Encode(resp); err != nil {
			s.logf("encode response: %v", err)
			return
		}
	}
}

func (s *Server) handle(req *wire.Request) *wire.Response {
	switch {
	case req.Upload != nil:
		return s.handleUpload(req.Upload)
	case req.Join != nil:
		return s.handleJoin(req.Join)
	case req.Ping:
		return &wire.Response{}
	default:
		return errResponse(errors.New("server: empty request"))
	}
}

func (s *Server) handleUpload(up *wire.UploadRequest) *wire.Response {
	table := &engine.EncryptedTable{Name: up.Table, Rows: make([]*engine.EncryptedRow, len(up.Rows))}
	for i, r := range up.Rows {
		var ct securejoin.RowCiphertext
		if err := ct.UnmarshalBinary(r.JoinCiphertext); err != nil {
			return errResponse(fmt.Errorf("row %d: %w", i, err))
		}
		table.Rows[i] = &engine.EncryptedRow{Join: &ct, Payload: r.Payload}
	}
	s.mu.Lock()
	s.eng.Upload(table)
	s.mu.Unlock()
	s.logf("uploaded table %q (%d rows)", up.Table, len(up.Rows))
	return &wire.Response{}
}

func (s *Server) handleJoin(jr *wire.JoinRequest) *wire.Response {
	var ta, tb securejoin.Token
	if err := ta.UnmarshalBinary(jr.TokenA); err != nil {
		return errResponse(fmt.Errorf("token A: %w", err))
	}
	if err := tb.UnmarshalBinary(jr.TokenB); err != nil {
		return errResponse(fmt.Errorf("token B: %w", err))
	}
	q := &securejoin.Query{TokenA: &ta, TokenB: &tb}

	s.mu.Lock()
	rows, trace, err := s.eng.ExecuteJoin(jr.TableA, jr.TableB, q)
	s.mu.Unlock()
	if err != nil {
		return errResponse(err)
	}
	out := &wire.JoinResponse{Rows: make([]wire.JoinedRow, len(rows))}
	for i, r := range rows {
		out.Rows[i] = wire.JoinedRow{
			RowA: r.RowA, RowB: r.RowB,
			PayloadA: r.PayloadA, PayloadB: r.PayloadB,
		}
	}
	out.RevealedPairs = trace.Pairs.Len()
	s.logf("join %q x %q: %d result rows, %d revealed pairs", jr.TableA, jr.TableB, len(rows), out.RevealedPairs)
	return &wire.Response{Join: out}
}

func errResponse(err error) *wire.Response {
	return &wire.Response{Err: err.Error()}
}

func (s *Server) logf(format string, args ...any) {
	if s.logger != nil {
		s.logger.Printf(format, args...)
	}
}
