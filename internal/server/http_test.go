package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"repro/internal/client"
	"repro/internal/securejoin"
	"repro/internal/wire"
)

// scrape GETs a URL and returns status and body.
func scrape(t *testing.T, url string) (int, string, http.Header) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body), resp.Header
}

// metricValue extracts one sample line ("<series> <value>") from an
// exposition body; series includes any label set, e.g.
// `sj_revealed_pairs{table="Employees"}`.
func metricValue(t *testing.T, text, series string) float64 {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		if rest, ok := strings.CutPrefix(line, series+" "); ok {
			v, err := strconv.ParseFloat(rest, 64)
			if err != nil {
				t.Fatalf("series %s: unparsable value %q", series, rest)
			}
			return v
		}
	}
	t.Fatalf("series %s not found in exposition:\n%s", series, text)
	return 0
}

// TestMetricsEndpointAfterPrefilteredJoin is the end-to-end
// observability check: a prefiltered join over the wire must surface as
// non-zero join-latency histogram samples, decrypted-row counts and
// leakage gauges on the live /metrics endpoint, and /healthz must
// report ready with the stored tables.
func TestMetricsEndpointAfterPrefilteredJoin(t *testing.T) {
	srv := New(nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	maddr, err := srv.ServeMetrics("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	c, err := client.Dial(addr, securejoin.Params{M: 1, T: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	uploadIndexedTestTables(t, c)

	results, revealed, err := c.JoinWith("Teams", "Employees",
		securejoin.Selection{0: [][]byte{[]byte("Web Application")}},
		securejoin.Selection{0: [][]byte{[]byte("Tester")}},
		client.JoinOpts{Prefilter: true, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) == 0 || revealed == 0 {
		t.Fatalf("join returned %d rows, %d revealed pairs; need both non-zero", len(results), revealed)
	}

	status, health, _ := scrape(t, "http://"+maddr+"/healthz")
	if status != http.StatusOK {
		t.Fatalf("/healthz status = %d, want 200", status)
	}
	var h wire.HealthInfo
	if err := json.Unmarshal([]byte(health), &h); err != nil {
		t.Fatalf("/healthz body: %v\n%s", err, health)
	}
	if !h.Ready || h.Tables != 2 {
		t.Fatalf("/healthz = %+v, want ready with 2 tables", h)
	}

	status, text, hdr := scrape(t, "http://"+maddr+"/metrics")
	if status != http.StatusOK {
		t.Fatalf("/metrics status = %d, want 200", status)
	}
	if ct := hdr.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content type = %q", ct)
	}
	if !strings.Contains(text, "# TYPE sj_join_seconds histogram") {
		t.Fatal("join latency histogram not declared in exposition")
	}
	if v := metricValue(t, text, "sj_join_seconds_count"); v < 1 {
		t.Fatalf("sj_join_seconds_count = %v, want >= 1", v)
	}
	if v := metricValue(t, text, "sj_joins_completed_total"); v < 1 {
		t.Fatalf("sj_joins_completed_total = %v, want >= 1", v)
	}
	if v := metricValue(t, text, "sj_rows_decrypted_total"); v < 1 {
		t.Fatalf("sj_rows_decrypted_total = %v, want >= 1", v)
	}
	if v := metricValue(t, text, `sj_revealed_pairs{table="Employees"}`); v < 1 {
		t.Fatalf("revealed-pairs gauge = %v, want >= 1", v)
	}
	if v := metricValue(t, text, `sj_server_request_seconds_count{type="join"}`); v < 1 {
		t.Fatalf("join request latency count = %v, want >= 1", v)
	}
	if v := metricValue(t, text, "sj_server_frames_out_total"); v < 1 {
		t.Fatalf("sj_server_frames_out_total = %v, want >= 1", v)
	}
}

// TestHealthzReportsDraining: once the server begins shutting down the
// probe flips to 503 so load balancers stop routing to it.
func TestHealthzReportsDraining(t *testing.T) {
	srv := New(nil)
	h := srv.HealthzHandler()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("before close: status %d, want 200", rec.Code)
	}

	srv.Close()
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("after close: status %d, want 503", rec.Code)
	}
	var info wire.HealthInfo
	if err := json.Unmarshal(rec.Body.Bytes(), &info); err != nil {
		t.Fatal(err)
	}
	if info.Ready {
		t.Fatal("draining server reports ready")
	}
}
