package server

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
)

// This file exposes the server's registry and health report over plain
// HTTP — the scrape/probe sidecar of the wire protocol. It is served on
// a separate address (sjserver -metrics) so operational traffic never
// shares a port, a listener or a protocol with client ciphertext
// traffic.

// MetricsHandler serves the server's metric registry in Prometheus text
// exposition format.
func (s *Server) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.reg.WritePrometheus(w)
	})
}

// HealthzHandler serves the health report as JSON: HTTP 200 while the
// server is ready (accepting new work), 503 once it is draining — the
// contract a load balancer's readiness probe keys on. The body is the
// same wire.HealthInfo that rides Ping acks.
func (s *Server) HealthzHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		h := s.health()
		w.Header().Set("Content-Type", "application/json")
		if !h.Ready {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(h)
	})
}

// ServeMetrics starts the HTTP observability endpoint on addr (e.g.
// "127.0.0.1:0"), serving /metrics and /healthz on background
// goroutines until Close, and returns the bound address. Call at most
// once, before Close.
func (s *Server) ServeMetrics(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("server: metrics listen: %w", err)
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", s.MetricsHandler())
	mux.Handle("/healthz", s.HealthzHandler())
	s.http = &http.Server{Handler: mux}
	go func() {
		if err := s.http.Serve(ln); err != nil && err != http.ErrServerClosed {
			s.logf("metrics endpoint: %v", err)
		}
	}()
	return ln.Addr().String(), nil
}
