package server

import (
	"testing"

	"repro/internal/client"
	"repro/internal/engine"
	"repro/internal/sql"
)

// TestDescribeTables: the Describe request reports every stored table
// with its row count and SSE-index state, sorted by name, and
// SyncCatalog projects that onto a planner catalog — including marking
// catalog tables the server does not hold as unindexed.
func TestDescribeTables(t *testing.T) {
	addr := startServer(t)
	c := dial(t, addr)

	rows := []engine.PlainRow{
		{JoinValue: []byte("1"), Attrs: [][]byte{[]byte("x")}, Payload: []byte("p1")},
		{JoinValue: []byte("2"), Attrs: [][]byte{[]byte("y")}, Payload: []byte("p2")},
	}
	if err := c.Upload("Plain", rows); err != nil {
		t.Fatal(err)
	}
	if err := c.UploadIndexed("Indexed", rows[:1]); err != nil {
		t.Fatal(err)
	}

	tables, err := c.DescribeTables()
	if err != nil {
		t.Fatal(err)
	}
	want := []client.TableInfo{
		{Name: "Indexed", Rows: 1, Indexed: true, NDV: 1},
		{Name: "Plain", Rows: 2, Indexed: false, NDV: 2},
	}
	if len(tables) != len(want) {
		t.Fatalf("DescribeTables = %+v", tables)
	}
	for i := range want {
		if tables[i] != want[i] {
			t.Fatalf("DescribeTables[%d] = %+v, want %+v", i, tables[i], want[i])
		}
	}

	cat, err := sql.NewCatalog(
		sql.TableSchema{Name: "Indexed", JoinColumn: "k", Attrs: map[string]int{"c": 0}},
		sql.TableSchema{Name: "Plain", JoinColumn: "k", Attrs: map[string]int{"c": 0}},
		// Stale catalog entry for a table the server does not hold: the
		// sync must clear its Indexed flag rather than leave it set.
		sql.TableSchema{Name: "Gone", JoinColumn: "k", Indexed: true},
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.SyncCatalog(cat); err != nil {
		t.Fatal(err)
	}
	for name, wantIdx := range map[string]bool{"Indexed": true, "Plain": false, "Gone": false} {
		s, err := cat.Schema(name)
		if err != nil {
			t.Fatal(err)
		}
		if s.Indexed != wantIdx {
			t.Fatalf("after sync, %s.Indexed = %v, want %v", name, s.Indexed, wantIdx)
		}
	}
}
