package server

import (
	"bytes"
	"errors"
	"sort"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/securejoin"
	"repro/internal/wire"
)

// sortResults orders join results by (RowA, RowB) so streams that
// arrive batched differently compare deterministically.
func sortResults(rows []client.JoinResult) {
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].RowA != rows[j].RowA {
			return rows[i].RowA < rows[j].RowA
		}
		return rows[i].RowB < rows[j].RowB
	})
}

// sameResults asserts two drained joins are identical: row pairs,
// payload bytes, and sigma.
func sameResults(t *testing.T, got, want []client.JoinResult, gotRevealed, wantRevealed int) {
	t.Helper()
	if gotRevealed != wantRevealed {
		t.Fatalf("revealed pairs = %d, want %d", gotRevealed, wantRevealed)
	}
	if len(got) != len(want) {
		t.Fatalf("result rows = %d, want %d", len(got), len(want))
	}
	sortResults(got)
	sortResults(want)
	for i := range got {
		if got[i].RowA != want[i].RowA || got[i].RowB != want[i].RowB {
			t.Fatalf("row %d: (%d,%d), want (%d,%d)",
				i, got[i].RowA, got[i].RowB, want[i].RowA, want[i].RowB)
		}
		if !bytes.Equal(got[i].PayloadA, want[i].PayloadA) ||
			!bytes.Equal(got[i].PayloadB, want[i].PayloadB) {
			t.Fatalf("row %d: payload bytes differ", i)
		}
	}
}

// TestJobLifecycleMatchesSyncJoin submits the same query both ways: the
// async job must produce identical rows, payload bytes and sigma as the
// synchronous join, report a terminal done status with the result
// counts, and stream identically on a second attach.
func TestJobLifecycleMatchesSyncJoin(t *testing.T) {
	addr := startServer(t)
	c := dial(t, addr)
	uploadIndexedTestTables(t, c)

	selA := securejoin.Selection{0: [][]byte{[]byte("Web Application")}}
	selB := securejoin.Selection{0: [][]byte{[]byte("Tester")}}
	want, wantRevealed, err := c.Join("Teams", "Employees", selA, selB)
	if err != nil {
		t.Fatal(err)
	}

	info, err := c.SubmitJoinQuery("Teams", "Employees", selA, selB, client.JoinOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if info.ID == "" {
		t.Fatal("submit ack carries no job ID")
	}
	switch info.State {
	case wire.JobQueued, wire.JobRunning, wire.JobDone:
	default:
		t.Fatalf("submit ack state = %q", info.State)
	}

	got, gotRevealed, err := c.WaitJob(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, got, want, gotRevealed, wantRevealed)

	st, err := c.JobStatus(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != wire.JobDone {
		t.Fatalf("job state after wait = %q, want done", st.State)
	}
	if st.ResultRows != len(want) || st.RevealedPairs != wantRevealed {
		t.Fatalf("status reports %d rows / %d pairs, want %d / %d",
			st.ResultRows, st.RevealedPairs, len(want), wantRevealed)
	}
	if st.RowsDecrypted == 0 || st.StepsDone == 0 {
		t.Fatalf("no progress recorded: %d rows decrypted, %d steps", st.RowsDecrypted, st.StepsDone)
	}

	// A completed job can be re-attached any number of times.
	again, againRevealed, err := c.WaitJob(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, again, want, againRevealed, wantRevealed)

	h, err := c.Health()
	if err != nil {
		t.Fatal(err)
	}
	if h.JobsStored == 0 {
		t.Fatal("health reports no stored jobs after a completed job")
	}
}

// TestJobStatusUnknownJob: an ID that was never submitted answers the
// typed unknown-job error on both the poll and the attach path.
func TestJobStatusUnknownJob(t *testing.T) {
	addr := startServer(t)
	c := dial(t, addr)
	if _, err := c.JobStatus("deadbeefdeadbeef"); !errors.Is(err, client.ErrUnknownJob) {
		t.Fatalf("status of unknown job: %v, want client.ErrUnknownJob", err)
	}
	if _, _, err := c.WaitJob("deadbeefdeadbeef"); !errors.Is(err, client.ErrUnknownJob) {
		t.Fatalf("wait on unknown job: %v, want client.ErrUnknownJob", err)
	}
}

// TestJobAttachAfterDisconnect is the detachment proof: the submitting
// connection closes right after the submit ack, and a brand-new
// connection (same key file) attaches and drains the full result.
func TestJobAttachAfterDisconnect(t *testing.T) {
	addr := startServer(t)
	c1, err := client.Dial(addr, securejoin.Params{M: 1, T: 2})
	if err != nil {
		t.Fatal(err)
	}
	keys := c1.Keys()
	uploadIndexedTestTables(t, c1)

	selA := securejoin.Selection{0: [][]byte{[]byte("Web Application")}}
	selB := securejoin.Selection{0: [][]byte{[]byte("Tester")}}
	want, wantRevealed, err := c1.Join("Teams", "Employees", selA, selB)
	if err != nil {
		t.Fatal(err)
	}
	info, err := c1.SubmitJoinQuery("Teams", "Employees", selA, selB, client.JoinOpts{})
	if err != nil {
		t.Fatal(err)
	}
	// Hang up while the job is (at best) just starting; the job must
	// keep executing without its submitter.
	c1.Close()

	c2, err := client.DialWithKeys(addr, keys)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c2.Close() })
	got, gotRevealed, err := c2.WaitJob(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, got, want, gotRevealed, wantRevealed)
}

// TestJobSurvivesRestart is the durability proof: a completed job's
// spooled result is recovered by a brand-new server process on the same
// data dir, and a fresh connection attaches and receives the identical
// rows, payload bytes and sigma.
func TestJobSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	srv1, addr1 := startDurableServer(t, dir)
	c1, err := client.Dial(addr1, securejoin.Params{M: 1, T: 2})
	if err != nil {
		t.Fatal(err)
	}
	keys := c1.Keys()
	uploadIndexedTestTables(t, c1)

	selA := securejoin.Selection{0: [][]byte{[]byte("Web Application")}}
	selB := securejoin.Selection{0: [][]byte{[]byte("Tester")}}
	info, err := c1.SubmitJoinQuery("Teams", "Employees", selA, selB, client.JoinOpts{})
	if err != nil {
		t.Fatal(err)
	}
	// Draining the job proves it reached done — and done implies the
	// result was spooled durably first (spool-before-done invariant).
	want, wantRevealed, err := c1.WaitJob(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	c1.Close()
	if err := srv1.Close(); err != nil {
		t.Fatal(err)
	}

	// The restart: nothing carried over but the directory.
	srv2, addr2 := startDurableServer(t, dir)
	c2, err := client.DialWithKeys(addr2, keys)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c2.Close() })

	st, err := c2.JobStatus(info.ID)
	if err != nil {
		t.Fatalf("status after restart: %v", err)
	}
	if st.State != wire.JobDone {
		t.Fatalf("recovered job state = %q, want done", st.State)
	}
	got, gotRevealed, err := c2.WaitJob(info.ID)
	if err != nil {
		t.Fatalf("attach after restart: %v", err)
	}
	sameResults(t, got, want, gotRevealed, wantRevealed)

	// Queued/running jobs do not survive: an ID the new process never
	// recovered answers the typed unknown-job error (resubmit signal).
	if _, err := c2.JobStatus("0123456789abcdef"); !errors.Is(err, client.ErrUnknownJob) {
		t.Fatalf("unrecovered job: %v, want client.ErrUnknownJob", err)
	}
	_ = srv2
}

// TestSubmitShedsWhenQueueFull pins the composition with admission
// control: one worker, a rendezvous queue (depth 0), a long job holding
// the worker — every submit AND every sync join meanwhile sheds typed
// and retryable, nothing queues, and a retried submit lands once the
// worker frees up.
func TestSubmitShedsWhenQueueFull(t *testing.T) {
	srv := New(nil)
	srv.SetJobWorkers(1)
	srv.SetJobQueueDepth(0)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	c := dial(t, addr)
	uploadPair(t, c, 12)

	// Job A occupies the only worker for its ~24 pairings of work.
	infoA, err := c.SubmitJoinQuery("L", "R", securejoin.Selection{}, securejoin.Selection{}, client.JoinOpts{})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "job A to start running", func() bool {
		st, err := c.JobStatus(infoA.ID)
		return err == nil && st.State != wire.JobQueued
	})

	// With the worker busy and nowhere to queue, both kinds of join
	// work shed immediately.
	if _, err := c.SubmitJoinQuery("L", "R", securejoin.Selection{}, securejoin.Selection{}, client.JoinOpts{}); !errors.Is(err, client.ErrOverloaded) {
		t.Fatalf("submit while worker busy: %v, want client.ErrOverloaded", err)
	}
	if _, _, err := c.Join("L", "R", securejoin.Selection{}, securejoin.Selection{}); !errors.Is(err, client.ErrOverloaded) {
		t.Fatalf("sync join while worker busy: %v, want client.ErrOverloaded", err)
	}
	if srv.met.ShedTotal.Value() < 2 {
		t.Fatalf("shed counter = %d, want >= 2", srv.met.ShedTotal.Value())
	}

	// A shed submit created no job and is safe to retry verbatim; the
	// backoff outlasts job A and the resubmission is accepted.
	var infoC *client.JobInfo
	err = client.WithRetry(client.RetryConfig{Attempts: 40, Base: 100 * time.Millisecond}, func() error {
		var rerr error
		infoC, rerr = c.SubmitJoinQuery("L", "R", securejoin.Selection{}, securejoin.Selection{}, client.JoinOpts{})
		return rerr
	})
	if err != nil {
		t.Fatalf("retried submit: %v", err)
	}
	rows, _, err := c.WaitJob(infoC.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 {
		t.Fatalf("retried job returned %d rows, want 12", len(rows))
	}
	if _, _, err := c.WaitJob(infoA.ID); err != nil {
		t.Fatalf("job A: %v", err)
	}
}

// TestJobReaperExpires: a finished job past its TTL disappears — the
// poll answers unknown-job and the memory entry is gone.
func TestJobReaperExpires(t *testing.T) {
	srv := New(nil)
	srv.SetJobTTL(50 * time.Millisecond) // reaper ticks at the 1s floor
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	c := dial(t, addr)
	uploadPair(t, c, 2)

	info, err := c.SubmitJoinQuery("L", "R", securejoin.Selection{}, securejoin.Selection{}, client.JoinOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.WaitJob(info.ID); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "job to be reaped", func() bool {
		_, err := c.JobStatus(info.ID)
		return errors.Is(err, client.ErrUnknownJob)
	})
	if got := srv.met.JobsReaped.Value(); got == 0 {
		t.Fatalf("reaped counter = %d, want > 0", got)
	}
}
