package server

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"

	"repro/internal/client"
	"repro/internal/engine"
	"repro/internal/securejoin"
	"repro/internal/wire"
)

// uploadPair uploads two joinable test tables with n rows each.
func uploadPair(t *testing.T, c *client.Client, n int) {
	t.Helper()
	mk := func(prefix string) []engine.PlainRow {
		rows := make([]engine.PlainRow, n)
		for i := range rows {
			rows[i] = engine.PlainRow{
				JoinValue: []byte(fmt.Sprintf("k-%d", i)),
				Attrs:     [][]byte{[]byte("x")},
				Payload:   []byte(fmt.Sprintf("%s-%d", prefix, i)),
			}
		}
		return rows
	}
	if err := c.Upload("L", mk("left")); err != nil {
		t.Fatal(err)
	}
	if err := c.Upload("R", mk("right")); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentJoinsOneClient issues joins from many goroutines over a
// single connection; responses are demultiplexed by request ID. Run
// with -race this also exercises the server's parallel execution paths.
func TestConcurrentJoinsOneClient(t *testing.T) {
	addr := startServer(t)
	c := dial(t, addr)
	uploadPair(t, c, 4)

	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			results, revealed, err := c.Join("L", "R", securejoin.Selection{}, securejoin.Selection{})
			if err != nil {
				errs <- err
				return
			}
			if len(results) != 4 {
				errs <- fmt.Errorf("got %d results, want 4", len(results))
				return
			}
			if revealed == 0 {
				errs <- errors.New("revealed pairs = 0")
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestJoinStreamsInBatches forces a tiny batch size and verifies the
// result arrives split across multiple frames with the correct total.
func TestJoinStreamsInBatches(t *testing.T) {
	srv := New(nil)
	srv.SetBatchSize(2)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })

	c := dial(t, addr)
	uploadPair(t, c, 7)

	stream, err := c.JoinQuery("L", "R", securejoin.Selection{}, securejoin.Selection{})
	if err != nil {
		t.Fatal(err)
	}
	batches, rows := 0, 0
	for {
		batch, err := stream.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if len(batch) > 2 {
			t.Fatalf("batch of %d rows exceeds configured size 2", len(batch))
		}
		batches++
		rows += len(batch)
	}
	if rows != 7 {
		t.Fatalf("streamed %d rows, want 7", rows)
	}
	if batches < 4 {
		t.Fatalf("result arrived in %d batches, want >= 4", batches)
	}
	if stream.RevealedPairs() != 7 {
		t.Fatalf("revealed pairs = %d, want 7", stream.RevealedPairs())
	}
}

// TestSequentialDrainOfConcurrentStreams opens two streamed joins at
// once and drains them one after the other from a single goroutine.
// With batch size 1 each stream spans many frames, so this would
// deadlock if a lagging stream could head-of-line block the client's
// demultiplexer.
func TestSequentialDrainOfConcurrentStreams(t *testing.T) {
	srv := New(nil)
	srv.SetBatchSize(1)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	c := dial(t, addr)
	uploadPair(t, c, 12)

	a, err := c.JoinQuery("L", "R", securejoin.Selection{}, securejoin.Selection{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.JoinQuery("L", "R", securejoin.Selection{}, securejoin.Selection{})
	if err != nil {
		t.Fatal(err)
	}
	drain := func(s *client.JoinStream) int {
		t.Helper()
		n := 0
		for {
			batch, err := s.Next()
			if err == io.EOF {
				return n
			}
			if err != nil {
				t.Fatal(err)
			}
			n += len(batch)
		}
	}
	if got := drain(a); got != 12 {
		t.Fatalf("stream A drained %d rows, want 12", got)
	}
	if got := drain(b); got != 12 {
		t.Fatalf("stream B drained %d rows, want 12", got)
	}
}

// TestSkewedJoinRespectsBatchBound: with duplicate join keys the
// engine's probe-side batch multiplies into many joined rows; the
// server must still re-split frames to the configured row bound.
func TestSkewedJoinRespectsBatchBound(t *testing.T) {
	srv := New(nil)
	srv.SetBatchSize(2)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	c := dial(t, addr)

	same := func(prefix string, n int) []engine.PlainRow {
		rows := make([]engine.PlainRow, n)
		for i := range rows {
			rows[i] = engine.PlainRow{
				JoinValue: []byte("k"), // every row shares one join key
				Attrs:     [][]byte{[]byte("x")},
				Payload:   []byte(fmt.Sprintf("%s-%d", prefix, i)),
			}
		}
		return rows
	}
	if err := c.Upload("L", same("left", 3)); err != nil {
		t.Fatal(err)
	}
	if err := c.Upload("R", same("right", 4)); err != nil {
		t.Fatal(err)
	}
	stream, err := c.JoinQuery("L", "R", securejoin.Selection{}, securejoin.Selection{})
	if err != nil {
		t.Fatal(err)
	}
	rows := 0
	for {
		batch, err := stream.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if len(batch) > 2 {
			t.Fatalf("skewed join frame carries %d rows despite batch size 2", len(batch))
		}
		rows += len(batch)
	}
	if rows != 12 { // full cross product of the shared key
		t.Fatalf("skewed join returned %d rows, want 12", rows)
	}
}

// TestAbandonedStreamDoesNotStallConnection closes a join stream before
// draining it; subsequent requests on the same connection must still
// complete.
func TestAbandonedStreamDoesNotStallConnection(t *testing.T) {
	srv := New(nil)
	srv.SetBatchSize(1)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })

	c := dial(t, addr)
	uploadPair(t, c, 6)

	stream, err := c.JoinQuery("L", "R", securejoin.Selection{}, securejoin.Selection{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := stream.Next(); err != nil {
		t.Fatal(err)
	}
	stream.Close()

	if err := c.Ping(); err != nil {
		t.Fatalf("ping after abandoned stream: %v", err)
	}
	results, _, err := c.Join("L", "R", securejoin.Selection{}, securejoin.Selection{})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 6 {
		t.Fatalf("join after abandoned stream: %d rows, want 6", len(results))
	}
	// Both queries — the abandoned one included — are in the audit log.
	if perQuery, _ := srv.Engine().ObservedLeakage(); len(perQuery) != 2 {
		t.Fatalf("audit log has %d traces, want 2", len(perQuery))
	}
}

// TestChunkedUploadLargePayloads uploads a table whose sealed payloads
// exceed the per-frame byte budget, forcing the client to split it into
// a replace-then-append request sequence; the join must still see every
// row with intact payloads (and its response re-splits by bytes too).
func TestChunkedUploadLargePayloads(t *testing.T) {
	if testing.Short() {
		t.Skip("moves ~40 MiB through loopback")
	}
	addr := startServer(t)
	c := dial(t, addr)

	const big = 7 << 20 // 3 rows x 7 MiB > wire.FrameByteBudget (16 MiB)
	mk := func(tag byte, payloadSize int) []engine.PlainRow {
		rows := make([]engine.PlainRow, 3)
		for i := range rows {
			p := make([]byte, payloadSize)
			for j := range p {
				p[j] = tag + byte(i)
			}
			rows[i] = engine.PlainRow{
				JoinValue: []byte(fmt.Sprintf("k-%d", i)),
				Attrs:     [][]byte{[]byte("x")},
				Payload:   p,
			}
		}
		return rows
	}
	if err := c.Upload("Big", mk('A', big)); err != nil {
		t.Fatal(err)
	}
	if err := c.Upload("Small", mk('a', 8)); err != nil {
		t.Fatal(err)
	}
	results, _, err := c.Join("Big", "Small", securejoin.Selection{}, securejoin.Selection{})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("join over chunk-uploaded table: %d rows, want 3", len(results))
	}
	for _, r := range results {
		if len(r.PayloadA) != big {
			t.Fatalf("payload A truncated: %d bytes", len(r.PayloadA))
		}
		want := byte('A' + r.RowA)
		if r.PayloadA[0] != want || r.PayloadA[big-1] != want {
			t.Fatalf("payload A of row %d corrupted", r.RowA)
		}
	}
}

// TestUncommittedUploadInvisible drives the upload staging protocol
// raw: chunks without Commit must not install a table, and the Commit
// chunk installs everything staged atomically.
func TestUncommittedUploadInvisible(t *testing.T) {
	addr := startServer(t)
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	wc := wire.NewConn(raw)
	if err := wire.ClientHandshake(wc); err != nil {
		t.Fatal(err)
	}
	roundTrip := func(req *wire.Request) *wire.Frame {
		t.Helper()
		if err := wc.Send(req); err != nil {
			t.Fatal(err)
		}
		var f wire.Frame
		if err := wc.Recv(&f); err != nil {
			t.Fatal(err)
		}
		if f.ID != req.ID || f.Err != "" || !f.Ok {
			t.Fatalf("upload chunk response: %+v", f)
		}
		return &f
	}
	// First chunk of a sequence, no commit: staged only.
	roundTrip(&wire.Request{ID: 1, Upload: &wire.UploadRequest{Table: "Staged"}})
	if _, err := startServerEngineTable(t, addr, "Staged"); err == nil {
		t.Fatal("uncommitted upload already visible to joins")
	}
	// Commit chunk: the table (empty here) becomes visible atomically.
	roundTrip(&wire.Request{ID: 2, Upload: &wire.UploadRequest{Table: "Staged", Append: true, Commit: true}})
	if _, err := startServerEngineTable(t, addr, "Staged"); err != nil {
		t.Fatalf("committed upload not visible: %v", err)
	}
}

// startServerEngineTable probes table visibility through the public
// surface: a join referencing the table fails with "unknown table"
// until the table is installed.
func startServerEngineTable(t *testing.T, addr, table string) ([]client.JoinResult, error) {
	t.Helper()
	c := dial(t, addr)
	results, _, err := c.Join(table, table, securejoin.Selection{}, securejoin.Selection{})
	return results, err
}

// TestOldProtocolClientRejected dials raw and speaks v1: the server
// must answer with a descriptive rejection instead of hanging.
func TestOldProtocolClientRejected(t *testing.T) {
	addr := startServer(t)
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	wc := wire.NewConn(raw)
	if err := wc.Send(&wire.Hello{Version: 1}); err != nil {
		t.Fatal(err)
	}
	var ack wire.HelloAck
	if err := wc.Recv(&ack); err != nil {
		t.Fatal(err)
	}
	if ack.Err == "" || ack.Version != wire.Version {
		t.Fatalf("ack = %+v, want rejection advertising v%d", ack, wire.Version)
	}
}

// flakyListener fails its first few Accepts with a transient error.
type flakyListener struct {
	net.Listener
	mu       sync.Mutex
	failures int
}

func (l *flakyListener) Accept() (net.Conn, error) {
	l.mu.Lock()
	if l.failures > 0 {
		l.failures--
		l.mu.Unlock()
		return nil, &net.OpError{Op: "accept", Err: errors.New("transient failure")}
	}
	l.mu.Unlock()
	return l.Listener.Accept()
}

// TestAcceptLoopSurvivesTransientErrors: a few failing Accepts must not
// kill the accept loop — the next client still connects.
func TestAcceptLoopSurvivesTransientErrors(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := New(nil)
	srv.Serve(&flakyListener{Listener: ln, failures: 3})
	t.Cleanup(func() { srv.Close() })

	c := dial(t, ln.Addr().String())
	if err := c.Ping(); err != nil {
		t.Fatalf("ping after transient accept errors: %v", err)
	}
}

// TestCloseWaitsForInFlightRequests verifies Close lets a request the
// server is already executing finish: after the first streamed batch
// arrives (so the join is demonstrably in flight), Close must not cut
// off the remaining batches or the summary.
func TestCloseWaitsForInFlightRequests(t *testing.T) {
	srv := New(nil)
	srv.SetBatchSize(1)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c := dial(t, addr)
	uploadPair(t, c, 4)

	stream, err := c.JoinQuery("L", "R", securejoin.Selection{}, securejoin.Selection{})
	if err != nil {
		t.Fatal(err)
	}
	first, err := stream.Next()
	if err != nil {
		t.Fatal(err)
	}
	closed := make(chan error, 1)
	go func() { closed <- srv.Close() }()

	rows := len(first)
	for {
		batch, err := stream.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("in-flight join failed across Close: %v", err)
		}
		rows += len(batch)
	}
	if rows != 4 {
		t.Fatalf("in-flight join returned %d rows, want 4", rows)
	}
	if stream.RevealedPairs() != 4 {
		t.Fatalf("revealed pairs = %d, want 4", stream.RevealedPairs())
	}
	if err := <-closed; err != nil {
		t.Fatal(err)
	}
}
