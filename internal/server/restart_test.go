package server

import (
	"bytes"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/engine"
	"repro/internal/securejoin"
	"repro/internal/store"
	"repro/internal/wire"
)

// startDurableServer opens (or reopens) the data dir and serves a
// store-backed server on a fresh port.
func startDurableServer(t *testing.T, dir string) (*Server, string) {
	t.Helper()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if d := st.Damaged(); len(d) != 0 {
		t.Fatalf("data dir damaged: %v", d)
	}
	srv := NewWithStore(nil, st)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, addr
}

// TestRestartRecoversTablesAndJoins is the end-to-end durability proof:
// two indexed tables uploaded over TCP, a prefiltered join executed,
// the server stopped, a brand-new server started on the same -data dir
// with a fresh connection — and the same join must return identical
// rows (payload bytes included) and the same revealed-pair (sigma)
// count, with the persisted leakage counters carried across too.
func TestRestartRecoversTablesAndJoins(t *testing.T) {
	dir := t.TempDir()
	srv1, addr1 := startDurableServer(t, dir)
	c1, err := client.Dial(addr1, securejoin.Params{M: 1, T: 2})
	if err != nil {
		t.Fatal(err)
	}
	keys := c1.Keys() // survives the restart like a real data owner's key file
	uploadIndexedTestTables(t, c1)

	selA := securejoin.Selection{0: [][]byte{[]byte("Web Application")}}
	selB := securejoin.Selection{0: [][]byte{[]byte("Tester")}}
	opts := client.JoinOpts{Prefilter: true}
	before, beforeRevealed, err := c1.JoinWith("Teams", "Employees", selA, selB, opts)
	if err != nil {
		t.Fatal(err)
	}
	countersBefore := srv1.Engine().LeakageCounters()
	if len(countersBefore) == 0 {
		t.Fatal("join left no leakage counters to persist")
	}

	c1.Close()
	if err := srv1.Close(); err != nil {
		t.Fatal(err)
	}

	// The restart: a new process image — new store handle, new engine,
	// new listener — with nothing carried over but the directory.
	srv2, addr2 := startDurableServer(t, dir)
	if got := srv2.Engine().LeakageCounters(); len(got) != len(countersBefore) {
		t.Fatalf("recovered counters %v, want %v", got, countersBefore)
	} else {
		for k, v := range countersBefore {
			if got[k] != v {
				t.Fatalf("recovered counters %v, want %v", got, countersBefore)
			}
		}
	}
	c2, err := client.DialWithKeys(addr2, keys)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c2.Close() })

	after, afterRevealed, err := c2.JoinWith("Teams", "Employees", selA, selB, opts)
	if err != nil {
		t.Fatal(err)
	}
	if afterRevealed != beforeRevealed {
		t.Fatalf("revealed pairs across restart: %d, was %d", afterRevealed, beforeRevealed)
	}
	if len(after) != len(before) {
		t.Fatalf("result rows across restart: %d, was %d", len(after), len(before))
	}
	for i := range after {
		if after[i].RowA != before[i].RowA || after[i].RowB != before[i].RowB {
			t.Fatalf("row %d: (%d,%d) after restart, was (%d,%d)",
				i, after[i].RowA, after[i].RowB, before[i].RowA, before[i].RowB)
		}
		if !bytes.Equal(after[i].PayloadA, before[i].PayloadA) ||
			!bytes.Equal(after[i].PayloadB, before[i].PayloadB) {
			t.Fatalf("row %d: payload bytes differ across restart", i)
		}
	}
	// Also a full scan, exercising the join path that ignores the
	// recovered SSE index, for the non-prefiltered sigma.
	fullAfter, fullRevealed, err := c2.Join("Teams", "Employees", selA, selB)
	if err != nil {
		t.Fatal(err)
	}
	if len(fullAfter) != len(before) || fullRevealed != beforeRevealed {
		t.Fatalf("full scan after restart: %d rows / %d pairs, want %d / %d",
			len(fullAfter), fullRevealed, len(before), beforeRevealed)
	}
}

// TestRestartAfterOverwrite: the restart serves the *latest* committed
// version of a re-uploaded table — never the replaced rows or their
// stale SSE index.
func TestRestartAfterOverwrite(t *testing.T) {
	dir := t.TempDir()
	srv1, addr1 := startDurableServer(t, dir)
	c1, err := client.Dial(addr1, securejoin.Params{M: 1, T: 2})
	if err != nil {
		t.Fatal(err)
	}
	keys := c1.Keys()

	v1 := []engine.PlainRow{
		{JoinValue: []byte("k"), Attrs: [][]byte{[]byte("red")}, Payload: []byte("v1-red")},
		{JoinValue: []byte("z"), Attrs: [][]byte{[]byte("blue")}, Payload: []byte("v1-blue")},
	}
	// v2 moves "red" to row 1: a stale v1 index would pick row 0,
	// whose v2 join value no longer matches.
	v2 := []engine.PlainRow{
		{JoinValue: []byte("z"), Attrs: [][]byte{[]byte("blue")}, Payload: []byte("v2-blue")},
		{JoinValue: []byte("k"), Attrs: [][]byte{[]byte("red")}, Payload: []byte("v2-red")},
	}
	other := []engine.PlainRow{
		{JoinValue: []byte("k"), Attrs: [][]byte{[]byte("o")}, Payload: []byte("other")},
	}
	if err := c1.UploadIndexed("T", v1); err != nil {
		t.Fatal(err)
	}
	if err := c1.UploadIndexed("O", other); err != nil {
		t.Fatal(err)
	}
	if err := c1.UploadIndexed("T", v2); err != nil {
		t.Fatal(err)
	}
	c1.Close()
	if err := srv1.Close(); err != nil {
		t.Fatal(err)
	}

	_, addr2 := startDurableServer(t, dir)
	c2, err := client.DialWithKeys(addr2, keys)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c2.Close() })
	rows, _, err := c2.JoinWith("T", "O",
		securejoin.Selection{0: [][]byte{[]byte("red")}}, securejoin.Selection{},
		client.JoinOpts{Prefilter: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].RowA != 1 || !bytes.Equal(rows[0].PayloadA, []byte("v2-red")) {
		t.Fatalf("join after overwrite+restart = %+v, want one row (1, v2-red)", rows)
	}
}

// TestAbandonedUploadLeavesNoResidue: a connection that dies after
// staging chunks but before the Commit chunk must leave nothing behind
// — no table in the engine, nothing durable in the data dir, and
// nothing for the next server started on that dir to recover.
func TestAbandonedUploadLeavesNoResidue(t *testing.T) {
	dir := t.TempDir()
	srv, addr := startDurableServer(t, dir)

	// A real ciphertext so the chunk passes validation and is staged.
	keys, err := engine.NewClient(securejoin.Params{M: 1, T: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := keys.EncryptTable("Ghost", []engine.PlainRow{
		{JoinValue: []byte("1"), Attrs: [][]byte{[]byte("a")}, Payload: []byte("p")},
	})
	if err != nil {
		t.Fatal(err)
	}
	ct, err := tab.Rows[0].Join.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	wc := wire.NewConn(conn)
	if err := wire.ClientHandshake(wc); err != nil {
		t.Fatal(err)
	}
	req := &wire.Request{ID: 1, Upload: &wire.UploadRequest{
		Table: "Ghost",
		Rows:  []wire.UploadRow{{JoinCiphertext: ct, Payload: tab.Rows[0].Payload}},
		// Commit deliberately false: the sequence is left half-finished.
	}}
	if err := wc.Send(req); err != nil {
		t.Fatal(err)
	}
	var ack wire.Frame
	if err := wc.Recv(&ack); err != nil {
		t.Fatal(err)
	}
	if !ack.Ok {
		t.Fatalf("staging chunk not acked: %+v", ack)
	}
	conn.Close() // the "crash": connection dies before Commit

	// The staged rows were never committed, so the table must not
	// exist. Poll briefly: the server notices the dead conn async.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, err := srv.Engine().Table("Ghost"); err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("abandoned upload became a visible table")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	// No durable residue: no snapshots, and a fresh recovery finds an
	// empty store.
	ents, err := os.ReadDir(filepath.Join(dir, "tables"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("abandoned upload left %d files in the data dir", len(ents))
	}
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if n := len(st.Tables()); n != 0 {
		t.Fatalf("recovery after abandoned upload found %d tables", n)
	}
	if d := st.Damaged(); len(d) != 0 {
		t.Fatalf("recovery after abandoned upload reported damage: %v", d)
	}
}
