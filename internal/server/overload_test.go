package server

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/securejoin"
)

// waitFor polls cond until it holds or the deadline expires.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestOverloadedServerShedsJoins pins the admission-control contract:
// with a join-worker semaphore of one, the first join is admitted and
// completes, every concurrent join is shed with a typed retryable
// error, capacity frees afterwards, and no goroutine leaks.
func TestOverloadedServerShedsJoins(t *testing.T) {
	srv := New(nil)
	srv.SetMaxConcurrentJoins(1)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	c := dial(t, addr)
	const rows = 24
	uploadPair(t, c, rows)

	before := runtime.NumGoroutine()

	// Join 1: admitted. Waiting for the in-flight gauge guarantees it
	// holds the semaphore before any competitor is sent; the join's
	// thousands of pairings keep it held far longer than the sheds take.
	done := make(chan error, 1)
	go func() {
		results, _, err := c.Join("L", "R", securejoin.Selection{}, securejoin.Selection{})
		if err == nil && len(results) != rows {
			err = fmt.Errorf("admitted join returned %d rows, want %d", len(results), rows)
		}
		done <- err
	}()
	waitFor(t, "join 1 admission", func() bool { return srv.met.InflightJoins.Value() == 1 })

	// Joins 2..N: all must shed, none may queue or execute.
	const extra = 4
	var wg sync.WaitGroup
	shedErrs := make(chan error, extra)
	for i := 0; i < extra; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _, err := c.Join("L", "R", securejoin.Selection{}, securejoin.Selection{})
			shedErrs <- err
		}()
	}
	wg.Wait()
	close(shedErrs)
	shed := 0
	for err := range shedErrs {
		if err == nil {
			t.Fatal("join admitted beyond the semaphore capacity")
		}
		if !errors.Is(err, client.ErrOverloaded) {
			t.Fatalf("shed join failed with %v, want client.ErrOverloaded", err)
		}
		shed++
	}
	if shed != extra {
		t.Fatalf("%d joins shed, want %d", shed, extra)
	}
	if err := <-done; err != nil {
		t.Fatalf("admitted join: %v", err)
	}
	if got := srv.met.ShedTotal.Value(); got != extra {
		t.Fatalf("shed counter = %d, want %d", got, extra)
	}

	// The admitted join released its slot: the next join is admitted.
	if _, _, err := c.Join("L", "R", securejoin.Selection{}, securejoin.Selection{}); err != nil {
		t.Fatalf("join after load drained: %v", err)
	}

	// Shed requests must not leave request goroutines (or engine worker
	// pools) behind. Finished goroutines unwind asynchronously, so poll.
	waitFor(t, "goroutines to drain", func() bool { return runtime.NumGoroutine() <= before+2 })
}

// TestPerConnectionJoinCapSheds: one connection's in-flight join cap
// sheds its second join while another connection is unaffected.
func TestPerConnectionJoinCapSheds(t *testing.T) {
	srv := New(nil)
	srv.SetMaxJoinsPerConn(1)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	c := dial(t, addr)
	uploadPair(t, c, 24)

	done := make(chan error, 1)
	go func() {
		_, _, err := c.Join("L", "R", securejoin.Selection{}, securejoin.Selection{})
		done <- err
	}()
	waitFor(t, "join 1 admission", func() bool { return srv.met.InflightJoins.Value() == 1 })

	if _, _, err := c.Join("L", "R", securejoin.Selection{}, securejoin.Selection{}); !errors.Is(err, client.ErrOverloaded) {
		t.Fatalf("second join on the capped connection: %v, want client.ErrOverloaded", err)
	}
	// The cap is per connection: a second client joins concurrently
	// (under its own keys, so it matches nothing — but it executes).
	c2 := dial(t, addr)
	if _, _, err := c2.Join("L", "R", securejoin.Selection{}, securejoin.Selection{}); err != nil {
		t.Fatalf("join on a second connection: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("admitted join: %v", err)
	}
}

// TestWithRetrySucceedsAfterShed drives client.WithRetry end-to-end
// against a genuinely overloaded server: the semaphore is held by the
// test, released after the first shed, and the retried join succeeds.
func TestWithRetrySucceedsAfterShed(t *testing.T) {
	srv := New(nil)
	srv.SetMaxConcurrentJoins(1)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	c := dial(t, addr)
	uploadPair(t, c, 4)

	// Occupy the only join slot directly; the first attempt must shed.
	srv.joinSem <- struct{}{}
	attempts := 0
	err = client.WithRetry(client.RetryConfig{Base: time.Millisecond}, func() error {
		attempts++
		if attempts == 1 {
			defer func() { <-srv.joinSem }() // free the slot after the shed
		}
		_, _, err := c.Join("L", "R", securejoin.Selection{}, securejoin.Selection{})
		return err
	})
	if err != nil {
		t.Fatalf("retried join: %v", err)
	}
	if attempts < 2 {
		t.Fatalf("join succeeded on attempt %d; the first should have shed", attempts)
	}
}

// TestIdleTimeoutClosesIdleConnection: an idle connection is closed
// after the timeout with a typed notice, while work in flight keeps it
// alive past the deadline. The timeout is configured only after the
// upload, because client-side row encryption between requests is an
// idle gap by design — the test's setup must not be idle-closed.
func TestIdleTimeoutClosesIdleConnection(t *testing.T) {
	srv := New(nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	c := dial(t, addr)
	uploadPair(t, c, 16)
	srv.SetIdleTimeout(100 * time.Millisecond)

	// A join outlasting the idle timeout is not idleness: the deadline
	// expiring while its request executes just re-arms, and the join
	// completes (its ~32 SJ.Dec pairings take well over the timeout).
	if _, _, err := c.Join("L", "R", securejoin.Selection{}, securejoin.Selection{}); err != nil {
		t.Fatalf("join under idle timeout: %v", err)
	}

	// True idleness: no request for 10x the timeout. The server sends
	// the CodeIdleTimeout notice and closes; the client must fail typed.
	time.Sleep(time.Second)
	err = c.Ping()
	if err == nil {
		t.Fatal("ping on an idle-closed connection succeeded")
	}
	if !errors.Is(err, client.ErrIdleClosed) {
		t.Fatalf("ping after idle close: %v, want client.ErrIdleClosed", err)
	}
	if got := srv.met.IdleClosed.Value(); got != 1 {
		t.Fatalf("idle-closed counter = %d, want 1", got)
	}
}

// TestHealthOverPing: the health report rides the Ping ack.
func TestHealthOverPing(t *testing.T) {
	addr := startServer(t)
	c := dial(t, addr)
	uploadPair(t, c, 2)
	h, err := c.Health()
	if err != nil {
		t.Fatal(err)
	}
	if h == nil {
		t.Fatal("no health payload on the ping ack")
	}
	if !h.Ready {
		t.Error("server not ready")
	}
	if h.Tables != 2 {
		t.Errorf("health reports %d tables, want 2", h.Tables)
	}
	if h.ActiveConns != 1 {
		t.Errorf("health reports %d connections, want 1", h.ActiveConns)
	}
	if h.UptimeSeconds <= 0 {
		t.Errorf("uptime = %v, want > 0", h.UptimeSeconds)
	}
}
