package server

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/store"
	"repro/internal/wire"
)

// This file is the async job subsystem: joins submitted as jobs outlive
// the connection that submitted them. SJ.Dec's pairing wall makes a
// join seconds-to-minutes of server work, and before jobs that work
// existed only as long as one TCP connection stayed open — a disconnect
// threw the pairings away.
//
// Execution model. ALL join work — synchronous Join requests and
// submitted jobs alike — runs on one bounded worker pool fed by a fair
// FIFO queue (tasks run in arrival order), replacing the per-request
// join goroutines. The queue composes with PR 6's admission control:
// sync joins still pass the per-connection gate and the global join
// semaphore first, and a full queue sheds either kind of work with
// wire.CodeOverloaded — bounded latency, typed retry, no unbounded
// backlog of latent pairing work.
//
// Job lifecycle: queued → running → done|failed. A completed job's
// result (or failure) is spooled through internal/store before the job
// is marked terminal, so once JobStatus reports done the result
// survives server restart; queued and running jobs are NOT durable — a
// restart forgets them and clients see CodeUnknownJob, the signal to
// resubmit. Finished jobs are reaped after a TTL.

// defaultJobQueueDepth bounds the join task queue when the operator
// does not choose a depth. Each queued join is minutes of latent CPU,
// so the default is modest.
const defaultJobQueueDepth = 64

// defaultJobTTL is how long a finished job's result is retained for
// attachment before the reaper deletes it.
const defaultJobTTL = time.Hour

// joinTask is one unit of join work on the pool: either a synchronous
// join (ss/id/jr set — the response streams straight to the submitting
// connection) or an async job.
type joinTask struct {
	ss  *session
	id  uint64
	jr  *wire.JoinRequest
	job *job
}

// job is the server-side state of one submitted join. Mutable fields
// are guarded by mu; done is closed exactly once, when the job reaches
// a terminal state, and is what AttachJob waiters block on.
//
// Lock order: Server.jobMu strictly before job.mu. reapJobs is the
// only path holding both — it iterates the table under jobMu and
// briefly takes each job's mu to read its terminal state. Every other
// path takes exactly one of the two: handleSubmit, lookupJob, pinJob,
// unpinJob and jobGauges take only jobMu; snapshot, runJob, failJob
// and executeJob's progress hook take only the job's mu. Since no
// path acquires jobMu while holding any job's mu, the pair cannot
// deadlock; new code must preserve that — never call a jobMu-taking
// helper with a job's mu held.
type job struct {
	id             string
	jr             *wire.JoinRequest // nil for jobs recovered from the store
	tableA, tableB string
	created        time.Time

	// attachers counts in-flight handleAttach streams of this job. It
	// is guarded by Server.jobMu — NOT mu — because the reaper decides
	// under jobMu whether a job may be deleted, and the pin must be
	// atomic with the table lookup (see pinJob). A pinned job (and its
	// store spool) survives reaping until the last attach unpins it.
	attachers int

	mu            sync.Mutex
	state         string
	started       time.Time
	finished      time.Time
	rowsDecrypted int
	stepsDone     int
	revealedPairs int
	resultRows    int
	rows          []wire.JoinedRow // in-memory result; nil once spooled
	spooled       bool             // result lives in the store's job spool
	errMsg        string

	done chan struct{}
}

// snapshot renders the job's current state as the wire JobInfo.
func (j *job) snapshot() *wire.JobInfo {
	j.mu.Lock()
	defer j.mu.Unlock()
	info := &wire.JobInfo{
		ID:            j.id,
		State:         j.state,
		TableA:        j.tableA,
		TableB:        j.tableB,
		RowsDecrypted: j.rowsDecrypted,
		StepsDone:     j.stepsDone,
		RevealedPairs: j.revealedPairs,
		ResultRows:    j.resultRows,
		Err:           j.errMsg,
		CreatedUnix:   j.created.Unix(),
	}
	if !j.started.IsZero() {
		info.StartedUnix = j.started.Unix()
	}
	if !j.finished.IsZero() {
		info.FinishedUnix = j.finished.Unix()
	}
	return info
}

// SetJobWorkers bounds the join worker pool: the goroutines executing
// sync joins and async jobs. n <= 0 restores the default
// (max(2, GOMAXPROCS) — at least two so one long job cannot block all
// synchronous traffic on a single-core host). Call before Serve.
func (s *Server) SetJobWorkers(n int) {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
		if n < 2 {
			n = 2
		}
	}
	s.jobWorkers = n
}

// SetJobQueueDepth bounds the FIFO queue feeding the worker pool; a
// join (sync or submitted) arriving at a full queue is shed with
// wire.CodeOverloaded. n < 0 restores the default; 0 is a valid
// rendezvous queue (work is accepted only when a worker is free to take
// it immediately). Call before Serve.
func (s *Server) SetJobQueueDepth(n int) {
	if n < 0 {
		n = defaultJobQueueDepth
	}
	s.jobQueueDepth = n
}

// SetJobTTL bounds how long a finished job's result is retained for
// attachment; past it the reaper deletes the job from memory and from
// the store's spool. d == 0 restores the default (one hour); d < 0
// disables reaping. Call before Serve.
func (s *Server) SetJobTTL(d time.Duration) {
	if d == 0 {
		d = defaultJobTTL
	}
	s.jobTTL = d
}

// startJobPool creates the task queue and starts the workers and the
// TTL reaper. Called once, from Serve; the goroutines live in s.wg so
// Close waits for them after the connections drain.
func (s *Server) startJobPool() {
	s.poolOnce.Do(func() {
		if s.jobWorkers <= 0 {
			s.SetJobWorkers(0)
		}
		if s.jobQueueDepth < 0 {
			s.jobQueueDepth = defaultJobQueueDepth
		}
		if s.jobTTL == 0 {
			s.jobTTL = defaultJobTTL
		}
		s.taskQueue = make(chan joinTask, s.jobQueueDepth)
		for i := 0; i < s.jobWorkers; i++ {
			s.wg.Add(1)
			go s.joinWorker()
		}
		if s.jobTTL > 0 {
			s.wg.Add(1)
			go s.jobReaper()
		}
	})
}

// joinWorker executes queued join tasks until shutdown. In-flight work
// always finishes — Close half-closes connections on the read side
// only, so a running join still delivers its terminal frames.
func (s *Server) joinWorker() {
	defer s.wg.Done()
	for {
		select {
		case t := <-s.taskQueue:
			s.met.JoinQueueDepth.Set(int64(len(s.taskQueue)))
			s.runTask(t)
		case <-s.done:
			return
		}
	}
}

// runTask executes one queued unit of join work.
func (s *Server) runTask(t joinTask) {
	if t.job != nil {
		s.runJob(t.job)
		return
	}
	started := time.Now()
	defer t.ss.reqs.Done()
	defer t.ss.releaseJoin()
	if err := t.ss.handleJoin(t.id, t.jr); err != nil {
		s.logf("request %d: writing response: %v", t.id, err)
	}
	s.met.ReqSeconds.With("join").Observe(time.Since(started).Seconds())
}

// abortTask disposes of a task that will never run because the server
// is shutting down: sync joins get a terminal error frame (their
// session's reqs.Wait depends on it), async jobs fail so attached
// waiters unblock.
func (s *Server) abortTask(t joinTask) {
	if t.job != nil {
		s.failJob(t.job, errors.New("server shutting down before job started"))
		return
	}
	t.ss.clearCancel(t.id)
	if err := t.ss.sendErr(t.id, errors.New("server shutting down")); err != nil {
		s.logf("request %d: writing shutdown response: %v", t.id, err)
	}
	t.ss.releaseJoin()
	t.ss.reqs.Done()
}

// enqueueJoin offers a task to the queue without blocking. False means
// the task was not accepted — the queue is full or the server is
// shutting down — and the caller must shed or abort it.
func (s *Server) enqueueJoin(t joinTask) bool {
	if s.taskQueue == nil {
		return false
	}
	select {
	case <-s.done:
		return false
	default:
	}
	select {
	case s.taskQueue <- t:
		s.met.JoinQueueDepth.Set(int64(len(s.taskQueue)))
		return true
	default:
		return false
	}
}

// drainTasks aborts queued tasks while Close waits for connections and
// workers to finish — without it a session blocked in reqs.Wait on a
// queued sync join (whose worker already exited) would deadlock the
// shutdown. It runs until stop is closed.
func (s *Server) drainTasks(stop chan struct{}) {
	for {
		select {
		case t := <-s.taskQueue:
			s.abortTask(t)
		case <-stop:
			return
		}
	}
}

// newJobID returns a fresh random job identifier.
func newJobID() (string, error) {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", fmt.Errorf("server: sampling job ID: %w", err)
	}
	return hex.EncodeToString(b[:]), nil
}

// lookupJob resolves a job ID; nil when unknown (never submitted,
// reaped, or lost to a restart before completion).
func (s *Server) lookupJob(id string) *job {
	s.jobMu.Lock()
	defer s.jobMu.Unlock()
	return s.jobs[id]
}

// pinJob resolves a job ID and marks the job attached in the same
// jobMu critical section, so the TTL reaper cannot delete the job —
// or, worse, its store spool out from under a concurrent
// ReadJobRows — between an attach's lookup and its streaming. Callers
// must pair a non-nil return with unpinJob.
func (s *Server) pinJob(id string) *job {
	s.jobMu.Lock()
	defer s.jobMu.Unlock()
	j := s.jobs[id]
	if j != nil {
		j.attachers++
	}
	return j
}

// unpinJob releases an attach's pin. A job that outlived its TTL only
// because it was pinned is collected by the reaper's next tick.
func (s *Server) unpinJob(j *job) {
	s.jobMu.Lock()
	j.attachers--
	s.jobMu.Unlock()
}

// handleSubmit validates and enqueues an async join, answering with the
// queued job's JobInfo. A full queue sheds the submit with
// wire.CodeOverloaded — retry-safe: nothing was enqueued and no job ID
// exists.
func (ss *session) handleSubmit(id uint64, sub *wire.SubmitRequest) error {
	s := ss.srv
	if sub.Join == nil {
		return ss.sendErr(id, errors.New("server: submit carries no join"))
	}
	// Parse the tokens and prefilters now so a malformed submission
	// fails at submit time, not minutes later inside the queue.
	if _, err := s.joinSpecFrom(sub.Join); err != nil {
		return ss.sendErr(id, err)
	}
	jobID, err := newJobID()
	if err != nil {
		return ss.sendErr(id, err)
	}
	j := &job{
		id:      jobID,
		jr:      sub.Join,
		tableA:  sub.Join.TableA,
		tableB:  sub.Join.TableB,
		created: time.Now(),
		state:   wire.JobQueued,
		done:    make(chan struct{}),
	}
	s.jobMu.Lock()
	s.jobs[jobID] = j
	s.jobMu.Unlock()
	if !s.enqueueJoin(joinTask{job: j}) {
		s.jobMu.Lock()
		delete(s.jobs, jobID)
		s.jobMu.Unlock()
		s.shed(ss, id, "join queue full")
		return nil
	}
	s.met.JobsSubmitted.Inc()
	s.logf("job %s submitted: %q x %q", jobID, j.tableA, j.tableB)
	return ss.send(&wire.Frame{ID: id, Job: j.snapshot()})
}

// handleJobStatus answers a poll for one job's state and progress.
func (ss *session) handleJobStatus(id uint64, jobID string) error {
	j := ss.srv.lookupJob(jobID)
	if j == nil {
		return ss.sendUnknownJob(id, jobID)
	}
	return ss.send(&wire.Frame{ID: id, Job: j.snapshot()})
}

// handleAttach blocks until the job terminates, then (re-)streams its
// result exactly like a synchronous join: batch frames bounded by the
// row and byte budgets, then a summary with the job's sigma(q). Any
// number of connections may attach to the same job, before or after it
// completes, and each gets the identical stream.
func (ss *session) handleAttach(id uint64, jobID string) error {
	s := ss.srv
	// Pin, not lookup: without the pin the TTL reaper can DeleteJob the
	// spool while this attach is between lookup and ReadJobRows, failing
	// the stream with a raw spool read error instead of a typed
	// unknown-job. Pinned jobs are deferred to a later reaper tick.
	j := s.pinJob(jobID)
	if j == nil {
		return ss.sendUnknownJob(id, jobID)
	}
	defer s.unpinJob(j)
	select {
	case <-j.done:
	case <-s.done:
		return ss.sendErr(id, errors.New("server shutting down"))
	case <-ss.closed:
		return nil // client hung up while waiting; nothing to stream to
	}
	j.mu.Lock()
	errMsg, spooled := j.errMsg, j.spooled
	rows, revealed := j.rows, j.revealedPairs
	j.mu.Unlock()
	if errMsg != "" {
		return ss.sendErr(id, fmt.Errorf("job %s failed: %s", jobID, errMsg))
	}
	if rows == nil && spooled {
		spoolRows, err := s.store.ReadJobRows(jobID)
		if err != nil {
			return ss.sendErr(id, err)
		}
		rows = make([]wire.JoinedRow, len(spoolRows))
		for i, r := range spoolRows {
			rows[i] = wire.JoinedRow{RowA: r.RowA, RowB: r.RowB, PayloadA: r.PayloadA, PayloadB: r.PayloadB}
		}
	}
	sent, err := ss.sendRowBatches(id, rows)
	if err != nil {
		ss.sendErr(id, fmt.Errorf("streaming result: %v", err))
		return err
	}
	s.logf("job %s attached: streamed %d rows, %d revealed pairs", jobID, sent, revealed)
	return ss.send(&wire.Frame{ID: id, Summary: &wire.JoinSummary{RevealedPairs: revealed}})
}

func (ss *session) sendUnknownJob(id uint64, jobID string) error {
	return ss.send(&wire.Frame{
		ID:   id,
		Err:  fmt.Sprintf("unknown job %q (never submitted, expired, or lost before completion)", jobID),
		Code: wire.CodeUnknownJob,
	})
}

// runJob executes one async job on a pool worker: open the join, drain
// it, spool the completed result durably, and only then mark the job
// terminal — so a client that observes "done" can rely on the result
// surviving a restart.
func (s *Server) runJob(j *job) {
	j.mu.Lock()
	j.state = wire.JobRunning
	j.started = time.Now()
	j.mu.Unlock()
	s.met.JobsRunning.Inc()
	defer s.met.JobsRunning.Dec()

	rows, revealed, err := s.executeJob(j)
	if err != nil {
		s.failJob(j, err)
		return
	}

	spooled := false
	if s.store != nil {
		meta := store.JobMeta{
			ID:            j.id,
			TableA:        j.tableA,
			TableB:        j.tableB,
			RevealedPairs: revealed,
			FinishedUnix:  time.Now().Unix(),
		}
		spoolRows := make([]store.JobRow, len(rows))
		for i, r := range rows {
			spoolRows[i] = store.JobRow{RowA: r.RowA, RowB: r.RowB, PayloadA: r.PayloadA, PayloadB: r.PayloadB}
		}
		if err := s.store.CommitJob(meta, spoolRows); err != nil {
			// Non-fatal: the job is still served from memory for this
			// process's life; only restart durability is lost.
			s.logf("job %s: spooling result: %v", j.id, err)
		} else {
			spooled = true
		}
	}

	j.mu.Lock()
	j.state = wire.JobDone
	j.finished = time.Now()
	j.resultRows = len(rows)
	j.revealedPairs = revealed
	j.spooled = spooled
	if spooled {
		j.rows = nil // attaches re-read the spool; no double-buffering
	} else {
		j.rows = rows
	}
	j.mu.Unlock()
	close(j.done)
	s.met.JobsCompleted.Inc()
	s.met.JobSeconds.Observe(time.Since(j.created).Seconds())
	s.logf("job %s done: %d result rows, %d revealed pairs", j.id, len(rows), revealed)
	s.persistCounters()
}

// failJob marks a job failed (spooling the failure when a store is
// attached, so even the error outcome survives a restart) and wakes
// attached waiters.
func (s *Server) failJob(j *job, err error) {
	now := time.Now()
	if s.store != nil {
		meta := store.JobMeta{
			ID: j.id, TableA: j.tableA, TableB: j.tableB,
			Err: err.Error(), FinishedUnix: now.Unix(),
		}
		if serr := s.store.CommitJob(meta, nil); serr != nil {
			s.logf("job %s: spooling failure: %v", j.id, serr)
		}
	}
	j.mu.Lock()
	j.state = wire.JobFailed
	j.finished = now
	j.errMsg = err.Error()
	j.mu.Unlock()
	close(j.done)
	s.met.JobsFailed.Inc()
	s.met.JobSeconds.Observe(now.Sub(j.created).Seconds())
	s.logf("job %s failed: %v", j.id, err)
	s.persistCounters()
}

// executeJob runs the job's join to completion, publishing progress
// through the engine's hook so JobStatus polls see live counters.
func (s *Server) executeJob(j *job) ([]wire.JoinedRow, int, error) {
	spec, err := s.joinSpecFrom(j.jr)
	if err != nil {
		return nil, 0, err
	}
	spec.Batch = s.batch
	spec.Progress = func(p engine.JoinProgress) {
		j.mu.Lock()
		j.rowsDecrypted = p.RowsDecrypted
		j.stepsDone = p.StepsDone
		j.revealedPairs = p.RevealedPairs
		j.mu.Unlock()
	}
	stream, err := s.eng.OpenJoin(j.jr.TableA, j.jr.TableB, spec)
	if err != nil {
		return nil, 0, err
	}
	defer stream.Close()
	var out []wire.JoinedRow
	for {
		chunk, err := stream.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, 0, err
		}
		for _, r := range chunk {
			out = append(out, wire.JoinedRow{
				RowA: r.RowA, RowB: r.RowB,
				PayloadA: r.PayloadA, PayloadB: r.PayloadB,
			})
		}
	}
	return out, stream.RevealedPairs(), nil
}

// recoverJobs re-registers the store's spooled jobs at startup so
// completed (and failed) jobs survive a server restart and any later
// connection can still attach. Queued/running jobs of the previous
// process were never spooled and are simply gone — their IDs answer
// CodeUnknownJob, the client's signal to resubmit.
func (s *Server) recoverJobs(st *store.Store) {
	metas := st.Jobs()
	for _, jm := range metas {
		state := wire.JobDone
		if jm.Err != "" {
			state = wire.JobFailed
		}
		finished := time.Unix(jm.FinishedUnix, 0)
		j := &job{
			id:     jm.ID,
			tableA: jm.TableA,
			tableB: jm.TableB,
			// The original submit time did not survive; the completion
			// time is the honest lower bound, and what the TTL reaper
			// keys on anyway.
			created:       finished,
			state:         state,
			finished:      finished,
			revealedPairs: jm.RevealedPairs,
			resultRows:    jm.Rows,
			spooled:       jm.Err == "",
			errMsg:        jm.Err,
			done:          make(chan struct{}),
		}
		close(j.done)
		s.jobs[jm.ID] = j
	}
	if len(metas) > 0 {
		s.logf("store %s: %d spooled job(s) recovered", st.Dir(), len(metas))
	}
}

// jobReaper deletes finished jobs older than the TTL, from memory and
// from the store's spool, bounding the job table and the data
// directory. Runs until shutdown.
func (s *Server) jobReaper() {
	defer s.wg.Done()
	tick := s.jobTTL / 4
	if tick < time.Second {
		tick = time.Second
	}
	if tick > time.Minute {
		tick = time.Minute
	}
	for {
		select {
		case <-s.done:
			return
		case <-time.After(tick):
		}
		s.reapJobs(time.Now().Add(-s.jobTTL))
	}
}

// reapJobs removes every finished, unpinned job whose completion
// predates cutoff. Jobs with in-flight attaches (attachers > 0) are
// deferred to a later tick — deleting their spool mid-stream would
// fail the attach with a raw read error. Lock order here is the
// canonical jobMu → j.mu (see the job struct comment): each j.mu is
// taken briefly inside the jobMu-guarded sweep, and no other path
// nests the two, so the nesting cannot deadlock.
func (s *Server) reapJobs(cutoff time.Time) {
	type reaped struct {
		id      string
		spooled bool
	}
	var expired []reaped
	s.jobMu.Lock()
	for id, j := range s.jobs {
		if j.attachers > 0 {
			continue // pinned by an in-flight attach; defer to a later tick
		}
		j.mu.Lock()
		gone := !j.finished.IsZero() && j.finished.Before(cutoff)
		spooled := j.spooled
		j.mu.Unlock()
		if gone {
			expired = append(expired, reaped{id: id, spooled: spooled})
			delete(s.jobs, id)
		}
	}
	s.jobMu.Unlock()
	for _, j := range expired {
		if j.spooled && s.store != nil {
			if err := s.store.DeleteJob(j.id); err != nil {
				s.logf("reaping job %s: %v", j.id, err)
			}
		}
		s.met.JobsReaped.Inc()
		s.logf("job %s reaped after TTL", j.id)
	}
}

// jobGauges snapshots the job table for the health report.
func (s *Server) jobGauges() (queued, running, stored int) {
	if s.taskQueue != nil {
		queued = len(s.taskQueue)
	}
	s.jobMu.Lock()
	stored = len(s.jobs)
	s.jobMu.Unlock()
	return queued, int(s.met.JobsRunning.Value()), stored
}
