package server

import (
	"bytes"
	"testing"

	"repro/internal/client"
	"repro/internal/engine"
	"repro/internal/securejoin"
)

func startServer(t *testing.T) string {
	t.Helper()
	srv := New(nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return addr
}

func dial(t *testing.T, addr string) *client.Client {
	t.Helper()
	c, err := client.Dial(addr, securejoin.Params{M: 1, T: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestPing(t *testing.T) {
	addr := startServer(t)
	c := dial(t, addr)
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
}

func TestUploadAndJoinOverTCP(t *testing.T) {
	addr := startServer(t)
	c := dial(t, addr)

	teams := []engine.PlainRow{
		{JoinValue: []byte("1"), Attrs: [][]byte{[]byte("Web Application")}, Payload: []byte("team-web")},
		{JoinValue: []byte("2"), Attrs: [][]byte{[]byte("Database")}, Payload: []byte("team-db")},
	}
	employees := []engine.PlainRow{
		{JoinValue: []byte("1"), Attrs: [][]byte{[]byte("Tester")}, Payload: []byte("kaily")},
		{JoinValue: []byte("2"), Attrs: [][]byte{[]byte("Programmer")}, Payload: []byte("john")},
	}
	if err := c.Upload("Teams", teams); err != nil {
		t.Fatal(err)
	}
	if err := c.Upload("Employees", employees); err != nil {
		t.Fatal(err)
	}

	results, revealed, err := c.Join("Teams", "Employees",
		securejoin.Selection{0: [][]byte{[]byte("Web Application")}},
		securejoin.Selection{0: [][]byte{[]byte("Tester")}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 {
		t.Fatalf("expected 1 result, got %d", len(results))
	}
	if !bytes.Equal(results[0].PayloadA, []byte("team-web")) || !bytes.Equal(results[0].PayloadB, []byte("kaily")) {
		t.Fatalf("payloads = %q, %q", results[0].PayloadA, results[0].PayloadB)
	}
	if revealed != 1 {
		t.Fatalf("revealed pairs = %d, want 1", revealed)
	}
}

func TestJoinUnknownTableOverTCP(t *testing.T) {
	addr := startServer(t)
	c := dial(t, addr)
	if _, _, err := c.Join("A", "B", securejoin.Selection{}, securejoin.Selection{}); err == nil {
		t.Fatal("join against unknown tables should fail")
	}
}

func TestMultipleClientsIsolatedKeys(t *testing.T) {
	addr := startServer(t)
	c1 := dial(t, addr)
	c2 := dial(t, addr)

	rows := []engine.PlainRow{
		{JoinValue: []byte("k"), Attrs: [][]byte{[]byte("a")}, Payload: []byte("p")},
	}
	if err := c1.Upload("T1", rows); err != nil {
		t.Fatal(err)
	}
	if err := c2.Upload("T2", rows); err != nil {
		t.Fatal(err)
	}
	// A join across tables encrypted under DIFFERENT master keys finds
	// nothing: D values never collide across msk instances.
	results, _, err := c1.Join("T1", "T2",
		securejoin.Selection{}, securejoin.Selection{})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 0 {
		t.Fatalf("cross-client join matched %d rows; keys leaked", len(results))
	}
}

func TestSequentialQueriesOverOneConnection(t *testing.T) {
	addr := startServer(t)
	c := dial(t, addr)
	rows := []engine.PlainRow{
		{JoinValue: []byte("k"), Attrs: [][]byte{[]byte("a")}, Payload: []byte("x")},
	}
	if err := c.Upload("L", rows); err != nil {
		t.Fatal(err)
	}
	if err := c.Upload("R", rows); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		results, _, err := c.Join("L", "R", securejoin.Selection{}, securejoin.Selection{})
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if len(results) != 1 {
			t.Fatalf("query %d returned %d rows", i, len(results))
		}
	}
}
