package server

import (
	"bytes"
	"testing"

	"repro/internal/client"
	"repro/internal/engine"
	"repro/internal/securejoin"
)

// TestCrossSessionKeys simulates a client restart: upload in one
// session, export the keys, reconnect with restored keys and query the
// previously uploaded tables.
func TestCrossSessionKeys(t *testing.T) {
	addr := startServer(t)

	// Session 1: fresh keys, upload.
	c1 := dial(t, addr)
	rows := []engine.PlainRow{
		{JoinValue: []byte("k"), Attrs: [][]byte{[]byte("a")}, Payload: []byte("left")},
	}
	rowsR := []engine.PlainRow{
		{JoinValue: []byte("k"), Attrs: [][]byte{[]byte("b")}, Payload: []byte("right")},
	}
	if err := c1.Upload("L", rows); err != nil {
		t.Fatal(err)
	}
	if err := c1.Upload("R", rowsR); err != nil {
		t.Fatal(err)
	}
	var keyBuf bytes.Buffer
	if err := c1.Keys().ExportKeys(&keyBuf); err != nil {
		t.Fatal(err)
	}
	c1.Close()

	// Session 2: restored keys.
	keys, err := engine.LoadClientKeys(&keyBuf)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := client.DialWithKeys(addr, keys)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	results, _, err := c2.Join("L", "R", securejoin.Selection{}, securejoin.Selection{})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 {
		t.Fatalf("cross-session query returned %d rows", len(results))
	}
	if string(results[0].PayloadA) != "left" || string(results[0].PayloadB) != "right" {
		t.Fatalf("payloads = %q, %q", results[0].PayloadA, results[0].PayloadB)
	}
}

// TestFreshKeysCannotQueryOldTables: a client with NEW keys must find
// nothing in tables uploaded under old keys (and must not be able to
// open their payloads).
func TestFreshKeysCannotQueryOldTables(t *testing.T) {
	addr := startServer(t)
	c1 := dial(t, addr)
	rows := []engine.PlainRow{
		{JoinValue: []byte("k"), Attrs: [][]byte{[]byte("a")}, Payload: []byte("secret")},
	}
	if err := c1.Upload("L", rows); err != nil {
		t.Fatal(err)
	}
	if err := c1.Upload("R", rows); err != nil {
		t.Fatal(err)
	}
	c1.Close()

	c2 := dial(t, addr) // fresh keys
	results, _, err := c2.Join("L", "R", securejoin.Selection{}, securejoin.Selection{})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 0 {
		t.Fatalf("fresh-key client matched %d rows of foreign tables", len(results))
	}
}
