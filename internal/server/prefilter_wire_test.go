package server

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/client"
	"repro/internal/engine"
	"repro/internal/securejoin"
)

// uploadIndexedTestTables ships the canonical Teams/Employees pair with
// SSE indexes over one connection.
func uploadIndexedTestTables(t testing.TB, c *client.Client) {
	t.Helper()
	teams := []engine.PlainRow{
		{JoinValue: []byte("1"), Attrs: [][]byte{[]byte("Web Application")}, Payload: []byte("team-web")},
		{JoinValue: []byte("2"), Attrs: [][]byte{[]byte("Database")}, Payload: []byte("team-db")},
	}
	employees := []engine.PlainRow{
		{JoinValue: []byte("1"), Attrs: [][]byte{[]byte("Programmer")}, Payload: []byte("hans")},
		{JoinValue: []byte("1"), Attrs: [][]byte{[]byte("Tester")}, Payload: []byte("kaily")},
		{JoinValue: []byte("2"), Attrs: [][]byte{[]byte("Programmer")}, Payload: []byte("john")},
		{JoinValue: []byte("2"), Attrs: [][]byte{[]byte("Tester")}, Payload: []byte("sally")},
	}
	if err := c.UploadIndexed("Teams", teams); err != nil {
		t.Fatal(err)
	}
	if err := c.UploadIndexed("Employees", employees); err != nil {
		t.Fatal(err)
	}
}

// TestPrefilteredJoinOverTCP runs one query three ways — full scan over
// the wire, prefiltered over the wire, and prefiltered through the
// library path against the same engine — and requires identical result
// rows and revealed-pair counts from all three.
func TestPrefilteredJoinOverTCP(t *testing.T) {
	srv := New(nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	c, err := client.Dial(addr, securejoin.Params{M: 1, T: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	uploadIndexedTestTables(t, c)

	selA := securejoin.Selection{0: [][]byte{[]byte("Web Application")}}
	selB := securejoin.Selection{0: [][]byte{[]byte("Tester")}}

	full, fullRevealed, err := c.Join("Teams", "Employees", selA, selB)
	if err != nil {
		t.Fatal(err)
	}
	pre, preRevealed, err := c.JoinWith("Teams", "Employees", selA, selB,
		client.JoinOpts{Prefilter: true, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}

	// Library path against the very same server engine, with the same
	// key material the wire client used.
	pq, err := c.Keys().NewPrefilterQuery(selA, selB)
	if err != nil {
		t.Fatal(err)
	}
	lib, libTrace, err := srv.Engine().ExecuteJoinPrefiltered("Teams", "Employees", pq)
	if err != nil {
		t.Fatal(err)
	}

	if len(pre) != len(lib) || len(pre) != len(full) {
		t.Fatalf("result rows: wire-prefiltered %d, wire-full %d, library %d",
			len(pre), len(full), len(lib))
	}
	for i := range pre {
		if pre[i].RowA != lib[i].RowA || pre[i].RowB != lib[i].RowB {
			t.Fatalf("row %d: wire (%d,%d) vs library (%d,%d)",
				i, pre[i].RowA, pre[i].RowB, lib[i].RowA, lib[i].RowB)
		}
		libPayloadA, err := c.Keys().OpenPayload(lib[i].PayloadA)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(pre[i].PayloadA, libPayloadA) {
			t.Fatalf("row %d payload A differs", i)
		}
	}
	if preRevealed != libTrace.Pairs.Len() {
		t.Fatalf("revealed pairs: wire-prefiltered %d, library %d", preRevealed, libTrace.Pairs.Len())
	}
	if preRevealed != fullRevealed {
		t.Fatalf("revealed pairs: prefiltered %d, full scan %d", preRevealed, fullRevealed)
	}
	if len(pre) != 1 || !bytes.Equal(pre[0].PayloadA, []byte("team-web")) || !bytes.Equal(pre[0].PayloadB, []byte("kaily")) {
		t.Fatalf("unexpected prefiltered result %v", pre)
	}
}

// TestPrefilteredJoinUnindexedTableOverTCP: a prefiltered request
// against tables uploaded without indexes falls back to a full scan
// instead of failing.
func TestPrefilteredJoinUnindexedTableOverTCP(t *testing.T) {
	addr := startServer(t)
	c := dial(t, addr)
	rows := []engine.PlainRow{
		{JoinValue: []byte("k"), Attrs: [][]byte{[]byte("a")}, Payload: []byte("x")},
	}
	if err := c.Upload("L", rows); err != nil {
		t.Fatal(err)
	}
	if err := c.Upload("R", rows); err != nil {
		t.Fatal(err)
	}
	results, revealed, err := c.JoinWith("L", "R",
		securejoin.Selection{0: [][]byte{[]byte("a")}},
		securejoin.Selection{},
		client.JoinOpts{Prefilter: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || revealed != 1 {
		t.Fatalf("fallback join: %d rows, %d pairs; want 1, 1", len(results), revealed)
	}
}

// BenchmarkPrefilteredJoinWire measures one join per iteration over a
// loopback connection at three selectivities, full-scan vs prefiltered:
// the prefiltered server pays SJ.Dec only for the candidate rows, so
// the gap should track selectivity.
func BenchmarkPrefilteredJoinWire(b *testing.B) {
	const n = 100 // rows per table; 1% selectivity = 1 candidate row
	srv := New(nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	c, err := client.Dial(addr, securejoin.Params{M: 1, T: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()

	mk := func() []engine.PlainRow {
		out := make([]engine.PlainRow, n)
		for i := range out {
			attr := "bulk"
			switch {
			case i < n/100:
				attr = "c1"
			case i < n/100+n/10:
				attr = "c10"
			}
			out[i] = engine.PlainRow{
				JoinValue: []byte(fmt.Sprintf("k-%d", i)),
				Attrs:     [][]byte{[]byte(attr)},
				Payload:   []byte(fmt.Sprintf("row-%d", i)),
			}
		}
		return out
	}
	for _, name := range []string{"L", "R"} {
		if err := c.UploadIndexed(name, mk()); err != nil {
			b.Fatal(err)
		}
	}

	sels := []struct {
		label string
		sel   securejoin.Selection
	}{
		{"sel=1%", securejoin.Selection{0: [][]byte{[]byte("c1")}}},
		{"sel=10%", securejoin.Selection{0: [][]byte{[]byte("c10")}}},
		{"sel=100%", securejoin.Selection{}},
	}
	for _, sc := range sels {
		for _, mode := range []struct {
			label string
			opts  client.JoinOpts
		}{
			{"full", client.JoinOpts{Workers: 1}},
			{"prefiltered", client.JoinOpts{Prefilter: true, Workers: 1}},
		} {
			b.Run(sc.label+"/"+mode.label, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, _, err := c.JoinWith("L", "R", sc.sel, sc.sel, mode.opts); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
