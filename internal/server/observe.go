package server

import (
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/wire"
)

// This file is the server's observability and admission-control
// surface: the wire-layer metric set, the load-shedding limits that
// keep unbounded concurrent pairing work from toppling the process,
// and the health report served on Ping acks and /healthz.
//
// Shedding beats queueing here because join work is extreme: a single
// join costs thousands of bn256 pairings, so a queue one request deep
// per connection already represents minutes of CPU. Rejecting with a
// typed retryable error (wire.CodeOverloaded) keeps latency bounded
// and lets clients back off — see client.WithRetry.

// serverMetrics is the wire-layer metric set, registered next to the
// engine's in one registry. All fields are nil-safe no-ops when the
// server is built without a registry (never the case in practice:
// NewWithStore always creates one).
type serverMetrics struct {
	ActiveConns   *metrics.Gauge
	ConnsTotal    *metrics.Counter
	ReqSeconds    *metrics.HistogramVec // by request type
	FramesIn      *metrics.Counter
	FramesOut     *metrics.Counter
	BatchBytes    *metrics.Counter
	InflightJoins *metrics.Gauge
	ShedTotal     *metrics.Counter
	IdleClosed    *metrics.Counter

	// Async job subsystem (see jobs.go): queue depth of the shared join
	// worker pool, job state counters, and submit-to-completion latency.
	JoinQueueDepth *metrics.Gauge
	JobsSubmitted  *metrics.Counter
	JobsRunning    *metrics.Gauge
	JobsCompleted  *metrics.Counter
	JobsFailed     *metrics.Counter
	JobsReaped     *metrics.Counter
	JobSeconds     *metrics.Histogram
}

func newServerMetrics(reg *metrics.Registry) serverMetrics {
	return serverMetrics{
		ActiveConns:   metrics.NewGauge(reg, "sj_server_connections_active", "live client connections"),
		ConnsTotal:    metrics.NewCounter(reg, "sj_server_connections_total", "client connections accepted"),
		ReqSeconds:    metrics.NewHistogramVec(reg, "sj_server_request_seconds", "request handling latency by request type", "type", nil),
		FramesIn:      metrics.NewCounter(reg, "sj_server_frames_in_total", "request frames received"),
		FramesOut:     metrics.NewCounter(reg, "sj_server_frames_out_total", "response frames sent"),
		BatchBytes:    metrics.NewCounter(reg, "sj_server_batch_bytes_total", "join result payload bytes streamed in batches"),
		InflightJoins: metrics.NewGauge(reg, "sj_server_joins_inflight", "joins currently admitted and executing"),
		ShedTotal:     metrics.NewCounter(reg, "sj_server_shed_total", "requests rejected by admission control"),
		IdleClosed:    metrics.NewCounter(reg, "sj_server_idle_closed_total", "connections closed by the idle timeout"),

		JoinQueueDepth: metrics.NewGauge(reg, "sj_server_join_queue_depth", "join tasks (sync and async) waiting in the worker pool queue"),
		JobsSubmitted:  metrics.NewCounter(reg, "sj_server_jobs_submitted_total", "async jobs accepted by Submit"),
		JobsRunning:    metrics.NewGauge(reg, "sj_server_jobs_running", "async jobs currently executing on the worker pool"),
		JobsCompleted:  metrics.NewCounter(reg, "sj_server_jobs_completed_total", "async jobs finished successfully"),
		JobsFailed:     metrics.NewCounter(reg, "sj_server_jobs_failed_total", "async jobs terminated with an error"),
		JobsReaped:     metrics.NewCounter(reg, "sj_server_jobs_reaped_total", "finished jobs deleted by the TTL reaper"),
		JobSeconds:     metrics.NewHistogram(reg, "sj_server_job_seconds", "async job submit-to-completion wall time", nil),
	}
}

// Registry returns the server's metric registry — engine, store and
// wire-layer series together. sjbench scrapes it after figure runs so
// perf trajectories and production dashboards read one measurement
// path; the HTTP /metrics endpoint renders it.
func (s *Server) Registry() *metrics.Registry { return s.reg }

// SetMaxConcurrentJoins bounds the joins executing at once across all
// connections — the global join-worker semaphore. A join arriving at
// the bound is shed immediately with wire.CodeOverloaded instead of
// queueing (each queued join would hold thousands of pairings of
// latent CPU work). n <= 0 removes the bound (the default). Call
// before Listen.
func (s *Server) SetMaxConcurrentJoins(n int) {
	if n <= 0 {
		s.joinSem = nil
		return
	}
	s.joinSem = make(chan struct{}, n)
}

// SetMaxJoinsPerConn bounds the joins in flight on one connection;
// beyond it the connection's further joins are shed with
// wire.CodeOverloaded so one client cannot monopolize the join
// capacity. n <= 0 restores the default (maxInFlight). Call before
// Listen.
func (s *Server) SetMaxJoinsPerConn(n int) {
	if n <= 0 {
		n = maxInFlight
	}
	s.maxJoinsPerConn = n
}

// SetIdleTimeout closes connections that sit completely idle — no
// request in flight, none arriving — longer than d, after sending a
// connection-level wire.CodeIdleTimeout notice so the client fails
// typed (client.ErrIdleClosed) instead of with a bare EOF. d <= 0
// disables the timeout (the default). The timeout bounds the gap
// between requests; a connection streaming or executing work is never
// idle-closed. May be changed at runtime; a live connection picks the
// new value up with its next request.
func (s *Server) SetIdleTimeout(d time.Duration) {
	if d < 0 {
		d = 0
	}
	s.idleTimeout.Store(int64(d))
}

// joinGate tracks one connection's in-flight joins.
type joinGate struct {
	joins atomic.Int64
}

// admitJoin applies admission control to one join request: the
// connection's in-flight join cap first, then the global join-worker
// semaphore, both without blocking — a rejected join is shed with a
// typed frame, not queued. Returns false when the request was shed
// (its terminal frame has been sent).
func (ss *session) admitJoin(id uint64) bool {
	s := ss.srv
	if int(ss.gate.joins.Load()) >= s.maxJoinsPerConn {
		s.shed(ss, id, "connection join cap reached")
		return false
	}
	if s.joinSem != nil {
		select {
		case s.joinSem <- struct{}{}:
		default:
			s.shed(ss, id, "server join capacity reached")
			return false
		}
	}
	ss.gate.joins.Add(1)
	s.met.InflightJoins.Inc()
	return true
}

// releaseJoin returns an admitted join's slots.
func (ss *session) releaseJoin() {
	s := ss.srv
	ss.gate.joins.Add(-1)
	s.met.InflightJoins.Dec()
	if s.joinSem != nil {
		<-s.joinSem
	}
}

// shed rejects a request with the typed overload code. The send runs
// on the read loop, so a shed flood is bounded by the same TCP
// backpressure as every other inline response.
func (s *Server) shed(ss *session, id uint64, reason string) {
	s.met.ShedTotal.Inc()
	s.logf("request %d shed: %s", id, reason)
	if err := ss.send(&wire.Frame{ID: id, Err: "server overloaded: " + reason, Code: wire.CodeOverloaded}); err != nil {
		s.logf("request %d: writing shed response: %v", id, err)
	}
}

// health snapshots the server's readiness and key gauges — the payload
// of Ping acks and of the HTTP /healthz probe.
func (s *Server) health() *wire.HealthInfo {
	ready := true
	select {
	case <-s.done:
		ready = false
	default:
	}
	var leaked uint64
	for _, v := range s.eng.LeakageCounters() {
		leaked += v
	}
	queued, running, stored := s.jobGauges()
	return &wire.HealthInfo{
		Ready:         ready,
		Tables:        len(s.eng.TableStats()),
		ActiveConns:   int(s.met.ActiveConns.Value()),
		InflightJoins: int(s.met.InflightJoins.Value()),
		ShedTotal:     s.met.ShedTotal.Value(),
		RevealedPairs: leaked,
		UptimeSeconds: time.Since(s.started).Seconds(),
		JobsQueued:    queued,
		JobsRunning:   running,
		JobsStored:    stored,
	}
}
