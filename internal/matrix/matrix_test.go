package matrix

import (
	"testing"

	"repro/internal/zq"
)

func randomSquare(t *testing.T, n int) *Matrix {
	t.Helper()
	m, err := RandomInvertible(n, nil)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestIdentityProperties(t *testing.T) {
	id := Identity(4)
	m := randomSquare(t, 4)
	if !m.Mul(id).Equal(m) || !id.Mul(m).Equal(m) {
		t.Fatal("identity is not neutral")
	}
	if !id.Det().Equal(zq.One()) {
		t.Fatal("det(I) != 1")
	}
}

func TestInverse(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8} {
		m := randomSquare(t, n)
		inv, err := m.Inverse()
		if err != nil {
			t.Fatal(err)
		}
		if !m.Mul(inv).Equal(Identity(n)) {
			t.Fatalf("M * M^-1 != I for n=%d", n)
		}
		if !inv.Mul(m).Equal(Identity(n)) {
			t.Fatalf("M^-1 * M != I for n=%d", n)
		}
	}
}

func TestSingularRejected(t *testing.T) {
	m := New(3, 3)
	// Rank-1 matrix.
	for j := 0; j < 3; j++ {
		m.Set(0, j, zq.FromInt64(int64(j+1)))
		m.Set(1, j, zq.FromInt64(int64(2*(j+1))))
		m.Set(2, j, zq.FromInt64(int64(3*(j+1))))
	}
	if !m.Det().IsZero() {
		t.Fatal("rank-1 matrix has non-zero determinant")
	}
	if _, err := m.Inverse(); err == nil {
		t.Fatal("inverse of a singular matrix should fail")
	}
}

func TestDetMultiplicative(t *testing.T) {
	a := randomSquare(t, 4)
	b := randomSquare(t, 4)
	ab := a.Mul(b)
	if !ab.Det().Equal(a.Det().Mul(b.Det())) {
		t.Fatal("det(AB) != det(A)det(B)")
	}
}

func TestDetTranspose(t *testing.T) {
	a := randomSquare(t, 5)
	if !a.Det().Equal(a.Transpose().Det()) {
		t.Fatal("det(A) != det(A^T)")
	}
}

func TestDetKnown2x2(t *testing.T) {
	m := New(2, 2)
	m.Set(0, 0, zq.FromInt64(3))
	m.Set(0, 1, zq.FromInt64(7))
	m.Set(1, 0, zq.FromInt64(2))
	m.Set(1, 1, zq.FromInt64(5))
	if !m.Det().Equal(zq.FromInt64(1)) { // 15 - 14
		t.Fatalf("det = %v, want 1", m.Det())
	}
}

// TestDualIdentity verifies the central IPE identity:
// B * (B*)^T = det(B) * I, which is what makes
// <vB, wB*> = det(B) <v, w>.
func TestDualIdentity(t *testing.T) {
	for _, n := range []int{2, 3, 6} {
		b := randomSquare(t, n)
		bStar, err := b.Dual()
		if err != nil {
			t.Fatal(err)
		}
		prod := b.Mul(bStar.Transpose())
		want := Identity(n).Scale(b.Det())
		if !prod.Equal(want) {
			t.Fatalf("B (B*)^T != det(B) I for n=%d", n)
		}
	}
}

// TestIPEInnerProductIdentity checks the scalar identity the whole
// scheme rests on: <vB, wB*> == det(B) <v, w>.
func TestIPEInnerProductIdentity(t *testing.T) {
	n := 7
	b := randomSquare(t, n)
	bStar, err := b.Dual()
	if err != nil {
		t.Fatal(err)
	}
	v := make(zq.Vector, n)
	w := make(zq.Vector, n)
	for i := range v {
		v[i] = zq.MustRandom()
		w[i] = zq.MustRandom()
	}
	lhs := zq.InnerProduct(b.MulVec(v), bStar.MulVec(w))
	rhs := b.Det().Mul(zq.InnerProduct(v, w))
	if !lhs.Equal(rhs) {
		t.Fatal("<vB, wB*> != det(B) <v, w>")
	}
}

func TestMulVecAgainstMul(t *testing.T) {
	m := randomSquare(t, 4)
	v := zq.Vector{zq.FromInt64(1), zq.FromInt64(2), zq.FromInt64(3), zq.FromInt64(4)}
	rowVec := New(1, 4)
	for j := range v {
		rowVec.Set(0, j, v[j])
	}
	viaMul := rowVec.Mul(m)
	viaVec := m.MulVec(v)
	for j := 0; j < 4; j++ {
		if !viaMul.At(0, j).Equal(viaVec[j]) {
			t.Fatal("MulVec disagrees with matrix multiplication")
		}
	}
}

func TestDimensionPanics(t *testing.T) {
	m := New(2, 3)
	assertPanics(t, func() { m.Det() })
	assertPanics(t, func() { m.Mul(New(2, 2)) })
	assertPanics(t, func() { m.MulVec(zq.NewVector(5)) })
	assertPanics(t, func() { New(0, 1) })
}

func TestCloneIsDeep(t *testing.T) {
	m := randomSquare(t, 3)
	c := m.Clone()
	c.Set(0, 0, c.At(0, 0).Add(zq.One()))
	if m.Equal(c) {
		t.Fatal("clone aliases the original")
	}
}

func TestTranspose(t *testing.T) {
	m := New(2, 3)
	m.Set(0, 1, zq.FromInt64(5))
	m.Set(1, 2, zq.FromInt64(7))
	tr := m.Transpose()
	if tr.Rows != 3 || tr.Cols != 2 {
		t.Fatal("transpose has wrong shape")
	}
	if !tr.At(1, 0).Equal(zq.FromInt64(5)) || !tr.At(2, 1).Equal(zq.FromInt64(7)) {
		t.Fatal("transpose moved entries incorrectly")
	}
	if !m.Transpose().Transpose().Equal(m) {
		t.Fatal("double transpose is not the identity")
	}
}

func assertPanics(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}
