// Package matrix implements dense linear algebra over Z_q as required by
// function-hiding inner-product encryption: sampling of uniformly random
// invertible matrices B from GL_n(Z_q), determinants, inverses and the
// derived matrix B* = det(B) * (B^-1)^T used by the IPE master secret key.
package matrix

import (
	"fmt"
	"io"

	"repro/internal/zq"
)

// Matrix is an n x m matrix over Z_q in row-major order.
type Matrix struct {
	Rows, Cols int
	data       []zq.Scalar
}

// New returns a zero matrix with the given dimensions.
func New(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic("matrix: non-positive dimensions")
	}
	return &Matrix{Rows: rows, Cols: cols, data: make([]zq.Scalar, rows*cols)}
}

// Identity returns the n x n identity matrix.
func Identity(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, zq.One())
	}
	return m
}

// Random returns a matrix with entries sampled uniformly from Z_q.
func Random(rows, cols int, r io.Reader) (*Matrix, error) {
	m := New(rows, cols)
	for i := range m.data {
		s, err := zq.Random(r)
		if err != nil {
			return nil, err
		}
		m.data[i] = s
	}
	return m, nil
}

// RandomInvertible samples a uniformly random element of GL_n(Z_q) by
// rejection: a uniform matrix over a 254-bit prime field is singular
// with probability ~ n/q, so the loop essentially never repeats.
func RandomInvertible(n int, r io.Reader) (*Matrix, error) {
	for {
		m, err := Random(n, n, r)
		if err != nil {
			return nil, err
		}
		if det := m.Det(); !det.IsZero() {
			return m, nil
		}
	}
}

// At returns the entry at row i, column j.
func (m *Matrix) At(i, j int) zq.Scalar {
	return m.data[i*m.Cols+j]
}

// Set assigns the entry at row i, column j.
func (m *Matrix) Set(i, j int, v zq.Scalar) {
	m.data[i*m.Cols+j] = v
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := New(m.Rows, m.Cols)
	copy(c.data, m.data)
	return c
}

// Equal reports whether m and o have identical dimensions and entries.
func (m *Matrix) Equal(o *Matrix) bool {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		return false
	}
	for i := range m.data {
		if !m.data[i].Equal(o.data[i]) {
			return false
		}
	}
	return true
}

// Transpose returns m^T.
func (m *Matrix) Transpose() *Matrix {
	t := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// Scale returns k * m.
func (m *Matrix) Scale(k zq.Scalar) *Matrix {
	s := New(m.Rows, m.Cols)
	for i := range m.data {
		s.data[i] = m.data[i].Mul(k)
	}
	return s
}

// Mul returns the matrix product m * o.
func (m *Matrix) Mul(o *Matrix) *Matrix {
	if m.Cols != o.Rows {
		panic(fmt.Sprintf("matrix: cannot multiply %dx%d by %dx%d", m.Rows, m.Cols, o.Rows, o.Cols))
	}
	p := New(m.Rows, o.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := 0; k < m.Cols; k++ {
			a := m.At(i, k)
			if a.IsZero() {
				continue
			}
			for j := 0; j < o.Cols; j++ {
				p.Set(i, j, p.At(i, j).Add(a.Mul(o.At(k, j))))
			}
		}
	}
	return p
}

// MulVec returns the row-vector product v * m, the operation used to
// compute v*B and w*B* in the IPE scheme.
func (m *Matrix) MulVec(v zq.Vector) zq.Vector {
	if len(v) != m.Rows {
		panic(fmt.Sprintf("matrix: cannot multiply vector of length %d by %dx%d", len(v), m.Rows, m.Cols))
	}
	out := zq.NewVector(m.Cols)
	for i := 0; i < m.Rows; i++ {
		vi := v[i]
		if vi.IsZero() {
			continue
		}
		for j := 0; j < m.Cols; j++ {
			out[j] = out[j].Add(vi.Mul(m.At(i, j)))
		}
	}
	return out
}

// Det returns the determinant of a square matrix via fraction-free
// Gaussian elimination with partial pivoting over Z_q.
func (m *Matrix) Det() zq.Scalar {
	if m.Rows != m.Cols {
		panic("matrix: determinant of non-square matrix")
	}
	n := m.Rows
	a := m.Clone()
	det := zq.One()
	for col := 0; col < n; col++ {
		pivot := -1
		for row := col; row < n; row++ {
			if !a.At(row, col).IsZero() {
				pivot = row
				break
			}
		}
		if pivot < 0 {
			return zq.Zero()
		}
		if pivot != col {
			a.swapRows(pivot, col)
			det = det.Neg()
		}
		p := a.At(col, col)
		det = det.Mul(p)
		pInv := p.Inv()
		for row := col + 1; row < n; row++ {
			f := a.At(row, col).Mul(pInv)
			if f.IsZero() {
				continue
			}
			for j := col; j < n; j++ {
				a.Set(row, j, a.At(row, j).Sub(f.Mul(a.At(col, j))))
			}
		}
	}
	return det
}

// Inverse returns m^-1 using Gauss-Jordan elimination. It returns an
// error if m is singular.
func (m *Matrix) Inverse() (*Matrix, error) {
	if m.Rows != m.Cols {
		return nil, fmt.Errorf("matrix: inverse of non-square %dx%d matrix", m.Rows, m.Cols)
	}
	n := m.Rows
	a := m.Clone()
	inv := Identity(n)
	for col := 0; col < n; col++ {
		pivot := -1
		for row := col; row < n; row++ {
			if !a.At(row, col).IsZero() {
				pivot = row
				break
			}
		}
		if pivot < 0 {
			return nil, fmt.Errorf("matrix: singular matrix")
		}
		if pivot != col {
			a.swapRows(pivot, col)
			inv.swapRows(pivot, col)
		}
		pInv := a.At(col, col).Inv()
		for j := 0; j < n; j++ {
			a.Set(col, j, a.At(col, j).Mul(pInv))
			inv.Set(col, j, inv.At(col, j).Mul(pInv))
		}
		for row := 0; row < n; row++ {
			if row == col {
				continue
			}
			f := a.At(row, col)
			if f.IsZero() {
				continue
			}
			for j := 0; j < n; j++ {
				a.Set(row, j, a.At(row, j).Sub(f.Mul(a.At(col, j))))
				inv.Set(row, j, inv.At(row, j).Sub(f.Mul(inv.At(col, j))))
			}
		}
	}
	return inv, nil
}

// Dual returns B* = det(B) * (B^-1)^T, the companion matrix the IPE
// master secret key pairs with B. It satisfies B * (B*)^T = det(B) * I.
func (m *Matrix) Dual() (*Matrix, error) {
	inv, err := m.Inverse()
	if err != nil {
		return nil, err
	}
	return inv.Transpose().Scale(m.Det()), nil
}

func (m *Matrix) swapRows(i, j int) {
	ri := m.data[i*m.Cols : (i+1)*m.Cols]
	rj := m.data[j*m.Cols : (j+1)*m.Cols]
	for k := range ri {
		ri[k], rj[k] = rj[k], ri[k]
	}
}
