package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/server"
	"repro/internal/store"
)

// newServer wraps the internal server package; kept in its own file so
// the binary's wiring stays separate from flag handling. An empty
// dataDir keeps the table store in memory (lost on exit); otherwise the
// directory is opened — created on first use — and every durable table
// it holds is recovered before the server starts listening.
func newServer(logger *log.Logger, dataDir string) (*server.Server, error) {
	if dataDir == "" {
		return server.New(logger), nil
	}
	st, err := store.Open(dataDir)
	if err != nil {
		return nil, fmt.Errorf("opening data dir %s: %w", dataDir, err)
	}
	// Damage is survivable — the broken tables are skipped, the rest
	// recovered — but the operator must hear about it regardless of
	// -quiet.
	for _, d := range st.Damaged() {
		fmt.Fprintf(os.Stderr, "sjserver: data dir damage: %s\n", d)
	}
	fmt.Printf("recovered %d tables from %s (%d damaged)\n",
		len(st.Tables()), st.Dir(), len(st.Damaged()))
	return server.NewWithStore(logger, st), nil
}
