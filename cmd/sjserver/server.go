package main

import (
	"log"

	"repro/internal/server"
)

// newServer wraps the internal server package; kept in its own file so
// the binary's wiring stays separate from flag handling.
func newServer(logger *log.Logger) *server.Server {
	return server.New(logger)
}
