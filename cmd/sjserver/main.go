// Command sjserver runs the encrypted-DBMS provider: a TCP server that
// stores uploaded ciphertext tables and executes Secure Join queries
// against them. It holds no key material. With -data the table store is
// durable: committed uploads (and their SSE indexes) are persisted to
// the directory and recovered on the next start, so a restart loses
// nothing; without it tables live in memory only.
//
//	sjserver -listen 127.0.0.1:7788 -data /var/lib/sjserver
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7788", "address to listen on")
	quiet := flag.Bool("quiet", false, "disable request logging")
	batch := flag.Int("batch", 0, "joined rows per response frame (0 = protocol default)")
	data := flag.String("data", "", "directory for the durable table store (empty = in-memory only)")
	metricsAddr := flag.String("metrics", "", "address for the HTTP /metrics + /healthz endpoint (empty = disabled)")
	maxJoins := flag.Int("maxjoins", 0, "max joins executing at once across all connections; excess joins are shed (0 = unlimited)")
	idleTimeout := flag.Duration("idletimeout", 0, "close connections idle longer than this, e.g. 5m (0 = never)")
	decCacheBytes := flag.Int64("decrypt-cache-bytes", 64<<20, "byte budget for the decrypt-result cache (0 = disabled)")
	jobWorkers := flag.Int("job-workers", 0, "join worker pool size for sync joins and async jobs (0 = max(2, GOMAXPROCS))")
	jobTTL := flag.Duration("job-ttl", 0, "keep finished async job results this long, e.g. 30m (0 = 1h default, negative = forever)")
	flag.Parse()

	var logger *log.Logger
	if !*quiet {
		logger = log.New(os.Stderr, "[sjserver] ", log.LstdFlags)
	}
	srv, err := newServer(logger, *data)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sjserver:", err)
		os.Exit(1)
	}
	srv.SetBatchSize(*batch)
	srv.SetMaxConcurrentJoins(*maxJoins)
	srv.SetIdleTimeout(*idleTimeout)
	srv.SetDecryptCache(*decCacheBytes)
	srv.SetJobWorkers(*jobWorkers)
	srv.SetJobTTL(*jobTTL)
	addr, err := srv.Listen(*listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sjserver:", err)
		os.Exit(1)
	}
	fmt.Printf("sjserver listening on %s\n", addr)
	if *metricsAddr != "" {
		maddr, err := srv.ServeMetrics(*metricsAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sjserver:", err)
			os.Exit(1)
		}
		fmt.Printf("metrics on http://%s/metrics, health on http://%s/healthz\n", maddr, maddr)
	}

	// Graceful shutdown on SIGINT/SIGTERM: stop accepting, let in-flight
	// joins finish writing their terminal frames, then exit. A second
	// signal while draining aborts immediately.
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	fmt.Printf("received %s, draining in-flight requests (signal again to abort)\n", s)
	go func() {
		<-sig
		fmt.Fprintln(os.Stderr, "sjserver: forced shutdown")
		os.Exit(1)
	}()
	srv.Close()
	fmt.Println("shutdown complete")
}
