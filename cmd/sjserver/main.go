// Command sjserver runs the encrypted-DBMS provider: a TCP server that
// stores uploaded ciphertext tables in memory and executes Secure Join
// queries against them. It holds no key material.
//
//	sjserver -listen 127.0.0.1:7788
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7788", "address to listen on")
	quiet := flag.Bool("quiet", false, "disable request logging")
	batch := flag.Int("batch", 0, "joined rows per response frame (0 = protocol default)")
	flag.Parse()

	var logger *log.Logger
	if !*quiet {
		logger = log.New(os.Stderr, "[sjserver] ", log.LstdFlags)
	}
	srv := newServer(logger)
	srv.SetBatchSize(*batch)
	addr, err := srv.Listen(*listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sjserver:", err)
		os.Exit(1)
	}
	fmt.Printf("sjserver listening on %s\n", addr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	fmt.Println("shutting down")
	srv.Close()
}
