// Command sjtables reproduces the worked example of Section 2 (Tables
// 1-4) over genuinely encrypted data: it uploads the Teams and Employees
// tables, executes the two queries of the t1/t2 timeline through the
// Secure Join engine, prints the decrypted results and reports the
// equality pairs the server observed — demonstrating that the series of
// queries leaks exactly the transitive closure of the per-query
// leakages.
package main

import (
	"fmt"
	"os"
	"strings"

	"repro/internal/engine"
	"repro/internal/securejoin"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "sjtables:", err)
		os.Exit(1)
	}
}

func run() error {
	client, err := engine.NewClient(securejoin.Params{M: 1, T: 2}, nil)
	if err != nil {
		return err
	}
	server := engine.NewServer()

	teams := []engine.PlainRow{
		row("1", "Web Application", "1|Web Application"),
		row("2", "Database", "2|Database"),
	}
	employees := []engine.PlainRow{
		row("1", "Programmer", "1|Hans|Programmer|1"),
		row("1", "Tester", "2|Kaily|Tester|1"),
		row("2", "Programmer", "3|John|Programmer|2"),
		row("2", "Tester", "4|Sally|Tester|2"),
	}

	fmt.Println("Table 1: Teams (Key, Name)")
	fmt.Println("  1  Web Application")
	fmt.Println("  2  Database")
	fmt.Println("Table 2: Employees (Record, Employee, Role, Team)")
	fmt.Println("  1  Hans   Programmer  1")
	fmt.Println("  2  Kaily  Tester      1")
	fmt.Println("  3  John   Programmer  2")
	fmt.Println("  4  Sally  Tester      2")
	fmt.Println()

	encTeams, err := client.EncryptTable("Teams", teams)
	if err != nil {
		return err
	}
	encEmployees, err := client.EncryptTable("Employees", employees)
	if err != nil {
		return err
	}
	server.Upload(encTeams)
	server.Upload(encEmployees)
	fmt.Println("t0: encrypted database uploaded; server has observed 0 equality pairs")
	fmt.Println()

	// t1: ... WHERE Name = "Web Application" AND Role = "Tester"
	if err := runQuery(client, server,
		`SELECT * FROM Employees JOIN Teams ON Team = Key WHERE Name = "Web Application" AND Role = "Tester"`,
		securejoin.Selection{0: [][]byte{[]byte("Web Application")}},
		securejoin.Selection{0: [][]byte{[]byte("Tester")}},
		"Table 3 (result at t1)"); err != nil {
		return err
	}

	// t2: ... WHERE Name = "Database" AND Role = "Programmer"
	if err := runQuery(client, server,
		`SELECT * FROM Employees JOIN Teams ON Team = Key WHERE Name = "Database" AND Role = "Programmer"`,
		securejoin.Selection{0: [][]byte{[]byte("Database")}},
		securejoin.Selection{0: [][]byte{[]byte("Programmer")}},
		"Table 4 (result at t2)"); err != nil {
		return err
	}

	perQuery, closure := server.ObservedLeakage()
	fmt.Println("Cumulative server view after both queries:")
	for i, q := range perQuery {
		fmt.Printf("  sigma(q%d): %d pair(s)\n", i+1, q.Len())
	}
	fmt.Printf("  transitive closure of union: %d pair(s)\n", closure.Len())
	for _, p := range closure.Sorted() {
		fmt.Printf("    %v == %v\n", p.A, p.B)
	}
	fmt.Println()
	fmt.Println("Deterministic encryption would have revealed 6 pairs at t0;")
	fmt.Println("CryptDB reveals 6 at t1; Hahn et al. reveal 6 by t2 (super-additive).")
	fmt.Println("Secure Join reveals exactly the 2 pairs above — the minimum.")
	return nil
}

func runQuery(client *engine.Client, server *engine.Server, sql string,
	selTeams, selEmployees securejoin.Selection, label string) error {
	fmt.Println(sql)
	q, err := client.NewQuery(selTeams, selEmployees)
	if err != nil {
		return err
	}
	rows, trace, err := server.ExecuteJoin("Teams", "Employees", q)
	if err != nil {
		return err
	}
	fmt.Printf("%s — %d row(s):\n", label, len(rows))
	for _, r := range rows {
		pa, err := client.OpenPayload(r.PayloadA)
		if err != nil {
			return err
		}
		pb, err := client.OpenPayload(r.PayloadB)
		if err != nil {
			return err
		}
		emp := strings.Split(string(pb), "|")
		team := strings.Split(string(pa), "|")
		fmt.Printf("  Record=%s Employee=%s Role=%s T.Key=%s T.Name=%s\n",
			emp[0], emp[1], emp[2], team[0], team[1])
	}
	fmt.Printf("  server observed %d equality pair(s) for this query\n\n", trace.Pairs.Len())
	return nil
}

func row(join, attr, payload string) engine.PlainRow {
	return engine.PlainRow{
		JoinValue: []byte(join),
		Attrs:     [][]byte{[]byte(attr)},
		Payload:   []byte(payload),
	}
}
