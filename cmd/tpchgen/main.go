// Command tpchgen emits the synthetic TPC-H Customers and Orders tables
// (with the paper's selectivity column) as CSV files:
//
//	tpchgen -scale 0.001 -out /tmp/tpch
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/tpch"
)

func main() {
	scale := flag.Float64("scale", 0.001, "TPC-H scale factor")
	out := flag.String("out", ".", "output directory")
	seed := flag.Int64("seed", 42, "generator seed")
	flag.Parse()

	if err := run(*scale, *out, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "tpchgen:", err)
		os.Exit(1)
	}
}

func run(scale float64, dir string, seed int64) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	ds := tpch.Generate(scale, seed)

	cf, err := os.Create(filepath.Join(dir, "customers.csv"))
	if err != nil {
		return err
	}
	defer cf.Close()
	if err := tpch.WriteCustomersCSV(cf, ds.Customers); err != nil {
		return err
	}

	of, err := os.Create(filepath.Join(dir, "orders.csv"))
	if err != nil {
		return err
	}
	defer of.Close()
	if err := tpch.WriteOrdersCSV(of, ds.Orders); err != nil {
		return err
	}

	fmt.Printf("wrote %d customers and %d orders (scale %g) to %s\n",
		len(ds.Customers), len(ds.Orders), scale, dir)
	return nil
}
