package main

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/server"
)

// TestConnectModePicksPrefilteredPlan is the acceptance test for the
// catalog-aware planner in wire mode: sjsql -connect uploads the
// indexed TPC-H tables to a live sjserver, syncs the catalog over the
// Describe request, and the planner must pick the prefiltered plan
// automatically — no -prefilter flag anywhere — and execute it through
// the wire client.
func TestConnectModePicksPrefilteredPlan(t *testing.T) {
	srv := server.New(nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })

	var out bytes.Buffer
	// Tiny scale: 1 customer, 15 orders — enough to join, cheap enough
	// to full-scan-encrypt in a unit test.
	a, cleanup, err := setup(&out, 0.00001, 1, 10, addr, true, 2)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cleanup)

	const query = `SELECT * FROM Orders JOIN Customers ON Orders.custkey = Customers.custkey
		WHERE Customers.selectivity = 'none'`

	if err := a.exec("EXPLAIN " + query); err != nil {
		t.Fatal(err)
	}
	explain := out.String()
	if !strings.Contains(explain, "plan: prefiltered") {
		t.Fatalf("planner did not pick the prefiltered plan:\n%s", explain)
	}
	if !strings.Contains(explain, "side B: Customers [indexed]") ||
		!strings.Contains(explain, "-> prefiltered, 1 SSE token(s)") {
		t.Fatalf("EXPLAIN missing the prefiltered side:\n%s", explain)
	}
	if !strings.Contains(explain, "side A: Orders [indexed]") ||
		!strings.Contains(explain, "-> full scan (no WHERE predicates)") {
		t.Fatalf("EXPLAIN missing the full-scan side:\n%s", explain)
	}
	if !strings.Contains(explain, "workers: 2") {
		t.Fatalf("EXPLAIN missing the workers hint:\n%s", explain)
	}

	out.Reset()
	if err := a.exec(query); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "via prefiltered plan") {
		t.Fatalf("execution did not report the prefiltered plan:\n%s", got)
	}
	// With one customer every order joins to it; the single customer's
	// selectivity class at n=1 is "none", so all 15 orders survive.
	if !strings.Contains(got, "15 rows in") {
		t.Fatalf("unexpected result set:\n%s", got)
	}
}

// TestConnectModeFallsBackUnindexed: the same wire setup uploaded
// without SSE indexes must plan — and report — a full scan.
func TestConnectModeFallsBackUnindexed(t *testing.T) {
	srv := server.New(nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })

	var out bytes.Buffer
	a, cleanup, err := setup(&out, 0.00001, 1, 10, addr, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cleanup)

	const query = `SELECT * FROM Orders JOIN Customers ON Orders.custkey = Customers.custkey
		WHERE Customers.selectivity = 'none'`
	if err := a.exec("EXPLAIN " + query); err != nil {
		t.Fatal(err)
	}
	explain := out.String()
	if !strings.Contains(explain, "plan: full scan") ||
		!strings.Contains(explain, "-> full scan (no SSE index)") {
		t.Fatalf("unindexed upload did not fall back to a full-scan plan:\n%s", explain)
	}

	out.Reset()
	if err := a.exec(query); err != nil {
		t.Fatal(err)
	}
	if got := out.String(); !strings.Contains(got, "via full scan plan") || !strings.Contains(got, "15 rows in") {
		t.Fatalf("full-scan execution:\n%s", got)
	}
}
