package main

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/server"
)

// TestConnectModePicksPrefilteredPlan is the acceptance test for the
// statistics-aware planner in wire mode: sjsql -connect uploads the
// indexed TPC-H tables to a live sjserver, syncs the catalog (row
// counts + index state) over the Describe request, and the planner must
// pick the prefiltered plan automatically — no -prefilter flag anywhere
// — because the estimated candidate set beats the synced row count.
func TestConnectModePicksPrefilteredPlan(t *testing.T) {
	srv := server.New(nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })

	var out bytes.Buffer
	// Small scale: 7 customers, 75 orders — big enough that a single
	// predicate is estimated selective (est. 1 of 7 rows), cheap enough
	// to encrypt in a unit test.
	a, cleanup, err := setup(&out, 0.00005, 1, 10, addr, "", true, 2)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cleanup)

	const query = `SELECT * FROM Orders JOIN Customers ON Orders.custkey = Customers.custkey
		WHERE Customers.selectivity = 'none'`

	if err := a.exec("EXPLAIN " + query); err != nil {
		t.Fatal(err)
	}
	explain := out.String()
	if !strings.Contains(explain, "plan: prefiltered") {
		t.Fatalf("planner did not pick the prefiltered plan:\n%s", explain)
	}
	if !strings.Contains(explain, "side B: Customers [indexed, 7 rows]") ||
		!strings.Contains(explain, "-> prefiltered, 1 SSE token(s), est. 1 candidate row(s)") {
		t.Fatalf("EXPLAIN missing the prefiltered side:\n%s", explain)
	}
	if !strings.Contains(explain, "side A: Orders [indexed, 75 rows]") ||
		!strings.Contains(explain, "-> full scan (no WHERE predicates)") {
		t.Fatalf("EXPLAIN missing the full-scan side:\n%s", explain)
	}
	if !strings.Contains(explain, "workers: 2") {
		t.Fatalf("EXPLAIN missing the workers hint:\n%s", explain)
	}

	out.Reset()
	if err := a.exec(query); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "via prefiltered plan") {
		t.Fatalf("execution did not report the prefiltered plan:\n%s", got)
	}
	// With 7 customers every selectivity class floors to 0 rows, so all
	// 7 are 'none' and every one of the 75 orders survives the join.
	if !strings.Contains(got, "75 rows in") {
		t.Fatalf("unexpected result set:\n%s", got)
	}
}

// TestConnectModeThreeWayJoin drives a 3-table query end-to-end over
// the wire: the planner must order the chain from the synced row
// counts (Customers and Profiles before Orders), EXPLAIN must render
// the operator tree, and execution must stitch the pairwise joins into
// full 3-column rows.
func TestConnectModeThreeWayJoin(t *testing.T) {
	srv := server.New(nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })

	var out bytes.Buffer
	a, cleanup, err := setup(&out, 0.00005, 1, 100, addr, "", true, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cleanup)

	const query = `SELECT * FROM Orders JOIN Customers ON Orders.custkey = Customers.custkey
		JOIN Profiles ON Profiles.custkey = Customers.custkey
		WHERE Customers.selectivity = 'none'`

	if err := a.exec("EXPLAIN " + query); err != nil {
		t.Fatal(err)
	}
	explain := out.String()
	for _, want := range []string{
		"plan: 3-table join, 2 pairwise encrypted step(s), left-deep",
		"join order: Customers, Profiles, Orders — row statistics (smallest estimated sides first)",
		"step 1: Customers JOIN Profiles [prefiltered]",
		"step 2: Customers JOIN Orders [prefiltered] (stitch on Customers rows, client-side)",
	} {
		if !strings.Contains(explain, want) {
			t.Fatalf("EXPLAIN missing %q:\n%s", want, explain)
		}
	}

	out.Reset()
	if err := a.exec(query); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	// Every order stitches to exactly one customer and one profile.
	if !strings.Contains(got, "75 rows in") || !strings.Contains(got, "2 join step(s)") {
		t.Fatalf("unexpected 3-way result:\n%s", got)
	}
	// Result columns follow the FROM clause: order | customer | profile.
	line := firstResultLine(got)
	if !strings.Contains(line, "order ") || !strings.Contains(line, "profile ") {
		t.Fatalf("stitched row missing a column:\n%s", got)
	}
	if strings.Index(line, "order ") > strings.Index(line, "profile ") {
		t.Fatalf("columns not in FROM order:\n%s", got)
	}
}

// TestServersModeShardedJoin drives sjsql's -servers mode: the TPC-H
// tables are hash-sharded over two live sjservers, a 3-way join runs
// scatter-gather, and the stitched result must match what the
// single-server tests above observe (75 rows, 2 steps).
func TestServersModeShardedJoin(t *testing.T) {
	var addrs []string
	for i := 0; i < 2; i++ {
		srv := server.New(nil)
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		addrs = append(addrs, addr)
	}

	var out bytes.Buffer
	a, cleanup, err := setup(&out, 0.00005, 1, 100, "", strings.Join(addrs, ","), true, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cleanup)

	const query = `SELECT * FROM Orders JOIN Customers ON Orders.custkey = Customers.custkey
		JOIN Profiles ON Profiles.custkey = Customers.custkey
		WHERE Customers.selectivity = 'none'`
	if err := a.exec(query); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "75 rows in") || !strings.Contains(got, "2 join step(s)") {
		t.Fatalf("unexpected sharded 3-way result:\n%s", got)
	}
	line := firstResultLine(got)
	if !strings.Contains(line, "order ") || !strings.Contains(line, "profile ") {
		t.Fatalf("stitched sharded row missing a column:\n%s", got)
	}
}

func firstResultLine(out string) string {
	for _, l := range strings.Split(out, "\n") {
		if strings.HasPrefix(l, "  ") {
			return l
		}
	}
	return ""
}

// TestConnectModeFallsBackUnindexed: the same wire setup uploaded
// without SSE indexes must plan — and report — a full scan.
func TestConnectModeFallsBackUnindexed(t *testing.T) {
	srv := server.New(nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })

	var out bytes.Buffer
	a, cleanup, err := setup(&out, 0.00001, 1, 10, addr, "", false, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cleanup)

	const query = `SELECT * FROM Orders JOIN Customers ON Orders.custkey = Customers.custkey
		WHERE Customers.selectivity = 'none'`
	if err := a.exec("EXPLAIN " + query); err != nil {
		t.Fatal(err)
	}
	explain := out.String()
	if !strings.Contains(explain, "plan: full scan") ||
		!strings.Contains(explain, "-> full scan (no SSE index)") {
		t.Fatalf("unindexed upload did not fall back to a full-scan plan:\n%s", explain)
	}

	out.Reset()
	if err := a.exec(query); err != nil {
		t.Fatal(err)
	}
	if got := out.String(); !strings.Contains(got, "via full scan plan") || !strings.Contains(got, "15 rows in") {
		t.Fatalf("full-scan execution:\n%s", got)
	}
}
