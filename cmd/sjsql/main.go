// Command sjsql is an interactive encrypted-SQL shell over the
// synthetic TPC-H dataset: it generates Customers, Orders and a derived
// per-customer Profiles table at a small scale factor, encrypts and
// uploads them — to an in-process server by default, or to a live
// sjserver with -connect — and then executes the supported SQL dialect
// read from stdin (or from -query) over the ciphertexts. With
// -servers host1,host2,... the tables are instead hash-sharded on the
// join key across several sjservers and every join step runs
// scatter-gather, one request per shard.
//
// Tables are uploaded with an SSE pre-filter index (disable with
// -index=false), and the planner picks the Section 4.3 prefiltered
// execution automatically whenever a side's predicates are estimated
// selective against its synced row count; multi-table queries compile
// to a left-deep chain of pairwise encrypted joins whose order the
// planner picks from the row statistics. EXPLAIN <query> prints the
// chosen plan (or operator tree) without running it.
//
//	echo "SELECT * FROM Orders JOIN Customers ON Orders.custkey = Customers.custkey \
//	      WHERE Customers.selectivity = '1/100' AND Orders.selectivity = '1/100'" | sjsql -scale 0.0002
//
//	sjsql -connect 127.0.0.1:7788 -scale 0.0002 \
//	      -query "EXPLAIN SELECT * FROM Orders JOIN Customers ON Orders.custkey = Customers.custkey
//	              JOIN Profiles ON Profiles.custkey = Customers.custkey
//	              WHERE Customers.selectivity = '1/100'"
//
//	sjsql -servers 127.0.0.1:7788,127.0.0.1:7789 -scale 0.0002 \
//	      -query "SELECT * FROM Orders JOIN Customers ON Orders.custkey = Customers.custkey"
package main

import (
	"bufio"
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/client"
	"repro/internal/engine"
	"repro/internal/securejoin"
	"repro/internal/sql"
	"repro/internal/tpch"
)

func main() {
	scale := flag.Float64("scale", 0.0002, "TPC-H scale factor")
	seed := flag.Int64("seed", 42, "generator seed")
	query := flag.String("query", "", "single query to execute (default: read stdin)")
	maxRows := flag.Int("maxrows", 10, "result rows to print per query")
	connect := flag.String("connect", "", "address of a live sjserver; empty runs an in-process engine")
	servers := flag.String("servers", "", "comma-separated addresses of live sjservers; tables are hash-sharded across them and every join runs scatter-gather")
	index := flag.Bool("index", true, "upload tables with SSE pre-filter indexes (enables prefiltered plans)")
	workers := flag.Int("workers", 0, "SJ.Dec worker hint stamped onto every plan (0 = engine default)")
	async := flag.Bool("async", false, "submit every plan step as a server-side job, then attach and stitch (requires -connect or -servers)")
	flag.Parse()

	if *async && *connect == "" && *servers == "" {
		fmt.Fprintln(os.Stderr, "sjsql: -async requires -connect or -servers (jobs live on a wire server)")
		os.Exit(1)
	}
	if *connect != "" && *servers != "" {
		fmt.Fprintln(os.Stderr, "sjsql: -connect and -servers are mutually exclusive (-servers with one address is the one-shard cluster)")
		os.Exit(1)
	}
	if err := run(os.Stdout, *scale, *seed, *query, *maxRows, *connect, *servers, *index, *workers, *async); err != nil {
		fmt.Fprintln(os.Stderr, "sjsql:", err)
		os.Exit(1)
	}
}

// app binds the compiled catalog to exactly one execution backend: the
// in-process engine (eng+keys), a wire connection to a live sjserver
// (cli), or a sharded cluster of sjservers (clu). All run the same
// compiled plans through the same operator tree executor.
type app struct {
	catalog *sql.Catalog
	maxRows int
	out     io.Writer
	async   bool

	eng  *engine.Server
	keys *engine.Client
	cli  *client.Client
	clu  *client.Cluster
}

func run(out io.Writer, scale float64, seed int64, query string, maxRows int, connect, servers string, index bool, workers int, async bool) error {
	a, cleanup, err := setup(out, scale, seed, maxRows, connect, servers, index, workers)
	if err != nil {
		return err
	}
	a.async = async
	defer cleanup()

	if query != "" {
		return a.exec(query)
	}
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	fmt.Fprintln(os.Stderr, "enter queries, one per line (join column: custkey; filterable: selectivity; tables: Customers, Orders, Profiles; EXPLAIN <query> shows the plan)")
	for scanner.Scan() {
		stmt := strings.TrimSpace(scanner.Text())
		if stmt == "" {
			continue
		}
		if err := a.exec(stmt); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
		}
	}
	return scanner.Err()
}

// setup generates and encrypts the TPC-H tables, uploads them to the
// chosen backend, and syncs the catalog's statistics (row counts and
// index state) from the backend's table state so the planner orders
// joins and picks prefiltered execution from what is actually stored.
func setup(out io.Writer, scale float64, seed int64, maxRows int, connect, servers string, index bool, workers int) (*app, func(), error) {
	catalog, err := sql.NewCatalog(
		sql.TableSchema{Name: "Customers", JoinColumn: "custkey", Attrs: map[string]int{"selectivity": 0}},
		sql.TableSchema{Name: "Orders", JoinColumn: "custkey", Attrs: map[string]int{"selectivity": 0}},
		sql.TableSchema{Name: "Profiles", JoinColumn: "custkey", Attrs: map[string]int{"selectivity": 0}},
	)
	if err != nil {
		return nil, nil, err
	}
	catalog.SetDefaultWorkers(workers)

	fmt.Fprintf(os.Stderr, "generating and encrypting TPC-H data at scale %g...\n", scale)
	ds := tpch.Generate(scale, seed)
	customers := make([]engine.PlainRow, len(ds.Customers))
	profiles := make([]engine.PlainRow, len(ds.Customers))
	for i, c := range ds.Customers {
		customers[i] = engine.PlainRow{
			JoinValue: tpch.CustomerJoinValue(c),
			Attrs:     [][]byte{[]byte(c.Selectivity)},
			Payload:   []byte(fmt.Sprintf("%s (%s)", c.Name, c.MktSegment)),
		}
		// The derived per-customer profile: same join key domain, so
		// 3-way queries chain Customers x Orders x Profiles.
		profiles[i] = engine.PlainRow{
			JoinValue: tpch.CustomerJoinValue(c),
			Attrs:     [][]byte{[]byte(c.Selectivity)},
			Payload:   []byte(fmt.Sprintf("profile %d: %s, %s", c.CustKey, c.Phone, c.Address)),
		}
	}
	orders := make([]engine.PlainRow, len(ds.Orders))
	for i, o := range ds.Orders {
		orders[i] = engine.PlainRow{
			JoinValue: tpch.OrderJoinValue(o),
			Attrs:     [][]byte{[]byte(o.Selectivity)},
			Payload:   []byte(fmt.Sprintf("order %d ($%.2f, %s)", o.OrderKey, o.TotalPrice, o.OrderDate)),
		}
	}

	a := &app{catalog: catalog, maxRows: maxRows, out: out}
	params := securejoin.Params{M: 1, T: 10}
	tables := map[string][]engine.PlainRow{"Customers": customers, "Orders": orders, "Profiles": profiles}
	start := time.Now()

	// Sharded mode: hash-partition every table across the listed
	// servers; each query then scatters one request per shard and the
	// merged streams are stitched exactly like a single server's.
	if servers != "" {
		addrs := strings.Split(servers, ",")
		for i := range addrs {
			addrs[i] = strings.TrimSpace(addrs[i])
		}
		a.clu, err = client.DialCluster(addrs, params)
		if err != nil {
			return nil, nil, err
		}
		cleanup := func() { a.clu.Close() }
		for name, rows := range tables {
			if index {
				err = a.clu.UploadIndexed(name, rows)
			} else {
				err = a.clu.Upload(name, rows)
			}
			if err != nil {
				cleanup()
				return nil, nil, err
			}
		}
		if _, err := a.clu.SyncCatalog(catalog); err != nil {
			cleanup()
			return nil, nil, err
		}
		fmt.Fprintf(os.Stderr, "uploaded %d customers + %d orders + %d profiles sharded over %d servers in %v (indexed=%v)\n",
			len(customers), len(orders), len(profiles), a.clu.Shards(), time.Since(start).Round(time.Millisecond), index)
		return a, cleanup, nil
	}

	if connect == "" {
		a.keys, err = engine.NewClient(params, nil)
		if err != nil {
			return nil, nil, err
		}
		a.eng = engine.NewServer()
		a.eng.SetDecryptCache(64 << 20)
		// EXPLAIN's "decrypt cache:" line reads the engine's counters at
		// compile time through this hook.
		catalog.SetDecryptCacheStats(a.eng.DecryptCacheStats)
		for name, rows := range tables {
			var enc *engine.EncryptedTable
			if index {
				enc, err = a.keys.EncryptTableIndexed(name, rows)
			} else {
				enc, err = a.keys.EncryptTable(name, rows)
			}
			if err != nil {
				return nil, nil, err
			}
			a.eng.Upload(enc)
		}
		for _, st := range a.eng.TableStats() {
			if err := catalog.SetStats(st.Name, st.Rows, st.Indexed); err != nil {
				return nil, nil, err
			}
			if err := catalog.SetNDV(st.Name, st.NDV); err != nil {
				return nil, nil, err
			}
		}
		fmt.Fprintf(os.Stderr, "uploaded %d customers + %d orders + %d profiles in-process in %v (indexed=%v)\n",
			len(customers), len(orders), len(profiles), time.Since(start).Round(time.Millisecond), index)
		return a, func() {}, nil
	}

	a.cli, err = client.Dial(connect, params)
	if err != nil {
		return nil, nil, err
	}
	cleanup := func() { a.cli.Close() }
	for name, rows := range tables {
		if index {
			err = a.cli.UploadIndexed(name, rows)
		} else {
			err = a.cli.Upload(name, rows)
		}
		if err != nil {
			cleanup()
			return nil, nil, err
		}
	}
	if _, err := a.cli.SyncCatalog(catalog); err != nil {
		cleanup()
		return nil, nil, err
	}
	fmt.Fprintf(os.Stderr, "uploaded %d customers + %d orders + %d profiles to %s in %v (indexed=%v)\n",
		len(customers), len(orders), len(profiles), connect, time.Since(start).Round(time.Millisecond), index)
	return a, cleanup, nil
}

// exec compiles one statement and either renders its plan (EXPLAIN) or
// runs it on the app's backend through the operator-tree executor,
// streaming stitched result rows as the final join step arrives.
func (a *app) exec(stmt string) error {
	plan, err := a.catalog.Compile(stmt)
	if err != nil {
		return err
	}
	if plan.Explain {
		fmt.Fprint(a.out, plan.Describe())
		return nil
	}
	qStart := time.Now()
	printed, total := 0, 0
	emit := func(r sql.ResultRow) error {
		if printed < a.maxRows {
			var line bytes.Buffer
			for i, p := range r.Payloads {
				if i > 0 {
					line.WriteString(" | ")
				}
				line.Write(p)
			}
			fmt.Fprintf(a.out, "  %s\n", line.Bytes())
			printed++
		}
		total++
		return nil
	}

	var revealed int
	switch {
	case a.eng != nil:
		revealed, err = sql.Execute(sql.EngineRunner{Eng: a.eng, Keys: a.keys}, plan, emit)
	case a.clu != nil:
		// No whole-plan WithRetry here: the cluster retries a shed shard
		// individually while the other shards keep streaming (degraded
		// mode lives per backend, inside the scatter).
		if a.async {
			revealed, err = a.clu.ExecutePlanAsync(plan, emit)
		} else {
			revealed, err = a.clu.ExecutePlan(plan, emit)
		}
	case a.async:
		// Batch submission: every plan step is enqueued as a job up
		// front, so the server pipelines the steps on its worker pool
		// while the attaches stitch results in step order. Shedding can
		// only happen during SubmitPlan — before any row is emitted — so
		// the whole-plan retry stays safe (steps already submitted by an
		// aborted attempt just run and expire with the job TTL).
		err = client.WithRetry(client.RetryConfig{}, func() error {
			var rerr error
			revealed, rerr = a.cli.ExecutePlanAsync(plan, emit)
			return rerr
		})
	default:
		// A shed join (client.ErrOverloaded) is rejected by admission
		// control before any result batch is streamed, so no rows were
		// emitted yet and re-running the whole plan is safe.
		err = client.WithRetry(client.RetryConfig{}, func() error {
			var rerr error
			revealed, rerr = a.cli.ExecutePlan(plan, emit)
			return rerr
		})
	}
	if err != nil {
		return err
	}
	if total > printed {
		fmt.Fprintf(a.out, "... %d more\n", total-printed)
	}
	fmt.Fprintf(a.out, "%d rows in %v via %s plan, %d join step(s) (%d equality pairs observed)\n",
		total, time.Since(qStart).Round(time.Millisecond), plan.Strategy, len(plan.Steps), revealed)
	return nil
}
