// Command sjsql is an interactive encrypted-SQL shell over the
// synthetic TPC-H dataset: it generates Customers and Orders at a small
// scale factor, encrypts and "uploads" them to an in-process server,
// and then executes the supported SQL dialect read from stdin (or from
// -query) over the ciphertexts.
//
//	echo "SELECT * FROM Orders JOIN Customers ON Orders.custkey = Customers.custkey \
//	      WHERE Customers.selectivity = '1/100' AND Orders.selectivity = '1/100'" | sjsql -scale 0.0002
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/engine"
	"repro/internal/securejoin"
	"repro/internal/sql"
	"repro/internal/tpch"
)

func main() {
	scale := flag.Float64("scale", 0.0002, "TPC-H scale factor")
	seed := flag.Int64("seed", 42, "generator seed")
	query := flag.String("query", "", "single query to execute (default: read stdin)")
	maxRows := flag.Int("maxrows", 10, "result rows to print per query")
	flag.Parse()

	if err := run(*scale, *seed, *query, *maxRows); err != nil {
		fmt.Fprintln(os.Stderr, "sjsql:", err)
		os.Exit(1)
	}
}

func run(scale float64, seed int64, query string, maxRows int) error {
	client, err := engine.NewClient(securejoin.Params{M: 1, T: 10}, nil)
	if err != nil {
		return err
	}
	server := engine.NewServer()
	catalog, err := sql.NewCatalog(
		sql.TableSchema{Name: "Customers", JoinColumn: "custkey", Attrs: map[string]int{"selectivity": 0}},
		sql.TableSchema{Name: "Orders", JoinColumn: "custkey", Attrs: map[string]int{"selectivity": 0}},
	)
	if err != nil {
		return err
	}

	fmt.Fprintf(os.Stderr, "generating and encrypting TPC-H data at scale %g...\n", scale)
	ds := tpch.Generate(scale, seed)
	customers := make([]engine.PlainRow, len(ds.Customers))
	for i, c := range ds.Customers {
		customers[i] = engine.PlainRow{
			JoinValue: tpch.CustomerJoinValue(c),
			Attrs:     [][]byte{[]byte(c.Selectivity)},
			Payload:   []byte(fmt.Sprintf("%s (%s)", c.Name, c.MktSegment)),
		}
	}
	orders := make([]engine.PlainRow, len(ds.Orders))
	for i, o := range ds.Orders {
		orders[i] = engine.PlainRow{
			JoinValue: tpch.OrderJoinValue(o),
			Attrs:     [][]byte{[]byte(o.Selectivity)},
			Payload:   []byte(fmt.Sprintf("order %d ($%.2f, %s)", o.OrderKey, o.TotalPrice, o.OrderDate)),
		}
	}
	start := time.Now()
	encC, err := client.EncryptTable("Customers", customers)
	if err != nil {
		return err
	}
	encO, err := client.EncryptTable("Orders", orders)
	if err != nil {
		return err
	}
	server.Upload(encC)
	server.Upload(encO)
	fmt.Fprintf(os.Stderr, "uploaded %d customers + %d orders in %v\n",
		len(customers), len(orders), time.Since(start).Round(time.Millisecond))

	exec := func(stmt string) error {
		plan, err := catalog.Compile(stmt)
		if err != nil {
			return err
		}
		q, err := client.NewQuery(plan.SelA, plan.SelB)
		if err != nil {
			return err
		}
		qStart := time.Now()
		rows, trace, err := server.ExecuteJoin(plan.TableA, plan.TableB, q)
		if err != nil {
			return err
		}
		fmt.Printf("%d rows in %v (%d equality pairs observed)\n",
			len(rows), time.Since(qStart).Round(time.Millisecond), trace.Pairs.Len())
		for i, r := range rows {
			if i >= maxRows {
				fmt.Printf("... %d more\n", len(rows)-maxRows)
				break
			}
			pa, err := client.OpenPayload(r.PayloadA)
			if err != nil {
				return err
			}
			pb, err := client.OpenPayload(r.PayloadB)
			if err != nil {
				return err
			}
			fmt.Printf("  %s | %s\n", pa, pb)
		}
		return nil
	}

	if query != "" {
		return exec(query)
	}
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	fmt.Fprintln(os.Stderr, "enter queries, one per line (join column: custkey; filterable: selectivity)")
	for scanner.Scan() {
		stmt := strings.TrimSpace(scanner.Text())
		if stmt == "" {
			continue
		}
		if err := exec(stmt); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
		}
	}
	return scanner.Err()
}
