// Command sjsql is an interactive encrypted-SQL shell over the
// synthetic TPC-H dataset: it generates Customers and Orders at a small
// scale factor, encrypts and uploads them — to an in-process server by
// default, or to a live sjserver with -connect — and then executes the
// supported SQL dialect read from stdin (or from -query) over the
// ciphertexts.
//
// Tables are uploaded with an SSE pre-filter index (disable with
// -index=false), and the planner picks the Section 4.3 prefiltered
// execution automatically whenever a side's predicates can be resolved
// through an index; EXPLAIN <query> prints the chosen plan without
// running it.
//
//	echo "SELECT * FROM Orders JOIN Customers ON Orders.custkey = Customers.custkey \
//	      WHERE Customers.selectivity = '1/100' AND Orders.selectivity = '1/100'" | sjsql -scale 0.0002
//
//	sjsql -connect 127.0.0.1:7788 -scale 0.0002 \
//	      -query "EXPLAIN SELECT * FROM Orders JOIN Customers ON Orders.custkey = Customers.custkey
//	              WHERE Customers.selectivity = '1/100'"
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/client"
	"repro/internal/engine"
	"repro/internal/securejoin"
	"repro/internal/sql"
	"repro/internal/tpch"
)

func main() {
	scale := flag.Float64("scale", 0.0002, "TPC-H scale factor")
	seed := flag.Int64("seed", 42, "generator seed")
	query := flag.String("query", "", "single query to execute (default: read stdin)")
	maxRows := flag.Int("maxrows", 10, "result rows to print per query")
	connect := flag.String("connect", "", "address of a live sjserver; empty runs an in-process engine")
	index := flag.Bool("index", true, "upload tables with SSE pre-filter indexes (enables prefiltered plans)")
	workers := flag.Int("workers", 0, "SJ.Dec worker hint stamped onto every plan (0 = engine default)")
	flag.Parse()

	if err := run(os.Stdout, *scale, *seed, *query, *maxRows, *connect, *index, *workers); err != nil {
		fmt.Fprintln(os.Stderr, "sjsql:", err)
		os.Exit(1)
	}
}

// app binds the compiled catalog to exactly one execution backend: the
// in-process engine (eng+keys) or a wire connection to a live sjserver
// (cli). Both run the same compiled plans.
type app struct {
	catalog *sql.Catalog
	maxRows int
	out     io.Writer

	eng  *engine.Server
	keys *engine.Client
	cli  *client.Client
}

func run(out io.Writer, scale float64, seed int64, query string, maxRows int, connect string, index bool, workers int) error {
	a, cleanup, err := setup(out, scale, seed, maxRows, connect, index, workers)
	if err != nil {
		return err
	}
	defer cleanup()

	if query != "" {
		return a.exec(query)
	}
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	fmt.Fprintln(os.Stderr, "enter queries, one per line (join column: custkey; filterable: selectivity; EXPLAIN <query> shows the plan)")
	for scanner.Scan() {
		stmt := strings.TrimSpace(scanner.Text())
		if stmt == "" {
			continue
		}
		if err := a.exec(stmt); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
		}
	}
	return scanner.Err()
}

// setup generates and encrypts the TPC-H tables, uploads them to the
// chosen backend, and syncs the catalog's index metadata from the
// backend's table state so the planner sees what is actually indexed.
func setup(out io.Writer, scale float64, seed int64, maxRows int, connect string, index bool, workers int) (*app, func(), error) {
	catalog, err := sql.NewCatalog(
		sql.TableSchema{Name: "Customers", JoinColumn: "custkey", Attrs: map[string]int{"selectivity": 0}},
		sql.TableSchema{Name: "Orders", JoinColumn: "custkey", Attrs: map[string]int{"selectivity": 0}},
	)
	if err != nil {
		return nil, nil, err
	}
	catalog.SetDefaultWorkers(workers)

	fmt.Fprintf(os.Stderr, "generating and encrypting TPC-H data at scale %g...\n", scale)
	ds := tpch.Generate(scale, seed)
	customers := make([]engine.PlainRow, len(ds.Customers))
	for i, c := range ds.Customers {
		customers[i] = engine.PlainRow{
			JoinValue: tpch.CustomerJoinValue(c),
			Attrs:     [][]byte{[]byte(c.Selectivity)},
			Payload:   []byte(fmt.Sprintf("%s (%s)", c.Name, c.MktSegment)),
		}
	}
	orders := make([]engine.PlainRow, len(ds.Orders))
	for i, o := range ds.Orders {
		orders[i] = engine.PlainRow{
			JoinValue: tpch.OrderJoinValue(o),
			Attrs:     [][]byte{[]byte(o.Selectivity)},
			Payload:   []byte(fmt.Sprintf("order %d ($%.2f, %s)", o.OrderKey, o.TotalPrice, o.OrderDate)),
		}
	}

	a := &app{catalog: catalog, maxRows: maxRows, out: out}
	params := securejoin.Params{M: 1, T: 10}
	tables := map[string][]engine.PlainRow{"Customers": customers, "Orders": orders}
	start := time.Now()
	if connect == "" {
		a.keys, err = engine.NewClient(params, nil)
		if err != nil {
			return nil, nil, err
		}
		a.eng = engine.NewServer()
		for name, rows := range tables {
			var enc *engine.EncryptedTable
			if index {
				enc, err = a.keys.EncryptTableIndexed(name, rows)
			} else {
				enc, err = a.keys.EncryptTable(name, rows)
			}
			if err != nil {
				return nil, nil, err
			}
			a.eng.Upload(enc)
		}
		for _, st := range a.eng.TableStats() {
			if err := catalog.SetIndexed(st.Name, st.Indexed); err != nil {
				return nil, nil, err
			}
		}
		fmt.Fprintf(os.Stderr, "uploaded %d customers + %d orders in-process in %v (indexed=%v)\n",
			len(customers), len(orders), time.Since(start).Round(time.Millisecond), index)
		return a, func() {}, nil
	}

	a.cli, err = client.Dial(connect, params)
	if err != nil {
		return nil, nil, err
	}
	cleanup := func() { a.cli.Close() }
	for name, rows := range tables {
		if index {
			err = a.cli.UploadIndexed(name, rows)
		} else {
			err = a.cli.Upload(name, rows)
		}
		if err != nil {
			cleanup()
			return nil, nil, err
		}
	}
	if _, err := a.cli.SyncCatalog(catalog); err != nil {
		cleanup()
		return nil, nil, err
	}
	fmt.Fprintf(os.Stderr, "uploaded %d customers + %d orders to %s in %v (indexed=%v)\n",
		len(customers), len(orders), connect, time.Since(start).Round(time.Millisecond), index)
	return a, cleanup, nil
}

// exec compiles one statement and either renders its plan (EXPLAIN) or
// runs it on the app's backend, streaming result rows as they arrive.
func (a *app) exec(stmt string) error {
	plan, err := a.catalog.Compile(stmt)
	if err != nil {
		return err
	}
	if plan.Explain {
		fmt.Fprint(a.out, plan.Describe())
		return nil
	}
	qStart := time.Now()
	printed, total := 0, 0
	emit := func(pa, pb []byte) {
		if printed < a.maxRows {
			fmt.Fprintf(a.out, "  %s | %s\n", pa, pb)
			printed++
		}
		total++
	}

	var revealed int
	if a.eng != nil {
		spec, err := plan.Spec(a.keys)
		if err != nil {
			return err
		}
		st, err := a.eng.OpenJoin(plan.TableA, plan.TableB, spec)
		if err != nil {
			return err
		}
		defer st.Close()
		for {
			rows, err := st.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				return err
			}
			for _, r := range rows {
				pa, err := a.keys.OpenPayload(r.PayloadA)
				if err != nil {
					return err
				}
				pb, err := a.keys.OpenPayload(r.PayloadB)
				if err != nil {
					return err
				}
				emit(pa, pb)
			}
		}
		revealed = st.RevealedPairs()
	} else {
		stream, err := a.cli.JoinPlan(plan)
		if err != nil {
			return err
		}
		defer stream.Close()
		for {
			batch, err := stream.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				return err
			}
			for _, r := range batch {
				emit(r.PayloadA, r.PayloadB)
			}
		}
		revealed = stream.RevealedPairs()
	}
	if total > printed {
		fmt.Fprintf(a.out, "... %d more\n", total-printed)
	}
	fmt.Fprintf(a.out, "%d rows in %v via %s plan (%d equality pairs observed)\n",
		total, time.Since(qStart).Round(time.Millisecond), plan.Strategy, revealed)
	return nil
}
