package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseCatalog(t *testing.T) {
	cat, err := parseCatalog("Customers:custkey:selectivity,segment;Orders:custkey:selectivity")
	if err != nil {
		t.Fatal(err)
	}
	s, err := cat.Schema("customers")
	if err != nil {
		t.Fatal(err)
	}
	if s.JoinColumn != "custkey" {
		t.Fatalf("join column = %q", s.JoinColumn)
	}
	if s.Attrs["selectivity"] != 0 || s.Attrs["segment"] != 1 {
		t.Fatalf("attrs = %v", s.Attrs)
	}
	// Table without filterable attributes.
	cat2, err := parseCatalog("T:k")
	if err != nil {
		t.Fatal(err)
	}
	s2, err := cat2.Schema("T")
	if err != nil {
		t.Fatal(err)
	}
	if len(s2.Attrs) != 0 {
		t.Fatalf("attrs = %v", s2.Attrs)
	}
}

func TestParseCatalogErrors(t *testing.T) {
	for _, spec := range []string{"", "OnlyName", "A:b:c:d", "T:k;T:k"} {
		if _, err := parseCatalog(spec); err == nil {
			t.Errorf("accepted bad catalog spec %q", spec)
		}
	}
}

func TestSplitCols(t *testing.T) {
	if got := splitCols(""); got != nil {
		t.Fatalf("splitCols(\"\") = %v", got)
	}
	got := splitCols("a, b ,c")
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("splitCols = %v", got)
	}
}

func TestReadCSVRows(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.csv")
	content := "id,color,size\n1,red,L\n2,blue,S\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	rows, err := readCSVRows(path, "id", []string{"color", "size"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	if string(rows[0].JoinValue) != "1" {
		t.Fatalf("join value = %q", rows[0].JoinValue)
	}
	if string(rows[0].Attrs[0]) != "red" || string(rows[0].Attrs[1]) != "L" {
		t.Fatalf("attrs = %q", rows[0].Attrs)
	}
	if string(rows[1].Payload) != "2|blue|S" {
		t.Fatalf("payload = %q", rows[1].Payload)
	}

	// Header names are matched case-insensitively.
	if _, err := readCSVRows(path, "ID", []string{"COLOR"}); err != nil {
		t.Fatal(err)
	}
	// Missing columns are rejected.
	if _, err := readCSVRows(path, "nope", nil); err == nil {
		t.Fatal("missing join column accepted")
	}
	if _, err := readCSVRows(path, "id", []string{"nope"}); err == nil {
		t.Fatal("missing attribute column accepted")
	}
	if _, err := readCSVRows(filepath.Join(dir, "absent.csv"), "id", nil); err == nil {
		t.Fatal("missing file accepted")
	}
}

// TestJoinFlagPlanMismatchFailsFast: flag/plan mismatches (manual
// -prefilter or -async on a multi-join plan) must be rejected right
// after planning — before the key file is read or any server dialed.
// The key file here does not exist and no server is running, so the
// test only passes if validation happens first.
func TestJoinFlagPlanMismatchFailsFast(t *testing.T) {
	catalog := "A:k;B:k;C:k"
	query := "SELECT * FROM A JOIN B ON A.k = B.k JOIN C ON A.k = C.k"
	base := []string{"-keys", filepath.Join(t.TempDir(), "absent.key"), "-catalog", catalog, "-query", query}

	for _, tc := range []struct {
		name string
		args []string
		want string
	}{
		{"prefilter multi-join", append([]string{"-prefilter"}, base...), "-prefilter applies only to two-table queries"},
		{"async multi-join", append([]string{"-async"}, base...), "-async applies only to two-table queries"},
		{"async sharded multi-join", append([]string{"-async", "-servers", "127.0.0.1:1,127.0.0.1:2"}, base...), "no single collectible ID"},
	} {
		err := cmdJoin(tc.args)
		if err == nil {
			t.Fatalf("%s: cmdJoin accepted the mismatched flags", tc.name)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %q does not mention %q (validation ran too late?)", tc.name, err, tc.want)
		}
	}
}
