// Command sjclient is the data-owner CLI for a running sjserver. It
// manages the client key file, encrypts and uploads CSV tables, and
// runs SQL join queries whose results are decrypted locally.
//
//	sjclient keygen -keys client.key -m 1 -t 10
//	sjclient upload -keys client.key -addr 127.0.0.1:7788 \
//	    -table Customers -csv customers.csv -join custkey -attrs selectivity -index
//	sjclient join -keys client.key -addr 127.0.0.1:7788 -prefilter \
//	    -catalog "Customers:custkey:selectivity;Orders:custkey:selectivity" \
//	    -query "SELECT * FROM Orders JOIN Customers ON Orders.custkey = Customers.custkey
//	            WHERE Customers.selectivity = '1/100'"
//
// Sharded mode: give upload and join the same -servers list and the
// table is hash-partitioned on the join key across those sjservers at
// encrypt time; the join then scatters one request per shard and
// merges the decrypted streams client-side.
//
//	sjclient upload -keys client.key -servers 127.0.0.1:7788,127.0.0.1:7789 \
//	    -table Customers -csv customers.csv -join custkey -attrs selectivity -index
//	sjclient join -keys client.key -servers 127.0.0.1:7788,127.0.0.1:7789 \
//	    -catalog "Customers:custkey:selectivity;Orders:custkey:selectivity" \
//	    -query "SELECT * FROM Orders JOIN Customers ON Orders.custkey = Customers.custkey"
//
// upload -index additionally builds the table's SSE pre-filter index;
// join -prefilter then resolves WHERE predicates through those indexes
// so the server runs SJ.Dec only over candidate rows (at the cost of
// per-attribute access-pattern leakage), and -workers hints the
// server-side SJ.Dec parallelism.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/client"
	"repro/internal/engine"
	"repro/internal/securejoin"
	"repro/internal/sql"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "keygen":
		err = cmdKeygen(os.Args[2:])
	case "upload":
		err = cmdUpload(os.Args[2:])
	case "join":
		err = cmdJoin(os.Args[2:])
	case "job":
		err = cmdJob(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "sjclient:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: sjclient <keygen|upload|join|job> [flags]
  keygen  generate a client key file
  upload  encrypt a CSV table and upload it
  join    run a SQL join query and decrypt the results
          (-async submits it as a server-side job and prints the job ID)
  job     check on (-status) or collect results of a submitted job (-id)`)
}

func cmdKeygen(args []string) error {
	fs := flag.NewFlagSet("keygen", flag.ExitOnError)
	keys := fs.String("keys", "client.key", "key file to create")
	m := fs.Int("m", 1, "filterable attributes per row")
	t := fs.Int("t", 10, "maximum IN-clause size")
	if err := fs.Parse(args); err != nil {
		return err
	}
	c, err := engine.NewClient(securejoin.Params{M: *m, T: *t}, nil)
	if err != nil {
		return err
	}
	f, err := os.OpenFile(*keys, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o600)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := c.ExportKeys(f); err != nil {
		return err
	}
	fmt.Printf("wrote key file %s (M=%d, T=%d)\n", *keys, *m, *t)
	return nil
}

func loadKeys(path string) (*engine.Client, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return engine.LoadClientKeys(f)
}

func cmdUpload(args []string) error {
	fs := flag.NewFlagSet("upload", flag.ExitOnError)
	keys := fs.String("keys", "client.key", "key file")
	addr := fs.String("addr", "127.0.0.1:7788", "server address")
	servers := fs.String("servers", "", "comma-separated server addresses; the table is hash-sharded on the join key across them (overrides -addr)")
	table := fs.String("table", "", "table name")
	csvPath := fs.String("csv", "", "CSV file with a header row")
	joinCol := fs.String("join", "", "name of the join column")
	attrCols := fs.String("attrs", "", "comma-separated filterable columns (in attribute order)")
	index := fs.Bool("index", false, "also build and upload the SSE pre-filter index (enables join -prefilter)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *table == "" || *csvPath == "" || *joinCol == "" {
		return fmt.Errorf("upload requires -table, -csv and -join")
	}

	ek, err := loadKeys(*keys)
	if err != nil {
		return err
	}
	rows, err := readCSVRows(*csvPath, *joinCol, splitCols(*attrCols))
	if err != nil {
		return err
	}
	// Sharded upload: hash-partition the rows on the join key and store
	// shard i on server i. Every table of a later join must be uploaded
	// with the same -servers list, in the same order.
	if *servers != "" {
		clu, err := client.DialClusterWithKeys(splitCols(*servers), ek)
		if err != nil {
			return err
		}
		defer clu.Close()
		upload := clu.Upload
		if *index {
			upload = clu.UploadIndexed
		}
		if err := upload(*table, rows); err != nil {
			return err
		}
		fmt.Printf("uploaded %d encrypted rows as table %s, sharded over %d servers (indexed=%v)\n",
			len(rows), *table, clu.Shards(), *index)
		return nil
	}
	cli, err := client.DialWithKeys(*addr, ek)
	if err != nil {
		return err
	}
	defer cli.Close()
	if *index {
		if err := cli.UploadIndexed(*table, rows); err != nil {
			return err
		}
		fmt.Printf("uploaded %d encrypted rows as table %s (with SSE pre-filter index)\n", len(rows), *table)
		return nil
	}
	if err := cli.Upload(*table, rows); err != nil {
		return err
	}
	fmt.Printf("uploaded %d encrypted rows as table %s\n", len(rows), *table)
	return nil
}

func cmdJoin(args []string) error {
	fs := flag.NewFlagSet("join", flag.ExitOnError)
	keys := fs.String("keys", "client.key", "key file")
	addr := fs.String("addr", "127.0.0.1:7788", "server address")
	servers := fs.String("servers", "", "comma-separated server addresses holding the sharded tables; the join scatters to every shard (overrides -addr)")
	catalogSpec := fs.String("catalog", "", "schemas as Name:joincol:attr1,attr2;Name2:...")
	query := fs.String("query", "", "SQL query")
	maxRows := fs.Int("maxrows", 20, "result rows to print")
	prefilter := fs.Bool("prefilter", false, "resolve selections via the tables' SSE indexes first (tables must be uploaded with -index; reveals per-attribute access patterns)")
	workers := fs.Int("workers", 0, "SJ.Dec worker hint for the server (0 = server default)")
	async := fs.Bool("async", false, "submit the join as a server-side job and exit; collect results later with sjclient job -id")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *catalogSpec == "" || *query == "" {
		return fmt.Errorf("join requires -catalog and -query")
	}

	catalog, err := parseCatalog(*catalogSpec)
	if err != nil {
		return err
	}
	plan, err := catalog.Compile(*query)
	if err != nil {
		return err
	}
	// EXPLAIN renders the plan; it must never execute (running it would
	// reveal the query's sigma(q) pairs the user asked only to preview).
	if plan.Explain {
		fmt.Print(plan.Describe())
		return nil
	}
	// Fail fast on flag/plan mismatches before any key material is
	// loaded or server dialed, so a misuse errors immediately instead
	// of after a connection was already established. The manual
	// -prefilter knob shapes only the two-table fast path; for
	// multi-join plans prefiltering is the planner's per-side call.
	if *prefilter && len(plan.Steps) > 1 {
		return fmt.Errorf("-prefilter applies only to two-table queries; multi-join plans choose prefiltering per side from catalog metadata")
	}
	if *async && len(plan.Steps) > 1 {
		if *servers != "" {
			return fmt.Errorf("-async with -servers submits one job per shard and has no single collectible ID; use sjsql -servers -async to run through the shards' job queues")
		}
		return fmt.Errorf("-async applies only to two-table queries; multi-join plans stitch intermediates client-side (see sjsql -async)")
	}
	ek, err := loadKeys(*keys)
	if err != nil {
		return err
	}

	// Scatter-gather against sharded tables: every server holds one
	// hash-partition of each table (see upload -servers), the join runs
	// shard-local on each, and the merged stream reports single-server
	// row identities and a summed pair count.
	if *servers != "" {
		if *async {
			return fmt.Errorf("-async with -servers submits one job per shard and has no single collectible ID; use sjsql -servers -async to run through the shards' job queues")
		}
		clu, err := client.DialClusterWithKeys(splitCols(*servers), ek)
		if err != nil {
			return err
		}
		defer clu.Close()
		if len(plan.Steps) > 1 {
			plan.Workers = *workers
			printed, total := 0, 0
			revealed, err := clu.ExecutePlan(plan, func(r sql.ResultRow) error {
				if printed < *maxRows {
					parts := make([]string, len(r.Payloads))
					for i, p := range r.Payloads {
						parts[i] = string(p)
					}
					fmt.Printf("  %s\n", strings.Join(parts, " | "))
					printed++
				}
				total++
				return nil
			})
			if err != nil {
				return err
			}
			if total > printed {
				fmt.Printf("... %d more\n", total-printed)
			}
			fmt.Printf("%d rows over %d pairwise join steps across %d shards (%d equality pairs observed by servers)\n",
				total, len(plan.Steps), clu.Shards(), revealed)
			return nil
		}
		results, revealed, err := clu.Join(plan.TableA, plan.TableB, plan.SelA, plan.SelB,
			client.JoinOpts{Prefilter: *prefilter, Workers: *workers})
		if err != nil {
			return err
		}
		printed := 0
		for _, r := range results {
			if printed >= *maxRows {
				break
			}
			fmt.Printf("  %s | %s\n", r.PayloadA, r.PayloadB)
			printed++
		}
		if len(results) > printed {
			fmt.Printf("... %d more\n", len(results)-printed)
		}
		fmt.Printf("%d rows across %d shards (%d equality pairs observed by servers)\n",
			len(results), clu.Shards(), revealed)
		return nil
	}

	cli, err := client.DialWithKeys(*addr, ek)
	if err != nil {
		return err
	}
	defer cli.Close()

	// Async submission hands the join to the server's job queue: the
	// server acknowledges with a job ID before any pairing work runs,
	// and the completed result is spooled durably — survive this
	// process exiting, the connection dropping, even a server restart —
	// until collected with `sjclient job -id` (or the job TTL expires).
	if *async {
		info, err := cli.SubmitJoinQuery(plan.TableA, plan.TableB, plan.SelA, plan.SelB,
			client.JoinOpts{Prefilter: *prefilter, Workers: *workers})
		if err != nil {
			return err
		}
		fmt.Printf("submitted job %s (%s JOIN %s, state %s)\n", info.ID, info.TableA, info.TableB, info.State)
		fmt.Printf("collect with: sjclient job -id %s\n", info.ID)
		return nil
	}

	// Multi-table queries run through the operator-tree executor: one
	// pairwise encrypted join per plan step, stitched client-side.
	if len(plan.Steps) > 1 {
		// The flat -catalog spec carries no worker default, so stamp the
		// flag onto the plan the same way JoinOpts carries it below.
		plan.Workers = *workers
		printed, total := 0, 0
		revealed, err := cli.ExecutePlan(plan, func(r sql.ResultRow) error {
			if printed < *maxRows {
				parts := make([]string, len(r.Payloads))
				for i, p := range r.Payloads {
					parts[i] = string(p)
				}
				fmt.Printf("  %s\n", strings.Join(parts, " | "))
				printed++
			}
			total++
			return nil
		})
		if err != nil {
			return err
		}
		if total > printed {
			fmt.Printf("... %d more\n", total-printed)
		}
		fmt.Printf("%d rows over %d pairwise join steps (%d equality pairs observed by server)\n",
			total, len(plan.Steps), revealed)
		return nil
	}

	// Stream the result: rows print as the server's batches arrive
	// instead of waiting for the full result set.
	stream, err := cli.JoinQueryOpts(plan.TableA, plan.TableB, plan.SelA, plan.SelB,
		client.JoinOpts{Prefilter: *prefilter, Workers: *workers})
	if err != nil {
		return err
	}
	printed, total := 0, 0
	for {
		batch, err := stream.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		for _, r := range batch {
			if printed < *maxRows {
				fmt.Printf("  %s | %s\n", r.PayloadA, r.PayloadB)
				printed++
			}
		}
		total += len(batch)
	}
	if total > printed {
		fmt.Printf("... %d more\n", total-printed)
	}
	fmt.Printf("%d rows (%d equality pairs observed by server)\n", total, stream.RevealedPairs())
	return nil
}

// cmdJob checks on or collects a join submitted with join -async. The
// attach may come from any connection — a fresh process, after the
// submitter exited, even after a server restart — because completed
// results are spooled in the server's data directory.
func cmdJob(args []string) error {
	fs := flag.NewFlagSet("job", flag.ExitOnError)
	keys := fs.String("keys", "client.key", "key file")
	addr := fs.String("addr", "127.0.0.1:7788", "server address")
	id := fs.String("id", "", "job ID printed by join -async")
	status := fs.Bool("status", false, "print the job's state and progress instead of waiting for its results")
	maxRows := fs.Int("maxrows", 20, "result rows to print")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *id == "" {
		return fmt.Errorf("job requires -id")
	}
	ek, err := loadKeys(*keys)
	if err != nil {
		return err
	}
	cli, err := client.DialWithKeys(*addr, ek)
	if err != nil {
		return err
	}
	defer cli.Close()

	if *status {
		info, err := cli.JobStatus(*id)
		if err != nil {
			return err
		}
		fmt.Printf("job %s: %s (%s JOIN %s)\n", info.ID, info.State, info.TableA, info.TableB)
		fmt.Printf("  rows decrypted: %d, steps done: %d, pairs revealed: %d\n",
			info.RowsDecrypted, info.StepsDone, info.RevealedPairs)
		if info.State == "done" {
			fmt.Printf("  result rows: %d\n", info.ResultRows)
		}
		if info.Err != "" {
			fmt.Printf("  error: %s\n", info.Err)
		}
		return nil
	}

	stream, err := cli.AttachJob(*id)
	if err != nil {
		return err
	}
	printed, total := 0, 0
	for {
		batch, err := stream.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		for _, r := range batch {
			if printed < *maxRows {
				fmt.Printf("  %s | %s\n", r.PayloadA, r.PayloadB)
				printed++
			}
		}
		total += len(batch)
	}
	if total > printed {
		fmt.Printf("... %d more\n", total-printed)
	}
	fmt.Printf("%d rows (%d equality pairs observed by server)\n", total, stream.RevealedPairs())
	return nil
}

// parseCatalog parses "Name:joincol:attr1,attr2;Name2:joincol2:..."
func parseCatalog(spec string) (*sql.Catalog, error) {
	var schemas []sql.TableSchema
	for _, part := range strings.Split(spec, ";") {
		fields := strings.Split(part, ":")
		if len(fields) < 2 || len(fields) > 3 {
			return nil, fmt.Errorf("bad catalog entry %q (want Name:joincol[:attrs])", part)
		}
		s := sql.TableSchema{Name: fields[0], JoinColumn: fields[1], Attrs: map[string]int{}}
		if len(fields) == 3 {
			for i, a := range splitCols(fields[2]) {
				s.Attrs[a] = i
			}
		}
		schemas = append(schemas, s)
	}
	return sql.NewCatalog(schemas...)
}

func splitCols(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

// readCSVRows loads a CSV with a header and maps it onto engine rows:
// join column -> JoinValue, attribute columns -> Attrs (in order), and
// the full record (pipe-joined) as the payload.
func readCSVRows(path, joinCol string, attrCols []string) ([]engine.PlainRow, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	recs, err := csv.NewReader(f).ReadAll()
	if err != nil {
		return nil, err
	}
	if len(recs) < 1 {
		return nil, fmt.Errorf("%s: empty CSV", path)
	}
	header := recs[0]
	colIdx := func(name string) (int, error) {
		for i, h := range header {
			if strings.EqualFold(h, name) {
				return i, nil
			}
		}
		return 0, fmt.Errorf("%s: no column %q (header: %v)", path, name, header)
	}
	jIdx, err := colIdx(joinCol)
	if err != nil {
		return nil, err
	}
	aIdx := make([]int, len(attrCols))
	for i, a := range attrCols {
		if aIdx[i], err = colIdx(a); err != nil {
			return nil, err
		}
	}

	rows := make([]engine.PlainRow, 0, len(recs)-1)
	for _, rec := range recs[1:] {
		attrs := make([][]byte, len(aIdx))
		for i, idx := range aIdx {
			attrs[i] = []byte(rec[idx])
		}
		rows = append(rows, engine.PlainRow{
			JoinValue: []byte(rec[jIdx]),
			Attrs:     attrs,
			Payload:   []byte(strings.Join(rec, "|")),
		})
	}
	return rows, nil
}
