package main

import (
	"encoding/json"
	"fmt"
	"os"
)

// Regression gate: `sjbench -diff old.json new.json` compares two
// BENCH_*.json reports series by series and fails when any series got
// more than -difftol slower. CI runs it against the committed reports
// so a perf regression breaks the build instead of silently eroding
// the figures. Only slowdowns fail: figures legitimately gain series
// over time, and a series missing from the new report is a warning —
// dropping a benchmark should be a reviewed, visible change, but the
// gate's job is timing.

// seriesKey identifies a series across report versions.
func seriesKey(s benchSeries) string {
	if s.Mode != "" && s.Label != "" {
		return s.Label + "/" + s.Mode
	}
	return s.Label + s.Mode
}

func diffReports(oldPath, newPath string, tol float64) error {
	load := func(path string) (*benchReport, error) {
		b, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		var r benchReport
		if err := json.Unmarshal(b, &r); err != nil {
			return nil, fmt.Errorf("parsing %s: %w", path, err)
		}
		return &r, nil
	}
	oldR, err := load(oldPath)
	if err != nil {
		return err
	}
	newR, err := load(newPath)
	if err != nil {
		return err
	}
	if oldR.Fig != newR.Fig {
		return fmt.Errorf("comparing different figures: %q vs %q", oldR.Fig, newR.Fig)
	}

	newSeries := make(map[string]benchSeries, len(newR.Series))
	for _, s := range newR.Series {
		newSeries[seriesKey(s)] = s
	}
	var regressions []string
	for _, old := range oldR.Series {
		key := seriesKey(old)
		cur, ok := newSeries[key]
		if !ok {
			fmt.Fprintf(os.Stderr, "sjbench -diff: warning: series %q missing from %s\n", key, newPath)
			continue
		}
		if old.Seconds <= 0 {
			continue
		}
		ratio := cur.Seconds / old.Seconds
		verdict := "ok"
		if ratio > 1+tol {
			verdict = "REGRESSION"
			regressions = append(regressions, fmt.Sprintf("%s: %.3fs -> %.3fs (%.0f%% slower)",
				key, old.Seconds, cur.Seconds, (ratio-1)*100))
		}
		fmt.Printf("%-40s  %8.3fs -> %8.3fs  %+6.1f%%  %s\n",
			key, old.Seconds, cur.Seconds, (ratio-1)*100, verdict)
	}
	if len(regressions) > 0 {
		return fmt.Errorf("%d series regressed beyond the %.0f%% tolerance:\n  %s",
			len(regressions), tol*100, joinLines(regressions))
	}
	return nil
}

func joinLines(lines []string) string {
	out := ""
	for i, l := range lines {
		if i > 0 {
			out += "\n  "
		}
		out += l
	}
	return out
}
