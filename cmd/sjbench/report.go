package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/metrics"
)

// Machine-readable figure output: alongside the printed tables,
// -fig prefilter and -fig multijoin write a BENCH_<fig>.json whose
// latency quantiles come from the same metrics registry a production
// server exposes on /metrics — the benchmark measures the measurement
// path operators will dashboard, not a parallel stopwatch.

// benchSeries is one measured configuration of a figure.
type benchSeries struct {
	Label         string  `json:"label"`
	Mode          string  `json:"mode,omitempty"`
	Seconds       float64 `json:"seconds"`
	Matches       int     `json:"matches"`
	RevealedPairs int     `json:"revealed_pairs"`
	Chain         string  `json:"chain,omitempty"`
	// Engine sj_rows_decrypted_total deltas per executed step — the
	// direct evidence of what a stitch step actually ran through
	// SJ.Dec (-fig semijoin).
	RowsDecryptedPerStep []uint64 `json:"rows_decrypted_per_step,omitempty"`
}

// baselineRef pins an earlier committed figure a report's headline
// claim is measured against.
type baselineRef struct {
	Fig     string  `json:"fig"`
	Label   string  `json:"label"`
	Seconds float64 `json:"seconds"`
	Source  string  `json:"source"`
}

// semijoinSummary is the -fig semijoin verdict: the candidate-list
// reduction's wall-clock speedups and the stitch-step decrypt counts
// that explain them.
type semijoinSummary struct {
	// 3-way semi-join chain vs the 3way_stats_ordered series of the
	// committed multijoin figure (the pre-semi-join execution path).
	Speedup3WayVsBaseline float64 `json:"speedup_3way_vs_baseline"`
	// In-figure ablations: same workload, semi-join off vs on.
	Speedup3Way float64 `json:"speedup_3way_full_vs_semijoin"`
	Speedup4Way float64 `json:"speedup_4way_full_vs_semijoin"`
	// Step-2 SJ.Dec row counts: full execution re-decrypts the whole
	// hub, semi-join only the rows step 1 matched.
	Step2RowsFull     uint64 `json:"step2_rows_decrypted_full"`
	Step2RowsSemiJoin uint64 `json:"step2_rows_decrypted_semijoin"`
}

// histSummary is one histogram's registry-sourced summary.
type histSummary struct {
	Count uint64  `json:"count"`
	Sum   float64 `json:"sum_seconds"`
	P50   float64 `json:"p50_seconds"`
	P90   float64 `json:"p90_seconds"`
	P99   float64 `json:"p99_seconds"`
}

// decryptCacheSummary is the -fig decrypt cold-vs-warm verdict: the
// decrypt-cache counters attributable to each execution and the
// derived warm-over-cold speedup. WarmHitRate is hits/(hits+misses)
// during the warm re-execution — 1.0 when the cache served every row.
type decryptCacheSummary struct {
	ColdMisses  uint64  `json:"cold_misses"`
	WarmHits    uint64  `json:"warm_hits"`
	WarmMisses  uint64  `json:"warm_misses"`
	WarmHitRate float64 `json:"warm_hit_rate"`
	ColdSeconds float64 `json:"cold_seconds"`
	WarmSeconds float64 `json:"warm_seconds"`
	WarmSpeedup float64 `json:"warm_speedup"`
	// The same cold/warm pair for a repeated prefiltered join (its own
	// query token, candidate rows only).
	PrefilteredColdSeconds float64 `json:"prefiltered_cold_seconds"`
	PrefilteredWarmSeconds float64 `json:"prefiltered_warm_seconds"`
	PrefilteredWarmSpeedup float64 `json:"prefiltered_warm_speedup"`
}

// shardSummary is the -fig shard verdict: scatter-gather join speedup
// at 2 and 4 servers over the 1-server baseline, with the host's core
// count — the join is CPU-bound in SJ.Dec, so in-process servers
// time-slicing a single core cannot show the partitioning win (Note
// records that ceiling when it applies).
type shardSummary struct {
	Cores    int     `json:"cores"`
	Speedup2 float64 `json:"speedup_2_servers"`
	Speedup4 float64 `json:"speedup_4_servers"`
	Note     string  `json:"note,omitempty"`
}

// benchReport is the BENCH_<fig>.json document.
type benchReport struct {
	Fig          string                 `json:"fig"`
	Rows         int                    `json:"rows"`
	Series       []benchSeries          `json:"series"`
	Baseline     *baselineRef           `json:"baseline,omitempty"`
	SemiJoin     *semijoinSummary       `json:"semijoin,omitempty"`
	DecryptCache *decryptCacheSummary   `json:"decrypt_cache,omitempty"`
	Shard        *shardSummary          `json:"shard,omitempty"`
	Histograms   map[string]histSummary `json:"histograms"`
}

// summarize renders one histogram for the report; nil-safe.
func summarize(h *metrics.Histogram) (histSummary, bool) {
	if h == nil {
		return histSummary{}, false
	}
	return histSummary{
		Count: h.Count(),
		Sum:   h.Sum(),
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P99:   h.Quantile(0.99),
	}, true
}

// scrapeHistograms summarizes the named histograms from the registry
// the figure ran against, skipping names the registry does not hold.
func scrapeHistograms(reg *metrics.Registry, names ...string) map[string]histSummary {
	out := make(map[string]histSummary, len(names))
	for _, name := range names {
		h, ok := reg.Get(name).(*metrics.Histogram)
		if !ok {
			continue
		}
		if s, ok := summarize(h); ok {
			out[name] = s
		}
	}
	return out
}

// writeReport writes the report as BENCH_<fig>.json under dir.
func writeReport(dir string, r *benchReport) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	path := filepath.Join(dir, "BENCH_"+r.Fig+".json")
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		return fmt.Errorf("writing %s: %w", path, err)
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}
